package contextenc

import (
	"testing"
	"testing/quick"
)

func TestExtendDeterministicAndOrderSensitive(t *testing.T) {
	a := Extend(Extend(EmptyContext, 1), 2)
	b := Extend(Extend(EmptyContext, 2), 1)
	if a == b {
		t.Error("encoding must be order-sensitive")
	}
	if a != Extend(Extend(EmptyContext, 1), 2) {
		t.Error("encoding must be deterministic")
	}
}

func TestExtendDistinguishesSiteZero(t *testing.T) {
	if Extend(EmptyContext, 0) == EmptyContext {
		t.Error("extending with site 0 must differ from the empty chain")
	}
}

// Property: the Bond–McKinley recurrence g' = 3g + o (with the +1 offset)
// is injective per step: same prefix + different site → different encoding.
func TestExtendStepInjective(t *testing.T) {
	f := func(prefix uint32, s1, s2 uint16) bool {
		g := Encoded(prefix)
		if s1 == s2 {
			return true
		}
		return Extend(g, int(s1)) != Extend(g, int(s2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSlotsInRange(t *testing.T) {
	f := func(g uint64, s uint8) bool {
		slots := NewSlots(int(s%31) + 1)
		slot := slots.Slot(Encoded(g))
		return slot >= 0 && slot < slots.S
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewSlotsPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSlots(0) must panic")
		}
	}()
	NewSlots(0)
}

func TestCRDefinition(t *testing.T) {
	// Paper: CR = 0 if every slot holds at most one distinct context;
	// otherwise max(dc)/sum(dc).
	ct := NewConflictTracker(NewSlots(4), 3)

	// Instruction 0: two contexts in different slots → CR 0.
	ct.Observe(0, Encoded(1)) // slot 1
	ct.Observe(0, Encoded(2)) // slot 2
	if cr := ct.CR(0); cr != 0 {
		t.Errorf("CR = %v, want 0", cr)
	}

	// Instruction 1: three contexts, two colliding in slot 1 → 2/3.
	ct.Observe(1, Encoded(1)) // slot 1
	ct.Observe(1, Encoded(5)) // slot 1
	ct.Observe(1, Encoded(2)) // slot 2
	if cr := ct.CR(1); cr < 0.66 || cr > 0.67 {
		t.Errorf("CR = %v, want 2/3", cr)
	}

	// Instruction 2 never observed → CR 0, excluded from average.
	if cr := ct.CR(2); cr != 0 {
		t.Errorf("CR unobserved = %v, want 0", cr)
	}

	avg := ct.AverageCR()
	want := (0.0 + 2.0/3.0) / 2
	if avg < want-1e-9 || avg > want+1e-9 {
		t.Errorf("AverageCR = %v, want %v", avg, want)
	}
	if ct.DistinctContexts() != 5 {
		t.Errorf("DistinctContexts = %d, want 5", ct.DistinctContexts())
	}
}

func TestCRDuplicateObservationsDontInflate(t *testing.T) {
	ct := NewConflictTracker(NewSlots(4), 1)
	for i := 0; i < 100; i++ {
		ct.Observe(0, Encoded(1))
	}
	if cr := ct.CR(0); cr != 0 {
		t.Errorf("CR after duplicates = %v, want 0", cr)
	}
}

// Property: CR is always in [0, 1].
func TestCRRangeProperty(t *testing.T) {
	f := func(obs []uint16) bool {
		ct := NewConflictTracker(NewSlots(8), 1)
		for _, o := range obs {
			ct.Observe(0, Encoded(o))
		}
		cr := ct.CR(0)
		return cr >= 0 && cr <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with a single slot and ≥2 distinct contexts, CR is exactly 1.
func TestCRSingleSlotProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		if a == b {
			return true
		}
		ct := NewConflictTracker(NewSlots(1), 1)
		ct.Observe(0, Encoded(a))
		ct.Observe(0, Encoded(b))
		return ct.CR(0) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
