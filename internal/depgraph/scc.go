package depgraph

// SCC computes the strongly connected components of the graph over the
// def→use (forward value-flow) direction using an iterative Tarjan
// algorithm, and returns the condensation: components in reverse
// topological order (every edge goes from a later component to an earlier
// one in the returned slice), plus the component index of each node.
//
// The deadness analysis (IPD/IPP/NLD) runs outcome propagation over this
// condensation.
func (g *Graph) SCC() (comps [][]*Node, compOf map[*Node]int) {
	const unvisited = 0
	index := make(map[*Node]int32, len(g.all))
	low := make(map[*Node]int32, len(g.all))
	onStack := make(map[*Node]bool, len(g.all))
	var stack []*Node
	compOf = make(map[*Node]int, len(g.all))
	next := int32(1)

	type frame struct {
		n    *Node
		succ []*Node
		i    int
	}

	succsOf := func(n *Node) []*Node {
		out := make([]*Node, 0, g.useSets[n.id].len())
		g.useSets[n.id].each(g.all, func(u *Node) {
			out = append(out, u)
		})
		return out
	}

	for _, root := range g.all {
		if index[root] != unvisited {
			continue
		}
		work := []frame{{n: root, succ: succsOf(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.i < len(f.succ) {
				s := f.succ[f.i]
				f.i++
				if index[s] == unvisited {
					index[s] = next
					low[s] = next
					next++
					stack = append(stack, s)
					onStack[s] = true
					work = append(work, frame{n: s, succ: succsOf(s)})
				} else if onStack[s] {
					if index[s] < low[f.n] {
						low[f.n] = index[s]
					}
				}
				continue
			}
			// f.n finished.
			n := f.n
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].n
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
			if low[n] == index[n] {
				var comp []*Node
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					compOf[top] = len(comps)
					comp = append(comp, top)
					if top == n {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps, compOf
}
