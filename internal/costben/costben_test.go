package costben

import (
	"math"
	"strings"
	"testing"

	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/mjc"
	"lowutil/internal/profiler"
)

// compileSrc is a test helper shared with extensions_test.go.
func compileSrc(src string) (*ir.Program, error) { return mjc.Compile(src) }

func profiled(t *testing.T, src string, slots int) (*profiler.Profiler, *interp.Machine, *ir.Program) {
	t.Helper()
	prog, err := mjc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	p := profiler.New(prog, profiler.Options{Slots: slots})
	m := interp.New(prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p, m, prog
}

func siteOfNthNew(prog *ir.Program, class string, n int) int {
	for _, in := range prog.Instrs {
		if in.Op == ir.OpNew && in.Class.Name == class {
			if n == 0 {
				return in.AllocSite
			}
			n--
		}
	}
	return -1
}

func allocNode(t *testing.T, p *profiler.Profiler, prog *ir.Program, site int) *depgraph.Node {
	t.Helper()
	nodes := p.G.NodesOf(prog.AllocSites[site])
	if len(nodes) != 1 {
		t.Fatalf("site %d has %d nodes, want 1", site, len(nodes))
	}
	return nodes[0]
}

// TestHopSemanticsSingleHop pins the exact RAC of a single-hop flow:
// read a.x (heap), three stack computations, write b.y. RAC(b.y) counts the
// store plus the three computations, not the load or anything before it.
func TestHopSemanticsSingleHop(t *testing.T) {
	p, _, prog := profiled(t, `
class A { int x; }
class B { int y; }
class Main {
  static void main() {
    A a = new A();
    a.x = expensive(400);
    B b = new B();
    int t1 = a.x + 1;   // hop work 1 (+ the load, excluded)
    int t2 = t1 * 2;    // hop work 2
    int t3 = t2 - 3;    // hop work 3
    b.y = t3;           // the store
    print(b.y);
  }
  static int expensive(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
  }
}`, 16)
	a := NewAnalysis(p.G)
	bSite := siteOfNthNew(prog, "B", 0)
	bAlloc := allocNode(t, p, prog, bSite)
	var fy *ir.Field
	for _, c := range prog.Classes {
		for _, f := range c.Fields {
			if f.Name == "y" {
				fy = f
			}
		}
	}
	loc := depgraph.Loc{Alloc: bAlloc, Field: fy.ID}
	rac := a.RAC(loc)
	// Hop work: the three Bin instructions plus their constant operands
	// (1, 2, 3 — each a Const node feeding the hop) plus the store itself.
	// Crucially, the 400-iteration expensive() work must NOT appear: it is
	// behind the heap location a.x.
	if rac < 4 || rac > 12 {
		t.Errorf("RAC(b.y) = %v, want a one-hop cost in [4, 12]", rac)
	}
	// The benefit: b.y is loaded once and printed (a native consumer), so
	// RAB must be infinite.
	if rab := a.RAB(loc); rab != InfiniteRAB {
		t.Errorf("RAB(b.y) = %v, want infinite (reaches print)", rab)
	}
}

// TestRACIncludesExpensiveComputationWithinHop: when the expensive
// computation happens on the stack inside the hop, it IS the cost.
func TestRACIncludesExpensiveComputationWithinHop(t *testing.T) {
	p, _, prog := profiled(t, `
class B { int y; }
class Main {
  static void main() {
    B b = new B();
    int s = 0;
    for (int i = 0; i < 300; i = i + 1) { s = s + i; }
    b.y = s;          // the whole loop is this hop's stack work
    print(1);
  }
}`, 16)
	a := NewAnalysis(p.G)
	bAlloc := allocNode(t, p, prog, siteOfNthNew(prog, "B", 0))
	var fy *ir.Field
	for _, c := range prog.Classes {
		for _, f := range c.Fields {
			if f.Name == "y" {
				fy = f
			}
		}
	}
	rac := a.RAC(depgraph.Loc{Alloc: bAlloc, Field: fy.ID})
	if rac < 300 {
		t.Errorf("RAC = %v, want >= 300 (the loop)", rac)
	}
}

// TestRABCopyOnlyIsMinimal: "in the extreme case where v' is simply a copy
// of v, the RAB for l is 1" — per node frequency. A field copied to another
// field once per construction has RAB ≈ load frequency.
func TestRABCopyOnlyIsMinimal(t *testing.T) {
	p, _, prog := profiled(t, `
class A { int x; }
class B { int y; }
class Main {
  static void main() {
    A a = new A();
    B b = new B();
    a.x = 5;
    b.y = a.x;        // single load, value stored straight into b.y
    print(1);
  }
}`, 16)
	a := NewAnalysis(p.G)
	aAlloc := allocNode(t, p, prog, siteOfNthNew(prog, "A", 0))
	var fx *ir.Field
	for _, c := range prog.Classes {
		for _, f := range c.Fields {
			if f.Name == "x" {
				fx = f
			}
		}
	}
	rab := a.RAB(depgraph.Loc{Alloc: aAlloc, Field: fx.ID})
	if rab != 1 {
		t.Errorf("RAB of copy-only field = %v, want exactly 1", rab)
	}
}

func TestUnreadLocationRABZeroAndUnwrittenRACZero(t *testing.T) {
	p, _, prog := profiled(t, `
class A { int w; int r; }
class Main {
  static void main() {
    A a = new A();
    a.w = 3;          // written, never read
    print(a.r);       // read, never written
  }
}`, 16)
	an := NewAnalysis(p.G)
	aAlloc := allocNode(t, p, prog, siteOfNthNew(prog, "A", 0))
	var fw, fr *ir.Field
	for _, c := range prog.Classes {
		for _, f := range c.Fields {
			switch f.Name {
			case "w":
				fw = f
			case "r":
				fr = f
			}
		}
	}
	if rab := an.RAB(depgraph.Loc{Alloc: aAlloc, Field: fw.ID}); rab != 0 {
		t.Errorf("RAB(unread) = %v, want 0", rab)
	}
	if rac := an.RAC(depgraph.Loc{Alloc: aAlloc, Field: fr.ID}); rac != 0 {
		t.Errorf("RAC(unwritten) = %v, want 0", rac)
	}
}

// TestObjectTreeDepths: a 3-level structure (Outer → Mid → Leaf) yields
// correct tree depths and n-RAC aggregation grows with n.
func TestObjectTreeDepthsAndNRAC(t *testing.T) {
	p, _, prog := profiled(t, `
class Leaf { int v; }
class Mid { Leaf leaf; int m; }
class Outer { Mid mid; int o; }
class Main {
  static void main() {
    Outer outer = new Outer();
    Mid mid = new Mid();
    Leaf leaf = new Leaf();
    leaf.v = costly(50);
    mid.m = costly(60);
    mid.leaf = leaf;
    outer.o = costly(70);
    outer.mid = mid;
  }
  static int costly(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + i * i; }
    return s;
  }
}`, 16)
	a := NewAnalysis(p.G)
	outerAlloc := allocNode(t, p, prog, siteOfNthNew(prog, "Outer", 0))
	midAlloc := allocNode(t, p, prog, siteOfNthNew(prog, "Mid", 0))
	leafAlloc := allocNode(t, p, prog, siteOfNthNew(prog, "Leaf", 0))

	tree := a.ObjectTree(outerAlloc, 4)
	if tree.Depth[outerAlloc] != 0 || tree.Depth[midAlloc] != 1 || tree.Depth[leafAlloc] != 2 {
		t.Errorf("depths = %v", tree.Depth)
	}

	r1 := a.NRAC(outerAlloc, 1)
	r2 := a.NRAC(outerAlloc, 2)
	r3 := a.NRAC(outerAlloc, 3)
	if !(r1 > 0 && r2 > r1 && r3 > r2) {
		t.Errorf("n-RAC must grow with n: %v %v %v", r1, r2, r3)
	}
	// 1-RAC covers only Outer's own fields (o and mid); the leaf's 50-loop
	// must not be included until n >= 3.
	if r1 >= r3 {
		t.Errorf("1-RAC (%v) should be < 3-RAC (%v)", r1, r3)
	}
}

func TestObjectTreeCycleSafe(t *testing.T) {
	p, _, prog := profiled(t, `
class Node { Node next; int v; }
class Main {
  static void main() {
    Node a = new Node();
    Node b = new Node();
    a.next = b;
    b.next = a;  // cycle
    a.v = 1;
  }
}`, 16)
	an := NewAnalysis(p.G)
	aAlloc := allocNode(t, p, prog, siteOfNthNew(prog, "Node", 0))
	tree := an.ObjectTree(aAlloc, 10)
	if len(tree.Depth) != 2 {
		t.Errorf("cycle tree size = %d, want 2", len(tree.Depth))
	}
	// And aggregation must terminate with a finite number.
	if v := an.NRAC(aAlloc, 10); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("NRAC over cycle = %v", v)
	}
}

func TestRateSemantics(t *testing.T) {
	if Rate(100, InfiniteRAB) != 0 {
		t.Error("infinite benefit must zero the rate")
	}
	if Rate(100, 0) != 100 {
		t.Error("zero benefit clamps to 1")
	}
	if Rate(100, 4) != 25 {
		t.Error("plain ratio broken")
	}
}

func TestFormatTopIsStable(t *testing.T) {
	p, _, _ := profiled(t, `
class A { int x; }
class Main {
  static void main() {
    A a = new A();
    a.x = 1;
  }
}`, 16)
	an := NewAnalysis(p.G)
	r1 := FormatTop(an.RankBySite(4), 5)
	r2 := FormatTop(an.RankBySite(4), 5)
	if r1 != r2 {
		t.Error("report not deterministic")
	}
	if r1 == "" {
		t.Error("empty report")
	}
}

// TestContextSensitivitySeparatesSameSite demonstrates why object contexts
// matter: the same allocation site, reached through two different receiver
// objects, splits into two abstractions — one high-utility (its values are
// consumed), one low-utility (its values die). A context-insensitive
// analysis would merge them and dilute the signal.
func TestContextSensitivitySeparatesSameSite(t *testing.T) {
	p, _, prog := profiled(t, `
class Cell { int v; }
class Holder {
  Cell cell;
  void fill(int x) {
    Cell c = new Cell();     // ONE static site, two receiver contexts
    c.v = x * x + 3;
    this.cell = c;
  }
  int read() { return this.cell.v; }
}
class Main {
  static void main() {
    Holder used = new Holder();
    Holder wasted = new Holder();
    int acc = 0;
    for (int i = 0; i < 60; i = i + 1) {
      used.fill(i);
      acc = acc + used.read();   // used's cells are consumed
      wasted.fill(i + 1);        // wasted's cells never read
    }
    print(acc);
  }
}`, 256)
	cellSite := siteOfNthNew(prog, "Cell", 0)
	nodes := p.G.NodesOf(prog.AllocSites[cellSite])
	if len(nodes) != 2 {
		t.Fatalf("Cell site has %d abstractions, want 2 (one per receiver context)", len(nodes))
	}
	an := NewAnalysis(p.G)
	// One abstraction's cell values flow to print (consumed — large
	// benefit), the other's die (zero benefit): the context split separates
	// them exactly.
	var benefits []float64
	for _, n := range nodes {
		benefits = append(benefits, an.NRAB(n, DefaultTreeHeight))
	}
	hasConsumed, hasZero := false, false
	for _, b := range benefits {
		if b >= ConsumedRAB {
			hasConsumed = true
		}
		if b == 0 {
			hasZero = true
		}
	}
	if !hasConsumed || !hasZero {
		t.Errorf("contexts not separated: benefits = %v", benefits)
	}
	// The context-level ranking puts the dead abstraction strictly above
	// the live one.
	ranked := an.RankStructures(DefaultTreeHeight)
	var first *StructureReport
	for _, r := range ranked {
		if r.Site.AllocSite == cellSite {
			first = r
			break
		}
	}
	if first == nil || first.NRAB != 0 {
		t.Errorf("dead-context abstraction should rank first among Cell entries: %v", first)
	}
}

// TestFigure3AbstractCosts regenerates the Figure 3(c) artifact: node
// frequencies and abstract costs for the hot method, checking the exact
// frequency structure and the ab-initio growth property (later nodes cost
// at least as much as what they depend on).
func TestFigure3AbstractCosts(t *testing.T) {
	const n, k = 10, 7
	p, _, prog := profiled(t, `
class A { int t; }
class Main {
  static void main() {
    for (int i = 0; i < `+"10"+`; i = i + 1) {
      A a = new A();
      int s = 0;
      for (int j = 0; j < `+"7"+`; j = j + 1) { s = s + i * j; }
      a.t = s;
    }
  }
}`, 16)
	rows := MethodNodeCosts(p.G, prog.Main)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	table := FormatNodeCosts(rows)
	if !strings.Contains(table, "Freq") || !strings.Contains(table, "AC") {
		t.Errorf("table malformed:\n%s", table)
	}
	// Frequencies: the alloc runs n times; the inner-loop add runs n*k.
	var allocFreq, innerFreq int64
	for _, r := range rows {
		if r.Node.In.IsAlloc() {
			allocFreq = r.Freq
		}
		if r.Freq == n*k {
			innerFreq = r.Freq
		}
		// Abstract cost is always at least the node's own frequency.
		if r.AbstractCost < r.Freq {
			t.Errorf("AC < freq for %v: %d < %d", r.Node, r.AbstractCost, r.Freq)
		}
	}
	if allocFreq != n {
		t.Errorf("alloc freq = %d, want %d", allocFreq, n)
	}
	if innerFreq != n*k {
		t.Errorf("no node with inner-loop frequency %d", n*k)
	}
	// The store a.t = s must have a larger abstract cost than the constant
	// initializing s (the ab initio accumulation the paper describes).
	var constAC, storeAC int64
	for _, r := range rows {
		if r.Node.In.Op == ir.OpConst && r.Node.In.Imm == 0 && constAC == 0 {
			constAC = r.AbstractCost
		}
		if r.Node.WritesHeap() {
			storeAC = r.AbstractCost
		}
	}
	if storeAC <= constAC {
		t.Errorf("store AC (%d) should exceed const AC (%d)", storeAC, constAC)
	}
}

// TestPointerCostAttribution pins the §1 motivation for thin slicing:
// "Consider b.f = g(a.f) … a dynamic slicing approach would also include
// the cost of computing the a pointer. … had there existed another
// assignment c.g = a, c would be the object to which a's cost should be
// attributed, not b."
//
// Here the pointer a is expensive to compute (a 300-iteration index search)
// while the value a.f is cheap. Under thin slicing, b.f's cost excludes the
// pointer computation; under traditional slicing it absorbs it; and c.g —
// which stores the pointer itself — carries the pointer cost in both modes.
func TestPointerCostAttribution(t *testing.T) {
	src := `
class A { int f; }
class B { int f; }
class C { A g; }
class Main {
  static A pick(A[] pool) {
    int idx = 0;
    for (int i = 0; i < 300; i = i + 1) {   // expensive pointer computation
      idx = (idx * 7 + i) % pool.length;
    }
    return pool[idx];
  }
  static void main() {
    A[] pool = new A[4];
    for (int i = 0; i < pool.length; i = i + 1) {
      A x = new A();
      x.f = i;
      pool[i] = x;
    }
    A a = Main.pick(pool);     // a's POINTER is expensive, a.f is cheap
    B b = new B();
    b.f = a.f + 1;             // value flow: should not pay for the pointer
    C c = new C();
    c.g = a;                   // pointer flow: SHOULD pay for the pointer
  }
}`
	// The §1 argument is about *slices* (total transitive cost), so measure
	// the abstract cost of the two stores — the frequency-weighted backward
	// slice — rather than the one-hop RAC.
	type result struct{ bf, cg int64 }
	measure := func(traditional bool) result {
		prog, err := compileSrc(src)
		if err != nil {
			t.Fatal(err)
		}
		p := profiler.New(prog, profiler.Options{Slots: 16, Traditional: traditional})
		m := interp.New(prog)
		m.Tracer = p
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		an := NewAnalysis(p.G)
		bAlloc := allocNode(t, p, prog, siteOfNthNew(prog, "B", 0))
		cAlloc := allocNode(t, p, prog, siteOfNthNew(prog, "C", 0))
		var bField, cField *ir.Field
		for _, cls := range prog.Classes {
			for _, f := range cls.Fields {
				if cls.Name == "B" && f.Name == "f" {
					bField = f
				}
				if cls.Name == "C" && f.Name == "g" {
					cField = f
				}
			}
		}
		storeCost := func(loc depgraph.Loc) int64 {
			var cost int64
			an.G.StoresOf(loc, func(n *depgraph.Node) {
				cost = depgraph.AbstractCost(n)
			})
			return cost
		}
		return result{
			bf: storeCost(depgraph.Loc{Alloc: bAlloc, Field: bField.ID}),
			cg: storeCost(depgraph.Loc{Alloc: cAlloc, Field: cField.ID}),
		}
	}

	thin := measure(false)
	trad := measure(true)

	if thin.bf >= 300 {
		t.Errorf("thin slice cost of b.f = %v: the pointer computation leaked into the value cost", thin.bf)
	}
	if trad.bf < 300 {
		t.Errorf("traditional slice cost of b.f = %v: should absorb the 300-iteration pointer search", trad.bf)
	}
	if thin.cg < 300 {
		t.Errorf("thin slice cost of c.g = %v: storing the pointer should carry the pointer cost", thin.cg)
	}
	if thin.bf >= thin.cg {
		t.Errorf("attribution inverted: cost(b.f)=%v should be far below cost(c.g)=%v", thin.bf, thin.cg)
	}
}
