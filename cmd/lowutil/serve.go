package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lowutil/internal/server"
)

// cmdServe runs the HTTP profiling service until SIGINT/SIGTERM, then
// drains in-flight requests and exits.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8347", "listen address")
	sessions := fs.Int("sessions", 64, "max compiled sessions held in the LRU cache")
	inflight := fs.Int("inflight", 4, "max concurrently executing heavy requests")
	timeout := fs.Duration("timeout", 60*time.Second, "per-request deadline")
	drain := fs.Duration("drain", 10*time.Second, "shutdown grace period")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("serve takes no positional arguments")
	}

	log := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv := server.New(server.Config{
		MaxSessions:    *sessions,
		MaxInFlight:    *inflight,
		RequestTimeout: *timeout,
		Logger:         log,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Info("serving", "addr", *addr, "sessions", *sessions, "inflight", *inflight, "timeout", timeout.String())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Info("shutting down", "grace", drain.String())
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	srv.Close() // drain the job queue after the listener stops

	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
