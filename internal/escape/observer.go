package escape

import (
	"sort"

	"lowutil/internal/interp"
	"lowutil/internal/ir"
)

// Observer is an interp.Tracer recording the dynamic ground truth of the
// escape lattice: per allocation site, whether any object allocated there
// was dereferenced after its allocating frame popped. A dereference is a
// field or element access (load, store, or array-length read) on the object
// or a virtual dispatch on it as the receiver.
//
// The Observer owns Frame.Shadow (a monotonically increasing frame ID) and
// Object.Shadow (the allocating frame's ID), so it cannot be combined with
// another Shadow-owning tracer on the same machine.
type Observer struct {
	next    int64
	live    map[int64]bool
	escaped map[int]bool
}

// NewObserver returns an Observer ready to install as a machine's Tracer.
func NewObserver() *Observer {
	return &Observer{live: make(map[int64]bool), escaped: make(map[int]bool)}
}

// Exec implements interp.Tracer: allocations tag the new object with the
// current frame ID; heap accesses check the base object's allocating frame.
func (o *Observer) Exec(ev *interp.Event) {
	switch ev.In.Op {
	case ir.OpNew, ir.OpNewArray:
		if id, ok := ev.Frame.Shadow.(int64); ok {
			ev.New.Shadow = id
		}
	case ir.OpLoadField, ir.OpStoreField, ir.OpALoad, ir.OpAStore, ir.OpArrayLen:
		o.deref(ev.Base)
	}
}

// BeforeCall implements interp.Tracer: virtual dispatch dereferences the
// receiver.
func (o *Observer) BeforeCall(_ *ir.Instr, _ *interp.Frame, _ *ir.Method, recv *interp.Object) {
	if recv != nil {
		o.deref(recv)
	}
}

// EnterMethod implements interp.Tracer.
func (o *Observer) EnterMethod(fr *interp.Frame, _ *interp.Object) {
	o.next++
	fr.Shadow = o.next
	o.live[o.next] = true
}

// BeforeReturn implements interp.Tracer.
func (o *Observer) BeforeReturn(_ *ir.Instr, fr *interp.Frame) {
	if id, ok := fr.Shadow.(int64); ok {
		delete(o.live, id)
	}
}

// AfterCall implements interp.Tracer.
func (o *Observer) AfterCall(*ir.Instr, *interp.Frame, bool) {}

func (o *Observer) deref(obj *interp.Object) {
	if obj == nil {
		return
	}
	id, ok := obj.Shadow.(int64)
	if !ok {
		return
	}
	if !o.live[id] {
		o.escaped[obj.Site] = true
	}
}

// EscapedSites returns the allocation-site indices observed escaping their
// allocating frame, ascending.
func (o *Observer) EscapedSites() []int {
	out := make([]int, 0, len(o.escaped))
	for s := range o.escaped {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

var _ interp.Tracer = (*Observer)(nil)
