// Collections demonstrates the problematic-collection client (§3.2) on the
// MJ container library: two hash maps are built at the same cost, but one is
// queried constantly while the other is populated and never read. The
// collection ranking — containers by cost-benefit rate — singles out the
// write-only map even though the maps share their implementation.
//
// Run with: go run ./examples/collections
package main

import (
	"context"
	"fmt"
	"log"

	"lowutil"
	"lowutil/internal/mjlib"
)

const mainSrc = `
class Main {
  static void main() {
    IntMap hot = new IntMap();      // queried on every request
    hot.init();
    IntMap audit = new IntMap();    // populated "just in case", never read
    audit.init();
    int served = 0;
    for (int req = 0; req < 150; req = req + 1) {
      int user = hash(req) % 40;
      hot.put(user, req);
      audit.put(req, hash(user + req) % 1000);
      served = served + hot.get(user, 0);
    }
    print(served);
  }
}`

func main() {
	prog, err := lowutil.Compile(mjlib.Concat(mjlib.IntMap, mainSrc))
	if err != nil {
		log.Fatal(err)
	}
	profile, err := prog.ProfileContext(context.Background(), lowutil.WithSlots(64))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("containers ranked by cost-benefit rate (worst first):")
	for i, f := range profile.Collections(6) {
		fmt.Printf("%3d. %s\n", i+1, f)
	}
	fmt.Println()
	fmt.Println("the audit map ranks worst: four levels of structure (map →")
	fmt.Println("buckets → entries → values) built on every request, never queried")
}
