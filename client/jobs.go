package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// submitPayload is the POST /v2/jobs body.
type submitPayload struct {
	Key  string `json:"key,omitempty"`
	Jobs []Job  `json:"jobs"`
}

// SubmitBatch enqueues jobs under the idempotency key. An empty key gets
// a generated one, shared by every retry of this call, so a retried
// submission returns the original job IDs (flagged Duplicate) instead of
// enqueuing the work twice.
func (c *Client) SubmitBatch(ctx context.Context, key string, jobs []Job) (*Batch, error) {
	if len(jobs) == 0 {
		return nil, errors.New("client: empty batch")
	}
	if key == "" {
		key = newIdempotencyKey()
	}
	var out Batch
	if err := c.doJSON(ctx, http.MethodPost, "/v2/jobs", submitPayload{Key: key, Jobs: jobs}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// JobStatus fetches one job's snapshot.
func (c *Client) JobStatus(ctx context.Context, jobID string) (*JobStatus, error) {
	var out JobStatus
	if err := c.doJSON(ctx, http.MethodGet, "/v2/jobs/"+url.PathEscape(jobID), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BatchStatus fetches every job of a batch, in submission order.
func (c *Client) BatchStatus(ctx context.Context, batchID string) ([]*JobStatus, error) {
	var out struct {
		Jobs []*JobStatus `json:"jobs"`
	}
	if err := c.doJSON(ctx, http.MethodGet, "/v2/jobs/"+url.PathEscape(batchID), nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// errStreamFn marks an error returned by an Events callback, which must
// abort the stream without a retry.
type errStreamFn struct{ err error }

func (e *errStreamFn) Error() string { return e.err.Error() }
func (e *errStreamFn) Unwrap() error { return e.err }

// Events streams jobID's event log from sequence after+1 onward, invoking
// fn in order, until the job reaches a terminal state. A dropped
// connection reconnects with ?after=<last seen seq>, so fn sees every
// event exactly once no matter how often the stream breaks. An error from
// fn aborts the stream and is returned as-is.
func (c *Client) Events(ctx context.Context, jobID string, after int, fn func(Event) error) error {
	retries := 0
	for {
		last, terminal, err := c.streamOnce(ctx, jobID, after, fn)
		if err != nil {
			var fnErr *errStreamFn
			if errors.As(err, &fnErr) {
				return fnErr.err
			}
			if ctx.Err() != nil {
				return wrapCtxErr(ctx, err)
			}
			if !IsRetryable(err) {
				return err
			}
		} else if terminal {
			return nil
		}
		// Disconnected mid-stream (or the stream ended pre-terminal).
		// Progress resets the retry budget: a stream that keeps moving is
		// healthy even if the transport keeps dropping.
		if last > after {
			retries = 0
		} else {
			retries++
			if retries > c.maxRetries {
				if err == nil {
					err = fmt.Errorf("client: event stream for %s ended before a terminal event", jobID)
				}
				return err
			}
		}
		after = last
		if err := c.sleep(ctx, c.backoff(retries+1), retryAfterOf(err)); err != nil {
			return err
		}
	}
}

// streamOnce runs one GET of the event stream. It returns the last
// sequence number delivered to fn and whether a terminal event arrived.
func (c *Client) streamOnce(ctx context.Context, jobID string, after int, fn func(Event) error) (int, bool, error) {
	u := c.base + "/v2/jobs/" + url.PathEscape(jobID) + "/events?after=" + strconv.Itoa(after)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return after, false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return after, false, &transportError{err}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		return after, false, decodeAPIError(resp.StatusCode, resp.Header, raw)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	last := after
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			// A line truncated by a disconnect: resume after the last
			// complete event.
			return last, false, &transportError{fmt.Errorf("truncated event line: %w", err)}
		}
		if ev.Seq <= last {
			continue // replay overlap after a reconnect race
		}
		if err := fn(ev); err != nil {
			return last, false, &errStreamFn{err}
		}
		last = ev.Seq
		if ev.Type == "done" || ev.Type == "failed" {
			return last, true, nil
		}
	}
	if err := sc.Err(); err != nil {
		return last, false, &transportError{err}
	}
	return last, false, nil
}

// Wait follows jobID's events until it finishes and returns the final
// snapshot (including the result or typed error).
func (c *Client) Wait(ctx context.Context, jobID string) (*JobStatus, error) {
	if err := c.Events(ctx, jobID, 0, func(Event) error { return nil }); err != nil {
		return nil, err
	}
	return c.JobStatus(ctx, jobID)
}

// WaitBatch waits for every job of a batch and returns their final
// snapshots in submission order.
func (c *Client) WaitBatch(ctx context.Context, batch *Batch) ([]*JobStatus, error) {
	for _, j := range batch.Jobs {
		if err := c.Events(ctx, j.ID, 0, func(Event) error { return nil }); err != nil {
			return nil, err
		}
	}
	return c.BatchStatus(ctx, batch.ID)
}
