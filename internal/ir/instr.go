package ir

import "fmt"

// Op enumerates the three-address instruction opcodes. Every opcode costs
// one unit when executed, matching the paper's "each instruction is treated
// as having unit cost".
type Op uint8

const (
	// OpConst: Dst = Imm (an int constant) or null when Imm==0 and IsNull.
	OpConst Op = iota
	// OpMove: Dst = A (a copy assignment "a = b").
	OpMove
	// OpBin: Dst = A <BinOp> B (a computation with exactly one operator).
	OpBin
	// OpNeg: Dst = -A.
	OpNeg
	// OpNot: Dst = !A (logical not over 0/1).
	OpNot
	// OpNew: Dst = new Class. AllocSite is the dense allocation-site index.
	OpNew
	// OpNewArray: Dst = new Elem[A]. AllocSite set as for OpNew.
	OpNewArray
	// OpLoadField: Dst = A.Field (A holds the base reference).
	OpLoadField
	// OpStoreField: A.Field = B.
	OpStoreField
	// OpLoadStatic: Dst = Static.
	OpLoadStatic
	// OpStoreStatic: Static = A.
	OpStoreStatic
	// OpALoad: Dst = A[B].
	OpALoad
	// OpAStore: A[B] = C2 (C2 is the stored value).
	OpAStore
	// OpArrayLen: Dst = len(A).
	OpArrayLen
	// OpIf: if A <Cmp> B goto Target. This is the paper's predicate
	// instruction: it consumes its operands at a context-free node.
	OpIf
	// OpGoto: unconditional jump to Target. Gotos perform no data flow and
	// create no dependence node.
	OpGoto
	// OpCall: Dst = Callee(args...) — static call or, when Callee is an
	// instance method, virtual dispatch on the receiver (Args[0]).
	OpCall
	// OpReturn: return A (or return void when HasA is false).
	OpReturn
	// OpNative: Dst = Native(args...). Native methods are consumers: their
	// dependence node has no context and consumes every argument, modelling
	// "a native node is created for each call site that invokes a native
	// method".
	OpNative
	// OpInstanceOf: Dst = (A instanceof Class) as 0/1.
	OpInstanceOf
)

var opNames = [...]string{
	OpConst:       "const",
	OpMove:        "move",
	OpBin:         "bin",
	OpNeg:         "neg",
	OpNot:         "not",
	OpNew:         "new",
	OpNewArray:    "newarray",
	OpLoadField:   "getfield",
	OpStoreField:  "putfield",
	OpLoadStatic:  "getstatic",
	OpStoreStatic: "putstatic",
	OpALoad:       "aload",
	OpAStore:      "astore",
	OpArrayLen:    "arraylen",
	OpIf:          "if",
	OpGoto:        "goto",
	OpCall:        "call",
	OpReturn:      "return",
	OpNative:      "native",
	OpInstanceOf:  "instanceof",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// BinOp enumerates binary arithmetic/logic operators for OpBin.
type BinOp uint8

const (
	Add BinOp = iota
	Sub
	Mul
	Div
	Rem
	And // bitwise and (also logical over 0/1)
	Or
	Xor
	Shl
	Shr
)

var binNames = [...]string{Add: "+", Sub: "-", Mul: "*", Div: "/", Rem: "%",
	And: "&", Or: "|", Xor: "^", Shl: "<<", Shr: ">>"}

func (b BinOp) String() string {
	if int(b) < len(binNames) {
		return binNames[b]
	}
	return fmt.Sprintf("bin(%d)", uint8(b))
}

// Cmp enumerates comparison operators for OpIf.
type Cmp uint8

const (
	Eq Cmp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

var cmpNames = [...]string{Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}

func (c Cmp) String() string {
	if int(c) < len(cmpNames) {
		return cmpNames[c]
	}
	return fmt.Sprintf("cmp(%d)", uint8(c))
}

// NativeFn identifies a built-in native method. Natives model the JVM's
// native boundary: values passed to them are consumed (they "benefit the
// overall execution").
type NativeFn uint8

const (
	// NativePrint writes its single int argument to the machine's output.
	NativePrint NativeFn = iota
	// NativePrintChar writes its argument as a character.
	NativePrintChar
	// NativeRand returns a deterministic pseudo-random int in [0, A).
	NativeRand
	// NativeTime returns a monotonically increasing virtual clock value.
	NativeTime
	// NativeFloatToBits packs a fixed-point "float" into an int (sunflow's
	// Float.floatToIntBits stand-in).
	NativeFloatToBits
	// NativeBitsToFloat is the inverse of NativeFloatToBits.
	NativeBitsToFloat
	// NativeAssert consumes its argument; the harness counts assertions.
	NativeAssert
	// NativeDBQuery models a database round-trip (derby/tradebeans): it
	// consumes its arguments and returns a value derived from them after a
	// configurable amount of synthetic work.
	NativeDBQuery
	// NativeHash returns a mixed hash of its argument.
	NativeHash
)

var nativeNames = [...]string{
	NativePrint:       "print",
	NativePrintChar:   "printChar",
	NativeRand:        "rand",
	NativeTime:        "time",
	NativeFloatToBits: "floatToIntBits",
	NativeBitsToFloat: "intBitsToFloat",
	NativeAssert:      "assert",
	NativeDBQuery:     "dbQuery",
	NativeHash:        "hash",
}

func (n NativeFn) String() string {
	if int(n) < len(nativeNames) {
		return nativeNames[n]
	}
	return fmt.Sprintf("native(%d)", uint8(n))
}

// NativeByName maps an MJ-source native name to its NativeFn.
func NativeByName(name string) (NativeFn, bool) {
	for i, n := range nativeNames {
		if n == name {
			return NativeFn(i), true
		}
	}
	return 0, false
}

// Instr is a single three-address instruction. Operand meaning depends on Op
// (see the Op constants). Local operands are frame-local slot indices.
type Instr struct {
	Op Op

	Dst int // destination local slot (-1 when unused)
	A   int // first operand local slot (-1 when unused)
	B   int // second operand local slot (-1 when unused)
	C2  int // third operand local slot (OpAStore value; -1 when unused)

	Imm    int64        // OpConst immediate
	IsNull bool         // OpConst: produce null instead of Imm
	Bin    BinOp        // OpBin
	Cmp    Cmp          // OpIf
	Target int          // OpIf / OpGoto: index into Method.Code
	Class  *Class       // OpNew / OpInstanceOf
	Elem   *Type        // OpNewArray element type
	Field  *Field       // OpLoadField / OpStoreField
	Static *StaticField // OpLoadStatic / OpStoreStatic
	Callee *Method      // OpCall (virtual dispatch re-resolves by name)
	Native NativeFn     // OpNative
	Args   []int        // OpCall / OpNative argument local slots
	HasA   bool         // OpReturn: returns a value

	// ID is the globally unique static-instruction identifier — the element
	// of domain I that this instruction contributes.
	ID int
	// AllocSite is the dense allocation-site index for OpNew/OpNewArray
	// (domain O); -1 otherwise.
	AllocSite int
	// Method is the containing method (set when the program is sealed).
	Method *Method
	// PC is the instruction's index within Method.Code.
	PC int
	// Line is an optional source line for diagnostics (0 when unknown).
	Line int
}

// IsPredicate reports whether the instruction is an if predicate.
func (in *Instr) IsPredicate() bool { return in.Op == OpIf }

// IsConsumer reports whether the instruction's dependence node is a consumer
// node (predicate or native) in the sense of the paper.
func (in *Instr) IsConsumer() bool { return in.Op == OpIf || in.Op == OpNative }

// IsAlloc reports whether the instruction allocates an object or array
// (an "underlined" node).
func (in *Instr) IsAlloc() bool { return in.Op == OpNew || in.Op == OpNewArray }

// ReadsHeap reports whether the instruction reads a static or object field
// or an array element (a "circled" node). Heap readers terminate HRAC
// traversals.
func (in *Instr) ReadsHeap() bool {
	switch in.Op {
	case OpLoadField, OpLoadStatic, OpALoad, OpArrayLen:
		return true
	}
	return false
}

// WritesHeap reports whether the instruction writes a static or object field
// or an array element (a "boxed" node). Heap writers terminate HRAB
// traversals.
func (in *Instr) WritesHeap() bool {
	switch in.Op {
	case OpStoreField, OpStoreStatic, OpAStore:
		return true
	}
	return false
}

// Def returns the local slot the instruction writes, or -1. For OpCall the
// destination is assigned when the callee returns, but it is still this
// instruction's definition for dataflow purposes.
func (in *Instr) Def() int { return in.Dst }

// Uses calls f for every local slot the instruction reads. base is true for
// base-pointer operands — the object/array reference of a field or element
// access — which thin slicing excludes from value flow; every other operand
// is a value use. A slot read twice (e.g. v0[v0]) is reported twice.
func (in *Instr) Uses(f func(slot int, base bool)) {
	switch in.Op {
	case OpMove, OpNeg, OpNot, OpNewArray, OpInstanceOf:
		f(in.A, false)
	case OpBin:
		f(in.A, false)
		f(in.B, false)
	case OpLoadField:
		f(in.A, true)
	case OpStoreField:
		f(in.A, true)
		f(in.B, false)
	case OpStoreStatic:
		f(in.A, false)
	case OpALoad:
		f(in.A, true)
		f(in.B, false)
	case OpAStore:
		f(in.A, true)
		f(in.B, false)
		f(in.C2, false)
	case OpArrayLen:
		f(in.A, true)
	case OpIf:
		f(in.A, false)
		f(in.B, false)
	case OpCall, OpNative:
		for _, a := range in.Args {
			f(a, false)
		}
	case OpReturn:
		if in.HasA {
			f(in.A, false)
		}
	}
}

// String renders the instruction in a compact disassembly form.
func (in *Instr) String() string {
	switch in.Op {
	case OpConst:
		if in.IsNull {
			return fmt.Sprintf("v%d = null", in.Dst)
		}
		return fmt.Sprintf("v%d = %d", in.Dst, in.Imm)
	case OpMove:
		return fmt.Sprintf("v%d = v%d", in.Dst, in.A)
	case OpBin:
		return fmt.Sprintf("v%d = v%d %s v%d", in.Dst, in.A, in.Bin, in.B)
	case OpNeg:
		return fmt.Sprintf("v%d = -v%d", in.Dst, in.A)
	case OpNot:
		return fmt.Sprintf("v%d = !v%d", in.Dst, in.A)
	case OpNew:
		return fmt.Sprintf("v%d = new %s [site %d]", in.Dst, in.Class.Name, in.AllocSite)
	case OpNewArray:
		return fmt.Sprintf("v%d = new %s[v%d] [site %d]", in.Dst, in.Elem, in.A, in.AllocSite)
	case OpLoadField:
		return fmt.Sprintf("v%d = v%d.%s", in.Dst, in.A, in.Field.Name)
	case OpStoreField:
		return fmt.Sprintf("v%d.%s = v%d", in.A, in.Field.Name, in.B)
	case OpLoadStatic:
		return fmt.Sprintf("v%d = %s", in.Dst, in.Static.QualifiedName())
	case OpStoreStatic:
		return fmt.Sprintf("%s = v%d", in.Static.QualifiedName(), in.A)
	case OpALoad:
		return fmt.Sprintf("v%d = v%d[v%d]", in.Dst, in.A, in.B)
	case OpAStore:
		return fmt.Sprintf("v%d[v%d] = v%d", in.A, in.B, in.C2)
	case OpArrayLen:
		return fmt.Sprintf("v%d = len(v%d)", in.Dst, in.A)
	case OpIf:
		return fmt.Sprintf("if v%d %s v%d goto %d", in.A, in.Cmp, in.B, in.Target)
	case OpGoto:
		return fmt.Sprintf("goto %d", in.Target)
	case OpCall:
		return fmt.Sprintf("v%d = call %s %v", in.Dst, in.Callee.QualifiedName(), in.Args)
	case OpReturn:
		if in.HasA {
			return fmt.Sprintf("return v%d", in.A)
		}
		return "return"
	case OpNative:
		return fmt.Sprintf("v%d = native %s %v", in.Dst, in.Native, in.Args)
	case OpInstanceOf:
		return fmt.Sprintf("v%d = v%d instanceof %s", in.Dst, in.A, in.Class.Name)
	default:
		return in.Op.String()
	}
}
