// Package fuzzgen is the randomized correctness backstop for every engine
// pair in the repository: a seeded, deterministic generator of well-formed
// MJ programs plus a differential harness that checks, on each generated
// program, the invariants the fixed 18-workload suites prove — interpreter
// output/step/alloc parity between the handler-table and legacy engines,
// byte-identical profile reports dense-vs-legacy, dynamic Gcost containment
// in the static interprocedural slice (CHA and RTA+ObjCtx), cost-benefit
// ranking preservation under the static prune, the SSA-vs-dense vet
// agreement relations, escape-analysis soundness, and byte-stable report
// re-emission.
//
// Generated programs are correct by construction: every loop is bounded,
// recursion carries an explicit decreasing depth parameter, the method call
// graph is otherwise acyclic by generation order, reference locals are
// initialized at declaration, reference-typed field loads are consumed only
// under a null guard, array indices are loop variables reduced modulo the
// array length, and division is only by positive constants. A generated
// program that fails to compile, crashes, or exceeds the step budget is
// itself reported as an invariant violation ("the generator's contract").
//
// When an invariant fails, the harness shrinks the program by greedy
// statement, method, and class deletion (plus block unwrapping), keeping
// each deletion only when the candidate still compiles and still fails the
// same invariant. The shrunk reproducer, its derived seed, and its index in
// the run are reported, so the failure replays deterministically with
// `lowutil fuzz -seed <root seed> -n <index+1>`.
//
// The checked-in corpus under corpus/ replays a spread of generated
// programs through the full harness in ordinary `go test`.
package fuzzgen

// rng is a splitmix64 PRNG. It is implemented here rather than borrowed
// from math/rand so that generated programs are reproducible from the seed
// alone, independent of Go library versions.
type rng struct{ state uint64 }

func newRng(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n). n must be positive.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeInt returns a uniform int in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// chance reports true with probability num/den.
func (r *rng) chance(num, den int) bool { return r.intn(den) < num }

// pick returns a uniform element of xs.
func pick[T any](r *rng, xs []T) T { return xs[r.intn(len(xs))] }

// deriveSeed mixes the root seed with a program index so each generated
// program has an independent, reproducible seed of its own.
func deriveSeed(root uint64, index int) uint64 {
	z := root ^ (uint64(index)+1)*0xD1B54A32D192ED03
	z = (z ^ (z >> 29)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 32)) * 0x94D049BB133111EB
	return z ^ (z >> 29)
}
