package evalharness

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable1SmallSubset(t *testing.T) {
	// Workers: 1 — the overhead assertions below compare wall clocks, which
	// a concurrent sweep would perturb.
	rows, err := Table1(Options{Scale: 1, Slots: []int{8, 16}, Only: []string{"chart", "fop", "bloat"}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byName := map[string]*Row{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.Steps < 1000 {
			t.Errorf("%s: too few steps (%d)", r.Name, r.Steps)
		}
		if len(r.BySlots) != 2 {
			t.Fatalf("%s: slot results = %d", r.Name, len(r.BySlots))
		}
		for _, sr := range r.BySlots {
			if sr.Nodes <= 0 || sr.DepEdges <= 0 {
				t.Errorf("%s s=%d: empty graph", r.Name, sr.S)
			}
			if sr.Overhead <= 1 {
				t.Errorf("%s s=%d: overhead %.2f must exceed 1x", r.Name, sr.S, sr.Overhead)
			}
			if sr.CR < 0 || sr.CR > 1 {
				t.Errorf("%s s=%d: CR out of range: %v", r.Name, sr.S, sr.CR)
			}
			// The central scalability claim: the graph is orders of
			// magnitude smaller than the trace.
			if int64(sr.Nodes) > r.Steps/10 {
				t.Errorf("%s s=%d: %d nodes vs %d instances — not compact",
					r.Name, sr.S, sr.Nodes, r.Steps)
			}
		}
		// s=16 admits at least as many nodes as s=8.
		if r.BySlots[1].Nodes < r.BySlots[0].Nodes {
			t.Errorf("%s: nodes shrank when s grew: %d → %d",
				r.Name, r.BySlots[0].Nodes, r.BySlots[1].Nodes)
		}
	}
	// Shape: bloat and chart out-IPD fop.
	if byName["bloat"].IPD <= byName["fop"].IPD || byName["chart"].IPD <= byName["fop"].IPD {
		t.Errorf("IPD shape wrong: bloat=%.1f chart=%.1f fop=%.1f",
			byName["bloat"].IPD, byName["chart"].IPD, byName["fop"].IPD)
	}

	var buf bytes.Buffer
	Format(rows, &buf)
	out := buf.String()
	for _, frag := range []string{"s = 8", "s = 16", "part (c)", "chart", "IPD"} {
		if !strings.Contains(out, frag) {
			t.Errorf("formatted table missing %q:\n%s", frag, out)
		}
	}
}

func TestTable1ParallelKeepsOrderAndResults(t *testing.T) {
	only := []string{"chart", "fop", "bloat"}
	serial, err := Table1(Options{Scale: 1, Slots: []int{8}, Only: only, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Table1(Options{Scale: 1, Slots: []int{8}, Only: only, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("rows: %d vs %d", len(parallel), len(serial))
	}
	for i, p := range parallel {
		s := serial[i]
		// Wall clocks differ under contention; everything else must match.
		if p.Name != s.Name || p.Steps != s.Steps || p.Allocs != s.Allocs ||
			p.IPD != s.IPD || p.IPP != s.IPP || p.NLD != s.NLD {
			t.Fatalf("row %d differs: parallel %+v serial %+v", i, p, s)
		}
		for k := range p.BySlots {
			ps, ss := p.BySlots[k], s.BySlots[k]
			if ps.Nodes != ss.Nodes || ps.DepEdges != ss.DepEdges ||
				ps.RefEdges != ss.RefEdges || ps.CR != ss.CR {
				t.Fatalf("%s s=%d differs: parallel %+v serial %+v", p.Name, ps.S, ps, ss)
			}
		}
	}
}

func TestTable1UnknownWorkload(t *testing.T) {
	if _, err := Table1(Options{Only: []string{"nope"}}); err == nil {
		t.Fatal("want unknown-workload error")
	}
}

func TestPhaseExperimentReducesOverhead(t *testing.T) {
	res, err := PhaseExperiment("tradebeans", 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Reduction <= 1 {
		t.Errorf("phase restriction should reduce overhead: full=%.1fx phase=%.1fx",
			res.FullOverhead, res.PhaseOverhead)
	}
	if res.PhaseNodes >= res.FullNodes {
		t.Errorf("phase graph (%d nodes) should be smaller than full (%d)",
			res.PhaseNodes, res.FullNodes)
	}
	if res.PhaseNodes == 0 {
		t.Error("phase graph empty: the window never enabled tracking")
	}
}

func TestThinVsTraditionalAblation(t *testing.T) {
	res, err := ThinVsTraditional("xalan", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraditionalEdges <= res.ThinEdges {
		t.Errorf("traditional edges (%d) should exceed thin (%d)",
			res.TraditionalEdges, res.ThinEdges)
	}
	if res.TradSliceNodes < res.ThinSliceNodes {
		t.Errorf("traditional slices (%d) should be at least as large as thin (%d)",
			res.TradSliceNodes, res.ThinSliceNodes)
	}
}

func TestAbstractVsConcreteAblation(t *testing.T) {
	res, err := AbstractVsConcrete("chart", 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnabstractedNodes <= 2*res.AbstractNodes {
		t.Errorf("unabstracted graph (%d nodes) should dwarf abstract (%d)",
			res.UnabstractedNodes, res.AbstractNodes)
	}
	if res.UnabstractedBytes <= res.AbstractBytes {
		t.Errorf("unabstracted memory (%d) should exceed abstract (%d)",
			res.UnabstractedBytes, res.AbstractBytes)
	}
}
