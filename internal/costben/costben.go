// Package costben implements the relative object cost-benefit analysis of
// §3 of the paper: RAC/RAB per abstract heap location (Definitions 5 and 6),
// n-RAC/n-RAB per data structure (Definition 7), and the ranked
// low-utility-structure report the case studies are driven by.
package costben

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"lowutil/internal/depgraph"
	"lowutil/internal/ir"
	"lowutil/internal/par"
)

// InfiniteRAB marks a single location whose values flow to predicate or
// native consumers ("the value contributes to control decision making or is
// used by the JVM, and thus benefits the overall execution").
const InfiniteRAB = math.MaxFloat64

// ConsumedRAB is the finite "large RAB" such a location contributes when
// benefits are aggregated over a data structure. The paper assigns "a large
// RAB", not an absorbing infinity: with an absorbing value, any structure
// with a single control-feeding field (e.g. a hash map, whose keys always
// drive probe comparisons) could never be ranked, even if every other field
// were pure waste. A large finite weight keeps consumed fields practically
// unrankable on their own while letting the waste in sibling fields surface.
const ConsumedRAB = 1e7

// DefaultTreeHeight is the reference-chain length used for data-structure
// aggregation; the paper uses 4, "the reference chain length for the most
// complex container classes in the Java collection framework".
const DefaultTreeHeight = 4

// Config selects the analysis implementation.
type Config struct {
	// Legacy switches back to the per-query graph traversal the frozen DP
	// replaced. Legacy caches are not goroutine-safe, so legacy analyses
	// always rank serially.
	Legacy bool
	// Workers bounds the ranking worker pool; 0 means GOMAXPROCS.
	Workers int
}

// Analysis computes the paper's metrics over a finished Gcost. The default
// implementation freezes the graph into a CSR snapshot and computes
// HRAC/HRAB for all nodes in one condensed DP sweep; Config.Legacy restores
// the per-query traversal path.
type Analysis struct {
	G   *depgraph.Graph
	cfg Config

	// Frozen path: snapshot plus the snapshot-memoized DP arrays, attached
	// on first use.
	snap   *depgraph.Snapshot
	dpOnce sync.Once
	dp     *dpData

	// Legacy path: per-node memo maps.
	hrac map[*depgraph.Node]int64
	hrab map[*depgraph.Node]hrabEntry
}

type hrabEntry struct {
	sum      int64
	consumed bool
}

// NewAnalysis wraps a finished graph with the default (frozen) configuration.
func NewAnalysis(g *depgraph.Graph) *Analysis {
	return NewAnalysisWith(g, Config{})
}

// NewAnalysisWith wraps a finished graph with an explicit configuration.
func NewAnalysisWith(g *depgraph.Graph, cfg Config) *Analysis {
	a := &Analysis{G: g, cfg: cfg}
	if cfg.Legacy {
		a.hrac = make(map[*depgraph.Node]int64)
		a.hrab = make(map[*depgraph.Node]hrabEntry)
	} else {
		a.snap = g.Freeze()
	}
	return a
}

// ensureDP attaches the dense HRAC/HRAB/RAC/RAB arrays; safe for concurrent
// callers, and cached on the snapshot across analyses.
func (a *Analysis) ensureDP() {
	a.dpOnce.Do(func() {
		a.dp = dpFor(a.snap)
	})
}

// HRAC returns the heap-relative abstract cost of a node.
func (a *Analysis) HRAC(n *depgraph.Node) int64 {
	if a.cfg.Legacy {
		if v, ok := a.hrac[n]; ok {
			return v
		}
		v := depgraph.HRAC(n)
		a.hrac[n] = v
		return v
	}
	a.ensureDP()
	if id, ok := a.snap.ID(n); ok {
		return a.dp.hrac[id]
	}
	return depgraph.HRAC(n) // node added after the snapshot was taken
}

// HRAB returns the heap-relative abstract benefit of a node and whether the
// value reached a consumer.
func (a *Analysis) HRAB(n *depgraph.Node) (int64, bool) {
	if a.cfg.Legacy {
		if v, ok := a.hrab[n]; ok {
			return v.sum, v.consumed
		}
		sum, consumed := depgraph.HRAB(n)
		a.hrab[n] = hrabEntry{sum, consumed}
		return sum, consumed
	}
	a.ensureDP()
	if id, ok := a.snap.ID(n); ok {
		return a.dp.hrab[id], a.dp.consumed[id]
	}
	return depgraph.HRAB(n)
}

// RAC returns the relative abstract cost of an abstract location: the mean
// HRAC of the store nodes that write it (Definition 5). Locations never
// written have RAC 0.
func (a *Analysis) RAC(loc depgraph.Loc) float64 {
	if !a.cfg.Legacy {
		a.ensureDP()
		if li, ok := a.snap.LocID(loc); ok {
			return a.dp.rac[li]
		}
		return 0 // unknown location: never stored or loaded
	}
	var sum int64
	n := 0
	a.G.StoresOf(loc, func(s *depgraph.Node) {
		sum += a.HRAC(s)
		n++
	})
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// RAB returns the relative abstract benefit of an abstract location: the
// mean HRAB of the load nodes that read it (Definition 6); InfiniteRAB if
// any read value reaches a predicate or native consumer; 0 if the location
// is never read.
func (a *Analysis) RAB(loc depgraph.Loc) float64 {
	if !a.cfg.Legacy {
		a.ensureDP()
		if li, ok := a.snap.LocID(loc); ok {
			return a.dp.rab[li]
		}
		return 0
	}
	var sum int64
	n := 0
	infinite := false
	a.G.LoadsOf(loc, func(l *depgraph.Node) {
		s, consumed := a.HRAB(l)
		if consumed {
			infinite = true
		}
		sum += s
		n++
	})
	if infinite {
		return InfiniteRAB
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Tree is the object reference tree RT_n of Definition 7: the set of
// allocation nodes within n reference hops of the root, with cycles removed
// by first-visit.
type Tree struct {
	Root  *depgraph.Node
	Depth map[*depgraph.Node]int
}

// ObjectTree builds RT_n rooted at root using the graph's points-to
// children.
func (a *Analysis) ObjectTree(root *depgraph.Node, height int) *Tree {
	t := &Tree{Root: root, Depth: map[*depgraph.Node]int{root: 0}}
	frontier := []*depgraph.Node{root}
	for d := 0; d < height && len(frontier) > 0; d++ {
		var next []*depgraph.Node
		for _, owner := range frontier {
			a.G.Children(owner, func(_ int, child *depgraph.Node) {
				if _, seen := t.Depth[child]; seen {
					return // cycle or diamond: keep first (shallowest) visit
				}
				t.Depth[child] = d + 1
				next = append(next, child)
			})
		}
		frontier = next
	}
	return t
}

// NRAC computes the n-RAC of the data structure rooted at root: the sum of
// RACs of every field of every object strictly inside the tree (depth < n,
// so that the field's target — if any — is still within RT_n).
func (a *Analysis) NRAC(root *depgraph.Node, height int) float64 {
	if !a.cfg.Legacy {
		a.ensureDP()
		if id, ok := a.snap.ID(root); ok {
			v, _ := aggregateFrozen(a.snap, a.dp, id, height, false)
			return v
		}
	}
	v, _ := a.aggregate(root, height, a.RAC)
	return v
}

// NRAB computes the n-RAB, symmetric to NRAC. Fields whose values reach
// consumers contribute the finite ConsumedRAB weight; the second result of
// NRABDetail reports whether any such field exists.
func (a *Analysis) NRAB(root *depgraph.Node, height int) float64 {
	v, _ := a.NRABDetail(root, height)
	return v
}

// NRABDetail is NRAB plus the consumed flag: true when at least one
// aggregated field's values reach a predicate or native consumer.
func (a *Analysis) NRABDetail(root *depgraph.Node, height int) (float64, bool) {
	if !a.cfg.Legacy {
		a.ensureDP()
		if id, ok := a.snap.ID(root); ok {
			return aggregateFrozen(a.snap, a.dp, id, height, true)
		}
	}
	return a.aggregate(root, height, a.RAB)
}

func (a *Analysis) aggregate(root *depgraph.Node, height int, metric func(depgraph.Loc) float64) (float64, bool) {
	t := a.ObjectTree(root, height)
	consumed := false
	// t.Depth and FieldsOf iterate maps; float addition is not associative,
	// so sum the per-field values in sorted order to keep results
	// byte-identical across runs.
	var vals []float64
	for owner, depth := range t.Depth {
		if depth >= height {
			continue
		}
		a.G.FieldsOf(owner, func(field int) {
			v := metric(depgraph.Loc{Alloc: owner, Field: field})
			if v == InfiniteRAB {
				consumed = true
				v = ConsumedRAB
			}
			vals = append(vals, v)
		})
	}
	sort.Float64s(vals)
	total := 0.0
	for _, v := range vals {
		total += v
	}
	return total, consumed
}

// StructureReport is one ranked entry of the low-utility report: a data
// structure (identified by its context-annotated allocation node) with its
// aggregated cost, benefit and cost/benefit rate.
type StructureReport struct {
	Alloc *depgraph.Node
	Site  *ir.Instr
	NRAC  float64
	NRAB  float64
	// Rate is NRAC / max(NRAB, 1).
	Rate float64
	// Consumed reports whether any aggregated field's values reach program
	// output or control decisions (those fields contribute ConsumedRAB).
	Consumed bool
	// AllocFreq is how many objects the abstraction allocated.
	AllocFreq int64
}

func (r *StructureReport) String() string {
	ben := fmt.Sprintf("%.1f", r.NRAB)
	if r.NRAB == InfiniteRAB {
		ben = "inf"
	}
	where := r.Site.Method.QualifiedName()
	return fmt.Sprintf("site %d (%s, pc %d): cost=%.1f benefit=%s rate=%.2f allocs=%d",
		r.Site.AllocSite, where, r.Site.PC, r.NRAC, ben, r.Rate, r.AllocFreq)
}

// Rate computes the suspiciousness rate from a cost and benefit.
func Rate(nrac, nrab float64) float64 {
	if nrab == InfiniteRAB {
		return 0
	}
	if nrab < 1 {
		nrab = 1
	}
	return nrac / nrab
}

// RankStructures computes the full low-utility ranking over every allocation
// node in the graph, most suspicious first. Ties break by higher cost, then
// by site ID for determinism.
func (a *Analysis) RankStructures(height int) []*StructureReport {
	if height <= 0 {
		height = DefaultTreeHeight
	}
	var allocs []*depgraph.Node
	a.G.Nodes(func(n *depgraph.Node) {
		if n.Eff == depgraph.EffAlloc {
			allocs = append(allocs, n)
		}
	})
	workers := a.cfg.Workers
	if a.cfg.Legacy {
		workers = 1 // legacy memo maps are not goroutine-safe
	} else {
		a.ensureDP() // build the shared DP arrays before workers start
	}
	out := make([]*StructureReport, len(allocs))
	par.ForEach(len(allocs), workers, func(i int) {
		n := allocs[i]
		cost := a.NRAC(n, height)
		ben, consumed := a.NRABDetail(n, height)
		out[i] = &StructureReport{
			Alloc:     n,
			Site:      n.In,
			NRAC:      cost,
			NRAB:      ben,
			Rate:      Rate(cost, ben),
			Consumed:  consumed,
			AllocFreq: n.Freq(),
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		if out[i].NRAC != out[j].NRAC {
			return out[i].NRAC > out[j].NRAC
		}
		if out[i].Site.AllocSite != out[j].Site.AllocSite {
			return out[i].Site.AllocSite < out[j].Site.AllocSite
		}
		return out[i].Alloc.D < out[j].Alloc.D
	})
	return out
}

// RankBySite aggregates RankStructures entries per static allocation site
// (summing across contexts), most suspicious first. This is the per-site
// view used when comparing against planted bloat.
func (a *Analysis) RankBySite(height int) []*SiteReport {
	perSite := make(map[int]*SiteReport)
	for _, r := range a.RankStructures(height) {
		s := perSite[r.Site.AllocSite]
		if s == nil {
			s = &SiteReport{Site: r.Site}
			perSite[r.Site.AllocSite] = s
		}
		s.NRAC += r.NRAC
		s.NRAB += r.NRAB
		s.Consumed = s.Consumed || r.Consumed
		s.AllocFreq += r.AllocFreq
	}
	out := make([]*SiteReport, 0, len(perSite))
	for _, s := range perSite {
		s.Rate = Rate(s.NRAC, s.NRAB)
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		if out[i].NRAC != out[j].NRAC {
			return out[i].NRAC > out[j].NRAC
		}
		return out[i].Site.AllocSite < out[j].Site.AllocSite
	})
	return out
}

// SiteReport is a per-allocation-site aggregation of StructureReports.
type SiteReport struct {
	Site      *ir.Instr
	NRAC      float64
	NRAB      float64
	Rate      float64
	Consumed  bool
	AllocFreq int64
}

func (s *SiteReport) String() string {
	ben := fmt.Sprintf("%.1f", s.NRAB)
	if s.NRAB == InfiniteRAB {
		ben = "inf"
	}
	return fmt.Sprintf("site %d (%s pc %d): cost=%.1f benefit=%s rate=%.2f allocs=%d",
		s.Site.AllocSite, s.Site.Method.QualifiedName(), s.Site.PC, s.NRAC, ben, s.Rate, s.AllocFreq)
}

// FormatTop renders the top k site reports as a table.
func FormatTop(reports []*SiteReport, k int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-5s %-32s %12s %12s %10s %9s\n", "site", "where", "n-RAC", "n-RAB", "rate", "allocs")
	for i, r := range reports {
		if i >= k {
			break
		}
		ben := fmt.Sprintf("%12.1f", r.NRAB)
		if r.NRAB == InfiniteRAB {
			ben = fmt.Sprintf("%12s", "inf")
		}
		fmt.Fprintf(&sb, "%-5d %-32s %12.1f %s %10.2f %9d\n",
			r.Site.AllocSite,
			fmt.Sprintf("%s:%d", r.Site.Method.QualifiedName(), r.Site.PC),
			r.NRAC, ben, r.Rate, r.AllocFreq)
	}
	return sb.String()
}

// NodeCostRow is one line of the Figure 3(c)-style table: an abstract node
// of a method with its execution frequency and abstract cost (Definition 4).
type NodeCostRow struct {
	Node *depgraph.Node
	Freq int64
	// AbstractCost is the frequency sum of all nodes that can reach this
	// one — the cumulative effort since the beginning of the execution.
	AbstractCost int64
}

// MethodNodeCosts regenerates the Figure 3(c) table for one method: every
// abstract node of the method's instructions with Freq and abstract cost,
// ordered by PC then context. This is the "abstract cost" view the paper
// contrasts with the relative metrics (costs of later nodes are almost
// always larger — the ab initio problem §3 then solves).
func MethodNodeCosts(g *depgraph.Graph, method *ir.Method) []NodeCostRow {
	var rows []NodeCostRow
	g.Nodes(func(n *depgraph.Node) {
		if n.In.Method != method {
			return
		}
		rows = append(rows, NodeCostRow{
			Node:         n,
			Freq:         n.Freq(),
			AbstractCost: depgraph.AbstractCost(n),
		})
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Node.In.PC != rows[j].Node.In.PC {
			return rows[i].Node.In.PC < rows[j].Node.In.PC
		}
		return rows[i].Node.D < rows[j].Node.D
	})
	return rows
}

// FormatNodeCosts renders MethodNodeCosts as the paper's three-column table.
func FormatNodeCosts(rows []NodeCostRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %10s %12s\n", "Node", "Freq", "AC")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-40s %10d %12d\n",
			fmt.Sprintf("pc%d %s ^%d", r.Node.In.PC, r.Node.In, r.Node.D),
			r.Freq, r.AbstractCost)
	}
	return sb.String()
}
