package lowutil

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

const quickSrc = `
class Point { int x; int y; }
class Series {
  Point[] items;
  int size;
  void init(int cap) { this.items = new Point[cap]; this.size = 0; }
  void add(Point p) { this.items[this.size] = p; this.size = this.size + 1; }
  int count() { return this.size; }
}
class Main {
  static void main() {
    int axisUnits = 0;
    for (int s = 0; s < 20; s = s + 1) {
      Series ser = new Series();
      ser.init(50);
      for (int i = 0; i < 50; i = i + 1) {
        Point p = new Point();
        p.x = hash(s * 100 + i) % 640;
        p.y = hash(s * 200 + i) % 480;
        ser.add(p);
      }
      axisUnits = axisUnits + ser.count();
    }
    print(axisUnits);
  }
}`

func TestFacadeCompileRun(t *testing.T) {
	prog, err := Compile(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 1 || res.Output[0] != 20*50 {
		t.Fatalf("output = %v, want [1000]", res.Output)
	}
	if res.Steps == 0 || res.Allocs == 0 {
		t.Error("counters empty")
	}
	if !strings.Contains(prog.Disassemble(), "class Series") {
		t.Error("disassembly incomplete")
	}
	if prog.NumInstructions() < 20 {
		t.Error("instruction count too low")
	}
}

func TestFacadeProfileFlagsPoints(t *testing.T) {
	prog, err := Compile(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := prog.ProfileContext(context.Background(), WithSlots(16))
	if err != nil {
		t.Fatal(err)
	}
	top := profile.TopStructures(5)
	if len(top) == 0 {
		t.Fatal("no findings")
	}
	// The Point objects (expensive hash coordinates, never read) must rank
	// first or second, with finite benefit.
	found := false
	for _, f := range top[:2] {
		if strings.Contains(f.Where, "new Point") && !f.ReachesConsumer && f.Rate > 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("Point not flagged in top 2:\n%s", profile.Report(5))
	}

	ds := profile.Deadness()
	if ds.IPD <= 0 {
		t.Errorf("IPD = %v, want > 0 (dead point coordinates)", ds.IPD)
	}
	gs := profile.GraphStats()
	if gs.Nodes == 0 || gs.DepEdges == 0 {
		t.Error("graph stats empty")
	}
	rep := profile.Report(3)
	for _, frag := range []string{"Gcost:", "IPD", "top low-utility"} {
		if !strings.Contains(rep, frag) {
			t.Errorf("report missing %q:\n%s", frag, rep)
		}
	}
}

func TestFacadeDiagnoseNull(t *testing.T) {
	prog, err := Compile(`
class Box { Box inner; int v; }
class Main {
  static void main() {
    Box a = new Box();
    Box b = a.inner;   // null
    print(b.v);
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := prog.DiagnoseNull()
	if err != nil {
		t.Fatal(err)
	}
	if diag == nil {
		t.Fatal("expected a diagnosis")
	}
	if !strings.Contains(diag.Report, "null created at") {
		t.Errorf("report: %s", diag.Report)
	}

	// A clean program yields no diagnosis and no error.
	ok, err := Compile(`class Main { static void main() { print(1); } }`)
	if err != nil {
		t.Fatal(err)
	}
	diag, err = ok.DiagnoseNull()
	if err != nil || diag != nil {
		t.Errorf("clean program: diag=%v err=%v", diag, err)
	}
}

func TestFacadeTypestate(t *testing.T) {
	prog, err := Compile(`
class Conn {
  int s;
  void open() { this.s = 1; }
  void send(int b) { this.s = this.s; }
  void close() { this.s = 2; }
}
class Main {
  static void main() {
    Conn c = new Conn();
    c.open();
    c.send(1);
    c.close();
    c.send(2);   // violation: send after close
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	proto := &TypestateProtocol{
		StateNames: []string{"new", "open", "closed"},
		Initial:    0,
		Transitions: []TypestateTransition{
			{0, "open", 1},
			{1, "send", 1},
			{1, "close", 2},
		},
	}
	violations, err := prog.Typestate(proto, "Conn")
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || !strings.Contains(violations[0], "send") || !strings.Contains(violations[0], "closed") {
		t.Errorf("violations = %v", violations)
	}
}

func TestFacadeCopyChains(t *testing.T) {
	prog, err := Compile(`
class A { int f; }
class B { int g; }
class Main {
  static void main() {
    A a = new A();
    a.f = 9;
    B b = new B();
    for (int i = 0; i < 30; i = i + 1) {
      int t = a.f;
      b.g = t;
    }
    print(b.g);
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	chains, total, err := prog.CopyChains(5)
	if err != nil {
		t.Fatal(err)
	}
	if total < 60 {
		t.Errorf("total copies = %d, want >= 60", total)
	}
	found := false
	for _, c := range chains {
		if c.Count >= 30 && strings.Contains(c.Src, ".f") {
			found = true
		}
	}
	if !found {
		t.Errorf("a.f → b.g chain missing: %+v", chains)
	}
}

func TestFacadePredicatesAndOverwrites(t *testing.T) {
	prog, err := Compile(`
class S { int[] buf; }
class Main {
  static void main() {
    boolean debug = false;
    S s = new S();
    s.buf = new int[4];
    int n = 0;
    for (int i = 0; i < 200; i = i + 1) {
      if (debug) { print(i); }
      s.buf[0] = i;           // overwritten every iteration, read never
      n = n + 1;
    }
    print(n);
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	preds, err := prog.ConstantPredicates(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) == 0 {
		t.Error("debug predicate not reported")
	}
	writes, err := prog.SilentOverwrites(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(writes) == 0 || !strings.Contains(writes[0], "overwrites") {
		t.Errorf("silent overwrites not reported: %v", writes)
	}
}

func TestRunCaseStudyFacade(t *testing.T) {
	res, err := RunCaseStudy("sunflow", 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorkReduction <= 0 || res.SuspectRank == 0 {
		t.Errorf("unexpected case-study result: %s", res)
	}
	if _, err := RunCaseStudy("nope", 1, 8); err == nil {
		t.Error("want unknown case study error")
	}
}

func TestFacadeMultiHopRanking(t *testing.T) {
	prog, err := Compile(`
class Raw { int v; }
class Wrapped { int w; }
class Main {
  static void main() {
    Raw r = new Raw();
    int s = 0;
    for (int i = 0; i < 400; i = i + 1) { s = s + i; }
    r.v = s;                 // the expensive producer
    Wrapped w = new Wrapped();
    w.w = r.v + 1;           // cheap one-hop wrapper, value then dies
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := prog.ProfileContext(context.Background(), WithSlots(16))
	if err != nil {
		t.Fatal(err)
	}
	oneHop := profile.TopStructuresMultiHop(5, 1)
	twoHop := profile.TopStructuresMultiHop(5, 2)
	costOf := func(fs []Finding, frag string) float64 {
		for _, f := range fs {
			if strings.Contains(f.Where, frag) {
				return f.Cost
			}
		}
		return -1
	}
	w1 := costOf(oneHop, "Wrapped")
	w2 := costOf(twoHop, "Wrapped")
	if w1 < 0 || w2 < 0 {
		t.Fatalf("Wrapped missing: 1-hop %v, 2-hop %v", oneHop, twoHop)
	}
	if w1 >= 400 {
		t.Errorf("1-hop cost of Wrapped = %v, should exclude the 400-loop", w1)
	}
	if w2 < 400 {
		t.Errorf("2-hop cost of Wrapped = %v, should include the 400-loop", w2)
	}
	// 1-hop results agree with the default ranking.
	def := profile.TopStructures(5)
	if len(def) != len(oneHop) {
		t.Errorf("1-hop and default rankings differ in size: %d vs %d", len(oneHop), len(def))
	}
}

func TestFacadeCacheReports(t *testing.T) {
	prog, err := Compile(`
class Memo { int[] vals; }
class Main {
  static int compute(int k) {
    int s = 0;
    for (int i = 0; i < 60; i = i + 1) { s = s + i * k; }
    return s;
  }
  static void main() {
    Memo m = new Memo();
    m.vals = new int[4];
    for (int k = 0; k < 4; k = k + 1) { m.vals[k] = compute(k); }
    int acc = 0;
    for (int r = 0; r < 40; r = r + 1) {
      for (int k = 0; k < 4; k = k + 1) { acc = acc + m.vals[k]; }
    }
    print(acc);
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	profile, err := prog.ProfileContext(context.Background(), WithSlots(16))
	if err != nil {
		t.Fatal(err)
	}
	reps := profile.CacheReports(10)
	if len(reps) == 0 {
		t.Fatal("no cache reports")
	}
	// The memo table (4 stores, 160 loads) must be reported as effective.
	found := false
	for _, r := range reps {
		if r.Stores == 4 && r.Loads == 160 && r.Effectiveness > 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("memo table not recognized as effective cache: %+v", reps)
	}
}

func TestFacadeControlTracking(t *testing.T) {
	src := `
class B { int y; }
class Main {
  static void main() {
    B b = new B();
    int guard = 0;
    for (int i = 0; i < 150; i = i + 1) { guard = guard + i; }
    if (guard > 10) { b.y = 5; }
    print(b.y);
  }
}`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := prog.ProfileContext(context.Background(), WithSlots(16))
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := prog.ProfileContext(context.Background(), WithSlots(16), WithTrackControl())
	if err != nil {
		t.Fatal(err)
	}
	costB := func(p *Profile) float64 {
		for _, f := range p.TopStructures(5) {
			if strings.Contains(f.Where, "new B") {
				return f.Cost
			}
		}
		return -1
	}
	if c := costB(plain); c >= 150 {
		t.Errorf("plain cost %v should exclude the guard loop", c)
	}
	if c := costB(ctrl); c < 150 {
		t.Errorf("control-tracked cost %v should include the guard loop", c)
	}
}

func TestFacadeSaveLoadProfile(t *testing.T) {
	prog, err := Compile(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	live, err := prog.ProfileContext(context.Background(), WithSlots(16))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := live.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := prog.LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Steps() != live.Steps() {
		t.Errorf("steps differ: %d vs %d", loaded.Steps(), live.Steps())
	}
	liveTop := live.TopStructures(5)
	loadTop := loaded.TopStructures(5)
	if len(liveTop) != len(loadTop) {
		t.Fatalf("finding counts differ: %d vs %d", len(liveTop), len(loadTop))
	}
	for i := range liveTop {
		if liveTop[i] != loadTop[i] {
			t.Errorf("finding %d differs:\nlive:   %v\nloaded: %v", i, liveTop[i], loadTop[i])
		}
	}
	ld, dd := live.Deadness(), loaded.Deadness()
	if ld != dd {
		t.Errorf("deadness differs: %+v vs %+v", ld, dd)
	}

	// Loading into a different program is rejected.
	other, err := Compile(`class Main { static void main() { print(1); } }`)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := live.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := other.LoadProfile(&buf2); err == nil {
		t.Error("want fingerprint rejection")
	}
}

func TestFacadeStaticSlice(t *testing.T) {
	prog, err := Compile(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := prog.StaticSliceContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"static slice (mode=rta", "call graph:", "points-to:", "write-only"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	rep2, err := prog.StaticSliceContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep != rep2 {
		t.Error("static slice report is not byte-stable")
	}
	cha, err := prog.StaticSliceContext(context.Background(), WithMode("cha"), WithObjCtx(), WithTop(3))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cha, "mode=cha") || !strings.Contains(cha, "objctx=on") {
		t.Errorf("cha/objctx header wrong:\n%s", cha)
	}
	if _, err := prog.StaticSliceContext(context.Background(), WithMode("0cfa")); err == nil {
		t.Error("unknown mode must error")
	}
}

func TestFacadeStaticAudit(t *testing.T) {
	prog, err := Compile(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rep, err := prog.StaticAudit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"static audit (mode=rta", "allocation sites:", "lifetime:", "shapes:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	rep2, err := prog.StaticAudit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep != rep2 {
		t.Error("static audit report is not byte-stable")
	}
	cha, err := prog.StaticAudit(ctx, WithMode("cha"), WithObjCtx(), WithTop(3))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cha, "mode=cha") || !strings.Contains(cha, "objctx=on") {
		t.Errorf("cha/objctx header wrong:\n%s", cha)
	}
	if _, err := prog.StaticAudit(ctx, WithMode("0cfa")); err == nil {
		t.Error("unknown mode must error")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := prog.StaticAudit(canceled); !errors.Is(err, ErrCanceled) {
		t.Errorf("canceled audit: got %v, want ErrCanceled", err)
	}
}

// TestFacadeStaticPruneInterproc: profiling with the interprocedural prune
// must suppress events yet leave the ranked findings identical. The dead
// arithmetic on seven()'s result is prunable only with return-taint
// summaries — the per-method analysis must assume any call result may
// derive from a heap read.
func TestFacadeStaticPruneInterproc(t *testing.T) {
	src := quickSrc + `
class Extra {
  static int seven() { return 7; }
  static int spin(int n) {
    int acc = 0;
    for (int i = 0; i < n; i = i + 1) {
      int w = seven() + i;
      acc = acc + i;
    }
    return acc;
  }
}`
	src = strings.Replace(src, "print(axisUnits);", "print(axisUnits + Extra.spin(30));", 1)
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	full, err := prog.ProfileContext(context.Background(), WithSlots(8))
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := prog.ProfileContext(context.Background(), WithSlots(8), WithPrune())
	if err != nil {
		t.Fatal(err)
	}
	if pruned.PrunedEvents() == 0 {
		t.Error("interprocedural prune suppressed no events")
	}
	a, b := full.TopStructures(5), pruned.TopStructures(5)
	if len(a) != len(b) {
		t.Fatalf("finding counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("finding %d diverges under prune:\n  full:   %v\n  pruned: %v", i, a[i], b[i])
		}
	}
}
