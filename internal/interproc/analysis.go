package interproc

import (
	"context"
	"fmt"
	"strings"

	"lowutil/internal/ir"
)

// Analysis bundles the whole interprocedural pipeline: call graph,
// points-to, summaries, and the static Gcost over-approximation.
type Analysis struct {
	Prog  *ir.Program
	Cfg   Config
	CG    *CallGraph
	PT    *PointsTo
	Sum   *Summaries
	Slice *StaticGraph

	// Freq estimates each instruction's execution frequency (indexed by
	// Instr.ID) from the loop-nest forest with SCCP trip-count bounds: 0 for
	// statically proven-dead code, otherwise the product of enclosing loops'
	// trip counts (ssa.DefaultTrip per unbounded loop). Feeds
	// Slice.BoundsWeighted.
	Freq []float64
}

// Analyze runs the full pipeline over prog under cfg.
func Analyze(prog *ir.Program, cfg Config) *Analysis {
	a, err := AnalyzeContext(context.Background(), prog, cfg)
	if err != nil {
		// Unreachable: the background context never cancels and the
		// pipeline has no other failure mode.
		panic(err)
	}
	return a
}

// AnalyzeContext runs the full pipeline over prog under cfg, polling ctx
// between phases and inside every fixpoint loop. When ctx is done the
// partially built state is discarded and the context error returned, so
// long-running whole-program analyses honor per-request deadlines.
func AnalyzeContext(ctx context.Context, prog *ir.Program, cfg Config) (*Analysis, error) {
	cg := NewCallGraph(prog, cfg.Mode)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pt, err := newPointsTo(ctx, prog, cg, cfg)
	if err != nil {
		return nil, err
	}
	flows := make(map[int]*methodFlow, len(cg.Methods()))
	for _, m := range cg.Methods() {
		flows[m.ID] = newMethodFlow(m)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sum, err := newSummaries(ctx, cg, pt, flows)
	if err != nil {
		return nil, err
	}
	slice, err := newStaticGraph(ctx, cg, pt, flows)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Analysis{
		Prog:  prog,
		Cfg:   cfg,
		CG:    cg,
		PT:    pt,
		Sum:   sum,
		Slice: slice,
		Freq:  ipcpWeights(cg),
	}, nil
}

// Bounds returns the frequency-weighted static cost/benefit bounds — the
// default ranking. Use Slice.Bounds for the unweighted PR 3 bounds.
func (a *Analysis) Bounds() []LocBound { return a.Slice.BoundsWeighted(a.Freq) }

// LocName renders an abstract location for reports: the qualified static
// field, or the allocation site (with its context qualifier) plus field.
func (a *Analysis) LocName(l Loc) string {
	if l.Static {
		return a.Prog.Statics[l.Field].QualifiedName()
	}
	o := a.PT.Objects[l.Obj]
	name := fmt.Sprintf("site#%d(%s@%s:%d)", o.Site.AllocSite, allocTypeName(o.Site),
		o.Site.Method.QualifiedName(), o.Site.PC)
	if o.Ctx != NoCtx {
		name += fmt.Sprintf("/recv#%d", o.Ctx)
	}
	if l.Field == ElemField {
		return name + ".[]"
	}
	return name + "." + a.Prog.FieldByID(l.Field).Name
}

func allocTypeName(site *ir.Instr) string {
	if site.Op == ir.OpNew {
		return site.Class.Name
	}
	return site.Elem.String() + "[]"
}

// Report renders the deterministic slice report: pipeline statistics and the
// top candidate locations ranked by static cost/benefit bound.
func (a *Analysis) Report(top int) string {
	var b strings.Builder
	objctx := "off"
	if a.Cfg.ObjCtx {
		objctx = "on"
	}
	fmt.Fprintf(&b, "static slice (mode=%s, objctx=%s)\n", a.CG.Mode, objctx)
	fmt.Fprintf(&b, "  call graph: %d/%d methods reachable, %d edges, %d polymorphic sites, max fanout %d\n",
		a.CG.NumMethods(), countMethods(a.Prog), a.CG.NumEdges(), a.CG.VirtualSites(), a.CG.MaxFanout())
	fmt.Fprintf(&b, "  points-to: %d objects, %d locations, avg set size %.2f\n",
		a.PT.NumObjects(), a.PT.NumLocs(), a.PT.AvgPTSize())
	fmt.Fprintf(&b, "  static Gcost: %d dep edges, %d ref edges, %d child edges\n",
		a.Slice.NumDeps(), a.Slice.NumRefs(), a.Slice.NumChildren())

	bounds := a.Bounds()
	writeOnly := 0
	for i := range bounds {
		if bounds[i].WriteOnly() {
			writeOnly++
		}
	}
	fmt.Fprintf(&b, "  %d of %d stored locations are statically write-only\n", writeOnly, len(bounds))
	if top > len(bounds) {
		top = len(bounds)
	}
	fmt.Fprintf(&b, "  top %d candidates by frequency-weighted static cost/benefit bound:\n", top)
	for i := 0; i < top; i++ {
		lb := &bounds[i]
		tag := ""
		switch {
		case lb.WriteOnly():
			tag = " write-only"
		case lb.Consumed:
			tag = " consumed"
		}
		fmt.Fprintf(&b, "  %3d. %-52s cost<=%-5d benefit<=%-5d wcost=%-9.4g wbenefit=%-9.4g stores=%d loads=%d%s\n",
			i+1, a.LocName(lb.Key), lb.CostBound, lb.BenefitBound, lb.WCost, lb.WBenefit, lb.Stores, lb.Loads, tag)
	}
	return b.String()
}
