package staticanalysis

import (
	"testing"

	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/workloads"
)

// largestWorkload compiles every workload at scale 1 and returns the one
// with the most instructions (eclipse at the time of writing).
func largestWorkload(tb testing.TB) *ir.Program {
	tb.Helper()
	var best *ir.Program
	for _, w := range workloads.All() {
		prog, err := w.Compile(1)
		if err != nil {
			tb.Fatal(err)
		}
		if best == nil || prog.NumInstrs() > best.NumInstrs() {
			best = prog
		}
	}
	return best
}

func BenchmarkNewCFG(b *testing.B) {
	prog := largestWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range prog.Classes {
			for _, m := range c.Methods {
				ir.NewCFG(m)
			}
		}
	}
}

func BenchmarkLiveness(b *testing.B) {
	prog := largestWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range prog.Classes {
			for _, m := range c.Methods {
				NewLiveness(m, nil)
			}
		}
	}
}

func BenchmarkPruneSet(b *testing.B) {
	prog := largestWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PruneSet(prog)
	}
}

// countingTracer counts traced events so the benchmark can report how much
// of the trace the prune set removes.
type countingTracer struct {
	interp.NopTracer
	n int64
}

func (c *countingTracer) Exec(*interp.Event) { c.n++ }

func benchTracedRun(b *testing.B, w *workloads.Workload, prune bool) {
	prog, err := w.Compile(1)
	if err != nil {
		b.Fatal(err)
	}
	var set []bool
	if prune {
		set, _ = PruneSet(prog)
	}
	var events, suppressed int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct := &countingTracer{}
		m := interp.New(prog)
		m.Tracer = ct
		m.Prune = set
		m.MaxSteps = 200_000_000
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		events = ct.n
		suppressed = m.PrunedEvents
	}
	b.ReportMetric(float64(events), "events/run")
	b.ReportMetric(float64(suppressed), "suppressed/run")
}

func BenchmarkTracedRunFull(b *testing.B) {
	benchTracedRun(b, workloads.ByName("luindex"), false)
}

func BenchmarkTracedRunPruned(b *testing.B) {
	benchTracedRun(b, workloads.ByName("luindex"), true)
}
