package interp

import "lowutil/internal/ir"

// Event carries the resolved runtime context of one executed instruction to
// a Tracer. The machine fills only the fields relevant to the opcode:
//
//   - Base: the base object for field/array loads and stores (never nil —
//     a nil base raises a VM error before the tracer runs).
//   - Index: the resolved array index for OpALoad/OpAStore.
//   - New: the freshly allocated object for OpNew/OpNewArray.
//   - Taken: the branch outcome for OpIf.
//   - Val: the value written to the destination slot (loads, moves,
//     computations, allocations, natives with a destination) or the value
//     stored to the heap (stores). Clients such as null-propagation use it
//     to compute their abstraction functions.
//
// The handler-table engine reuses one Event record per machine: the pointer
// passed to Exec is only valid for the duration of the call, and fields an
// opcode does not define hold unspecified leftovers from earlier events —
// tracers must consult only the fields their opcode defines.
type Event struct {
	In    *ir.Instr
	Frame *Frame
	Base  *Object
	Index int64
	New   *Object
	Taken bool
	Val   Value
}

// Tracer observes execution. All hooks run synchronously on the interpreter
// goroutine; a Tracer may keep per-frame state in Frame.Shadow and per-object
// state in Object.Shadow.
//
// The hook protocol around calls mirrors the paper's tracking stack T:
//
//	caller executes OpCall
//	  → BeforeCall (actuals still in caller frame; push tracking data)
//	  → EnterMethod (callee frame exists, formals copied; pop into formals)
//	  ... callee body, each instruction reported via Exec ...
//	  → BeforeReturn (return instruction; push return-value tracking data)
//	  → AfterCall (back in caller, destination slot assigned)
//
// Natives are reported through Exec with Op == OpNative.
type Tracer interface {
	// Exec is called after the machine has executed in (destination slot
	// already updated, heap effect already applied).
	Exec(ev *Event)
	// BeforeCall is called before argument copy; recv is the dispatched
	// receiver (nil for static calls); callee is the dispatch target.
	BeforeCall(in *ir.Instr, caller *Frame, callee *ir.Method, recv *Object)
	// EnterMethod is called once the callee frame is set up. recv is nil
	// for static methods and for the entry frame.
	EnterMethod(fr *Frame, recv *Object)
	// BeforeReturn is called when fr executes its return instruction.
	BeforeReturn(in *ir.Instr, fr *Frame)
	// AfterCall is called in the caller after the callee returned and the
	// destination slot (if any) has been assigned.
	AfterCall(in *ir.Instr, caller *Frame, hasValue bool)
}

// NopTracer is a Tracer that does nothing. It is useful for measuring the
// dispatch overhead of tracing itself, separate from profiling work.
type NopTracer struct{}

// Exec implements Tracer.
func (NopTracer) Exec(*Event) {}

// BeforeCall implements Tracer.
func (NopTracer) BeforeCall(*ir.Instr, *Frame, *ir.Method, *Object) {}

// EnterMethod implements Tracer.
func (NopTracer) EnterMethod(*Frame, *Object) {}

// BeforeReturn implements Tracer.
func (NopTracer) BeforeReturn(*ir.Instr, *Frame) {}

// AfterCall implements Tracer.
func (NopTracer) AfterCall(*ir.Instr, *Frame, bool) {}

var _ Tracer = NopTracer{}
