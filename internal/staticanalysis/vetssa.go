package staticanalysis

import (
	"fmt"
	"sort"

	"lowutil/internal/interproc"
	"lowutil/internal/ir"
	"lowutil/internal/ssa"
)

// The SSA-backed vet engine. The dense engine (vetdense.go) answers every
// question by consulting a reaching-definitions relation; this engine walks
// sparse def-use chains over pruned SSA instead, which buys three precision
// improvements the dense lints cannot express:
//
//   - dead stores are found *transitively*: a computation whose value feeds
//     only other dead computations is itself dead (DCE-style liveness over
//     values, not an empty-use-set test);
//   - possibly-uninitialized reads follow the undef value through phis along
//     SCCP-executable edges only, so a read guarded by a constant predicate
//     that rules the uninitialized path out is no longer flagged;
//   - unreachable code includes blocks that are CFG-reachable but dead under
//     sparse conditional constant propagation (reported with a distinct
//     message).
//
// The differential test in vet_differential_test.go pins the relation to the
// dense engine per kind: dead stores and callee-clobbered stores only grow,
// uninitialized-read reports only shrink, and unreachable-code reports grow
// only by SCCP-proven blocks.

// Vet runs the full static diagnostics suite over prog using the SSA engine
// and returns the findings sorted by (class, method, pc, kind) so output is
// byte-identical across runs. The interprocedural checks run over an RTA
// call graph with context-insensitive points-to; use VetWith to supply a
// different pipeline, and VetDense for the dense (reaching-definitions)
// engine.
func Vet(prog *ir.Program) []Finding {
	return VetWith(prog, interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA}))
}

// VetWith is Vet over a caller-supplied interprocedural analysis. A nil
// analysis degrades every whole-program check to its single-method
// approximation.
func VetWith(prog *ir.Program, an *interproc.Analysis) []Finding {
	var out []Finding
	out = append(out, writeOnlyFields(prog, an)...)
	out = append(out, escapeLints(an)...)
	unusedByPT := interprocUnusedObjects(an)
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			out = append(out, vetMethodSSA(m, an, unusedByPT)...)
		}
	}
	sortFindings(out)
	return out
}

func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Detail < b.Detail
	})
}

// vetMethodSSA runs the per-method checks over the method's SSA form.
func vetMethodSSA(m *ir.Method, an *interproc.Analysis, unusedByPT map[int]bool) []Finding {
	f := ssa.Build(m, nil)
	sc := ssa.RunSCCP(f)
	cfg := f.CFG
	var out []Finding

	finding := func(kind Kind, pc int, format string, args ...any) Finding {
		return Finding{
			Kind:   kind,
			Class:  m.Class.Name,
			Method: m.Name,
			PC:     pc,
			Line:   m.Code[pc].Line,
			Detail: fmt.Sprintf(format, args...),
		}
	}

	// Value liveness, DCE-style: roots are the operands of every reachable
	// instruction with effects or consumer semantics (anything outside
	// deadStoreOps); liveness propagates backwards through pure computations
	// and phis. A pure def whose value never transitively reaches a root is
	// dead work even if it has uses.
	live := make([]bool, f.NumVals())
	var work []ssa.ValID
	mark := func(v ssa.ValID) {
		if v != ssa.None && !live[v] {
			live[v] = true
			work = append(work, v)
		}
	}
	for pc := range m.Code {
		if !cfg.Reachable(cfg.BlockOf[pc]) || deadStoreOps[m.Code[pc].Op] {
			continue
		}
		for _, v := range f.Operands[pc] {
			mark(v)
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		val := &f.Vals[v]
		switch val.Kind {
		case ssa.VInstr:
			if deadStoreOps[m.Code[val.PC].Op] {
				for _, o := range f.Operands[val.PC] {
					mark(o)
				}
			}
		case ssa.VPhi:
			for _, a := range val.Args {
				mark(a)
			}
		}
	}

	// Dead stores. Zero/null constants are exempt — the MJ front end
	// synthesizes them for every declaration without an initializer, and
	// `int x = 0; if (...) x = 1;` is idiomatic.
	deadVal := func(pc int) bool {
		in := &m.Code[pc]
		if in.Def() < 0 || !deadStoreOps[in.Op] || !cfg.Reachable(cfg.BlockOf[pc]) {
			return false
		}
		if in.Op == ir.OpConst && (in.IsNull || in.Imm == 0) {
			return false
		}
		return !live[f.DefOf[pc]]
	}
	for pc := range m.Code {
		if !deadVal(pc) {
			continue
		}
		in := &m.Code[pc]
		if len(f.Uses(f.DefOf[pc])) == 0 {
			out = append(out, finding(KindDeadStore, pc,
				"value of %s (%s) is never used", m.LocalName(in.Dst), in))
		} else {
			out = append(out, finding(KindDeadStore, pc,
				"value of %s (%s) feeds only dead computations", m.LocalName(in.Dst), in))
		}
	}

	// Unused allocations: every transitive use of the reference — through
	// moves *and phis* — is a construction-only store base. The
	// interprocedural arm is identical to the dense engine's.
	covered := an != nil && an.CG.Reachable(m)
	for pc := range m.Code {
		in := &m.Code[pc]
		if !in.IsAlloc() || !cfg.Reachable(cfg.BlockOf[pc]) {
			continue
		}
		switch {
		case allocUnusedSSA(f, f.DefOf[pc]):
			out = append(out, finding(KindUnusedAlloc, pc,
				"allocation (%s) never escapes and is never read", in))
		case covered && unusedByPT[in.ID]:
			out = append(out, finding(KindUnusedAlloc, pc,
				"allocation (%s) is never read through any alias", in))
		}
	}

	// Callee-clobbered stores: the value's effective uses — through moves and
	// phis — all hand it to call-argument positions no resolved target reads.
	if covered {
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Def() < 0 || !deadStoreOps[in.Op] || !cfg.Reachable(cfg.BlockOf[pc]) {
				continue
			}
			if in.Op == ir.OpConst && (in.IsNull || in.Imm == 0) {
				continue
			}
			if deadVal(pc) {
				continue // already a dead store
			}
			if effectiveUsesAllClobbered(f, m, an, f.DefOf[pc]) {
				out = append(out, finding(KindCalleeClobbered, pc,
					"value of %s (%s) is passed only to parameters no callee reads",
					m.LocalName(in.Dst), in))
			}
		}
	}

	// Unreachable code: CFG-unreachable blocks (as in the dense engine), plus
	// blocks SCCP proves dead through constant branches. Blocks holding only
	// gotos and void returns are compiler plumbing and are not reported.
	for b := range cfg.Blocks {
		blk := &cfg.Blocks[b]
		cfgDead := !cfg.Reachable(b)
		sccpDead := !cfgDead && !sc.BlockExec[b]
		if !cfgDead && !sccpDead {
			continue
		}
		artifact := true
		for pc := blk.Start; pc < blk.End; pc++ {
			in := &m.Code[pc]
			if in.Op != ir.OpGoto && !(in.Op == ir.OpReturn && !in.HasA) {
				artifact = false
				break
			}
		}
		if artifact {
			continue
		}
		if cfgDead {
			out = append(out, finding(KindUnreachable, blk.Start,
				"unreachable code (%d instructions)", blk.End-blk.Start))
		} else {
			out = append(out, finding(KindUnreachable, blk.Start,
				"unreachable under constant propagation (%d instructions)", blk.End-blk.Start))
		}
	}

	// Possibly-uninitialized reads: the undef value tainted through phis
	// along SCCP-executable edges. A read whose operand can resolve to undef
	// has an executable path that bypasses initialization; constant-false
	// guards that rule the path out no longer produce a report.
	out = append(out, uninitReadsSSA(f, sc)...)
	return out
}

// allocUnusedSSA walks the use chains of the allocation's value through
// moves and phis; every terminal use must be a store with the object as base.
func allocUnusedSSA(f *ssa.Func, root ssa.ValID) bool {
	visited := map[ssa.ValID]bool{root: true}
	work := []ssa.ValID{root}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, u := range f.Uses(v) {
			if u.IsPhi() {
				if !visited[u.Phi] {
					visited[u.Phi] = true
					work = append(work, u.Phi)
				}
				continue
			}
			in := &f.M.Code[u.PC]
			switch {
			case in.Op == ir.OpMove:
				d := f.DefOf[u.PC]
				if !visited[d] {
					visited[d] = true
					work = append(work, d)
				}
			case u.Base && (in.Op == ir.OpStoreField || in.Op == ir.OpAStore):
				// Writing into the object: construction work only.
			default:
				// Loaded from, compared, returned, passed, or stored as a
				// value — the object is used.
				return false
			}
		}
	}
	return true
}

// effectiveUsesAllClobbered resolves the value's uses through moves and phis
// and reports whether at least one effective use exists and every one is an
// OpCall argument position that all resolved targets ignore.
func effectiveUsesAllClobbered(f *ssa.Func, m *ir.Method, an *interproc.Analysis, root ssa.ValID) bool {
	visited := map[ssa.ValID]bool{root: true}
	work := []ssa.ValID{root}
	any := false
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, u := range f.Uses(v) {
			if u.IsPhi() {
				if !visited[u.Phi] {
					visited[u.Phi] = true
					work = append(work, u.Phi)
				}
				continue
			}
			in := &f.M.Code[u.PC]
			if in.Op == ir.OpMove {
				d := f.DefOf[u.PC]
				if !visited[d] {
					visited[d] = true
					work = append(work, d)
				}
				continue
			}
			if in.Op != ir.OpCall {
				return false
			}
			// Uses order for OpCall is the Args order, so OpIdx is the
			// argument position.
			if !an.Sum.ArgIgnoredByAllTargets(in, u.OpIdx) {
				return false
			}
			any = true
		}
	}
	return any
}

// uninitReadsSSA reports reads whose operand value can be undef along an
// executable path. At most one finding per instruction (first offending
// operand in Uses order), matching the dense engine.
func uninitReadsSSA(f *ssa.Func, sc *ssa.SCCP) []Finding {
	m := f.M
	tainted := make([]bool, f.NumVals())
	var work []ssa.ValID
	for v := 0; v < f.NumVals(); v++ {
		if f.Vals[v].Kind == ssa.VUndef {
			tainted[v] = true
			work = append(work, ssa.ValID(v))
		}
	}
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, u := range f.Uses(v) {
			if !u.IsPhi() || tainted[u.Phi] {
				continue
			}
			if !sc.PhiArgExecutable(f.Vals[u.Phi].Block, u.ArgIdx) {
				continue
			}
			tainted[u.Phi] = true
			work = append(work, u.Phi)
		}
	}
	var out []Finding
	for pc := range m.Code {
		if !sc.Executable(pc) {
			continue
		}
		for _, v := range f.Operands[pc] {
			if !tainted[v] {
				continue
			}
			in := &m.Code[pc]
			out = append(out, Finding{
				Kind:   KindUninitRead,
				Class:  m.Class.Name,
				Method: m.Name,
				PC:     pc,
				Line:   in.Line,
				Detail: fmt.Sprintf("%s may be read before initialization (%s)", m.LocalName(f.Vals[v].Slot), in),
			})
			break
		}
	}
	return out
}
