// Command table1 regenerates Table 1 of the paper over the 18 DaCapo-alike
// workloads: graph characteristics and overheads for each context-slot
// setting (parts a/b) and the dead-value measurements IPD/IPP/NLD (part c).
// It can also run the phase-restricted-tracking experiment and the §3.2
// ablations.
//
// Usage:
//
//	table1 [-scale N] [-slots 8,16] [-only chart,fop] [-workers N] [-phases] [-ablations]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"lowutil"
	"lowutil/internal/evalharness"
)

func main() {
	scale := flag.Int("scale", 4, "workload scale factor")
	slotsFlag := flag.String("slots", fmt.Sprintf("8,%d", lowutil.DefaultSlots), "comma-separated context-slot settings")
	only := flag.String("only", "", "comma-separated workload subset (default: all 18)")
	phases := flag.Bool("phases", false, "also run the phase-restricted tracking experiment")
	ablations := flag.Bool("ablations", false, "also run the thin-vs-traditional and abstract-vs-concrete ablations")
	workers := flag.Int("workers", 1, "parallel workloads (0 = all CPUs; >1 perturbs the overhead column)")
	quiet := flag.Bool("q", false, "suppress per-workload progress")
	flag.Parse()

	var slots []int
	for _, part := range strings.Split(*slotsFlag, ",") {
		s, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || s <= 0 {
			fmt.Fprintf(os.Stderr, "table1: bad -slots value %q\n", part)
			os.Exit(2)
		}
		slots = append(slots, s)
	}
	opts := evalharness.Options{Scale: *scale, Slots: slots, Workers: *workers}
	if *only != "" {
		opts.Only = strings.Split(*only, ",")
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	rows, err := evalharness.Table1(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "table1: %v\n", err)
		os.Exit(1)
	}
	evalharness.Format(rows, os.Stdout)

	if *phases {
		fmt.Println("\n---- phase-restricted tracking (steady-state only) ----")
		fmt.Printf("%-11s %10s %10s %10s\n", "Program", "full(x)", "phase(x)", "reduction")
		for _, name := range []string{"tradebeans", "tradesoap"} {
			res, err := evalharness.PhaseExperiment(name, *scale, 0.1)
			if err != nil {
				fmt.Fprintf(os.Stderr, "table1: phases %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("%-11s %10.1f %10.1f %9.1fx\n",
				res.Name, res.FullOverhead, res.PhaseOverhead, res.Reduction)
		}
	}

	if *ablations {
		fmt.Println("\n---- ablation: thin vs traditional slicing ----")
		fmt.Printf("%-11s %12s %12s %14s %14s\n", "Program", "thin edges", "trad edges", "thin slices", "trad slices")
		for _, name := range []string{"xalan", "eclipse", "bloat"} {
			res, err := evalharness.ThinVsTraditional(name, *scale)
			if err != nil {
				fmt.Fprintf(os.Stderr, "table1: ablation %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("%-11s %12d %12d %14d %14d\n",
				res.Name, res.ThinEdges, res.TraditionalEdges, res.ThinSliceNodes, res.TradSliceNodes)
		}
		fmt.Println("\n---- ablation: abstract vs unabstracted graphs ----")
		fmt.Printf("%-11s %12s %12s %12s %12s %12s\n", "Program", "#I", "abs nodes", "conc nodes", "abs KB", "conc KB")
		for _, name := range []string{"chart", "sunflow", "avrora"} {
			res, err := evalharness.AbstractVsConcrete(name, *scale, 1<<22)
			if err != nil {
				fmt.Fprintf(os.Stderr, "table1: ablation %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("%-11s %12d %12d %12d %12d %12d\n",
				res.Name, res.Steps, res.AbstractNodes, res.UnabstractedNodes,
				res.AbstractBytes/1024, res.UnabstractedBytes/1024)
		}
	}
}
