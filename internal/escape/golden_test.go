package escape

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lowutil/internal/interproc"
	"lowutil/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite the audit golden files under testdata/audit/")

// TestAuditGoldenWorkloads runs the static audit (default configuration:
// RTA call graph, context-insensitive heap) over every workload and
// compares the rendered report against testdata/audit/<name>.golden. The
// goldens pin the escape states, lifetime regions, shapes, and the ranking
// order byte-for-byte, so any change to the analysis or to emission
// determinism shows up as a diff. Regenerate deliberately with:
//
//	go test ./internal/escape -run TestAuditGoldenWorkloads -update
//
// (or `make audit-goldens`).
func TestAuditGoldenWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := w.Compile(1)
			if err != nil {
				t.Fatal(err)
			}
			r := Analyze(interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA}))
			got := r.Report(10)
			path := filepath.Join("testdata", "audit", w.Name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update or `make audit-goldens`)", err)
			}
			if got != string(want) {
				t.Errorf("audit report diverges from %s (regenerate with -update if intended):\n--- got\n%s--- want\n%s",
					path, got, want)
			}
		})
	}
}
