// Package parser implements a recursive-descent parser for MJ, producing
// the AST consumed by internal/sem.
package parser

import (
	"fmt"

	"lowutil/internal/ast"
	"lowutil/internal/lexer"
)

// Error is a parse error with position.
type Error struct {
	Pos lexer.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses a complete MJ compilation unit.
func Parse(src string) (*ast.Program, error) {
	toks, err := lexer.Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &ast.Program{}
	for !p.at(lexer.EOF) {
		c, err := p.classDecl()
		if err != nil {
			return nil, err
		}
		prog.Classes = append(prog.Classes, c)
	}
	return prog, nil
}

type parser struct {
	toks []lexer.Token
	off  int
}

func (p *parser) cur() lexer.Token {
	if p.off < len(p.toks) {
		return p.toks[p.off]
	}
	last := lexer.Pos{Line: 0, Col: 0}
	if len(p.toks) > 0 {
		last = p.toks[len(p.toks)-1].Pos
	}
	return lexer.Token{Kind: lexer.EOF, Pos: last}
}

func (p *parser) at(k lexer.Kind) bool { return p.cur().Kind == k }

func (p *parser) peekKind(ahead int) lexer.Kind {
	i := p.off + ahead
	if i < len(p.toks) {
		return p.toks[i].Kind
	}
	return lexer.EOF
}

func (p *parser) next() lexer.Token {
	t := p.cur()
	p.off++
	return t
}

func (p *parser) errf(pos lexer.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	if !p.at(k) {
		return lexer.Token{}, p.errf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

// classDecl := "class" ID ("extends" ID)? "{" member* "}"
func (p *parser) classDecl() (*ast.ClassDecl, error) {
	kw, err := p.expect(lexer.KwClass)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	c := &ast.ClassDecl{Name: name.Text, Pos: kw.Pos}
	if p.at(lexer.KwExtends) {
		p.next()
		sup, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		c.Extends = sup.Text
	}
	if _, err := p.expect(lexer.LBrace); err != nil {
		return nil, err
	}
	for !p.at(lexer.RBrace) && !p.at(lexer.EOF) {
		if err := p.member(c); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(lexer.RBrace); err != nil {
		return nil, err
	}
	return c, nil
}

// member := "static"? (type|"void") ID (methodRest | ";")
func (p *parser) member(c *ast.ClassDecl) error {
	static := false
	if p.at(lexer.KwStatic) {
		p.next()
		static = true
	}
	var ret *ast.TypeRef
	if p.at(lexer.KwVoid) {
		p.next()
		ret = nil
		name, err := p.expect(lexer.Ident)
		if err != nil {
			return err
		}
		m, err := p.methodRest(name.Text, static, ret, name.Pos)
		if err != nil {
			return err
		}
		c.Methods = append(c.Methods, m)
		return nil
	}
	typ, err := p.typeRef()
	if err != nil {
		return err
	}
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return err
	}
	if p.at(lexer.LParen) {
		m, err := p.methodRest(name.Text, static, typ, name.Pos)
		if err != nil {
			return err
		}
		c.Methods = append(c.Methods, m)
		return nil
	}
	if static {
		return p.errf(name.Pos, "static fields are not supported; use a holder object")
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return err
	}
	c.Fields = append(c.Fields, &ast.FieldDecl{Name: name.Text, Type: typ, Pos: name.Pos})
	return nil
}

func (p *parser) methodRest(name string, static bool, ret *ast.TypeRef, pos lexer.Pos) (*ast.MethodDecl, error) {
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	m := &ast.MethodDecl{Name: name, Static: static, Returns: ret, Pos: pos}
	for !p.at(lexer.RParen) {
		if len(m.Params) > 0 {
			if _, err := p.expect(lexer.Comma); err != nil {
				return nil, err
			}
		}
		typ, err := p.typeRef()
		if err != nil {
			return nil, err
		}
		id, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		m.Params = append(m.Params, &ast.Param{Name: id.Text, Type: typ, Pos: id.Pos})
	}
	p.next() // RParen
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	m.Body = body
	return m, nil
}

// typeRef := ("int"|"boolean"|ID) ("[" "]")*
func (p *parser) typeRef() (*ast.TypeRef, error) {
	t := p.cur()
	var base string
	switch t.Kind {
	case lexer.KwInt:
		base = "int"
	case lexer.KwBoolean:
		base = "boolean"
	case lexer.Ident:
		base = t.Text
	default:
		return nil, p.errf(t.Pos, "expected type, found %s", t)
	}
	p.next()
	tr := &ast.TypeRef{Base: base, Pos: t.Pos}
	for p.at(lexer.LBracket) && p.peekKind(1) == lexer.RBracket {
		p.next()
		p.next()
		tr.Dims++
	}
	return tr, nil
}

// startsType reports whether the upcoming tokens begin a local variable
// declaration rather than an expression statement. A declaration is
//
//	int x …  |  boolean x …  |  Foo x …  |  Foo[] x …  |  int[][] x …
func (p *parser) startsType() bool {
	switch p.cur().Kind {
	case lexer.KwInt, lexer.KwBoolean:
		return true
	case lexer.Ident:
		// ID followed by ident → declaration; ID[] … ident → declaration.
		i := 1
		for p.peekKind(i) == lexer.LBracket && p.peekKind(i+1) == lexer.RBracket {
			i += 2
		}
		return p.peekKind(i) == lexer.Ident
	}
	return false
}

func (p *parser) block() (*ast.Block, error) {
	lb, err := p.expect(lexer.LBrace)
	if err != nil {
		return nil, err
	}
	b := &ast.Block{Pos: lb.Pos}
	for !p.at(lexer.RBrace) && !p.at(lexer.EOF) {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	if _, err := p.expect(lexer.RBrace); err != nil {
		return nil, err
	}
	return b, nil
}

func (p *parser) stmt() (ast.Stmt, error) {
	switch p.cur().Kind {
	case lexer.LBrace:
		return p.block()
	case lexer.KwIf:
		return p.ifStmt()
	case lexer.KwWhile:
		return p.whileStmt()
	case lexer.KwFor:
		return p.forStmt()
	case lexer.KwReturn:
		t := p.next()
		r := &ast.ReturnStmt{Pos: t.Pos}
		if !p.at(lexer.Semi) {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.Value = v
		}
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		return r, nil
	case lexer.KwBreak:
		t := p.next()
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		return &ast.BreakStmt{Pos: t.Pos}, nil
	case lexer.KwContinue:
		t := p.next()
		if _, err := p.expect(lexer.Semi); err != nil {
			return nil, err
		}
		return &ast.ContinueStmt{Pos: t.Pos}, nil
	}
	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	return s, nil
}

// simpleStmt parses a declaration, assignment, or expression statement,
// without the trailing semicolon (shared with for-headers).
func (p *parser) simpleStmt() (ast.Stmt, error) {
	if p.startsType() {
		typ, err := p.typeRef()
		if err != nil {
			return nil, err
		}
		id, err := p.expect(lexer.Ident)
		if err != nil {
			return nil, err
		}
		d := &ast.VarDecl{Name: id.Text, Type: typ, Pos: id.Pos}
		if p.at(lexer.Assign) {
			p.next()
			init, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = init
		}
		return d, nil
	}
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.at(lexer.Assign) {
		eq := p.next()
		switch lhs.(type) {
		case *ast.Name, *ast.FieldAccess, *ast.IndexExpr:
		default:
			return nil, p.errf(eq.Pos, "invalid assignment target")
		}
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &ast.AssignStmt{LHS: lhs, RHS: rhs, Pos: eq.Pos}, nil
	}
	if _, ok := lhs.(*ast.CallExpr); !ok {
		return nil, p.errf(lhs.ExprPos(), "expression statement must be a call")
	}
	return &ast.ExprStmt{X: lhs, Pos: lhs.ExprPos()}, nil
}

func (p *parser) ifStmt() (ast.Stmt, error) {
	kw := p.next()
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	then, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s := &ast.IfStmt{Cond: cond, Then: then, Pos: kw.Pos}
	if p.at(lexer.KwElse) {
		p.next()
		els, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *parser) whileStmt() (ast.Stmt, error) {
	kw := p.next()
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &ast.WhileStmt{Cond: cond, Body: body, Pos: kw.Pos}, nil
}

func (p *parser) forStmt() (ast.Stmt, error) {
	kw := p.next()
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	s := &ast.ForStmt{Pos: kw.Pos}
	if !p.at(lexer.Semi) {
		init, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		s.Init = init
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	if !p.at(lexer.Semi) {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(lexer.Semi); err != nil {
		return nil, err
	}
	if !p.at(lexer.RParen) {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// ---- Expressions (precedence climbing) ----

// Binding powers, loosest first:
//
//	||  &&  |  ^  &  ==/!= / instanceof  </<=/>/>=  <</>>  +/-  */%/  unary  postfix
var binPrec = map[lexer.Kind]int{
	lexer.PipePipe: 1,
	lexer.AmpAmp:   2,
	lexer.Pipe:     3,
	lexer.Caret:    4,
	lexer.Amp:      5,
	lexer.Eq:       6, lexer.Ne: 6, lexer.KwInstanceof: 6,
	lexer.Lt: 7, lexer.Le: 7, lexer.Gt: 7, lexer.Ge: 7,
	lexer.Shl: 8, lexer.Shr: 8,
	lexer.Plus: 9, lexer.Minus: 9,
	lexer.Star: 10, lexer.Slash: 10, lexer.Percent: 10,
}

func (p *parser) expr() (ast.Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (ast.Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		opTok := p.next()
		if op == lexer.KwInstanceof {
			id, err := p.expect(lexer.Ident)
			if err != nil {
				return nil, err
			}
			lhs = &ast.InstanceOfExpr{X: lhs, Class: id.Text, Pos: opTok.Pos}
			continue
		}
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &ast.BinaryExpr{Op: op, L: lhs, R: rhs, Pos: opTok.Pos}
	}
}

func (p *parser) unary() (ast.Expr, error) {
	switch p.cur().Kind {
	case lexer.Minus:
		t := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: lexer.Minus, X: x, Pos: t.Pos}, nil
	case lexer.Bang:
		t := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &ast.UnaryExpr{Op: lexer.Bang, X: x, Pos: t.Pos}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (ast.Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case lexer.Dot:
			p.next()
			id, err := p.expect(lexer.Ident)
			if err != nil {
				return nil, err
			}
			if p.at(lexer.LParen) {
				args, err := p.args()
				if err != nil {
					return nil, err
				}
				x = &ast.CallExpr{X: x, Method: id.Text, Args: args, Pos: id.Pos}
			} else if id.Text == "length" {
				x = &ast.LenExpr{X: x, Pos: id.Pos}
			} else {
				x = &ast.FieldAccess{X: x, Field: id.Text, Pos: id.Pos}
			}
		case lexer.LBracket:
			lb := p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(lexer.RBracket); err != nil {
				return nil, err
			}
			x = &ast.IndexExpr{X: x, Index: idx, Pos: lb.Pos}
		default:
			return x, nil
		}
	}
}

func (p *parser) args() ([]ast.Expr, error) {
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	var out []ast.Expr
	for !p.at(lexer.RParen) {
		if len(out) > 0 {
			if _, err := p.expect(lexer.Comma); err != nil {
				return nil, err
			}
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	p.next() // RParen
	return out, nil
}

func (p *parser) primary() (ast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case lexer.IntLit, lexer.CharLit:
		p.next()
		return &ast.IntLit{Value: t.Int, Pos: t.Pos}, nil
	case lexer.KwTrue:
		p.next()
		return &ast.BoolLit{Value: true, Pos: t.Pos}, nil
	case lexer.KwFalse:
		p.next()
		return &ast.BoolLit{Value: false, Pos: t.Pos}, nil
	case lexer.KwNull:
		p.next()
		return &ast.NullLit{Pos: t.Pos}, nil
	case lexer.KwThis:
		p.next()
		return &ast.ThisExpr{Pos: t.Pos}, nil
	case lexer.LParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RParen); err != nil {
			return nil, err
		}
		return x, nil
	case lexer.KwNew:
		p.next()
		base := p.cur()
		var baseName string
		switch base.Kind {
		case lexer.KwInt:
			baseName = "int"
		case lexer.KwBoolean:
			baseName = "boolean"
		case lexer.Ident:
			baseName = base.Text
		default:
			return nil, p.errf(base.Pos, "expected type after new, found %s", base)
		}
		p.next()
		if p.at(lexer.LParen) {
			if baseName == "int" || baseName == "boolean" {
				return nil, p.errf(base.Pos, "cannot instantiate primitive %s", baseName)
			}
			p.next()
			if _, err := p.expect(lexer.RParen); err != nil {
				return nil, err
			}
			return &ast.NewExpr{Class: baseName, Pos: t.Pos}, nil
		}
		if !p.at(lexer.LBracket) {
			return nil, p.errf(p.cur().Pos, "expected ( or [ after new %s", baseName)
		}
		p.next()
		length, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(lexer.RBracket); err != nil {
			return nil, err
		}
		dims := 1
		for p.at(lexer.LBracket) && p.peekKind(1) == lexer.RBracket {
			p.next()
			p.next()
			dims++
		}
		return &ast.NewArrayExpr{Base: baseName, Dims: dims, Len: length, Pos: t.Pos}, nil
	case lexer.Ident:
		p.next()
		if p.at(lexer.LParen) {
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			return &ast.CallExpr{X: nil, Method: t.Text, Args: args, Pos: t.Pos}, nil
		}
		return &ast.Name{Ident: t.Text, Pos: t.Pos}, nil
	}
	return nil, p.errf(t.Pos, "unexpected token %s", t)
}
