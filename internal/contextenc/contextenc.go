// Package contextenc implements the object-sensitivity context machinery of
// the paper: calling contexts are chains of receiver-object allocation
// sites, encoded probabilistically with the Bond–McKinley function
//
//	g_i = 3*g_{i-1} + o_i
//
// and folded into a user-chosen number of slots s with a mod operation.
// Domain Dcost is therefore the integers [0, s).
//
// The package also tracks, per static instruction, which distinct encoded
// contexts fall into each slot, so the context conflict ratio CR-s of §4.1
// can be reported:
//
//	CR-s(i) = 0                         if max_j dc[j] <= 1
//	        = max_j dc[j] / Σ_j dc[j]   otherwise
package contextenc

// Encoded is a probabilistically-unique encoding of an allocation-site
// chain.
type Encoded uint64

// EmptyContext is the encoding of the empty chain (static entry points).
const EmptyContext Encoded = 0

// Extend returns the encoding of the chain g with allocation site o
// appended: 3*g + o. Allocation-site IDs are offset by 1 so that extending
// the empty context with site 0 is distinguishable from not extending it.
func Extend(g Encoded, allocSite int) Encoded {
	return Encoded(3*uint64(g) + uint64(allocSite) + 1)
}

// Slots is the per-run context-slot configuration: the paper's parameter s.
type Slots struct {
	S int
}

// NewSlots returns a Slots configuration; s must be positive.
func NewSlots(s int) Slots {
	if s <= 0 {
		panic("contextenc: s must be positive")
	}
	return Slots{S: s}
}

// Slot maps an encoded context to its slot in [0, S).
func (sl Slots) Slot(g Encoded) int { return int(uint64(g) % uint64(sl.S)) }

// ConflictTracker records the distinct encoded contexts observed per
// (instruction, slot) pair, for CR computation. It is exact: each
// instruction holds one small set per used slot.
type ConflictTracker struct {
	slots Slots
	// perInstr[instrID][slot] = set of distinct encodings seen.
	perInstr []map[int]map[Encoded]struct{}
	// last[instrID] memoizes the most recent encoding observed at the
	// instruction. Observation is idempotent set insertion, and contexts are
	// loop-stable (a method body repeats under one chain), so the common
	// repeat skips both map probes.
	last []lastObs
}

type lastObs struct {
	g    Encoded
	seen bool
}

// NewConflictTracker returns a tracker for a program with numInstrs static
// instructions.
func NewConflictTracker(slots Slots, numInstrs int) *ConflictTracker {
	return &ConflictTracker{
		slots:    slots,
		perInstr: make([]map[int]map[Encoded]struct{}, numInstrs),
		last:     make([]lastObs, numInstrs),
	}
}

// Observe records that instruction instrID executed under encoded context g.
func (ct *ConflictTracker) Observe(instrID int, g Encoded) {
	l := &ct.last[instrID]
	if l.seen && l.g == g {
		return
	}
	l.g, l.seen = g, true
	m := ct.perInstr[instrID]
	if m == nil {
		m = make(map[int]map[Encoded]struct{}, 2)
		ct.perInstr[instrID] = m
	}
	slot := ct.slots.Slot(g)
	set := m[slot]
	if set == nil {
		set = make(map[Encoded]struct{}, 2)
		m[slot] = set
	}
	set[g] = struct{}{}
}

// CR returns the context conflict ratio for one instruction, per §4.1.
// Instructions never observed have CR 0.
func (ct *ConflictTracker) CR(instrID int) float64 {
	m := ct.perInstr[instrID]
	if len(m) == 0 {
		return 0
	}
	maxDC, sumDC := 0, 0
	for _, set := range m {
		if len(set) > maxDC {
			maxDC = len(set)
		}
		sumDC += len(set)
	}
	if maxDC <= 1 {
		return 0
	}
	return float64(maxDC) / float64(sumDC)
}

// AverageCR returns the mean CR over all instructions that were observed at
// least once (the "average CR for all instructions in Gcost" of Table 1).
func (ct *ConflictTracker) AverageCR() float64 {
	sum, n := 0.0, 0
	for id := range ct.perInstr {
		if len(ct.perInstr[id]) == 0 {
			continue
		}
		sum += ct.CR(id)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// DistinctContexts returns the total number of distinct (instruction,
// context) pairs observed — an upper bound on what an unbounded
// context-sensitive analysis would have to store.
func (ct *ConflictTracker) DistinctContexts() int {
	total := 0
	for _, m := range ct.perInstr {
		for _, set := range m {
			total += len(set)
		}
	}
	return total
}
