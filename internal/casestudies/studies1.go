package casestudies

import "fmt"

func init() {
	registerStudy(&CaseStudy{
		Name: "sunflow",
		Pattern: "each Matrix/Vector method starts with cloning a new object and assigns " +
			"the result of the computation to the new object; float values converted to " +
			"ints and back in the hottest methods",
		Fix: "eliminate unnecessary clones (in-place vector arithmetic on reused objects) " +
			"and bookkeep the packed values directly to avoid back-and-forth conversions",
		PaperResult:    "9%–15% running time reduction",
		SuspectClasses: []string{"Vec"},
		SuspectMethods: []string{"Vec.cloneV"},
		Bloated: func(scale int) string {
			return fmt.Sprintf(sunflowCommon, sunflowBloatVec, fmt.Sprintf(sunflowBloatMain, 60*scale))
		},
		Optimized: func(scale int) string {
			return fmt.Sprintf(sunflowCommon, sunflowOptVec, fmt.Sprintf(sunflowOptMain, 60*scale))
		},
	})

	registerStudy(&CaseStudy{
		Name: "eclipse",
		Pattern: "visitor objects and stack-based general iterators allocated per traversal " +
			"of a simple tree; Hashtable rehash recomputes the hash codes of all existing entries",
		Fix: "replace the visitor implementation with a worklist implementation and cache " +
			"entry hash codes in an int array used during rehash",
		PaperResult:    "14.5% running time reduction (151s → 129s), 2% fewer objects",
		SuspectClasses: []string{"IterFrame", "Visitor"},
		SuspectMethods: []string{"TreeIterator.next"},
		Bloated:        func(scale int) string { return fmt.Sprintf(eclipseBloated, 8*scale) },
		Optimized:      func(scale int) string { return fmt.Sprintf(eclipseOptimized, 8*scale) },
	})

	registerStudy(&CaseStudy{
		Name: "bloat",
		Pattern: "String/StringBuffer objects created in toString methods and consumed only " +
			"by debug checks that never fire in production; NodeComparator objects allocated " +
			"recursively per node pair",
		Fix: "construct the debug strings only under the debug flag and reuse a single " +
			"comparator via recursion on this",
		PaperResult:    "37% running time reduction, 68% fewer objects",
		SuspectClasses: []string{"CharBuf", "NodeComparator"},
		SuspectMethods: []string{"Node.describe"},
		Bloated:        func(scale int) string { return fmt.Sprintf(bloatBloated, 10*scale) },
		Optimized:      func(scale int) string { return fmt.Sprintf(bloatOptimized, 10*scale) },
	})
}

// sunflowCommon is the shared scaffolding; the two %s slots take the Vec
// class and the Main class, the %d takes the ray count.
const sunflowCommon = `
%s
class Shader {
  int[] slots;
  void init(int n) { this.slots = new int[n]; }
  void storePacked(int i, int v) { this.slots[i] = floatToIntBits(v); }
  int loadPacked(int i) { return intBitsToFloat(this.slots[i]); }
  void storeDirect(int i, int v) { this.slots[i] = v; }
  int loadDirect(int i) { return this.slots[i]; }
}
%s
`

const sunflowBloatVec = `
class Vec {
  int x; int y; int z;
  Vec cloneV() {
    Vec r = new Vec();
    r.x = this.x; r.y = this.y; r.z = this.z;
    return r;
  }
  Vec add(Vec o) {
    Vec r = this.cloneV();
    r.x = r.x + o.x; r.y = r.y + o.y; r.z = r.z + o.z;
    return r;
  }
  Vec mul(int f) {
    Vec r = this.cloneV();
    r.x = r.x * f; r.y = r.y * f; r.z = r.z * f;
    return r;
  }
  int dot(Vec o) { return this.x * o.x + this.y * o.y + this.z * o.z; }
}`

const sunflowBloatMain = `
class Main {
  static void main() {
    int rays = %d;
    Shader sh = new Shader();
    sh.init(16);
    int lum = 0;
    for (int r = 0; r < rays; r = r + 1) {
      Vec dir = new Vec();
      dir.x = hash(r) %% 32; dir.y = hash(r + 1) %% 32; dir.z = hash(r + 2) %% 32;
      Vec n = new Vec();
      n.x = 1; n.y = 2; n.z = 3;
      Vec h = dir.add(n).mul(2).add(dir).mul(3);
      int shade = h.dot(n);
      sh.storePacked(r %% 16, shade);
      lum = lum + sh.loadPacked(r %% 16);
    }
    print(lum);
  }
}`

const sunflowOptVec = `
class Vec {
  int x; int y; int z;
  void set(Vec o) { this.x = o.x; this.y = o.y; this.z = o.z; }
  void addIn(Vec o) { this.x = this.x + o.x; this.y = this.y + o.y; this.z = this.z + o.z; }
  void mulIn(int f) { this.x = this.x * f; this.y = this.y * f; this.z = this.z * f; }
  int dot(Vec o) { return this.x * o.x + this.y * o.y + this.z * o.z; }
}`

const sunflowOptMain = `
class Main {
  static void main() {
    int rays = %d;
    Shader sh = new Shader();
    sh.init(16);
    Vec dir = new Vec();
    Vec n = new Vec();
    Vec acc = new Vec();
    int lum = 0;
    for (int r = 0; r < rays; r = r + 1) {
      dir.x = hash(r) %% 32; dir.y = hash(r + 1) %% 32; dir.z = hash(r + 2) %% 32;
      n.x = 1; n.y = 2; n.z = 3;
      acc.set(dir);
      acc.addIn(n);
      acc.mulIn(2);
      acc.addIn(dir);
      acc.mulIn(3);
      int shade = acc.dot(n);
      sh.storeDirect(r %% 16, shade);
      lum = lum + sh.loadDirect(r %% 16);
    }
    print(lum);
  }
}`

const eclipseBloated = `
class Resource {
  int id;
  Resource[] children;
  int nChildren;
}
class Visitor {
  int visited;
  boolean visit(Resource r) { this.visited = this.visited + 1; return true; }
}
class IterFrame { Resource res; int idx; IterFrame below; }
class TreeIterator {
  IterFrame top;
  void init(Resource root) {
    IterFrame f = new IterFrame();
    f.res = root;
    f.idx = 0;
    this.top = f;
  }
  Resource next() {
    while (this.top != null) {
      IterFrame f = this.top;
      if (f.idx == 0) {
        f.idx = 1;
        int i = f.res.nChildren - 1;
        while (i >= 0) {
          IterFrame nf = new IterFrame();
          nf.res = f.res.children[i];
          nf.idx = 0;
          nf.below = this.top;
          this.top = nf;
          i = i - 1;
        }
        return f.res;
      }
      this.top = f.below;
    }
    return null;
  }
}
class Hashtable {
  int[][] keys;
  int[] values;
  int size;
  void init(int cap) {
    this.keys = new int[cap][];
    this.values = new int[cap];
    this.size = 0;
  }
  int hashKey(int[] key) {
    int h = 17;
    for (int i = 0; i < key.length; i = i + 1) { h = h * 31 + key[i]; }
    if (h < 0) { h = -h; }
    return h;
  }
  void put(int[] key, int value) {
    if (this.size * 2 >= this.keys.length) { this.rehash(); }
    int h = this.hashKey(key) %% this.keys.length;
    while (this.keys[h] != null) { h = (h + 1) %% this.keys.length; }
    this.keys[h] = key;
    this.values[h] = value;
    this.size = this.size + 1;
  }
  void rehash() {
    int[][] oldKeys = this.keys;
    int[] oldVals = this.values;
    this.keys = new int[oldKeys.length * 2][];
    this.values = new int[oldKeys.length * 2];
    this.size = 0;
    for (int i = 0; i < oldKeys.length; i = i + 1) {
      if (oldKeys[i] != null) { this.put(oldKeys[i], oldVals[i]); }
    }
  }
}
class WorkspaceGen {
  Resource gen(int depth, int seed) {
    Resource r = new Resource();
    r.id = seed;
    int fan = 0;
    if (depth > 0) { fan = 3; }
    r.children = new Resource[fan];
    r.nChildren = fan;
    for (int i = 0; i < fan; i = i + 1) {
      r.children[i] = this.gen(depth - 1, seed * 4 + i + 1);
    }
    return r;
  }
}
class Main {
  static void main() {
    int traversals = %d;
    WorkspaceGen g = new WorkspaceGen();
    Resource root = g.gen(4, 1);
    int visits = 0;
    for (int t = 0; t < traversals; t = t + 1) {
      Visitor v = new Visitor();
      TreeIterator it = new TreeIterator();
      it.init(root);
      Resource r = it.next();
      while (r != null) {
        boolean more = v.visit(r);
        if (!more) { break; }
        r = it.next();
      }
      visits = visits + v.visited;
    }
    Hashtable ht = new Hashtable();
    ht.init(8);
    for (int k = 0; k < traversals * 4; k = k + 1) {
      int[] key = new int[6];
      for (int i = 0; i < 6; i = i + 1) { key[i] = hash(k * 6 + i); }
      ht.put(key, k);
    }
    print(visits);
    print(ht.size);
  }
}`

const eclipseOptimized = `
class Resource {
  int id;
  Resource[] children;
  int nChildren;
}
class Worklist {
  Resource[] stack;
  int sp;
  int count;
  void init(int cap) { this.stack = new Resource[cap]; }
  int traverse(Resource root) {
    this.sp = 0;
    this.count = 0;
    this.stack[this.sp] = root;
    this.sp = this.sp + 1;
    while (this.sp > 0) {
      this.sp = this.sp - 1;
      Resource r = this.stack[this.sp];
      this.count = this.count + 1;
      for (int i = 0; i < r.nChildren; i = i + 1) {
        this.stack[this.sp] = r.children[i];
        this.sp = this.sp + 1;
      }
    }
    return this.count;
  }
}
class Hashtable {
  int[][] keys;
  int[] values;
  int[] hashes;     // cached hash codes, reused by rehash
  int size;
  void init(int cap) {
    this.keys = new int[cap][];
    this.values = new int[cap];
    this.hashes = new int[cap];
    this.size = 0;
  }
  int hashKey(int[] key) {
    int h = 17;
    for (int i = 0; i < key.length; i = i + 1) { h = h * 31 + key[i]; }
    if (h < 0) { h = -h; }
    return h;
  }
  void put(int[] key, int value) {
    this.putHashed(key, this.hashKey(key), value);
  }
  void putHashed(int[] key, int hashCode, int value) {
    if (this.size * 2 >= this.keys.length) { this.rehash(); }
    int h = hashCode %% this.keys.length;
    while (this.keys[h] != null) { h = (h + 1) %% this.keys.length; }
    this.keys[h] = key;
    this.values[h] = value;
    this.hashes[h] = hashCode;
    this.size = this.size + 1;
  }
  void rehash() {
    int[][] oldKeys = this.keys;
    int[] oldVals = this.values;
    int[] oldHashes = this.hashes;
    this.keys = new int[oldKeys.length * 2][];
    this.values = new int[oldKeys.length * 2];
    this.hashes = new int[oldKeys.length * 2];
    this.size = 0;
    for (int i = 0; i < oldKeys.length; i = i + 1) {
      if (oldKeys[i] != null) { this.putHashed(oldKeys[i], oldHashes[i], oldVals[i]); }
    }
  }
}
class WorkspaceGen {
  Resource gen(int depth, int seed) {
    Resource r = new Resource();
    r.id = seed;
    int fan = 0;
    if (depth > 0) { fan = 3; }
    r.children = new Resource[fan];
    r.nChildren = fan;
    for (int i = 0; i < fan; i = i + 1) {
      r.children[i] = this.gen(depth - 1, seed * 4 + i + 1);
    }
    return r;
  }
}
class Main {
  static void main() {
    int traversals = %d;
    WorkspaceGen g = new WorkspaceGen();
    Resource root = g.gen(4, 1);
    Worklist wl = new Worklist();
    wl.init(256);
    int visits = 0;
    for (int t = 0; t < traversals; t = t + 1) {
      visits = visits + wl.traverse(root);
    }
    Hashtable ht = new Hashtable();
    ht.init(8);
    for (int k = 0; k < traversals * 4; k = k + 1) {
      int[] key = new int[6];
      for (int i = 0; i < 6; i = i + 1) { key[i] = hash(k * 6 + i); }
      ht.put(key, k);
    }
    print(visits);
    print(ht.size);
  }
}`

const bloatBloated = `
class CharBuf {
  int[] chars;
  int len;
  void init(int cap) { this.chars = new int[cap]; this.len = 0; }
  void append(int c) {
    if (this.len < this.chars.length) {
      this.chars[this.len] = c;
      this.len = this.len + 1;
    }
  }
  void appendInt(int v) {
    if (v == 0) { this.append(48); return; }
    if (v < 0) { this.append(45); v = -v; }
    int rev = 0;
    while (v > 0) { rev = rev * 10 + v %% 10; v = v / 10; }
    while (rev > 0) { this.append(48 + rev %% 10); rev = rev / 10; }
  }
}
class Node {
  int kind;
  int value;
  Node left;
  Node right;
  CharBuf describe() {
    CharBuf sb = new CharBuf();
    sb.init(32);
    sb.append(110); sb.append(111); sb.append(100); sb.append(101);
    sb.appendInt(this.kind);
    sb.append(58);
    sb.appendInt(this.value);
    return sb;
  }
}
class NodeComparator {
  int compare(Node a, Node b) {
    if (a == null && b == null) { return 0; }
    if (a == null) { return -1; }
    if (b == null) { return 1; }
    if (a.value != b.value) { return a.value - b.value; }
    NodeComparator lc = new NodeComparator();
    int l = lc.compare(a.left, b.left);
    if (l != 0) { return l; }
    NodeComparator rc = new NodeComparator();
    return rc.compare(a.right, b.right);
  }
}
class Builder {
  Node build(int depth, int seed) {
    if (depth == 0) { return null; }
    Node n = new Node();
    n.kind = seed %% 7;
    n.value = hash(seed) %% 1000;
    n.left = this.build(depth - 1, seed * 2 + 1);
    n.right = this.build(depth - 1, seed * 2 + 2);
    return n;
  }
}
class Walker {
  int walk(Node n, boolean debugging) {
    if (n == null) { return 0; }
    CharBuf msg = n.describe();              // built for EVERY node visited
    int c = 0;
    if (debugging) { c = msg.len; }          // …but consumed only when debugging
    return c + this.walk(n.left, debugging) + this.walk(n.right, debugging);
  }
}
class Main {
  static void main() {
    boolean debugging = false;
    int rounds = %d;
    Builder bld = new Builder();
    Walker w = new Walker();
    int acc = 0;
    for (int r = 0; r < rounds; r = r + 1) {
      Node t1 = bld.build(5, r + 1);
      Node t2 = bld.build(5, r + 2);
      NodeComparator cmp = new NodeComparator();
      acc = acc + cmp.compare(t1, t2);
      acc = acc + w.walk(t1, debugging);
      acc = acc + w.walk(t2, debugging);
    }
    print(acc);
  }
}`

const bloatOptimized = `
class CharBuf {
  int[] chars;
  int len;
  void init(int cap) { this.chars = new int[cap]; this.len = 0; }
  void append(int c) {
    if (this.len < this.chars.length) {
      this.chars[this.len] = c;
      this.len = this.len + 1;
    }
  }
  void appendInt(int v) {
    if (v == 0) { this.append(48); return; }
    if (v < 0) { this.append(45); v = -v; }
    int rev = 0;
    while (v > 0) { rev = rev * 10 + v %% 10; v = v / 10; }
    while (rev > 0) { this.append(48 + rev %% 10); rev = rev / 10; }
  }
}
class Node {
  int kind;
  int value;
  Node left;
  Node right;
  CharBuf describe() {
    CharBuf sb = new CharBuf();
    sb.init(32);
    sb.append(110); sb.append(111); sb.append(100); sb.append(101);
    sb.appendInt(this.kind);
    sb.append(58);
    sb.appendInt(this.value);
    return sb;
  }
}
class NodeComparator {
  int compare(Node a, Node b) {           // single comparator, recurse on this
    if (a == null && b == null) { return 0; }
    if (a == null) { return -1; }
    if (b == null) { return 1; }
    if (a.value != b.value) { return a.value - b.value; }
    int l = this.compare(a.left, b.left);
    if (l != 0) { return l; }
    return this.compare(a.right, b.right);
  }
}
class Builder {
  Node build(int depth, int seed) {
    if (depth == 0) { return null; }
    Node n = new Node();
    n.kind = seed %% 7;
    n.value = hash(seed) %% 1000;
    n.left = this.build(depth - 1, seed * 2 + 1);
    n.right = this.build(depth - 1, seed * 2 + 2);
    return n;
  }
}
class Walker {
  int walk(Node n, boolean debugging) {
    if (n == null) { return 0; }
    int c = 0;
    if (debugging) {                         // string built only when needed
      CharBuf msg = n.describe();
      c = msg.len;
    }
    return c + this.walk(n.left, debugging) + this.walk(n.right, debugging);
  }
}
class Main {
  static void main() {
    boolean debugging = false;
    int rounds = %d;
    Builder bld = new Builder();
    Walker w = new Walker();
    NodeComparator cmp = new NodeComparator();
    int acc = 0;
    for (int r = 0; r < rounds; r = r + 1) {
      Node t1 = bld.build(5, r + 1);
      Node t2 = bld.build(5, r + 2);
      acc = acc + cmp.compare(t1, t2);
      acc = acc + w.walk(t1, debugging);
      acc = acc + w.walk(t2, debugging);
    }
    print(acc);
  }
}`
