#!/bin/sh
# Pre-PR gate: formatting, vet, build, tests. Run via `make check` or
# directly. Fails fast with the first offending step.
set -e
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: needs formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
# The analysis pipeline is parallel; -short keeps the race pass fast by
# trimming the all-workload differential sweeps to a subset.
go test -race -short ./...
echo "check: OK"
