package ssa

import "lowutil/internal/ir"

// Copy propagation and dominance-based value numbering. Both are analyses,
// not transformations: the vet checks use copy resolution to see through
// move chains when chasing a value's real uses, and the `lowutil ssa` dump
// annotates redundant computations found by value numbering.

// CopyProp maps every value to its representative after copy propagation:
// OpMove definitions forward to their source, and a phi whose non-undef
// arguments all resolve to one value (or to the phi itself) forwards to that
// value. Fixpointed, so chains and phi cycles of copies collapse.
func CopyProp(f *Func) []ValID {
	rep := make([]ValID, len(f.Vals))
	for v := range rep {
		rep[v] = ValID(v)
	}
	find := func(v ValID) ValID {
		for rep[v] != v {
			rep[v] = rep[rep[v]] // path halving
			v = rep[v]
		}
		return v
	}
	for changed := true; changed; {
		changed = false
		for v := range f.Vals {
			val := &f.Vals[v]
			var to ValID = None
			switch val.Kind {
			case VInstr:
				if f.M.Code[val.PC].Op == ir.OpMove {
					to = f.Operands[val.PC][0]
				}
			case VPhi:
				// A phi of copies: every argument resolves to one value or
				// back to the phi itself.
				to = ValID(v)
				uniq := None
				for _, a := range val.Args {
					if a == None {
						continue
					}
					r := find(a)
					if r == find(ValID(v)) {
						continue
					}
					if f.Vals[r].Kind == VUndef {
						continue // the undef edge contributes no value
					}
					if uniq == None {
						uniq = r
					} else if uniq != r {
						uniq = None
						to = None
						break
					}
				}
				if to != None {
					if uniq == None {
						to = None // phi of only itself/undefs: leave alone
					} else {
						to = uniq
					}
				}
			}
			if to == None {
				continue
			}
			r, rv := find(to), find(ValID(v))
			if r != rv {
				rep[rv] = r
				changed = true
			}
		}
	}
	out := make([]ValID, len(f.Vals))
	for v := range out {
		out[v] = find(ValID(v))
	}
	return out
}

// vnKey identifies a pure computation for value numbering.
type vnKey struct {
	op       ir.Op
	sub      uint8 // BinOp / Cmp discriminator
	imm      int64
	isNull   bool
	a, b     int32 // value numbers of the (resolved) operands
	identity int   // field/static/class identity for typed ops
}

// ValueNumbers performs dominance-based value numbering over f: pure
// computations with identical opcodes and congruent operands get the same
// number when the earlier one dominates the later. The result maps each
// value to its representative value (the first dominating congruent
// computation), and is the identity for values that are not redundant.
func ValueNumbers(f *Func, rep []ValID) []ValID {
	if rep == nil {
		rep = CopyProp(f)
	}
	out := make([]ValID, len(f.Vals))
	for v := range out {
		out[v] = ValID(v)
	}
	// Scope stack of hash tables, one per dominator-tree level: lookups walk
	// outward, inserts go to the innermost scope and are popped with it.
	type scope struct {
		b    int
		tbl  map[vnKey]ValID
		kids int
	}
	var stack []scope
	lookup := func(k vnKey) (ValID, bool) {
		for i := len(stack) - 1; i >= 0; i-- {
			if v, ok := stack[i].tbl[k]; ok {
				return v, true
			}
		}
		return None, false
	}
	keyFor := func(pc int) (vnKey, bool) {
		in := &f.M.Code[pc]
		k := vnKey{op: in.Op, a: -1, b: -1}
		opnum := func(i int) int32 { return int32(rep[f.Operands[pc][i]]) }
		switch in.Op {
		case ir.OpConst:
			k.imm, k.isNull = in.Imm, in.IsNull
		case ir.OpNeg, ir.OpNot:
			k.a = opnum(0)
		case ir.OpBin:
			k.sub = uint8(in.Bin)
			k.a, k.b = opnum(0), opnum(1)
			if commutative(in.Bin) && k.a > k.b {
				k.a, k.b = k.b, k.a
			}
		case ir.OpInstanceOf:
			k.a = opnum(0)
			k.identity = in.Class.ID
		default:
			// Moves are handled by copy propagation; loads, allocations,
			// calls and natives are not pure.
			return k, false
		}
		return k, true
	}
	visit := func(b int) scope {
		sc := scope{b: b, tbl: make(map[vnKey]ValID)}
		blk := &f.CFG.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			v := f.DefOf[pc]
			if v == None {
				continue
			}
			k, ok := keyFor(pc)
			if !ok {
				continue
			}
			// Check this block's own scope first — it is not on the stack
			// until visit returns — then the enclosing dominators.
			if w, ok := sc.tbl[k]; ok {
				out[v] = w
				continue
			}
			if w, ok := lookup(k); ok {
				out[v] = w
				continue
			}
			sc.tbl[k] = v
		}
		return sc
	}
	stack = append(stack, visit(0))
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		kids := f.Dom.Children[fr.b]
		if fr.kids < len(kids) {
			b := kids[fr.kids]
			fr.kids++
			stack = append(stack, visit(b))
			continue
		}
		stack = stack[:len(stack)-1]
	}
	return out
}

func commutative(op ir.BinOp) bool {
	switch op {
	case ir.Add, ir.Mul, ir.And, ir.Or, ir.Xor:
		return true
	}
	return false
}
