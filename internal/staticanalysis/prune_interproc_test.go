package staticanalysis

import (
	"testing"

	"lowutil/internal/costben"
	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/interproc"
	"lowutil/internal/ir"
	"lowutil/internal/profiler"
	"lowutil/internal/workloads"
)

// TestPruneInterprocSuperset: on every workload, the summary-refined prune
// set must contain the intraprocedural one, and must still touch only pure
// opcodes.
func TestPruneInterprocSuperset(t *testing.T) {
	strictlyMore := 0
	for _, w := range workloads.All() {
		prog, err := w.Compile(1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		base, bst := PruneSet(prog)
		an := interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA})
		inter, ist := PruneSetWith(prog, an.Sum)
		for id := range base {
			if base[id] && !inter[id] {
				in := prog.Instrs[id]
				t.Errorf("%s: %s pc %d pruned intraproc but not interproc",
					w.Name, in.Method.QualifiedName(), in.PC)
			}
			if inter[id] && !pruneOps[prog.Instrs[id].Op] {
				t.Errorf("%s: interproc pruned non-pure op %s", w.Name, prog.Instrs[id].Op)
			}
		}
		if ist.Pruned < bst.Pruned {
			t.Errorf("%s: interproc pruned %d < intraproc %d", w.Name, ist.Pruned, bst.Pruned)
		}
		if ist.Pruned > bst.Pruned {
			strictlyMore++
		}
	}
	t.Logf("interprocedural summaries pruned strictly more on %d/18 workloads", strictlyMore)
}

// TestPruneInterprocStrictlyMore: a pure helper whose constant result feeds
// only dead arithmetic is invisible to the per-method pruner (call results
// are conservatively tainted) but pruned with return-taint summaries.
func TestPruneInterprocStrictlyMore(t *testing.T) {
	b := ir.NewBuilder()
	cls := b.Class("Main", nil)
	helper := b.Method(cls, "seven", true, 0, ir.IntType)
	hb := b.Body(helper)
	hb.Const(0, 7)
	hb.Return(0)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Call(0, helper)      // pc0: r = seven()
	mb.Bin(1, ir.Add, 0, 0) // pc1: dead, derived only from the pure call
	mb.ReturnVoid()
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}

	base, _ := PruneSet(prog)
	if base[m.Code[1].ID] {
		t.Fatal("intraproc prune must treat the call result as tainted")
	}
	an := interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA})
	inter, _ := PruneSetWith(prog, an.Sum)
	if !inter[m.Code[1].ID] {
		t.Error("interproc prune must see seven() returns a taint-free constant")
	}
	if !inter[helper.Code[0].ID] && base[helper.Code[0].ID] {
		t.Error("superset violated inside the helper")
	}
}

// TestPruneVirtualDispatchWrite: a virtual call site where only one override
// writes a profiled field. The prune set must stay sound in both directions:
// the written field's store and load events survive in every override, and
// profiling with the interprocedural prune preserves the per-site ranking.
func TestPruneVirtualDispatchWrite(t *testing.T) {
	b := ir.NewBuilder()
	base := b.Class("Base", nil)
	fv := b.Field(base, "v", ir.IntType)
	writer := b.Class("Writer", base)
	quiet := b.Class("Quiet", base)

	// Base.touch(this, x) { } — Writer overrides with this.v = x; Quiet
	// inherits the empty body.
	touch := b.Method(base, "touch", false, 2, nil)
	b.Body(touch).ReturnVoid()
	wt := b.Method(writer, "touch", false, 2, nil)
	wb := b.Body(wt)
	wb.StoreField(0, fv, 1)
	wb.ReturnVoid()
	_ = quiet

	main := b.Class("Main", nil)
	mm := b.Method(main, "main", true, 0, nil)
	mb := b.Body(mm)
	mb.New(0, writer)        // pc0
	mb.New(1, quiet)         // pc1
	mb.Const(2, 5)           // pc2: the written value — must not be pruned
	mb.Call(-1, touch, 0, 2) // pc3: dispatches to Writer.touch
	mb.Call(-1, touch, 1, 2) // pc4: dispatches to Base.touch (no write)
	mb.LoadField(3, 0, fv)   // pc5
	mb.Native(-1, ir.NativePrint, 3)
	mb.ReturnVoid()
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}

	an := interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA})
	prune, _ := PruneSetWith(prog, an.Sum)
	if prune[mm.Code[2].ID] {
		t.Error("the const feeding Writer.touch's field write must not be pruned")
	}
	if prune[wt.Code[0].ID] || prune[mm.Code[5].ID] {
		t.Error("store/load events must never be pruned")
	}

	run := func(p []bool) *depgraph.Graph {
		pr := profiler.New(prog, profiler.Options{Slots: 16, Prune: p})
		m := interp.New(prog)
		m.Tracer = pr
		m.Prune = p
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return pr.G
	}
	full := costben.NewAnalysis(run(nil)).RankBySite(4)
	pruned := costben.NewAnalysis(run(prune)).RankBySite(4)
	if len(full) != len(pruned) {
		t.Fatalf("site count %d vs %d under prune", len(full), len(pruned))
	}
	for i := range full {
		f, p := full[i], pruned[i]
		if f.Site != p.Site || f.NRAC != p.NRAC || f.NRAB != p.NRAB {
			t.Errorf("rank %d diverges: %v vs %v", i, f, p)
		}
	}
}
