// Package clients implements the client analyses the paper builds on top of
// abstract dynamic thin slicing (§2.1) and on Gcost (§3.2):
//
//   - null-value propagation tracking (Figure 2(a))
//   - typestate history recording (Figure 2(b), QVM-style)
//   - extended copy profiling with intermediate stack nodes (Figure 2(c))
//   - method-level relative cost
//   - locations rewritten before being read
//   - always-true / always-false predicate detection
//   - collection ranking by cost-benefit rate
//
// Each client is an interp.Tracer with a small bounded abstract domain,
// demonstrating that "by carefully selecting domain D and abstraction
// functions f_a, it is possible to require only a small amount of memory for
// the graph and yet preserve necessary information needed for a target
// analysis".
package clients

import (
	"errors"
	"fmt"
	"strings"

	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
)

// Null-propagation abstract domain: D = {notnull, null}.
const (
	dNotNull = 0
	dNull    = 1
)

// NullTracker implements the null-propagation client. It builds an abstract
// dependence graph whose nodes are instructions annotated with whether the
// produced value was null, and answers "where did this null come from and
// how did it get here?" after a NullPointerException.
type NullTracker struct {
	G *depgraph.Graph

	statics  []*depgraph.Node
	pendArgs []*depgraph.Node
	havePend bool
	pendRet  *depgraph.Node
}

// NewNullTracker returns a tracker for prog.
func NewNullTracker(prog *ir.Program) *NullTracker {
	return &NullTracker{
		G:       depgraph.New(prog),
		statics: make([]*depgraph.Node, len(prog.Statics)),
	}
}

type nullFrameShadow struct{ nodes []*depgraph.Node }
type nullObjShadow struct{ slots []*depgraph.Node }

func (nt *NullTracker) fshadow(fr *interp.Frame) *nullFrameShadow {
	if fs, ok := fr.Shadow.(*nullFrameShadow); ok {
		return fs
	}
	fs := &nullFrameShadow{nodes: make([]*depgraph.Node, len(fr.Locals))}
	fr.Shadow = fs
	return fs
}

func (nt *NullTracker) oshadow(o *interp.Object) *nullObjShadow {
	if os, ok := o.Shadow.(*nullObjShadow); ok {
		return os
	}
	n := len(o.Fields)
	if o.IsArray() {
		n = len(o.Elems)
	}
	os := &nullObjShadow{slots: make([]*depgraph.Node, n)}
	o.Shadow = os
	return os
}

// abstraction: d = null iff the produced value is the null reference.
func dOf(v interp.Value) int {
	if v.IsNull() {
		return dNull
	}
	return dNotNull
}

// Exec implements interp.Tracer. Only reference-relevant flows matter, but
// tracking everything uniformly is simpler and still bounded by 2|I|.
func (nt *NullTracker) Exec(ev *interp.Event) {
	in := ev.In
	fs := nt.fshadow(ev.Frame)
	g := nt.G
	switch in.Op {
	case ir.OpConst:
		fs.nodes[in.Dst] = g.Touch(in, dOf(ev.Val))
	case ir.OpMove:
		n := g.Touch(in, dOf(ev.Val))
		g.AddDep(n, fs.nodes[in.A])
		fs.nodes[in.Dst] = n
	case ir.OpBin:
		n := g.Touch(in, dNotNull)
		g.AddDep(n, fs.nodes[in.A])
		g.AddDep(n, fs.nodes[in.B])
		fs.nodes[in.Dst] = n
	case ir.OpNeg, ir.OpNot, ir.OpInstanceOf, ir.OpArrayLen:
		n := g.Touch(in, dNotNull)
		g.AddDep(n, fs.nodes[in.A])
		fs.nodes[in.Dst] = n
	case ir.OpNew, ir.OpNewArray:
		fs.nodes[in.Dst] = g.Touch(in, dNotNull)
	case ir.OpLoadField:
		n := g.Touch(in, dOf(ev.Val))
		os := nt.oshadow(ev.Base)
		if in.Field.Slot < len(os.slots) {
			g.AddDep(n, os.slots[in.Field.Slot])
		}
		fs.nodes[in.Dst] = n
	case ir.OpStoreField:
		n := g.Touch(in, dOf(ev.Val))
		g.AddDep(n, fs.nodes[in.B])
		os := nt.oshadow(ev.Base)
		if in.Field.Slot < len(os.slots) {
			os.slots[in.Field.Slot] = n
		}
	case ir.OpLoadStatic:
		n := g.Touch(in, dOf(ev.Val))
		g.AddDep(n, nt.statics[in.Static.Slot])
		fs.nodes[in.Dst] = n
	case ir.OpStoreStatic:
		n := g.Touch(in, dOf(ev.Val))
		g.AddDep(n, fs.nodes[in.A])
		nt.statics[in.Static.Slot] = n
	case ir.OpALoad:
		n := g.Touch(in, dOf(ev.Val))
		os := nt.oshadow(ev.Base)
		if int(ev.Index) < len(os.slots) {
			g.AddDep(n, os.slots[ev.Index])
		}
		fs.nodes[in.Dst] = n
	case ir.OpAStore:
		n := g.Touch(in, dOf(ev.Val))
		g.AddDep(n, fs.nodes[in.C2])
		os := nt.oshadow(ev.Base)
		if int(ev.Index) < len(os.slots) {
			os.slots[ev.Index] = n
		}
	case ir.OpIf, ir.OpNative:
		if in.Op == ir.OpNative && in.Dst >= 0 {
			fs.nodes[in.Dst] = nt.G.Touch(in, dOf(ev.Val))
		}
	}
}

// BeforeCall implements interp.Tracer.
func (nt *NullTracker) BeforeCall(in *ir.Instr, caller *interp.Frame, callee *ir.Method, recv *interp.Object) {
	fs := nt.fshadow(caller)
	nt.pendArgs = nt.pendArgs[:0]
	for _, a := range in.Args {
		nt.pendArgs = append(nt.pendArgs, fs.nodes[a])
	}
	nt.havePend = true
}

// EnterMethod implements interp.Tracer.
func (nt *NullTracker) EnterMethod(fr *interp.Frame, recv *interp.Object) {
	fs := &nullFrameShadow{nodes: make([]*depgraph.Node, fr.Method.NumLocals)}
	if nt.havePend {
		copy(fs.nodes, nt.pendArgs)
		nt.havePend = false
	}
	fr.Shadow = fs
}

// BeforeReturn implements interp.Tracer.
func (nt *NullTracker) BeforeReturn(in *ir.Instr, fr *interp.Frame) {
	if in.HasA {
		nt.pendRet = nt.fshadow(fr).nodes[in.A]
	} else {
		nt.pendRet = nil
	}
}

// AfterCall implements interp.Tracer.
func (nt *NullTracker) AfterCall(in *ir.Instr, caller *interp.Frame, hasValue bool) {
	ret := nt.pendRet
	nt.pendRet = nil
	if !hasValue || in == nil || in.Dst < 0 {
		return
	}
	fs := nt.fshadow(caller)
	d := dNotNull
	if caller.Locals[in.Dst].IsNull() {
		d = dNull
	}
	n := nt.G.Touch(in, d)
	nt.G.AddDep(n, ret)
	fs.nodes[in.Dst] = n
}

// NullReport explains a NullPointerException: the instruction that
// originally produced the null, the flow of copies it travelled, and the
// dereference site.
type NullReport struct {
	Origin *ir.Instr
	Flow   []*ir.Instr // origin … deref-predecessor, in flow order
	Deref  *ir.Instr
}

func (r *NullReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "null created at %s pc %d (%s)\n", r.Origin.Method.QualifiedName(), r.Origin.PC, r.Origin)
	for _, in := range r.Flow[1:] {
		fmt.Fprintf(&sb, "  flows via %s pc %d (%s)\n", in.Method.QualifiedName(), in.PC, in)
	}
	fmt.Fprintf(&sb, "dereferenced at %s pc %d (%s)", r.Deref.Method.QualifiedName(), r.Deref.PC, r.Deref)
	return sb.String()
}

// Diagnose explains a null-dereference VMError using the recorded graph: it
// walks backward from the null value that reached the failing base slot,
// following null-annotated nodes, to the node where the null was created.
func (nt *NullTracker) Diagnose(err error) (*NullReport, bool) {
	var vmErr *interp.VMError
	if !errors.As(err, &vmErr) || vmErr.Kind != interp.ErrNullDeref {
		return nil, false
	}
	in := vmErr.In
	baseSlot := in.A
	if in.Op == ir.OpCall {
		baseSlot = in.Args[0]
	}
	fs := nt.fshadow(vmErr.Frame)
	start := fs.nodes[baseSlot]
	if start == nil || start.D != dNull {
		return nil, false
	}
	// Walk to the origin: repeatedly step to a null-annotated dependency.
	var flow []*ir.Instr
	seen := map[*depgraph.Node]bool{}
	cur := start
	for cur != nil && !seen[cur] {
		seen[cur] = true
		flow = append(flow, cur.In)
		var next *depgraph.Node
		cur.Deps(func(d *depgraph.Node) {
			if next == nil && d.D == dNull {
				next = d
			}
		})
		cur = next
	}
	// flow is deref-side first; reverse into creation order.
	for i, j := 0, len(flow)-1; i < j; i, j = i+1, j-1 {
		flow[i], flow[j] = flow[j], flow[i]
	}
	return &NullReport{Origin: flow[0], Flow: flow, Deref: in}, true
}

var _ interp.Tracer = (*NullTracker)(nil)
