// Command lowutil compiles and analyzes MJ programs with the cost-benefit
// profiler and the client analyses.
//
// Usage:
//
//	lowutil run        prog.mj          execute and print the program output
//	lowutil disasm     prog.mj          print the three-address code
//	lowutil vet        [flags] prog.mj  static diagnostics, no execution
//	lowutil ssa        [flags] prog.mj  dump SSA form with SCCP and loop info
//	lowutil slice      [flags] prog.mj  interprocedural static thin slice
//	lowutil audit      [flags] prog.mj  static escape/lifetime low-utility audit
//	lowutil profile    [flags] prog.mj  rank low-utility data structures
//	lowutil nullcheck  prog.mj          diagnose a NullPointerException
//	lowutil copies     [flags] prog.mj  extended copy profiling
//	lowutil predicates [flags] prog.mj  always-true/false predicates
//	lowutil overwrites [flags] prog.mj  heap locations rewritten before read
//	lowutil serve      [flags]          HTTP profiling service (v2 JSON API)
//	lowutil batch      [flags]          all 18 workloads through the job queue
//	lowutil fuzz       [flags]          randomized differential invariant fuzzing
//
// Flags (fuzz): -seed root seed (default 1), -n programs (default 100),
// -minutes time box, -max-failures early stop, -json machine-readable
// summary, -v progress to stderr. Each generated program runs through every
// engine pair; failures are shrunk to a minimal reproducer. With -n alone
// the output is byte-identical across runs with the same seed.
//
// Flags (profile): -s context slots (default 16), -top findings (default
// 10), -n reference-tree height (default 4), -traditional for the
// traditional-slicing ablation, -prune to statically prune instrumentation.
//
// Flags (slice): -mode cha|rta call-graph construction (default rta),
// -objctx for one level of receiver-object context in the points-to heap
// abstraction, -top candidates (default 10). slice never runs the program:
// it reports the static over-approximation of Gcost — every dependence any
// run could produce is contained in it — with per-location cost/benefit
// bounds and the statically write-only stored locations.
//
// Flags (audit): -mode cha|rta call-graph construction (default rta),
// -objctx for receiver-object context, -top sites (default 10). audit never
// runs the program either: it classifies every allocation site on the
// no-escape / arg-escape / global-escape lattice, infers lifetime regions,
// detects copy-chain and loop-confined shapes, and ranks the sites by their
// frequency-weighted static cost/benefit bounds.
//
// vet reports, without running the program: dead stores, write-only fields,
// unused allocations, unreachable code, and possibly-uninitialized reads.
// It exits 1 when it finds anything. -engine selects the analysis engine:
// ssa (default: sparse analyses over SSA form, which also flag transitively
// dead stores and constant-propagation-unreachable code) or dense (the
// bit-vector reaching-definitions reference).
//
// ssa dumps the pruned SSA form of every method (-m Class.method for one):
// phi placement, SCCP constant and dead-block verdicts, value-numbering
// redundancies, and the loop forest with inferred trip counts and static
// frequency weights.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"lowutil"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	args := os.Args[2:]
	var err error
	switch cmd {
	case "run":
		err = cmdRun(args)
	case "disasm":
		err = cmdDisasm(args)
	case "vet":
		err = cmdVet(args)
	case "ssa":
		err = cmdSSA(args)
	case "slice":
		err = cmdSlice(args)
	case "audit":
		err = cmdAudit(args)
	case "profile":
		err = cmdProfile(args)
	case "nullcheck":
		err = cmdNullcheck(args)
	case "copies":
		err = cmdCopies(args)
	case "predicates":
		err = cmdPredicates(args)
	case "overwrites":
		err = cmdOverwrites(args)
	case "caches":
		err = cmdCaches(args)
	case "serve":
		err = cmdServe(args)
	case "batch":
		err = cmdBatch(args)
	case "fuzz":
		err = cmdFuzz(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lowutil: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lowutil: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lowutil <command> [flags] <file.mj>
commands: run, disasm, vet, ssa, slice, audit, profile, nullcheck, copies, predicates, overwrites, caches, serve, batch, fuzz`)
}

// startProfiles starts a CPU profile and/or arranges a post-run heap profile
// when the corresponding path is non-empty. The returned stop function is
// idempotent-safe to defer; profile-write failures are reported to stderr
// since the command's own result is already decided by then.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "lowutil: writing cpu profile: %v\n", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lowutil: writing heap profile: %v\n", err)
				return
			}
			runtime.GC() // flush recent frees so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "lowutil: writing heap profile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "lowutil: writing heap profile: %v\n", err)
			}
		}
	}, nil
}

func compileFile(path string) (*lowutil.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return lowutil.Compile(string(src))
}

func oneFile(fs *flag.FlagSet, args []string) (string, error) {
	if err := fs.Parse(args); err != nil {
		return "", err
	}
	if fs.NArg() != 1 {
		return "", fmt.Errorf("expected exactly one .mj file, got %d args", fs.NArg())
	}
	return fs.Arg(0), nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	prog, err := compileFile(path)
	if err != nil {
		return err
	}
	res, err := prog.RunContext(context.Background())
	if err != nil {
		return err
	}
	for _, v := range res.Output {
		fmt.Println(v)
	}
	fmt.Fprintf(os.Stderr, "steps=%d allocs=%d nativeWork=%d\n", res.Steps, res.Allocs, res.NativeWork)
	return nil
}

func cmdDisasm(args []string) error {
	fs := flag.NewFlagSet("disasm", flag.ContinueOnError)
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	prog, err := compileFile(path)
	if err != nil {
		return err
	}
	fmt.Print(prog.Disassemble())
	return nil
}

func cmdVet(args []string) error {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	engine := fs.String("engine", "ssa", "analysis engine: ssa (sparse, SSA-based) or dense (bit-vector reference)")
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	prog, err := compileFile(path)
	if err != nil {
		return err
	}
	findings, err := prog.VetEngine(*engine)
	if err != nil {
		return err
	}
	if len(findings) == 0 {
		fmt.Println("no findings")
		return nil
	}
	for _, f := range findings {
		fmt.Println(f.Message)
	}
	return fmt.Errorf("%d finding(s)", len(findings))
}

func cmdSSA(args []string) error {
	fs := flag.NewFlagSet("ssa", flag.ContinueOnError)
	method := fs.String("m", "", "dump only this method (Class.method); default all")
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	prog, err := compileFile(path)
	if err != nil {
		return err
	}
	dump, err := prog.SSADump(*method)
	if err != nil {
		return err
	}
	fmt.Print(dump)
	return nil
}

func cmdSlice(args []string) error {
	fs := flag.NewFlagSet("slice", flag.ContinueOnError)
	mode := fs.String("mode", "rta", "call-graph construction: cha or rta")
	objctx := fs.Bool("objctx", false, "qualify allocation sites by one level of receiver-object context")
	top := fs.Int("top", lowutil.DefaultTop, "candidate locations to print")
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	prog, err := compileFile(path)
	if err != nil {
		return err
	}
	rep, err := prog.StaticSliceContext(context.Background(), staticOptions(*mode, *objctx, *top)...)
	if err != nil {
		return err
	}
	fmt.Print(rep)
	return nil
}

// staticOptions translates the shared -mode/-objctx/-top flags into the
// unified analysis options used by both slice and audit.
func staticOptions(mode string, objctx bool, top int) []lowutil.AnalysisOption {
	opts := []lowutil.AnalysisOption{lowutil.WithMode(mode), lowutil.WithTop(top)}
	if objctx {
		opts = append(opts, lowutil.WithObjCtx())
	}
	return opts
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ContinueOnError)
	mode := fs.String("mode", "rta", "call-graph construction: cha or rta")
	objctx := fs.Bool("objctx", false, "qualify allocation sites by one level of receiver-object context")
	top := fs.Int("top", lowutil.DefaultTop, "ranked sites to print")
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	prog, err := compileFile(path)
	if err != nil {
		return err
	}
	rep, err := prog.StaticAudit(context.Background(), staticOptions(*mode, *objctx, *top)...)
	if err != nil {
		return err
	}
	fmt.Print(rep)
	return nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	slots := fs.Int("s", lowutil.DefaultSlots, "context slots per instruction (the paper's s)")
	top := fs.Int("top", lowutil.DefaultTop, "findings to print")
	height := fs.Int("n", lowutil.DefaultTreeHeight, "reference-tree height for n-RAC/n-RAB")
	traditional := fs.Bool("traditional", false, "use traditional (non-thin) slicing")
	control := fs.Bool("control", false, "include control-decision cost (§3.2 alternative)")
	prune := fs.Bool("prune", false, "statically prune instrumentation of provably irrelevant instructions")
	hops := fs.Int("hops", 1, "heap-to-heap hops for multi-hop cost/benefit")
	save := fs.String("save", "", "write the profile (Gcost + metadata) to this file for offline analysis")
	load := fs.String("load", "", "analyze a previously saved profile instead of re-running")
	legacy := fs.Bool("legacy", false, "run on the reference engine (switch dispatch, map-backed Gcost)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile taken after the run to this file")
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	if *prune && *traditional {
		return fmt.Errorf("-prune is only sound for thin slicing; drop -traditional")
	}
	prog, err := compileFile(path)
	if err != nil {
		return err
	}
	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProf()
	var profile *lowutil.Profile
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		defer f.Close()
		profile, err = prog.LoadProfile(f)
		if err != nil {
			return err
		}
	} else {
		opts := []lowutil.ProfileOption{lowutil.WithSlots(*slots), lowutil.WithTreeHeight(*height)}
		if *traditional {
			opts = append(opts, lowutil.WithTraditional())
		}
		if *control {
			opts = append(opts, lowutil.WithTrackControl())
		}
		if *prune {
			opts = append(opts, lowutil.WithPrune())
		}
		if *legacy {
			opts = append(opts, lowutil.WithLegacyEngine())
		}
		profile, err = prog.ProfileContext(context.Background(), opts...)
		if err != nil {
			return err
		}
		if *prune {
			fmt.Fprintf(os.Stderr, "static prune: %d events skipped\n", profile.PrunedEvents())
		}
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := profile.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "profile saved to %s\n", *save)
	}
	if *hops > 1 {
		fmt.Printf("top low-utility structures (%d-hop):\n", *hops)
		for i, f := range profile.TopStructuresMultiHop(*top, *hops) {
			fmt.Printf("%3d. %s\n", i+1, f)
		}
		return nil
	}
	fmt.Print(profile.Report(*top))
	return nil
}

func cmdCaches(args []string) error {
	fs := flag.NewFlagSet("caches", flag.ContinueOnError)
	slots := fs.Int("s", lowutil.DefaultSlots, "context slots")
	minAcc := fs.Int64("min", 10, "minimum accesses")
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	prog, err := compileFile(path)
	if err != nil {
		return err
	}
	profile, err := prog.ProfileContext(context.Background(), lowutil.WithSlots(*slots))
	if err != nil {
		return err
	}
	reps := profile.CacheReports(*minAcc)
	if len(reps) == 0 {
		fmt.Println("no cache-like locations")
		return nil
	}
	fmt.Println("cache effectiveness, least effective first:")
	for _, r := range reps {
		fmt.Printf("  %-16s stores=%-6d loads=%-6d cached=%-8.0f avoided=%-8.0f eff=%.2f\n",
			r.Loc, r.Stores, r.Loads, r.CachedWork, r.AvoidedWork, r.Effectiveness)
	}
	return nil
}

func cmdNullcheck(args []string) error {
	fs := flag.NewFlagSet("nullcheck", flag.ContinueOnError)
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	prog, err := compileFile(path)
	if err != nil {
		return err
	}
	diag, err := prog.DiagnoseNull()
	if err != nil {
		return err
	}
	if diag == nil {
		fmt.Println("no null dereference: program ran to completion")
		return nil
	}
	fmt.Println(diag.Report)
	return nil
}

func cmdCopies(args []string) error {
	fs := flag.NewFlagSet("copies", flag.ContinueOnError)
	top := fs.Int("top", 10, "chains to print")
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	prog, err := compileFile(path)
	if err != nil {
		return err
	}
	chains, total, err := prog.CopyChains(*top)
	if err != nil {
		return err
	}
	fmt.Printf("total dynamic copies: %d\n", total)
	for _, c := range chains {
		fmt.Printf("%s -> %s  ×%d (%d stack hops)\n", c.Src, c.Dst, c.Count, c.StackHops)
	}
	return nil
}

func cmdPredicates(args []string) error {
	fs := flag.NewFlagSet("predicates", flag.ContinueOnError)
	minExec := fs.Int64("min", 100, "minimum executions")
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	prog, err := compileFile(path)
	if err != nil {
		return err
	}
	preds, err := prog.ConstantPredicates(*minExec)
	if err != nil {
		return err
	}
	if len(preds) == 0 {
		fmt.Println("no constant predicates")
	}
	for _, p := range preds {
		fmt.Println(p)
	}
	return nil
}

func cmdOverwrites(args []string) error {
	fs := flag.NewFlagSet("overwrites", flag.ContinueOnError)
	minWrites := fs.Int64("min", 10, "minimum writes")
	path, err := oneFile(fs, args)
	if err != nil {
		return err
	}
	prog, err := compileFile(path)
	if err != nil {
		return err
	}
	reps, err := prog.SilentOverwrites(*minWrites)
	if err != nil {
		return err
	}
	if len(reps) == 0 {
		fmt.Println("no silent overwrites")
	}
	for _, r := range reps {
		fmt.Println(r)
	}
	return nil
}
