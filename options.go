package lowutil

import "lowutil/internal/costben"

// Default parameter values shared by the facade, the server, and the CLIs.
// The profiler defaults follow the paper's configuration: s = 16 context
// slots per instruction and reference-tree height n = 4.
const (
	// DefaultSlots is the default number of context slots per instruction.
	DefaultSlots = 16
	// DefaultTreeHeight is the default reference-tree height for
	// n-RAC/n-RAB aggregation.
	DefaultTreeHeight = costben.DefaultTreeHeight
	// DefaultTop is the default length of ranked candidate lists in
	// rendered reports.
	DefaultTop = 10
)

// DefaultOptions returns the profiling configuration every tool starts
// from: thin slicing, s = DefaultSlots, n = DefaultTreeHeight, frozen
// analysis, no pruning. Callers mutate the copy (or, preferably, use
// ProfileContext with functional options).
func DefaultOptions() ProfileOptions {
	return ProfileOptions{Slots: DefaultSlots, TreeHeight: DefaultTreeHeight}
}

// A ProfileOption configures one aspect of a ProfileContext run. Options
// are applied in order over DefaultOptions, so later options win.
type ProfileOption func(*ProfileOptions)

// WithSlots sets the number of context slots per instruction (the paper's
// s). Non-positive values keep the default.
func WithSlots(s int) ProfileOption {
	return func(o *ProfileOptions) {
		if s > 0 {
			o.Slots = s
		}
	}
}

// WithTraditional switches from thin to traditional dynamic slicing
// (base-pointer dependences included) — mainly for ablations.
func WithTraditional() ProfileOption {
	return func(o *ProfileOptions) { o.Traditional = true }
}

// WithTreeHeight sets the reference-tree height n for n-RAC/n-RAB.
// Non-positive values keep the default.
func WithTreeHeight(n int) ProfileOption {
	return func(o *ProfileOptions) {
		if n > 0 {
			o.TreeHeight = n
		}
	}
}

// WithTrackControl includes the cost of the closest enclosing control
// decision in each value's cost (§3.2's design alternative).
func WithTrackControl() ProfileOption {
	return func(o *ProfileOptions) { o.TrackControl = true }
}

// WithPrune runs the static pre-analysis first and skips Gcost event
// emission for instructions it proves irrelevant to heap value flow.
// Ignored under WithTraditional, where the proof is unsound.
func WithPrune() ProfileOption {
	return func(o *ProfileOptions) { o.StaticPrune = true }
}

// WithLegacy selects the per-query traversal path of the cost-benefit
// analysis instead of the frozen-snapshot DP. Results are identical.
func WithLegacy() ProfileOption {
	return func(o *ProfileOptions) { o.LegacyAnalysis = true }
}

// WithWorkers bounds the ranking worker pool (0 = all CPUs).
func WithWorkers(n int) ProfileOption {
	return func(o *ProfileOptions) { o.AnalysisWorkers = n }
}

// WithMaxSteps bounds the profiled execution to n instruction instances;
// exceeding it fails the run with a step-limit error (0 = unlimited).
func WithMaxSteps(n int64) ProfileOption {
	return func(o *ProfileOptions) { o.MaxSteps = n }
}

// WithLegacyEngine runs the profiled execution on the reference engine
// (switch dispatch, map-backed Gcost) instead of the handler-table
// interpreter over the dense interned graph. Results are identical.
func WithLegacyEngine() ProfileOption {
	return func(o *ProfileOptions) { o.LegacyEngine = true }
}

// applyProfileOptions folds opts over the defaults.
func applyProfileOptions(opts []ProfileOption) ProfileOptions {
	o := DefaultOptions()
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// DefaultAnalysisOptions returns the static-analysis configuration every
// tool starts from: RTA call graph, no object context, Top = DefaultTop.
// Callers mutate the copy (or, preferably, use StaticSliceContext /
// StaticAudit with functional options).
func DefaultAnalysisOptions() AnalysisOptions {
	return AnalysisOptions{Top: DefaultTop}
}

// An AnalysisOption configures one aspect of a static-analysis run —
// StaticSliceContext and StaticAudit share the same option vocabulary.
// Options are applied in order over DefaultAnalysisOptions, so later
// options win.
type AnalysisOption func(*AnalysisOptions)

// SliceOption is the static slice's name for the shared analysis option.
type SliceOption = AnalysisOption

// AuditOption is the static audit's name for the shared analysis option.
type AuditOption = AnalysisOption

// WithMode selects call-graph construction: "cha" or "rta" (default).
func WithMode(mode string) AnalysisOption {
	return func(o *AnalysisOptions) { o.Mode = mode }
}

// WithObjCtx qualifies allocation sites by one level of receiver-object
// context.
func WithObjCtx() AnalysisOption {
	return func(o *AnalysisOptions) { o.ObjCtx = true }
}

// WithTop bounds the candidate list in the rendered report. Non-positive
// values keep the default.
func WithTop(n int) AnalysisOption {
	return func(o *AnalysisOptions) {
		if n > 0 {
			o.Top = n
		}
	}
}

// applyAnalysisOptions folds opts over the defaults.
func applyAnalysisOptions(opts []AnalysisOption) AnalysisOptions {
	o := DefaultAnalysisOptions()
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithAuditMode selects call-graph construction for the audit.
//
// Deprecated: use WithMode — slice and audit share one option vocabulary.
func WithAuditMode(mode string) AuditOption { return WithMode(mode) }

// WithAuditObjCtx qualifies allocation sites by receiver-object context
// during the audit.
//
// Deprecated: use WithObjCtx — slice and audit share one option vocabulary.
func WithAuditObjCtx() AuditOption { return WithObjCtx() }

// WithAuditTop bounds the ranked site list in the audit report.
//
// Deprecated: use WithTop — slice and audit share one option vocabulary.
func WithAuditTop(n int) AuditOption { return WithTop(n) }
