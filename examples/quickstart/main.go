// Quickstart: compile an MJ program, run the cost-benefit profiler, and
// print the low-utility data-structure report.
//
// The program is the paper's motivating "chart" pattern: series objects are
// populated with expensively computed points, but the renderer only ever
// asks for their sizes. The profiler flags the Point allocation site: large
// relative cost (the coordinate math), zero benefit (the fields are never
// read).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"lowutil"
)

const src = `
class Point { int x; int y; int style; }
class Series {
  Point[] items;
  int size;
  void init(int cap) { this.items = new Point[cap]; this.size = 0; }
  void add(Point p) { this.items[this.size] = p; this.size = this.size + 1; }
  int count() { return this.size; }
}
class Main {
  static void main() {
    int axisUnits = 0;
    for (int s = 0; s < 40; s = s + 1) {
      Series ser = new Series();
      ser.init(80);
      for (int i = 0; i < 80; i = i + 1) {
        Point p = new Point();
        p.x = hash(s * 1000 + i) % 640;      // expensive coordinate math...
        p.y = hash(s * 2000 + i * 3) % 480;
        p.style = (p.x ^ p.y) & 15;
        ser.add(p);
      }
      axisUnits = axisUnits + ser.count();   // ...but only the size is used
    }
    print(axisUnits);
  }
}`

func main() {
	prog, err := lowutil.Compile(src)
	if err != nil {
		log.Fatal(err)
	}

	// Static diagnostics need no execution: vet already sees that
	// Point.style is stored but never loaded. (Point.x and Point.y escape
	// vet — they are read back to compute style — yet the profiler below
	// still flags the whole structure: its cost dwarfs that benefit.)
	for _, f := range prog.Vet() {
		fmt.Println("vet:", f.Message)
	}
	fmt.Println()

	// Plain execution first.
	ctx := context.Background()
	res, err := prog.RunContext(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program output: %v  (%d instructions, %d allocations)\n\n",
		res.Output, res.Steps, res.Allocs)

	// Cost-benefit profiling: abstract dynamic thin slicing with 16 context
	// slots, relative cost/benefit aggregated over reference trees of
	// height 4 (the paper's configuration).
	profile, err := prog.ProfileContext(ctx, lowutil.WithSlots(16))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(profile.Report(5))

	top := profile.TopStructures(1)[0]
	fmt.Printf("=> most suspicious: %s\n", top)
	fmt.Println("   (the Point structures: expensive to construct, never read)")
}
