package casestudies

import "testing"

func TestSixStudiesRegistered(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("studies = %d, want 6", len(all))
	}
	want := []string{"sunflow", "eclipse", "bloat", "derby", "tomcat", "tradebeans"}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("study %d = %s, want %s", i, all[i].Name, name)
		}
		if all[i].Pattern == "" || all[i].Fix == "" || all[i].PaperResult == "" {
			t.Errorf("%s missing documentation fields", name)
		}
	}
	if ByName("sunflow") == nil || ByName("nope") != nil {
		t.Error("ByName broken")
	}
}

// TestAllStudiesImproveAndDetect is the core §4.2 reproduction: for every
// case study, (a) both variants produce identical output, (b) the optimized
// variant does strictly less work and allocates no more, and (c) the
// cost-benefit tool ranks a planted site near the top of the report for the
// bloated variant.
func TestAllStudiesImproveAndDetect(t *testing.T) {
	for _, cs := range All() {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			res, err := cs.Run(1, 16)
			if err != nil {
				t.Fatal(err)
			}
			if res.WorkReduction <= 0 {
				t.Errorf("work reduction = %.1f%%, want > 0\n%s", 100*res.WorkReduction, res)
			}
			if res.OptimizedAllocs > res.BloatedAllocs {
				t.Errorf("optimization increased allocations: %d → %d",
					res.BloatedAllocs, res.OptimizedAllocs)
			}
			if res.SuspectRank == 0 {
				t.Errorf("planted site not found in report:\n%s", res.TopReport)
			} else if res.SuspectRank > 5 {
				t.Errorf("planted site ranked %d, want top 5:\n%s", res.SuspectRank, res.TopReport)
			}
		})
	}
}

// TestShapeMatchesPaper: bloat shows the largest improvement of the six
// (37%% in the paper), and the well-tuned server workloads (tomcat,
// tradebeans, derby) show smaller ones — the qualitative ordering the paper
// reports.
func TestShapeMatchesPaper(t *testing.T) {
	red := map[string]float64{}
	alloc := map[string]float64{}
	for _, cs := range All() {
		res, err := cs.Run(1, 16)
		if err != nil {
			t.Fatal(err)
		}
		red[cs.Name] = res.WorkReduction
		alloc[cs.Name] = res.AllocReduction
	}
	for _, tuned := range []string{"derby", "tomcat"} {
		if red["bloat"] <= red[tuned] {
			t.Errorf("bloat reduction (%.1f%%) should exceed %s (%.1f%%)",
				100*red["bloat"], tuned, 100*red[tuned])
		}
	}
	// bloat also has the paper's largest object reduction (68%).
	if alloc["bloat"] < 0.3 {
		t.Errorf("bloat alloc reduction = %.1f%%, want >= 30%%", 100*alloc["bloat"])
	}
}

func TestScaleParameterization(t *testing.T) {
	cs := ByName("sunflow")
	r1, err := cs.Run(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := cs.Run(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r3.BloatedWork < 2*r1.BloatedWork {
		t.Errorf("scale 3 work (%d) should be ~3x scale 1 (%d)", r3.BloatedWork, r1.BloatedWork)
	}
}
