#!/bin/sh
# Runs the key analysis benchmarks and writes BENCH_<idx>.json (one object
# per benchmark: ns/op, B/op, allocs/op) so the perf trajectory is tracked
# across PRs. The index is the first argument (default 3); OUT overrides the
# path entirely. Override the selection or duration with:
#
#   sh scripts/bench.sh 4
#   BENCH='BenchmarkCostBenefitAnalysis' BENCHTIME=2s sh scripts/bench.sh
set -e
cd "$(dirname "$0")/.."

IDX="${1:-3}"
BENCH="${BENCH:-BenchmarkCostBenefitAnalysis|BenchmarkDeadness|BenchmarkOverhead|BenchmarkInterpreterRaw|BenchmarkPointsTo|BenchmarkStaticSlice|BenchmarkInterprocPrune|BenchmarkCancelCheck|BenchmarkSSAConstruct|BenchmarkSCCP|BenchmarkLoopForest|BenchmarkVetEngines}"
BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_${IDX}.json}"

go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -benchmem . \
    | tee /dev/stderr \
    | awk '
        /^Benchmark/ {
            name = $1
            ns = ""; bytes = ""; allocs = ""
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op")     ns = $i
                if ($(i+1) == "B/op")      bytes = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            if (ns == "") next
            line = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s", name, ns)
            if (bytes != "")  line = line sprintf(", \"bytes_per_op\": %s", bytes)
            if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
            line = line "}"
            lines[n++] = line
        }
        END {
            print "["
            for (i = 0; i < n; i++) print lines[i] (i < n-1 ? "," : "")
            print "]"
        }
    ' > "$OUT"

echo "bench: wrote $OUT" >&2
