package mjc

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestCompileNeverPanics: arbitrary input must produce an AST or an error,
// never a panic — the front end's robustness property.
func TestCompileNeverPanics(t *testing.T) {
	f := func(junk string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input %q: %v", junk, r)
				ok = false
			}
		}()
		_, _ = Compile(junk)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCompileNeverPanicsOnMutatedPrograms: mutate a valid program by
// deleting a random window — results must be an error or a valid program,
// never a panic.
func TestCompileNeverPanicsOnMutatedPrograms(t *testing.T) {
	base := `
class Node { int val; Node next; }
class List {
  Node head;
  void push(int v) {
    Node n = new Node();
    n.val = v;
    n.next = this.head;
    this.head = n;
  }
}
class Main {
  static void main() {
    List l = new List();
    for (int i = 0; i < 5; i = i + 1) { l.push(i * 2); }
    print(1);
  }
}`
	f := func(start, width uint16) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				ok = false
			}
		}()
		s := int(start) % len(base)
		e := s + int(width)%40
		if e > len(base) {
			e = len(base)
		}
		mutated := base[:s] + base[e:]
		_, _ = Compile(mutated)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestErrorPositionsPointIntoSource: semantic errors carry positions within
// the source's line range.
func TestErrorPositionsPointIntoSource(t *testing.T) {
	src := "class Main {\n  static void main() {\n    print(undefined);\n  }\n}"
	_, err := Compile(src)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "3:") {
		t.Errorf("error should point at line 3: %v", err)
	}
}
