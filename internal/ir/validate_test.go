package ir

import (
	"strings"
	"testing"
)

// TestValidateRejectsBypassedInit: a branch that jumps over a slot's only
// initialization leaves the read with no initializing path — rejected.
func TestValidateRejectsBypassedInit(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	g := mb.Goto(0)
	mb.Const(1, 5) // the only init of v1, jumped over
	l := mb.PC()
	mb.Move(2, 1) // read of v1
	mb.ReturnVoid()
	mb.Patch(g, l)
	if _, err := b.Seal("Main", "main"); err == nil ||
		!strings.Contains(err.Error(), "no path initializes") {
		t.Fatalf("want no-path-initializes error, got %v", err)
	}
}

// TestValidateAcceptsAllPathInit: a diamond that initializes the slot on
// both arms is fine.
func TestValidateAcceptsAllPathInit(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1)
	ifpc := mb.If(0, Eq, 0, 0)
	mb.Const(1, 10)
	g := mb.Goto(0)
	elsePC := mb.PC()
	mb.Const(1, 20)
	join := mb.PC()
	mb.Move(2, 1)
	mb.ReturnVoid()
	mb.Patch(ifpc, elsePC)
	mb.Patch(g, join)
	if _, err := b.Seal("Main", "main"); err != nil {
		t.Fatalf("all-path init must validate: %v", err)
	}
}

// TestValidateAcceptsOnePathInitRead: may-init validation tolerates a read
// that one path initializes (vet reports it instead of seal rejecting it).
func TestValidateAcceptsOnePathInitRead(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1)
	ifpc := mb.If(0, Eq, 0, 0)
	mb.Const(1, 5) // initializes v1 on the fall-through path only
	l := mb.PC()
	mb.Move(2, 1)
	mb.ReturnVoid()
	mb.Patch(ifpc, l)
	if _, err := b.Seal("Main", "main"); err != nil {
		t.Fatalf("one-path init must pass seal-time validation: %v", err)
	}
}

// TestValidateRejectsFallOffViaBranch: an If whose fall-through runs past
// the end of the body is a falls-off error even though the taken edge is
// fine.
func TestValidateRejectsFallOffViaBranch(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1)
	mb.If(0, Eq, 0, 0) // taken edge loops to pc0; fall-through exits the body
	if _, err := b.Seal("Main", "main"); err == nil ||
		!strings.Contains(err.Error(), "falls off") {
		t.Fatalf("want falls-off error, got %v", err)
	}
}

// TestValidateRejectsFrameSmallerThanParams: a method whose declared frame
// cannot hold its own parameters is rejected at seal time. The Builder grows
// NumLocals automatically, so the regression shrinks it by hand, the way a
// hand-built program could.
func TestValidateRejectsFrameSmallerThanParams(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("Main", nil)
	callee := b.Method(cls, "two", true, 2, nil)
	b.Body(callee).ReturnVoid()
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1)
	mb.Call(-1, callee, 0, 0)
	mb.ReturnVoid()
	callee.NumLocals = 1 // body touches no slot, so the builder left room for params only
	if _, err := b.Seal("Main", "main"); err == nil ||
		!strings.Contains(err.Error(), "cannot hold") {
		t.Fatalf("want frame-too-small error, got %v", err)
	}
}

// TestValidateRejectsCallArgOutOfRange pins the arg-slot bounds check on
// OpCall: an argument slot outside the caller's frame is rejected.
func TestValidateRejectsCallArgOutOfRange(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("Main", nil)
	callee := b.Method(cls, "one", true, 1, nil)
	b.Body(callee).ReturnVoid()
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1)
	call := mb.Call(-1, callee, 0)
	mb.ReturnVoid()
	m.Code[call].Args[0] = 99 // past the frame the builder sized
	if _, err := b.Seal("Main", "main"); err == nil ||
		!strings.Contains(err.Error(), "arg slot 99 out of range") {
		t.Fatalf("want call-arg bounds error, got %v", err)
	}
}

// TestValidateRejectsNativeArgOutOfRange pins the same bounds check on
// OpNative.
func TestValidateRejectsNativeArgOutOfRange(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1)
	nat := mb.Native(-1, NativePrint, 0)
	mb.ReturnVoid()
	m.Code[nat].Args[0] = -3
	if _, err := b.Seal("Main", "main"); err == nil ||
		!strings.Contains(err.Error(), "arg slot -3 out of range") {
		t.Fatalf("want native-arg bounds error, got %v", err)
	}
}
