// Package escape is the SSA-based interprocedural escape and lifetime
// analysis over the abstract heap computed by the interproc points-to
// relation — the layer that turns the static Gcost bounds into a fully
// static low-utility verdict per allocation site.
//
// Per allocation site the analysis classifies an escape state on the
// three-point lattice
//
//	no-escape  <  arg-escape  <  global-escape
//
// via summary-based propagation over the call graph. Each reachable method
// contributes a summary of the objects it may return (tracked SSA-precisely
// through moves, phis, and callee summaries — the flat slot-level points-to
// sets are too coarse here because the front end reuses local slots
// aggressively); a heap-contents fixpoint then records, per abstract
// location, which objects may be stored into it, and the global-escape
// fixpoint flows reachability-from-statics through those heap edges. The
// points-to relation supplies the base-object resolution for every heap
// access and the call graph the dispatch targets.
//
// The soundness argument mirrors the dynamic definition used by Observer: a
// reference can only outlive its allocating activation by being returned
// from the allocating method or by being written to the heap (an object
// field, array element, or static), and both events are visible to the
// value-flow fixpoint. Every dynamically observed escape is therefore
// covered statically — the dynamic ⊆ static invariant the soundness harness
// checks on all workloads.
//
// On top of the lattice the analysis infers a lifetime region
// (confined-to-method / confined-to-request / long-lived) from the escape
// state plus the allocating frame's extent, refines the intra-method span
// from SSA dominance and last-use information (the loop forest decides
// whether a confined allocation stays inside its allocating loop iteration),
// detects copy-chain shapes (alloc → populate → copy-out → drop), and
// aggregates the frequency-weighted static cost/benefit bounds per site into
// the static analogue of the paper's dynamic Gcost ranking.
package escape

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"lowutil/internal/interproc"
	"lowutil/internal/ir"
	"lowutil/internal/ssa"
)

// State is the escape lattice value of an allocation site: the join over
// every abstract object the site contributes.
type State uint8

const (
	// NoEscape: no object of the site is ever written to the heap or
	// returned from its allocating method — it cannot be referenced once the
	// allocating frame pops.
	NoEscape State = iota
	// ArgEscape: some object of the site may be stored into another object
	// (or passed upward by a return from its allocating method) and can
	// therefore outlive the allocating frame, but is not reachable from a
	// static field.
	ArgEscape
	// GlobalEscape: some object of the site may become reachable from a
	// static field, directly or through a chain of heap edges.
	GlobalEscape
)

var stateNames = [...]string{NoEscape: "no-escape", ArgEscape: "arg-escape", GlobalEscape: "global-escape"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", uint8(s))
}

// Region is the inferred lifetime region of an allocation site.
type Region uint8

const (
	// ConfinedToMethod: the object dies with its allocating frame.
	ConfinedToMethod Region = iota
	// ConfinedToRequest: the object may outlive its allocating frame but
	// stays reachable only through frames of the current run (request).
	ConfinedToRequest
	// LongLived: the object may be reachable from a static field, or is
	// captured by the entry frame, and so can live for the rest of the run.
	LongLived
)

var regionNames = [...]string{
	ConfinedToMethod:  "confined-to-method",
	ConfinedToRequest: "confined-to-request",
	LongLived:         "long-lived",
}

func (r Region) String() string {
	if int(r) < len(regionNames) {
		return regionNames[r]
	}
	return fmt.Sprintf("region(%d)", uint8(r))
}

// SiteInfo is the per-allocation-site audit record.
type SiteInfo struct {
	// Site is the OpNew/OpNewArray instruction.
	Site   *ir.Instr
	State  State
	Region Region

	// CopyChain marks the alloc → populate → copy-out → drop shape: the
	// site is populated, values loaded out of it flow into a store whose
	// base is a different structure (or a static), and the site itself does
	// not escape globally — the container is a transient copy vehicle.
	CopyChain bool
	// InLoop marks a no-escape allocation inside a loop whose every
	// transitive SSA use stays within the allocating loop's body: one object
	// per iteration where one reused object would do.
	InLoop bool
	// LastUse is the largest pc in the allocating method at which the
	// allocated reference is still used (transitively through moves and
	// phis), or -1 when the reference is never used.
	LastUse int

	// Stores/Loads count the may-alias heap accesses over the site's
	// abstract locations; WCost/WBenefit aggregate the frequency-weighted
	// static bounds; Consumed reports that every location of the site has a
	// statically witnessed non-zero benefit — the whole structure is, by
	// Definition 6, never low-utility.
	Stores   int
	Loads    int
	WCost    float64
	WBenefit float64
	Consumed bool
	// Freq is the static execution-frequency estimate of the allocation
	// instruction itself.
	Freq float64

	// score sums the per-field cost/(1+benefit) ratios; nLocs/nConsumed
	// count the site's distinct fields and the consumed ones among them.
	score            float64
	nLocs, nConsumed int
}

// Score is the static low-utility ranking score of the site: the sum over
// the site's fields of the per-field cost/(1+benefit) ratio, with consumed
// fields contributing an exact 0 — the limit of cost/(1+benefit) as the
// witnessed benefit grows without bound, so a field that feeds control
// flow or output never raises its site's low-utility score.
func (s *SiteInfo) Score() float64 { return s.score }

// WriteOnly reports a site whose locations are stored but never loaded —
// the static shadow of a dynamically zero-benefit structure.
func (s *SiteInfo) WriteOnly() bool { return s.Stores > 0 && s.Loads == 0 }

// Result is the outcome of the escape/lifetime analysis and the static
// audit ranking built on it.
type Result struct {
	An *interproc.Analysis
	// Sites lists every reachable allocation site ascending by its dense
	// allocation-site index.
	Sites []SiteInfo

	bySite map[int]int // AllocSite → index into Sites
	ssaMI  map[*ir.Method]*ssa.MethodInfo
	az     *analyzer
}

// Analyze runs the escape/lifetime analysis over an already computed
// interprocedural analysis.
func Analyze(an *interproc.Analysis) *Result {
	r, err := AnalyzeContext(context.Background(), an)
	if err != nil {
		panic(err) // unreachable: the background context never cancels
	}
	return r
}

// AnalyzeContext is Analyze with a context polled inside every fixpoint
// iteration and between phases; on cancellation the partial result is
// discarded and the context error returned.
func AnalyzeContext(ctx context.Context, an *interproc.Analysis) (*Result, error) {
	r := &Result{
		An:     an,
		bySite: make(map[int]int),
		ssaMI:  make(map[*ir.Method]*ssa.MethodInfo),
	}

	// Enumerate reachable allocation sites, ascending by site index.
	var allocs []*ir.Instr
	for _, m := range an.CG.Methods() {
		for pc := range m.Code {
			if in := &m.Code[pc]; in.IsAlloc() {
				allocs = append(allocs, in)
			}
		}
	}
	sort.Slice(allocs, func(i, j int) bool { return allocs[i].AllocSite < allocs[j].AllocSite })
	for _, in := range allocs {
		r.bySite[in.AllocSite] = len(r.Sites)
		r.Sites = append(r.Sites, SiteInfo{Site: in, LastUse: -1})
	}

	a := newAnalyzer(an, r)
	r.az = a
	if err := a.solveValueFlow(ctx); err != nil {
		return nil, err
	}
	global, stored, retOwned, err := a.escapeStates(ctx)
	if err != nil {
		return nil, err
	}

	// Join object states into site states.
	for o := 0; o < an.PT.NumObjects(); o++ {
		idx, ok := r.bySite[an.PT.Objects[o].Site.AllocSite]
		if !ok {
			continue
		}
		st := NoEscape
		switch {
		case global[o]:
			st = GlobalEscape
		case stored[o] || retOwned[o]:
			st = ArgEscape
		}
		if st > r.Sites[idx].State {
			r.Sites[idx].State = st
		}
	}

	// Aggregate frequency-weighted heap traffic per (site, field) with
	// SSA-precise base attribution: each store or load charges only the
	// sites its resolved base set actually names (operandObjs for store
	// bases, the fixpoint's persistent loadBases for loads) — not the
	// slot-level may-alias closure the coarse bounds use, which smears
	// near-identical slices over every site. Weights are the loop-nest
	// execution-frequency estimates, so a store in a hot loop outweighs
	// straight-line setup code exactly as in the dynamic cost.
	type fieldAgg struct {
		stores, loads int
		cost, benefit float64
		consumed      bool
	}
	fields := make(map[[2]int]*fieldAgg) // (AllocSite, Field) → aggregate
	fieldOf := func(site, field int) *fieldAgg {
		k := [2]int{site, field}
		fa := fields[k]
		if fa == nil {
			fa = &fieldAgg{}
			fields[k] = fa
		}
		return fa
	}
	cons, err := r.solveConsumption(ctx)
	if err != nil {
		return nil, err
	}
	for _, m := range an.CG.Methods() {
		f := r.ssainfo(m).F
		for pc := range m.Code {
			in := &m.Code[pc]
			var bases objSet
			field := interproc.ElemField
			isStore := false
			switch in.Op {
			case ir.OpStoreField:
				bases, isStore = a.operandObjs(m, f, pc, 0), true
				field = in.Field.ID
			case ir.OpAStore:
				bases, isStore = a.operandObjs(m, f, pc, 0), true
			case ir.OpLoadField:
				bases = a.loadBases[in]
				field = in.Field.ID
			case ir.OpALoad:
				bases = a.loadBases[in]
			default:
				continue
			}
			w := an.Freq[in.ID]
			consumed := false
			if !isStore {
				// A load whose value may reach a predicate or native
				// consumer is a statically witnessed non-zero benefit for
				// every field the load resolves to.
				if dv := f.DefOf[pc]; dv != ssa.None {
					consumed = cons.valConsumed(m, f, dv, make([]bool, f.NumVals()))
				}
			}
			seen := make(map[int]bool, len(bases))
			for o := range bases {
				site := an.PT.Objects[o].Site.AllocSite
				if seen[site] {
					continue // one instruction charges a site once
				}
				seen[site] = true
				if _, ok := r.bySite[site]; !ok {
					continue
				}
				fa := fieldOf(site, field)
				if isStore {
					fa.stores++
					fa.cost += w
				} else {
					fa.loads++
					fa.benefit += w
					fa.consumed = fa.consumed || consumed
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Fold the per-field aggregates into the per-site audit record. The
	// score sums per-field cost/(1+benefit) ratios over the stored fields
	// (mirroring the dynamic ranking, which only scores stored locations),
	// with consumed fields contributing an exact 0. The fold runs in sorted
	// key order: float addition is not associative, so folding in map order
	// would let tied sites' scores drift by an ULP between runs and flip
	// the ranking.
	keys := make([][2]int, 0, len(fields))
	for k := range fields {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0] < keys[j][0] || (keys[i][0] == keys[j][0] && keys[i][1] < keys[j][1])
	})
	for _, k := range keys {
		fa := fields[k]
		si := &r.Sites[r.bySite[k[0]]]
		si.Stores += fa.stores
		si.Loads += fa.loads
		si.WCost += fa.cost
		si.WBenefit += fa.benefit
		if fa.stores == 0 {
			continue
		}
		si.nLocs++
		if fa.consumed {
			si.nConsumed++
		} else {
			si.score += fa.cost / (1 + fa.benefit)
		}
	}
	for i := range r.Sites {
		si := &r.Sites[i]
		si.Consumed = si.nLocs > 0 && si.nConsumed == si.nLocs
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Lifetime regions, SSA span facts, and copy-chain shapes.
	siteLoads := r.indexSiteLoads()
	for i := range r.Sites {
		si := &r.Sites[i]
		si.Freq = an.Freq[si.Site.ID]
		si.Region = r.region(si)
		r.ssaFacts(si)
		si.CopyChain = si.State != GlobalEscape && si.Stores > 0 &&
			r.copiedOut(si, siteLoads[si.Site.AllocSite])
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// objSet is a mutable set of abstract objects.
type objSet map[interproc.ObjID]bool

// heapLoc is one abstract heap location the value-flow fixpoint tracks.
type heapLoc struct {
	obj   interproc.ObjID
	field int
}

// analyzer carries the value-flow fixpoint state: per-method return
// summaries, per-location heap contents, and per-static-slot contents, all
// tracked through SSA so the front end's local-slot reuse does not bleed
// unrelated objects into the escape facts.
type analyzer struct {
	an *interproc.Analysis
	r  *Result

	// siteObjs maps an allocation instruction to its abstract objects (one
	// per receiver context under the object-sensitive heap).
	siteObjs map[*ir.Instr][]interproc.ObjID
	// rets[methodID] is the method's return summary: the objects it may
	// return, through any chain of moves, phis, loads, and callee returns.
	rets map[int]objSet
	// locs[(obj, field)] holds the objects that may be stored into the
	// location; statics[slot] likewise for static fields.
	locs    map[heapLoc]objSet
	statics map[int]objSet
	// loadBases[load] is the persistent base-object set of a heap load,
	// grown monotonically by the fixpoint. Loads read it instead of
	// re-resolving their base recursively, which keeps cyclic traversals
	// (x = x.next) convergent and sound.
	loadBases map[*ir.Instr]objSet
	// params[methodID][slot] binds formals to the union of every call
	// site's SSA-resolved actuals. The slot-level VarPT sets are not used
	// here: a caller that reuses one local slot for unrelated values would
	// bleed those objects into the callee's formals.
	params map[int][]objSet
}

func newAnalyzer(an *interproc.Analysis, r *Result) *analyzer {
	a := &analyzer{
		an:        an,
		r:         r,
		siteObjs:  make(map[*ir.Instr][]interproc.ObjID),
		rets:      make(map[int]objSet),
		locs:      make(map[heapLoc]objSet),
		statics:   make(map[int]objSet),
		loadBases: make(map[*ir.Instr]objSet),
		params:    make(map[int][]objSet),
	}
	for o := range an.PT.Objects {
		site := an.PT.Objects[o].Site
		a.siteObjs[site] = append(a.siteObjs[site], interproc.ObjID(o))
	}
	return a
}

func (a *analyzer) set(m map[int]objSet, k int) objSet {
	s := m[k]
	if s == nil {
		s = make(objSet)
		m[k] = s
	}
	return s
}

// param returns the mutable formal-binding set of t's parameter slot i.
func (a *analyzer) param(t *ir.Method, i int) objSet {
	ps := a.params[t.ID]
	if ps == nil {
		ps = make([]objSet, t.Params)
		a.params[t.ID] = ps
	}
	if i >= len(ps) {
		return nil
	}
	if ps[i] == nil {
		ps[i] = make(objSet)
	}
	return ps[i]
}

func (a *analyzer) loc(o interproc.ObjID, field int) objSet {
	k := heapLoc{o, field}
	s := a.locs[k]
	if s == nil {
		s = make(objSet)
		a.locs[k] = s
	}
	return s
}

func addAll(dst objSet, src objSet) bool {
	changed := false
	for o := range src {
		if !dst[o] {
			dst[o] = true
			changed = true
		}
	}
	return changed
}

// valueObjs accumulates into out the abstract objects SSA value v may hold:
// allocations resolve to their site's objects, moves and phis are followed,
// loads read the heap-contents fixpoint over the resolved base objects,
// call results read the callee return summaries, and parameters read the
// call-site-bound formal sets. Everything else (arithmetic, constants,
// natives) is integer-valued and contributes nothing.
func (a *analyzer) valueObjs(m *ir.Method, f *ssa.Func, v ssa.ValID, seen []bool, out objSet) {
	if v == ssa.None || seen[v] {
		return
	}
	seen[v] = true
	val := &f.Vals[v]
	switch val.Kind {
	case ssa.VParam:
		if ps := a.params[m.ID]; val.Slot < len(ps) {
			for o := range ps[val.Slot] {
				out[o] = true
			}
		}
	case ssa.VPhi:
		for _, arg := range val.Args {
			a.valueObjs(m, f, arg, seen, out)
		}
	case ssa.VInstr:
		in := &m.Code[val.PC]
		switch in.Op {
		case ir.OpNew, ir.OpNewArray:
			for _, o := range a.siteObjs[in] {
				out[o] = true
			}
		case ir.OpMove:
			if ops := f.Operands[val.PC]; len(ops) > 0 {
				a.valueObjs(m, f, ops[0], seen, out)
			}
		case ir.OpLoadField:
			for b := range a.loadBases[in] {
				for o := range a.locs[heapLoc{b, in.Field.ID}] {
					out[o] = true
				}
			}
		case ir.OpALoad:
			for b := range a.loadBases[in] {
				for o := range a.locs[heapLoc{b, interproc.ElemField}] {
					out[o] = true
				}
			}
		case ir.OpLoadStatic:
			for o := range a.statics[in.Static.Slot] {
				out[o] = true
			}
		case ir.OpCall:
			for _, t := range a.an.CG.Targets(in) {
				for o := range a.rets[t.ID] {
					out[o] = true
				}
			}
		}
	}
}

// operandObjs resolves the objects operand opIdx of the instruction at pc
// may hold. Unreachable instructions have no SSA operands and resolve to
// nothing (they cannot execute).
func (a *analyzer) operandObjs(m *ir.Method, f *ssa.Func, pc, opIdx int) objSet {
	ops := f.Operands[pc]
	if opIdx >= len(ops) {
		return nil
	}
	out := make(objSet)
	a.valueObjs(m, f, ops[opIdx], make([]bool, f.NumVals()), out)
	return out
}

// solveValueFlow saturates the mutually recursive return summaries, heap
// contents, and static contents, polling ctx once per outer iteration.
func (a *analyzer) solveValueFlow(ctx context.Context) error {
	for changed := true; changed; {
		changed = false
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, m := range a.an.CG.Methods() {
			f := a.r.ssainfo(m).F
			for pc := range m.Code {
				in := &m.Code[pc]
				switch in.Op {
				case ir.OpLoadField, ir.OpALoad:
					bases := a.operandObjs(m, f, pc, 0)
					if len(bases) == 0 {
						continue
					}
					dst := a.loadBases[in]
					if dst == nil {
						dst = make(objSet)
						a.loadBases[in] = dst
					}
					if addAll(dst, bases) {
						changed = true
					}
				case ir.OpStoreField:
					vals := a.operandObjs(m, f, pc, 1)
					if len(vals) == 0 {
						continue
					}
					for b := range a.operandObjs(m, f, pc, 0) {
						if addAll(a.loc(b, in.Field.ID), vals) {
							changed = true
						}
					}
				case ir.OpAStore:
					vals := a.operandObjs(m, f, pc, 2)
					if len(vals) == 0 {
						continue
					}
					for b := range a.operandObjs(m, f, pc, 0) {
						if addAll(a.loc(b, interproc.ElemField), vals) {
							changed = true
						}
					}
				case ir.OpStoreStatic:
					vals := a.operandObjs(m, f, pc, 0)
					if len(vals) == 0 {
						continue
					}
					if addAll(a.set(a.statics, in.Static.Slot), vals) {
						changed = true
					}
				case ir.OpReturn:
					if !in.HasA {
						continue
					}
					vals := a.operandObjs(m, f, pc, 0)
					if len(vals) == 0 {
						continue
					}
					if addAll(a.set(a.rets, m.ID), vals) {
						changed = true
					}
				case ir.OpCall:
					nops := len(f.Operands[pc])
					for i := 0; i < nops; i++ {
						vals := a.operandObjs(m, f, pc, i)
						if len(vals) == 0 {
							continue
						}
						for _, t := range a.an.CG.Targets(in) {
							if dst := a.param(t, i); dst != nil && addAll(dst, vals) {
								changed = true
							}
						}
					}
				}
			}
		}
	}
	return nil
}

// escapeStates derives the per-object lattice facts from the saturated
// value flow: stored objects (written to any heap location or static),
// globally reachable objects (the reachability-from-statics fixpoint over
// the heap edges), and objects returned out of their own allocating method.
func (a *analyzer) escapeStates(ctx context.Context) (global, stored, retOwned []bool, err error) {
	n := a.an.PT.NumObjects()
	global = make([]bool, n)
	stored = make([]bool, n)
	retOwned = make([]bool, n)
	for _, set := range a.statics {
		for o := range set {
			global[o] = true
			stored[o] = true
		}
	}
	for _, set := range a.locs {
		for o := range set {
			stored[o] = true
		}
	}
	for changed := true; changed; {
		changed = false
		if err := ctx.Err(); err != nil {
			return nil, nil, nil, err
		}
		for l, set := range a.locs {
			if !global[l.obj] {
				continue
			}
			for o := range set {
				if !global[o] {
					global[o] = true
					changed = true
				}
			}
		}
	}
	for _, m := range a.an.CG.Methods() {
		for o := range a.rets[m.ID] {
			if a.an.PT.Objects[o].Site.Method == m {
				retOwned[o] = true
			}
		}
	}
	return global, stored, retOwned, nil
}

// consumption holds the interprocedural value-consumption summaries: per
// method, which parameter slots flow into a consumer (a predicate or a
// native call), and whether the method's return value is consumed by some
// caller. Like the rest of the analysis the flow is SSA-precise — the
// slicer's slot-level forward slices smear consumption witnesses across
// unrelated values whenever the front end reuses a local slot.
type consumption struct {
	r         *Result
	paramCons map[*ir.Method][]bool
	retCons   map[*ir.Method]bool
}

// solveConsumption saturates the summaries: both maps only grow, and
// valConsumed is monotone in them, so iterating to a fixed point yields
// the least solution.
func (r *Result) solveConsumption(ctx context.Context) (*consumption, error) {
	c := &consumption{
		r:         r,
		paramCons: make(map[*ir.Method][]bool),
		retCons:   make(map[*ir.Method]bool),
	}
	methods := r.An.CG.Methods()
	for _, m := range methods {
		c.paramCons[m] = make([]bool, m.Params)
	}
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			f := r.ssainfo(m).F
			for pc := range m.Code {
				in := &m.Code[pc]
				if in.Op != ir.OpCall {
					continue
				}
				dv := f.DefOf[pc]
				if dv == ssa.None || !c.valConsumed(m, f, dv, make([]bool, f.NumVals())) {
					continue
				}
				for _, t := range r.An.CG.Targets(in) {
					if !c.retCons[t] {
						c.retCons[t] = true
						changed = true
					}
				}
			}
			pc := c.paramCons[m]
			for v := 0; v < f.NumVals(); v++ {
				val := &f.Vals[v]
				if val.Kind != ssa.VParam || val.Slot >= len(pc) || pc[val.Slot] {
					continue
				}
				if c.valConsumed(m, f, ssa.ValID(v), make([]bool, f.NumVals())) {
					pc[val.Slot] = true
					changed = true
				}
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// valConsumed walks v's transitive SSA uses — through moves, phis,
// arithmetic, calls (into consuming parameter slots), and returns (into
// consuming callers) — and reports whether any reaches a predicate or a
// native consumer. Heap writes stop the walk, mirroring the dynamic
// benefit traversal's stopping rule.
func (c *consumption) valConsumed(m *ir.Method, f *ssa.Func, v ssa.ValID, visited []bool) bool {
	if visited[v] {
		return false
	}
	visited[v] = true
	for _, u := range f.Uses(v) {
		if u.IsPhi() {
			if c.valConsumed(m, f, u.Phi, visited) {
				return true
			}
			continue
		}
		in := &m.Code[u.PC]
		switch in.Op {
		case ir.OpIf, ir.OpNative:
			return true
		case ir.OpCall:
			for _, t := range c.r.An.CG.Targets(in) {
				if pc := c.paramCons[t]; u.OpIdx < len(pc) && pc[u.OpIdx] {
					return true
				}
			}
		case ir.OpReturn:
			if c.retCons[m] {
				return true
			}
		case ir.OpMove, ir.OpBin, ir.OpNeg, ir.OpNot, ir.OpArrayLen:
			if dv := f.DefOf[u.PC]; dv != ssa.None && c.valConsumed(m, f, dv, visited) {
				return true
			}
		}
	}
	return false
}

// region derives the lifetime region from the escape state and the extent
// of the allocating frame: an arg-escaping object allocated in the entry
// method can only be captured by structures rooted in the entry frame,
// which lives for the whole run.
func (r *Result) region(si *SiteInfo) Region {
	switch si.State {
	case GlobalEscape:
		return LongLived
	case ArgEscape:
		if si.Site.Method == r.An.Prog.Main {
			return LongLived
		}
		return ConfinedToRequest
	default:
		return ConfinedToMethod
	}
}

// ssainfo lazily builds the SSA overlay (with SCCP and the loop forest) for
// one method.
func (r *Result) ssainfo(m *ir.Method) *ssa.MethodInfo {
	if mi, ok := r.ssaMI[m]; ok {
		return mi
	}
	mi := ssa.AnalyzeMethod(m)
	r.ssaMI[m] = mi
	return mi
}

// ssaFacts computes the SSA span of the allocated reference inside its
// allocating method: the last transitive use (through moves and phis) and,
// for a no-escape site allocated inside a loop, whether every use stays in
// the allocating loop's body — the iteration-confinement fact behind the
// confined-alloc-in-loop lint.
func (r *Result) ssaFacts(si *SiteInfo) {
	m := si.Site.Method
	mi := r.ssainfo(m)
	f := mi.F
	def := f.DefOf[si.Site.PC]
	if def == ssa.None {
		return
	}
	allocBlock := f.CFG.BlockOf[si.Site.PC]
	li := mi.Forest.LoopOf[allocBlock]
	inLoopBody := func(b int) bool {
		if li < 0 {
			return false
		}
		for _, lb := range mi.Forest.Loops[li].Blocks {
			if lb == b {
				return true
			}
		}
		return false
	}

	confined := li >= 0
	lastUse := -1
	visited := make([]bool, f.NumVals())
	var walk func(v ssa.ValID)
	walk = func(v ssa.ValID) {
		if visited[v] {
			return
		}
		visited[v] = true
		for _, u := range f.Uses(v) {
			if u.IsPhi() {
				if !inLoopBody(f.Vals[u.Phi].Block) {
					confined = false
				}
				walk(u.Phi)
				continue
			}
			if u.PC > lastUse {
				lastUse = u.PC
			}
			if !inLoopBody(f.CFG.BlockOf[u.PC]) {
				confined = false
			}
			if m.Code[u.PC].Op == ir.OpMove {
				if d := f.DefOf[u.PC]; d != ssa.None {
					walk(d)
				}
			}
		}
	}
	walk(def)
	si.LastUse = lastUse
	si.InLoop = si.State == NoEscape && li >= 0 && confined
}

// indexSiteLoads maps each allocation site to the heap loads whose base may
// alias it, using the SSA-resolved base sets.
func (r *Result) indexSiteLoads() map[int][]*ir.Instr {
	out := make(map[int][]*ir.Instr)
	for _, m := range r.An.CG.Methods() {
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Op != ir.OpLoadField && in.Op != ir.OpALoad {
				continue
			}
			seen := make(map[int]bool, 1)
			for o := range r.az.loadBases[in] {
				site := r.An.PT.Objects[o].Site.AllocSite
				if !seen[site] {
					seen[site] = true
					out[site] = append(out[site], in)
				}
			}
		}
	}
	return out
}

// copiedOut reports whether any value loaded out of the site flows, through
// SSA moves, phis, and arithmetic within the loading method, into the value
// operand of a store whose base is a different structure (or a static
// field) — the copy-out leg of the copy-chain shape.
func (r *Result) copiedOut(si *SiteInfo, loads []*ir.Instr) bool {
	for _, ld := range loads {
		m := ld.Method
		f := r.ssainfo(m).F
		def := f.DefOf[ld.PC]
		if def == ssa.None {
			continue
		}
		visited := make([]bool, f.NumVals())
		if r.flowsToForeignStore(si, m, f, def, visited) {
			return true
		}
	}
	return false
}

func (r *Result) flowsToForeignStore(si *SiteInfo, m *ir.Method, f *ssa.Func, v ssa.ValID, visited []bool) bool {
	if visited[v] {
		return false
	}
	visited[v] = true
	for _, u := range f.Uses(v) {
		if u.IsPhi() {
			if r.flowsToForeignStore(si, m, f, u.Phi, visited) {
				return true
			}
			continue
		}
		if u.Base {
			continue
		}
		in := &m.Code[u.PC]
		switch in.Op {
		case ir.OpMove, ir.OpBin, ir.OpNeg, ir.OpNot:
			// The loaded value, possibly transformed, keeps flowing.
			if d := f.DefOf[u.PC]; d != ssa.None && r.flowsToForeignStore(si, m, f, d, visited) {
				return true
			}
		case ir.OpStoreStatic:
			return true
		case ir.OpStoreField, ir.OpAStore:
			// Only the stored value counts (the array index of OpAStore is
			// operand 1; the value is operand 2).
			if in.Op == ir.OpAStore && u.OpIdx != 2 {
				continue
			}
			for o := range r.az.operandObjs(m, f, u.PC, 0) {
				if r.An.PT.Objects[o].Site.AllocSite != si.Site.AllocSite {
					return true
				}
			}
		}
	}
	return false
}

// Site returns the audit record of one allocation site, or nil when the
// site is statically unreachable.
func (r *Result) Site(allocSite int) *SiteInfo {
	idx, ok := r.bySite[allocSite]
	if !ok {
		return nil
	}
	return &r.Sites[idx]
}

// Ranked returns the sites in audit order: write-only sites first, then by
// score descending, ties broken by allocation-site index so the order is
// deterministic.
func (r *Result) Ranked() []*SiteInfo {
	out := make([]*SiteInfo, len(r.Sites))
	for i := range r.Sites {
		out[i] = &r.Sites[i]
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.WriteOnly() != b.WriteOnly() {
			return a.WriteOnly()
		}
		if ra, rb := a.Score(), b.Score(); ra != rb {
			return ra > rb
		}
		return a.Site.AllocSite < b.Site.AllocSite
	})
	return out
}

// SiteName renders an allocation site the way the slice report names it.
func (r *Result) SiteName(si *SiteInfo) string {
	in := si.Site
	return fmt.Sprintf("site#%d(%s@%s:%d)", in.AllocSite, allocTypeName(in), in.Method.QualifiedName(), in.PC)
}

func allocTypeName(site *ir.Instr) string {
	if site.Op == ir.OpNew {
		return site.Class.Name
	}
	return site.Elem.String() + "[]"
}

// Report renders the deterministic audit report: lattice and lifetime
// histograms, shape counts, and the top sites by static cost/benefit.
func (r *Result) Report(top int) string {
	var b strings.Builder
	objctx := "off"
	if r.An.Cfg.ObjCtx {
		objctx = "on"
	}
	fmt.Fprintf(&b, "static audit (mode=%s, objctx=%s)\n", r.An.CG.Mode, objctx)

	var states [3]int
	var regions [3]int
	chains, looped := 0, 0
	for i := range r.Sites {
		si := &r.Sites[i]
		states[si.State]++
		regions[si.Region]++
		if si.CopyChain {
			chains++
		}
		if si.InLoop {
			looped++
		}
	}
	fmt.Fprintf(&b, "  %d reachable allocation sites: %d no-escape, %d arg-escape, %d global-escape\n",
		len(r.Sites), states[NoEscape], states[ArgEscape], states[GlobalEscape])
	fmt.Fprintf(&b, "  lifetime: %d confined-to-method, %d confined-to-request, %d long-lived\n",
		regions[ConfinedToMethod], regions[ConfinedToRequest], regions[LongLived])
	fmt.Fprintf(&b, "  shapes: %d copy-chain, %d loop-confined\n", chains, looped)

	ranked := r.Ranked()
	if top > len(ranked) {
		top = len(ranked)
	}
	fmt.Fprintf(&b, "  top %d sites by static cost/benefit:\n", top)
	for i := 0; i < top; i++ {
		si := ranked[i]
		tags := ""
		if si.WriteOnly() {
			tags += " write-only"
		}
		if si.Consumed {
			tags += " consumed"
		}
		if si.CopyChain {
			tags += " copy-chain"
		}
		if si.InLoop {
			tags += " loop-confined"
		}
		fmt.Fprintf(&b, "  %3d. %-52s %-13s %-19s wcost=%-9.4g wbenefit=%-9.4g stores=%d loads=%d%s\n",
			i+1, r.SiteName(si), si.State, si.Region, si.WCost, si.WBenefit, si.Stores, si.Loads, tags)
	}
	return b.String()
}
