#!/bin/sh
# Long-soak differential fuzzing (see DESIGN.md §14): generates random MJ
# programs and checks every engine-pair invariant on each, shrinking any
# failure to a minimal reproducer. Seeded and time-boxed, so a soak is
# reproducible: rerunning with the same SEED replays the same programs.
#
#   SEED=7 MINUTES=30 sh scripts/fuzz.sh
#
# SEED     root seed (default 1); program i derives its own seed from it.
# MINUTES  wall-clock budget (default 5).
# OUT      JSON summary path (default FUZZ_SUMMARY.json, gitignored).
#
# Exit status is non-zero if any invariant was violated; the summary's
# failures[] then carries the original and shrunk reproducer sources.
set -e
cd "$(dirname "$0")/.."

SEED="${SEED:-1}"
MINUTES="${MINUTES:-5}"
OUT="${OUT:-FUZZ_SUMMARY.json}"

status=0
go run ./cmd/lowutil fuzz -seed "$SEED" -n 0 -minutes "$MINUTES" -v -json >"$OUT" || status=$?
echo "fuzz: summary written to $OUT"
exit "$status"
