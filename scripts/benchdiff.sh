#!/bin/sh
# Compares the newest BENCH_<idx>.json against the previous one and fails
# on a >10% ns/op regression in the gated series: the frozen cost-benefit
# analysis (BenchmarkCostBenefitAnalysis/frozen) and every profiled
# overhead series (BenchmarkOverhead/<workload>/profiled_s16). Other
# benchmarks are reported but never gate — this VM's noise makes a blanket
# gate useless, while the gated series are the ones this repo's perf work
# has promised not to give back.
#
# Usage:
#   sh scripts/benchdiff.sh                  newest vs previous, gate on regressions
#   sh scripts/benchdiff.sh -report          same comparison, never fails (make check)
#   sh scripts/benchdiff.sh OLD.json NEW.json
set -e
cd "$(dirname "$0")/.."

REPORT=0
if [ "$1" = "-report" ]; then
    REPORT=1
    shift
fi

if [ $# -eq 2 ]; then
    OLD="$1"
    NEW="$2"
else
    # Newest two by numeric index.
    set -- $(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n)
    if [ $# -lt 2 ]; then
        echo "benchdiff: need at least two BENCH_*.json files (have $#)" >&2
        [ "$REPORT" = 1 ] && exit 0
        exit 1
    fi
    while [ $# -gt 2 ]; do shift; done
    OLD="$1"
    NEW="$2"
fi

echo "benchdiff: $OLD -> $NEW"

# bench.sh writes one {"name": ..., "ns_per_op": ...} object per line, so a
# line-oriented awk over both files (old first) is enough.
if awk '
    {
        if (match($0, /"name": "[^"]*"/) == 0) next
        name = substr($0, RSTART + 9, RLENGTH - 10)
        if (match($0, /"ns_per_op": [0-9.]+/) == 0) next
        ns = substr($0, RSTART + 13, RLENGTH - 13) + 0
        if (FNR == NR) { old[name] = ns; next }
        if (!(name in old)) next
        ratio = ns / old[name]
        gated = (name ~ /BenchmarkCostBenefitAnalysis\/frozen/ || name ~ /profiled_s16/)
        mark = gated ? " [gated]" : ""
        printf "  %-60s %12.0f -> %12.0f  (%+.1f%%)%s\n", name, old[name], ns, (ratio - 1) * 100, mark
        if (gated && ratio > 1.10) {
            printf "  REGRESSION: %s is %.1f%% slower (gate: 10%%)\n", name, (ratio - 1) * 100
            bad++
        }
    }
    END { exit bad > 0 ? 1 : 0 }
' "$OLD" "$NEW"; then
    echo "benchdiff: OK"
else
    if [ "$REPORT" = 1 ]; then
        echo "benchdiff: regressions found (report-only mode, not failing)" >&2
        exit 0
    fi
    echo "benchdiff: FAILED (>10% regression in a gated series)" >&2
    exit 1
fi
