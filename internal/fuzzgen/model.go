package fuzzgen

import (
	"fmt"
	"strings"
)

// The program model is deliberately shallow: classes, fields, and methods
// are structured, while statements carry rendered MJ text for flat
// statements and child statement lists for blocks. Expressions never need
// to be revisited after generation, so they are rendered eagerly; the
// shrinker works at statement, method, and class granularity.

// Stmt is one statement of a generated method body. Exactly one of Flat or
// Head is set: Flat is a complete statement line ("x = x + 1;"), Head is a
// block opener ("for (int i = 0; i < 4; i = i + 1)") whose Body (and, for
// if/else, Else) renders inside braces.
type Stmt struct {
	Flat string
	Head string
	Body []*Stmt
	Else []*Stmt
	// Pinned statements are skipped by the shrinker: final returns,
	// while-loop decrements, and anything else whose deletion can only
	// produce a non-compiling or non-terminating program.
	Pinned bool
}

// Field is a field or parameter declaration.
type Field struct {
	Name string
	Type string // rendered MJ type: "int", "boolean", "Base", "int[]", ...
}

// Method is one generated method.
type Method struct {
	Name   string
	Static bool
	Ret    string // "void", "int", "boolean", or a class name
	Params []Field
	Body   []*Stmt
	// Index is the method's position in the global generation order; a
	// body may only call methods with a strictly larger index (recursion
	// excepted, which decrements an explicit depth parameter), so the
	// call graph terminates by construction.
	Index int
}

// Class is one generated class.
type Class struct {
	Name    string
	Extends string
	Fields  []Field
	Methods []*Method
}

// Prog is a whole generated program plus the seed that produced it.
type Prog struct {
	Seed    uint64
	Classes []*Class
}

// Render emits the program as MJ source.
func (p *Prog) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// fuzzgen seed=%d\n", p.Seed)
	for _, c := range p.Classes {
		if c == nil {
			continue
		}
		b.WriteString("class ")
		b.WriteString(c.Name)
		if c.Extends != "" {
			b.WriteString(" extends ")
			b.WriteString(c.Extends)
		}
		b.WriteString(" {\n")
		for _, f := range c.Fields {
			fmt.Fprintf(&b, "  %s %s;\n", f.Type, f.Name)
		}
		for _, m := range c.Methods {
			if m == nil {
				continue
			}
			b.WriteString("  ")
			if m.Static {
				b.WriteString("static ")
			}
			fmt.Fprintf(&b, "%s %s(", m.Ret, m.Name)
			for i, p := range m.Params {
				if i > 0 {
					b.WriteString(", ")
				}
				fmt.Fprintf(&b, "%s %s", p.Type, p.Name)
			}
			b.WriteString(") {\n")
			renderStmts(&b, m.Body, 2)
			b.WriteString("  }\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func renderStmts(b *strings.Builder, stmts []*Stmt, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, s := range stmts {
		if s == nil {
			continue
		}
		if s.Head == "" {
			b.WriteString(indent)
			b.WriteString(s.Flat)
			b.WriteByte('\n')
			continue
		}
		b.WriteString(indent)
		b.WriteString(s.Head)
		b.WriteString(" {\n")
		renderStmts(b, s.Body, depth+1)
		b.WriteString(indent)
		b.WriteString("}")
		if s.Else != nil {
			b.WriteString(" else {\n")
			renderStmts(b, s.Else, depth+1)
			b.WriteString(indent)
			b.WriteString("}")
		}
		b.WriteByte('\n')
	}
}

// clone deep-copies the program so the shrinker can mutate candidates
// freely.
func (p *Prog) clone() *Prog {
	q := &Prog{Seed: p.Seed, Classes: make([]*Class, len(p.Classes))}
	for i, c := range p.Classes {
		if c == nil {
			continue
		}
		cc := &Class{Name: c.Name, Extends: c.Extends, Fields: append([]Field(nil), c.Fields...)}
		cc.Methods = make([]*Method, len(c.Methods))
		for j, m := range c.Methods {
			if m == nil {
				continue
			}
			mm := &Method{Name: m.Name, Static: m.Static, Ret: m.Ret,
				Params: append([]Field(nil), m.Params...), Index: m.Index}
			mm.Body = cloneStmts(m.Body)
			cc.Methods[j] = mm
		}
		q.Classes[i] = cc
	}
	return q
}

func cloneStmts(stmts []*Stmt) []*Stmt {
	out := make([]*Stmt, len(stmts))
	for i, s := range stmts {
		if s == nil {
			continue
		}
		out[i] = &Stmt{Flat: s.Flat, Head: s.Head, Pinned: s.Pinned,
			Body: cloneStmts(s.Body)}
		if s.Else != nil {
			out[i].Else = cloneStmts(s.Else)
		}
	}
	return out
}
