package depgraph

import (
	"testing"
	"testing/quick"

	"lowutil/internal/ir"
)

// mkProg builds a linear program with n no-op instructions so tests can
// fabricate nodes.
func mkProg(t testing.TB, n int) *ir.Program {
	t.Helper()
	b := ir.NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	for i := 0; i < n; i++ {
		mb.Const(0, int64(i))
	}
	mb.ReturnVoid()
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestNodeInterningAndFreq(t *testing.T) {
	prog := mkProg(t, 3)
	g := New(prog)
	n1 := g.Touch(prog.Instrs[0], 5)
	n2 := g.Touch(prog.Instrs[0], 5)
	n3 := g.Touch(prog.Instrs[0], 6)
	if n1 != n2 {
		t.Error("same (instr, d) must intern to one node")
	}
	if n1 == n3 {
		t.Error("different d must give different nodes")
	}
	if n1.Freq() != 2 || n3.Freq() != 1 {
		t.Errorf("freqs = %d, %d; want 2, 1", n1.Freq(), n3.Freq())
	}
	if g.NumNodes() != 2 {
		t.Errorf("NumNodes = %d, want 2", g.NumNodes())
	}
	if got := g.Lookup(prog.Instrs[0], 5); got != n1 {
		t.Error("Lookup failed")
	}
	if got := g.Lookup(prog.Instrs[1], 5); got != nil {
		t.Error("Lookup invented a node")
	}
}

func TestEdgeDedup(t *testing.T) {
	prog := mkProg(t, 2)
	g := New(prog)
	a := g.Touch(prog.Instrs[0], 0)
	b := g.Touch(prog.Instrs[1], 0)
	for i := 0; i < 10; i++ {
		g.AddDep(a, b)
	}
	if g.NumDepEdges() != 1 {
		t.Errorf("NumDepEdges = %d, want 1 (dedup)", g.NumDepEdges())
	}
	if a.NumDeps() != 1 || b.NumUses() != 1 {
		t.Errorf("degrees wrong: deps=%d uses=%d", a.NumDeps(), b.NumUses())
	}
	g.AddDep(a, nil) // nil-safe
	g.AddDep(nil, b)
	if g.NumDepEdges() != 1 {
		t.Error("nil edges counted")
	}
}

// chainGraph builds a linear dependence chain n0 ← n1 ← … ← n_{k-1}
// (each later node depends on the previous), with given frequencies.
func chainGraph(t testing.TB, freqs []int64) (*Graph, []*Node) {
	prog := mkProg(t, len(freqs))
	g := New(prog)
	nodes := make([]*Node, len(freqs))
	for i := range freqs {
		nodes[i] = g.Node(prog.Instrs[i], 0)
		nodes[i].SetFreq(freqs[i])
		if i > 0 {
			g.AddDep(nodes[i], nodes[i-1])
		}
	}
	return g, nodes
}

func TestAbstractCostChain(t *testing.T) {
	_, nodes := chainGraph(t, []int64{1, 2, 3, 4})
	if got := AbstractCost(nodes[3]); got != 10 {
		t.Errorf("AbstractCost = %d, want 10", got)
	}
	if got := AbstractCost(nodes[0]); got != 1 {
		t.Errorf("AbstractCost(first) = %d, want 1", got)
	}
}

func TestAbstractCostSharedSubgraphCountsOnce(t *testing.T) {
	// b depends on c and d; both depend on shared s. s must count once.
	prog := mkProg(t, 4)
	g := New(prog)
	s := g.Node(prog.Instrs[0], 0)
	c := g.Node(prog.Instrs[1], 0)
	d := g.Node(prog.Instrs[2], 0)
	b := g.Node(prog.Instrs[3], 0)
	for _, n := range []*Node{s, c, d, b} {
		n.SetFreq(1)
	}
	g.AddDep(c, s)
	g.AddDep(d, s)
	g.AddDep(b, c)
	g.AddDep(b, d)
	if got := AbstractCost(b); got != 4 {
		t.Errorf("AbstractCost = %d, want 4 (no double counting)", got)
	}
}

func TestAbstractCostCycleTerminates(t *testing.T) {
	g, nodes := chainGraph(t, []int64{1, 1, 1})
	// close a cycle
	g.AddDep(nodes[0], nodes[2])
	if got := AbstractCost(nodes[2]); got != 3 {
		t.Errorf("AbstractCost over cycle = %d, want 3", got)
	}
}

func TestHRACStopsAtHeapReads(t *testing.T) {
	// load (heap read) ← comp1 ← comp2 ← store
	prog := mkProgWithOps(t)
	g := New(prog)
	load := g.Node(findOp(prog, ir.OpLoadField), 0)
	comp1 := g.Node(findNthOp(prog, ir.OpBin, 0), 0)
	comp2 := g.Node(findNthOp(prog, ir.OpBin, 1), 0)
	store := g.Node(findOp(prog, ir.OpStoreField), 0)
	load.Eff = EffLoad
	store.Eff = EffStore
	load.SetFreq(100)
	comp1.SetFreq(7)
	comp2.SetFreq(9)
	store.SetFreq(3)
	g.AddDep(comp1, load)
	g.AddDep(comp2, comp1)
	g.AddDep(store, comp2)
	if got := HRAC(store); got != 3+9+7 {
		t.Errorf("HRAC = %d, want 19 (load excluded)", got)
	}
	if got := AbstractCost(store); got != 3+9+7+100 {
		t.Errorf("AbstractCost = %d, want 119 (load included)", got)
	}
}

func TestHRABStopsAtHeapWritesAndFlagsConsumers(t *testing.T) {
	prog := mkProgWithOps(t)
	g := New(prog)
	load := g.Node(findOp(prog, ir.OpLoadField), 0)
	comp := g.Node(findNthOp(prog, ir.OpBin, 0), 0)
	store := g.Node(findOp(prog, ir.OpStoreField), 0)
	load.Eff = EffLoad
	store.Eff = EffStore
	load.SetFreq(5)
	comp.SetFreq(2)
	store.SetFreq(50)
	g.AddDep(comp, load) // load used by comp
	g.AddDep(store, comp)
	sum, consumed := HRAB(load)
	if sum != 5+2 {
		t.Errorf("HRAB = %d, want 7 (store excluded)", sum)
	}
	if consumed {
		t.Error("no consumer reached, flag should be false")
	}

	// Now route the load into a predicate.
	pred := g.Node(findOp(prog, ir.OpIf), NoContext)
	pred.SetFreq(10)
	g.AddDep(pred, load)
	sum, consumed = HRAB(load)
	if !consumed {
		t.Error("consumer flag missing")
	}
	if sum != 5+2+10 {
		t.Errorf("HRAB = %d, want 17", sum)
	}
}

// mkProgWithOps builds a program containing one instance of each op the
// tests need.
func mkProgWithOps(t testing.TB) *ir.Program {
	t.Helper()
	b := ir.NewBuilder()
	cls := b.Class("Main", nil)
	f := b.Field(cls, "x", ir.IntType)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.New(0, cls)
	mb.Const(1, 1)
	mb.StoreField(0, f, 1)
	mb.LoadField(2, 0, f)
	mb.Bin(3, ir.Add, 2, 1)
	mb.Bin(4, ir.Mul, 3, 1)
	mb.If(4, ir.Gt, 1, 7)
	mb.ReturnVoid()
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func findOp(prog *ir.Program, op ir.Op) *ir.Instr { return findNthOp(prog, op, 0) }

func findNthOp(prog *ir.Program, op ir.Op, n int) *ir.Instr {
	for _, in := range prog.Instrs {
		if in.Op == op {
			if n == 0 {
				return in
			}
			n--
		}
	}
	return nil
}

func TestSCCChain(t *testing.T) {
	g, nodes := chainGraph(t, []int64{1, 1, 1, 1})
	comps, compOf := g.SCC()
	if len(comps) != 4 {
		t.Fatalf("comps = %d, want 4", len(comps))
	}
	// Reverse topological over def→use: uses come earlier. Edges here are
	// nodes[i] depends on nodes[i-1], i.e. def→use goes i-1 → i. So
	// nodes[3] (the final use) must be in an earlier component than
	// nodes[0].
	if compOf[nodes[3]] >= compOf[nodes[0]] {
		t.Errorf("topological order wrong: comp(%d) vs comp(%d)", compOf[nodes[3]], compOf[nodes[0]])
	}
}

func TestSCCCycleMerges(t *testing.T) {
	prog := mkProg(t, 3)
	g := New(prog)
	a := g.Node(prog.Instrs[0], 0)
	b := g.Node(prog.Instrs[1], 0)
	c := g.Node(prog.Instrs[2], 0)
	g.AddDep(a, b)
	g.AddDep(b, a) // cycle a ↔ b
	g.AddDep(c, a) // c depends on a: def→use edge a → c
	comps, compOf := g.SCC()
	if len(comps) != 2 {
		t.Fatalf("comps = %d, want 2", len(comps))
	}
	if compOf[a] != compOf[b] {
		t.Error("cycle not merged")
	}
	if compOf[c] == compOf[a] {
		t.Error("c merged erroneously")
	}
}

// Property: for random DAG-ish graphs, every def→use edge goes from a
// higher-index component to a lower one (Tarjan reverse-topological).
func TestSCCOrderProperty(t *testing.T) {
	f := func(edges []uint16) bool {
		const n = 12
		prog := mkProg(t, n)
		g := New(prog)
		nodes := make([]*Node, n)
		for i := 0; i < n; i++ {
			nodes[i] = g.Node(prog.Instrs[i], 0)
		}
		for _, e := range edges {
			from := int(e>>8) % n
			to := int(e&0xff) % n
			if from != to {
				g.AddDep(nodes[from], nodes[to])
			}
		}
		_, compOf := g.SCC()
		ok := true
		for _, nd := range nodes {
			nd.Uses(func(u *Node) {
				// def→use edge nd → u: u's component must not come after.
				if compOf[u] > compOf[nd] {
					ok = false
				}
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLocTracking(t *testing.T) {
	prog := mkProgWithOps(t)
	g := New(prog)
	alloc := g.Node(findOp(prog, ir.OpNew), 0)
	store := g.Node(findOp(prog, ir.OpStoreField), 0)
	load := g.Node(findOp(prog, ir.OpLoadField), 0)
	loc := Loc{Alloc: alloc, Field: 0}
	g.AddLocStore(loc, store)
	g.AddLocLoad(loc, load)
	g.AddLocStore(loc, store) // dedup

	nStores := 0
	g.StoresOf(loc, func(*Node) { nStores++ })
	if nStores != 1 {
		t.Errorf("stores = %d, want 1", nStores)
	}
	fields := 0
	g.FieldsOf(alloc, func(int) { fields++ })
	if fields != 1 {
		t.Errorf("fields = %d, want 1", fields)
	}
	locs := 0
	g.Locs(func(Loc) { locs++ })
	if locs != 1 {
		t.Errorf("locs = %d, want 1", locs)
	}
}

func TestApproxBytesGrows(t *testing.T) {
	prog := mkProg(t, 10)
	g := New(prog)
	base := g.ApproxBytes()
	for i := 0; i < 10; i++ {
		g.Touch(prog.Instrs[i], 0)
	}
	if g.ApproxBytes() <= base {
		t.Error("ApproxBytes did not grow with nodes")
	}
}
