// Package ssa builds a pruned static single assignment form over the
// three-address IR and runs the sparse analyses the static low-utility
// pipeline needs: sparse conditional constant propagation (SCCP), copy
// propagation, dominance-based value numbering, a natural-loop forest with
// trip-count inference, and the per-instruction static frequency weights
// that turn PR 3's frequency-blind Gcost bounds into a symbolic cost model.
//
// The representation is deliberately thin: the flat ir.Method body stays the
// single source of truth, and the SSA overlay maps every instruction operand
// to the value it reads and every definition to the value it creates. Phi
// functions exist only in the overlay. Destruct rewrites the body back to
// flat IR (one fresh slot per value, phi copies on the incoming edges) and
// the round-trip is verified against ir.Validate and the interpreter.
package ssa

import (
	"fmt"

	"lowutil/internal/ir"
)

// ValID names an SSA value within one Func. None marks "no value".
type ValID int32

// None is the absent value.
const None ValID = -1

// ValKind classifies how an SSA value is defined.
type ValKind uint8

const (
	// VParam is a method parameter: the value slot s holds at entry, s < Params.
	VParam ValKind = iota
	// VInstr is the destination of the instruction at PC.
	VInstr
	// VPhi is a phi placed at the entry of Block, with one argument per
	// predecessor edge.
	VPhi
	// VUndef is the value of a not-yet-initialized slot. It appears only as
	// a phi argument: the IR validator rejects bodies where a reachable
	// instruction reads a slot no path initializes, so renaming can never
	// surface an undef at a real operand.
	VUndef
)

var valKindNames = [...]string{VParam: "param", VInstr: "instr", VPhi: "phi", VUndef: "undef"}

func (k ValKind) String() string {
	if int(k) < len(valKindNames) {
		return valKindNames[k]
	}
	return fmt.Sprintf("valkind(%d)", uint8(k))
}

// Value is one SSA value: a versioned definition of an original local slot.
type Value struct {
	Kind ValKind
	// Slot is the original local slot this value versions.
	Slot int
	// Version numbers the value among its slot's definitions (printing only).
	Version int
	// Block is the defining block: the phi's block for VPhi, the containing
	// block for VInstr, the entry for VParam and VUndef.
	Block int
	// PC is the defining instruction for VInstr; -1 otherwise.
	PC int
	// Args are the phi arguments, parallel to CFG.Blocks[Block].Preds.
	Args []ValID
}

// Use is one read of a value: either operand OpIdx of the instruction at PC
// (in Instr.Uses callback order), or argument ArgIdx of the phi value Phi
// (PC == -1 then).
type Use struct {
	PC    int
	OpIdx int
	// Base marks a base-pointer operand (thin slicing excludes those from
	// value flow); always false for phi uses.
	Base   bool
	Phi    ValID
	ArgIdx int
}

// IsPhi reports whether the use is a phi argument.
func (u Use) IsPhi() bool { return u.PC < 0 }

// Func is the pruned SSA form of one method body.
type Func struct {
	M   *ir.Method
	CFG *ir.CFG
	Dom *ir.DomTree

	// Vals holds every SSA value, indexed by ValID.
	Vals []Value
	// Phis[b] lists the phi values at block b's entry, ascending by slot.
	Phis [][]ValID
	// Operands[pc] gives, in Instr.Uses callback order, the value each
	// operand of the instruction at pc reads. Unreachable pcs have nil rows.
	Operands [][]ValID
	// DefOf[pc] is the value the instruction at pc defines, or None.
	DefOf []ValID

	// uses[v] lists the recorded uses of value v, in renaming order.
	uses [][]Use
	// undefOf[s] memoizes the per-slot undef value.
	undefOf []ValID
	// NumPhis counts the phi values (for stats and benchmarks).
	NumPhis int
}

// Uses returns the recorded uses of v: instruction operands and phi
// arguments. The slice is owned by the Func; callers must not mutate it.
func (f *Func) Uses(v ValID) []Use { return f.uses[v] }

// NumVals returns the number of SSA values.
func (f *Func) NumVals() int { return len(f.Vals) }

// Build constructs pruned SSA for m over cfg (nil builds a fresh CFG).
// Phi placement uses the iterated dominance frontier of each slot's
// definition blocks, filtered by liveness (a phi is placed only where the
// slot is live-in), which is exactly the pruned-SSA recipe.
func Build(m *ir.Method, cfg *ir.CFG) *Func {
	if cfg == nil {
		cfg = ir.NewCFG(m)
	}
	f := &Func{
		M:        m,
		CFG:      cfg,
		Dom:      ir.NewDomTree(cfg),
		Phis:     make([][]ValID, cfg.NumBlocks()),
		Operands: make([][]ValID, len(m.Code)),
		DefOf:    make([]ValID, len(m.Code)),
		undefOf:  make([]ValID, m.NumLocals),
	}
	for pc := range f.DefOf {
		f.DefOf[pc] = None
	}
	for s := range f.undefOf {
		f.undefOf[s] = None
	}
	f.placePhis(f.liveIn())
	f.rename()
	f.recordPhiUses()
	// addUse pads lazily, so values created after the last recorded use
	// (e.g. a trailing unused definition) would leave uses short of Vals.
	for len(f.uses) < len(f.Vals) {
		f.uses = append(f.uses, nil)
	}
	return f
}

// liveIn computes, per block, the slots live at block entry — the pruning
// filter for phi placement. A small self-contained backward bitset solver;
// the staticanalysis package has a general engine, but ssa sits below it in
// the dependency order.
func (f *Func) liveIn() []bitset {
	m, cfg := f.M, f.CFG
	nb := cfg.NumBlocks()
	use := make([]bitset, nb)
	def := make([]bitset, nb)
	in := make([]bitset, nb)
	out := newBitset(m.NumLocals)
	for b := 0; b < nb; b++ {
		use[b] = newBitset(m.NumLocals)
		def[b] = newBitset(m.NumLocals)
		in[b] = newBitset(m.NumLocals)
		blk := &cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			inst := &m.Code[pc]
			inst.Uses(func(s int, _ bool) {
				if !def[b].has(s) {
					use[b].set(s)
				}
			})
			if d := inst.Def(); d >= 0 {
				def[b].set(d)
			}
		}
	}
	// Postorder iteration (reverse RPO) until fixpoint.
	for changed := true; changed; {
		changed = false
		for i := len(cfg.RPO) - 1; i >= 0; i-- {
			b := cfg.RPO[i]
			out.clearAll()
			for _, s := range cfg.Blocks[b].Succs {
				out.union(in[s])
			}
			out.andNot(def[b])
			out.union(use[b])
			if !out.equal(in[b]) {
				copy(in[b], out)
				changed = true
			}
		}
	}
	return in
}

// placePhis inserts pruned phis: for every slot, at the iterated dominance
// frontier of its definition blocks, wherever the slot is live-in.
func (f *Func) placePhis(liveIn []bitset) {
	m, cfg := f.M, f.CFG
	nb := cfg.NumBlocks()
	defBlocks := make([][]int, m.NumLocals)
	seenDef := make([]int, nb)
	for i := range seenDef {
		seenDef[i] = -1
	}
	for s := 0; s < m.Params && s < m.NumLocals; s++ {
		defBlocks[s] = append(defBlocks[s], 0)
	}
	for _, b := range cfg.RPO {
		blk := &cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			if d := m.Code[pc].Def(); d >= 0 {
				if len(defBlocks[d]) == 0 || defBlocks[d][len(defBlocks[d])-1] != b {
					defBlocks[d] = append(defBlocks[d], b)
				}
			}
		}
	}
	hasPhi := make([]int, nb) // last slot for which a phi was placed, -1 sentinel
	onWork := make([]int, nb)
	for i := range hasPhi {
		hasPhi[i] = -1
		onWork[i] = -1
	}
	var work []int
	for s := 0; s < m.NumLocals; s++ {
		work = work[:0]
		for _, b := range defBlocks[s] {
			work = append(work, b)
			onWork[b] = s
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, j := range f.Dom.Frontier[b] {
				if hasPhi[j] == s || !liveIn[j].has(s) {
					continue
				}
				hasPhi[j] = s
				// A phi at the entry block carries one extra trailing
				// argument for the virtual function-entry edge (the
				// parameter or undef value flowing in from the caller).
				nargs := len(f.CFG.Blocks[j].Preds)
				if j == 0 {
					nargs++
				}
				args := make([]ValID, nargs)
				for i := range args {
					args[i] = None // stays None for unreachable predecessor edges
				}
				v := ValID(len(f.Vals))
				f.Vals = append(f.Vals, Value{Kind: VPhi, Slot: s, Block: j, PC: -1, Args: args})
				f.Phis[j] = append(f.Phis[j], v)
				f.NumPhis++
				if onWork[j] != s {
					onWork[j] = s
					work = append(work, j)
				}
			}
		}
	}
}

// rename walks the dominator tree depth-first, maintaining a per-slot stack
// of the current value, and fills Operands, DefOf, phi arguments and the
// per-value use lists.
func (f *Func) rename() {
	m, cfg := f.M, f.CFG
	stacks := make([][]ValID, m.NumLocals)
	versions := make([]int, m.NumLocals)

	newVal := func(kind ValKind, slot, block, pc int) ValID {
		v := ValID(len(f.Vals))
		f.Vals = append(f.Vals, Value{Kind: kind, Slot: slot, Version: versions[slot], Block: block, PC: pc})
		versions[slot]++
		return v
	}
	top := func(s int) ValID {
		if st := stacks[s]; len(st) > 0 {
			return st[len(st)-1]
		}
		if f.undefOf[s] == None {
			f.undefOf[s] = ValID(len(f.Vals))
			f.Vals = append(f.Vals, Value{Kind: VUndef, Slot: s, Version: -1, Block: 0, PC: -1})
		}
		return f.undefOf[s]
	}

	for s := 0; s < m.Params && s < m.NumLocals; s++ {
		stacks[s] = append(stacks[s], newVal(VParam, s, 0, -1))
	}
	// Phi values were created before renaming; give them versions now, in
	// dominator-tree preorder, so the numbering reads naturally.

	edgeArg := edgeArgIndex(cfg)

	type frame struct {
		b      int
		child  int
		pushed []int // slots pushed in this block, popped on exit
	}
	var stack []frame
	enter := func(b int) frame {
		fr := frame{b: b}
		if b == 0 {
			// Fill the virtual function-entry arguments of entry phis before
			// the phis themselves shadow the parameter/undef values.
			for _, v := range f.Phis[0] {
				args := f.Vals[v].Args
				args[len(args)-1] = top(f.Vals[v].Slot)
			}
		}
		for _, v := range f.Phis[b] {
			slot := f.Vals[v].Slot
			f.Vals[v].Version = versions[slot]
			versions[slot]++
			stacks[slot] = append(stacks[slot], v)
			fr.pushed = append(fr.pushed, slot)
		}
		blk := &cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			inst := &m.Code[pc]
			opIdx := 0
			inst.Uses(func(s int, base bool) {
				v := top(s)
				f.Operands[pc] = append(f.Operands[pc], v)
				f.addUse(v, Use{PC: pc, OpIdx: opIdx, Base: base, Phi: None})
				opIdx++
			})
			if d := inst.Def(); d >= 0 {
				v := newVal(VInstr, d, b, pc)
				f.DefOf[pc] = v
				stacks[d] = append(stacks[d], v)
				fr.pushed = append(fr.pushed, d)
			}
		}
		// Fill this block's outgoing phi arguments.
		for k, s := range blk.Succs {
			j := edgeArg[b][k]
			for _, pv := range f.Phis[s] {
				f.Vals[pv].Args[j] = top(f.Vals[pv].Slot)
			}
		}
		return fr
	}

	stack = append(stack, enter(0))
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		kids := f.Dom.Children[fr.b]
		if fr.child < len(kids) {
			b := kids[fr.child]
			fr.child++
			stack = append(stack, enter(b))
			continue
		}
		for i := len(fr.pushed) - 1; i >= 0; i-- {
			s := fr.pushed[i]
			stacks[s] = stacks[s][:len(stacks[s])-1]
		}
		stack = stack[:len(stack)-1]
	}
}

// edgeArgIndex computes edgeArg[p][k]: for the k-th successor edge of block
// p, the phi argument index it feeds in the successor (the matching
// occurrence of p in the successor's Preds — duplicate p→s edges pair up by
// occurrence order on both sides). Shared between renaming and destruction.
func edgeArgIndex(cfg *ir.CFG) [][]int {
	edgeArg := make([][]int, cfg.NumBlocks())
	for p := range edgeArg {
		edgeArg[p] = make([]int, len(cfg.Blocks[p].Succs))
	}
	occ := make(map[[2]int]int)
	for s := range cfg.Blocks {
		for j, p := range cfg.Blocks[s].Preds {
			key := [2]int{p, s}
			o := occ[key]
			occ[key]++
			// Find the o-th edge p→s on p's side.
			seen := 0
			for k, t := range cfg.Blocks[p].Succs {
				if t != s {
					continue
				}
				if seen == o {
					edgeArg[p][k] = j
					break
				}
				seen++
			}
		}
	}
	return edgeArg
}

// recordPhiUses appends the phi-argument uses to the per-value use lists
// (operand uses were recorded during renaming).
func (f *Func) recordPhiUses() {
	for b := range f.Phis {
		for _, pv := range f.Phis[b] {
			for j, a := range f.Vals[pv].Args {
				if a == None {
					// Unreachable predecessor edge: never taken, no argument.
					continue
				}
				f.addUse(a, Use{PC: -1, Phi: pv, ArgIdx: j})
			}
		}
	}
}

func (f *Func) addUse(v ValID, u Use) {
	if f.uses == nil {
		f.uses = make([][]Use, 0, len(f.Vals))
	}
	for len(f.uses) < len(f.Vals) {
		f.uses = append(f.uses, nil)
	}
	f.uses[v] = append(f.uses[v], u)
}

// Name renders a value as slot.version for diagnostics, e.g. "v3.2" or
// "x.0" when the method names its locals.
func (f *Func) Name(v ValID) string {
	if v == None {
		return "_"
	}
	val := &f.Vals[v]
	base := f.M.LocalName(val.Slot)
	if val.Kind == VUndef {
		return base + ".undef"
	}
	return fmt.Sprintf("%s.%d", base, val.Version)
}

// bitset is a minimal fixed-size bit vector (ssa cannot depend on
// staticanalysis's BitSet without inverting the package order).
type bitset []uint64

func newBitset(n int) bitset    { return make(bitset, (n+63)/64) }
func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }
func (b bitset) union(o bitset) {
	for w := range b {
		b[w] |= o[w]
	}
}
func (b bitset) andNot(o bitset) {
	for w := range b {
		b[w] &^= o[w]
	}
}
func (b bitset) clearAll() {
	for w := range b {
		b[w] = 0
	}
}
func (b bitset) equal(o bitset) bool {
	for w := range b {
		if b[w] != o[w] {
			return false
		}
	}
	return true
}
