package casestudies

import "fmt"

func init() {
	registerStudy(&CaseStudy{
		Name: "derby",
		Pattern: "FileContainer's info array is regenerated on every page write although " +
			"only checkpoints read it; context IDs are expensive composite keys re-derived " +
			"per lookup",
		Fix: "update the array only before it is read, and replace the derived keys with " +
			"plain integer IDs",
		PaperResult:    "6% running time reduction, 8.6% fewer objects",
		SuspectMethods: []string{"FileContainer.init"},
		Bloated:        func(scale int) string { return fmt.Sprintf(derbyBloated, 60*scale) },
		Optimized:      func(scale int) string { return fmt.Sprintf(derbyOptimized, 60*scale) },
	})

	registerStudy(&CaseStudy{
		Name: "tomcat",
		Pattern: "util.Mapper allocates a fresh context array on every add and discards the " +
			"old one; getProperty derives and compares type names per request",
		Fix:            "keep two arrays and reuse them back and forth; compare type tags directly",
		PaperResult:    "~2% running time reduction (3 seconds)",
		SuspectMethods: []string{"Mapper.addContext"},
		Bloated:        func(scale int) string { return fmt.Sprintf(tomcatBloated, 50*scale) },
		Optimized:      func(scale int) string { return fmt.Sprintf(tomcatOptimized, 50*scale) },
	})

	registerStudy(&CaseStudy{
		Name: "tradebeans",
		Pattern: "KeyBlock and its iterators wrap plain integer ranges in objects and issue " +
			"redundant database queries and updates per ID request",
		Fix:            "drop the redundant queries and represent the IDs with a plain int range",
		PaperResult:    "2.5% running time reduction (350s → 341s), 2.3% fewer objects",
		SuspectClasses: []string{"KeyBlock", "KeyBlockIter"},
		Bloated:        func(scale int) string { return fmt.Sprintf(tradebeansBloated, 25*scale) },
		Optimized:      func(scale int) string { return fmt.Sprintf(tradebeansOptimized, 25*scale) },
	})
}

const derbyBloated = `
class PageStore {
  int store(int pageNo, int data) {        // neutral page I/O work shared by
    int cs = 0;                            // both variants
    for (int i = 0; i < 40; i = i + 1) {
      cs = cs + ((data >> (i & 31)) & 1) * (pageNo + i);
    }
    return cs;
  }
}
class FileContainer {
  int[] info;
  int pages;
  int lastPage;
  int lastData;
  void init() { this.info = new int[8]; this.pages = 0; }
  void writePage(int pageNo, int data) {
    this.info[0] = this.pages;             // rebuilt on EVERY write
    this.info[1] = pageNo;
    this.info[2] = hash(pageNo) %% 4096;
    this.info[3] = data & 255;
    this.info[4] = this.info[0] + this.info[1];
    this.info[5] = hash(data) %% 4096;
    this.info[6] = 2;
    this.info[7] = 1;
    this.pages = this.pages + 1;
  }
  int checkpoint() {
    int s = 0;
    for (int i = 0; i < this.info.length; i = i + 1) { s = s + this.info[i]; }
    return s;
  }
}
class ContextMap {
  int[] keys;
  int[] vals;
  int size;
  void init(int cap) { this.keys = new int[cap]; this.vals = new int[cap]; this.size = 0; }
  int keyOf(int mgr, int kind) {           // composite key derived per access
    int k = 17;
    k = k * 31 + mgr;
    k = k * 31 + kind;
    k = k * 31 + (hash(mgr * 7 + kind) & 65535);
    return k;
  }
  void put(int mgr, int kind, int v) {
    int k = this.keyOf(mgr, kind);
    for (int i = 0; i < this.size; i = i + 1) {
      if (this.keys[i] == k) { this.vals[i] = v; return; }
    }
    this.keys[this.size] = k;
    this.vals[this.size] = v;
    this.size = this.size + 1;
  }
  int get(int mgr, int kind) {
    int k = this.keyOf(mgr, kind);
    for (int i = 0; i < this.size; i = i + 1) {
      if (this.keys[i] == k) { return this.vals[i]; }
    }
    return -1;
  }
}
class Main {
  static void main() {
    int writes = %d;
    FileContainer fc = new FileContainer();
    fc.init();
    ContextMap cm = new ContextMap();
    cm.init(32);
    PageStore pst = new PageStore();
    int acc = 0;
    for (int i = 0; i < writes; i = i + 1) {
      int data = hash(i);
      acc = acc + pst.store(i, data);
      fc.writePage(i, data);
      cm.put(i %% 8, i %% 3, i);
      acc = acc + cm.get(i %% 8, (i + 1) %% 3);
    }
    print(fc.checkpoint());
    print(acc);
  }
}`

const derbyOptimized = `
class PageStore {
  int store(int pageNo, int data) {        // neutral page I/O work shared by
    int cs = 0;                            // both variants
    for (int i = 0; i < 40; i = i + 1) {
      cs = cs + ((data >> (i & 31)) & 1) * (pageNo + i);
    }
    return cs;
  }
}
class FileContainer {
  int[] info;
  int pages;
  int lastPage;
  int lastData;
  void init() { this.info = new int[8]; this.pages = 0; }
  void writePage(int pageNo, int data) {
    this.lastPage = pageNo;                // record, don't rebuild
    this.lastData = data;
    this.pages = this.pages + 1;
  }
  int checkpoint() {                       // build info only when read
    this.info[0] = this.pages - 1;
    this.info[1] = this.lastPage;
    this.info[2] = hash(this.lastPage) %% 4096;
    this.info[3] = this.lastData & 255;
    this.info[4] = this.info[0] + this.info[1];
    this.info[5] = hash(this.lastData) %% 4096;
    this.info[6] = 2;
    this.info[7] = 1;
    int s = 0;
    for (int i = 0; i < this.info.length; i = i + 1) { s = s + this.info[i]; }
    return s;
  }
}
class ContextMap {
  int[] keys;
  int[] vals;
  int size;
  void init(int cap) { this.keys = new int[cap]; this.vals = new int[cap]; this.size = 0; }
  int keyOf(int mgr, int kind) { return mgr * 31 + kind; }   // plain int ID
  void put(int mgr, int kind, int v) {
    int k = this.keyOf(mgr, kind);
    for (int i = 0; i < this.size; i = i + 1) {
      if (this.keys[i] == k) { this.vals[i] = v; return; }
    }
    this.keys[this.size] = k;
    this.vals[this.size] = v;
    this.size = this.size + 1;
  }
  int get(int mgr, int kind) {
    int k = this.keyOf(mgr, kind);
    for (int i = 0; i < this.size; i = i + 1) {
      if (this.keys[i] == k) { return this.vals[i]; }
    }
    return -1;
  }
}
class Main {
  static void main() {
    int writes = %d;
    FileContainer fc = new FileContainer();
    fc.init();
    ContextMap cm = new ContextMap();
    cm.init(32);
    PageStore pst = new PageStore();
    int acc = 0;
    for (int i = 0; i < writes; i = i + 1) {
      int data = hash(i);
      acc = acc + pst.store(i, data);
      fc.writePage(i, data);
      cm.put(i %% 8, i %% 3, i);
      acc = acc + cm.get(i %% 8, (i + 1) %% 3);
    }
    print(fc.checkpoint());
    print(acc);
  }
}`

const tomcatBloated = `
class RequestParser {
  int parse(int req) {                     // neutral per-request work shared
    int h = req;                           // by both variants: the bulk of
    for (int i = 0; i < 60; i = i + 1) {   // tomcat that the fix cannot touch
      h = h * 31 + ((req >> (i & 15)) & 1);
      h = h ^ (h >> 7);
    }
    return h & 255;
  }
}
class Mapper {
  int[] contexts;
  void init() { this.contexts = new int[0]; }
  void addContext(int c) {
    int[] neu = new int[this.contexts.length + 1];   // fresh array per add
    int i = 0;
    while (i < this.contexts.length && this.contexts[i] < c) {
      neu[i] = this.contexts[i];
      i = i + 1;
    }
    neu[i] = c;
    while (i < this.contexts.length) {
      neu[i + 1] = this.contexts[i];
      i = i + 1;
    }
    this.contexts = neu;
  }
  int map(int host) {
    if (this.contexts.length == 0) { return -1; }
    int lo = 0;
    int hi = this.contexts.length - 1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (this.contexts[mid] < host) { lo = mid + 1; } else { hi = mid; }
    }
    return this.contexts[lo];
  }
}
class PropertySource {
  int typeNameOf(int kind) { return hash(kind * 77) & 1023; }
  int getProperty(int key, int kind) {
    int intName = this.typeNameOf(0);       // names derived per request
    int boolName = this.typeNameOf(1);
    int longName = this.typeNameOf(2);
    int name = this.typeNameOf(kind);
    if (name == intName) { return key * 2; }
    if (name == boolName) { return key & 1; }
    if (name == longName) { return key * 4; }
    return key;
  }
}
class Main {
  static void main() {
    int requests = %d;
    Mapper m = new Mapper();
    m.init();
    PropertySource ps = new PropertySource();
    RequestParser rp = new RequestParser();
    int acc = 0;
    for (int i = 0; i < requests; i = i + 1) {
      if (i %% 10 == 0) { m.addContext(i); }
      acc = acc + rp.parse(i);
      acc = acc + m.map(i %% 97);
      acc = acc + ps.getProperty(i, i %% 3);
    }
    print(acc);
  }
}`

const tomcatOptimized = `
class RequestParser {
  int parse(int req) {                     // neutral per-request work shared
    int h = req;                           // by both variants: the bulk of
    for (int i = 0; i < 60; i = i + 1) {   // tomcat that the fix cannot touch
      h = h * 31 + ((req >> (i & 15)) & 1);
      h = h ^ (h >> 7);
    }
    return h & 255;
  }
}
class Mapper {
  int[] contexts;     // primary, sized to capacity
  int size;
  void init(int cap) { this.contexts = new int[cap]; this.size = 0; }
  void addContext(int c) {
    int i = this.size - 1;                 // shift in place, no allocation
    while (i >= 0 && this.contexts[i] >= c) {
      this.contexts[i + 1] = this.contexts[i];
      i = i - 1;
    }
    this.contexts[i + 1] = c;
    this.size = this.size + 1;
  }
  int map(int host) {
    if (this.size == 0) { return -1; }
    int lo = 0;
    int hi = this.size - 1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (this.contexts[mid] < host) { lo = mid + 1; } else { hi = mid; }
    }
    return this.contexts[lo];
  }
}
class PropertySource {
  int getProperty(int key, int kind) {     // compare the tag directly
    if (kind == 0) { return key * 2; }
    if (kind == 1) { return key & 1; }
    if (kind == 2) { return key * 4; }
    return key;
  }
}
class Main {
  static void main() {
    int requests = %d;
    Mapper m = new Mapper();
    m.init(requests / 10 + 2);
    PropertySource ps = new PropertySource();
    RequestParser rp = new RequestParser();
    int acc = 0;
    for (int i = 0; i < requests; i = i + 1) {
      if (i %% 10 == 0) { m.addContext(i); }
      acc = acc + rp.parse(i);
      acc = acc + m.map(i %% 97);
      acc = acc + ps.getProperty(i, i %% 3);
    }
    print(acc);
  }
}`

const tradebeansBloated = `
class Pricing {
  int quote(int order) {                   // neutral trading logic shared by
    int px = 1000 + (order & 63);          // both variants
    for (int i = 0; i < 400; i = i + 1) {
      px = px + ((order >> (i & 15)) & 1);
      px = px ^ (px >> 5);
      px = px + 3;
    }
    return px & 4095;
  }
}
class KeyBlockIter {
  KeyBlock owner;
  int cursor;
  boolean hasNext() { return this.cursor < this.owner.hi; }
  int next() {
    int v = this.cursor;
    this.cursor = this.cursor + 1;
    return v;
  }
}
class KeyBlock {
  int lo;
  int hi;
  int account;
  void refresh() {
    int a = dbQuery(this.account, this.lo);    // redundant round-trips
    int b = dbQuery(this.account, this.hi);
    int unused = a ^ b;
    if (unused == -1) { print(unused); }
  }
  KeyBlockIter iterator() {
    KeyBlockIter it = new KeyBlockIter();
    it.owner = this;
    it.cursor = this.lo;
    return it;
  }
}
class AccountService {
  int nextId;
  int allocate(int n) {
    KeyBlock kb = new KeyBlock();
    kb.lo = this.nextId;
    kb.hi = this.nextId + n;
    kb.account = 7;
    kb.refresh();
    this.nextId = this.nextId + n;
    KeyBlockIter it = kb.iterator();
    int last = 0;
    while (it.hasNext()) { last = it.next(); }
    return last;
  }
}
class Main {
  static void main() {
    int orders = %d;
    AccountService svc = new AccountService();
    Pricing pr = new Pricing();
    int acc = 0;
    for (int i = 0; i < orders; i = i + 1) {
      acc = acc + pr.quote(i);
      acc = acc + svc.allocate(10);
    }
    print(acc);
  }
}`

const tradebeansOptimized = `
class Pricing {
  int quote(int order) {                   // neutral trading logic shared by
    int px = 1000 + (order & 63);          // both variants
    for (int i = 0; i < 400; i = i + 1) {
      px = px + ((order >> (i & 15)) & 1);
      px = px ^ (px >> 5);
      px = px + 3;
    }
    return px & 4095;
  }
}
class AccountService {
  int nextId;
  int allocate(int n) {                      // plain int range, no queries
    int lo = this.nextId;
    int hi = this.nextId + n;
    this.nextId = hi;
    int last = 0;
    for (int id = lo; id < hi; id = id + 1) { last = id; }
    return last;
  }
}
class Main {
  static void main() {
    int orders = %d;
    AccountService svc = new AccountService();
    Pricing pr = new Pricing();
    int acc = 0;
    for (int i = 0; i < orders; i = i + 1) {
      acc = acc + pr.quote(i);
      acc = acc + svc.allocate(10);
    }
    print(acc);
  }
}`
