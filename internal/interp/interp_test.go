package interp

import (
	"errors"
	"testing"
	"testing/quick"

	"lowutil/internal/ir"
)

// buildExpr builds a one-method program: main computes `a <op> b` over two
// constants and prints the result.
func buildExpr(t *testing.T, op ir.BinOp, a, b int64) *ir.Program {
	t.Helper()
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, a)
	mb.Const(1, b)
	mb.Bin(2, op, 0, 1)
	mb.Native(-1, ir.NativePrint, 2)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func runOutput(t *testing.T, prog *ir.Program) []int64 {
	t.Helper()
	m := New(prog)
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.Output
}

// Property: machine arithmetic matches Go semantics for every operator.
func TestArithmeticMatchesGo(t *testing.T) {
	ops := []struct {
		op ir.BinOp
		f  func(a, b int64) (int64, bool)
	}{
		{ir.Add, func(a, b int64) (int64, bool) { return a + b, true }},
		{ir.Sub, func(a, b int64) (int64, bool) { return a - b, true }},
		{ir.Mul, func(a, b int64) (int64, bool) { return a * b, true }},
		{ir.Div, func(a, b int64) (int64, bool) {
			if b == 0 {
				return 0, false
			}
			return a / b, true
		}},
		{ir.Rem, func(a, b int64) (int64, bool) {
			if b == 0 {
				return 0, false
			}
			return a % b, true
		}},
		{ir.And, func(a, b int64) (int64, bool) { return a & b, true }},
		{ir.Or, func(a, b int64) (int64, bool) { return a | b, true }},
		{ir.Xor, func(a, b int64) (int64, bool) { return a ^ b, true }},
		{ir.Shl, func(a, b int64) (int64, bool) { return a << (uint64(b) & 63), true }},
		{ir.Shr, func(a, b int64) (int64, bool) { return a >> (uint64(b) & 63), true }},
	}
	for _, op := range ops {
		op := op
		f := func(a, b int64) bool {
			want, defined := op.f(a, b)
			prog := buildExpr(t, op.op, a, b)
			m := New(prog)
			err := m.Run()
			if !defined {
				var vmErr *VMError
				return errors.As(err, &vmErr) && vmErr.Kind == ErrDivZero
			}
			if err != nil {
				return false
			}
			return len(m.Output) == 1 && m.Output[0] == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Errorf("op %v: %v", op.op, err)
		}
	}
}

func TestMinCherryPicked(t *testing.T) {
	// if a < b print a else print b, with a loop decrementing a counter:
	// exercises If/Goto both taken and fallthrough.
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, 7) // a
	mb.Const(1, 3) // b
	br := mb.If(0, ir.Lt, 1, -1)
	mb.Native(-1, ir.NativePrint, 1)
	g := mb.Goto(-1)
	mb.Patch(br, mb.PC())
	mb.Native(-1, ir.NativePrint, 0)
	mb.Patch(g, mb.PC())
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	out := runOutput(t, prog)
	if len(out) != 1 || out[0] != 3 {
		t.Fatalf("out = %v, want [3]", out)
	}
}

func TestLoopSum(t *testing.T) {
	// sum 0..99 via a while loop.
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, 0)   // i
	mb.Const(1, 0)   // sum
	mb.Const(2, 100) // n
	mb.Const(3, 1)   // one
	head := mb.If(0, ir.Ge, 2, -1)
	mb.Bin(1, ir.Add, 1, 0)
	mb.Bin(0, ir.Add, 0, 3)
	mb.Goto(head)
	mb.Patch(head, mb.PC())
	mb.Native(-1, ir.NativePrint, 1)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	out := runOutput(t, prog)
	if len(out) != 1 || out[0] != 4950 {
		t.Fatalf("out = %v, want [4950]", out)
	}
}

func TestFieldsAndVirtualDispatch(t *testing.T) {
	bd := ir.NewBuilder()
	base := bd.Class("Base", nil)
	fx := bd.Field(base, "x", ir.IntType)
	get := bd.Method(base, "get", false, 1, ir.IntType)
	gb := bd.Body(get)
	gb.LoadField(1, 0, fx)
	gb.Return(1)

	derived := bd.Class("Derived", base)
	getD := bd.Method(derived, "get", false, 1, ir.IntType)
	db := bd.Body(getD)
	db.LoadField(1, 0, fx)
	db.Const(2, 100)
	db.Bin(1, ir.Add, 1, 2)
	db.Return(1)

	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.New(0, base)
	mb.Const(1, 5)
	mb.StoreField(0, fx, 1)
	mb.Call(2, get, 0)
	mb.Native(-1, ir.NativePrint, 2)
	mb.New(0, derived)
	mb.StoreField(0, fx, 1)
	mb.Call(2, get, 0) // static callee is Base.get; dispatch must pick Derived.get
	mb.Native(-1, ir.NativePrint, 2)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	out := runOutput(t, prog)
	if len(out) != 2 || out[0] != 5 || out[1] != 105 {
		t.Fatalf("out = %v, want [5 105]", out)
	}
}

func TestArraysRoundTrip(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, 10)
	mb.NewArray(1, ir.IntType, 0) // arr = new int[10]
	mb.Const(2, 3)                // idx
	mb.Const(3, 77)               // val
	mb.AStore(1, 2, 3)
	mb.ALoad(4, 1, 2)
	mb.Native(-1, ir.NativePrint, 4)
	mb.ArrayLen(5, 1)
	mb.Native(-1, ir.NativePrint, 5)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	out := runOutput(t, prog)
	if len(out) != 2 || out[0] != 77 || out[1] != 10 {
		t.Fatalf("out = %v, want [77 10]", out)
	}
}

func errKindOf(t *testing.T, prog *ir.Program) ErrKind {
	t.Helper()
	m := New(prog)
	err := m.Run()
	var vmErr *VMError
	if !errors.As(err, &vmErr) {
		t.Fatalf("want VMError, got %v", err)
	}
	return vmErr.Kind
}

func TestNullDereference(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	fx := bd.Field(cls, "x", ir.IntType)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Null(0)
	mb.LoadField(1, 0, fx)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	if k := errKindOf(t, prog); k != ErrNullDeref {
		t.Fatalf("kind = %v, want null deref", k)
	}
}

func TestBoundsError(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, 2)
	mb.NewArray(1, ir.IntType, 0)
	mb.Const(2, 5)
	mb.ALoad(3, 1, 2)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	if k := errKindOf(t, prog); k != ErrBounds {
		t.Fatalf("kind = %v, want bounds", k)
	}
}

func TestStepLimit(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	g := mb.Goto(-1)
	mb.Patch(g, g) // infinite loop
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	vm.MaxSteps = 1000
	err = vm.Run()
	var vmErr *VMError
	if !errors.As(err, &vmErr) || vmErr.Kind != ErrStepLimit {
		t.Fatalf("want step-limit error, got %v", err)
	}
}

func TestRecursionAndReturnValues(t *testing.T) {
	// fib(n) recursive.
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	fib := bd.Method(cls, "fib", true, 1, ir.IntType)
	fb := bd.Body(fib)
	fb.Const(1, 2)
	br := fb.If(0, ir.Ge, 1, -1)
	fb.Return(0) // n < 2 → n
	fb.Patch(br, fb.PC())
	fb.Const(2, 1)
	fb.Bin(3, ir.Sub, 0, 2) // n-1
	fb.Call(4, fib, 3)
	fb.Const(2, 2)
	fb.Bin(3, ir.Sub, 0, 2) // n-2
	fb.Call(5, fib, 3)
	fb.Bin(6, ir.Add, 4, 5)
	fb.Return(6)

	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, 15)
	mb.Call(1, fib, 0)
	mb.Native(-1, ir.NativePrint, 1)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	out := runOutput(t, prog)
	if len(out) != 1 || out[0] != 610 {
		t.Fatalf("fib(15) = %v, want 610", out)
	}
}

func TestStackOverflowCaught(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	rec := bd.Method(cls, "rec", true, 1, ir.IntType)
	rb := bd.Body(rec)
	rb.Call(1, rec, 0)
	rb.Return(1)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, 0)
	mb.Call(1, rec, 0)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	vm.MaxDepth = 100
	err = vm.Run()
	var vmErr *VMError
	if !errors.As(err, &vmErr) || vmErr.Kind != ErrStackOverflow {
		t.Fatalf("want stack overflow, got %v", err)
	}
}

func TestFloatBitsRoundTrip(t *testing.T) {
	f := func(x int64) bool { return unpackFloatBits(packFloatBits(x)) == x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// And not the identity (it must model a real encode step).
	if packFloatBits(12345) == 12345 {
		t.Error("packFloatBits is the identity")
	}
}

func TestNativesDeterministic(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, 100)
	mb.Native(1, ir.NativeRand, 0)
	mb.Native(-1, ir.NativePrint, 1)
	mb.Native(2, ir.NativeHash, 0)
	mb.Native(-1, ir.NativePrint, 2)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	out1 := runOutput(t, prog)
	out2 := runOutput(t, prog)
	if len(out1) != 2 || out1[0] < 0 || out1[0] >= 100 {
		t.Fatalf("rand out of range: %v", out1)
	}
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatalf("natives not deterministic: %v vs %v", out1, out2)
		}
	}
}

func TestAssertCountsFailures(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, 0)
	mb.Const(1, 1)
	mb.Native(-1, ir.NativeAssert, 0)
	mb.Native(-1, ir.NativeAssert, 1)
	mb.Native(-1, ir.NativeAssert, 0)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.AssertFailures != 2 {
		t.Fatalf("AssertFailures = %d, want 2", vm.AssertFailures)
	}
}

func TestStepsCountEveryInstruction(t *testing.T) {
	prog := buildExpr(t, ir.Add, 1, 2)
	vm := New(prog)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	// const, const, bin, native, return = 5
	if vm.Steps != 5 {
		t.Fatalf("Steps = %d, want 5", vm.Steps)
	}
}

func TestAllocCounters(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, 3)
	mb.Const(1, 0)
	mb.Const(2, 1)
	head := mb.If(1, ir.Ge, 0, -1)
	mb.New(3, cls)
	mb.Bin(1, ir.Add, 1, 2)
	mb.Goto(head)
	mb.Patch(head, mb.PC())
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if vm.Allocs != 3 {
		t.Fatalf("Allocs = %d, want 3", vm.Allocs)
	}
	if len(vm.AllocsBySite) != 1 || vm.AllocsBySite[0] != 3 {
		t.Fatalf("AllocsBySite = %v, want [3]", vm.AllocsBySite)
	}
}

func TestInstanceOf(t *testing.T) {
	bd := ir.NewBuilder()
	base := bd.Class("Base", nil)
	derived := bd.Class("Derived", base)
	other := bd.Class("Other", nil)
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.New(0, derived)
	mb.InstanceOf(1, 0, base)
	mb.Native(-1, ir.NativePrint, 1)
	mb.InstanceOf(1, 0, other)
	mb.Native(-1, ir.NativePrint, 1)
	mb.Null(2)
	mb.InstanceOf(1, 2, base)
	mb.Native(-1, ir.NativePrint, 1)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	out := runOutput(t, prog)
	want := []int64{1, 0, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestCallMethodDirect(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	add := bd.Method(cls, "add", true, 2, ir.IntType)
	ab := bd.Body(add)
	ab.Bin(2, ir.Add, 0, 1)
	ab.Return(2)
	m := bd.Method(cls, "main", true, 0, nil)
	bd.Body(m).ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	got, err := vm.CallMethod(add, IntVal(20), IntVal(22))
	if err != nil {
		t.Fatal(err)
	}
	if got.I != 42 {
		t.Fatalf("CallMethod = %v, want 42", got)
	}
}
