package depgraph

// Multi-hop traversals implement the §3.2 design alternative the paper
// discusses ("Single-hop cost/benefit vs multi-hop cost/benefit"): instead
// of stopping at the first heap boundary, costs and benefits may be
// "recomputed by traversing multiple heap-to-heap hops on Gcost backward and
// forward". A hop boundary is a heap-reading node (backward) or a
// heap-writing node (forward); with hops = 1 these functions coincide with
// HRAC/HRAB, and with hops = ∞ they approach AbstractCost / full forward
// weight.

// HRACK computes the k-hop relative abstract cost: the frequency sum over
// backward paths from n that cross at most hops-1 heap-reading nodes.
// Heap readers consume one hop budget and are counted once crossed (their
// stack work belongs to the previous hop's production).
func HRACK(n *Node, hops int) int64 {
	if hops < 1 {
		hops = 1
	}
	type item struct {
		n      *Node
		budget int
	}
	sum := n.Freq()
	// best[n] = highest remaining budget n was visited with; a node is
	// re-traversed only with a strictly higher budget, and its frequency is
	// counted exactly once.
	best := map[*Node]int{n: hops}
	counted := map[*Node]bool{n: true}
	stack := []item{{n, hops}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cur.n.Deps(func(d *Node) {
			budget := cur.budget
			if d.ReadsHeap() {
				budget--
				if budget < 1 {
					return // out of hops: boundary stays uncounted
				}
			}
			if b, seen := best[d]; seen && b >= budget {
				return
			}
			best[d] = budget
			if !counted[d] {
				counted[d] = true
				sum += d.Freq()
			}
			stack = append(stack, item{d, budget})
		})
	}
	return sum
}

// HRABK is the forward dual of HRACK: the frequency sum over forward paths
// from n crossing at most hops-1 heap-writing nodes, with consumer nodes as
// sinks. The boolean reports consumer reachability within the hop budget.
func HRABK(n *Node, hops int) (int64, bool) {
	if hops < 1 {
		hops = 1
	}
	type item struct {
		n      *Node
		budget int
	}
	sum := n.Freq()
	consumed := false
	best := map[*Node]int{n: hops}
	counted := map[*Node]bool{n: true}
	stack := []item{{n, hops}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cur.n.Uses(func(u *Node) {
			budget := cur.budget
			if u.IsConsumer() {
				if !counted[u] {
					counted[u] = true
					sum += u.Freq()
				}
				consumed = true
				return // sinks
			}
			if u.WritesHeap() {
				budget--
				if budget < 1 {
					return
				}
			}
			if b, seen := best[u]; seen && b >= budget {
				return
			}
			best[u] = budget
			if !counted[u] {
				counted[u] = true
				sum += u.Freq()
			}
			stack = append(stack, item{u, budget})
		})
	}
	return sum, consumed
}
