package depgraph

import "testing"

func TestSCCEmptyGraph(t *testing.T) {
	g := New(mkProg(t, 1))
	comps, compOf := g.SCC()
	if len(comps) != 0 || len(compOf) != 0 {
		t.Errorf("empty graph: comps=%v compOf=%v", comps, compOf)
	}
}

func TestSCCSelfLoop(t *testing.T) {
	prog := mkProg(t, 1)
	g := New(prog)
	a := g.Touch(prog.Instrs[0], 0)
	g.AddDep(a, a)
	comps, compOf := g.SCC()
	if len(comps) != 1 || len(comps[0]) != 1 || comps[0][0] != a {
		t.Fatalf("self-loop: comps=%v", comps)
	}
	if compOf[a] != 0 {
		t.Errorf("compOf[a] = %d, want 0", compOf[a])
	}
}

// TestSCCInterlockingCycles: two 2-cycles joined by one edge condense to
// two components in reverse topological order — the def→use edge between
// them must go from the later component to the earlier.
func TestSCCInterlockingCycles(t *testing.T) {
	prog := mkProg(t, 4)
	g := New(prog)
	a := g.Touch(prog.Instrs[0], 0)
	b := g.Touch(prog.Instrs[1], 0)
	c := g.Touch(prog.Instrs[2], 0)
	d := g.Touch(prog.Instrs[3], 0)
	// a <-> b and c <-> d (AddDep(x, y) records the value edge y -> x).
	g.AddDep(a, b)
	g.AddDep(b, a)
	g.AddDep(c, d)
	g.AddDep(d, c)
	// One cross edge: c consumes b's value, so b -> c in the uses direction.
	g.AddDep(c, b)

	comps, compOf := g.SCC()
	if len(comps) != 2 {
		t.Fatalf("comps = %d, want 2", len(comps))
	}
	if compOf[a] != compOf[b] || compOf[c] != compOf[d] || compOf[a] == compOf[c] {
		t.Fatalf("membership wrong: a=%d b=%d c=%d d=%d",
			compOf[a], compOf[b], compOf[c], compOf[d])
	}
	for _, comp := range comps {
		if len(comp) != 2 {
			t.Errorf("component size %d, want 2", len(comp))
		}
	}
	// Reverse topological order: the uses edge b -> c requires c's
	// component to come before b's in the returned slice.
	if compOf[c] >= compOf[b] {
		t.Errorf("reverse topological order violated: compOf[c]=%d compOf[b]=%d",
			compOf[c], compOf[b])
	}
}

// TestSCCSharedNodeCycles: two cycles sharing a node are one component.
func TestSCCSharedNodeCycles(t *testing.T) {
	prog := mkProg(t, 5)
	g := New(prog)
	n := make([]*Node, 5)
	for i := range n {
		n[i] = g.Touch(prog.Instrs[i], 0)
	}
	// Cycle 1: n0 -> n1 -> n2 -> n0; cycle 2: n2 -> n3 -> n4 -> n2.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}}
	for _, e := range edges {
		g.AddDep(n[e[1]], n[e[0]]) // value edge e[0] -> e[1]
	}
	comps, compOf := g.SCC()
	if len(comps) != 1 || len(comps[0]) != 5 {
		t.Fatalf("interlocked cycles must condense to one component: %v", comps)
	}
	for _, node := range n {
		if compOf[node] != 0 {
			t.Errorf("node outside the single component")
		}
	}
}
