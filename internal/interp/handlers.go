package interp

// Handler-table dispatch. Instead of re-decoding each ir.Instr through the
// 200-line switch in Machine.step on every execution, methods get a side
// table of pre-resolved dinstr records: one handler function per opcode
// variant (per-BinOp arithmetic, per-Cmp branches, static vs virtual calls)
// with operands, field/static slots, branch targets and immediates already
// decoded. The main loop then runs d.fn(m, fr, d) — one indirect call, no
// opcode switch.
//
// Decoded tables are immutable, so they are shared by every machine running
// the same program (cached on ir.Program.TabCache, built under a mutex).
// The exception is a machine with a Prune set, which folds its prune marks
// into private tables. All mutable dispatch state — the inline caches — lives
// in per-machine icSite records, so concurrent profiles over one program
// race on nothing.
//
// Virtual call sites carry a monomorphic inline cache keyed by the
// receiver's dynamic class, with a bounded polymorphic fallback and a
// megamorphic regime that degrades to the plain name lookup.
//
// The legacy switch interpreter is kept behind Machine.LegacyDispatch as the
// differential reference.

import (
	"sync"

	"lowutil/internal/ir"
)

// handlerFn executes one pre-decoded instruction. Handlers advance fr.PC
// themselves and report tracer events through m.ev.
type handlerFn func(m *Machine, fr *Frame, d *dinstr) error

// icPolyMax bounds the polymorphic inline-cache fallback; sites that see
// more receiver classes go megamorphic (plain lookup, no further installs).
const icPolyMax = 4

// icEntry is one polymorphic inline-cache way.
type icEntry struct {
	class  *ir.Class
	target *ir.Method
}

// icSite is the per-machine mutable state of one virtual call site: the
// monomorphic inline cache plus its polymorphic fallback. Sites live in
// per-machine per-method slices (Frame.ics), never in the shared tables.
type icSite struct {
	class  *ir.Class
	target *ir.Method
	poly   []icEntry
	mega   bool
}

// dinstr is a pre-decoded instruction: the handler plus everything it needs
// without touching the wider ir.Instr on the hot path. Except for tables
// built under a Prune set, dinstr records are shared between machines and
// must not be written after construction.
type dinstr struct {
	fn     handlerFn
	in     *ir.Instr
	pruned bool

	dst, a, b, c2 int32
	target        int32
	slot          int32 // field or static slot
	icIdx         int32 // virtual sites: index into the frame's icSite slice
	imm           int64

	// callee is the static call target, or the declared callee of a virtual
	// site (dispatch is by name on the receiver's dynamic class).
	callee *ir.Method
}

// mtab is one decoded method table plus the number of virtual call sites it
// contains (the size of the per-machine icSite slice it needs).
type mtab struct {
	tab    []dinstr
	vcount int
}

// progTabs is the per-program shared decode cache, hung off
// ir.Program.TabCache.
type progTabs struct {
	mu   sync.Mutex
	tabs []mtab // by Method.ID
}

func progTabsOf(p *ir.Program) *progTabs {
	if v := p.TabCache.Load(); v != nil {
		return v.(*progTabs)
	}
	pt := &progTabs{}
	if p.TabCache.CompareAndSwap(nil, pt) {
		return pt
	}
	return p.TabCache.Load().(*progTabs)
}

// sharedTab returns the program-wide decoded table for meth, building it
// once. Cached tables are revalidated against the method's current code
// slice: passes that rewrite bodies in place (SSA destruction + Reindex)
// replace Code, which invalidates any table built against the old slice.
func sharedTab(prog *ir.Program, meth *ir.Method) mtab {
	pt := progTabsOf(prog)
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.tabs == nil {
		pt.tabs = make([]mtab, prog.NumMethods())
	}
	id := meth.ID
	if id < 0 || id >= len(pt.tabs) {
		return buildTab(meth, nil)
	}
	t := pt.tabs[id]
	if len(t.tab) == len(meth.Code) && len(t.tab) > 0 && t.tab[0].in == &meth.Code[0] {
		return t
	}
	t = buildTab(meth, nil)
	pt.tabs[id] = t
	return t
}

// methodTab returns the dispatch table for meth plus this machine's inline
// caches for it, consulting the machine-local cache first and the shared
// per-program cache behind it. Machines with a Prune set build private
// tables with the marks folded in.
func (m *Machine) methodTab(meth *ir.Method) ([]dinstr, []icSite) {
	if m.tabs == nil {
		n := m.Prog.NumMethods()
		m.tabs = make([][]dinstr, n)
		m.ics = make([][]icSite, n)
	}
	id := meth.ID
	if id >= 0 && id < len(m.tabs) {
		if tab := m.tabs[id]; len(tab) == len(meth.Code) && len(tab) > 0 && tab[0].in == &meth.Code[0] {
			return tab, m.ics[id]
		}
	}
	var t mtab
	if m.Prune != nil {
		t = buildTab(meth, m.Prune)
	} else {
		t = sharedTab(m.Prog, meth)
	}
	var ics []icSite
	if t.vcount > 0 {
		ics = make([]icSite, t.vcount)
	}
	if id >= 0 && id < len(m.tabs) {
		m.tabs[id] = t.tab
		m.ics[id] = ics
	}
	return t.tab, ics
}

// buildTab pre-decodes every instruction of meth. Prune marks are folded in
// here, so the hot path tests one pre-computed bool instead of re-indexing
// the prune set per event.
func buildTab(meth *ir.Method, prune []bool) mtab {
	tab := make([]dinstr, len(meth.Code))
	vcount := 0
	for i := range meth.Code {
		in := &meth.Code[i]
		d := &tab[i]
		d.in = in
		d.dst, d.a, d.b, d.c2 = int32(in.Dst), int32(in.A), int32(in.B), int32(in.C2)
		d.target = int32(in.Target)
		d.imm = in.Imm
		d.pruned = prune != nil && in.ID < len(prune) && prune[in.ID]

		switch in.Op {
		case ir.OpConst:
			if in.IsNull {
				d.fn = hConstNull
			} else {
				d.fn = hConstInt
			}
		case ir.OpMove:
			d.fn = hMove
		case ir.OpBin:
			switch in.Bin {
			case ir.Add:
				d.fn = hAdd
			case ir.Sub:
				d.fn = hSub
			case ir.Mul:
				d.fn = hMul
			case ir.Div:
				d.fn = hDiv
			case ir.Rem:
				d.fn = hRem
			case ir.And:
				d.fn = hAnd
			case ir.Or:
				d.fn = hOr
			case ir.Xor:
				d.fn = hXor
			case ir.Shl:
				d.fn = hShl
			case ir.Shr:
				d.fn = hShr
			default:
				d.fn = hBadBin
			}
		case ir.OpNeg:
			d.fn = hNeg
		case ir.OpNot:
			d.fn = hNot
		case ir.OpNew:
			d.fn = hNew
		case ir.OpNewArray:
			d.fn = hNewArray
		case ir.OpLoadField:
			d.slot = int32(in.Field.Slot)
			d.fn = hLoadField
		case ir.OpStoreField:
			d.slot = int32(in.Field.Slot)
			d.fn = hStoreField
		case ir.OpLoadStatic:
			d.slot = int32(in.Static.Slot)
			d.fn = hLoadStatic
		case ir.OpStoreStatic:
			d.slot = int32(in.Static.Slot)
			d.fn = hStoreStatic
		case ir.OpALoad:
			d.fn = hALoad
		case ir.OpAStore:
			d.fn = hAStore
		case ir.OpArrayLen:
			d.fn = hArrayLen
		case ir.OpIf:
			switch in.Cmp {
			case ir.Eq:
				d.fn = hIfEq
			case ir.Ne:
				d.fn = hIfNe
			case ir.Lt:
				d.fn = hIfLt
			case ir.Le:
				d.fn = hIfLe
			case ir.Gt:
				d.fn = hIfGt
			case ir.Ge:
				d.fn = hIfGe
			default:
				d.fn = hBadIf
			}
		case ir.OpGoto:
			d.fn = hGoto
		case ir.OpInstanceOf:
			d.fn = hInstanceOf
		case ir.OpCall:
			d.callee = in.Callee
			if in.Callee.Static {
				d.fn = hCallStatic
			} else {
				d.a = int32(in.Args[0]) // receiver slot
				d.icIdx = int32(vcount)
				vcount++
				d.fn = hCallVirtual
			}
		case ir.OpReturn:
			if in.HasA {
				d.fn = hReturnVal
			} else {
				d.fn = hReturnVoid
			}
		case ir.OpNative:
			d.fn = hNative
		default:
			d.fn = hBadOp
		}
	}
	return mtab{tab: tab, vcount: vcount}
}

// traced reports whether the event for d should reach the tracer,
// replicating the legacy prologue: pruned instructions are counted before
// execution, traced ones emit after.
func (m *Machine) traced(d *dinstr) bool {
	if m.Tracer == nil {
		return false
	}
	if d.pruned {
		m.PrunedEvents++
		return false
	}
	return true
}

// The emit helpers publish events through the machine's single reusable
// record, writing only the fields the opcode defines (see the Event doc:
// fields an opcode does not define are unspecified). Assigning fields
// individually instead of copying a whole Event keeps the per-event GC
// write-barrier work to the pointer stores that actually change: Frame only
// changes at call boundaries (setFrame), and a Value whose Ref is nil over a
// nil Ref is stored as scalars only (setVal), so the common arithmetic event
// pays one barriered store — In. The pointer handed to the tracer is only
// valid for the duration of Exec.

// setFrame publishes fr, skipping the pointer store (and its write barrier)
// when the frame is unchanged since the last event.
func (m *Machine) setFrame(fr *Frame) {
	if m.ev.Frame != fr {
		m.ev.Frame = fr
	}
}

// setVal publishes v. Int values over an event whose Val.Ref is already nil
// are written as scalars, keeping reference write barriers off the
// arithmetic hot path.
func (m *Machine) setVal(v Value) {
	ev := &m.ev
	if v.Ref == nil && ev.Val.Ref == nil {
		ev.Val.K, ev.Val.I = v.K, v.I
		return
	}
	ev.Val = v
}

// emitV reports a value-producing instruction.
func (m *Machine) emitV(in *ir.Instr, fr *Frame, v Value) {
	ev := &m.ev
	ev.In = in
	m.setFrame(fr)
	m.setVal(v)
	m.Tracer.Exec(ev)
}

// emitNew reports an allocation.
func (m *Machine) emitNew(in *ir.Instr, fr *Frame, o *Object, v Value) {
	ev := &m.ev
	ev.In, ev.New = in, o
	m.setFrame(fr)
	m.setVal(v)
	m.Tracer.Exec(ev)
}

// emitBase reports a field access or array-length read on base.
func (m *Machine) emitBase(in *ir.Instr, fr *Frame, base *Object, v Value) {
	ev := &m.ev
	ev.In, ev.Base = in, base
	m.setFrame(fr)
	m.setVal(v)
	m.Tracer.Exec(ev)
}

// emitIndexed reports an array element access.
func (m *Machine) emitIndexed(in *ir.Instr, fr *Frame, base *Object, idx int64, v Value) {
	ev := &m.ev
	ev.In, ev.Base, ev.Index = in, base, idx
	m.setFrame(fr)
	m.setVal(v)
	m.Tracer.Exec(ev)
}

// emitTaken reports a branch.
func (m *Machine) emitTaken(in *ir.Instr, fr *Frame, taken bool) {
	ev := &m.ev
	ev.In, ev.Taken = in, taken
	m.setFrame(fr)
	m.Tracer.Exec(ev)
}

func hConstInt(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	v := IntVal(d.imm)
	fr.Locals[d.dst] = v
	if traced {
		m.emitV(d.in, fr, v)
	}
	fr.PC++
	return nil
}

func hConstNull(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	fr.Locals[d.dst] = Null
	if traced {
		m.emitV(d.in, fr, Null)
	}
	fr.PC++
	return nil
}

func hMove(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	v := fr.Locals[d.a]
	fr.Locals[d.dst] = v
	if traced {
		m.emitV(d.in, fr, v)
	}
	fr.PC++
	return nil
}

// binOperands loads the integer operands of an arithmetic handler.
func binOperands(m *Machine, fr *Frame, d *dinstr) (int64, int64, error) {
	a, b := fr.Locals[d.a], fr.Locals[d.b]
	if a.K == ir.KindRef || b.K == ir.KindRef {
		return 0, 0, m.fail(ErrType, d.in, fr, "arithmetic on reference")
	}
	return a.I, b.I, nil
}

// finishBin stores and reports an arithmetic result.
func finishBin(m *Machine, fr *Frame, d *dinstr, traced bool, r int64) error {
	v := IntVal(r)
	fr.Locals[d.dst] = v
	if traced {
		m.emitV(d.in, fr, v)
	}
	fr.PC++
	return nil
}

func hAdd(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b, err := binOperands(m, fr, d)
	if err != nil {
		return err
	}
	return finishBin(m, fr, d, traced, a+b)
}

func hSub(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b, err := binOperands(m, fr, d)
	if err != nil {
		return err
	}
	return finishBin(m, fr, d, traced, a-b)
}

func hMul(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b, err := binOperands(m, fr, d)
	if err != nil {
		return err
	}
	return finishBin(m, fr, d, traced, a*b)
}

func hDiv(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b, err := binOperands(m, fr, d)
	if err != nil {
		return err
	}
	if b == 0 {
		return m.fail(ErrDivZero, d.in, fr, "")
	}
	return finishBin(m, fr, d, traced, a/b)
}

func hRem(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b, err := binOperands(m, fr, d)
	if err != nil {
		return err
	}
	if b == 0 {
		return m.fail(ErrDivZero, d.in, fr, "")
	}
	return finishBin(m, fr, d, traced, a%b)
}

func hAnd(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b, err := binOperands(m, fr, d)
	if err != nil {
		return err
	}
	return finishBin(m, fr, d, traced, a&b)
}

func hOr(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b, err := binOperands(m, fr, d)
	if err != nil {
		return err
	}
	return finishBin(m, fr, d, traced, a|b)
}

func hXor(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b, err := binOperands(m, fr, d)
	if err != nil {
		return err
	}
	return finishBin(m, fr, d, traced, a^b)
}

func hShl(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b, err := binOperands(m, fr, d)
	if err != nil {
		return err
	}
	return finishBin(m, fr, d, traced, a<<(uint64(b)&63))
}

func hShr(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b, err := binOperands(m, fr, d)
	if err != nil {
		return err
	}
	return finishBin(m, fr, d, traced, a>>(uint64(b)&63))
}

func hBadBin(m *Machine, fr *Frame, d *dinstr) error {
	m.traced(d)
	if _, _, err := binOperands(m, fr, d); err != nil {
		return err
	}
	return m.fail(ErrType, d.in, fr, "bad binop %v", d.in.Bin)
}

func hNeg(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a := fr.Locals[d.a]
	if a.K == ir.KindRef {
		return m.fail(ErrType, d.in, fr, "negation of reference")
	}
	return finishBin(m, fr, d, traced, -a.I)
}

func hNot(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	var r int64
	if !fr.Locals[d.a].Truthy() {
		r = 1
	}
	return finishBin(m, fr, d, traced, r)
}

func hNew(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	in := d.in
	o := m.NewObject(in.Class, in.AllocSite)
	m.AllocsBySite[in.AllocSite]++
	v := RefVal(o)
	fr.Locals[d.dst] = v
	if traced {
		m.emitNew(in, fr, o, v)
	}
	fr.PC++
	return nil
}

func hNewArray(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	in := d.in
	n := fr.Locals[d.a]
	if n.K == ir.KindRef {
		return m.fail(ErrType, d.in, fr, "array length is a reference")
	}
	o, err := m.newArray(in.Elem, n.I, in.AllocSite)
	if err != nil {
		return m.fail(ErrBounds, in, fr, "%v", err)
	}
	if in.Elem.IsRef() {
		for i := range o.Elems {
			o.Elems[i] = Null
		}
	}
	m.AllocsBySite[in.AllocSite]++
	v := RefVal(o)
	fr.Locals[d.dst] = v
	if traced {
		m.emitNew(in, fr, o, v)
	}
	fr.PC++
	return nil
}

// refLocal loads a non-null object reference from local slot s.
func refLocal(m *Machine, fr *Frame, d *dinstr, s int32) (*Object, error) {
	v := fr.Locals[s]
	if v.K != ir.KindRef {
		return nil, m.fail(ErrType, d.in, fr, "expected reference in slot %d, got int", s)
	}
	if v.Ref == nil {
		return nil, m.fail(ErrNullDeref, d.in, fr, "")
	}
	return v.Ref, nil
}

func hLoadField(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	base, err := refLocal(m, fr, d, d.a)
	if err != nil {
		return err
	}
	if base.IsArray() || int(d.slot) >= len(base.Fields) {
		return m.fail(ErrType, d.in, fr, "object %s has no field %s", base, d.in.Field.QualifiedName())
	}
	v := base.Fields[d.slot]
	fr.Locals[d.dst] = v
	if traced {
		m.emitBase(d.in, fr, base, v)
	}
	fr.PC++
	return nil
}

func hStoreField(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	base, err := refLocal(m, fr, d, d.a)
	if err != nil {
		return err
	}
	if base.IsArray() || int(d.slot) >= len(base.Fields) {
		return m.fail(ErrType, d.in, fr, "object %s has no field %s", base, d.in.Field.QualifiedName())
	}
	v := fr.Locals[d.b]
	base.Fields[d.slot] = v
	if traced {
		m.emitBase(d.in, fr, base, v)
	}
	fr.PC++
	return nil
}

func hLoadStatic(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	v := m.Statics[d.slot]
	fr.Locals[d.dst] = v
	if traced {
		m.emitV(d.in, fr, v)
	}
	fr.PC++
	return nil
}

func hStoreStatic(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	v := fr.Locals[d.a]
	m.Statics[d.slot] = v
	if traced {
		m.emitV(d.in, fr, v)
	}
	fr.PC++
	return nil
}

// arrayLocal loads a non-null array reference from local slot s.
func arrayLocal(m *Machine, fr *Frame, d *dinstr, s int32) (*Object, error) {
	o, err := refLocal(m, fr, d, s)
	if err != nil {
		return nil, err
	}
	if !o.IsArray() {
		return nil, m.fail(ErrType, d.in, fr, "expected array, got %s", o)
	}
	return o, nil
}

func hALoad(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	arr, err := arrayLocal(m, fr, d, d.a)
	if err != nil {
		return err
	}
	idx := fr.Locals[d.b]
	if idx.K == ir.KindRef {
		return m.fail(ErrType, d.in, fr, "array index is a reference")
	}
	if idx.I < 0 || idx.I >= int64(len(arr.Elems)) {
		return m.fail(ErrBounds, d.in, fr, "index %d, length %d", idx.I, len(arr.Elems))
	}
	v := arr.Elems[idx.I]
	fr.Locals[d.dst] = v
	if traced {
		m.emitIndexed(d.in, fr, arr, idx.I, v)
	}
	fr.PC++
	return nil
}

func hAStore(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	arr, err := arrayLocal(m, fr, d, d.a)
	if err != nil {
		return err
	}
	idx := fr.Locals[d.b]
	if idx.K == ir.KindRef {
		return m.fail(ErrType, d.in, fr, "array index is a reference")
	}
	if idx.I < 0 || idx.I >= int64(len(arr.Elems)) {
		return m.fail(ErrBounds, d.in, fr, "index %d, length %d", idx.I, len(arr.Elems))
	}
	v := fr.Locals[d.c2]
	arr.Elems[idx.I] = v
	if traced {
		m.emitIndexed(d.in, fr, arr, idx.I, v)
	}
	fr.PC++
	return nil
}

func hArrayLen(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	arr, err := arrayLocal(m, fr, d, d.a)
	if err != nil {
		return err
	}
	v := IntVal(int64(len(arr.Elems)))
	fr.Locals[d.dst] = v
	if traced {
		m.emitBase(d.in, fr, arr, v)
	}
	fr.PC++
	return nil
}

// finishIf branches and reports the branch event. The event fires after a
// taken branch retargets PC but before a fall-through advances it, matching
// the legacy switch ordering exactly.
func finishIf(m *Machine, fr *Frame, d *dinstr, traced, taken bool) error {
	if taken {
		fr.PC = int(d.target)
	}
	if traced {
		m.emitTaken(d.in, fr, taken)
	}
	if !taken {
		fr.PC++
	}
	return nil
}

func hIfEq(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b := fr.Locals[d.a], fr.Locals[d.b]
	if a.K == ir.KindRef || b.K == ir.KindRef {
		taken, err := m.compare(d.in, fr)
		if err != nil {
			return err
		}
		return finishIf(m, fr, d, traced, taken)
	}
	return finishIf(m, fr, d, traced, a.I == b.I)
}

func hIfNe(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b := fr.Locals[d.a], fr.Locals[d.b]
	if a.K == ir.KindRef || b.K == ir.KindRef {
		taken, err := m.compare(d.in, fr)
		if err != nil {
			return err
		}
		return finishIf(m, fr, d, traced, taken)
	}
	return finishIf(m, fr, d, traced, a.I != b.I)
}

func hIfLt(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b := fr.Locals[d.a], fr.Locals[d.b]
	if a.K == ir.KindRef || b.K == ir.KindRef {
		return m.fail(ErrType, d.in, fr, "ordered comparison of references")
	}
	return finishIf(m, fr, d, traced, a.I < b.I)
}

func hIfLe(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b := fr.Locals[d.a], fr.Locals[d.b]
	if a.K == ir.KindRef || b.K == ir.KindRef {
		return m.fail(ErrType, d.in, fr, "ordered comparison of references")
	}
	return finishIf(m, fr, d, traced, a.I <= b.I)
}

func hIfGt(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b := fr.Locals[d.a], fr.Locals[d.b]
	if a.K == ir.KindRef || b.K == ir.KindRef {
		return m.fail(ErrType, d.in, fr, "ordered comparison of references")
	}
	return finishIf(m, fr, d, traced, a.I > b.I)
}

func hIfGe(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	a, b := fr.Locals[d.a], fr.Locals[d.b]
	if a.K == ir.KindRef || b.K == ir.KindRef {
		return m.fail(ErrType, d.in, fr, "ordered comparison of references")
	}
	return finishIf(m, fr, d, traced, a.I >= b.I)
}

func hBadIf(m *Machine, fr *Frame, d *dinstr) error {
	m.traced(d)
	a, b := fr.Locals[d.a], fr.Locals[d.b]
	if a.K == ir.KindRef || b.K == ir.KindRef {
		_, err := m.compare(d.in, fr)
		return err
	}
	return m.fail(ErrType, d.in, fr, "bad comparison")
}

func hGoto(m *Machine, fr *Frame, d *dinstr) error {
	m.traced(d) // count pruned; pure control transfer emits no event
	fr.PC = int(d.target)
	return nil
}

func hInstanceOf(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	v := fr.Locals[d.a]
	if v.K != ir.KindRef {
		return m.fail(ErrType, d.in, fr, "instanceof on non-reference")
	}
	res := int64(0)
	if v.Ref != nil && !v.Ref.IsArray() && v.Ref.Class.IsSubclassOf(d.in.Class) {
		res = 1
	}
	return finishBin(m, fr, d, traced, res)
}

func hCallStatic(m *Machine, fr *Frame, d *dinstr) error {
	m.traced(d) // calls never emit Exec events; only the pruned counter applies
	return m.pushCall(fr, d, d.callee, nil)
}

func hCallVirtual(m *Machine, fr *Frame, d *dinstr) error {
	m.traced(d)
	v := fr.Locals[d.a]
	if v.K != ir.KindRef {
		return m.fail(ErrType, d.in, fr, "receiver is not a reference")
	}
	if v.Ref == nil {
		return m.fail(ErrNullDeref, d.in, fr, "call %s on null", d.callee.QualifiedName())
	}
	recv := v.Ref
	if recv.IsArray() {
		return m.fail(ErrType, d.in, fr, "method call on array")
	}
	cls := recv.Class
	ic := &fr.ics[d.icIdx]
	var callee *ir.Method
	if cls == ic.class {
		m.ICHits++
		callee = ic.target
	} else if callee = m.dispatchSlow(d, ic, cls); callee == nil {
		return m.fail(ErrType, d.in, fr, "class %s has no method %s", cls.Name, d.callee.Name)
	}
	return m.pushCall(fr, d, callee, recv)
}

// dispatchSlow services an inline-cache miss: probe the polymorphic ways,
// then fall back to the name lookup and install the new (class, target)
// binding — monomorphic first, then polymorphic up to icPolyMax ways, then
// megamorphic (no installs, every dispatch pays the lookup).
func (m *Machine) dispatchSlow(d *dinstr, ic *icSite, cls *ir.Class) *ir.Method {
	for i := range ic.poly {
		if ic.poly[i].class == cls {
			m.ICHits++
			return ic.poly[i].target
		}
	}
	m.ICMisses++
	target := cls.LookupMethod(d.callee.Name)
	if target == nil {
		return nil
	}
	switch {
	case ic.mega:
	case ic.class == nil:
		ic.class, ic.target = cls, target
	case len(ic.poly) < icPolyMax:
		ic.poly = append(ic.poly, icEntry{cls, target})
	default:
		ic.mega = true
	}
	return target
}

// pushCall performs the common tail of both call handlers, mirroring
// Machine.doCall. Frames come from the machine's pool: a frame popped by a
// return handler is dead (the machine never revisits it, and tracers key
// their state off the live frame's Shadow), so it is recycled here instead
// of allocating a frame and locals slice per call.
func (m *Machine) pushCall(fr *Frame, d *dinstr, callee *ir.Method, recv *Object) error {
	if len(m.frames) >= m.MaxDepth {
		return m.fail(ErrStackOverflow, d.in, fr, "depth %d", len(m.frames))
	}
	if m.Tracer != nil {
		m.Tracer.BeforeCall(d.in, fr, callee, recv)
	}
	var nf *Frame
	if n := len(m.framePool); n > 0 {
		nf = m.framePool[n-1]
		m.framePool = m.framePool[:n-1]
		nf.Method = callee
		if cap(nf.Locals) < callee.NumLocals {
			nf.Locals = make([]Value, callee.NumLocals)
		} else {
			// Argument slots are overwritten below; only the rest needs
			// clearing to erase the previous tenant's values.
			nf.Locals = nf.Locals[:callee.NumLocals]
			clear(nf.Locals[len(d.in.Args):])
		}
		nf.PC = 0
		nf.RetDst = int(d.dst)
		nf.CallIn = d.in
		nf.Shadow = nil
	} else {
		nf = &Frame{
			Method: callee,
			Locals: make([]Value, callee.NumLocals),
			RetDst: int(d.dst),
			CallIn: d.in,
		}
	}
	for i, a := range d.in.Args {
		nf.Locals[i] = fr.Locals[a]
	}
	nf.tab, nf.ics = m.methodTab(callee)
	m.frames = append(m.frames, nf)
	if m.Tracer != nil {
		m.Tracer.EnterMethod(nf, recv)
	}
	return nil
}

func hReturnVal(m *Machine, fr *Frame, d *dinstr) error {
	m.traced(d)
	if m.Tracer != nil {
		m.Tracer.BeforeReturn(d.in, fr)
	}
	ret := fr.Locals[d.a]
	m.frames = m.frames[:len(m.frames)-1]
	if len(m.frames) <= m.loopBase {
		m.lastReturn = ret
		m.framePool = append(m.framePool, fr)
		return nil
	}
	caller := m.frames[len(m.frames)-1]
	if fr.RetDst >= 0 {
		caller.Locals[fr.RetDst] = ret
	}
	if m.Tracer != nil {
		m.Tracer.AfterCall(fr.CallIn, caller, fr.RetDst >= 0)
	}
	caller.PC++
	m.framePool = append(m.framePool, fr)
	return nil
}

func hReturnVoid(m *Machine, fr *Frame, d *dinstr) error {
	m.traced(d)
	if m.Tracer != nil {
		m.Tracer.BeforeReturn(d.in, fr)
	}
	m.frames = m.frames[:len(m.frames)-1]
	if len(m.frames) <= m.loopBase {
		m.lastReturn = Value{}
		m.framePool = append(m.framePool, fr)
		return nil
	}
	caller := m.frames[len(m.frames)-1]
	if m.Tracer != nil {
		m.Tracer.AfterCall(fr.CallIn, caller, false)
	}
	caller.PC++
	m.framePool = append(m.framePool, fr)
	return nil
}

func hNative(m *Machine, fr *Frame, d *dinstr) error {
	traced := m.traced(d)
	v, err := m.doNative(fr, d.in)
	if err != nil {
		return err
	}
	if d.dst >= 0 {
		fr.Locals[d.dst] = v
	}
	if traced {
		m.emitV(d.in, fr, v)
	}
	fr.PC++
	return nil
}

func hBadOp(m *Machine, fr *Frame, d *dinstr) error {
	m.traced(d)
	return m.fail(ErrType, d.in, fr, "unknown opcode")
}
