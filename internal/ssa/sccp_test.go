package ssa

import (
	"testing"

	"lowutil/internal/interp"
	"lowutil/internal/ir"
)

// constAt returns the SCCP constant of the value defined at pc.
func constAt(t *testing.T, f *Func, sc *SCCP, pc int) (Const, bool) {
	t.Helper()
	v := f.DefOf[pc]
	if v == None {
		t.Fatalf("pc %d defines nothing", pc)
	}
	return sc.ConstOf(v)
}

// TestSCCPStraightLine folds a chain of arithmetic.
func TestSCCPStraightLine(t *testing.T) {
	var at int
	_, m := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(0, 6)
		bb.Const(1, 7)
		at = bb.Bin(2, ir.Mul, 0, 1)
		bb.Native(-1, ir.NativePrint, 2)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	sc := RunSCCP(f)
	if c, ok := constAt(t, f, sc, at); !ok || c.I != 42 {
		t.Fatalf("6*7: got (%+v, %v), want 42", c, ok)
	}
}

// TestSCCPUnreachableBranch proves a constant-false branch dead and folds
// the phi at the join to the surviving arm's constant.
func TestSCCPUnreachableBranch(t *testing.T) {
	var deadPC int
	_, m := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(0, 0)
		bb.Const(1, 7)
		j := bb.If(0, ir.Ne, 0, 0) // 0 != 0: never taken
		g := bb.Goto(0)
		bb.Patch(j, bb.PC())
		deadPC = bb.Const(1, 99) // dead arm
		bb.Patch(g, bb.PC())
		bb.Native(-1, ir.NativePrint, 1)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	sc := RunSCCP(f)
	if sc.Executable(deadPC) {
		t.Fatal("constant-false arm should be unexecutable")
	}
	// The join phi for slot 1 must fold to 7 (only the live arm flows).
	join := f.CFG.BlockOf[len(m.Code)-2]
	for _, pv := range f.Phis[join] {
		if f.Vals[pv].Slot != 1 {
			continue
		}
		if c, ok := sc.ConstOf(pv); !ok || c.I != 7 {
			t.Fatalf("join phi: got (%+v, %v), want const 7", c, ok)
		}
		return
	}
	// Pruned SSA may even skip the phi if the dead arm got pruned — but slot 1
	// is live and defined on two CFG paths, so the phi must exist.
	t.Fatal("no phi for slot 1 at join")
}

// TestSCCPDivByZero: x/0 is a runtime error, not a constant; SCCP must not
// fold it and must keep the instruction overdefined.
func TestSCCPDivByZero(t *testing.T) {
	var at int
	_, m := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(0, 6)
		bb.Const(1, 0)
		at = bb.Bin(2, ir.Div, 0, 1)
		bb.Native(-1, ir.NativePrint, 2)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	sc := RunSCCP(f)
	if _, ok := constAt(t, f, sc, at); ok {
		t.Fatal("6/0 must not fold to a constant")
	}
}

// TestSCCPShiftMask: shifts fold with the interpreter's mask-to-63 rule.
func TestSCCPShiftMask(t *testing.T) {
	var at int
	_, m := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(0, 1)
		bb.Const(1, 65) // 65 & 63 == 1
		at = bb.Bin(2, ir.Shl, 0, 1)
		bb.Native(-1, ir.NativePrint, 2)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	sc := RunSCCP(f)
	want := int64(1) << (uint64(65) & 63)
	if c, ok := constAt(t, f, sc, at); !ok || c.I != want {
		t.Fatalf("1<<65: got (%+v, %v), want %d", c, ok, want)
	}
}

// TestSCCPLoopAccumulator: a loop-carried value must not fold (it varies),
// but loop-invariant constants inside the loop must.
func TestSCCPLoopAccumulator(t *testing.T) {
	var accPC, invPC int
	_, m := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(0, 0) // i
		bb.Const(1, 5) // n
		bb.Const(2, 0) // acc
		head := bb.PC()
		exit := bb.If(0, ir.Ge, 1, 0)
		bb.Const(3, 2)
		invPC = bb.Bin(4, ir.Add, 3, 3) // 2+2: loop-invariant constant
		accPC = bb.Bin(2, ir.Add, 2, 4) // acc += 4: varies
		bb.Const(5, 1)
		bb.Bin(0, ir.Add, 0, 5)
		bb.Goto(head)
		bb.Patch(exit, bb.PC())
		bb.Native(-1, ir.NativePrint, 2)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	sc := RunSCCP(f)
	if c, ok := constAt(t, f, sc, invPC); !ok || c.I != 4 {
		t.Fatalf("invariant 2+2: got (%+v, %v), want 4", c, ok)
	}
	if _, ok := constAt(t, f, sc, accPC); ok {
		t.Fatal("loop accumulator must not fold to a constant")
	}
}

// TestSCCPNullCompare: null == null folds; ordered null comparisons do not.
func TestSCCPNullCompare(t *testing.T) {
	var deadPC int
	_, m := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Null(0)
		bb.Null(1)
		bb.Const(2, 1)
		j := bb.If(0, ir.Ne, 1, 0) // null != null: never taken
		g := bb.Goto(0)
		bb.Patch(j, bb.PC())
		deadPC = bb.Const(2, 9)
		bb.Patch(g, bb.PC())
		bb.Native(-1, ir.NativePrint, 2)
		bb.ReturnVoid()
	})
	f := Build(m, nil)
	sc := RunSCCP(f)
	if sc.Executable(deadPC) {
		t.Fatal("null != null arm should be unexecutable")
	}
}

// TestSCCPAgreesWithInterp cross-checks every SCCP constant verdict in every
// workload against a dynamic run: whenever the instruction executed, the
// traced value must equal the predicted constant. This is the semantic
// soundness test for the transfer functions.
func TestSCCPAgreesWithInterp(t *testing.T) {
	forEachWorkload(t, func(t *testing.T, prog *ir.Program) {
		preds := make(map[int]Const) // Instr.ID → predicted constant
		for _, c := range prog.Classes {
			for _, m := range c.Methods {
				f := Build(m, nil)
				sc := RunSCCP(f)
				for pc := range m.Code {
					v := f.DefOf[pc]
					if v == None {
						continue
					}
					if cst, ok := sc.ConstOf(v); ok {
						preds[m.Code[pc].ID] = cst
					}
				}
			}
		}
		mach := interp.New(prog)
		ct := &constTracer{preds: preds}
		mach.Tracer = ct
		if err := mach.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		if ct.failed != "" {
			t.Fatalf("SCCP constant contradicted by execution at %s", ct.failed)
		}
	})
}

// constTracer checks executed destination values against SCCP predictions.
type constTracer struct {
	interp.NopTracer
	preds  map[int]Const
	failed string
}

func (ct *constTracer) Exec(ev *interp.Event) {
	p, ok := ct.preds[ev.In.ID]
	if !ok || ct.failed != "" {
		return
	}
	var bad bool
	if p.IsNull {
		bad = !ev.Val.IsNull()
	} else {
		bad = ev.Val.K != ir.KindInt || ev.Val.I != p.I
	}
	if bad {
		ct.failed = ev.In.String()
	}
}
