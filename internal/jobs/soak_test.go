package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestConcurrentSoak hammers the queue's whole public surface from many
// goroutines at once: submitters under GC pressure (MaxJobs far below the
// submission volume, so terminal records are evicted while new batches
// arrive), a Drain/Resume flipper, and readers spinning on Status,
// BatchStatus, Events, and Stats. The point is the schedule, not any one
// assertion — under `go test -race` this patrols the locking around the
// drain/restart critical section (a Resume racing a Drain once double-
// started the dispatcher pool) and the record GC. Wall-clock bounded, with
// a tighter budget under -short.
func TestConcurrentSoak(t *testing.T) {
	dur := 1500 * time.Millisecond
	if testing.Short() {
		dur = 300 * time.Millisecond
	}
	exec := &countExec{fail: func(spec Spec, call int64) error {
		// The end-of-test liveness probe must succeed deterministically;
		// every soak job takes a fault roughly every 17th execution.
		if call%17 == 0 && spec.Source != "soak final probe" {
			return errors.New("injected transient failure")
		}
		return nil
	}}
	q := New(Config{
		Executor:    exec,
		Shards:      4,
		Workers:     4,
		Depth:       4096,
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		MaxJobs:     64,
		MaxResults:  32,
	})

	stop := make(chan struct{})
	time.AfterFunc(dur, func() { close(stop) })
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	var (
		wg        sync.WaitGroup
		submitted atomic.Int64
		sampleMu  sync.Mutex
		sampleID  string
		sampleBat string
	)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stopped(); i++ {
				key := fmt.Sprintf("soak-%d-%d", g, i)
				reqs := []Request{{Spec: testSpec(fmt.Sprintf("src %d %d", g, i))}}
				if i%3 == 0 {
					reqs = append(reqs, Request{Spec: testSpec(fmt.Sprintf("src %d %d b", g, i))})
				}
				batch, subs, err := q.Submit(key, reqs)
				if errors.Is(err, ErrQueueFull) {
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					t.Errorf("submit %s: %v", key, err)
					return
				}
				submitted.Add(int64(len(subs)))
				sampleMu.Lock()
				sampleID, sampleBat = subs[0].ID, batch
				sampleMu.Unlock()
			}
		}(g)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stopped() {
			q.Drain()
			time.Sleep(time.Millisecond)
			q.Resume()
			time.Sleep(3 * time.Millisecond)
		}
	}()

	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped() {
				q.Stats()
				sampleMu.Lock()
				id, batch := sampleID, sampleBat
				sampleMu.Unlock()
				if id == "" {
					continue
				}
				q.Status(id)
				q.BatchStatus(batch)
				ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
				_ = q.Events(ctx, id, 0, func(Event) error { return nil })
				cancel()
				time.Sleep(time.Millisecond)
			}
		}()
	}

	wg.Wait()

	// The flipper may have exited right after a Drain; Resume is a no-op on
	// a running queue, so this always leaves the workers up.
	q.Resume()

	// Liveness: after the churn, a fresh job still runs to completion and
	// the accounting still balances.
	_, subs, err := q.Submit("soak-final", []Request{{Spec: testSpec("soak final probe")}})
	if err != nil {
		t.Fatalf("final submit: %v", err)
	}
	submitted.Add(1)
	st := waitTerminal(t, q, subs[0].ID)
	if st.State != StateDone {
		t.Errorf("final job state = %s, want %s (error %+v)", st.State, StateDone, st.Err)
	}
	// Drain before checking the books: it waits for the workers to exit, so
	// no job is mid-transition between the queued/running/completed
	// counters when the snapshot is taken.
	q.Drain()
	stats := q.Stats()
	if stats.Submitted != submitted.Load() {
		t.Errorf("stats.Submitted = %d, want %d", stats.Submitted, submitted.Load())
	}
	if got := stats.Completed + stats.Failed + stats.Queued + stats.Running; got != stats.Submitted {
		t.Errorf("job accounting leaks: done %d + failed %d + queued %d + running %d != submitted %d",
			stats.Completed, stats.Failed, stats.Queued, stats.Running, stats.Submitted)
	}
}
