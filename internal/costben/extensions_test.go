package costben

import (
	"testing"

	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/profiler"
)

// TestMultiHopCostCrossesHeapBoundaries: with hops=1 the expensive producer
// hidden behind a heap load is excluded (the single-hop shortsightedness the
// paper describes); with hops=2 it is included.
func TestMultiHopCostCrossesHeapBoundaries(t *testing.T) {
	p, _, prog := profiled(t, `
class A { int x; }
class B { int y; }
class Main {
  static void main() {
    A a = new A();
    a.x = expensive(500);
    B b = new B();
    b.y = a.x + 1;        // one cheap hop away from the 500-loop
    print(b.y);
  }
  static int expensive(int n) {
    int s = 0;
    for (int i = 0; i < n; i = i + 1) { s = s + i; }
    return s;
  }
}`, 16)
	an := NewAnalysis(p.G)
	bAlloc := allocNode(t, p, prog, siteOfNthNew(prog, "B", 0))
	var fy *ir.Field
	for _, c := range prog.Classes {
		for _, f := range c.Fields {
			if f.Name == "y" {
				fy = f
			}
		}
	}
	loc := depgraph.Loc{Alloc: bAlloc, Field: fy.ID}

	oneHop := an.RACK(loc, 1)
	twoHop := an.RACK(loc, 2)
	if oneHop != an.RAC(loc) {
		t.Errorf("RACK(1) = %v must equal RAC = %v", oneHop, an.RAC(loc))
	}
	if oneHop >= 500 {
		t.Errorf("one-hop cost %v should exclude the 500-loop", oneHop)
	}
	if twoHop < 500 {
		t.Errorf("two-hop cost %v should include the 500-loop", twoHop)
	}
	if an.RACK(loc, 3) < twoHop {
		t.Errorf("cost must be monotone in hops")
	}
}

// TestMultiHopBenefitSeesThroughStores: a value copied into an intermediate
// structure and then consumed has trivial one-hop benefit but real two-hop
// benefit — the paper's "ultimately-dead … considered appropriately used
// because it is indeed involved in complex computations within the one hop"
// issue, inverted.
func TestMultiHopBenefitSeesThroughStores(t *testing.T) {
	p, _, prog := profiled(t, `
class A { int x; }
class B { int y; }
class Main {
  static void main() {
    A a = new A();
    a.x = 7;
    B b = new B();
    int t = a.x;
    b.y = t;              // one-hop benefit of a.x ends here
    int u = b.y;
    int v = u * 3 + 1;    // two-hop benefit includes this
    int w = v * v;
    print(w);
  }
}`, 16)
	an := NewAnalysis(p.G)
	aAlloc := allocNode(t, p, prog, siteOfNthNew(prog, "A", 0))
	var fx *ir.Field
	for _, c := range prog.Classes {
		for _, f := range c.Fields {
			if f.Name == "x" {
				fx = f
			}
		}
	}
	loc := depgraph.Loc{Alloc: aAlloc, Field: fx.ID}
	oneHop := an.RABK(loc, 1)
	twoHop := an.RABK(loc, 2)
	if oneHop == InfiniteRAB {
		t.Fatalf("one-hop benefit should be finite (value parked in b.y)")
	}
	if twoHop != InfiniteRAB {
		t.Errorf("two-hop benefit should reach print and be infinite, got %v", twoHop)
	}
}

// TestCacheEffectiveness: a memo table reused many times is an effective
// cache; the same table written per request and read once is not.
func TestCacheEffectiveness(t *testing.T) {
	p, _, prog := profiled(t, `
class Memo { int[] vals; }
class Main {
  static int compute(int k) {
    int s = 0;
    for (int i = 0; i < 100; i = i + 1) { s = s + i * k; }
    return s;
  }
  static void main() {
    Memo good = new Memo();
    good.vals = new int[4];
    // Fill once (4 stores), read many times (200 loads).
    for (int k = 0; k < 4; k = k + 1) { good.vals[k] = compute(k); }
    int acc = 0;
    for (int r = 0; r < 50; r = r + 1) {
      for (int k = 0; k < 4; k = k + 1) { acc = acc + good.vals[k]; }
    }

    Memo bad = new Memo();
    bad.vals = new int[4];
    // Written on every round, read once at the end.
    for (int r = 0; r < 50; r = r + 1) {
      for (int k = 0; k < 4; k = k + 1) { bad.vals[k] = compute(k + r); }
    }
    acc = acc + bad.vals[0];
    print(acc);
  }
}`, 16)
	an := NewAnalysis(p.G)
	goodAlloc := p.G.NodesOf(prog.AllocSites[siteOfNthNewArray(prog, 0)])
	badAlloc := p.G.NodesOf(prog.AllocSites[siteOfNthNewArray(prog, 1)])
	if len(goodAlloc) != 1 || len(badAlloc) != 1 {
		t.Fatalf("alloc nodes: %d, %d", len(goodAlloc), len(badAlloc))
	}
	goodLoc := depgraph.Loc{Alloc: goodAlloc[0], Field: depgraph.ElemField}
	badLoc := depgraph.Loc{Alloc: badAlloc[0], Field: depgraph.ElemField}

	good := an.CacheAnalysis(goodLoc)
	bad := an.CacheAnalysis(badLoc)

	if good.Stores != 4 || good.Loads != 200 {
		t.Errorf("good cache counts: %d stores, %d loads", good.Stores, good.Loads)
	}
	if bad.Stores != 200 || bad.Loads != 1 {
		t.Errorf("bad cache counts: %d stores, %d loads", bad.Stores, bad.Loads)
	}
	if good.Effectiveness() <= 1 {
		t.Errorf("good cache effectiveness = %v, want > 1\n%v", good.Effectiveness(), good)
	}
	if bad.Effectiveness() >= 0.5 {
		t.Errorf("bad cache effectiveness = %v, want < 0.5\n%v", bad.Effectiveness(), bad)
	}
	if good.Effectiveness() <= 10*bad.Effectiveness() {
		t.Errorf("separation too weak: good %v vs bad %v", good.Effectiveness(), bad.Effectiveness())
	}
}

func siteOfNthNewArray(prog *ir.Program, n int) int {
	for _, in := range prog.Instrs {
		if in.Op == ir.OpNewArray {
			if n == 0 {
				return in.AllocSite
			}
			n--
		}
	}
	return -1
}

// TestControlTrackingIncludesPredicateCost: with TrackControl, values
// computed under a condition inherit the cost of deciding it.
func TestControlTrackingIncludesPredicateCost(t *testing.T) {
	src := `
class B { int y; }
class Main {
  static void main() {
    B b = new B();
    int guard = 0;
    for (int i = 0; i < 200; i = i + 1) { guard = guard + i; }  // decision work
    if (guard > 10) {
      b.y = 5;           // cheap value under an expensive decision
    }
    print(b.y);
  }
}`
	costWith := func(control bool) float64 {
		prog, err := mjcCompile(t, src)
		if err != nil {
			t.Fatal(err)
		}
		p := profiler.New(prog, profiler.Options{Slots: 16, TrackControl: control})
		m := interp.New(prog)
		m.Tracer = p
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		an := NewAnalysis(p.G)
		var loc depgraph.Loc
		p.G.Locs(func(l depgraph.Loc) {
			if l.Alloc != nil && l.Field >= 0 {
				loc = l
			}
		})
		return an.RAC(loc)
	}
	ignoring := costWith(false)
	considering := costWith(true)
	if ignoring >= 100 {
		t.Errorf("without control tracking, RAC(b.y) = %v should exclude the guard loop", ignoring)
	}
	if considering < 200 {
		t.Errorf("with control tracking, RAC(b.y) = %v should include the guard loop", considering)
	}
}

func mjcCompile(t *testing.T, src string) (*ir.Program, error) {
	t.Helper()
	return compileSrc(src)
}
