package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lowutil/internal/fuzzgen"
)

// cmdFuzz runs the randomized differential harness: seeded MJ program
// generation, the full invariant suite on each program, and greedy
// shrinking of any failure. With -n alone the run — and its stdout — is a
// pure function of the seed, so two invocations with the same seed are
// byte-identical; -minutes time-boxes the run instead (or additionally,
// whichever bound hits first).
func cmdFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "root seed; program i uses a seed derived from (seed, i)")
	n := fs.Int("n", 100, "number of programs to generate (0 with -minutes: until the deadline)")
	minutes := fs.Float64("minutes", 0, "time box in minutes (0: run exactly -n programs)")
	maxFail := fs.Int("max-failures", 3, "stop after this many failing programs")
	jsonOut := fs.Bool("json", false, "emit the summary as JSON")
	verbose := fs.Bool("v", false, "progress lines to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("fuzz takes no positional arguments")
	}
	if *n <= 0 && *minutes <= 0 {
		return fmt.Errorf("need -n > 0 or -minutes > 0")
	}

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}
	sum := fuzzgen.Run(fuzzgen.Options{
		Seed:        *seed,
		N:           *n,
		Deadline:    time.Duration(*minutes * float64(time.Minute)),
		MaxFailures: *maxFail,
		Log:         progress,
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			return err
		}
	} else {
		fmt.Printf("fuzz: seed=%d programs=%d checks=%d failures=%d\n",
			sum.Seed, sum.Programs, sum.Checks, len(sum.Failures))
		for _, name := range sum.Invariants {
			fmt.Printf("  %-22s %d\n", name, sum.PerCheck[name])
		}
		for _, f := range sum.Failures {
			fmt.Printf("\nFAIL seed=%d (program %d) invariant=%s\n  %s\n"+
				"--- shrunk reproducer (replay: lowutil fuzz -seed %d -n %d) ---\n%s",
				f.Seed, f.Index, f.Invariant, f.Detail, sum.Seed, f.Index+1, f.Shrunk)
		}
	}
	if len(sum.Failures) > 0 {
		return fmt.Errorf("%d invariant violation(s)", len(sum.Failures))
	}
	return nil
}
