package staticanalysis

import "lowutil/internal/ir"

// Liveness is the per-method backward liveness of local slots. A slot is
// live at a point when some path from the point reads it before writing it.
// Base-pointer reads count as reads here — liveness answers "does this slot's
// current value matter to execution", not the thin-slicing question (that is
// DefUse's job).
type Liveness struct {
	Method *ir.Method
	CFG    *ir.CFG
	sol    *Solution
}

// NewLiveness computes liveness for m over cfg (pass nil to build a fresh
// CFG).
func NewLiveness(m *ir.Method, cfg *ir.CFG) *Liveness {
	if cfg == nil {
		cfg = ir.NewCFG(m)
	}
	nb := cfg.NumBlocks()
	p := &Problem{
		CFG:      cfg,
		Bits:     m.NumLocals,
		Backward: true,
		Gen:      make([]BitSet, nb),
		Kill:     make([]BitSet, nb),
	}
	for b := 0; b < nb; b++ {
		gen := NewBitSet(m.NumLocals)
		kill := NewBitSet(m.NumLocals)
		blk := &cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			in := &m.Code[pc]
			in.Uses(func(s int, _ bool) {
				if !kill.Has(s) {
					gen.Set(s)
				}
			})
			if d := in.Def(); d >= 0 {
				kill.Set(d)
			}
		}
		p.Gen[b] = gen
		p.Kill[b] = kill
	}
	return &Liveness{Method: m, CFG: cfg, sol: Solve(p)}
}

// LiveIn returns the live set at block b's entry. The returned set is the
// solver's own; callers must not mutate it.
func (lv *Liveness) LiveIn(b int) BitSet { return lv.sol.In[b] }

// LiveOut returns the live set at block b's exit.
func (lv *Liveness) LiveOut(b int) BitSet { return lv.sol.Out[b] }

// LiveOutAt returns the set of slots live immediately after pc, computed by
// walking pc's block backward from its live-out set. The returned set is
// fresh and owned by the caller.
func (lv *Liveness) LiveOutAt(pc int) BitSet {
	b := lv.CFG.BlockOf[pc]
	blk := &lv.CFG.Blocks[b]
	live := NewBitSet(lv.Method.NumLocals)
	live.CopyFrom(lv.sol.Out[b])
	for i := blk.End - 1; i > pc; i-- {
		in := &lv.Method.Code[i]
		if d := in.Def(); d >= 0 {
			live.Clear(d)
		}
		in.Uses(func(s int, _ bool) { live.Set(s) })
	}
	return live
}
