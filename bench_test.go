// Benchmarks regenerating the paper's evaluation artifacts. Each table and
// figure has a bench (plus tests in internal/evalharness and
// internal/casestudies that assert the shapes):
//
//   - Table 1 columns O(×): BenchmarkOverhead_* (baseline vs. profiled wall
//     clock per workload; the ratio is the overhead column)
//   - Table 1 columns #N/#E/M/CR and part (c): BenchmarkTable1 (reported as
//     custom metrics)
//   - §4.2 case studies: BenchmarkCaseStudy_* (bloated vs. optimized; the
//     ratio is the paper's improvement)
//   - Figure 1: BenchmarkFigure1_TaintVsSlicing
//   - §3.2/§4.1 ablations: BenchmarkThinVsTraditional,
//     BenchmarkAbstractVsConcrete, BenchmarkPhaseRestricted
//   - analysis costs: BenchmarkCostBenefitAnalysis, BenchmarkDeadness
package lowutil

import (
	"context"
	"testing"

	"lowutil/internal/casestudies"
	"lowutil/internal/costben"
	"lowutil/internal/deadness"
	"lowutil/internal/depgraph"
	"lowutil/internal/escape"
	"lowutil/internal/interp"
	"lowutil/internal/interproc"
	"lowutil/internal/ir"
	"lowutil/internal/mjc"
	"lowutil/internal/profiler"
	"lowutil/internal/ssa"
	"lowutil/internal/staticanalysis"
	"lowutil/internal/taint"
	"lowutil/internal/testprogs"
	"lowutil/internal/workloads"
)

const benchScale = 1

func mustCompileWorkload(b *testing.B, name string) *ir.Program {
	b.Helper()
	w := workloads.ByName(name)
	if w == nil {
		b.Fatalf("unknown workload %s", name)
	}
	prog, err := w.Compile(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func runBaseline(b *testing.B, prog *ir.Program) {
	b.Helper()
	var steps int64
	for i := 0; i < b.N; i++ {
		m := interp.New(prog)
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		steps = m.Steps
	}
	b.ReportMetric(float64(steps), "instrs/run")
}

func runProfiled(b *testing.B, prog *ir.Program, opts profiler.Options) *profiler.Profiler {
	b.Helper()
	b.ReportAllocs()
	var p *profiler.Profiler
	for i := 0; i < b.N; i++ {
		p = profiler.New(prog, opts)
		m := interp.New(prog)
		m.Tracer = p
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.G.NumNodes()), "nodes")
	b.ReportMetric(float64(p.G.NumDepEdges()), "edges")
	return p
}

// ---- Table 1: overhead (O column). The profiled/baseline ns-per-op ratio
// for each workload is the paper's overhead factor. ----

func BenchmarkOverhead(b *testing.B) {
	for _, w := range workloads.All() {
		prog := mustCompileWorkload(b, w.Name)
		b.Run(w.Name+"/baseline", func(b *testing.B) { runBaseline(b, prog) })
		b.Run(w.Name+"/profiled_s16", func(b *testing.B) {
			runProfiled(b, prog, profiler.Options{Slots: 16})
		})
	}
}

// BenchmarkDispatch isolates the event-emission cost of the handler-table
// engine: a NopTracer forces the full emit path (event record fill +
// interface call) with no profiling work behind it. The difference against
// the baseline series is the pure dispatch tax; the difference between
// profiled_s16 and this is the profiler's own hot-path cost.
func BenchmarkDispatch(b *testing.B) {
	for _, name := range []string{"chart", "bloat", "sunflow"} {
		prog := mustCompileWorkload(b, name)
		b.Run(name+"/nop_tracer", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := interp.New(prog)
				m.Tracer = interp.NopTracer{}
				if err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNodeIntern isolates the dense intern table: repeated Touch of the
// same (instruction, context) pairs, the innermost operation of the online
// profiler.
func BenchmarkNodeIntern(b *testing.B) {
	prog := mustCompileWorkload(b, "chart")
	var instrs []*ir.Instr
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			for i := range m.Code {
				instrs = append(instrs, &m.Code[i])
			}
		}
	}
	if len(instrs) == 0 {
		b.Fatal("no instructions")
	}
	b.Run("dense", func(b *testing.B) {
		g := depgraph.NewSized(prog, 15, false)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.TouchFast(instrs[i%len(instrs)], i&15)
		}
	})
	b.Run("legacy", func(b *testing.B) {
		g := depgraph.NewSized(prog, 15, true)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Touch(instrs[i%len(instrs)], i&15)
		}
	})
}

// ---- Table 1: graph characteristics and part (c), as custom metrics ----

func BenchmarkTable1(b *testing.B) {
	for _, w := range workloads.All() {
		w := w
		b.Run(w.Name, func(b *testing.B) {
			prog, err := w.Compile(benchScale)
			if err != nil {
				b.Fatal(err)
			}
			var p *profiler.Profiler
			var m *interp.Machine
			for i := 0; i < b.N; i++ {
				p = profiler.New(prog, profiler.Options{Slots: 16, TrackCR: true})
				m = interp.New(prog)
				m.Tracer = p
				if err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
			dead := deadness.Analyze(p.G, m.Steps)
			b.ReportMetric(float64(p.G.NumNodes()), "N")
			b.ReportMetric(float64(p.G.NumDepEdges()), "E")
			b.ReportMetric(float64(p.G.ApproxBytes())/1024, "M_KB")
			b.ReportMetric(p.CR().AverageCR(), "CR")
			b.ReportMetric(float64(m.Steps), "I")
			b.ReportMetric(dead.IPD(), "IPD_pct")
			b.ReportMetric(dead.IPP(), "IPP_pct")
			b.ReportMetric(dead.NLD(), "NLD_pct")
		})
	}
}

// ---- §4.2 case studies: bloated vs. optimized ----

func BenchmarkCaseStudy(b *testing.B) {
	for _, cs := range casestudies.All() {
		cs := cs
		for _, variant := range []string{"bloated", "optimized"} {
			variant := variant
			b.Run(cs.Name+"/"+variant, func(b *testing.B) {
				src := cs.Bloated(benchScale)
				if variant == "optimized" {
					src = cs.Optimized(benchScale)
				}
				prog, err := mjc.Compile(src)
				if err != nil {
					b.Fatal(err)
				}
				var work int64
				for i := 0; i < b.N; i++ {
					m := interp.New(prog)
					if err := m.Run(); err != nil {
						b.Fatal(err)
					}
					work = m.Steps + m.NativeWork
				}
				b.ReportMetric(float64(work), "work/run")
			})
		}
	}
}

// ---- Figure 1: taint-like tracking vs. dependence-graph cost ----

func BenchmarkFigure1_TaintVsSlicing(b *testing.B) {
	fig := testprogs.Figure1()
	b.Run("taint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr := taint.New(fig.Prog)
			m := interp.New(fig.Prog)
			m.Tracer = tr
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("abstract_slicing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := profiler.New(fig.Prog, profiler.Options{Slots: 8})
			m := interp.New(fig.Prog)
			m.Tracer = p
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- §3.2 ablation: thin vs. traditional slicing ----

func BenchmarkThinVsTraditional(b *testing.B) {
	prog := mustCompileWorkload(b, "xalan")
	b.Run("thin", func(b *testing.B) {
		p := runProfiled(b, prog, profiler.Options{Slots: 16})
		_ = p
	})
	b.Run("traditional", func(b *testing.B) {
		p := runProfiled(b, prog, profiler.Options{Slots: 16, Traditional: true})
		_ = p
	})
}

// ---- §2.1 ablation: bounded abstract domain vs. per-instance nodes ----

func BenchmarkAbstractVsConcrete(b *testing.B) {
	prog := mustCompileWorkload(b, "chart")
	b.Run("abstract_s16", func(b *testing.B) {
		runProfiled(b, prog, profiler.Options{Slots: 16})
	})
	b.Run("unabstracted", func(b *testing.B) {
		runProfiled(b, prog, profiler.Options{Unabstracted: true})
	})
}

// ---- §4.1: phase-restricted tracking ----

func BenchmarkPhaseRestricted(b *testing.B) {
	prog := mustCompileWorkload(b, "tradebeans")
	b.Run("whole_program", func(b *testing.B) {
		runProfiled(b, prog, profiler.Options{Slots: 16})
	})
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := profiler.New(prog, profiler.Options{Slots: 16})
			p.SetEnabled(false)
			m := interp.New(prog)
			m.Tracer = p
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- analysis costs over a finished graph ----

func BenchmarkCostBenefitAnalysis(b *testing.B) {
	prog := mustCompileWorkload(b, "eclipse")
	p := profiler.New(prog, profiler.Options{Slots: 16})
	m := interp.New(prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		cfg  costben.Config
	}{
		{"frozen", costben.Config{}},
		{"legacy", costben.Config{Legacy: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := costben.NewAnalysisWith(p.G, mode.cfg)
				ranked := a.RankBySite(costben.DefaultTreeHeight)
				if len(ranked) == 0 {
					b.Fatal("empty ranking")
				}
			}
		})
	}
}

func BenchmarkDeadness(b *testing.B) {
	prog := mustCompileWorkload(b, "bloat")
	p := profiler.New(prog, profiler.Options{Slots: 16})
	m := interp.New(prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	p.G.Freeze() // the snapshot is part of the analysis input, not the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := deadness.Analyze(p.G, m.Steps)
		if res.Nodes == 0 {
			b.Fatal("empty analysis")
		}
	}
}

// ---- cancellation-check overhead on the profiler hot path ----

// BenchmarkCancelCheck measures what the periodic context poll in the
// interpreter main loop costs a profiled run: nil Ctx (the poll compiles
// to a nil check per masked step) vs a live, never-canceled context (one
// channel select every 8192 steps). The serve acceptance bound is <= 2%.
func BenchmarkCancelCheck(b *testing.B) {
	prog := mustCompileWorkload(b, "chart")
	run := func(b *testing.B, ctx context.Context) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			p := profiler.New(prog, profiler.Options{Slots: 16})
			m := interp.New(prog)
			m.Tracer = p
			m.Ctx = ctx
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("no_ctx", func(b *testing.B) { run(b, nil) })
	b.Run("live_ctx", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		run(b, ctx)
	})
}

// ---- raw VM speed, for context ----

func BenchmarkInterpreterRaw(b *testing.B) {
	prog := mustCompileWorkload(b, "avrora")
	var steps int64
	for i := 0; i < b.N; i++ {
		m := interp.New(prog)
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		steps += m.Steps
	}
	b.ReportMetric(float64(steps)/float64(b.Elapsed().Seconds())/1e6, "Minstr/s")
}

// ---- interprocedural static analysis costs (no execution) ----

func BenchmarkPointsTo(b *testing.B) {
	prog := mustCompileWorkload(b, "eclipse")
	for _, cfg := range []struct {
		name string
		c    interproc.Config
	}{
		{"rta", interproc.Config{Mode: interproc.RTA}},
		{"rta_objctx", interproc.Config{Mode: interproc.RTA, ObjCtx: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var pt *interproc.PointsTo
			for i := 0; i < b.N; i++ {
				cg := interproc.NewCallGraph(prog, cfg.c.Mode)
				pt = interproc.NewPointsTo(prog, cg, cfg.c)
			}
			b.ReportMetric(float64(pt.NumObjects()), "objects")
			b.ReportMetric(pt.AvgPTSize(), "avg_pt")
		})
	}
}

func BenchmarkStaticSlice(b *testing.B) {
	prog := mustCompileWorkload(b, "eclipse")
	for _, cfg := range []struct {
		name string
		c    interproc.Config
	}{
		{"cha", interproc.Config{Mode: interproc.CHA}},
		{"rta_objctx", interproc.Config{Mode: interproc.RTA, ObjCtx: true}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			var an *interproc.Analysis
			for i := 0; i < b.N; i++ {
				an = interproc.Analyze(prog, cfg.c)
			}
			b.ReportMetric(float64(an.Slice.NumDeps()), "dep_edges")
			b.ReportMetric(float64(an.Slice.NumLocs()), "locs")
		})
	}
}

func BenchmarkInterprocPrune(b *testing.B) {
	prog := mustCompileWorkload(b, "eclipse")
	b.Run("intraproc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, st := staticanalysis.PruneSet(prog); st.Candidates == 0 {
				b.Fatal("no candidates")
			}
		}
	})
	b.Run("interproc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			an := interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA})
			if _, st := staticanalysis.PruneSetWith(prog, an.Sum); st.Candidates == 0 {
				b.Fatal("no candidates")
			}
		}
	})
}

// ---- SSA pipeline costs: construction, sparse conditional constant
// propagation, and the loop forest with trip inference — the machinery
// behind the frequency-weighted static bounds and the SSA vet engine. ----

func BenchmarkSSAConstruct(b *testing.B) {
	prog := mustCompileWorkload(b, "eclipse")
	b.ReportAllocs()
	vals := 0
	for i := 0; i < b.N; i++ {
		vals = 0
		for _, c := range prog.Classes {
			for _, m := range c.Methods {
				vals += ssa.Build(m, nil).NumVals()
			}
		}
	}
	b.ReportMetric(float64(vals), "ssa_vals")
}

func BenchmarkSCCP(b *testing.B) {
	prog := mustCompileWorkload(b, "eclipse")
	var funcs []*ssa.Func
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			funcs = append(funcs, ssa.Build(m, nil))
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	consts := 0
	for i := 0; i < b.N; i++ {
		consts = 0
		for _, f := range funcs {
			consts += ssa.RunSCCP(f).NumConsts()
		}
	}
	b.ReportMetric(float64(consts), "consts")
}

func BenchmarkLoopForest(b *testing.B) {
	prog := mustCompileWorkload(b, "eclipse")
	type pair struct {
		f  *ssa.Func
		sc *ssa.SCCP
	}
	var pairs []pair
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			f := ssa.Build(m, nil)
			pairs = append(pairs, pair{f, ssa.RunSCCP(f)})
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	loops := 0
	for i := 0; i < b.N; i++ {
		loops = 0
		for _, p := range pairs {
			loops += len(ssa.BuildForest(p.f, p.sc).Loops)
		}
	}
	b.ReportMetric(float64(loops), "loops")
}

// BenchmarkVetEngines compares the SSA vet engine against the dense
// bit-vector reference over the same workload.
func BenchmarkVetEngines(b *testing.B) {
	prog := mustCompileWorkload(b, "eclipse")
	b.Run("ssa", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			staticanalysis.Vet(prog)
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			staticanalysis.VetDense(prog)
		}
	})
}

// ---- Static audit costs: the escape/lifetime analysis itself, the
// facade's rendered `lowutil audit` report, and the escape-shape vet
// lints (confined-alloc-in-loop, copy-chain) layered onto the vet suite. ----

func BenchmarkEscapeAnalysis(b *testing.B) {
	prog := mustCompileWorkload(b, "eclipse")
	an := interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA})
	b.ResetTimer()
	b.ReportAllocs()
	var r *escape.Result
	for i := 0; i < b.N; i++ {
		r = escape.Analyze(an)
	}
	b.ReportMetric(float64(len(r.Sites)), "sites")
}

func BenchmarkStaticAudit(b *testing.B) {
	p, err := Compile(workloads.ByName("eclipse").Source(benchScale))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	var report string
	for i := 0; i < b.N; i++ {
		report, err = p.StaticAudit(ctx)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(report)), "report_bytes")
}

func BenchmarkVetEscapeLints(b *testing.B) {
	prog := mustCompileWorkload(b, "eclipse")
	an := interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA})
	b.ReportAllocs()
	loops, chains := 0, 0
	for i := 0; i < b.N; i++ {
		loops, chains = 0, 0
		for _, f := range staticanalysis.VetWith(prog, an) {
			switch f.Kind {
			case staticanalysis.KindConfinedAllocInLoop:
				loops++
			case staticanalysis.KindCopyChain:
				chains++
			}
		}
	}
	if loops+chains == 0 {
		b.Fatal("escape lints produced no findings")
	}
	b.ReportMetric(float64(loops), "confined_in_loop")
	b.ReportMetric(float64(chains), "copy_chains")
}
