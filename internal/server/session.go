// Package server implements `lowutil serve`: a concurrent HTTP profiling
// service over the lowutil facade. Long-lived sessions hold compiled
// programs in an LRU cache; per-session profile caches memoize completed
// profiling runs keyed by their full configuration, so repeated queries
// skip recompilation and re-profiling. Every handler threads its request
// context into the facade, which polls it in the interpreter main loop and
// in every static-analysis fixpoint.
package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"lowutil"
)

// sessionKey derives the stable session ID for a compile request: the
// hex-encoded SHA-256 of the entry point and source text.
func sessionKey(src, mainClass, mainMethod string) string {
	h := sha256.New()
	h.Write([]byte(mainClass))
	h.Write([]byte{0})
	h.Write([]byte(mainMethod))
	h.Write([]byte{0})
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// profileKey is the complete profiling configuration a cached run is
// memoized under. Two requests with equal keys are satisfied by one run.
type profileKey struct {
	Slots        int
	TreeHeight   int
	Traditional  bool
	TrackControl bool
	Prune        bool
	Legacy       bool
}

// options expands the key into facade options.
func (k profileKey) options() []lowutil.ProfileOption {
	opts := []lowutil.ProfileOption{
		lowutil.WithSlots(k.Slots),
		lowutil.WithTreeHeight(k.TreeHeight),
	}
	if k.Traditional {
		opts = append(opts, lowutil.WithTraditional())
	}
	if k.TrackControl {
		opts = append(opts, lowutil.WithTrackControl())
	}
	if k.Prune {
		opts = append(opts, lowutil.WithPrune())
	}
	if k.Legacy {
		opts = append(opts, lowutil.WithLegacy())
	}
	return opts
}

// profileEntry latches one profiling run. done closes when prof/err are
// final; mu serializes analysis queries over the shared Profile (the
// legacy analysis path memoizes into unsynchronized maps, and serializing
// report rendering is cheap next to the profiling run itself).
type profileEntry struct {
	done chan struct{}
	prof *lowutil.Profile
	err  error
	mu   sync.Mutex
}

// use runs fn with exclusive access to the entry's profile.
func (e *profileEntry) use(fn func(pr *lowutil.Profile) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return fn(e.prof)
}

// auditKey is the complete static-audit configuration a cached report is
// memoized under. Two requests with equal keys share one analysis.
type auditKey struct {
	Mode   string
	ObjCtx bool
	Top    int
}

// options expands the key into facade options.
func (k auditKey) options() []lowutil.AuditOption {
	opts := []lowutil.AuditOption{lowutil.WithTop(k.Top)}
	if k.Mode != "" {
		opts = append(opts, lowutil.WithMode(k.Mode))
	}
	if k.ObjCtx {
		opts = append(opts, lowutil.WithObjCtx())
	}
	return opts
}

// auditEntry latches one static-audit analysis. done closes when
// report/err are final; the rendered report is immutable afterwards, so
// readers need no lock.
type auditEntry struct {
	done   chan struct{}
	report string
	err    error
}

// Session is one compiled program plus its memoized profiling runs and
// static-audit reports.
type Session struct {
	ID      string
	Created time.Time
	Prog    *lowutil.Program

	mu       sync.Mutex
	profiles map[profileKey]*profileEntry
	audits   map[auditKey]*auditEntry
}

// profile returns the memoized run for key, computing it under ctx on a
// miss. The second result reports a cache hit — true whenever another
// request already created the entry, including one still in flight (the
// caller then waits on the latch instead of burning a second run). A run
// aborted by cancellation is evicted so the next request retries; a waiter
// whose own context is still live retries immediately.
func (s *Session) profile(ctx context.Context, key profileKey) (*profileEntry, bool, error) {
	for {
		s.mu.Lock()
		if s.profiles == nil {
			s.profiles = make(map[profileKey]*profileEntry)
		}
		e, hit := s.profiles[key]
		if !hit {
			e = &profileEntry{done: make(chan struct{})}
			s.profiles[key] = e
		}
		s.mu.Unlock()

		if !hit {
			e.prof, e.err = s.Prog.ProfileContext(ctx, key.options()...)
			if e.err != nil && errors.Is(e.err, lowutil.ErrCanceled) {
				s.mu.Lock()
				if s.profiles[key] == e {
					delete(s.profiles, key)
				}
				s.mu.Unlock()
			}
			close(e.done)
			return e, false, e.err
		}

		select {
		case <-e.done:
			if e.err != nil && errors.Is(e.err, lowutil.ErrCanceled) && ctx.Err() == nil {
				continue // the computing request was canceled, not this one
			}
			return e, true, e.err
		case <-ctx.Done():
			return nil, true, fmt.Errorf("%w: %w", lowutil.ErrCanceled, ctx.Err())
		}
	}
}

// audit returns the memoized static-audit report for key, computing it
// under ctx on a miss. Same latch discipline as profile: a hit may wait on
// an in-flight analysis, a run aborted by cancellation is evicted so the
// next request retries, and a waiter whose own context is still live
// retries immediately.
func (s *Session) audit(ctx context.Context, key auditKey) (*auditEntry, bool, error) {
	for {
		s.mu.Lock()
		if s.audits == nil {
			s.audits = make(map[auditKey]*auditEntry)
		}
		e, hit := s.audits[key]
		if !hit {
			e = &auditEntry{done: make(chan struct{})}
			s.audits[key] = e
		}
		s.mu.Unlock()

		if !hit {
			e.report, e.err = s.Prog.StaticAudit(ctx, key.options()...)
			if e.err != nil && errors.Is(e.err, lowutil.ErrCanceled) {
				s.mu.Lock()
				if s.audits[key] == e {
					delete(s.audits, key)
				}
				s.mu.Unlock()
			}
			close(e.done)
			return e, false, e.err
		}

		select {
		case <-e.done:
			if e.err != nil && errors.Is(e.err, lowutil.ErrCanceled) && ctx.Err() == nil {
				continue // the computing request was canceled, not this one
			}
			return e, true, e.err
		case <-ctx.Done():
			return nil, true, fmt.Errorf("%w: %w", lowutil.ErrCanceled, ctx.Err())
		}
	}
}

// cachedAudits reports how many completed audit reports the session holds.
func (s *Session) cachedAudits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.audits)
}

// cachedProfiles reports how many completed runs the session holds.
func (s *Session) cachedProfiles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.profiles)
}

// sessionCache is a mutex-guarded LRU of compiled sessions.
type sessionCache struct {
	mu  sync.Mutex
	max int
	m   map[string]*list.Element
	lru *list.List // front = most recently used
}

func newSessionCache(max int) *sessionCache {
	if max <= 0 {
		max = 64
	}
	return &sessionCache{max: max, m: make(map[string]*list.Element), lru: list.New()}
}

// get returns the session for id, refreshing its LRU position.
func (c *sessionCache) get(id string) (*Session, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[id]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*Session), true
}

// add inserts sess unless a session with the same ID exists (then the
// existing one wins — the ID is content-addressed, so they are equal).
// It reports whether an insert happened and how many sessions were evicted.
func (c *sessionCache) add(sess *Session) (*Session, bool, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[sess.ID]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*Session), false, 0
	}
	c.m[sess.ID] = c.lru.PushFront(sess)
	evicted := 0
	for c.lru.Len() > c.max {
		back := c.lru.Back()
		c.lru.Remove(back)
		delete(c.m, back.Value.(*Session).ID)
		evicted++
	}
	return sess, true, evicted
}

// len returns the number of live sessions.
func (c *sessionCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
