package client

import "encoding/json"

// Job kinds, matching the service's /v2/jobs vocabulary. Each kind runs
// the same analysis as the synchronous endpoint of the same name.
const (
	KindCompile = "compile"
	KindRun     = "run"
	KindProfile = "profile"
	KindReport  = "report"
	KindSlice   = "slice"
	KindAudit   = "audit"
)

// Spec is one unit of batch work: a program plus the analysis
// configuration. Zero values of optional fields select the service's
// defaults, exactly as in the synchronous endpoints.
type Spec struct {
	Kind       string `json:"kind"`
	Source     string `json:"source"`
	MainClass  string `json:"main_class,omitempty"`
	MainMethod string `json:"main_method,omitempty"`

	// Profiling configuration (kinds profile and report).
	Slots        int  `json:"slots,omitempty"`
	TreeHeight   int  `json:"tree_height,omitempty"`
	Traditional  bool `json:"traditional,omitempty"`
	TrackControl bool `json:"track_control,omitempty"`
	Prune        bool `json:"prune,omitempty"`
	Legacy       bool `json:"legacy,omitempty"`

	// Static-analysis configuration (kinds slice and audit).
	Mode   string `json:"mode,omitempty"`
	ObjCtx bool   `json:"objctx,omitempty"`

	// Top bounds ranked lists in rendered results (0 = the default).
	Top int `json:"top,omitempty"`
}

// Job is one batch submission: a spec plus its scheduling envelope.
type Job struct {
	Spec
	// Priority orders jobs in the queue — higher runs earlier; equal
	// priorities run in submission order.
	Priority int `json:"priority,omitempty"`
	// DeadlineMS bounds the job's total lifetime from submission in
	// milliseconds, across retries (0 = none).
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// Submitted identifies one accepted job. Duplicate reports that the
// submission was answered from an earlier batch with the same key.
type Submitted struct {
	ID        string `json:"id"`
	Index     int    `json:"index"`
	Duplicate bool   `json:"duplicate"`
}

// Batch is an accepted submission: the batch ID plus one entry per job,
// in submission order.
type Batch struct {
	ID   string      `json:"batch"`
	Jobs []Submitted `json:"jobs"`
}

// Result is a completed job's payload: the JSON body the synchronous
// endpoint for the job's kind would have returned on a cold cache.
type Result struct {
	Kind    string          `json:"kind"`
	Payload json.RawMessage `json:"payload"`
}

// Decode unmarshals the payload into out — typically the result type
// matching the job's kind (CompileResult, ProfileResult, ReportResult).
func (r *Result) Decode(out any) error { return json.Unmarshal(r.Payload, out) }

// JobError is a failed job's terminal error, in the service's typed
// envelope shape.
type JobError struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
}

func (e *JobError) Error() string { return e.Message }

// JobStatus is a point-in-time snapshot of one job.
type JobStatus struct {
	ID       string    `json:"id"`
	Batch    string    `json:"batch"`
	Index    int       `json:"index"`
	Kind     string    `json:"kind"`
	State    string    `json:"state"`
	Attempts int       `json:"attempts"`
	Priority int       `json:"priority,omitempty"`
	Events   int       `json:"events"`
	Result   *Result   `json:"result,omitempty"`
	Err      *JobError `json:"error,omitempty"`
}

// Terminal reports whether the job has finished (successfully or not).
func (s *JobStatus) Terminal() bool { return s.State == "done" || s.State == "failed" }

// Event is one entry of a job's progress log. Seq is dense from 1 within
// the job; events carry no timestamps, so any two replays of the same job
// are identical.
type Event struct {
	Seq     int    `json:"seq"`
	Type    string `json:"type"`
	Attempt int    `json:"attempt,omitempty"`
	Detail  string `json:"detail,omitempty"`
}

// CompileResult is the /v2/compile response.
type CompileResult struct {
	Session      string `json:"session"`
	Instructions int    `json:"instructions"`
	CacheHit     bool   `json:"cache_hit"`
}

// ProfileRequest selects a profiling run of a compiled session. Zero
// values mean the service defaults.
type ProfileRequest struct {
	Session      string `json:"session"`
	Slots        int    `json:"slots,omitempty"`
	TreeHeight   int    `json:"tree_height,omitempty"`
	Traditional  bool   `json:"traditional,omitempty"`
	TrackControl bool   `json:"track_control,omitempty"`
	Prune        bool   `json:"prune,omitempty"`
	Legacy       bool   `json:"legacy,omitempty"`
	Top          int    `json:"top,omitempty"`
}

// Finding is one ranked low-utility structure in a profile result.
type Finding struct {
	Site            int     `json:"site"`
	Where           string  `json:"where"`
	Cost            float64 `json:"cost"`
	Benefit         float64 `json:"benefit"`
	Rate            float64 `json:"rate"`
	ReachesConsumer bool    `json:"reaches_consumer"`
	Allocs          int64   `json:"allocs"`
}

// ProfileResult is the /v2/profile response.
type ProfileResult struct {
	Session  string    `json:"session"`
	CacheHit bool      `json:"cache_hit"`
	Steps    int64     `json:"steps"`
	Pruned   int64     `json:"pruned_events,omitempty"`
	Top      []Finding `json:"top"`
}

// ReportResult is the rendered-report response shape shared by /v2/report,
// /v2/slice, and /v2/audit.
type ReportResult struct {
	Session  string `json:"session"`
	CacheHit bool   `json:"cache_hit"`
	Report   string `json:"report"`
}
