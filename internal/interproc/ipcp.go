package interproc

import (
	"lowutil/internal/ir"
	"lowutil/internal/ssa"
)

// Interprocedural sparse conditional constant propagation over the call
// graph, feeding the frequency weights. Per-method SCCP alone must treat
// every parameter as overdefined, which leaves most loop bounds — typically
// threaded through calls as literals — unresolved, so every loop falls back
// to ssa.DefaultTrip and the weighted cost bounds rank by loop *depth*
// rather than by trip count.
//
// The fixpoint here is the classic optimistic one. Every reachable method
// starts unvisited; the entry method runs SCCP first. Each executable call
// site contributes the lattice value of each actual to every resolved
// target's parameter fact: a proven constant stays a constant while all
// executable sites agree, anything else is overdefined. When a method's
// facts drop, its SCCP reruns, which can newly execute call sites or lower
// actuals downstream. Facts only descend and visited only grows, so the
// fixpoint terminates; on it, every fact is justified by all call sites that
// remain executable, which is what makes seeding sound (backed dynamically
// by TestFreqCoversExecution).
type ipcpState struct {
	cg *CallGraph

	info  map[int]*ssa.MethodInfo // last SCCP run per method ID
	facts map[int][]ipcpCell      // parameter lattice per method ID
	seen  map[int]bool            // method ever entered the worklist
}

// ipcpCell is the parameter lattice: unseen (no executable call site yet),
// one known constant, or overdefined.
type ipcpCell struct {
	state uint8 // 0 unseen, 1 constant, 2 overdefined
	c     ssa.Const
}

const (
	ipcpUnseen = iota
	ipcpConst
	ipcpBottom
)

// meet lowers the cell by one call site's actual value; reports change.
func (c *ipcpCell) meet(known bool, v ssa.Const) bool {
	switch {
	case c.state == ipcpBottom:
		return false
	case !known:
		c.state = ipcpBottom
		return true
	case c.state == ipcpUnseen:
		c.state, c.c = ipcpConst, v
		return true
	case c.c != v:
		c.state = ipcpBottom
		return true
	}
	return false
}

func (c ipcpCell) fact() ssa.ParamFact {
	return ssa.ParamFact{Known: c.state == ipcpConst, C: c.c}
}

// ipcpRun computes the fixpoint and returns the per-method analysis results.
// Methods absent from the result are proven never to execute: either
// call-graph-unreachable, or reachable only through call sites SCCP rules
// out.
func ipcpRun(cg *CallGraph) map[int]*ssa.MethodInfo {
	st := &ipcpState{
		cg:    cg,
		info:  make(map[int]*ssa.MethodInfo),
		facts: make(map[int][]ipcpCell),
		seen:  make(map[int]bool),
	}
	for _, m := range cg.Methods() {
		st.facts[m.ID] = make([]ipcpCell, m.Params)
	}
	entry := cg.Prog.Main
	st.seen[entry.ID] = true
	work := []*ir.Method{entry}
	for len(work) > 0 {
		m := work[len(work)-1]
		work = work[:len(work)-1]
		facts := make([]ssa.ParamFact, m.Params)
		for i, c := range st.facts[m.ID] {
			facts[i] = c.fact()
		}
		mi := ssa.AnalyzeMethodSeeded(m, facts)
		st.info[m.ID] = mi
		// Propagate actuals out of every executable call site.
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Op != ir.OpCall || !mi.SCCP.Executable(pc) {
				continue
			}
			for _, t := range cg.Targets(in) {
				tf := st.facts[t.ID]
				changed := false
				ops := mi.F.Operands[pc]
				for i := 0; i < len(ops) && i < t.Params; i++ {
					c, known := mi.SCCP.ConstOf(ops[i])
					if tf[i].meet(known, c) {
						changed = true
					}
				}
				if changed || !st.seen[t.ID] {
					st.seen[t.ID] = true
					work = append(work, t)
				}
			}
		}
	}
	return st.info
}

// ipcpWeights computes the interprocedurally-seeded frequency weights for
// prog: per-block loop-nest weights (with call-graph parameter constants
// feeding the trip counts) scaled by the method's static invocation
// frequency. Instructions of methods the fixpoint never reaches weigh 0 —
// they provably never run.
func ipcpWeights(cg *CallGraph) []float64 {
	info := ipcpRun(cg)
	entry := callFrequencies(cg, info)
	w := make([]float64, len(cg.Prog.Instrs))
	for id, mi := range info {
		m := mi.F.M
		for pc := range m.Code {
			bw := mi.BlockWeight(mi.F.CFG.BlockOf[pc]) * entry[id]
			if bw > ssa.MaxWeight {
				bw = ssa.MaxWeight
			}
			w[m.Code[pc].ID] = bw
		}
	}
	return w
}

// callFrequencies estimates each reached method's invocation frequency, the
// Wu–Larus way: the entry method runs once; every executable call site
// contributes its block's loop-nest weight times the caller's frequency.
// The call graph's SCC condensation is processed in topological order so
// acyclic chains are exact; a recursive component is damped with one
// ssa.DefaultTrip factor for the whole cycle rather than iterated (a fixpoint
// over a cycle of multipliers > 1 would just saturate). Frequencies cap at
// ssa.MaxWeight. Methods never reached by the constant-propagation fixpoint
// get no entry (zero frequency).
func callFrequencies(cg *CallGraph, info map[int]*ssa.MethodInfo) map[int]float64 {
	type edge struct {
		from, to int
		w        float64
	}
	var edges []edge
	succs := make(map[int][]int)
	for id, mi := range info {
		m := mi.F.M
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Op != ir.OpCall || !mi.SCCP.Executable(pc) {
				continue
			}
			bw := mi.BlockWeight(mi.F.CFG.BlockOf[pc])
			for _, t := range cg.Targets(in) {
				if info[t.ID] == nil {
					continue
				}
				edges = append(edges, edge{id, t.ID, bw})
				succs[id] = append(succs[id], t.ID)
			}
		}
	}

	// Tarjan's SCC over the reached methods; comps come out sinks-first.
	index := make(map[int]int)
	low := make(map[int]int)
	onStack := make(map[int]bool)
	compOf := make(map[int]int)
	var stack []int
	var comps [][]int
	next := 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, u := range succs[v] {
			if _, seen := index[u]; !seen {
				strongconnect(u)
				if low[u] < low[v] {
					low[v] = low[u]
				}
			} else if onStack[u] && index[u] < low[v] {
				low[v] = index[u]
			}
		}
		if low[v] == index[v] {
			var comp []int
			for {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[u] = false
				compOf[u] = len(comps)
				comp = append(comp, u)
				if u == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for id := range info {
		if _, seen := index[id]; !seen {
			strongconnect(id)
		}
	}

	// Incoming cross-component contributions, then one pass in topological
	// order (reverse of Tarjan's emission order).
	incoming := make(map[int][]edge) // component → cross edges into it
	cyclic := make([]bool, len(comps))
	for i, comp := range comps {
		cyclic[i] = len(comp) > 1
	}
	for _, e := range edges {
		cf, ct := compOf[e.from], compOf[e.to]
		if cf == ct {
			cyclic[cf] = true // self-recursion or intra-cycle edge
			continue
		}
		incoming[ct] = append(incoming[ct], e)
	}
	entry := make(map[int]float64, len(info))
	mainID := cg.Prog.Main.ID
	for i := len(comps) - 1; i >= 0; i-- {
		ext := 0.0
		for _, e := range incoming[i] {
			ext += entry[e.from] * e.w
		}
		for _, id := range comps[i] {
			if id == mainID {
				ext++
			}
		}
		if cyclic[i] {
			ext *= ssa.DefaultTrip
		}
		if ext > ssa.MaxWeight {
			ext = ssa.MaxWeight
		}
		for _, id := range comps[i] {
			entry[id] = ext
		}
	}
	return entry
}
