package interproc

import (
	"math/bits"

	"lowutil/internal/ir"
)

// methodFlow is the per-method local dataflow the interprocedural analyses
// share: reaching definitions over the CFG, exposed as, for every instruction
// operand, the set of definitions that may have produced the value read.
// Definitions are instruction pcs; each parameter contributes a pseudo-
// definition numbered len(m.Code)+slot, exactly as in
// staticanalysis.ReachingDefs (re-derived here so interproc depends only on
// the IR).
type methodFlow struct {
	m   *ir.Method
	cfg *ir.CFG

	// operands[pc] lists, in Instr.Uses callback order, the reads performed
	// by the instruction with their reaching definitions.
	operands [][]operand
}

// operand is one read performed by an instruction.
type operand struct {
	Slot int
	// Base marks a base-pointer read, which thin slicing excludes from value
	// flow.
	Base bool
	// Defs holds the reaching definitions (pcs, or len(code)+slot pseudo-defs
	// for parameters), ascending.
	Defs []int
}

// isParamDef reports whether def index d of m is a parameter pseudo-def.
func isParamDef(m *ir.Method, d int) bool { return d >= len(m.Code) }

// paramOfDef returns the parameter slot of a pseudo-def.
func paramOfDef(m *ir.Method, d int) int { return d - len(m.Code) }

// newMethodFlow computes reaching definitions for m with a dense bitset
// worklist over the CFG and materializes the per-operand def sets.
func newMethodFlow(m *ir.Method) *methodFlow {
	cfg := ir.NewCFG(m)
	n := len(m.Code)
	ndefs := n + m.Params
	words := (ndefs + 63) / 64

	defsOfSlot := make([][]uint64, m.NumLocals)
	for s := range defsOfSlot {
		defsOfSlot[s] = make([]uint64, words)
	}
	set := func(bs []uint64, i int) { bs[i/64] |= 1 << (i % 64) }
	for pc := range m.Code {
		if d := m.Code[pc].Def(); d >= 0 {
			set(defsOfSlot[d], pc)
		}
	}
	for s := 0; s < m.Params && s < m.NumLocals; s++ {
		set(defsOfSlot[s], n+s)
	}

	nb := cfg.NumBlocks()
	in := make([][]uint64, nb)
	out := make([][]uint64, nb)
	for b := 0; b < nb; b++ {
		in[b] = make([]uint64, words)
		out[b] = make([]uint64, words)
	}
	// Forward union fixpoint; the entry block starts with the parameter
	// pseudo-defs.
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.RPO {
			blk := &cfg.Blocks[b]
			cur := in[b]
			for w := range cur {
				cur[w] = 0
			}
			for _, p := range blk.Preds {
				for w := range cur {
					cur[w] |= out[p][w]
				}
			}
			if b == 0 {
				for s := 0; s < m.Params && s < m.NumLocals; s++ {
					set(cur, n+s)
				}
			}
			tmp := make([]uint64, words)
			copy(tmp, cur)
			for pc := blk.Start; pc < blk.End; pc++ {
				if d := m.Code[pc].Def(); d >= 0 {
					for w := range tmp {
						tmp[w] &^= defsOfSlot[d][w]
					}
					set(tmp, pc)
				}
			}
			same := true
			for w := range tmp {
				if out[b][w] != tmp[w] {
					same = false
				}
			}
			if !same {
				copy(out[b], tmp)
				changed = true
			}
		}
	}

	mf := &methodFlow{m: m, cfg: cfg, operands: make([][]operand, n)}
	cur := make([]uint64, words)
	for _, b := range cfg.RPO {
		blk := &cfg.Blocks[b]
		copy(cur, in[b])
		for pc := blk.Start; pc < blk.End; pc++ {
			inst := &m.Code[pc]
			inst.Uses(func(s int, base bool) {
				op := operand{Slot: s, Base: base}
				for w := 0; w < words; w++ {
					bitsw := cur[w] & defsOfSlot[s][w]
					for bitsw != 0 {
						i := bitsw & (-bitsw)
						bitsw &^= i
						d := w*64 + bits.TrailingZeros64(i)
						op.Defs = append(op.Defs, d)
					}
				}
				mf.operands[pc] = append(mf.operands[pc], op)
			})
			if d := inst.Def(); d >= 0 {
				for w := range cur {
					cur[w] &^= defsOfSlot[d][w]
				}
				set(cur, pc)
			}
		}
	}
	return mf
}
