package escape

import (
	"strings"
	"testing"

	"lowutil/internal/interp"
	"lowutil/internal/interproc"
	"lowutil/internal/ir"
	"lowutil/internal/mjc"
	"lowutil/internal/testprogs"
)

func analyzeSrc(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := mjc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA}))
}

// findSite locates the audit record of the allocation of class className
// inside method methodName.
func findSite(t *testing.T, r *Result, className, methodName string) *SiteInfo {
	t.Helper()
	for i := range r.Sites {
		si := &r.Sites[i]
		if si.Site.Op == ir.OpNew && si.Site.Class.Name == className && si.Site.Method.Name == methodName {
			return si
		}
	}
	t.Fatalf("no allocation of %s in %s", className, methodName)
	return nil
}

const latticeSrc = `
class Box { int v; }
class Holder { Box kept; }
class Main {
  static Box make() {
    Box b = new Box();
    b.v = 1;
    return b;
  }
  static int use(Holder h) {
    Box tmp = new Box();
    tmp.v = 5;
    int r = tmp.v;
    h.kept = make();
    return r;
  }
  static void main() {
    Holder h = new Holder();
    print(use(h));
    print(h.kept.v);
  }
}`

func TestEscapeLattice(t *testing.T) {
	r := analyzeSrc(t, latticeSrc)

	// The Box allocated in make is returned by its allocator and stored into
	// the Holder: arg-escape, confined to the request.
	ret := findSite(t, r, "Box", "make")
	if ret.State != ArgEscape {
		t.Errorf("make's Box: state %v, want %v", ret.State, ArgEscape)
	}
	if ret.Region != ConfinedToRequest {
		t.Errorf("make's Box: region %v, want %v", ret.Region, ConfinedToRequest)
	}

	// The scratch Box in use never leaves its frame.
	tmp := findSite(t, r, "Box", "use")
	if tmp.State != NoEscape {
		t.Errorf("use's tmp: state %v, want %v", tmp.State, NoEscape)
	}
	if tmp.Region != ConfinedToMethod {
		t.Errorf("use's tmp: region %v, want %v", tmp.Region, ConfinedToMethod)
	}

	// The Holder is only ever passed down the stack — passing an object as
	// an argument is not an escape of its own frame.
	h := findSite(t, r, "Holder", "main")
	if h.State != NoEscape {
		t.Errorf("main's Holder: state %v, want %v", h.State, NoEscape)
	}
}

func TestGlobalEscapeThroughStatics(t *testing.T) {
	// KitchenSink stores its Derived instance into a static field — the only
	// front end for static fields is the IR builder.
	prog := testprogs.KitchenSink()
	r := Analyze(interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA}))

	var derived, arr *SiteInfo
	for i := range r.Sites {
		si := &r.Sites[i]
		if si.Site.Op == ir.OpNew && si.Site.Class.Name == "Derived" {
			derived = si
		}
		if si.Site.Op == ir.OpNewArray {
			arr = si
		}
	}
	if derived == nil || arr == nil {
		t.Fatal("KitchenSink sites not found")
	}
	if derived.State != GlobalEscape || derived.Region != LongLived {
		t.Errorf("Derived: %v/%v, want %v/%v", derived.State, derived.Region, GlobalEscape, LongLived)
	}
	// The int array is used locally and never stored anywhere.
	if arr.State != NoEscape {
		t.Errorf("int array: state %v, want %v", arr.State, NoEscape)
	}
}

const chainSrc = `
class Pair { int a; }
class Sink { int total; }
class Main {
  static void main() {
    Sink s = new Sink();
    for (int i = 0; i < 3; i = i + 1) {
      Pair p = new Pair();
      p.a = i * 2;
      int copy = p.a;
      s.total = s.total + copy;
    }
    print(s.total);
  }
}`

func TestCopyChainAndLoopConfinement(t *testing.T) {
	r := analyzeSrc(t, chainSrc)

	p := findSite(t, r, "Pair", "main")
	if !p.CopyChain {
		t.Errorf("Pair: copy-chain not detected (populate, copy-out to Sink, drop)")
	}
	if !p.InLoop {
		t.Errorf("Pair: loop-confined allocation not detected")
	}
	if p.State != NoEscape {
		t.Errorf("Pair: state %v, want %v", p.State, NoEscape)
	}

	s := findSite(t, r, "Sink", "main")
	if s.CopyChain {
		t.Errorf("Sink: spurious copy-chain (its loads feed computations, not foreign stores)")
	}
	if s.InLoop {
		t.Errorf("Sink: allocated outside the loop, must not be loop-confined")
	}
}

func TestReportDeterministic(t *testing.T) {
	r := analyzeSrc(t, latticeSrc)
	a, b := r.Report(10), r.Report(10)
	if a != b {
		t.Fatal("report not deterministic")
	}
	for _, want := range []string{"static audit (mode=rta", "reachable allocation sites", "lifetime:", "shapes:"} {
		if !strings.Contains(a, want) {
			t.Errorf("report missing %q:\n%s", want, a)
		}
	}
}

// tiedSitesSrc is a fuzzer-found reproducer (fuzzgen seed
// 13643710871071028921, shrunk): the two Scratch sites in W1.m1 tie on
// every printed ranking key, so their order is decided by comparing scores
// that sum several per-field float ratios. Folding those ratios in map
// order let the sums drift by an ULP between analyses and swap the tied
// sites; the fold must run in sorted field order.
const tiedSitesSrc = `
class Scratch {
  int sa;
  int sb;
  int sc;
}
class W1 {
  int acc1;
  int m1(int p0, int p1) {
    int v3 = (this.acc1 & p1);
    if ((771 < v3)) {
      Scratch s9 = new Scratch();
      s9.sa = v3;
      s9.sb = (0 - p0);
      s9.sc = (s9.sa + 47);
      W1 r10 = new W1();
    }
    if (((v3 & this.acc1) == (0 - -95))) {
      p0 = p1;
    } else {
      Scratch s13 = new Scratch();
      s13.sa = 209;
      s13.sb = p0;
      s13.sc = (s13.sa + 19);
    }
    return p1;
  }
}
class Main {
  static void main() {
    int total = 0;
    Scratch s20 = new Scratch();
    s20.sa = (-58 / 2);
    W1 r21 = new W1();
    int v22 = r21.m1(r21.acc1, hash(r21.acc1));
    int v25 = r21.m1(hash(v22), v22);
    print(total);
  }
}
`

// TestReportStableAcrossReanalysis pins byte-stability of the audit report
// across independent analyses of the same program, which a
// render-twice-on-one-Result check cannot see.
func TestReportStableAcrossReanalysis(t *testing.T) {
	first := analyzeSrc(t, tiedSitesSrc).Report(10)
	for i := 0; i < 30; i++ {
		if got := analyzeSrc(t, tiedSitesSrc).Report(10); got != first {
			t.Fatalf("analysis %d diverged:\n--- first ---\n%s\n--- now ---\n%s", i, first, got)
		}
	}
}

const observeSrc = `
class Box { int v; }
class Main {
  static Box make() {
    Box b = new Box();
    b.v = 3;
    return b;
  }
  static void main() {
    Box kept = make();
    print(kept.v);
    Box local = new Box();
    local.v = 1;
    print(local.v);
  }
}`

func TestObserverRecordsDynamicEscapes(t *testing.T) {
	prog, err := mjc.Compile(observeSrc)
	if err != nil {
		t.Fatal(err)
	}
	obs := NewObserver()
	m := interp.New(prog)
	m.Tracer = obs
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	r := Analyze(interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA}))
	ret := findSite(t, r, "Box", "make")
	local := findSite(t, r, "Box", "main")

	escaped := map[int]bool{}
	for _, s := range obs.EscapedSites() {
		escaped[s] = true
	}
	if !escaped[ret.Site.AllocSite] {
		t.Errorf("observer missed the returned Box (site %d): escaped=%v",
			ret.Site.AllocSite, obs.EscapedSites())
	}
	if escaped[local.Site.AllocSite] {
		t.Errorf("observer flagged the frame-local Box (site %d)", local.Site.AllocSite)
	}

	// Static must cover dynamic on this program too.
	for _, s := range obs.EscapedSites() {
		si := r.Site(s)
		if si == nil || si.State == NoEscape {
			t.Errorf("dynamically escaped site %d not predicted statically", s)
		}
	}
}
