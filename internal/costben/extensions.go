package costben

// This file implements the design alternatives §3.2 of the paper discusses
// but leaves to future work:
//
//   - multi-hop relative cost/benefit ("costs and benefits for an
//     instruction can be recomputed by traversing multiple heap-to-heap hops
//     on Gcost backward and forward")
//   - cache-effectiveness analysis ("the cost of the cache should include
//     only the instructions executed to create the data structure itself …
//     and the benefit should be (re-)defined as a function of the amount of
//     work cached and the number of times the cached values are used")

import (
	"fmt"

	"lowutil/internal/depgraph"
)

// RACK is the k-hop relative abstract cost of a location: the mean k-hop
// HRAC of its store nodes. RACK(loc, 1) == RAC(loc).
func (a *Analysis) RACK(loc depgraph.Loc, hops int) float64 {
	var sum int64
	n := 0
	a.G.StoresOf(loc, func(s *depgraph.Node) {
		sum += depgraph.HRACK(s, hops)
		n++
	})
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// RABK is the k-hop relative abstract benefit, the forward dual of RACK.
func (a *Analysis) RABK(loc depgraph.Loc, hops int) float64 {
	var sum int64
	n := 0
	infinite := false
	a.G.LoadsOf(loc, func(l *depgraph.Node) {
		s, consumed := depgraph.HRABK(l, hops)
		if consumed {
			infinite = true
		}
		sum += s
		n++
	})
	if infinite {
		return InfiniteRAB
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// NRACK and NRABK aggregate the k-hop metrics over the reference tree, like
// NRAC/NRAB.
func (a *Analysis) NRACK(root *depgraph.Node, height, hops int) float64 {
	v, _ := a.aggregate(root, height, func(loc depgraph.Loc) float64 { return a.RACK(loc, hops) })
	return v
}

// NRABK is the benefit dual of NRACK; consumed fields contribute
// ConsumedRAB, and the flag reports whether any existed.
func (a *Analysis) NRABK(root *depgraph.Node, height, hops int) (float64, bool) {
	return a.aggregate(root, height, func(loc depgraph.Loc) float64 { return a.RABK(loc, hops) })
}

// ---- Cache effectiveness ----

// CacheReport assesses one abstract heap location used as a cache.
//
// Following §3.2: the cache's own cost is the insertion work (the store
// instances themselves), separated from the cost of computing the cached
// values (the rest of the one-hop RAC); the benefit is the recomputation
// avoided — each read returns a value that cost CachedWorkPerStore to
// produce once.
type CacheReport struct {
	Loc depgraph.Loc

	// Stores and Loads are dynamic access counts.
	Stores, Loads int64
	// InsertCost is the frequency mass of the store instructions — the
	// structure-maintenance cost.
	InsertCost int64
	// CachedWork is the one-hop production cost of the stored values,
	// excluding the stores themselves.
	CachedWork float64
}

// CachedWorkPerStore is the mean production cost per cached value.
func (c *CacheReport) CachedWorkPerStore() float64 {
	if c.Stores == 0 {
		return 0
	}
	return c.CachedWork / float64(c.Stores)
}

// AvoidedWork is the total recomputation the cache saved: every load beyond
// the first use of each stored value returns a value that did not have to be
// recomputed.
func (c *CacheReport) AvoidedWork() float64 {
	reuse := c.Loads - c.Stores
	if reuse < 0 {
		reuse = 0
	}
	return float64(reuse) * c.CachedWorkPerStore()
}

// Effectiveness is avoided work divided by total investment (production plus
// insertion). > 1 means the cache pays for itself; ≪ 1 means the location is
// a poor cache — written more than read, or caching cheap values.
func (c *CacheReport) Effectiveness() float64 {
	invest := c.CachedWork + float64(c.InsertCost)
	if invest <= 0 {
		return 0
	}
	return c.AvoidedWork() / invest
}

func (c *CacheReport) String() string {
	return fmt.Sprintf("%s: %d stores, %d loads, cached work %.0f (%.1f/value), avoided %.0f, effectiveness %.2f",
		c.Loc, c.Stores, c.Loads, c.CachedWork, c.CachedWorkPerStore(), c.AvoidedWork(), c.Effectiveness())
}

// CacheAnalysis assesses loc as a cache.
func (a *Analysis) CacheAnalysis(loc depgraph.Loc) *CacheReport {
	rep := &CacheReport{Loc: loc}
	var hracSum int64
	a.G.StoresOf(loc, func(s *depgraph.Node) {
		rep.Stores += s.Freq()
		rep.InsertCost += s.Freq()
		hracSum += a.HRAC(s)
	})
	a.G.LoadsOf(loc, func(l *depgraph.Node) {
		rep.Loads += l.Freq()
	})
	// HRAC includes the store nodes themselves; the cached values' own
	// production cost is the remainder.
	cached := float64(hracSum) - float64(rep.InsertCost)
	if cached < 0 {
		cached = 0
	}
	rep.CachedWork = cached
	return rep
}
