package mjc

import (
	"strings"

	"lowutil/internal/ast"
	"lowutil/internal/ir"
	"lowutil/internal/lexer"
)

// fnCtx is the per-method lowering context.
type fnCtx struct {
	c  *compiler
	cs *classSym
	ms *methodSym
	bb *ir.BodyBuilder

	scope    *scope
	nextSlot int
	loops    []*loopCtx
}

type scope struct {
	vars   map[string]*local
	parent *scope
	mark   int // nextSlot at scope entry
}

type local struct {
	name string
	slot int
	typ  *ir.Type
}

type loopCtx struct {
	breakJumps    []int
	continueJumps []int
}

func (c *compiler) lowerMethod(cs *classSym, md *ast.MethodDecl) error {
	ms := cs.methods[md.Name]
	fn := &fnCtx{
		c:  c,
		cs: cs,
		ms: ms,
		bb: c.b.Body(ms.m),
	}
	fn.scope = &scope{vars: make(map[string]*local)}

	// Bind formals. Instance methods hold the receiver in slot 0.
	names := []string{}
	if !md.Static {
		names = append(names, "this")
		fn.nextSlot = 1
	}
	for i, p := range md.Params {
		if fn.lookupLocal(p.Name) != nil || p.Name == "this" {
			return errf(p.Pos, "duplicate parameter %s", p.Name)
		}
		fn.scope.vars[p.Name] = &local{name: p.Name, slot: fn.nextSlot, typ: ms.params[i]}
		names = append(names, p.Name)
		fn.nextSlot++
	}
	ms.m.LocalNames = names

	if err := fn.lowerBlock(md.Body); err != nil {
		return err
	}
	if ms.returns == nil {
		fn.bb.ReturnVoid()
	} else if !fn.terminates(md.Body) {
		return errf(md.Pos, "method %s.%s: control may reach the end without returning a value",
			cs.decl.Name, md.Name)
	}
	return nil
}

// terminates conservatively reports whether every path through s returns.
func (fn *fnCtx) terminates(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.Block:
		for _, inner := range st.Stmts {
			if fn.terminates(inner) {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		return st.Else != nil && fn.terminates(st.Then) && fn.terminates(st.Else)
	case *ast.WhileStmt:
		// while(true) without break terminates the analysis question in the
		// Java sense, but we stay conservative.
		return false
	default:
		return false
	}
}

func (fn *fnCtx) lookupLocal(name string) *local {
	for s := fn.scope; s != nil; s = s.parent {
		if l, ok := s.vars[name]; ok {
			return l
		}
	}
	return nil
}

func (fn *fnCtx) allocTmp() int {
	s := fn.nextSlot
	fn.nextSlot++
	return s
}

// nameSlot records the source name of a declared variable's slot so
// diagnostics can print it. Scope exit recycles slots, so the first name
// sticks; a later variable reusing the slot keeps the earlier label.
func (fn *fnCtx) nameSlot(slot int, name string) {
	names := fn.ms.m.LocalNames
	for len(names) <= slot {
		names = append(names, "")
	}
	if names[slot] == "" {
		names[slot] = name
	}
	fn.ms.m.LocalNames = names
}

// ---- Statements ----

func (fn *fnCtx) lowerBlock(b *ast.Block) error {
	fn.scope = &scope{vars: make(map[string]*local), parent: fn.scope, mark: fn.nextSlot}
	for _, s := range b.Stmts {
		if err := fn.lowerStmt(s); err != nil {
			return err
		}
	}
	fn.nextSlot = fn.scope.mark
	fn.scope = fn.scope.parent
	return nil
}

func (fn *fnCtx) lowerStmt(s ast.Stmt) error {
	fn.bb.Line(s.StmtPos().Line)
	mark := fn.nextSlot
	switch st := s.(type) {
	case *ast.Block:
		return fn.lowerBlock(st)

	case *ast.VarDecl:
		if _, dup := fn.scope.vars[st.Name]; dup || st.Name == "this" {
			return errf(st.Pos, "duplicate variable %s", st.Name)
		}
		typ, err := fn.c.resolveType(st.Type)
		if err != nil {
			return err
		}
		slot := fn.allocTmp() // permanent: survives the statement reset below
		fn.scope.vars[st.Name] = &local{name: st.Name, slot: slot, typ: typ}
		fn.nameSlot(slot, st.Name)
		if st.Init != nil {
			rs, rt, err := fn.genExpr(st.Init)
			if err != nil {
				return err
			}
			if !fn.c.assignable(typ, rt) {
				return errf(st.Pos, "cannot initialize %s %s with %s", typeName(typ), st.Name, typeName(rt))
			}
			fn.bb.Move(slot, rs)
		} else if typ.IsRef() {
			fn.bb.Null(slot)
		} else {
			fn.bb.Const(slot, 0)
		}
		fn.nextSlot = slot + 1
		return nil

	case *ast.AssignStmt:
		err := fn.lowerAssign(st)
		fn.nextSlot = mark
		return err

	case *ast.IfStmt:
		falseJumps, err := fn.genBranch(st.Cond, false)
		if err != nil {
			return err
		}
		fn.nextSlot = mark
		if err := fn.lowerStmt(st.Then); err != nil {
			return err
		}
		if st.Else == nil {
			fn.patchAll(falseJumps, fn.bb.PC())
			return nil
		}
		g := fn.bb.Goto(-1)
		fn.patchAll(falseJumps, fn.bb.PC())
		if err := fn.lowerStmt(st.Else); err != nil {
			return err
		}
		fn.bb.Patch(g, fn.bb.PC())
		return nil

	case *ast.WhileStmt:
		head := fn.bb.PC()
		falseJumps, err := fn.genBranch(st.Cond, false)
		if err != nil {
			return err
		}
		fn.nextSlot = mark
		lc := &loopCtx{}
		fn.loops = append(fn.loops, lc)
		if err := fn.lowerStmt(st.Body); err != nil {
			return err
		}
		fn.loops = fn.loops[:len(fn.loops)-1]
		fn.patchAll(lc.continueJumps, head)
		fn.bb.Goto(head)
		end := fn.bb.PC()
		fn.patchAll(falseJumps, end)
		fn.patchAll(lc.breakJumps, end)
		return nil

	case *ast.ForStmt:
		// for-init declarations scope to the loop.
		fn.scope = &scope{vars: make(map[string]*local), parent: fn.scope, mark: fn.nextSlot}
		if st.Init != nil {
			if err := fn.lowerStmt(st.Init); err != nil {
				return err
			}
		}
		head := fn.bb.PC()
		var falseJumps []int
		if st.Cond != nil {
			var err error
			falseJumps, err = fn.genBranch(st.Cond, false)
			if err != nil {
				return err
			}
			fn.nextSlot = fn.scope.mark + countDecls(st.Init)
		}
		lc := &loopCtx{}
		fn.loops = append(fn.loops, lc)
		if err := fn.lowerStmt(st.Body); err != nil {
			return err
		}
		fn.loops = fn.loops[:len(fn.loops)-1]
		fn.patchAll(lc.continueJumps, fn.bb.PC())
		if st.Post != nil {
			if err := fn.lowerStmt(st.Post); err != nil {
				return err
			}
		}
		fn.bb.Goto(head)
		end := fn.bb.PC()
		fn.patchAll(falseJumps, end)
		fn.patchAll(lc.breakJumps, end)
		fn.nextSlot = fn.scope.mark
		fn.scope = fn.scope.parent
		return nil

	case *ast.ReturnStmt:
		defer func() { fn.nextSlot = mark }()
		if st.Value == nil {
			if fn.ms.returns != nil {
				return errf(st.Pos, "missing return value (method returns %s)", typeName(fn.ms.returns))
			}
			fn.bb.ReturnVoid()
			return nil
		}
		if fn.ms.returns == nil {
			return errf(st.Pos, "void method cannot return a value")
		}
		rs, rt, err := fn.genExpr(st.Value)
		if err != nil {
			return err
		}
		if !fn.c.assignable(fn.ms.returns, rt) {
			return errf(st.Pos, "cannot return %s from method returning %s", typeName(rt), typeName(fn.ms.returns))
		}
		fn.bb.Return(rs)
		return nil

	case *ast.ExprStmt:
		_, _, err := fn.genExpr(st.X)
		fn.nextSlot = mark
		return err

	case *ast.BreakStmt:
		if len(fn.loops) == 0 {
			return errf(st.Pos, "break outside loop")
		}
		lc := fn.loops[len(fn.loops)-1]
		lc.breakJumps = append(lc.breakJumps, fn.bb.Goto(-1))
		return nil

	case *ast.ContinueStmt:
		if len(fn.loops) == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		lc := fn.loops[len(fn.loops)-1]
		lc.continueJumps = append(lc.continueJumps, fn.bb.Goto(-1))
		return nil
	}
	return errf(s.StmtPos(), "unsupported statement")
}

// countDecls reports how many slots a for-init statement pins.
func countDecls(s ast.Stmt) int {
	if _, ok := s.(*ast.VarDecl); ok {
		return 1
	}
	return 0
}

func (fn *fnCtx) patchAll(jumps []int, target int) {
	for _, pc := range jumps {
		fn.bb.Patch(pc, target)
	}
}

func (fn *fnCtx) lowerAssign(st *ast.AssignStmt) error {
	switch lhs := st.LHS.(type) {
	case *ast.Name:
		l := fn.lookupLocal(lhs.Ident)
		if l == nil {
			return errf(lhs.Pos, "undefined variable %s", lhs.Ident)
		}
		rs, rt, err := fn.genExpr(st.RHS)
		if err != nil {
			return err
		}
		if !fn.c.assignable(l.typ, rt) {
			return errf(st.Pos, "cannot assign %s to %s %s", typeName(rt), typeName(l.typ), lhs.Ident)
		}
		fn.bb.Move(l.slot, rs)
		return nil

	case *ast.FieldAccess:
		objSlot, objT, err := fn.genExpr(lhs.X)
		if err != nil {
			return err
		}
		f, err := fn.resolveField(objT, lhs.Field, lhs.Pos)
		if err != nil {
			return err
		}
		rs, rt, err := fn.genExpr(st.RHS)
		if err != nil {
			return err
		}
		if !fn.c.assignable(f.Type, rt) {
			return errf(st.Pos, "cannot assign %s to field %s (%s)", typeName(rt), f.QualifiedName(), typeName(f.Type))
		}
		fn.bb.StoreField(objSlot, f, rs)
		return nil

	case *ast.IndexExpr:
		arrSlot, arrT, err := fn.genExpr(lhs.X)
		if err != nil {
			return err
		}
		if !arrT.IsArray() {
			return errf(lhs.Pos, "indexing non-array %s", typeName(arrT))
		}
		idxSlot, idxT, err := fn.genExpr(lhs.Index)
		if err != nil {
			return err
		}
		if idxT != ir.IntType {
			return errf(lhs.Pos, "array index must be int, got %s", typeName(idxT))
		}
		rs, rt, err := fn.genExpr(st.RHS)
		if err != nil {
			return err
		}
		if !fn.c.assignable(arrT.Elem, rt) {
			return errf(st.Pos, "cannot store %s into %s", typeName(rt), typeName(arrT))
		}
		fn.bb.AStore(arrSlot, idxSlot, rs)
		return nil
	}
	return errf(st.Pos, "invalid assignment target")
}

func (fn *fnCtx) resolveField(objT *ir.Type, name string, pos lexer.Pos) (*ir.Field, error) {
	if objT == nil || !objT.IsRef() || objT.Class == nil {
		return nil, errf(pos, "field access on non-object %s", typeName(objT))
	}
	f := fn.c.lookupField(fn.c.classSymOf(objT.Class), name)
	if f == nil {
		return nil, errf(pos, "class %s has no field %s", objT.Class.Name, name)
	}
	return f, nil
}

// ---- Expressions ----

// genExpr lowers e, returning the slot holding the result and its type.
// Void calls return slot -1 and nil type.
func (fn *fnCtx) genExpr(e ast.Expr) (int, *ir.Type, error) {
	switch ex := e.(type) {
	case *ast.IntLit:
		t := fn.allocTmp()
		fn.bb.Const(t, ex.Value)
		return t, ir.IntType, nil

	case *ast.BoolLit:
		t := fn.allocTmp()
		v := int64(0)
		if ex.Value {
			v = 1
		}
		fn.bb.Const(t, v)
		return t, ir.BoolType, nil

	case *ast.NullLit:
		t := fn.allocTmp()
		fn.bb.Null(t)
		return t, fn.c.nullType(), nil

	case *ast.ThisExpr:
		if fn.ms.decl.Static {
			return 0, nil, errf(ex.Pos, "this used in static method")
		}
		return 0, fn.c.b.RefType(fn.cs.cls), nil

	case *ast.Name:
		l := fn.lookupLocal(ex.Ident)
		if l == nil {
			return 0, nil, errf(ex.Pos, "undefined variable %s (field access needs explicit this)", ex.Ident)
		}
		return l.slot, l.typ, nil

	case *ast.UnaryExpr:
		if ex.Op == lexer.Minus {
			s, t, err := fn.genExpr(ex.X)
			if err != nil {
				return 0, nil, err
			}
			if t != ir.IntType {
				return 0, nil, errf(ex.Pos, "unary - needs int, got %s", typeName(t))
			}
			d := fn.allocTmp()
			fn.bb.Neg(d, s)
			return d, ir.IntType, nil
		}
		// !x on booleans
		s, t, err := fn.genExpr(ex.X)
		if err != nil {
			return 0, nil, err
		}
		if t != ir.BoolType {
			return 0, nil, errf(ex.Pos, "! needs boolean, got %s", typeName(t))
		}
		d := fn.allocTmp()
		fn.bb.Not(d, s)
		return d, ir.BoolType, nil

	case *ast.BinaryExpr:
		return fn.genBinary(ex)

	case *ast.FieldAccess:
		objSlot, objT, err := fn.genExpr(ex.X)
		if err != nil {
			return 0, nil, err
		}
		f, err := fn.resolveField(objT, ex.Field, ex.Pos)
		if err != nil {
			return 0, nil, err
		}
		d := fn.allocTmp()
		fn.bb.LoadField(d, objSlot, f)
		return d, f.Type, nil

	case *ast.IndexExpr:
		arrSlot, arrT, err := fn.genExpr(ex.X)
		if err != nil {
			return 0, nil, err
		}
		if arrT == nil || !arrT.IsArray() {
			return 0, nil, errf(ex.Pos, "indexing non-array %s", typeName(arrT))
		}
		idxSlot, idxT, err := fn.genExpr(ex.Index)
		if err != nil {
			return 0, nil, err
		}
		if idxT != ir.IntType {
			return 0, nil, errf(ex.Pos, "array index must be int, got %s", typeName(idxT))
		}
		d := fn.allocTmp()
		fn.bb.ALoad(d, arrSlot, idxSlot)
		return d, arrT.Elem, nil

	case *ast.LenExpr:
		arrSlot, arrT, err := fn.genExpr(ex.X)
		if err != nil {
			return 0, nil, err
		}
		if arrT == nil || !arrT.IsArray() {
			return 0, nil, errf(ex.Pos, ".length on non-array %s", typeName(arrT))
		}
		d := fn.allocTmp()
		fn.bb.ArrayLen(d, arrSlot)
		return d, ir.IntType, nil

	case *ast.NewExpr:
		cs, ok := fn.c.classes[ex.Class]
		if !ok {
			return 0, nil, errf(ex.Pos, "unknown class %s", ex.Class)
		}
		d := fn.allocTmp()
		fn.bb.New(d, cs.cls)
		return d, fn.c.b.RefType(cs.cls), nil

	case *ast.NewArrayExpr:
		elem, err := fn.c.resolveType(&ast.TypeRef{Base: ex.Base, Dims: ex.Dims - 1, Pos: ex.Pos})
		if err != nil {
			return 0, nil, err
		}
		lenSlot, lenT, err := fn.genExpr(ex.Len)
		if err != nil {
			return 0, nil, err
		}
		if lenT != ir.IntType {
			return 0, nil, errf(ex.Pos, "array length must be int, got %s", typeName(lenT))
		}
		d := fn.allocTmp()
		fn.bb.NewArray(d, elem, lenSlot)
		return d, fn.c.b.ArrayType(elem), nil

	case *ast.InstanceOfExpr:
		s, t, err := fn.genExpr(ex.X)
		if err != nil {
			return 0, nil, err
		}
		if t == nil || !t.IsRef() {
			return 0, nil, errf(ex.Pos, "instanceof on non-reference %s", typeName(t))
		}
		cs, ok := fn.c.classes[ex.Class]
		if !ok {
			return 0, nil, errf(ex.Pos, "unknown class %s", ex.Class)
		}
		d := fn.allocTmp()
		fn.bb.InstanceOf(d, s, cs.cls)
		return d, ir.BoolType, nil

	case *ast.CallExpr:
		return fn.genCall(ex)
	}
	return 0, nil, errf(e.ExprPos(), "unsupported expression")
}

// intBinOps maps arithmetic tokens to IR operators.
var intBinOps = map[lexer.Kind]ir.BinOp{
	lexer.Plus: ir.Add, lexer.Minus: ir.Sub, lexer.Star: ir.Mul,
	lexer.Slash: ir.Div, lexer.Percent: ir.Rem,
	lexer.Amp: ir.And, lexer.Pipe: ir.Or, lexer.Caret: ir.Xor,
	lexer.Shl: ir.Shl, lexer.Shr: ir.Shr,
}

// cmpOps maps comparison tokens to IR comparisons.
var cmpOps = map[lexer.Kind]ir.Cmp{
	lexer.Eq: ir.Eq, lexer.Ne: ir.Ne, lexer.Lt: ir.Lt,
	lexer.Le: ir.Le, lexer.Gt: ir.Gt, lexer.Ge: ir.Ge,
}

// negCmp returns the complementary comparison.
var negCmp = map[ir.Cmp]ir.Cmp{
	ir.Eq: ir.Ne, ir.Ne: ir.Eq, ir.Lt: ir.Ge, ir.Ge: ir.Lt, ir.Le: ir.Gt, ir.Gt: ir.Le,
}

func (fn *fnCtx) genBinary(ex *ast.BinaryExpr) (int, *ir.Type, error) {
	if op, ok := intBinOps[ex.Op]; ok {
		ls, lt, err := fn.genExpr(ex.L)
		if err != nil {
			return 0, nil, err
		}
		rs, rt, err := fn.genExpr(ex.R)
		if err != nil {
			return 0, nil, err
		}
		if lt != ir.IntType || rt != ir.IntType {
			return 0, nil, errf(ex.Pos, "operator %s needs int operands, got %s and %s",
				ex.Op, typeName(lt), typeName(rt))
		}
		d := fn.allocTmp()
		fn.bb.Bin(d, op, ls, rs)
		return d, ir.IntType, nil
	}
	// Comparisons and short-circuit operators materialize a boolean.
	if _, isCmp := cmpOps[ex.Op]; isCmp || ex.Op == lexer.AmpAmp || ex.Op == lexer.PipePipe {
		d := fn.allocTmp()
		falseJumps, err := fn.genBranch(ex, false)
		if err != nil {
			return 0, nil, err
		}
		fn.bb.Const(d, 1)
		g := fn.bb.Goto(-1)
		fn.patchAll(falseJumps, fn.bb.PC())
		fn.bb.Const(d, 0)
		fn.bb.Patch(g, fn.bb.PC())
		return d, ir.BoolType, nil
	}
	return 0, nil, errf(ex.Pos, "unsupported binary operator %s", ex.Op)
}

// genBranch emits code that jumps (targets to be patched by the caller) when
// the condition evaluates to `when`, and falls through otherwise.
func (fn *fnCtx) genBranch(e ast.Expr, when bool) ([]int, error) {
	switch ex := e.(type) {
	case *ast.BoolLit:
		if ex.Value == when {
			return []int{fn.bb.Goto(-1)}, nil
		}
		return nil, nil

	case *ast.UnaryExpr:
		if ex.Op == lexer.Bang {
			return fn.genBranch(ex.X, !when)
		}

	case *ast.BinaryExpr:
		if cmp, ok := cmpOps[ex.Op]; ok {
			ls, lt, err := fn.genExpr(ex.L)
			if err != nil {
				return nil, err
			}
			rs, rt, err := fn.genExpr(ex.R)
			if err != nil {
				return nil, err
			}
			if err := fn.checkComparable(ex, lt, rt); err != nil {
				return nil, err
			}
			if !when {
				cmp = negCmp[cmp]
			}
			return []int{fn.bb.If(ls, cmp, rs, -1)}, nil
		}
		switch {
		case ex.Op == lexer.AmpAmp && when:
			skip, err := fn.genBranch(ex.L, false)
			if err != nil {
				return nil, err
			}
			jumps, err := fn.genBranch(ex.R, true)
			if err != nil {
				return nil, err
			}
			fn.patchAll(skip, fn.bb.PC())
			return jumps, nil
		case ex.Op == lexer.AmpAmp && !when:
			j1, err := fn.genBranch(ex.L, false)
			if err != nil {
				return nil, err
			}
			j2, err := fn.genBranch(ex.R, false)
			if err != nil {
				return nil, err
			}
			return append(j1, j2...), nil
		case ex.Op == lexer.PipePipe && when:
			j1, err := fn.genBranch(ex.L, true)
			if err != nil {
				return nil, err
			}
			j2, err := fn.genBranch(ex.R, true)
			if err != nil {
				return nil, err
			}
			return append(j1, j2...), nil
		case ex.Op == lexer.PipePipe && !when:
			skip, err := fn.genBranch(ex.L, true)
			if err != nil {
				return nil, err
			}
			jumps, err := fn.genBranch(ex.R, false)
			if err != nil {
				return nil, err
			}
			fn.patchAll(skip, fn.bb.PC())
			return jumps, nil
		}
	}

	// Generic boolean expression: evaluate and compare against zero.
	s, t, err := fn.genExpr(e)
	if err != nil {
		return nil, err
	}
	if t != ir.BoolType {
		return nil, errf(e.ExprPos(), "condition must be boolean, got %s", typeName(t))
	}
	z := fn.allocTmp()
	fn.bb.Const(z, 0)
	cmp := ir.Ne
	if !when {
		cmp = ir.Eq
	}
	return []int{fn.bb.If(s, cmp, z, -1)}, nil
}

// checkComparable validates operand types of a comparison.
func (fn *fnCtx) checkComparable(ex *ast.BinaryExpr, lt, rt *ir.Type) error {
	eq := ex.Op == lexer.Eq || ex.Op == lexer.Ne
	switch {
	case lt == ir.IntType && rt == ir.IntType:
		return nil
	case eq && lt == ir.BoolType && rt == ir.BoolType:
		return nil
	case eq && lt != nil && rt != nil && lt.IsRef() && rt.IsRef():
		if fn.c.assignable(lt, rt) || fn.c.assignable(rt, lt) {
			return nil
		}
		return errf(ex.Pos, "incomparable reference types %s and %s", typeName(lt), typeName(rt))
	}
	return errf(ex.Pos, "operator %s cannot compare %s and %s", ex.Op, typeName(lt), typeName(rt))
}

// nativeSigs describes the native functions: parameter kinds ('i' int,
// 'b' boolean, 'a' any scalar, '*' = any number of ints) and whether a
// value is returned.
var nativeSigs = map[string]struct {
	fn      ir.NativeFn
	params  string
	returns *ir.Type
}{
	"print":          {ir.NativePrint, "a", nil},
	"printChar":      {ir.NativePrintChar, "i", nil},
	"rand":           {ir.NativeRand, "i", ir.IntType},
	"time":           {ir.NativeTime, "", ir.IntType},
	"floatToIntBits": {ir.NativeFloatToBits, "i", ir.IntType},
	"intBitsToFloat": {ir.NativeBitsToFloat, "i", ir.IntType},
	"assert":         {ir.NativeAssert, "b", nil},
	"dbQuery":        {ir.NativeDBQuery, "*", ir.IntType},
	"hash":           {ir.NativeHash, "i", ir.IntType},
}

func (fn *fnCtx) genCall(ex *ast.CallExpr) (int, *ir.Type, error) {
	// Class-qualified static call: ClassName.method(args). A bare name that
	// is not a local but names a class qualifies.
	if name, ok := ex.X.(*ast.Name); ok && fn.lookupLocal(name.Ident) == nil {
		cs, isClass := fn.c.classes[name.Ident]
		if !isClass {
			return 0, nil, errf(name.Pos, "undefined variable %s", name.Ident)
		}
		ms := fn.c.lookupMethod(cs, ex.Method)
		if ms == nil {
			return 0, nil, errf(ex.Pos, "class %s has no method %s", name.Ident, ex.Method)
		}
		if !ms.decl.Static {
			return 0, nil, errf(ex.Pos, "instance method %s.%s needs a receiver", name.Ident, ex.Method)
		}
		return fn.emitCall(ex, ms, -1)
	}

	// Qualified call: receiver.method(args).
	if ex.X != nil {
		recvSlot, recvT, err := fn.genExpr(ex.X)
		if err != nil {
			return 0, nil, err
		}
		if recvT == nil || !recvT.IsRef() || recvT.Class == nil {
			return 0, nil, errf(ex.Pos, "method call on non-object %s", typeName(recvT))
		}
		ms := fn.c.lookupMethod(fn.c.classSymOf(recvT.Class), ex.Method)
		if ms == nil {
			return 0, nil, errf(ex.Pos, "class %s has no method %s", recvT.Class.Name, ex.Method)
		}
		if ms.decl.Static {
			return 0, nil, errf(ex.Pos, "cannot call static method %s through an instance", ex.Method)
		}
		return fn.emitCall(ex, ms, recvSlot)
	}

	// Unqualified: a method of the current class, else a native.
	if ms := fn.c.lookupMethod(fn.cs, ex.Method); ms != nil {
		if ms.decl.Static {
			return fn.emitCall(ex, ms, -1)
		}
		if fn.ms.decl.Static {
			return 0, nil, errf(ex.Pos, "instance method %s called from static context (use an object)", ex.Method)
		}
		return fn.emitCall(ex, ms, 0) // implicit this
	}
	sig, ok := nativeSigs[ex.Method]
	if !ok {
		return 0, nil, errf(ex.Pos, "unknown function %s", ex.Method)
	}
	args := make([]int, 0, len(ex.Args))
	if sig.params == "*" {
		for _, a := range ex.Args {
			s, t, err := fn.genExpr(a)
			if err != nil {
				return 0, nil, err
			}
			if t != ir.IntType {
				return 0, nil, errf(a.ExprPos(), "%s takes int arguments, got %s", ex.Method, typeName(t))
			}
			args = append(args, s)
		}
	} else {
		if len(ex.Args) != len(sig.params) {
			return 0, nil, errf(ex.Pos, "%s takes %d argument(s), got %d", ex.Method, len(sig.params), len(ex.Args))
		}
		for i, a := range ex.Args {
			s, t, err := fn.genExpr(a)
			if err != nil {
				return 0, nil, err
			}
			switch sig.params[i] {
			case 'i':
				if t != ir.IntType {
					return 0, nil, errf(a.ExprPos(), "%s argument %d must be int, got %s",
						ex.Method, i+1, typeName(t))
				}
			case 'b':
				if t != ir.BoolType {
					return 0, nil, errf(a.ExprPos(), "%s argument %d must be boolean, got %s",
						ex.Method, i+1, typeName(t))
				}
			case 'a':
				if t != ir.IntType && t != ir.BoolType {
					return 0, nil, errf(a.ExprPos(), "%s argument %d must be int or boolean, got %s",
						ex.Method, i+1, typeName(t))
				}
			}
			args = append(args, s)
		}
	}
	dst := -1
	if sig.returns != nil {
		dst = fn.allocTmp()
	}
	fn.bb.Native(dst, sig.fn, args...)
	return dst, sig.returns, nil
}

// emitCall lowers a resolved method call. recvSlot is -1 for static calls.
func (fn *fnCtx) emitCall(ex *ast.CallExpr, ms *methodSym, recvSlot int) (int, *ir.Type, error) {
	if len(ex.Args) != len(ms.params) {
		return 0, nil, errf(ex.Pos, "%s takes %d argument(s), got %d",
			ms.m.QualifiedName(), len(ms.params), len(ex.Args))
	}
	args := make([]int, 0, len(ex.Args)+1)
	if recvSlot >= 0 {
		args = append(args, recvSlot)
	}
	for i, a := range ex.Args {
		s, t, err := fn.genExpr(a)
		if err != nil {
			return 0, nil, err
		}
		if !fn.c.assignable(ms.params[i], t) {
			return 0, nil, errf(a.ExprPos(), "argument %d of %s: cannot pass %s as %s",
				i+1, ms.m.QualifiedName(), typeName(t), typeName(ms.params[i]))
		}
		args = append(args, s)
	}
	dst := -1
	if ms.returns != nil {
		dst = fn.allocTmp()
	}
	fn.bb.Call(dst, ms.m, args...)
	return dst, ms.returns, nil
}

// Source is a convenience for building multi-part programs in tests and
// workloads: it joins fragments with newlines.
func Source(parts ...string) string { return strings.Join(parts, "\n") }
