package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"lowutil"
)

// ErrCanceled is the facade's cancellation sentinel. A call aborted by
// the caller's context, or answered by the service's 499 (client closed
// request), satisfies errors.Is(err, client.ErrCanceled).
var ErrCanceled = lowutil.ErrCanceled

// Error is the service's unified error envelope as a Go error: the HTTP
// status plus the typed body every /v2/* endpoint returns. Codes
// "canceled" and "deadline" unwrap to the matching facade sentinels so
// errors.Is works across the wire.
type Error struct {
	// Status is the HTTP status code.
	Status int
	// Code is the stable machine-readable error class ("at_capacity",
	// "canceled", "deadline", "not_found", "bad_request", "conflict", ...).
	Code string
	// Message is the human-readable description.
	Message string
	// Retryable reports whether the service expects a backed-off retry of
	// the same request to succeed.
	Retryable bool
	// RetryAfter is the service's requested backoff, when it sent one.
	RetryAfter time.Duration
}

func (e *Error) Error() string {
	return fmt.Sprintf("lowutil service: %s (%s, http %d)", e.Message, e.Code, e.Status)
}

// Unwrap maps wire-level cancellation codes back onto the facade's
// sentinels.
func (e *Error) Unwrap() error {
	switch e.Code {
	case "canceled":
		return ErrCanceled
	case "deadline":
		return context.DeadlineExceeded
	}
	return nil
}

// CompileError mirrors lowutil.CompileError across the wire: the service
// rejected the submitted source, with position information when the
// compiler produced any.
type CompileError struct {
	Message string
	Line    int
	Col     int
}

func (e *CompileError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("compile: %d:%d: %s", e.Line, e.Col, e.Message)
	}
	return "compile: " + e.Message
}

// ProfileError mirrors lowutil.ProfileError across the wire: a profiling
// or analysis run failed on the service, in the given stage.
type ProfileError struct {
	Stage   string
	Message string
}

func (e *ProfileError) Error() string {
	if e.Stage != "" {
		return fmt.Sprintf("profile (%s): %s", e.Stage, e.Message)
	}
	return "profile: " + e.Message
}

// transportError marks connection-level failures (refused, reset,
// mid-body disconnect); always retryable.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// IsRetryable reports whether retrying the call that produced err can
// succeed: transport failures, plus API errors the service marked
// retryable (429 admission rejections, canceled runs) or bare 5xx
// responses without a parseable envelope.
func IsRetryable(err error) bool {
	var te *transportError
	if errors.As(err, &te) {
		return true
	}
	var ae *Error
	if errors.As(err, &ae) {
		return ae.Retryable
	}
	return false
}

// wireEnvelope is the service's {"error":{...}} body.
type wireEnvelope struct {
	Error struct {
		Code      string `json:"code"`
		Message   string `json:"message"`
		Retryable bool   `json:"retryable"`
		Stage     string `json:"stage,omitempty"`
		Line      int    `json:"line,omitempty"`
		Col       int    `json:"col,omitempty"`
	} `json:"error"`
}

// decodeAPIError turns a non-2xx response into the matching typed error.
func decodeAPIError(status int, h http.Header, body []byte) error {
	var env wireEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
		// No parseable envelope (a proxy, a crash): 5xx and 429 are worth
		// retrying, everything else is final.
		return &Error{
			Status:    status,
			Code:      "internal",
			Message:   fmt.Sprintf("http %d: %s", status, truncate(body)),
			Retryable: status >= 500 || status == http.StatusTooManyRequests,
		}
	}
	switch env.Error.Code {
	case "compile_error":
		return &CompileError{Message: env.Error.Message, Line: env.Error.Line, Col: env.Error.Col}
	case "profile_error":
		return &ProfileError{Stage: env.Error.Stage, Message: env.Error.Message}
	}
	return &Error{
		Status:     status,
		Code:       env.Error.Code,
		Message:    env.Error.Message,
		Retryable:  env.Error.Retryable,
		RetryAfter: parseRetryAfter(h),
	}
}

func truncate(b []byte) string {
	const max = 200
	s := string(b)
	if len(s) > max {
		return s[:max] + "…"
	}
	return s
}
