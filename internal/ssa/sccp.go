package ssa

import "lowutil/internal/ir"

// Sparse conditional constant propagation (Wegman–Zadeck) over the SSA
// overlay: a three-level lattice per value (unknown / constant / overdefined)
// plus per-edge executability, iterated with the classic twin worklists. The
// transfer functions mirror internal/interp's semantics *exactly* — division
// or remainder by a constant zero, or arithmetic on references, folds to
// overdefined rather than to a value, and shifts mask their count to 63 the
// way the interpreter does — so a "constant" verdict is a theorem about every
// execution, and an unexecutable verdict is safe to use for pruning the
// static cost bounds.

// cellState is the SCCP lattice level of one value.
type cellState uint8

const (
	top cellState = iota // no evidence yet (unknown)
	constant
	bottom // overdefined
)

// Const is a compile-time constant: an int or the null reference.
type Const struct {
	IsNull bool
	I      int64
}

type cell struct {
	state cellState
	c     Const
}

// SCCP holds the fixpoint of sparse conditional constant propagation.
type SCCP struct {
	F *Func

	cells []cell
	// BlockExec[b] reports whether any execution can reach block b. It
	// refines CFG reachability: blocks guarded by constant-false branches
	// are reachable in the CFG but not executable.
	BlockExec []bool
	// edgeExec[b][k] reports executability of the k-th successor edge of b.
	edgeExec [][]bool
}

// ParamFact is an interprocedural fact about one parameter: the value every
// executable call site passes, when that value is one known constant. The
// caller of RunSCCPSeeded owns the proof obligation — a wrong fact makes
// "constant" and "unexecutable" verdicts unsound.
type ParamFact struct {
	Known bool
	C     Const
}

// RunSCCP computes sparse conditional constants and edge executability for f,
// assuming nothing about parameters.
func RunSCCP(f *Func) *SCCP { return RunSCCPSeeded(f, nil) }

// RunSCCPSeeded is RunSCCP with interprocedural parameter facts: parameter
// slot i is seeded with params[i]'s constant when Known, and overdefined
// otherwise. A nil or short params slice leaves the remaining parameters
// overdefined.
func RunSCCPSeeded(f *Func, params []ParamFact) *SCCP {
	s := &SCCP{
		F:         f,
		cells:     make([]cell, len(f.Vals)),
		BlockExec: make([]bool, f.CFG.NumBlocks()),
		edgeExec:  make([][]bool, f.CFG.NumBlocks()),
	}
	for b := range s.edgeExec {
		s.edgeExec[b] = make([]bool, len(f.CFG.Blocks[b].Succs))
	}
	// Undef arguments stay top until ignored; undef *values* are overdefined
	// from the start: the interpreter materializes a zero Value on the
	// uninitialized path, and treating that as a known constant would let a
	// may-uninitialized path constant-fold — unsound for pruning. Parameters
	// are overdefined unless a caller-supplied fact pins them.
	for v := range f.Vals {
		switch f.Vals[v].Kind {
		case VParam:
			if slot := f.Vals[v].Slot; slot < len(params) && params[slot].Known {
				s.cells[v] = cell{state: constant, c: params[slot].C}
			} else {
				s.cells[v].state = bottom
			}
		case VUndef:
			s.cells[v].state = bottom
		}
	}
	s.run()
	return s
}

// Executable reports whether the instruction at pc can execute: its block is
// executable (which implies CFG-reachable).
func (s *SCCP) Executable(pc int) bool { return s.BlockExec[s.F.CFG.BlockOf[pc]] }

// EdgeExecutable reports executability of the k-th successor edge of block b.
func (s *SCCP) EdgeExecutable(b, k int) bool { return s.edgeExec[b][k] }

// PhiArgExecutable reports whether the phi argument j of a phi in block b can
// flow: the j-th predecessor edge is executable.
func (s *SCCP) PhiArgExecutable(b, j int) bool {
	preds := s.F.CFG.Blocks[b].Preds
	if j >= len(preds) {
		// The virtual function-entry argument of an entry phi: always flows.
		return true
	}
	p := preds[j]
	// Find which successor edge of p this predecessor occurrence is; the
	// edgeArg mapping is not kept, so test all p→b edges: the argument can
	// flow if any executable edge p→b exists with matching occurrence. Since
	// duplicate p→b edges carry identical values, any-executable is exact.
	if !s.BlockExec[p] {
		return false
	}
	for k, t := range s.F.CFG.Blocks[p].Succs {
		if t == b && s.edgeExec[p][k] {
			return true
		}
	}
	return false
}

// ConstOf returns the constant value of v, if SCCP proved one.
func (s *SCCP) ConstOf(v ValID) (Const, bool) {
	if v == None {
		return Const{}, false
	}
	c := s.cells[v]
	return c.c, c.state == constant
}

// NumConsts counts the values proven constant (stats, benchmarks, dumps).
func (s *SCCP) NumConsts() int {
	n := 0
	for _, c := range s.cells {
		if c.state == constant {
			n++
		}
	}
	return n
}

func (s *SCCP) run() {
	f := s.F
	type edge struct{ b, k int }
	var flowWork []edge
	var ssaWork []ValID

	// meet lowers value v to at least (state, c); returns true on change.
	meet := func(v ValID, st cellState, c Const) bool {
		cur := &s.cells[v]
		switch {
		case st == top || cur.state == bottom:
			return false
		case cur.state == top:
			cur.state, cur.c = st, c
			return true
		case st == bottom, cur.c != c:
			cur.state = bottom
			return true
		default:
			return false
		}
	}
	lower := func(v ValID, st cellState, c Const) {
		if meet(v, st, c) {
			ssaWork = append(ssaWork, v)
		}
	}

	visitPhi := func(pv ValID) {
		val := &f.Vals[pv]
		st, c := top, Const{}
		for j, a := range val.Args {
			if a == None || !s.PhiArgExecutable(val.Block, j) {
				continue
			}
			ac := s.cells[a]
			switch {
			case ac.state == top:
				// no evidence from this edge yet
			case st == top:
				st, c = ac.state, ac.c
			case ac.state == bottom || ac.c != c:
				st = bottom
			}
		}
		lower(pv, st, c)
	}

	visitInstr := func(pc int) {
		in := &f.M.Code[pc]
		// Branches decide edge executability; other instructions produce a
		// lattice value for their definition.
		b := f.CFG.BlockOf[pc]
		if pc == f.CFG.Blocks[b].Last() {
			switch in.Op {
			case ir.OpIf:
				taken, fall := s.evalIf(in, f.Operands[pc])
				if taken && !s.edgeExec[b][0] {
					s.edgeExec[b][0] = true
					flowWork = append(flowWork, edge{b, 0})
				}
				if fall && len(s.edgeExec[b]) > 1 && !s.edgeExec[b][1] {
					s.edgeExec[b][1] = true
					flowWork = append(flowWork, edge{b, 1})
				}
			default:
				for k := range s.edgeExec[b] {
					if !s.edgeExec[b][k] {
						s.edgeExec[b][k] = true
						flowWork = append(flowWork, edge{b, k})
					}
				}
			}
		}
		v := f.DefOf[pc]
		if v == None {
			return
		}
		st, c := s.evalInstr(in, f.Operands[pc])
		lower(v, st, c)
	}

	visitBlock := func(b int) {
		for _, pv := range f.Phis[b] {
			visitPhi(pv)
		}
		blk := &f.CFG.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			visitInstr(pc)
		}
	}

	s.BlockExec[0] = true
	visitBlock(0)
	for len(flowWork) > 0 || len(ssaWork) > 0 {
		if n := len(flowWork); n > 0 {
			e := flowWork[n-1]
			flowWork = flowWork[:n-1]
			t := f.CFG.Blocks[e.b].Succs[e.k]
			if !s.BlockExec[t] {
				s.BlockExec[t] = true
				visitBlock(t)
			} else {
				// A newly executable edge into an already-executable block
				// can change its phis.
				for _, pv := range f.Phis[t] {
					visitPhi(pv)
				}
			}
			continue
		}
		n := len(ssaWork)
		v := ssaWork[n-1]
		ssaWork = ssaWork[:n-1]
		for _, u := range f.Uses(v) {
			if u.IsPhi() {
				pb := f.Vals[u.Phi].Block
				if s.BlockExec[pb] {
					visitPhi(u.Phi)
				}
			} else if s.Executable(u.PC) {
				visitInstr(u.PC)
			}
		}
	}
}

// evalInstr is the per-opcode transfer function: the lattice value of the
// instruction's definition given its operand cells.
func (s *SCCP) evalInstr(in *ir.Instr, ops []ValID) (cellState, Const) {
	get := func(i int) cell {
		if i >= len(ops) {
			return cell{state: bottom}
		}
		return s.cells[ops[i]]
	}
	switch in.Op {
	case ir.OpConst:
		if in.IsNull {
			return constant, Const{IsNull: true}
		}
		return constant, Const{I: in.Imm}
	case ir.OpMove:
		c := get(0)
		return c.state, c.c
	case ir.OpNeg:
		c := get(0)
		if c.state != constant || c.c.IsNull {
			return degrade(c.state), Const{}
		}
		return constant, Const{I: -c.c.I}
	case ir.OpNot:
		// Mirrors Value.Truthy: null and zero are falsy.
		c := get(0)
		if c.state != constant {
			return degrade(c.state), Const{}
		}
		if c.c.IsNull || c.c.I == 0 {
			return constant, Const{I: 1}
		}
		return constant, Const{I: 0}
	case ir.OpBin:
		a, b := get(0), get(1)
		if a.state == constant && b.state == constant && !a.c.IsNull && !b.c.IsNull {
			if r, ok := foldBin(in.Bin, a.c.I, b.c.I); ok {
				return constant, Const{I: r}
			}
			return bottom, Const{} // division by zero: a runtime error, not a value
		}
		if a.state == bottom || b.state == bottom || a.c.IsNull || b.c.IsNull {
			return bottom, Const{}
		}
		return top, Const{}
	default:
		// Loads, allocations, calls, natives, instanceof, array lengths:
		// no static value.
		return bottom, Const{}
	}
}

// degrade maps an operand state to a result state for strict unary ops.
func degrade(st cellState) cellState {
	if st == top {
		return top
	}
	return bottom
}

// foldBin folds a binary op with the interpreter's exact semantics. ok is
// false for division or remainder by zero (a runtime error path).
func foldBin(op ir.BinOp, a, b int64) (int64, bool) {
	switch op {
	case ir.Add:
		return a + b, true
	case ir.Sub:
		return a - b, true
	case ir.Mul:
		return a * b, true
	case ir.Div:
		if b == 0 {
			return 0, false
		}
		return a / b, true
	case ir.Rem:
		if b == 0 {
			return 0, false
		}
		return a % b, true
	case ir.And:
		return a & b, true
	case ir.Or:
		return a | b, true
	case ir.Xor:
		return a ^ b, true
	case ir.Shl:
		return a << (uint64(b) & 63), true
	case ir.Shr:
		return a >> (uint64(b) & 63), true
	}
	return 0, false
}

// evalIf decides which successor edges of a predicate can execute. Both, when
// the comparison cannot be folded.
func (s *SCCP) evalIf(in *ir.Instr, ops []ValID) (taken, fall bool) {
	if len(ops) < 2 {
		return true, true
	}
	a, b := s.cells[ops[0]], s.cells[ops[1]]
	if a.state == top || b.state == top {
		// No evidence yet: hold both edges back until the operands resolve.
		return false, false
	}
	if a.state != constant || b.state != constant {
		return true, true
	}
	res, ok := foldCmp(in.Cmp, a.c, b.c)
	if !ok {
		return true, true
	}
	return res, !res
}

// foldCmp mirrors Machine.compare. Ordered comparisons involving null are
// runtime errors — not foldable, both edges stay alive (conservative: the
// execution in fact stops there, so keeping successors executable only
// loosens, never breaks, the unreachability verdicts).
func foldCmp(cmp ir.Cmp, a, b Const) (bool, bool) {
	if a.IsNull || b.IsNull {
		if cmp != ir.Eq && cmp != ir.Ne {
			return false, false
		}
		if a.IsNull != b.IsNull {
			// null vs int: tolerated as inequality, like ref-vs-int.
			return cmp == ir.Ne, true
		}
		return cmp == ir.Eq, true // null == null
	}
	switch cmp {
	case ir.Eq:
		return a.I == b.I, true
	case ir.Ne:
		return a.I != b.I, true
	case ir.Lt:
		return a.I < b.I, true
	case ir.Le:
		return a.I <= b.I, true
	case ir.Gt:
		return a.I > b.I, true
	case ir.Ge:
		return a.I >= b.I, true
	}
	return false, false
}
