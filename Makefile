.PHONY: check build test bench benchdiff lint apisurface audit-goldens fuzz

check:
	sh scripts/check.sh

# fuzz runs the long differential-fuzzing soak (default: seed 1, 5 minutes,
# JSON summary in FUZZ_SUMMARY.json). Override with SEED=, MINUTES=, OUT=.
# `make check` runs a small fixed-seed batch of the same invariants.
fuzz:
	sh scripts/fuzz.sh

build:
	go build ./...

test:
	go test ./...

# bench writes BENCH_9.json (min-of-COUNT ns/op per benchmark, including
# the job-queue throughput series from internal/jobs) and then gates: >10%
# regression vs the previous BENCH_*.json in the frozen cost-benefit
# analysis or any profiled_s16 overhead series fails the target.
# `make check` runs the same comparison report-only.
bench:
	sh scripts/bench.sh 9
	sh scripts/benchdiff.sh

benchdiff:
	sh scripts/benchdiff.sh

# Full static lint: the vet suite over all 18 workloads, compared against
# the golden files in internal/staticanalysis/testdata/vet/. Regenerate the
# goldens after an intended diagnostics change with:
#   go test ./internal/staticanalysis -run TestVetGoldenWorkloads -update
lint:
	go test ./internal/staticanalysis -run TestVetGoldenWorkloads -count=1

# Public-API pin for the root package. Regenerate after an intended API
# change with: sh scripts/apisurface.sh -update
apisurface:
	sh scripts/apisurface.sh

# Regenerate the static-audit golden reports (internal/escape/testdata/audit/)
# after an intended scoring or escape-analysis change. `make check` runs the
# same test without -update as a diff gate.
audit-goldens:
	go test ./internal/escape -run TestAuditGoldenWorkloads -update
