// Package profiler builds the cost-benefit dependence graph Gcost online,
// implementing the instrumentation semantics of Figure 4 of the paper as an
// interp.Tracer.
//
// For every storage location l the profiler maintains a shadow location l'
// holding the dependence-graph node that last wrote l: locals get shadow
// slots parallel to the frame's locals, heap locations get per-object shadow
// slices hung off interp.Object.Shadow (the "shadow heap"), and statics get
// a parallel static shadow table. A tracking stack passes dependences and
// the receiver-object context chain across calls, exactly as in the paper.
//
// The profiler is thin by default: loads and stores do not consume the base
// pointer. Setting Options.Traditional includes base-pointer dependences,
// giving the conventional dynamic-slicing baseline used in the ablation
// benchmarks.
package profiler

import (
	"lowutil/internal/contextenc"
	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
)

// Options configures a Profiler.
type Options struct {
	// Slots is the paper's parameter s — the number of context slots per
	// instruction. Zero means 16.
	Slots int
	// Traditional includes base-pointer dependences at loads/stores,
	// turning thin slicing into traditional dynamic slicing.
	Traditional bool
	// TrackCR enables exact context-conflict-ratio bookkeeping (costs
	// memory proportional to distinct (instruction, context) pairs).
	TrackCR bool
	// Unabstracted disables context abstraction entirely: every instruction
	// *instance* becomes its own node, as in conventional dynamic slicing.
	// The node count is then bounded only by UnabstractedCap. Used by the
	// abstract-vs-concrete ablation.
	Unabstracted bool
	// UnabstractedCap caps per-instruction instance nodes in Unabstracted
	// mode (0 means 1<<20); beyond the cap, instances fold into the last
	// node so the experiment can finish instead of exhausting memory.
	UnabstractedCap int
	// TrackControl adds, to every value-producing node, a dependence on the
	// most recently executed predicate in the same frame — the §3.2
	// "considering vs ignoring control decision making" alternative (with
	// the closest dynamic predicate as the control scope). Costs then
	// include the effort of making the enclosing control decision.
	TrackControl bool
	// Prune, when non-nil and indexed by ir.Instr.ID, drops marked events on
	// arrival (see staticanalysis.PruneSet). Redundant when the Machine
	// already carries the set — this guard serves tracer stacks the machine
	// gate cannot reach. Must be nil when Traditional is set: the proof that
	// pruned instructions are invisible holds only under thin slicing.
	Prune []bool
	// LegacyGraph builds Gcost in the map-backed depgraph representation
	// instead of the dense interned one — the differential reference.
	LegacyGraph bool
}

// frameShadow is the per-frame tracker state: shadow locals plus the encoded
// receiver-object context chain of the frame.
type frameShadow struct {
	// nodes holds one shadow Ref per local slot (the node that last wrote
	// it); Refs keep the per-event shadow stores free of GC write barriers.
	nodes []depgraph.Ref
	ctx   contextenc.Encoded
	slot  int // h(ctx), precomputed
	// lastPred is the most recently executed predicate node in this frame
	// (TrackControl mode only).
	lastPred depgraph.Ref
}

// objShadow is the per-object tracker state: the object tag (environment P —
// the context-annotated allocation node) and shadow slots for fields or
// array elements. The tag is a Ref, not a pointer, so tagging an allocation
// is a scalar store (no GC write barrier on the per-allocation path).
type objShadow struct {
	tag   depgraph.Ref
	slots []depgraph.Ref
}

// Profiler is an interp.Tracer that constructs Gcost.
type Profiler struct {
	G    *depgraph.Graph
	Prog *ir.Program

	slots    contextenc.Slots
	cr       *contextenc.ConflictTracker
	thin     bool
	unabs    bool
	unabsCap int
	control  bool
	prune    []bool

	// statics is the shadow of static-field storage.
	statics []depgraph.Ref

	// pendingCall carries argument shadows and callee context between
	// BeforeCall and EnterMethod (the tracking stack push). pendingSlot is
	// h(pendingCtx), staged alongside it: static calls inherit the caller's
	// context unchanged, so their slot is copied rather than recomputed —
	// Slot is a hardware divide, paid per call otherwise.
	pendingArgs []depgraph.Ref
	pendingCtx  contextenc.Encoded
	pendingSlot int
	havePending bool
	// pendingRet carries the return value's node between BeforeReturn and
	// AfterCall (the tracking stack pop).
	pendingRet depgraph.Ref

	// enabled gates graph construction for phase-restricted tracking;
	// context bookkeeping continues while disabled.
	enabled bool

	// fsPool recycles frameShadow records: a frame's shadow dies with the
	// frame at BeforeReturn (the machine never revisits a popped frame), so
	// EnterMethod can reuse it instead of allocating per call. Frames
	// abandoned on error simply aren't recycled.
	fsPool []*frameShadow

	// curFrame/cur memoize the active frame's shadow so the per-event
	// fshadow lookup skips the interface type assertion. EnterMethod and the
	// assertion miss path install the pair; BeforeReturn drops it when the
	// cached frame pops (its record returns to fsPool).
	curFrame *interp.Frame
	cur      *frameShadow

	// tIdx/tFreq/tW cache the graph's dense-table view (depgraph.DenseTables)
	// and fast gates the inlined intern probe: set only when the graph is
	// dense and no per-event extras (conflict tracking, unabstracted domain,
	// control deps) are configured. tFreq is re-fetched after every intern
	// miss (the table grows).
	tIdx  []int32
	tFreq []int64
	tW    int
	fast  bool

	// osSlab and slotSlab back objShadow allocation: records and shadow-slot
	// arrays are carved off chunk-at-a-time so the per-object miss path in
	// oshadow costs two slice headers instead of two heap allocations.
	osSlab   []objShadow
	slotSlab []depgraph.Ref

	// instCount counts instances per instruction in Unabstracted mode.
	instCount []int
}

// New returns a Profiler over prog.
func New(prog *ir.Program, opts Options) *Profiler {
	s := opts.Slots
	if s == 0 {
		s = 16
	}
	// The dense graph's direct index is sized to the context-slot domain:
	// d ∈ [NoContext, s). Unabstracted occurrence indices overflow into its
	// map-backed fallback by design.
	p := &Profiler{
		G:       depgraph.NewSized(prog, s-1, opts.LegacyGraph),
		Prog:    prog,
		slots:   contextenc.NewSlots(s),
		thin:    !opts.Traditional,
		unabs:   opts.Unabstracted,
		control: opts.TrackControl,
		statics: make([]depgraph.Ref, len(prog.Statics)),
		enabled: true,
	}
	if !opts.Traditional {
		p.prune = opts.Prune
	}
	if opts.TrackCR {
		p.cr = NewCRTracker(prog, s)
	}
	if p.unabs {
		p.instCount = make([]int, prog.NumInstrs())
		p.unabsCap = opts.UnabstractedCap
		if p.unabsCap == 0 {
			p.unabsCap = 1 << 20
		}
	}
	if !opts.LegacyGraph && !p.unabs && p.cr == nil && !p.control {
		t := p.G.DenseTables()
		p.tIdx, p.tFreq, p.tW = t.Idx, t.Freq, t.Width
		p.fast = true
	}
	return p
}

// NewCRTracker returns the conflict tracker used when Options.TrackCR is
// set; exposed for tests.
func NewCRTracker(prog *ir.Program, s int) *contextenc.ConflictTracker {
	return contextenc.NewConflictTracker(contextenc.NewSlots(s), prog.NumInstrs())
}

// SetEnabled toggles graph construction; used for phase-restricted tracking
// ("track only the steady-state portion of a server's run").
func (p *Profiler) SetEnabled(on bool) { p.enabled = on }

// Enabled reports whether graph construction is active.
func (p *Profiler) Enabled() bool { return p.enabled }

// CR returns the conflict tracker (nil unless TrackCR was set).
func (p *Profiler) CR() *contextenc.ConflictTracker { return p.cr }

// Slots returns the configured s.
func (p *Profiler) Slots() int { return p.slots.S }

// ShadowNodes exposes the frame's shadow locals: for each local slot, the
// node that last wrote it (nil if untracked). Wrapping clients use it to
// observe tracking data without re-implementing Figure 4; the slice is
// materialized per call, so it is not for per-event use.
func (p *Profiler) ShadowNodes(fr *interp.Frame) []*depgraph.Node {
	refs := p.fshadow(fr).nodes
	out := make([]*depgraph.Node, len(refs))
	for i, r := range refs {
		out[i] = p.G.At(r)
	}
	return out
}

// fshadow returns (creating if needed) the frame's shadow state.
func (p *Profiler) fshadow(fr *interp.Frame) *frameShadow {
	if fr == p.curFrame {
		return p.cur
	}
	if fs, ok := fr.Shadow.(*frameShadow); ok {
		p.curFrame, p.cur = fr, fs
		return fs
	}
	fs := &frameShadow{nodes: make([]depgraph.Ref, len(fr.Locals))}
	fs.slot = p.slots.Slot(fs.ctx)
	fr.Shadow = fs
	p.curFrame, p.cur = fr, fs
	return fs
}

// newObjShadow carves a shadow record with n slots from the slabs.
func (p *Profiler) newObjShadow(n int) *objShadow {
	if len(p.osSlab) == 0 {
		p.osSlab = make([]objShadow, 256)
	}
	os := &p.osSlab[0]
	p.osSlab = p.osSlab[1:]
	if n > 0 {
		if len(p.slotSlab) < n {
			c := 1024
			if n > c {
				c = n
			}
			p.slotSlab = make([]depgraph.Ref, c)
		}
		os.slots = p.slotSlab[:n:n]
		p.slotSlab = p.slotSlab[n:]
	}
	return os
}

// oshadow returns (creating if needed) the object's shadow state.
func (p *Profiler) oshadow(o *interp.Object) *objShadow {
	if os, ok := o.Shadow.(*objShadow); ok {
		return os
	}
	var n int
	if o.IsArray() {
		n = len(o.Elems)
	} else {
		n = len(o.Fields)
	}
	os := p.newObjShadow(n)
	o.Shadow = os
	return os
}

// node maps an instruction instance executing in frame shadow fs to its
// abstract node and bumps its frequency (the Touch of Definition 2's
// abstraction function f_a).
func (p *Profiler) node(in *ir.Instr, fs *frameShadow) *depgraph.Node {
	var n *depgraph.Node
	if p.unabs {
		c := p.instCount[in.ID]
		if c < p.unabsCap {
			p.instCount[in.ID] = c + 1
		}
		n = p.G.TouchFast(in, c)
	} else {
		if p.cr != nil {
			p.cr.Observe(in.ID, fs.ctx)
		}
		n = p.G.TouchFast(in, fs.slot)
	}
	if p.control && fs.lastPred != 0 {
		p.G.AddDepRef(n, fs.lastPred)
	}
	return n
}

// consumerNode maps a predicate or native instruction to its context-free
// node.
func (p *Profiler) consumerNode(in *ir.Instr) *depgraph.Node {
	return p.G.TouchFast(in, depgraph.NoContext)
}

// eventRefFast is the inlined intern hit path: probe the cached dense index
// for (in, fs.slot) and bump the frequency table. Returns NilRef on a miss
// or when the fast path is off; callers then take eventRefSlow.
func (p *Profiler) eventRefFast(in *ir.Instr, fs *frameShadow) depgraph.Ref {
	if !p.fast {
		return 0
	}
	if v := p.tIdx[in.ID*p.tW+fs.slot+1]; v != 0 {
		p.tFreq[v-1]++
		return depgraph.Ref(v)
	}
	return 0
}

// eventRefSlow interns on a dense miss (re-fetching the grown frequency
// table) or runs the general node mapping when the fast path is off.
func (p *Profiler) eventRefSlow(in *ir.Instr, fs *frameShadow) depgraph.Ref {
	if p.fast {
		n := p.G.Touch(in, fs.slot)
		p.tFreq = p.G.DenseTables().Freq
		return n.Ref()
	}
	return p.node(in, fs).Ref()
}

// consumerRefFast is eventRefFast for context-free consumer nodes (d =
// NoContext, dense row offset 0).
func (p *Profiler) consumerRefFast(in *ir.Instr) depgraph.Ref {
	if !p.fast {
		return 0
	}
	if v := p.tIdx[in.ID*p.tW]; v != 0 {
		p.tFreq[v-1]++
		return depgraph.Ref(v)
	}
	return 0
}

// consumerRefSlow is eventRefSlow for consumer nodes.
func (p *Profiler) consumerRefSlow(in *ir.Instr) depgraph.Ref {
	if p.fast {
		n := p.G.Touch(in, depgraph.NoContext)
		p.tFreq = p.G.DenseTables().Freq
		return n.Ref()
	}
	return p.consumerNode(in).Ref()
}

// eventNode maps the event to its node for the cases that need the record
// itself (allocation tagging, heap-effect annotation).
func (p *Profiler) eventNode(in *ir.Instr, fs *frameShadow) *depgraph.Node {
	if r := p.eventRefFast(in, fs); r != 0 {
		return p.G.At(r)
	}
	return p.G.At(p.eventRefSlow(in, fs))
}

// Exec implements interp.Tracer.
func (p *Profiler) Exec(ev *interp.Event) {
	if !p.enabled {
		return
	}
	in := ev.In
	if p.prune != nil && in.ID < len(p.prune) && p.prune[in.ID] {
		return
	}
	fs := p.fshadow(ev.Frame)
	g := p.G

	switch in.Op {
	case ir.OpConst:
		r := p.eventRefFast(in, fs)
		if r == 0 {
			r = p.eventRefSlow(in, fs)
		}
		fs.nodes[in.Dst] = r

	case ir.OpMove:
		r := p.eventRefFast(in, fs)
		if r == 0 {
			r = p.eventRefSlow(in, fs)
		}
		g.AddDepRefs(r, fs.nodes[in.A])
		fs.nodes[in.Dst] = r

	case ir.OpBin:
		r := p.eventRefFast(in, fs)
		if r == 0 {
			r = p.eventRefSlow(in, fs)
		}
		g.AddDepRefs(r, fs.nodes[in.A])
		g.AddDepRefs(r, fs.nodes[in.B])
		fs.nodes[in.Dst] = r

	case ir.OpNeg, ir.OpNot, ir.OpInstanceOf:
		r := p.eventRefFast(in, fs)
		if r == 0 {
			r = p.eventRefSlow(in, fs)
		}
		g.AddDepRefs(r, fs.nodes[in.A])
		fs.nodes[in.Dst] = r

	case ir.OpNew:
		n := p.eventNode(in, fs)
		n.Eff = depgraph.EffAlloc
		if n.EffLoc.Alloc != n {
			n.EffLoc = depgraph.Loc{Alloc: n}
		}
		fs.nodes[in.Dst] = n.Ref()
		p.oshadow(ev.New).tag = n.Ref()

	case ir.OpNewArray:
		n := p.eventNode(in, fs)
		n.Eff = depgraph.EffAlloc
		if n.EffLoc.Alloc != n {
			n.EffLoc = depgraph.Loc{Alloc: n}
		}
		g.AddDepRef(n, fs.nodes[in.A]) // the length value is consumed
		fs.nodes[in.Dst] = n.Ref()
		p.oshadow(ev.New).tag = n.Ref()

	case ir.OpLoadField:
		n := p.eventNode(in, fs)
		os := p.oshadow(ev.Base)
		if in.Field.Slot < len(os.slots) {
			g.AddDepRef(n, os.slots[in.Field.Slot])
		}
		if !p.thin {
			g.AddDepRef(n, fs.nodes[in.A]) // base-pointer use (traditional)
		}
		loc := depgraph.Loc{Alloc: g.At(os.tag), Field: in.Field.ID}
		n.Eff = depgraph.EffLoad
		if n.EffLoc != loc {
			n.EffLoc = loc
		}
		g.AddLocLoad(loc, n)
		fs.nodes[in.Dst] = n.Ref()

	case ir.OpStoreField:
		n := p.eventNode(in, fs)
		g.AddDepRef(n, fs.nodes[in.B])
		if !p.thin {
			g.AddDepRef(n, fs.nodes[in.A])
		}
		os := p.oshadow(ev.Base)
		if in.Field.Slot < len(os.slots) {
			os.slots[in.Field.Slot] = n.Ref()
		}
		loc := depgraph.Loc{Alloc: g.At(os.tag), Field: in.Field.ID}
		n.Eff = depgraph.EffStore
		if n.EffLoc != loc {
			n.EffLoc = loc
		}
		g.AddLocStore(loc, n)
		g.AddRefs(n.Ref(), os.tag)
		if ev.Val.K == ir.KindRef && ev.Val.Ref != nil {
			g.AddChild(loc, g.At(p.oshadow(ev.Val.Ref).tag))
		}

	case ir.OpLoadStatic:
		n := p.eventNode(in, fs)
		g.AddDepRef(n, p.statics[in.Static.Slot])
		loc := depgraph.Loc{Alloc: nil, Field: in.Static.Slot}
		n.Eff = depgraph.EffLoad
		if n.EffLoc != loc {
			n.EffLoc = loc
		}
		g.AddLocLoad(loc, n)
		fs.nodes[in.Dst] = n.Ref()

	case ir.OpStoreStatic:
		n := p.eventNode(in, fs)
		g.AddDepRef(n, fs.nodes[in.A])
		p.statics[in.Static.Slot] = n.Ref()
		loc := depgraph.Loc{Alloc: nil, Field: in.Static.Slot}
		n.Eff = depgraph.EffStore
		if n.EffLoc != loc {
			n.EffLoc = loc
		}
		g.AddLocStore(loc, n)
		if ev.Val.K == ir.KindRef && ev.Val.Ref != nil {
			g.AddChild(loc, g.At(p.oshadow(ev.Val.Ref).tag))
		}

	case ir.OpALoad:
		n := p.eventNode(in, fs)
		os := p.oshadow(ev.Base)
		if int(ev.Index) < len(os.slots) {
			g.AddDepRef(n, os.slots[ev.Index])
		}
		g.AddDepRef(n, fs.nodes[in.B]) // the index is still considered used
		if !p.thin {
			g.AddDepRef(n, fs.nodes[in.A])
		}
		loc := depgraph.Loc{Alloc: g.At(os.tag), Field: depgraph.ElemField}
		n.Eff = depgraph.EffLoad
		if n.EffLoc != loc {
			n.EffLoc = loc
		}
		g.AddLocLoad(loc, n)
		fs.nodes[in.Dst] = n.Ref()

	case ir.OpAStore:
		n := p.eventNode(in, fs)
		g.AddDepRef(n, fs.nodes[in.C2])
		g.AddDepRef(n, fs.nodes[in.B])
		if !p.thin {
			g.AddDepRef(n, fs.nodes[in.A])
		}
		os := p.oshadow(ev.Base)
		if int(ev.Index) < len(os.slots) {
			os.slots[ev.Index] = n.Ref()
		}
		loc := depgraph.Loc{Alloc: g.At(os.tag), Field: depgraph.ElemField}
		n.Eff = depgraph.EffStore
		if n.EffLoc != loc {
			n.EffLoc = loc
		}
		g.AddLocStore(loc, n)
		g.AddRefs(n.Ref(), os.tag)
		if ev.Val.K == ir.KindRef && ev.Val.Ref != nil {
			g.AddChild(loc, g.At(p.oshadow(ev.Val.Ref).tag))
		}

	case ir.OpArrayLen:
		// The length is metadata fixed at allocation; model the read as a
		// heap load whose last writer is the allocation node.
		n := p.eventNode(in, fs)
		os := p.oshadow(ev.Base)
		g.AddDepRefs(n.Ref(), os.tag)
		loc := depgraph.Loc{Alloc: g.At(os.tag), Field: depgraph.ElemField}
		n.Eff = depgraph.EffLoad
		if n.EffLoc != loc {
			n.EffLoc = loc
		}
		fs.nodes[in.Dst] = n.Ref()

	case ir.OpIf:
		r := p.consumerRefFast(in)
		if r == 0 {
			r = p.consumerRefSlow(in)
		}
		g.AddDepRefs(r, fs.nodes[in.A])
		g.AddDepRefs(r, fs.nodes[in.B])
		if p.control {
			fs.lastPred = r
		}

	case ir.OpNative:
		r := p.consumerRefFast(in)
		if r == 0 {
			r = p.consumerRefSlow(in)
		}
		for _, a := range in.Args {
			g.AddDepRefs(r, fs.nodes[a])
		}
		if in.Dst >= 0 {
			fs.nodes[in.Dst] = r
		}
	}
}

// BeforeCall implements interp.Tracer: it pushes the actuals' tracking data
// and the callee's object context (the caller chain extended with the
// receiver's allocation site; unchanged for static callees).
func (p *Profiler) BeforeCall(in *ir.Instr, caller *interp.Frame, callee *ir.Method, recv *interp.Object) {
	fs := p.fshadow(caller)
	if cap(p.pendingArgs) < len(in.Args) {
		p.pendingArgs = make([]depgraph.Ref, len(in.Args))
	}
	p.pendingArgs = p.pendingArgs[:len(in.Args)]
	for i, a := range in.Args {
		p.pendingArgs[i] = fs.nodes[a]
	}
	if recv != nil {
		ctx := contextenc.Extend(fs.ctx, recv.Site)
		p.pendingCtx = ctx
		p.pendingSlot = p.slots.Slot(ctx)
	} else {
		p.pendingCtx = fs.ctx
		p.pendingSlot = fs.slot
	}
	p.havePending = true
}

// newFrameShadow returns a shadow with room for n locals, reusing a pooled
// record when one fits. The first keep slots are left dirty — the caller
// overwrites them with the staged argument shadows — and only the rest is
// cleared.
func (p *Profiler) newFrameShadow(n, keep int) *frameShadow {
	if len(p.fsPool) > 0 {
		fs := p.fsPool[len(p.fsPool)-1]
		p.fsPool = p.fsPool[:len(p.fsPool)-1]
		if cap(fs.nodes) < n {
			fs.nodes = make([]depgraph.Ref, n)
		} else {
			fs.nodes = fs.nodes[:n]
			if keep > n {
				keep = n
			}
			clear(fs.nodes[keep:])
		}
		fs.ctx = contextenc.EmptyContext
		fs.slot = 0
		fs.lastPred = 0
		return fs
	}
	return &frameShadow{nodes: make([]depgraph.Ref, n)}
}

// EnterMethod implements interp.Tracer: formals receive the actuals'
// tracking data and the frame adopts the pushed context.
func (p *Profiler) EnterMethod(fr *interp.Frame, recv *interp.Object) {
	keep := 0
	if p.havePending {
		keep = len(p.pendingArgs)
	}
	fs := p.newFrameShadow(fr.Method.NumLocals, keep)
	if p.havePending {
		copy(fs.nodes, p.pendingArgs)
		fs.ctx = p.pendingCtx
		fs.slot = p.pendingSlot
		p.havePending = false
	} else if recv != nil {
		// Entry via CallMethod with a receiver: root the chain there.
		fs.ctx = contextenc.Extend(contextenc.EmptyContext, recv.Site)
		fs.slot = p.slots.Slot(fs.ctx)
	}
	fr.Shadow = fs
	p.curFrame, p.cur = fr, fs
	// Call boundaries are where TouchFast's deferred snapshot invalidation
	// is flushed (the batched-increment flush point).
	p.G.Invalidate()
}

// BeforeReturn implements interp.Tracer: the return value's tracking data is
// pushed for the caller to pop.
func (p *Profiler) BeforeReturn(in *ir.Instr, fr *interp.Frame) {
	if in.HasA {
		p.pendingRet = p.fshadow(fr).nodes[in.A]
	} else {
		p.pendingRet = 0
	}
	// The frame pops right after this hook; reclaim its shadow. fr.Shadow
	// stays attached because wrapping tracers (e.g. MethodCostTracker) peek
	// at it synchronously after delegating here — the record is only reused
	// at the next EnterMethod, by which point the pop has fully completed.
	if fs, ok := fr.Shadow.(*frameShadow); ok {
		p.fsPool = append(p.fsPool, fs)
	}
	if fr == p.curFrame {
		p.curFrame, p.cur = nil, nil
	}
	p.G.Invalidate()
}

// StagedReturn returns the node staged by the most recent BeforeReturn — the
// return value's tracking data awaiting AfterCall. Wrapping clients read it
// here instead of re-deriving the popped frame's shadow.
func (p *Profiler) StagedReturn() *depgraph.Node { return p.G.At(p.pendingRet) }

// AfterCall implements interp.Tracer: a call site with a destination acts as
// an assignment from the returned value, creating a node in the caller's
// context.
func (p *Profiler) AfterCall(in *ir.Instr, caller *interp.Frame, hasValue bool) {
	ret := p.pendingRet
	p.pendingRet = 0
	if !hasValue || in == nil || in.Dst < 0 {
		return
	}
	fs := p.fshadow(caller)
	if !p.enabled {
		return
	}
	n := p.node(in, fs)
	if p.fast {
		// node() bypasses eventRefSlow, so an intern miss here can grow the
		// dense frequency table without the usual re-fetch; a stale tFreq
		// would silently drop every fast-path increment until the next slow
		// path runs.
		p.tFreq = p.G.DenseTables().Freq
	}
	p.G.AddDepRef(n, ret)
	fs.nodes[in.Dst] = n.Ref()
}

var _ interp.Tracer = (*Profiler)(nil)

// NewFromGraph wraps a reloaded graph (depgraph.Decode) in a Profiler so
// offline analyses can use the same access paths as live ones. The returned
// profiler must not be attached to a machine.
func NewFromGraph(prog *ir.Program, g *depgraph.Graph) *Profiler {
	return &Profiler{
		G:       g,
		Prog:    prog,
		slots:   contextenc.NewSlots(16),
		thin:    true,
		statics: make([]depgraph.Ref, len(prog.Statics)),
		cr:      NewCRTracker(prog, 16),
	}
}
