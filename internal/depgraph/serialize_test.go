package depgraph_test

import (
	"bytes"
	"strings"
	"testing"

	"lowutil/internal/costben"
	"lowutil/internal/deadness"
	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/profiler"
	"lowutil/internal/testprogs"
	"lowutil/internal/workloads"
)

// TestRoundTripPreservesAnalyses: serialize a real Gcost, reload it, and
// verify every downstream analysis produces identical results — the §3.2
// offline-analysis deployment mode.
func TestRoundTripPreservesAnalyses(t *testing.T) {
	fig := testprogs.Figure3(30, 20)
	p := profiler.New(fig.Prog, profiler.Options{Slots: 16})
	m := interp.New(fig.Prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := p.G.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := depgraph.Decode(bytes.NewReader(buf.Bytes()), fig.Prog)
	if err != nil {
		t.Fatal(err)
	}

	if g2.NumNodes() != p.G.NumNodes() || g2.NumDepEdges() != p.G.NumDepEdges() ||
		g2.NumRefEdges() != p.G.NumRefEdges() || g2.TotalFreq() != p.G.TotalFreq() {
		t.Fatalf("graph shape changed: nodes %d/%d edges %d/%d refs %d/%d freq %d/%d",
			p.G.NumNodes(), g2.NumNodes(), p.G.NumDepEdges(), g2.NumDepEdges(),
			p.G.NumRefEdges(), g2.NumRefEdges(), p.G.TotalFreq(), g2.TotalFreq())
	}

	// Cost-benefit ranking must match exactly.
	a1 := costben.NewAnalysis(p.G)
	a2 := costben.NewAnalysis(g2)
	r1 := costben.FormatTop(a1.RankBySite(4), 10)
	r2 := costben.FormatTop(a2.RankBySite(4), 10)
	if r1 != r2 {
		t.Errorf("rankings differ after round trip:\n--- live ---\n%s--- loaded ---\n%s", r1, r2)
	}

	// Deadness must match exactly.
	d1 := deadness.Analyze(p.G, m.Steps)
	d2 := deadness.Analyze(g2, m.Steps)
	if d1.IPD() != d2.IPD() || d1.IPP() != d2.IPP() || d1.NLD() != d2.NLD() {
		t.Errorf("deadness differs: %v/%v/%v vs %v/%v/%v",
			d1.IPD(), d1.IPP(), d1.NLD(), d2.IPD(), d2.IPP(), d2.NLD())
	}
}

func TestSerializationDeterministic(t *testing.T) {
	fig := testprogs.Figure6(10, 5)
	p := profiler.New(fig.Prog, profiler.Options{Slots: 8})
	m := interp.New(fig.Prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := p.G.Encode(&b1); err != nil {
		t.Fatal(err)
	}
	if err := p.G.Encode(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("serialization is not deterministic")
	}
}

func TestLoadIntoWrongProgramRejected(t *testing.T) {
	fig := testprogs.Figure3(5, 5)
	p := profiler.New(fig.Prog, profiler.Options{Slots: 8})
	m := interp.New(fig.Prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.G.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := workloads.ByName("chart").Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := depgraph.Decode(bytes.NewReader(buf.Bytes()), other); err == nil ||
		!strings.Contains(err.Error(), "different program") {
		t.Fatalf("want fingerprint rejection, got %v", err)
	}
}

func TestLoadGarbageRejected(t *testing.T) {
	fig := testprogs.Figure3(2, 2)
	if _, err := depgraph.Decode(strings.NewReader("not json"), fig.Prog); err == nil {
		t.Error("want decode error")
	}
	if _, err := depgraph.Decode(strings.NewReader(`{"version":99}`), fig.Prog); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Errorf("want version error, got %v", err)
	}
}
