package staticanalysis

import "lowutil/internal/ir"

// ReachingDefs is the per-method reaching-definitions solution plus the
// def-use chains derived from it. Definitions are instruction pcs that write
// a slot; each parameter contributes one pseudo-definition at method entry,
// numbered len(m.Code)+slot.
type ReachingDefs struct {
	Method *ir.Method
	CFG    *ir.CFG

	sol *Solution
	// defsOfSlot[s] is the bit set of definitions writing slot s.
	defsOfSlot []BitSet

	// uses[d] lists the uses reached by definition d (a pc, or a param
	// pseudo-def index). Built lazily by DefUse.
	uses [][]Use
}

// Use is one read of a definition's value.
type Use struct {
	// PC is the reading instruction.
	PC int
	// Base marks a base-pointer read (the object/array operand of a field or
	// element access), which thin slicing excludes from value flow.
	Base bool
}

// ParamDef returns the pseudo-definition index of parameter slot s.
func (rd *ReachingDefs) ParamDef(s int) int { return len(rd.Method.Code) + s }

// IsParamDef reports whether definition d is a parameter pseudo-definition.
func (rd *ReachingDefs) IsParamDef(d int) bool { return d >= len(rd.Method.Code) }

// NewReachingDefs computes reaching definitions for m over cfg (nil builds a
// fresh CFG).
func NewReachingDefs(m *ir.Method, cfg *ir.CFG) *ReachingDefs {
	if cfg == nil {
		cfg = ir.NewCFG(m)
	}
	n := len(m.Code)
	bitCount := n + m.Params // real defs + param pseudo-defs
	rd := &ReachingDefs{Method: m, CFG: cfg, defsOfSlot: make([]BitSet, m.NumLocals)}
	for s := range rd.defsOfSlot {
		rd.defsOfSlot[s] = NewBitSet(bitCount)
	}
	for pc := range m.Code {
		if d := m.Code[pc].Def(); d >= 0 {
			rd.defsOfSlot[d].Set(pc)
		}
	}
	boundary := NewBitSet(bitCount)
	for s := 0; s < m.Params && s < m.NumLocals; s++ {
		rd.defsOfSlot[s].Set(n + s)
		boundary.Set(n + s)
	}

	nb := cfg.NumBlocks()
	p := &Problem{
		CFG:      cfg,
		Bits:     bitCount,
		Gen:      make([]BitSet, nb),
		Kill:     make([]BitSet, nb),
		Boundary: boundary,
	}
	for b := 0; b < nb; b++ {
		gen := NewBitSet(bitCount)
		kill := NewBitSet(bitCount)
		blk := &cfg.Blocks[b]
		for pc := blk.Start; pc < blk.End; pc++ {
			if d := m.Code[pc].Def(); d >= 0 {
				kill.UnionWith(rd.defsOfSlot[d])
				gen.AndNot(rd.defsOfSlot[d])
				gen.Set(pc)
			}
		}
		p.Gen[b] = gen
		p.Kill[b] = kill
	}
	rd.sol = Solve(p)
	return rd
}

// ReachIn returns the definitions reaching block b's entry (solver-owned).
func (rd *ReachingDefs) ReachIn(b int) BitSet { return rd.sol.In[b] }

// DefUse returns the def-use chains: for each definition d (a pc with a
// destination, or a parameter pseudo-def), the list of uses its value can
// reach. Locals are frame-private, so the chains are complete — there is no
// interprocedural aliasing to miss.
func (rd *ReachingDefs) DefUse() [][]Use {
	if rd.uses != nil {
		return rd.uses
	}
	m := rd.Method
	n := len(m.Code)
	rd.uses = make([][]Use, n+m.Params)
	cur := NewBitSet(n + m.Params)
	for _, b := range rd.CFG.RPO {
		blk := &rd.CFG.Blocks[b]
		cur.CopyFrom(rd.sol.In[b])
		for pc := blk.Start; pc < blk.End; pc++ {
			in := &m.Code[pc]
			in.Uses(func(s int, base bool) {
				reach := NewBitSet(n + m.Params)
				reach.CopyFrom(cur)
				reach.IntersectWith(rd.defsOfSlot[s])
				reach.Range(func(d int) {
					rd.uses[d] = append(rd.uses[d], Use{PC: pc, Base: base})
				})
			})
			if d := in.Def(); d >= 0 {
				cur.AndNot(rd.defsOfSlot[d])
				cur.Set(pc)
			}
		}
	}
	return rd.uses
}
