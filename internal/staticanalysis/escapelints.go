package staticanalysis

import (
	"fmt"

	"lowutil/internal/escape"
	"lowutil/internal/interproc"
	"lowutil/internal/ir"
)

// escapeLints runs the SSA-based escape/lifetime analysis and converts its
// shape verdicts into vet findings: confined-alloc-in-loop for non-escaping
// allocations renewed every iteration of the loop they never leave, and
// copy-chain for alloc → populate → copy-out → drop containers. Both
// engines call this helper unchanged, so the two kinds are identical across
// the dense and SSA vet pipelines by construction. A nil analysis disables
// the checks (they are inherently whole-program).
func escapeLints(an *interproc.Analysis) []Finding {
	if an == nil {
		return nil
	}
	r := escape.Analyze(an)
	var out []Finding
	for i := range r.Sites {
		si := &r.Sites[i]
		site := si.Site
		if si.InLoop {
			out = append(out, Finding{
				Kind:   KindConfinedAllocInLoop,
				Class:  site.Method.Class.Name,
				Method: site.Method.Name,
				PC:     site.PC,
				Line:   site.Line,
				Detail: fmt.Sprintf("allocation of %s never leaves its loop iteration: hoist or reuse one instance", allocLintName(site)),
			})
		}
		if si.CopyChain {
			out = append(out, Finding{
				Kind:   KindCopyChain,
				Class:  site.Method.Class.Name,
				Method: site.Method.Name,
				PC:     site.PC,
				Line:   site.Line,
				Detail: fmt.Sprintf("%s is a copy chain: populated, copied out into another structure, then dropped", allocLintName(site)),
			})
		}
	}
	return out
}

func allocLintName(site *ir.Instr) string {
	if site.Op == ir.OpNew {
		return "new " + site.Class.Name
	}
	return "new " + site.Elem.String() + "[]"
}
