// Package ast defines the abstract syntax tree for MJ source programs,
// produced by internal/parser and consumed by internal/sem and
// internal/codegen.
package ast

import (
	"fmt"
	"strings"

	"lowutil/internal/lexer"
)

// Program is a parsed compilation unit.
type Program struct {
	Classes []*ClassDecl
}

// ClassDecl is a class declaration.
type ClassDecl struct {
	Name    string
	Extends string // "" for none
	Fields  []*FieldDecl
	Methods []*MethodDecl
	Pos     lexer.Pos
}

// FieldDecl is an instance field declaration.
type FieldDecl struct {
	Name string
	Type *TypeRef
	Pos  lexer.Pos
}

// MethodDecl is a method declaration. Void methods have Returns == nil.
type MethodDecl struct {
	Name    string
	Static  bool
	Params  []*Param
	Returns *TypeRef // nil = void
	Body    *Block
	Pos     lexer.Pos
}

// Param is a formal parameter.
type Param struct {
	Name string
	Type *TypeRef
	Pos  lexer.Pos
}

// TypeRef is a syntactic type: a base (int, boolean, or a class name) plus
// an array dimension count.
type TypeRef struct {
	Base string // "int", "boolean", or class name
	Dims int
	Pos  lexer.Pos
}

func (t *TypeRef) String() string {
	return t.Base + strings.Repeat("[]", t.Dims)
}

// ---- Statements ----

// Stmt is implemented by all statement nodes.
type Stmt interface {
	stmtNode()
	StmtPos() lexer.Pos
}

// Block is { stmts... } with its own scope.
type Block struct {
	Stmts []Stmt
	Pos   lexer.Pos
}

// VarDecl declares a local variable, optionally initialized.
type VarDecl struct {
	Name string
	Type *TypeRef
	Init Expr // may be nil
	Pos  lexer.Pos
}

// AssignStmt assigns to a local, a field, or an array element.
type AssignStmt struct {
	LHS Expr // Name, FieldAccess, or IndexExpr
	RHS Expr
	Pos lexer.Pos
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
	Pos  lexer.Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  lexer.Pos
}

// ForStmt is for(init; cond; post) body; any part may be nil.
type ForStmt struct {
	Init Stmt // VarDecl, AssignStmt or ExprStmt
	Cond Expr
	Post Stmt
	Body Stmt
	Pos  lexer.Pos
}

// ReturnStmt returns an optional value.
type ReturnStmt struct {
	Value Expr // may be nil
	Pos   lexer.Pos
}

// ExprStmt evaluates an expression for effect (a call).
type ExprStmt struct {
	X   Expr
	Pos lexer.Pos
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos lexer.Pos }

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct{ Pos lexer.Pos }

func (*Block) stmtNode()        {}
func (*VarDecl) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}

// StmtPos implements Stmt.
func (s *Block) StmtPos() lexer.Pos        { return s.Pos }
func (s *VarDecl) StmtPos() lexer.Pos      { return s.Pos }
func (s *AssignStmt) StmtPos() lexer.Pos   { return s.Pos }
func (s *IfStmt) StmtPos() lexer.Pos       { return s.Pos }
func (s *WhileStmt) StmtPos() lexer.Pos    { return s.Pos }
func (s *ForStmt) StmtPos() lexer.Pos      { return s.Pos }
func (s *ReturnStmt) StmtPos() lexer.Pos   { return s.Pos }
func (s *ExprStmt) StmtPos() lexer.Pos     { return s.Pos }
func (s *BreakStmt) StmtPos() lexer.Pos    { return s.Pos }
func (s *ContinueStmt) StmtPos() lexer.Pos { return s.Pos }

// ---- Expressions ----

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
	ExprPos() lexer.Pos
}

// IntLit is an integer (or char) literal.
type IntLit struct {
	Value int64
	Pos   lexer.Pos
}

// BoolLit is true/false.
type BoolLit struct {
	Value bool
	Pos   lexer.Pos
}

// NullLit is null.
type NullLit struct{ Pos lexer.Pos }

// ThisExpr is this.
type ThisExpr struct{ Pos lexer.Pos }

// Name references a local variable (after resolution).
type Name struct {
	Ident string
	Pos   lexer.Pos
}

// BinaryExpr is a binary operation, including comparisons and the
// short-circuit && / || forms.
type BinaryExpr struct {
	Op   lexer.Kind // Plus..Shr, Eq..Ge, AmpAmp, PipePipe
	L, R Expr
	Pos  lexer.Pos
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	Op  lexer.Kind // Minus or Bang
	X   Expr
	Pos lexer.Pos
}

// FieldAccess is expr.field.
type FieldAccess struct {
	X     Expr
	Field string
	Pos   lexer.Pos
}

// IndexExpr is expr[expr].
type IndexExpr struct {
	X, Index Expr
	Pos      lexer.Pos
}

// LenExpr is expr.length (array length).
type LenExpr struct {
	X   Expr
	Pos lexer.Pos
}

// CallExpr is receiver.method(args) — or, with X == nil, either a call to a
// method of the current class or a native function.
type CallExpr struct {
	X      Expr // nil = unqualified
	Method string
	Args   []Expr
	Pos    lexer.Pos
}

// NewExpr is new Class().
type NewExpr struct {
	Class string
	Pos   lexer.Pos
}

// NewArrayExpr is new base[len][]... with Dims total dimensions, of which
// the first is sized by Len (only one sized dimension is supported).
type NewArrayExpr struct {
	Base string
	Dims int
	Len  Expr
	Pos  lexer.Pos
}

// InstanceOfExpr is expr instanceof Class.
type InstanceOfExpr struct {
	X     Expr
	Class string
	Pos   lexer.Pos
}

func (*IntLit) exprNode()         {}
func (*BoolLit) exprNode()        {}
func (*NullLit) exprNode()        {}
func (*ThisExpr) exprNode()       {}
func (*Name) exprNode()           {}
func (*BinaryExpr) exprNode()     {}
func (*UnaryExpr) exprNode()      {}
func (*FieldAccess) exprNode()    {}
func (*IndexExpr) exprNode()      {}
func (*LenExpr) exprNode()        {}
func (*CallExpr) exprNode()       {}
func (*NewExpr) exprNode()        {}
func (*NewArrayExpr) exprNode()   {}
func (*InstanceOfExpr) exprNode() {}

// ExprPos implements Expr.
func (e *IntLit) ExprPos() lexer.Pos         { return e.Pos }
func (e *BoolLit) ExprPos() lexer.Pos        { return e.Pos }
func (e *NullLit) ExprPos() lexer.Pos        { return e.Pos }
func (e *ThisExpr) ExprPos() lexer.Pos       { return e.Pos }
func (e *Name) ExprPos() lexer.Pos           { return e.Pos }
func (e *BinaryExpr) ExprPos() lexer.Pos     { return e.Pos }
func (e *UnaryExpr) ExprPos() lexer.Pos      { return e.Pos }
func (e *FieldAccess) ExprPos() lexer.Pos    { return e.Pos }
func (e *IndexExpr) ExprPos() lexer.Pos      { return e.Pos }
func (e *LenExpr) ExprPos() lexer.Pos        { return e.Pos }
func (e *CallExpr) ExprPos() lexer.Pos       { return e.Pos }
func (e *NewExpr) ExprPos() lexer.Pos        { return e.Pos }
func (e *NewArrayExpr) ExprPos() lexer.Pos   { return e.Pos }
func (e *InstanceOfExpr) ExprPos() lexer.Pos { return e.Pos }

// Dump renders the AST for debugging and golden tests.
func Dump(p *Program) string {
	var sb strings.Builder
	for _, c := range p.Classes {
		fmt.Fprintf(&sb, "class %s", c.Name)
		if c.Extends != "" {
			fmt.Fprintf(&sb, " extends %s", c.Extends)
		}
		sb.WriteString("\n")
		for _, f := range c.Fields {
			fmt.Fprintf(&sb, "  field %s %s\n", f.Type, f.Name)
		}
		for _, m := range c.Methods {
			mods := ""
			if m.Static {
				mods = "static "
			}
			ret := "void"
			if m.Returns != nil {
				ret = m.Returns.String()
			}
			var ps []string
			for _, p := range m.Params {
				ps = append(ps, p.Type.String()+" "+p.Name)
			}
			fmt.Fprintf(&sb, "  %smethod %s %s(%s) [%d stmts]\n", mods, ret, m.Name,
				strings.Join(ps, ", "), len(m.Body.Stmts))
		}
	}
	return sb.String()
}
