package fuzzgen

import (
	"fmt"
	"strings"
)

// Config bounds the generated program's shape. The zero value is replaced
// by DefaultConfig; Generate additionally randomizes within these bounds
// so one seed stream covers many program sizes.
type Config struct {
	// MaxSubclasses bounds the Base hierarchy's subclass count (>= 1).
	MaxSubclasses int
	// MaxWorkers bounds the worker-class count (>= 1).
	MaxWorkers int
	// MaxMethods bounds generated methods per worker class (>= 1).
	MaxMethods int
	// MaxStmts bounds statements per generated block (>= 2).
	MaxStmts int
	// MaxDepth bounds block nesting inside a method body.
	MaxDepth int
}

// DefaultConfig is the shape used by the CLI and the soak scripts.
var DefaultConfig = Config{
	MaxSubclasses: 3,
	MaxWorkers:    3,
	MaxMethods:    3,
	MaxStmts:      7,
	MaxDepth:      3,
}

func (c Config) withDefaults() Config {
	d := DefaultConfig
	if c.MaxSubclasses > 0 {
		d.MaxSubclasses = c.MaxSubclasses
	}
	if c.MaxWorkers > 0 {
		d.MaxWorkers = c.MaxWorkers
	}
	if c.MaxMethods > 0 {
		d.MaxMethods = c.MaxMethods
	}
	if c.MaxStmts > 1 {
		d.MaxStmts = c.MaxStmts
	}
	if c.MaxDepth > 0 {
		d.MaxDepth = c.MaxDepth
	}
	return d
}

// genMethod is one callable target in the global generation order.
type genMethod struct {
	class  string
	m      *Method
	static bool
	// depthParam marks the bounded-recursion depth parameter (index 0 of
	// the rec method); callers pass a small positive constant.
	depthParam bool
}

// refVar is an in-scope, definitely-non-null reference variable.
type refVar struct {
	name  string
	class string
}

// arrVar is an in-scope, fully initialized array variable.
type arrVar struct {
	name string
	n    int
	elem string // element class for ref arrays, "" for int arrays
}

// gen carries the whole-program generation state.
type gen struct {
	r   *rng
	cfg Config
	p   *Prog

	hier    []string            // Base first, then subclasses
	parent  map[string]string   // class -> superclass ("" for Base)
	intFlds map[string][]string // class -> accessible int field names
	workers []string
	methods []*genMethod // global DAG order
	nv      int          // fresh-name counter
}

// scope tracks what the generator may reference at the current point.
type scope struct {
	g *gen
	// mIndex is the current method's global order index; callable targets
	// are methods with a strictly larger index. Main uses -1 (call
	// anything).
	mIndex int
	// allowCalls gates worker/recursion calls; hierarchy methods are call
	// leaves so object graphs can never drive unbounded dispatch chains.
	allowCalls bool
	depth      int

	ints  []string // readable and assignable int vars
	ros   []string // readable-only ints: loop counters, recursion depths
	bools []string
	refs  []refVar
	iarrs []arrVar
	rarrs []arrVar
}

func (sc *scope) save() (a, b, c, d, e, f int) {
	return len(sc.ints), len(sc.ros), len(sc.bools), len(sc.refs), len(sc.iarrs), len(sc.rarrs)
}

func (sc *scope) restore(a, b, c, d, e, f int) {
	sc.ints, sc.ros, sc.bools = sc.ints[:a], sc.ros[:b], sc.bools[:c]
	sc.refs, sc.iarrs, sc.rarrs = sc.refs[:d], sc.iarrs[:e], sc.rarrs[:f]
}

func (g *gen) fresh(prefix string) string {
	g.nv++
	return fmt.Sprintf("%s%d", prefix, g.nv)
}

// Generate builds a random MJ program from the seed under cfg's bounds.
func Generate(seed uint64, cfg Config) *Prog {
	g := &gen{r: newRng(seed), cfg: cfg.withDefaults(), p: &Prog{Seed: seed},
		parent: map[string]string{}, intFlds: map[string][]string{}}
	g.buildHierarchy()
	g.buildScratch()
	g.declareWorkers()
	g.fillWorkerBodies()
	g.buildMain()
	return g.p
}

// ---- class construction ----

func (g *gen) buildHierarchy() {
	base := &Class{Name: "Base", Fields: []Field{
		{Name: "fa", Type: "int"}, {Name: "fb", Type: "int"}, {Name: "link", Type: "Base"},
	}}
	g.p.Classes = append(g.p.Classes, base)
	g.hier = []string{"Base"}
	g.parent["Base"] = ""
	g.intFlds["Base"] = []string{"fa", "fb"}

	nSubs := g.r.rangeInt(1, g.cfg.MaxSubclasses)
	subNames := []string{"SubA", "SubB", "SubC", "SubD"}
	for i := 0; i < nSubs; i++ {
		// Chain or fan: extend the most recent class half the time to get
		// depth, otherwise extend Base for width.
		super := "Base"
		if i > 0 && g.r.chance(1, 2) {
			super = g.hier[len(g.hier)-1]
		}
		name := subNames[i]
		own := fmt.Sprintf("g%c", 'a'+i)
		c := &Class{Name: name, Extends: super, Fields: []Field{{Name: own, Type: "int"}}}
		g.p.Classes = append(g.p.Classes, c)
		g.hier = append(g.hier, name)
		g.parent[name] = super
		g.intFlds[name] = append(append([]string{}, g.intFlds[super]...), own)
	}
	// Every hierarchy class defines the two virtual methods, so dispatch
	// targets differ per dynamic class. Bodies are call-free leaves.
	for hi, name := range g.hier {
		c := g.classByName(name)
		c.Methods = append(c.Methods, g.leafMethod(name, "step", hi), g.tagMethod(name, hi))
	}
}

// leafMethod builds "int step(int x)" for one hierarchy class: a couple of
// field updates plus a return mixing x with the receiver's fields.
func (g *gen) leafMethod(class, name string, salt int) *Method {
	m := &Method{Name: name, Ret: "int", Params: []Field{{Name: "x", Type: "int"}}, Index: 1 << 30}
	sc := &scope{g: g, mIndex: 1 << 30, allowCalls: false, depth: g.cfg.MaxDepth - 1}
	sc.ints = []string{"x"}
	sc.refs = []refVar{{name: "this", class: class}}
	n := g.r.rangeInt(0, 2)
	for i := 0; i < n; i++ {
		m.Body = append(m.Body, g.stmtSimple(sc))
	}
	m.Body = append(m.Body, &Stmt{Pinned: true,
		Flat: fmt.Sprintf("return %s;", sc.intExpr(1))})
	return m
}

func (g *gen) tagMethod(class string, hi int) *Method {
	return &Method{Name: "tag", Ret: "int", Index: 1 << 30, Body: []*Stmt{
		{Pinned: true, Flat: fmt.Sprintf("return %d;", (hi+1)*7+g.r.intn(5))},
	}}
}

func (g *gen) buildScratch() {
	g.p.Classes = append(g.p.Classes, &Class{Name: "Scratch", Fields: []Field{
		{Name: "sa", Type: "int"}, {Name: "sb", Type: "int"}, {Name: "sc", Type: "int"},
	}})
	g.intFlds["Scratch"] = []string{"sa", "sb", "sc"}
}

// declareWorkers creates the worker classes and method signatures first,
// so bodies can call any later-indexed method regardless of class.
func (g *gen) declareWorkers() {
	nw := g.r.rangeInt(1, g.cfg.MaxWorkers)
	for w := 0; w < nw; w++ {
		name := fmt.Sprintf("W%d", w+1)
		c := &Class{Name: name, Fields: []Field{{Name: fmt.Sprintf("acc%d", w+1), Type: "int"}}}
		g.workers = append(g.workers, name)
		g.intFlds[name] = []string{fmt.Sprintf("acc%d", w+1)}
		g.p.Classes = append(g.p.Classes, c)

		nm := g.r.rangeInt(1, g.cfg.MaxMethods)
		for k := 0; k < nm; k++ {
			idx := len(g.methods)
			m := &Method{Name: fmt.Sprintf("m%d", idx), Ret: "int", Index: idx}
			gm := &genMethod{class: name, m: m}
			// The very first method of the first worker is the bounded
			// recursion: int m0(int d, int a) counting d down to zero.
			if idx == 0 {
				m.Params = []Field{{Name: "d", Type: "int"}, {Name: "a", Type: "int"}}
				gm.depthParam = true
			} else {
				np := g.r.rangeInt(1, 2)
				for pi := 0; pi < np; pi++ {
					m.Params = append(m.Params, Field{Name: fmt.Sprintf("p%d", pi), Type: "int"})
				}
				if g.r.chance(1, 3) {
					m.Params = append(m.Params, Field{Name: "o", Type: "Base"})
				}
				if g.r.chance(1, 5) {
					m.Static = true
					gm.static = true
				}
			}
			c.Methods = append(c.Methods, m)
			g.methods = append(g.methods, gm)
		}
	}
}

func (g *gen) fillWorkerBodies() {
	for _, gm := range g.methods {
		sc := &scope{g: g, mIndex: gm.m.Index, allowCalls: true, depth: 0}
		for _, p := range gm.m.Params {
			switch p.Type {
			case "int":
				sc.ints = append(sc.ints, p.Name)
			case "Base":
				sc.refs = append(sc.refs, refVar{name: p.Name, class: "Base"})
			}
		}
		if !gm.static {
			sc.refs = append(sc.refs, refVar{name: "this", class: gm.class})
		}
		if gm.depthParam {
			// Recursion scaffold: the depth parameter is read-only and the
			// guard/return pair is pinned so shrinking cannot unbound it.
			sc.ints = sc.ints[1:] // drop d from assignables
			sc.ros = append(sc.ros, "d")
			gm.m.Body = append(gm.m.Body, &Stmt{Pinned: true,
				Head: "if (d <= 0)", Body: []*Stmt{{Pinned: true, Flat: "return (a % 97);"}}})
			n := g.r.rangeInt(1, g.cfg.MaxStmts-2)
			for i := 0; i < n; i++ {
				gm.m.Body = append(gm.m.Body, g.stmt(sc))
			}
			gm.m.Body = append(gm.m.Body, &Stmt{Pinned: true,
				Flat: fmt.Sprintf("return (%s + this.m0((d - 1), %s));", sc.intExpr(1), sc.intExpr(1))})
			continue
		}
		n := g.r.rangeInt(2, g.cfg.MaxStmts)
		for i := 0; i < n; i++ {
			gm.m.Body = append(gm.m.Body, g.stmt(sc))
		}
		gm.m.Body = append(gm.m.Body, &Stmt{Pinned: true,
			Flat: fmt.Sprintf("return %s;", sc.intExpr(2))})
	}
}

// buildMain assembles Main.main: a fixed prelude guaranteeing non-trivial
// heap structure (a mixed dispatch pool, a dead Scratch, a worker call),
// then random statement soup, then the pinned consumer print.
func (g *gen) buildMain() {
	m := &Method{Name: "main", Static: true, Ret: "void"}
	sc := &scope{g: g, mIndex: -1, allowCalls: true, depth: 0}
	m.Body = append(m.Body, &Stmt{Flat: "int total = 0;", Pinned: true})
	sc.ints = append(sc.ints, "total")

	m.Body = append(m.Body, g.stmtRefPool(sc)...)
	m.Body = append(m.Body, g.stmtScratch(sc)...)
	if len(g.methods) > 0 {
		m.Body = append(m.Body, g.stmtWorkerCall(sc)...)
	}
	n := g.r.rangeInt(3, g.cfg.MaxStmts+3)
	for i := 0; i < n; i++ {
		m.Body = append(m.Body, g.stmt(sc))
	}
	m.Body = append(m.Body, &Stmt{Flat: "print(total);", Pinned: true})
	g.p.Classes = append(g.p.Classes, &Class{Name: "Main", Methods: []*Method{m}})
}

func (g *gen) classByName(name string) *Class {
	for _, c := range g.p.Classes {
		if c != nil && c.Name == name {
			return c
		}
	}
	return nil
}

// isAncestor reports whether a is b or an ancestor of b in the hierarchy.
func (g *gen) isAncestor(a, b string) bool {
	for b != "" {
		if a == b {
			return true
		}
		b = g.parent[b]
	}
	return false
}

// ---- statements ----

// stmt emits one random statement (possibly a short macro of statements
// folded into a block-free sequence returns a single Stmt; macros that
// need several appear via the block kinds below).
func (g *gen) stmt(sc *scope) *Stmt {
	// Weighted kinds, gated by availability.
	type kind struct {
		weight int
		emit   func() *Stmt
	}
	kinds := []kind{
		{4, func() *Stmt { return g.stmtDeclInt(sc) }},
		{3, func() *Stmt { return g.stmtAssign(sc) }},
		{2, func() *Stmt { return g.stmtDeclRef(sc) }},
		{3, func() *Stmt { return g.stmtFieldStore(sc) }},
		{1, func() *Stmt { return g.stmtDeclBool(sc) }},
		{1, func() *Stmt { return g.stmtLinkStore(sc) }},
		{1, func() *Stmt { return g.stmtArrStore(sc) }},
		{1, func() *Stmt { return g.stmtPrint(sc) }},
	}
	if sc.depth < g.cfg.MaxDepth {
		kinds = append(kinds,
			kind{3, func() *Stmt { return g.stmtIf(sc) }},
			kind{3, func() *Stmt { return g.stmtFor(sc) }},
			kind{1, func() *Stmt { return g.stmtWhile(sc) }},
			kind{1, func() *Stmt { return g.blockOf(sc, g.stmtLinkGuard) }},
			kind{1, func() *Stmt { return g.blockOf(sc, g.stmtIntArr) }},
			kind{1, func() *Stmt { return g.blockOf(sc, g.stmtRefPool) }},
			kind{1, func() *Stmt { return g.blockOf(sc, g.stmtScratch) }},
			kind{1, func() *Stmt { return g.stmtDispatchLoop(sc) }},
		)
	}
	if sc.allowCalls && g.callTargets(sc) != nil {
		kinds = append(kinds, kind{3, func() *Stmt { return g.blockOf(sc, g.stmtWorkerCall) }})
	}
	total := 0
	for _, k := range kinds {
		total += k.weight
	}
	pickAt := g.r.intn(total)
	for _, k := range kinds {
		pickAt -= k.weight
		if pickAt < 0 {
			return k.emit()
		}
	}
	return g.stmtDeclInt(sc)
}

// stmtSimple is the restricted statement set for hierarchy leaf methods.
func (g *gen) stmtSimple(sc *scope) *Stmt {
	if g.r.chance(1, 2) {
		return g.stmtFieldStore(sc)
	}
	return g.stmtDeclInt(sc)
}

// blockOf wraps a multi-statement macro in an always-taken if block so the
// macro's declarations scope cleanly and the shrinker can drop it whole.
func (g *gen) blockOf(sc *scope, macro func(*scope) []*Stmt) *Stmt {
	a, b, c, d, e, f := sc.save()
	sc.depth++
	body := macro(sc)
	sc.restore(a, b, c, d, e, f)
	sc.depth--
	return &Stmt{Head: "if (0 < 1)", Body: body}
}

func (g *gen) stmtDeclInt(sc *scope) *Stmt {
	name := g.fresh("v")
	s := &Stmt{Flat: fmt.Sprintf("int %s = %s;", name, sc.intExpr(2))}
	sc.ints = append(sc.ints, name)
	return s
}

func (g *gen) stmtDeclBool(sc *scope) *Stmt {
	name := g.fresh("b")
	s := &Stmt{Flat: fmt.Sprintf("boolean %s = %s;", name, sc.boolExpr(1))}
	sc.bools = append(sc.bools, name)
	return s
}

func (g *gen) stmtDeclRef(sc *scope) *Stmt {
	// Static type is sometimes widened to an ancestor so dispatch and
	// points-to see distinct static/dynamic types.
	dyn := pick(g.r, g.hier)
	static := dyn
	if g.r.chance(1, 2) {
		static = "Base"
	}
	if len(g.workers) > 0 && g.r.chance(1, 3) {
		w := pick(g.r, g.workers)
		dyn, static = w, w
	}
	name := g.fresh("r")
	s := &Stmt{Flat: fmt.Sprintf("%s %s = new %s();", static, name, dyn)}
	sc.refs = append(sc.refs, refVar{name: name, class: static})
	return s
}

func (g *gen) stmtAssign(sc *scope) *Stmt {
	if len(sc.ints) == 0 {
		return g.stmtDeclInt(sc)
	}
	v := pick(g.r, sc.ints)
	if len(sc.bools) > 0 && g.r.chance(1, 5) {
		b := pick(g.r, sc.bools)
		return &Stmt{Flat: fmt.Sprintf("%s = %s;", b, sc.boolExpr(1))}
	}
	return &Stmt{Flat: fmt.Sprintf("%s = %s;", v, sc.intExpr(2))}
}

func (g *gen) stmtFieldStore(sc *scope) *Stmt {
	if len(sc.refs) == 0 {
		return g.stmtDeclInt(sc)
	}
	rv := pick(g.r, sc.refs)
	flds := g.intFlds[rv.class]
	if len(flds) == 0 {
		return g.stmtDeclInt(sc)
	}
	return &Stmt{Flat: fmt.Sprintf("%s.%s = %s;", rv.name, pick(g.r, flds), sc.intExpr(2))}
}

// stmtLinkStore aliases hierarchy objects through the Base.link field.
func (g *gen) stmtLinkStore(sc *scope) *Stmt {
	var hs []refVar
	for _, rv := range sc.refs {
		if g.isAncestor("Base", rv.class) {
			hs = append(hs, rv)
		}
	}
	if len(hs) == 0 {
		return g.stmtDeclRef(sc)
	}
	dst := pick(g.r, hs)
	src := "null"
	if g.r.chance(4, 5) {
		src = pick(g.r, hs).name
	}
	return &Stmt{Flat: fmt.Sprintf("%s.link = %s;", dst.name, src)}
}

// stmtLinkGuard loads a possibly-null link field into a temp and consumes
// it under a null guard — the only pattern through which generated code
// reads reference fields. Returns a decl + guard pair, so it is wired in
// through blockOf.
func (g *gen) stmtLinkGuard(sc *scope) []*Stmt {
	var hs []refVar
	for _, rv := range sc.refs {
		if g.isAncestor("Base", rv.class) {
			hs = append(hs, rv)
		}
	}
	if len(hs) == 0 {
		return []*Stmt{g.stmtDeclRef(sc)}
	}
	src := pick(g.r, hs)
	tmp := g.fresh("t")
	decl := &Stmt{Flat: fmt.Sprintf("Base %s = %s.link;", tmp, src.name)}
	a, b, c, d, e, f := sc.save()
	sc.refs = append(sc.refs, refVar{name: tmp, class: "Base"})
	u := g.fresh("v")
	inner := []*Stmt{{Flat: fmt.Sprintf("int %s = (%s.fa + %s.tag());", u, tmp, tmp)}}
	sc.ints = append(sc.ints, u)
	n := g.r.rangeInt(0, 2)
	for i := 0; i < n; i++ {
		inner = append(inner, g.stmt(sc))
	}
	t := pick(g.r, sc.ints)
	inner = append(inner, &Stmt{Flat: fmt.Sprintf("%s = (%s + %s);", t, t, u)})
	sc.restore(a, b, c, d, e, f)
	guard := &Stmt{Head: fmt.Sprintf("if (%s != null)", tmp), Body: inner}
	return []*Stmt{decl, guard}
}

func (g *gen) stmtArrStore(sc *scope) *Stmt {
	if len(sc.iarrs) == 0 {
		return g.stmtAssign(sc)
	}
	av := pick(g.r, sc.iarrs)
	return &Stmt{Flat: fmt.Sprintf("%s[%s] = %s;", av.name, sc.indexExpr(av.n), sc.intExpr(2))}
}

func (g *gen) stmtPrint(sc *scope) *Stmt {
	return &Stmt{Flat: fmt.Sprintf("print(%s);", sc.intExpr(2))}
}

func (g *gen) stmtIf(sc *scope) *Stmt {
	s := &Stmt{Head: fmt.Sprintf("if (%s)", sc.boolExpr(2))}
	a, b, c, d, e, f := sc.save()
	sc.depth++
	n := g.r.rangeInt(1, 3)
	for i := 0; i < n; i++ {
		s.Body = append(s.Body, g.stmt(sc))
	}
	sc.restore(a, b, c, d, e, f)
	if g.r.chance(1, 2) {
		s.Else = []*Stmt{}
		n := g.r.rangeInt(1, 2)
		for i := 0; i < n; i++ {
			s.Else = append(s.Else, g.stmt(sc))
		}
		sc.restore(a, b, c, d, e, f)
	}
	sc.depth--
	return s
}

func (g *gen) stmtFor(sc *scope) *Stmt {
	iv := g.fresh("i")
	bound := g.r.rangeInt(2, 6)
	s := &Stmt{Head: fmt.Sprintf("for (int %s = 0; %s < %d; %s = %s + 1)", iv, iv, bound, iv, iv)}
	a, b, c, d, e, f := sc.save()
	sc.depth++
	sc.ros = append(sc.ros, iv)
	n := g.r.rangeInt(1, 3)
	for i := 0; i < n; i++ {
		s.Body = append(s.Body, g.stmt(sc))
	}
	sc.restore(a, b, c, d, e, f)
	sc.depth--
	return s
}

// stmtWhile builds a counted while loop whose decrement is pinned: the
// shrinker may empty the rest of the body but can never unbound the loop.
func (g *gen) stmtWhile(sc *scope) *Stmt {
	cv := g.fresh("w")
	init := &Stmt{Flat: fmt.Sprintf("int %s = %d;", cv, g.r.rangeInt(2, 8)), Pinned: true}
	loop := &Stmt{Head: fmt.Sprintf("while (%s > 0)", cv)}
	loop.Body = append(loop.Body, &Stmt{Flat: fmt.Sprintf("%s = %s - 1;", cv, cv), Pinned: true})
	a, b, c, d, e, f := sc.save()
	sc.depth++
	sc.ros = append(sc.ros, cv)
	n := g.r.rangeInt(1, 2)
	for i := 0; i < n; i++ {
		loop.Body = append(loop.Body, g.stmt(sc))
	}
	sc.restore(a, b, c, d, e, f)
	sc.depth--
	return &Stmt{Head: "if (0 < 1)", Body: []*Stmt{init, loop}}
}

// stmtIntArr declares and fills an int array, making it available for
// reads and stores.
func (g *gen) stmtIntArr(sc *scope) []*Stmt {
	name := g.fresh("arr")
	n := g.r.rangeInt(2, 6)
	iv := g.fresh("i")
	fill := &Stmt{Head: fmt.Sprintf("for (int %s = 0; %s < %s.length; %s = %s + 1)", iv, iv, name, iv, iv)}
	a, b, c, d, e, f := sc.save()
	sc.ros = append(sc.ros, iv)
	fill.Body = []*Stmt{{Flat: fmt.Sprintf("%s[%s] = %s;", name, iv, sc.intExpr(1))}}
	sc.restore(a, b, c, d, e, f)
	sc.iarrs = append(sc.iarrs, arrVar{name: name, n: n})
	return []*Stmt{
		{Flat: fmt.Sprintf("int[] %s = new int[%d];", name, n), Pinned: false},
		fill,
	}
}

// stmtRefPool declares a Base[] pool filled with mixed dynamic classes —
// the aliasing and dispatch-diversity workhorse.
func (g *gen) stmtRefPool(sc *scope) []*Stmt {
	name := g.fresh("pool")
	n := g.r.rangeInt(2, 5)
	iv := g.fresh("i")
	c1, c2 := pick(g.r, sc.g.hier), pick(g.r, sc.g.hier)
	fill := &Stmt{Head: fmt.Sprintf("for (int %s = 0; %s < %s.length; %s = %s + 1)", iv, iv, name, iv, iv)}
	cond := fmt.Sprintf("if ((%s %% 2) == 0)", iv)
	fill.Body = []*Stmt{{
		Head: cond,
		Body: []*Stmt{{Flat: fmt.Sprintf("%s[%s] = new %s();", name, iv, c1)}},
		Else: []*Stmt{{Flat: fmt.Sprintf("%s[%s] = new %s();", name, iv, c2)}},
	}}
	sc.rarrs = append(sc.rarrs, arrVar{name: name, n: n, elem: "Base"})
	return []*Stmt{
		{Flat: fmt.Sprintf("Base[] %s = new Base[%d];", name, n)},
		fill,
	}
}

// stmtDispatchLoop drives virtual dispatch through a mixed pool.
func (g *gen) stmtDispatchLoop(sc *scope) *Stmt {
	if len(sc.rarrs) == 0 || len(sc.ints) == 0 {
		return g.stmtIf(sc)
	}
	av := pick(g.r, sc.rarrs)
	acc := pick(g.r, sc.ints)
	iv := g.fresh("i")
	s := &Stmt{Head: fmt.Sprintf("for (int %s = 0; %s < %s.length; %s = %s + 1)", iv, iv, av.name, iv, iv)}
	a, b, c, d, e, f := sc.save()
	sc.depth++
	sc.ros = append(sc.ros, iv)
	s.Body = []*Stmt{{Flat: fmt.Sprintf("%s = (%s + %s[%s].step(%s));", acc, acc, av.name, iv, sc.intExpr(1))}}
	if g.r.chance(1, 2) {
		s.Body = append(s.Body, g.stmt(sc))
	}
	sc.restore(a, b, c, d, e, f)
	sc.depth--
	return s
}

// stmtScratch allocates a Scratch whose fields are only ever written —
// a low-utility structure planted by construction.
func (g *gen) stmtScratch(sc *scope) []*Stmt {
	name := g.fresh("s")
	out := []*Stmt{{Flat: fmt.Sprintf("Scratch %s = new Scratch();", name)}}
	for _, fld := range []string{"sa", "sb"} {
		out = append(out, &Stmt{Flat: fmt.Sprintf("%s.%s = %s;", name, fld, sc.intExpr(2))})
	}
	if g.r.chance(1, 2) {
		out = append(out, &Stmt{Flat: fmt.Sprintf("%s.sc = (%s.sa + %d);", name, name, g.r.intn(100))})
	}
	return out
}

// callTargets lists methods callable from the current position.
func (g *gen) callTargets(sc *scope) []*genMethod {
	var out []*genMethod
	for _, gm := range g.methods {
		if gm.m.Index > sc.mIndex {
			out = append(out, gm)
		}
	}
	return out
}

// stmtWorkerCall declares a receiver if needed and folds the call result
// into an accumulator.
func (g *gen) stmtWorkerCall(sc *scope) []*Stmt {
	targets := g.callTargets(sc)
	if len(targets) == 0 {
		return []*Stmt{g.stmtDeclInt(sc)}
	}
	gm := pick(g.r, targets)
	var out []*Stmt
	call := g.renderCall(sc, gm, &out)
	if len(sc.ints) > 0 && g.r.chance(3, 4) {
		acc := pick(g.r, sc.ints)
		out = append(out, &Stmt{Flat: fmt.Sprintf("%s = (%s + %s);", acc, acc, call)})
	} else {
		name := g.fresh("v")
		out = append(out, &Stmt{Flat: fmt.Sprintf("int %s = %s;", name, call)})
		sc.ints = append(sc.ints, name)
	}
	return out
}

// renderCall renders a call expression for gm, appending any receiver
// declaration statement to pre.
func (g *gen) renderCall(sc *scope, gm *genMethod, pre *[]*Stmt) string {
	var recv string
	if gm.static {
		recv = gm.class
	} else {
		for _, rv := range sc.refs {
			if rv.class == gm.class {
				recv = rv.name
				break
			}
		}
		if recv == "" {
			recv = g.fresh("r")
			*pre = append(*pre, &Stmt{Flat: fmt.Sprintf("%s %s = new %s();", gm.class, recv, gm.class)})
			sc.refs = append(sc.refs, refVar{name: recv, class: gm.class})
		}
	}
	args := make([]string, 0, len(gm.m.Params))
	for pi, p := range gm.m.Params {
		switch {
		case gm.depthParam && pi == 0:
			args = append(args, fmt.Sprintf("%d", g.r.rangeInt(1, 4)))
		case p.Type == "Base":
			args = append(args, sc.refArg(g))
		default:
			args = append(args, sc.intExpr(1))
		}
	}
	return fmt.Sprintf("%s.%s(%s)", recv, gm.m.Name, strings.Join(args, ", "))
}

// refArg yields a non-null Base-assignable argument.
func (sc *scope) refArg(g *gen) string {
	var hs []string
	for _, rv := range sc.refs {
		if g.isAncestor("Base", rv.class) {
			hs = append(hs, rv.name)
		}
	}
	if len(hs) > 0 && g.r.chance(2, 3) {
		return pick(g.r, hs)
	}
	return fmt.Sprintf("new %s()", pick(g.r, g.hier))
}

// ---- expressions ----

// indexExpr yields an in-bounds index for an array of length n: a loop
// variable reduced modulo the length, or a literal.
func (sc *scope) indexExpr(n int) string {
	if len(sc.ros) > 0 && sc.g.r.chance(2, 3) {
		return fmt.Sprintf("(%s %% %d)", pick(sc.g.r, sc.ros), n)
	}
	return fmt.Sprintf("%d", sc.g.r.intn(n))
}

func (sc *scope) intExpr(depth int) string {
	g := sc.g
	type cand struct {
		weight int
		emit   func() string
	}
	cands := []cand{
		{2, func() string { return fmt.Sprintf("%d", g.r.intn(1000)-100) }},
	}
	readable := append(append([]string{}, sc.ints...), sc.ros...)
	if len(readable) > 0 {
		cands = append(cands, cand{5, func() string { return pick(g.r, readable) }})
	}
	if len(sc.refs) > 0 {
		cands = append(cands, cand{3, func() string {
			rv := pick(g.r, sc.refs)
			flds := g.intFlds[rv.class]
			if len(flds) == 0 {
				return fmt.Sprintf("%d", g.r.intn(100))
			}
			return fmt.Sprintf("%s.%s", rv.name, pick(g.r, flds))
		}})
	}
	if len(sc.iarrs) > 0 {
		cands = append(cands, cand{2, func() string {
			av := pick(g.r, sc.iarrs)
			return fmt.Sprintf("%s[%s]", av.name, sc.indexExpr(av.n))
		}})
		cands = append(cands, cand{1, func() string {
			return pick(g.r, sc.iarrs).name + ".length"
		}})
	}
	if depth > 0 {
		cands = append(cands,
			cand{4, func() string {
				op := pick(g.r, []string{"+", "-", "*", "&", "|", "^"})
				return fmt.Sprintf("(%s %s %s)", sc.intExpr(depth-1), op, sc.intExpr(depth-1))
			}},
			cand{2, func() string {
				op := pick(g.r, []string{"/", "%"})
				return fmt.Sprintf("(%s %s %d)", sc.intExpr(depth-1), op, g.r.rangeInt(2, 9))
			}},
			cand{1, func() string {
				op := pick(g.r, []string{"<<", ">>"})
				return fmt.Sprintf("(%s %s %d)", sc.intExpr(depth-1), op, g.r.rangeInt(1, 5))
			}},
			cand{2, func() string { return fmt.Sprintf("hash(%s)", sc.intExpr(depth-1)) }},
			cand{1, func() string { return fmt.Sprintf("(0 - %s)", sc.intExpr(depth-1)) }},
		)
		// Virtual dispatch inside expressions through hierarchy receivers.
		// Gated on allowCalls: the hierarchy methods are call leaves, so a
		// step body must not dispatch (this.step(...) would never bottom
		// out).
		var hs []refVar
		for _, rv := range sc.refs {
			if g.isAncestor("Base", rv.class) {
				hs = append(hs, rv)
			}
		}
		if len(hs) > 0 && sc.allowCalls {
			cands = append(cands, cand{3, func() string {
				rv := pick(g.r, hs)
				if g.r.chance(1, 3) {
					return fmt.Sprintf("%s.tag()", rv.name)
				}
				return fmt.Sprintf("%s.step(%s)", rv.name, sc.intExpr(depth-1))
			}})
		}
		if len(sc.rarrs) > 0 && sc.allowCalls {
			cands = append(cands, cand{2, func() string {
				av := pick(g.r, sc.rarrs)
				return fmt.Sprintf("%s[%s].step(%s)", av.name, sc.indexExpr(av.n), sc.intExpr(depth-1))
			}})
		}
		if g.r.chance(1, 12) {
			cands = append(cands, cand{1, func() string {
				return fmt.Sprintf("(dbQuery(%s) %% 1000)", sc.intExpr(depth-1))
			}})
		}
	}
	total := 0
	for _, c := range cands {
		total += c.weight
	}
	at := g.r.intn(total)
	for _, c := range cands {
		at -= c.weight
		if at < 0 {
			return c.emit()
		}
	}
	return "1"
}

func (sc *scope) boolExpr(depth int) string {
	g := sc.g
	roll := g.r.intn(10)
	switch {
	case roll < 5 || depth == 0:
		op := pick(g.r, []string{"<", "<=", ">", ">=", "==", "!="})
		return fmt.Sprintf("(%s %s %s)", sc.intExpr(1), op, sc.intExpr(1))
	case roll < 6 && len(sc.bools) > 0:
		return pick(g.r, sc.bools)
	case roll < 7 && len(sc.bools) > 0:
		return fmt.Sprintf("(!%s)", pick(g.r, sc.bools))
	case roll < 8:
		// Reference comparisons, restricted to comparable static types.
		var hs []refVar
		for _, rv := range sc.refs {
			if g.isAncestor("Base", rv.class) {
				hs = append(hs, rv)
			}
		}
		if len(hs) >= 2 {
			a, b := pick(g.r, hs), pick(g.r, hs)
			if g.isAncestor(a.class, b.class) || g.isAncestor(b.class, a.class) {
				return fmt.Sprintf("(%s == %s)", a.name, b.name)
			}
		}
		if len(hs) >= 1 {
			return fmt.Sprintf("(%s != null)", pick(g.r, hs).name)
		}
		return fmt.Sprintf("(%s < %s)", sc.intExpr(1), sc.intExpr(1))
	default:
		op := pick(g.r, []string{"&&", "||"})
		return fmt.Sprintf("(%s %s %s)", sc.boolExpr(depth-1), op, sc.boolExpr(depth-1))
	}
}
