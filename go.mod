module lowutil

go 1.22
