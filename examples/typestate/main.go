// Typestate demonstrates the typestate-history client (Figure 2(b) of the
// paper, after QVM): objects of a tracked class carry a protocol DFA; a
// method call with no transition from the current state is reported together
// with the object's recorded event history.
//
// Run with: go run ./examples/typestate
package main

import (
	"fmt"
	"log"

	"lowutil"
)

const src = `
class File {
  int fd;
  void create() { this.fd = 3; }
  void put(int b) { this.fd = this.fd; }
  void close() { this.fd = -1; }
  int get() { return 7; }
}
class Main {
  static void main() {
    File f = new File();
    f.create();
    f.put(10);
    f.put(20);
    f.close();
    int b = f.get();     // read after close: protocol violation
    print(b);
  }
}`

func main() {
	prog, err := lowutil.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	// The paper's File protocol: uninitialized → open-empty → open-nonempty
	// → closed; get is legal only while open.
	proto := &lowutil.TypestateProtocol{
		StateNames: []string{"uninitialized", "open-empty", "open-nonempty", "closed"},
		Initial:    0,
		Transitions: []lowutil.TypestateTransition{
			{From: 0, Method: "create", To: 1},
			{From: 1, Method: "put", To: 2},
			{From: 2, Method: "put", To: 2},
			{From: 1, Method: "get", To: 1},
			{From: 2, Method: "get", To: 2},
			{From: 1, Method: "close", To: 3},
			{From: 2, Method: "close", To: 3},
		},
	}
	violations, err := prog.Typestate(proto, "File")
	if err != nil {
		log.Fatal(err)
	}
	if len(violations) == 0 {
		fmt.Println("no typestate violations")
		return
	}
	for _, v := range violations {
		fmt.Println(v)
	}
}
