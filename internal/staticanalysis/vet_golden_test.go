package staticanalysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lowutil/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite the vet golden files under testdata/vet/")

// TestVetGoldenWorkloads runs the full vet suite (with its default
// interprocedural pipeline) over every workload and compares the rendered
// findings against testdata/vet/<name>.golden. The goldens pin both the
// diagnostics themselves and their byte order, so any change to a check, to
// a workload, or to iteration determinism shows up as a diff. Regenerate
// deliberately with:
//
//	go test ./internal/staticanalysis -run TestVetGoldenWorkloads -update
func TestVetGoldenWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := w.Compile(1)
			if err != nil {
				t.Fatal(err)
			}
			var sb strings.Builder
			for _, f := range Vet(prog) {
				sb.WriteString(f.String())
				sb.WriteByte('\n')
			}
			got := sb.String()
			path := filepath.Join("testdata", "vet", w.Name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			if got != string(want) {
				t.Errorf("vet output diverges from %s (regenerate with -update if intended):\n--- got\n%s--- want\n%s",
					path, got, want)
			}
		})
	}
}
