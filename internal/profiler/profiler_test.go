package profiler

import (
	"testing"

	"lowutil/internal/costben"
	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/taint"
	"lowutil/internal/testprogs"
)

// run executes prog under a fresh profiler and returns it.
func run(t *testing.T, prog *ir.Program, opts Options) (*Profiler, *interp.Machine) {
	t.Helper()
	p := New(prog, opts)
	m := interp.New(prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p, m
}

// soleNode returns the single graph node of an instruction, failing if the
// instruction has zero or multiple abstractions.
func soleNode(t *testing.T, g *depgraph.Graph, in *ir.Instr) *depgraph.Node {
	t.Helper()
	nodes := g.NodesOf(in)
	if len(nodes) != 1 {
		t.Fatalf("instruction %v has %d nodes, want 1", in, len(nodes))
	}
	return nodes[0]
}

// TestFigure1DoubleCounting reproduces Figure 1: taint-like cumulative
// tracking double-counts the shared sub-computation c, while the dependence
// graph yields the exact instruction count.
func TestFigure1DoubleCounting(t *testing.T) {
	fig := testprogs.Figure1()

	// Slicing-based cost: count each contributing instruction once.
	p, _ := run(t, fig.Prog, Options{Slots: 8})
	bNode := soleNode(t, p.G, fig.BInstr)
	if got := depgraph.AbstractCost(bNode); got != fig.DistinctCost {
		t.Errorf("abstract cost of b = %d, want %d", got, fig.DistinctCost)
	}

	// Taint-like tracking: strictly larger due to double counting.
	tr := taint.New(fig.Prog)
	m2 := interp.New(fig.Prog)
	m2.Tracer = tr
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	// b is still live in main's frame at the end of execution.
	frame := findFrameCost(t, tr, m2, fig)
	if frame <= uint64(fig.DistinctCost) {
		t.Errorf("taint cost of b = %d, want > %d (double counting)", frame, fig.DistinctCost)
	}
}

func findFrameCost(t *testing.T, tr *taint.Tracker, m *interp.Machine, fig *testprogs.Figure1Markers) uint64 {
	t.Helper()
	// Re-run with a tracer that samples b's cost right after it is written.
	var got uint64
	sampler := &sampleTracer{Tracker: tr, instr: fig.BInstr, slot: fig.BSlot, out: &got}
	m2 := interp.New(fig.Prog)
	tr2 := taint.New(fig.Prog)
	sampler.Tracker = tr2
	m2.Tracer = sampler
	if err := m2.Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

// sampleTracer wraps a taint Tracker and samples the tracked cost of one
// local slot right after a given instruction executes.
type sampleTracer struct {
	*taint.Tracker
	instr *ir.Instr
	slot  int
	out   *uint64
}

func (s *sampleTracer) Exec(ev *interp.Event) {
	s.Tracker.Exec(ev)
	if ev.In == s.instr {
		*s.out = s.Tracker.CostOf(ev.Frame, s.slot)
	}
}

// TestFigure3Shapes checks the qualitative claims of Figure 3(d): the array
// elements have zero benefit (never read), A.t has high cost and low finite
// benefit, and the A allocation site tops the low-utility ranking.
func TestFigure3Shapes(t *testing.T) {
	fig := testprogs.Figure3(50, 40)
	p, _ := run(t, fig.Prog, Options{Slots: 16})
	a := costben.NewAnalysis(p.G)

	arrAllocs := p.G.NodesOf(fig.Prog.AllocSites[fig.SiteArr])
	if len(arrAllocs) != 1 {
		t.Fatalf("array alloc nodes = %d, want 1", len(arrAllocs))
	}
	elemLoc := depgraph.Loc{Alloc: arrAllocs[0], Field: depgraph.ElemField}
	if rab := a.RAB(elemLoc); rab != 0 {
		t.Errorf("RAB(array elements) = %v, want 0 (never read)", rab)
	}
	if rac := a.RAC(elemLoc); rac <= 0 {
		t.Errorf("RAC(array elements) = %v, want > 0", rac)
	}

	aAllocs := p.G.NodesOf(fig.Prog.AllocSites[fig.SiteA])
	if len(aAllocs) != 1 {
		t.Fatalf("A alloc nodes = %d, want 1", len(aAllocs))
	}
	tLoc := depgraph.Loc{Alloc: aAllocs[0], Field: fig.FieldT.ID}
	rac := a.RAC(tLoc)
	rab := a.RAB(tLoc)
	if rac < float64(fig.K) {
		t.Errorf("RAC(A.t) = %v, want >= %d (the expensive loop)", rac, fig.K)
	}
	// HRAB sums frequencies across instances, so the benefit of the
	// load-and-immediately-store idiom is ≈ one node's frequency (N) —
	// far below the cost, which includes the K-iteration inner loop.
	if rab == costben.InfiniteRAB || rab <= 0 || rab > 3*float64(fig.N) {
		t.Errorf("RAB(A.t) = %v, want finite in (0, %d]", rab, 3*fig.N)
	}
	if rac <= rab*float64(fig.K)/4 {
		t.Errorf("cost-benefit imbalance missing: RAC=%v RAB=%v", rac, rab)
	}

	// The A site must rank above the list site in the per-site report.
	ranking := a.RankBySite(costben.DefaultTreeHeight)
	pos := map[int]int{}
	for i, r := range ranking {
		pos[r.Site.AllocSite] = i
	}
	if pos[fig.SiteA] > pos[fig.SiteList] {
		t.Errorf("ranking: site A at %d, list at %d; want A more suspicious", pos[fig.SiteA], pos[fig.SiteList])
	}
}

// TestFigure6LowUtilityList checks the eclipse isPackage idiom: the list
// structure's fields have zero benefit even though the list reference
// itself feeds a predicate.
func TestFigure6LowUtilityList(t *testing.T) {
	fig := testprogs.Figure6(20, 30)
	p, _ := run(t, fig.Prog, Options{Slots: 16})
	a := costben.NewAnalysis(p.G)

	ranking := a.RankBySite(costben.DefaultTreeHeight)
	if len(ranking) == 0 {
		t.Fatal("empty ranking")
	}
	top := ranking[0]
	if top.Site.AllocSite != fig.SiteList && top.Site.AllocSite != fig.SiteArr {
		t.Errorf("top suspicious site = %d, want list (%d) or its array (%d)\n%s",
			top.Site.AllocSite, fig.SiteList, fig.SiteArr, costben.FormatTop(ranking, 5))
	}
	if top.NRAB == costben.InfiniteRAB {
		t.Errorf("top structure has infinite benefit; fields should be unread")
	}
	if top.NRAC <= 0 {
		t.Errorf("top structure cost = %v, want > 0", top.NRAC)
	}
}

// TestThinVsTraditional verifies the ablation premise: traditional slicing
// adds base-pointer dependences, so slices can only grow.
func TestThinVsTraditional(t *testing.T) {
	fig := testprogs.Figure3(20, 10)

	pThin, _ := run(t, fig.Prog, Options{Slots: 16})
	pTrad, _ := run(t, fig.Prog, Options{Slots: 16, Traditional: true})

	if pTrad.G.NumDepEdges() <= pThin.G.NumDepEdges() {
		t.Errorf("traditional edges (%d) should exceed thin edges (%d)",
			pTrad.G.NumDepEdges(), pThin.G.NumDepEdges())
	}

	// Compare slice sizes from the size-store node (a heap store reached
	// through field loads in IntList.add).
	var thinSz, tradSz int
	for _, g := range []*depgraph.Graph{pThin.G, pTrad.G} {
		var total int
		g.Nodes(func(n *depgraph.Node) {
			if n.WritesHeap() {
				total += len(depgraph.BackwardSlice(n))
			}
		})
		if g == pThin.G {
			thinSz = total
		} else {
			tradSz = total
		}
	}
	if tradSz < thinSz {
		t.Errorf("traditional total slice size %d < thin %d", tradSz, thinSz)
	}
}

// TestGraphBounded verifies the central scalability claim: node count is
// bounded by |I| × s regardless of how long the program runs.
func TestGraphBounded(t *testing.T) {
	small := testprogs.Figure3(5, 5)
	big := testprogs.Figure3(500, 50)

	pSmall, mSmall := run(t, small.Prog, Options{Slots: 8})
	pBig, mBig := run(t, big.Prog, Options{Slots: 8})

	if mBig.Steps < 100*mSmall.Steps {
		t.Fatalf("workloads not sufficiently different: %d vs %d", mSmall.Steps, mBig.Steps)
	}
	bound := small.Prog.NumInstrs()*8 + small.Prog.NumInstrs() // contexted + consumer nodes
	if pSmall.G.NumNodes() > bound || pBig.G.NumNodes() > bound {
		t.Errorf("node count exceeds |I|*s bound %d: small=%d big=%d",
			bound, pSmall.G.NumNodes(), pBig.G.NumNodes())
	}
	// Same program: identical abstractions regardless of trip counts.
	if pSmall.G.NumNodes() != pBig.G.NumNodes() {
		t.Logf("note: node counts differ (%d vs %d) — acceptable, frequency differs",
			pSmall.G.NumNodes(), pBig.G.NumNodes())
	}
}

// TestUnabstractedGrowsWithInput verifies the baseline contrast: without
// abstraction the graph grows with the dynamic instruction count.
func TestUnabstractedGrowsWithInput(t *testing.T) {
	small := testprogs.Figure3(5, 5)
	big := testprogs.Figure3(50, 5)
	pSmall, _ := run(t, small.Prog, Options{Unabstracted: true})
	pBig, _ := run(t, big.Prog, Options{Unabstracted: true})
	if pBig.G.NumNodes() <= pSmall.G.NumNodes() {
		t.Errorf("unabstracted graph should grow with input: %d vs %d",
			pSmall.G.NumNodes(), pBig.G.NumNodes())
	}
}

// TestFrequenciesMatchExecution: total graph frequency equals the number of
// value-producing instruction instances (no calls/returns/gotos).
func TestFrequenciesMatchExecution(t *testing.T) {
	fig := testprogs.Figure1()
	p, m := run(t, fig.Prog, Options{Slots: 8})
	// main: const, call(dst), const, mul, add, return-void → nodes for
	// const×2, call-assign, mul, add = 5 instances.
	// f: const, shr, return → const, shr = 2 instances.
	want := int64(7)
	if got := p.G.TotalFreq(); got != want {
		t.Errorf("total freq = %d, want %d", got, want)
	}
	if m.Steps != 9 { // 6 main instrs + 3 f instrs
		t.Errorf("steps = %d, want 9", m.Steps)
	}
}

// TestPhaseGating: disabling the profiler during a phase must keep that
// phase's instances out of the graph.
func TestPhaseGating(t *testing.T) {
	fig := testprogs.Figure3(50, 20)

	pFull, _ := run(t, fig.Prog, Options{Slots: 8})

	pGated := New(fig.Prog, Options{Slots: 8})
	pGated.SetEnabled(false)
	m := interp.New(fig.Prog)
	m.Tracer = pGated
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if pGated.G.TotalFreq() != 0 {
		t.Errorf("gated profiler recorded %d instances, want 0", pGated.G.TotalFreq())
	}
	if pFull.G.TotalFreq() == 0 {
		t.Error("full profiler recorded nothing")
	}
}

// TestReferenceEdges: field stores get reference edges to the base object's
// allocation node, and points-to children are recorded for ref-valued
// stores.
func TestReferenceEdges(t *testing.T) {
	bd := ir.NewBuilder()
	inner := bd.Class("Inner", nil)
	outer := bd.Class("Outer", nil)
	fRef := bd.Field(outer, "inner", bd.RefType(inner))
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.New(0, outer)
	mb.New(1, inner)
	storePC := mb.StoreField(0, fRef, 1)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := run(t, prog, Options{Slots: 8})

	store := soleNode(t, p.G, &m.Code[storePC])
	outerAlloc := soleNode(t, p.G, &m.Code[0])
	innerAlloc := soleNode(t, p.G, &m.Code[1])

	found := false
	store.RefEdges(func(n *depgraph.Node) {
		if n == outerAlloc {
			found = true
		}
	})
	if !found {
		t.Error("missing reference edge store → outer alloc")
	}

	childFound := false
	p.G.Children(outerAlloc, func(field int, child *depgraph.Node) {
		if field == fRef.ID && child == innerAlloc {
			childFound = true
		}
	})
	if !childFound {
		t.Error("missing points-to child outer.inner → inner alloc")
	}
	if p.G.NumRefEdges() != 1 {
		t.Errorf("ref edges = %d, want 1", p.G.NumRefEdges())
	}
}

// TestContextsSeparateReceivers: with object-sensitive contexts, the same
// method body called on receivers from different allocation sites maps to
// different nodes (when slots don't collide).
func TestContextsSeparateReceivers(t *testing.T) {
	bd := ir.NewBuilder()
	box := bd.Class("Box", nil)
	fv := bd.Field(box, "v", ir.IntType)
	get := bd.Method(box, "get", false, 1, ir.IntType)
	gb := bd.Body(get)
	loadPC := gb.LoadField(1, 0, fv)
	gb.Return(1)

	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(2, 1)
	mb.New(0, box) // site 0
	mb.StoreField(0, fv, 2)
	mb.Call(3, get, 0)
	mb.New(1, box) // site 1
	mb.StoreField(1, fv, 2)
	mb.Call(3, get, 1)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := run(t, prog, Options{Slots: 64})
	nodes := p.G.NodesOf(&get.Code[loadPC])
	if len(nodes) != 2 {
		t.Errorf("load in Box.get has %d abstractions, want 2 (one per receiver site)", len(nodes))
	}
}

// TestCRTracking: with one slot, distinct contexts must conflict (CR → 1);
// with many slots, CR should be 0 here.
func TestCRTracking(t *testing.T) {
	bd := ir.NewBuilder()
	box := bd.Class("Box", nil)
	fv := bd.Field(box, "v", ir.IntType)
	get := bd.Method(box, "get", false, 1, ir.IntType)
	gb := bd.Body(get)
	loadPC := gb.LoadField(1, 0, fv)
	gb.Return(1)
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(2, 1)
	mb.New(0, box)
	mb.StoreField(0, fv, 2)
	mb.Call(3, get, 0)
	mb.New(1, box)
	mb.StoreField(1, fv, 2)
	mb.Call(3, get, 1)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}

	p1, _ := run(t, prog, Options{Slots: 1, TrackCR: true})
	if cr := p1.CR().CR(get.Code[loadPC].ID); cr != 1.0 {
		t.Errorf("CR with 1 slot = %v, want 1.0", cr)
	}
	p64, _ := run(t, prog, Options{Slots: 64, TrackCR: true})
	if cr := p64.CR().CR(get.Code[loadPC].ID); cr != 0 {
		t.Errorf("CR with 64 slots = %v, want 0", cr)
	}
}

// TestContextChainDepth: contexts are receiver-site *chains*, so the same
// instruction reached through two different two-level ownership paths maps
// to two abstractions even when the immediate receiver's allocation site is
// shared.
func TestContextChainDepth(t *testing.T) {
	bd := ir.NewBuilder()
	inner := bd.Class("Inner", nil)
	fv := bd.Field(inner, "v", ir.IntType)
	compute := bd.Method(inner, "compute", false, 1, ir.IntType)
	cb := bd.Body(compute)
	loadPC := cb.LoadField(1, 0, fv)
	cb.Return(1)

	outer := bd.Class("Outer", nil)
	fInner := bd.Field(outer, "inner", bd.RefType(inner))
	run := bd.Method(outer, "run", false, 1, ir.IntType)
	rb := bd.Body(run)
	rb.LoadField(1, 0, fInner)
	rb.Call(2, compute, 1)
	rb.Return(2)

	mk := func(bd *ir.BodyBuilder, outerSlot int) {
		bd.New(outerSlot, outer)
		bd.New(5, inner)
		bd.Const(6, 1)
		bd.StoreField(5, fv, 6)
		bd.StoreField(outerSlot, fInner, 5)
	}
	mainCls := bd.Class("Main", nil)
	m := bd.Method(mainCls, "main", true, 0, nil)
	mb := bd.Body(m)
	mk(mb, 0) // outer #1 (site A) with shared-site inner
	mk(mb, 1) // outer #2 (site C) — wait: each mk emits its own New instrs
	mb.Call(7, run, 0)
	mb.Call(8, run, 1)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	p := New(prog, Options{Slots: 1024})
	vm := interp.New(prog)
	vm.Tracer = p
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	nodes := p.G.NodesOf(&compute.Code[loadPC])
	if len(nodes) != 2 {
		t.Fatalf("compute load has %d abstractions, want 2 (chains differ at the outer level)", len(nodes))
	}
}
