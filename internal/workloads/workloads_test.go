package workloads

import (
	"testing"

	"lowutil/internal/deadness"
	"lowutil/internal/interp"
	"lowutil/internal/profiler"
)

func TestAllEighteenRegistered(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("workloads = %d, want 18", len(all))
	}
	names := map[string]bool{}
	for _, w := range all {
		if names[w.Name] {
			t.Errorf("duplicate %s", w.Name)
		}
		names[w.Name] = true
		if w.Profile == "" {
			t.Errorf("%s has no profile description", w.Name)
		}
	}
	for _, want := range []string{"antlr", "bloat", "chart", "eclipse", "sunflow", "tradesoap"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}

// TestAllCompileAndRun: every workload compiles, runs to completion
// deterministically, and produces output.
func TestAllCompileAndRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := w.Compile(1)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			m := interp.New(prog)
			m.MaxSteps = 200_000_000
			if err := m.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(m.Output) == 0 {
				t.Error("no output: workload result is unobservable")
			}
			if m.Steps < 1000 {
				t.Errorf("only %d steps: workload too trivial", m.Steps)
			}

			// Determinism.
			m2 := interp.New(prog)
			m2.MaxSteps = 200_000_000
			if err := m2.Run(); err != nil {
				t.Fatal(err)
			}
			if len(m.Output) != len(m2.Output) {
				t.Fatal("nondeterministic output length")
			}
			for i := range m.Output {
				if m.Output[i] != m2.Output[i] {
					t.Fatalf("nondeterministic output at %d", i)
				}
			}
		})
	}
}

// TestScaleGrowsWork: scale must increase executed instructions roughly
// proportionally.
func TestScaleGrowsWork(t *testing.T) {
	w := ByName("chart")
	steps := func(scale int) int64 {
		prog, err := w.Compile(scale)
		if err != nil {
			t.Fatal(err)
		}
		m := interp.New(prog)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Steps
	}
	s1, s4 := steps(1), steps(4)
	if s4 < 3*s1 {
		t.Errorf("scale 4 steps (%d) should be ~4x scale 1 (%d)", s4, s1)
	}
}

// TestProfilesHoldShape: the high-IPD trio (bloat, eclipse, sunflow) must
// measurably out-IPD the low-IPD fop under the dead-value analysis — the
// central Table 1(c) shape.
func TestProfilesHoldShape(t *testing.T) {
	ipd := func(name string) float64 {
		w := ByName(name)
		prog, err := w.Compile(1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := profiler.New(prog, profiler.Options{Slots: 16})
		m := interp.New(prog)
		m.Tracer = p
		if err := m.Run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return deadness.Analyze(p.G, m.Steps).IPD()
	}
	fop := ipd("fop")
	for _, name := range []string{"bloat", "chart", "sunflow"} {
		if got := ipd(name); got <= fop {
			t.Errorf("IPD(%s) = %.1f%% should exceed IPD(fop) = %.1f%%", name, got, fop)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if ByName("nope") != nil {
		t.Error("unknown workload should be nil")
	}
}
