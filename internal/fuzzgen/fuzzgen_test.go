package fuzzgen

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var updateCorpus = flag.Bool("update-corpus", false, "regenerate the checked-in corpus from fixed seeds")

// TestGeneratorDeterministic: the same seed must render the same source,
// byte for byte, across independent Generate calls — the whole replay story
// (corpus, `lowutil fuzz -seed`, shrink reproduction) depends on it.
func TestGeneratorDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		a := Generate(seed, DefaultConfig).Render()
		b := Generate(seed, DefaultConfig).Render()
		if a != b {
			t.Fatalf("seed %d: two generations differ", seed)
		}
		if !strings.Contains(a, fmt.Sprintf("seed=%d", seed)) {
			t.Fatalf("seed %d: header missing from rendered source", seed)
		}
	}
}

// TestFuzzBatchClean runs the full differential suite over a batch of fresh
// seeds and requires zero violations. This is the live generator+harness
// gate: any engine-pair divergence or soundness hole reachable within the
// batch shows up here with a shrunk reproducer in the failure message.
func TestFuzzBatchClean(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 6
	}
	sum := Run(Options{Seed: 1, N: n})
	if sum.Programs != n {
		t.Fatalf("ran %d programs, want %d", sum.Programs, n)
	}
	if want := int64(n * len(Invariants())); sum.Checks != want {
		t.Fatalf("ran %d checks, want %d", sum.Checks, want)
	}
	for _, f := range sum.Failures {
		t.Errorf("seed %d violates %s: %s\nshrunk reproducer:\n%s",
			f.Seed, f.Invariant, f.Detail, f.Shrunk)
	}
}

// TestRunDeterministic: with a fixed seed and N, two runs must produce
// structurally identical summaries — the property behind the CLI's
// byte-identical JSON output for `lowutil fuzz -seed 1 -n 200`.
func TestRunDeterministic(t *testing.T) {
	a := Run(Options{Seed: 7, N: 4})
	b := Run(Options{Seed: 7, N: 4})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("summaries differ:\n%+v\nvs\n%+v", a, b)
	}
}

// TestBrokenInvariantCaughtAndShrunk injects a deliberately failing
// invariant — "no program may contain a virtual .step( call" — and proves
// the driver catches it and shrinks the reproducer: the shrunk source must
// be smaller, still compile, and still contain the offending call.
func TestBrokenInvariantCaughtAndShrunk(t *testing.T) {
	extraInvariants = []Invariant{{
		Name: "synthetic-no-step-call",
		check: func(c *caseRun) error {
			if _, err := c.irProg(); err != nil {
				return errSkip
			}
			if strings.Contains(c.src, ".step(") {
				return fmt.Errorf("source contains a virtual .step( call")
			}
			return nil
		},
	}}
	defer func() { extraInvariants = nil }()

	sum := Run(Options{Seed: 3, N: 10, MaxFailures: 1})
	if len(sum.Failures) == 0 {
		t.Fatal("broken invariant was not caught within 10 programs")
	}
	f := sum.Failures[0]
	if f.Invariant != "synthetic-no-step-call" {
		t.Fatalf("caught %q, want the synthetic invariant", f.Invariant)
	}
	if !strings.Contains(f.Shrunk, ".step(") {
		t.Fatal("shrunk reproducer lost the failing property")
	}
	if len(f.Shrunk) >= len(f.Source) {
		t.Fatalf("shrinking made no progress: %d -> %d bytes", len(f.Source), len(f.Shrunk))
	}
	if failed, _ := CheckNamed("compiles", f.Shrunk); failed {
		t.Fatal("shrunk reproducer does not compile")
	}
	t.Logf("shrunk %d -> %d bytes", len(f.Source), len(f.Shrunk))
}

// TestShrinkRespectsPins: with "still compiles" as the failing property the
// shrinker deletes almost everything, but the pinned skeleton (Main.main's
// return structure, loop decrements) must keep every candidate well-formed.
func TestShrinkRespectsPins(t *testing.T) {
	p := Generate(11, DefaultConfig)
	src := p.Render()
	compiles := func(s string) bool {
		failed, _ := CheckNamed("compiles", s)
		return !failed
	}
	if !compiles(src) {
		t.Fatal("seed 11 does not compile")
	}
	shrunk := Shrink(p, compiles)
	out := shrunk.Render()
	if !compiles(out) {
		t.Fatal("shrunk program does not compile")
	}
	if len(out) >= len(src) {
		t.Fatalf("no progress: %d -> %d bytes", len(src), len(out))
	}
	if !strings.Contains(out, "class Main") {
		t.Fatal("shrinker deleted Main")
	}
}

// TestCheckNamedSkipsNonCompiling: a non-compiling source fails only the
// "compiles" invariant; every other invariant must report not-failed so the
// shrinker never trades one bug for another.
func TestCheckNamedSkipsNonCompiling(t *testing.T) {
	src := "class Main { static void main() { int x = ; } }"
	if failed, _ := CheckNamed("compiles", src); !failed {
		t.Fatal("compiles invariant passed on broken source")
	}
	for _, inv := range Invariants() {
		if inv.Name == "compiles" {
			continue
		}
		if failed, detail := CheckNamed(inv.Name, src); failed {
			t.Errorf("%s failed on a non-compiling source: %s", inv.Name, detail)
		}
	}
	vs := CheckAll(src)
	if len(vs) != 1 || vs[0].Invariant != "compiles" {
		t.Fatalf("CheckAll on broken source = %+v, want exactly the compiles violation", vs)
	}
}

// corpusSeeds are the fixed seeds behind the checked-in regression corpus.
// Regenerate the files with: go test ./internal/fuzzgen -run Corpus -update-corpus
// The last entry is a fuzzer-found regression: under this seed the dense
// profiler's fast path lost frequency increments to a stale table view
// whenever AfterCall's intern grew the table, which surfaced as a
// prune-ranking divergence (see profiler.TestDenseFreqMatchesLegacyGraph).
var corpusSeeds = []uint64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987, 1597,
	7665958480717146759}

// TestCorpusReplay replays every checked-in corpus program through the full
// invariant suite. The corpus pins the generator's output format (a corpus
// diff under -update-corpus flags an unintended generator change) and keeps
// the differential invariants exercised in ordinary `go test` runs even
// when the fuzz budget elsewhere is zero.
func TestCorpusReplay(t *testing.T) {
	dir := "corpus"
	if *updateCorpus {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for _, seed := range corpusSeeds {
			src := Generate(seed, DefaultConfig).Render()
			name := filepath.Join(dir, fmt.Sprintf("seed-%04d.mj", seed))
			if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-corpus)", err)
	}
	var files []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".mj") {
			files = append(files, e.Name())
		}
	}
	if len(files) < 10 {
		t.Fatalf("corpus has %d programs, want >= 10", len(files))
	}
	if testing.Short() {
		files = files[:5]
	}
	totalDeps := 0
	for _, name := range files {
		name := name
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range CheckAll(string(src)) {
				t.Errorf("%s: %s", v.Invariant, v.Detail)
			}
			c := newCaseRun(string(src))
			if g, err := c.dynGraph(); err == nil {
				totalDeps += g.NumDepEdges()
			}
		})
	}
	if totalDeps == 0 {
		t.Error("no corpus program produced dynamic dep edges; the containment invariants would be vacuous")
	}
}

// TestCorpusMatchesGenerator: each corpus file must be exactly what the
// generator produces for its seed today — drift means the generator changed
// and the corpus (plus any seed-based reproduction instructions) is stale.
func TestCorpusMatchesGenerator(t *testing.T) {
	for _, seed := range corpusSeeds {
		name := filepath.Join("corpus", fmt.Sprintf("seed-%04d.mj", seed))
		want, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("%v (regenerate with -update-corpus)", err)
		}
		if got := Generate(seed, DefaultConfig).Render(); got != string(want) {
			t.Errorf("seed %d: generator output drifted from %s (regenerate with -update-corpus if intended)", seed, name)
		}
	}
}
