package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"lowutil"
	"lowutil/internal/jobs"
	"lowutil/internal/par"
)

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// MaxSessions bounds the compiled-session LRU (0 = 64).
	MaxSessions int
	// MaxInFlight bounds concurrently executing heavy requests — profile,
	// run, slice, load (0 = 4). Excess requests get 429.
	MaxInFlight int
	// RequestTimeout bounds each request's work (0 = 60s). The deadline
	// context reaches the interpreter and every analysis fixpoint.
	RequestTimeout time.Duration
	// Logger receives one structured line per request (nil = slog default).
	Logger *slog.Logger
	// Jobs tunes the async batch-job queue behind POST /v2/jobs. The
	// Executor field is ignored — the server installs its own, which
	// resolves specs through the session LRU and memoized runs. The
	// FaultHook field is honored (tests inject deterministic failures).
	Jobs jobs.Config
}

// Server is the lowutil profiling service. Create with New, expose with
// Handler, and drive it with any http.Server.
type Server struct {
	cfg      Config
	sessions *sessionCache
	gate     *par.Gate
	met      *metrics
	log      *slog.Logger
	mux      *http.ServeMux
	jobs     *jobs.Queue
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	s := &Server{
		cfg:      cfg,
		sessions: newSessionCache(cfg.MaxSessions),
		gate:     par.NewGate(cfg.MaxInFlight),
		met:      newMetrics(),
		log:      log,
		mux:      http.NewServeMux(),
	}
	jc := cfg.Jobs
	jc.Executor = jobs.ExecutorFunc(s.executeSpec)
	s.jobs = jobs.New(jc)
	s.routes()
	return s
}

// Close drains the job queue gracefully: in-flight jobs are canceled and
// re-queued (nothing is lost — a restarted server resumes them on
// resubmission), workers exit. Call after http.Server.Shutdown.
func (s *Server) Close() { s.jobs.Drain() }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v2/compile", s.instrument("compile", false, s.handleCompile))
	s.mux.HandleFunc("POST /v2/profile", s.instrument("profile", true, s.handleProfile))
	s.mux.HandleFunc("POST /v2/report", s.instrument("report", true, s.handleReport))
	s.mux.HandleFunc("POST /v2/slice", s.instrument("slice", true, s.handleSlice))
	s.mux.HandleFunc("POST /v2/audit", s.instrument("audit", true, s.handleAudit))
	s.mux.HandleFunc("POST /v2/vet", s.instrument("vet", false, s.handleVet))
	s.mux.HandleFunc("POST /v2/ssa", s.instrument("ssa", false, s.handleSSA))
	s.mux.HandleFunc("POST /v2/run", s.instrument("run", true, s.handleRun))
	s.mux.HandleFunc("POST /v2/profile/save", s.instrument("save", true, s.handleSave))
	s.mux.HandleFunc("POST /v2/profile/load", s.instrument("load", true, s.handleLoad))
	s.mux.HandleFunc("POST /v2/jobs", s.instrument("jobs", false, s.handleJobsSubmit))
	s.mux.HandleFunc("GET /v2/jobs/{id}", s.instrument("job", false, s.handleJobStatus))
	s.mux.HandleFunc("GET /v2/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns the service's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// errorBody is the unified typed error payload every /v2/* endpoint
// returns, wrapped in an errorEnvelope. Code is a stable machine-readable
// slug; Retryable tells clients whether backing off and retrying the same
// request can succeed (the client SDK keys its retry loop off it).
type errorBody struct {
	Code      string `json:"code"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
	Stage     string `json:"stage,omitempty"`
	Line      int    `json:"line,omitempty"`
	Col       int    `json:"col,omitempty"`
}

// errorEnvelope wraps every error response: {"error":{...}}.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

var errUnknownSession = errors.New("unknown session (expired from the cache or never compiled)")

// instrument wraps a handler with request counting, per-request deadline,
// admission control for heavy (execution- or analysis-bound) endpoints,
// and the structured request log line.
func (s *Server) instrument(name string, heavy bool, h func(ctx context.Context, r *http.Request) (any, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.request(name)
		if heavy {
			if !s.gate.TryAcquire() {
				s.met.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				s.writeJSON(w, http.StatusTooManyRequests, errorEnvelope{Error: errorBody{
					Code: "at_capacity", Message: "server at capacity", Retryable: true,
				}})
				s.logLine(r, name, http.StatusTooManyRequests, start)
				return
			}
			defer s.gate.Release()
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		resp, err := h(ctx, r)
		status := http.StatusOK
		if err != nil {
			s.met.failure(name)
			status = s.writeErr(w, err)
		} else if raw, ok := resp.(json.RawMessage); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Write(raw)
		} else {
			s.writeJSON(w, http.StatusOK, resp)
		}
		s.logLine(r, name, status, start)
	}
}

func (s *Server) logLine(r *http.Request, endpoint string, status int, start time.Time) {
	s.log.Info("request",
		"endpoint", endpoint,
		"method", r.Method,
		"path", r.URL.Path,
		"status", status,
		"dur_ms", time.Since(start).Milliseconds(),
		"inflight", s.gate.InFlight(),
	)
}

// writeErr maps facade errors onto transport statuses and the unified
// envelope: compile failures are the client's fault (422), unknown
// sessions or jobs 404, bad payloads 400, a full job queue 429, a batch
// key conflict 409, deadline expiry 504, cancellation 499 (client gone),
// the rest 500.
func (s *Server) writeErr(w http.ResponseWriter, err error) int {
	status, body := classifyErr(err)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	s.writeJSON(w, status, errorEnvelope{Error: body})
	return status
}

// classifyErr is the single mapping from Go errors to (status, envelope
// body). Cancellation is checked before profile errors: a run aborted by
// the client's disconnect wraps ErrCanceled inside a ProfileError, and the
// disconnect is the truth of the matter.
func classifyErr(err error) (int, errorBody) {
	var ce *lowutil.CompileError
	var pe *lowutil.ProfileError
	var badReq *badRequestError
	status := http.StatusInternalServerError
	body := errorBody{Code: "internal", Message: err.Error()}
	switch {
	case errors.As(err, &ce):
		status, body.Code = http.StatusUnprocessableEntity, "compile_error"
		body.Line, body.Col = ce.Line, ce.Col
	case errors.As(err, &badReq):
		status, body.Code = http.StatusBadRequest, "bad_request"
	case errors.Is(err, errUnknownSession), errors.Is(err, errUnknownJob):
		status, body.Code = http.StatusNotFound, "not_found"
	case errors.Is(err, jobs.ErrQueueFull):
		status, body.Code, body.Retryable = http.StatusTooManyRequests, "at_capacity", true
	case errors.Is(err, jobs.ErrBatchConflict):
		status, body.Code = http.StatusConflict, "conflict"
	case errors.Is(err, context.DeadlineExceeded):
		status, body.Code = http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, lowutil.ErrCanceled), errors.Is(err, context.Canceled):
		status, body.Code, body.Retryable = 499, "canceled", true // client closed request (nginx convention)
	case errors.As(err, &pe):
		body.Code, body.Stage = "profile_error", pe.Stage
	}
	return status, body
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Error("encode response", "err", err)
	}
}

// badRequestError marks malformed payloads for the 400 mapping.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

func decode[T any](r *http.Request) (*T, error) {
	var v T
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	if err := dec.Decode(&v); err != nil {
		return nil, &badRequestError{fmt.Errorf("decode request: %w", err)}
	}
	return &v, nil
}

// session resolves a session reference, counting cache traffic.
func (s *Server) session(id string) (*Session, error) {
	if id == "" {
		return nil, &badRequestError{errors.New("missing session")}
	}
	sess, ok := s.sessions.get(id)
	if !ok {
		s.met.sessionMisses.Add(1)
		return nil, fmt.Errorf("%w: %s", errUnknownSession, id)
	}
	s.met.sessionHits.Add(1)
	return sess, nil
}

// ---- request/response payloads ----

type compileRequest struct {
	Source     string `json:"source"`
	MainClass  string `json:"main_class,omitempty"`
	MainMethod string `json:"main_method,omitempty"`
}

type compileResponse struct {
	Session      string `json:"session"`
	Instructions int    `json:"instructions"`
	CacheHit     bool   `json:"cache_hit"`
}

// profileParams selects a memoized profiling configuration. Zero values
// mean the facade defaults.
type profileParams struct {
	Slots        int  `json:"slots,omitempty"`
	TreeHeight   int  `json:"tree_height,omitempty"`
	Traditional  bool `json:"traditional,omitempty"`
	TrackControl bool `json:"track_control,omitempty"`
	Prune        bool `json:"prune,omitempty"`
	Legacy       bool `json:"legacy,omitempty"`
}

func (p profileParams) key() profileKey {
	k := profileKey{
		Slots:        p.Slots,
		TreeHeight:   p.TreeHeight,
		Traditional:  p.Traditional,
		TrackControl: p.TrackControl,
		Prune:        p.Prune,
		Legacy:       p.Legacy,
	}
	if k.Slots <= 0 {
		k.Slots = lowutil.DefaultSlots
	}
	if k.TreeHeight <= 0 {
		k.TreeHeight = lowutil.DefaultTreeHeight
	}
	return k
}

type profileRequest struct {
	Session string `json:"session"`
	profileParams
	Top int `json:"top,omitempty"`
}

type findingJSON struct {
	Site            int     `json:"site"`
	Where           string  `json:"where"`
	Cost            float64 `json:"cost"`
	Benefit         float64 `json:"benefit"`
	Rate            float64 `json:"rate"`
	ReachesConsumer bool    `json:"reaches_consumer"`
	Allocs          int64   `json:"allocs"`
}

type profileResponse struct {
	Session  string        `json:"session"`
	CacheHit bool          `json:"cache_hit"`
	Steps    int64         `json:"steps"`
	Pruned   int64         `json:"pruned_events,omitempty"`
	Top      []findingJSON `json:"top"`
}

type reportResponse struct {
	Session  string `json:"session"`
	CacheHit bool   `json:"cache_hit"`
	Report   string `json:"report"`
}

type sliceRequest struct {
	Session string `json:"session"`
	Mode    string `json:"mode,omitempty"`
	ObjCtx  bool   `json:"objctx,omitempty"`
	Top     int    `json:"top,omitempty"`
}

type auditRequest struct {
	Session string `json:"session"`
	Mode    string `json:"mode,omitempty"`
	ObjCtx  bool   `json:"objctx,omitempty"`
	Top     int    `json:"top,omitempty"`
}

type vetRequest struct {
	Session string `json:"session"`
	// Engine selects the vet analysis engine: "ssa" (default) or "dense".
	Engine string `json:"engine,omitempty"`
}

type vetResponse struct {
	Session  string   `json:"session"`
	Engine   string   `json:"engine"`
	Findings []string `json:"findings"`
}

type ssaRequest struct {
	Session string `json:"session"`
	// Method restricts the dump to one "Class.method"; empty dumps all.
	Method string `json:"method,omitempty"`
}

type ssaResponse struct {
	Session string `json:"session"`
	Dump    string `json:"dump"`
}

type runResponse struct {
	Session    string  `json:"session"`
	Output     []int64 `json:"output"`
	Steps      int64   `json:"steps"`
	Allocs     int64   `json:"allocs"`
	NativeWork int64   `json:"native_work"`
}

type loadRequest struct {
	Session string          `json:"session"`
	Profile json.RawMessage `json:"profile"`
	Top     int             `json:"top,omitempty"`
}

// ---- handlers ----

func (s *Server) handleCompile(ctx context.Context, r *http.Request) (any, error) {
	req, err := decode[compileRequest](r)
	if err != nil {
		return nil, err
	}
	if req.Source == "" {
		return nil, &badRequestError{errors.New("missing source")}
	}
	mc, mm := req.MainClass, req.MainMethod
	if mc == "" {
		mc = "Main"
	}
	if mm == "" {
		mm = "main"
	}
	id := sessionKey(req.Source, mc, mm)
	if sess, ok := s.sessions.get(id); ok {
		s.met.sessionHits.Add(1)
		return compileResponse{Session: sess.ID, Instructions: sess.Prog.NumInstructions(), CacheHit: true}, nil
	}
	prog, err := lowutil.CompileAt(req.Source, mc, mm)
	if err != nil {
		return nil, err
	}
	sess, inserted, evicted := s.sessions.add(&Session{ID: id, Created: time.Now(), Prog: prog})
	if inserted {
		s.met.sessionsCreated.Add(1)
	} else {
		s.met.sessionHits.Add(1)
	}
	s.met.sessionEvictions.Add(int64(evicted))
	return compileResponse{Session: sess.ID, Instructions: sess.Prog.NumInstructions(), CacheHit: !inserted}, nil
}

// cachedProfile resolves the memoized run for a request, counting cache
// traffic and step totals.
func (s *Server) cachedProfile(ctx context.Context, sess *Session, p profileParams) (*profileEntry, bool, error) {
	e, hit, err := sess.profile(ctx, p.key())
	if hit {
		s.met.profileHits.Add(1)
	} else {
		s.met.profileMisses.Add(1)
		if err == nil {
			e.use(func(pr *lowutil.Profile) error {
				s.met.profiledSteps.Add(pr.Steps())
				return nil
			})
		}
	}
	return e, hit, err
}

func (s *Server) handleProfile(ctx context.Context, r *http.Request) (any, error) {
	req, err := decode[profileRequest](r)
	if err != nil {
		return nil, err
	}
	sess, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	e, hit, err := s.cachedProfile(ctx, sess, req.profileParams)
	if err != nil {
		return nil, err
	}
	top := req.Top
	if top <= 0 {
		top = lowutil.DefaultTop
	}
	resp := profileResponse{Session: sess.ID, CacheHit: hit, Top: []findingJSON{}}
	e.use(func(pr *lowutil.Profile) error {
		resp.Steps = pr.Steps()
		resp.Pruned = pr.PrunedEvents()
		for _, f := range pr.TopStructures(top) {
			resp.Top = append(resp.Top, findingJSON{
				Site: f.Site, Where: f.Where, Cost: f.Cost, Benefit: f.Benefit,
				Rate: f.Rate, ReachesConsumer: f.ReachesConsumer, Allocs: f.Allocs,
			})
		}
		return nil
	})
	return resp, nil
}

func (s *Server) handleReport(ctx context.Context, r *http.Request) (any, error) {
	req, err := decode[profileRequest](r)
	if err != nil {
		return nil, err
	}
	sess, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	e, hit, err := s.cachedProfile(ctx, sess, req.profileParams)
	if err != nil {
		return nil, err
	}
	top := req.Top
	if top <= 0 {
		top = lowutil.DefaultTop
	}
	resp := reportResponse{Session: sess.ID, CacheHit: hit}
	e.use(func(pr *lowutil.Profile) error {
		resp.Report = pr.Report(top)
		return nil
	})
	return resp, nil
}

func (s *Server) handleSlice(ctx context.Context, r *http.Request) (any, error) {
	req, err := decode[sliceRequest](r)
	if err != nil {
		return nil, err
	}
	sess, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	opts := []lowutil.SliceOption{lowutil.WithTop(req.Top)}
	if req.Mode != "" {
		opts = append(opts, lowutil.WithMode(req.Mode))
	}
	if req.ObjCtx {
		opts = append(opts, lowutil.WithObjCtx())
	}
	rep, err := sess.Prog.StaticSliceContext(ctx, opts...)
	if err != nil {
		return nil, err
	}
	return reportResponse{Session: sess.ID, Report: rep}, nil
}

// handleAudit serves the fully static low-utility audit. Reports are
// memoized per session under the complete audit configuration, with the
// same in-flight latch discipline as profiles — concurrent identical
// requests share one analysis.
func (s *Server) handleAudit(ctx context.Context, r *http.Request) (any, error) {
	req, err := decode[auditRequest](r)
	if err != nil {
		return nil, err
	}
	sess, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	top := req.Top
	if top <= 0 {
		top = lowutil.DefaultTop
	}
	e, hit, err := sess.audit(ctx, auditKey{Mode: req.Mode, ObjCtx: req.ObjCtx, Top: top})
	if hit {
		s.met.auditHits.Add(1)
	} else {
		s.met.auditMisses.Add(1)
	}
	if err != nil {
		return nil, err
	}
	return reportResponse{Session: sess.ID, CacheHit: hit, Report: e.report}, nil
}

func (s *Server) handleVet(ctx context.Context, r *http.Request) (any, error) {
	req, err := decode[vetRequest](r)
	if err != nil {
		return nil, err
	}
	sess, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	fs, err := sess.Prog.VetEngine(req.Engine)
	if err != nil {
		return nil, &badRequestError{err}
	}
	findings := []string{}
	for _, f := range fs {
		findings = append(findings, f.Message)
	}
	engine := req.Engine
	if engine == "" {
		engine = "ssa"
	}
	return vetResponse{Session: sess.ID, Engine: engine, Findings: findings}, nil
}

func (s *Server) handleSSA(ctx context.Context, r *http.Request) (any, error) {
	req, err := decode[ssaRequest](r)
	if err != nil {
		return nil, err
	}
	sess, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	dump, err := sess.Prog.SSADump(req.Method)
	if err != nil {
		return nil, &badRequestError{err}
	}
	return ssaResponse{Session: sess.ID, Dump: dump}, nil
}

func (s *Server) handleRun(ctx context.Context, r *http.Request) (any, error) {
	req, err := decode[vetRequest](r)
	if err != nil {
		return nil, err
	}
	sess, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	res, err := sess.Prog.RunContext(ctx)
	if err != nil {
		return nil, err
	}
	out := res.Output
	if out == nil {
		out = []int64{}
	}
	return runResponse{
		Session: sess.ID, Output: out,
		Steps: res.Steps, Allocs: res.Allocs, NativeWork: res.NativeWork,
	}, nil
}

// handleSave profiles (or reuses the memoized run) and streams the
// portable profile envelope — the §3.2 offline-analysis deployment mode
// over HTTP.
func (s *Server) handleSave(ctx context.Context, r *http.Request) (any, error) {
	req, err := decode[profileRequest](r)
	if err != nil {
		return nil, err
	}
	sess, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	e, _, err := s.cachedProfile(ctx, sess, req.profileParams)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := e.use(func(pr *lowutil.Profile) error { return pr.Save(&buf) }); err != nil {
		return nil, err
	}
	return json.RawMessage(buf.Bytes()), nil
}

// handleLoad reloads a saved profile against the session's program and
// renders its report, closing the save/load round trip.
func (s *Server) handleLoad(ctx context.Context, r *http.Request) (any, error) {
	req, err := decode[loadRequest](r)
	if err != nil {
		return nil, err
	}
	sess, err := s.session(req.Session)
	if err != nil {
		return nil, err
	}
	if len(req.Profile) == 0 {
		return nil, &badRequestError{errors.New("missing profile")}
	}
	pr, err := sess.Prog.LoadProfile(bytes.NewReader(req.Profile))
	if err != nil {
		return nil, &badRequestError{err}
	}
	top := req.Top
	if top <= 0 {
		top = lowutil.DefaultTop
	}
	return reportResponse{Session: sess.ID, Report: pr.Report(top)}, nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.render(w, s.sessions.len(), s.gate.InFlight(), s.gate.Cap(), s.jobs.Stats())
}
