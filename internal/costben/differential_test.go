package costben

// Differential proof for the frozen DP path: on every workload, every
// metric the analysis exposes — per-node HRAC/HRAB, per-location RAC/RAB,
// per-structure NRAC/NRAB, and both rankings — must be bit-identical
// between the legacy per-query traversal and the condensed DP sweep, and
// the parallel ranking must be bit-identical to the serial one.

import (
	"testing"

	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/profiler"
	"lowutil/internal/workloads"
)

func profileWorkload(t *testing.T, name string) *depgraph.Graph {
	t.Helper()
	w := workloads.ByName(name)
	if w == nil {
		t.Fatalf("unknown workload %s", name)
	}
	prog, err := w.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	p := profiler.New(prog, profiler.Options{Slots: 16})
	m := interp.New(prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return p.G
}

func sameReports(t *testing.T, kind string, frozen, legacy []*SiteReport) {
	t.Helper()
	if len(frozen) != len(legacy) {
		t.Fatalf("%s: %d vs %d entries", kind, len(frozen), len(legacy))
	}
	for i := range frozen {
		f, l := frozen[i], legacy[i]
		if f.Site != l.Site || f.NRAC != l.NRAC || f.NRAB != l.NRAB ||
			f.Rate != l.Rate || f.Consumed != l.Consumed || f.AllocFreq != l.AllocFreq {
			t.Fatalf("%s entry %d differs:\n frozen %v\n legacy %v", kind, i, f, l)
		}
	}
}

func TestFrozenMatchesLegacyAllWorkloads(t *testing.T) {
	names := make([]string, 0, len(workloads.All()))
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	if testing.Short() {
		names = []string{"eclipse", "bloat", "xalan"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			g := profileWorkload(t, name)
			frozen := NewAnalysis(g)
			legacy := NewAnalysisWith(g, Config{Legacy: true})

			// Per-node metrics over every node of the graph.
			g.Nodes(func(n *depgraph.Node) {
				if fc, lc := frozen.HRAC(n), legacy.HRAC(n); fc != lc {
					t.Fatalf("HRAC(%v) = %d frozen, %d legacy", n, fc, lc)
				}
				fb, fcons := frozen.HRAB(n)
				lb, lcons := legacy.HRAB(n)
				if fb != lb || fcons != lcons {
					t.Fatalf("HRAB(%v) = %d,%v frozen, %d,%v legacy", n, fb, fcons, lb, lcons)
				}
			})

			// Per-location metrics.
			g.Locs(func(loc depgraph.Loc) {
				if fr, lr := frozen.RAC(loc), legacy.RAC(loc); fr != lr {
					t.Fatalf("RAC(%v) = %v frozen, %v legacy", loc, fr, lr)
				}
				if fr, lr := frozen.RAB(loc), legacy.RAB(loc); fr != lr {
					t.Fatalf("RAB(%v) = %v frozen, %v legacy", loc, fr, lr)
				}
			})

			// Per-structure aggregates.
			g.Nodes(func(n *depgraph.Node) {
				if n.Eff != depgraph.EffAlloc {
					return
				}
				if fc, lc := frozen.NRAC(n, DefaultTreeHeight), legacy.NRAC(n, DefaultTreeHeight); fc != lc {
					t.Fatalf("NRAC(%v) = %v frozen, %v legacy", n, fc, lc)
				}
				fb, fcons := frozen.NRABDetail(n, DefaultTreeHeight)
				lb, lcons := legacy.NRABDetail(n, DefaultTreeHeight)
				if fb != lb || fcons != lcons {
					t.Fatalf("NRAB(%v) = %v,%v frozen, %v,%v legacy", n, fb, fcons, lb, lcons)
				}
			})

			// Full rankings.
			fr := frozen.RankStructures(DefaultTreeHeight)
			lr := legacy.RankStructures(DefaultTreeHeight)
			if len(fr) != len(lr) {
				t.Fatalf("RankStructures: %d vs %d entries", len(fr), len(lr))
			}
			for i := range fr {
				f, l := fr[i], lr[i]
				if f.Alloc != l.Alloc || f.NRAC != l.NRAC || f.NRAB != l.NRAB ||
					f.Rate != l.Rate || f.Consumed != l.Consumed || f.AllocFreq != l.AllocFreq {
					t.Fatalf("RankStructures entry %d differs:\n frozen %v\n legacy %v", i, f, l)
				}
			}
			sameReports(t, "RankBySite", frozen.RankBySite(DefaultTreeHeight), legacy.RankBySite(DefaultTreeHeight))
		})
	}
}

func TestParallelRankingDeterministic(t *testing.T) {
	g := profileWorkload(t, "eclipse")
	serial := NewAnalysisWith(g, Config{Workers: 1})
	parallel := NewAnalysisWith(g, Config{Workers: 8})
	want := serial.RankBySite(DefaultTreeHeight)
	// Re-rank several times: any map-order or scheduling nondeterminism in
	// the parallel merge would flake here.
	for round := 0; round < 5; round++ {
		sameReports(t, "parallel RankBySite", parallel.RankBySite(DefaultTreeHeight), want)
	}
}
