package evalharness

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lowutil/internal/workloads"
)

var updatePrecision = flag.Bool("update", false, "rewrite testdata/precision.golden")

// precisionShort is the -short subset; the golden always holds all 18 rows,
// and the short run checks just these against their recorded lines.
var precisionShort = map[string]bool{
	"chart": true, "avrora": true, "hsqldb": true, "luindex": true,
}

// TestPrecisionRankCorrelation is the rank-correlation regression gate. The
// golden records, per workload, how well the unweighted and the
// frequency-weighted static bounds rank locations against the dynamic
// profile. The harness is deterministic end to end, so any drift from the
// recorded baseline — in particular a drop in rhoFreq — fails the test;
// regenerate with -update (full mode, not -short) after an intended change.
// On top of the per-row pin, the weighted model must beat the unweighted one
// on mean over the full suite — the headline claim of the loop-aware cost
// model.
func TestPrecisionRankCorrelation(t *testing.T) {
	golden := filepath.Join("testdata", "precision.golden")
	var rows []*PrecisionRow
	var sumFlat, sumFreq float64
	for _, w := range workloads.All() {
		if testing.Short() && !precisionShort[w.Name] {
			continue
		}
		r, err := Precision(w.Name, 1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if r.Matched < 2 {
			t.Errorf("%s: only %d matched locations — harness degenerate", w.Name, r.Matched)
		}
		rows = append(rows, r)
		sumFlat += r.RhoFlat
		sumFreq += r.RhoFreq
	}

	if *updatePrecision {
		if testing.Short() {
			t.Fatal("-update needs the full suite: rerun without -short")
		}
		var b strings.Builder
		for _, r := range rows {
			b.WriteString(r.String())
			b.WriteByte('\n')
		}
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}

	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		want[strings.Fields(line)[0]] = line
	}
	for _, r := range rows {
		if got := r.String(); got != want[r.Name] {
			t.Errorf("precision drift for %s:\n  got:  %s\n  want: %s\n(regenerate with -update if intended)",
				r.Name, got, want[r.Name])
		}
	}

	// The loop-aware weighted bounds must rank strictly better than the
	// frequency-blind ones on average. Holds on the -short subset too.
	if sumFreq <= sumFlat {
		t.Errorf("weighted bounds do not improve rank correlation: mean rhoFreq %.4f <= mean rhoFlat %.4f",
			sumFreq/float64(len(rows)), sumFlat/float64(len(rows)))
	}
}
