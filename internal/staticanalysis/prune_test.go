package staticanalysis

import (
	"testing"

	"lowutil/internal/costben"
	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/profiler"
	"lowutil/internal/workloads"
)

// TestPruneMarksOnlyPureOps: the prune set must never touch loads, stores,
// allocations, calls, predicates or control flow — those carry the events
// the cost-benefit analyses are made of.
func TestPruneMarksOnlyPureOps(t *testing.T) {
	for _, w := range workloads.All() {
		prog, err := w.Compile(1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		prune, st := PruneSet(prog)
		if st.Pruned > st.Candidates {
			t.Errorf("%s: pruned %d > candidates %d", w.Name, st.Pruned, st.Candidates)
		}
		n := 0
		for i := range prog.Instrs {
			in := prog.Instrs[i]
			if in.ID < len(prune) && prune[in.ID] {
				n++
				if !pruneOps[in.Op] {
					t.Errorf("%s: pruned non-pure op %s at %s pc %d",
						w.Name, in.Op, in.Method.QualifiedName(), in.PC)
				}
			}
		}
		if n != st.Pruned {
			t.Errorf("%s: prune set has %d marks, stats say %d", w.Name, n, st.Pruned)
		}
	}
}

// TestPruneKeepsTaintedLoads: values derived from heap reads sit inside
// forward benefit slices and must never be pruned, even when dead.
func TestPruneKeepsTaintedLoads(t *testing.T) {
	b := ir.NewBuilder()
	cls := b.Class("Main", nil)
	fv := b.Field(cls, "v", ir.IntType)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.New(0, cls)          // pc0
	mb.Const(1, 3)          // pc1
	mb.StoreField(0, fv, 1) // pc2
	mb.LoadField(2, 0, fv)  // pc3
	mb.Move(3, 2)           // pc4: dead, but load-derived — in v's benefit slice
	mb.Const(4, 9)          // pc5: dead and taint-free — prunable
	mb.ReturnVoid()
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	prune, st := PruneSet(prog)
	if prune[prog.Instrs[4].ID] {
		t.Error("pc4 copies a loaded value; pruning it would change RAB")
	}
	if !prune[prog.Instrs[5].ID] {
		t.Error("pc5 is a dead taint-free const; it must be prunable")
	}
	if st.Pruned < 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPrunePreservesRankings: profiling each workload with and without the
// prune set must yield the identical per-site cost-benefit ranking — same
// sites, same order, same NRAC/NRAB — while suppressing a measurable number
// of Gcost events on the workloads that carry dead scratch computation.
func TestPrunePreservesRankings(t *testing.T) {
	var totalPruned int64
	prunedWorkloads := 0
	for _, w := range workloads.All() {
		prog, err := w.Compile(1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		run := func(prune []bool) (*depgraph.Graph, int64) {
			p := profiler.New(prog, profiler.Options{Slots: 16, Prune: prune})
			m := interp.New(prog)
			m.Tracer = p
			m.Prune = prune
			m.MaxSteps = 200_000_000
			if err := m.Run(); err != nil {
				t.Fatalf("%s: %v", w.Name, err)
			}
			return p.G, m.PrunedEvents
		}
		gFull, zero := run(nil)
		if zero != 0 {
			t.Fatalf("%s: unpruned run counted %d pruned events", w.Name, zero)
		}
		prune, _ := PruneSet(prog)
		gPruned, nPruned := run(prune)

		full := costben.NewAnalysis(gFull).RankBySite(4)
		pr := costben.NewAnalysis(gPruned).RankBySite(4)
		if len(full) != len(pr) {
			t.Fatalf("%s: site count %d vs %d under prune", w.Name, len(full), len(pr))
		}
		for i := range full {
			f, p := full[i], pr[i]
			if f.Site != p.Site || f.NRAC != p.NRAC || f.NRAB != p.NRAB || f.Consumed != p.Consumed {
				t.Errorf("%s: rank %d diverges: %v vs %v", w.Name, i, f, p)
			}
		}
		totalPruned += nPruned
		if nPruned > 0 {
			prunedWorkloads++
		}
	}
	if totalPruned == 0 {
		t.Error("prune suppressed no events on any workload")
	}
	if prunedWorkloads < 3 {
		t.Errorf("only %d workloads had suppressed events, want >= 3", prunedWorkloads)
	}
	t.Logf("suppressed %d events across %d workloads", totalPruned, prunedWorkloads)
}

// TestPruneDoesNotChangeExecution: pruning gates tracing only; outputs and
// step counts must match an untraced run exactly.
func TestPruneDoesNotChangeExecution(t *testing.T) {
	w := workloads.ByName("luindex")
	prog, err := w.Compile(1)
	if err != nil {
		t.Fatal(err)
	}
	plain := interp.New(prog)
	if err := plain.Run(); err != nil {
		t.Fatal(err)
	}
	prune, _ := PruneSet(prog)
	pruned := interp.New(prog)
	pruned.Tracer = interp.NopTracer{}
	pruned.Prune = prune
	if err := pruned.Run(); err != nil {
		t.Fatal(err)
	}
	if plain.Steps != pruned.Steps {
		t.Errorf("steps %d vs %d: pruning must not change execution", plain.Steps, pruned.Steps)
	}
	if len(plain.Output) != len(pruned.Output) {
		t.Fatal("output lengths differ")
	}
	for i := range plain.Output {
		if plain.Output[i] != pruned.Output[i] {
			t.Errorf("output %d differs", i)
		}
	}
	if pruned.PrunedEvents == 0 {
		t.Error("luindex must have suppressed events")
	}
}
