package depgraph

import (
	"sort"
	"testing"
)

// buildDiamond constructs a small graph with a shared subgraph, a ref edge,
// and location tables, exercising every CSR family.
func buildDiamond(t *testing.T) (*Graph, []*Node) {
	t.Helper()
	prog := mkProg(t, 5)
	g := New(prog)
	nodes := make([]*Node, 5)
	for i := range nodes {
		nodes[i] = g.Node(prog.Instrs[i], 0)
		nodes[i].SetFreq(int64(i + 1))
	}
	g.AddDep(nodes[1], nodes[0])
	g.AddDep(nodes[2], nodes[0])
	g.AddDep(nodes[3], nodes[1])
	g.AddDep(nodes[3], nodes[2])
	g.AddRef(nodes[4], nodes[0])
	loc := Loc{Alloc: nodes[0], Field: 2}
	g.AddLocStore(loc, nodes[1])
	g.AddLocStore(loc, nodes[2])
	g.AddLocLoad(loc, nodes[3])
	g.AddChild(loc, nodes[4])
	return g, nodes
}

func TestFreezeCSRMatchesGraph(t *testing.T) {
	g, nodes := buildDiamond(t)
	s := g.Freeze()

	if s.NumNodes() != len(nodes) {
		t.Fatalf("NumNodes = %d, want %d", s.NumNodes(), len(nodes))
	}
	// Dense IDs follow (instruction, d) order.
	for i := 1; i < len(s.Nodes); i++ {
		if !nodeLess(s.Nodes[i-1], s.Nodes[i]) {
			t.Fatalf("Nodes not in canonical order at %d", i)
		}
	}
	for i, nd := range s.Nodes {
		id, ok := s.ID(nd)
		if !ok || id != int32(i) {
			t.Fatalf("ID(%v) = %d,%v want %d", nd.In.ID, id, ok, i)
		}
		if s.Freq[i] != nd.Freq() || int(s.D[i]) != nd.D || s.Eff[i] != nd.Eff {
			t.Fatalf("parallel arrays disagree with node %d", i)
		}
	}

	// Each adjacency row is sorted and matches the live edge set.
	checkRows := func(name string, start, data []int32, liveOf func(*Node) map[*Node]bool) {
		for i, nd := range s.Nodes {
			row := data[start[i]:start[i+1]]
			if !sort.SliceIsSorted(row, func(a, b int) bool { return row[a] < row[b] }) {
				t.Fatalf("%s row %d not sorted", name, i)
			}
			live := liveOf(nd)
			if len(row) != len(live) {
				t.Fatalf("%s row %d: %d entries, want %d", name, i, len(row), len(live))
			}
			for _, id := range row {
				if !live[s.Nodes[id]] {
					t.Fatalf("%s row %d: unexpected edge to %d", name, i, id)
				}
			}
		}
	}
	liveSet := func(each func(func(*Node))) map[*Node]bool {
		m := make(map[*Node]bool)
		each(func(n *Node) { m[n] = true })
		return m
	}
	checkRows("dep", s.DepStart, s.Dep, func(n *Node) map[*Node]bool { return liveSet(n.Deps) })
	checkRows("use", s.UseStart, s.Use, func(n *Node) map[*Node]bool { return liveSet(n.Uses) })
	checkRows("ref", s.RefStart, s.Ref, func(n *Node) map[*Node]bool { return liveSet(n.RefEdges) })

	// Location tables round-trip.
	loc := Loc{Alloc: nodes[0], Field: 2}
	li, ok := s.LocID(loc)
	if !ok {
		t.Fatalf("LocID missing for %v", loc)
	}
	if got := s.Store[s.StoreStart[li]:s.StoreStart[li+1]]; len(got) != 2 {
		t.Fatalf("stores of loc = %v, want 2 entries", got)
	}
	if got := s.Load[s.LoadStart[li]:s.LoadStart[li+1]]; len(got) != 1 {
		t.Fatalf("loads of loc = %v, want 1 entry", got)
	}
	oi, _ := s.ID(nodes[0])
	if got := s.OwnerField[s.OwnerFieldStart[oi]:s.OwnerFieldStart[oi+1]]; len(got) != 1 || got[0] != 2 {
		t.Fatalf("owner fields = %v, want [2]", got)
	}
	if got := s.Child[s.ChildStart[oi]:s.ChildStart[oi+1]]; len(got) != 1 || s.Nodes[got[0]] != nodes[4] {
		t.Fatalf("children = %v, want [node4]", got)
	}
}

func TestFreezeCachedAndInvalidated(t *testing.T) {
	g, nodes := buildDiamond(t)
	s1 := g.Freeze()
	if g.Freeze() != s1 {
		t.Fatal("Freeze not cached between calls")
	}
	g.AddDep(nodes[0], nodes[4])
	s2 := g.Freeze()
	if s2 == s1 {
		t.Fatal("mutation did not invalidate the snapshot")
	}
	id0, _ := s2.ID(nodes[0])
	row := s2.Dep[s2.DepStart[id0]:s2.DepStart[id0+1]]
	if len(row) != 1 || s2.Nodes[row[0]] != nodes[4] {
		t.Fatalf("new edge missing from rebuilt snapshot: %v", row)
	}
}

func TestCondenseReverseTopological(t *testing.T) {
	g, nodes := buildDiamond(t)
	g.AddDep(nodes[0], nodes[3]) // close a cycle 0→{1,2}→3→0 in dep direction
	s := g.Freeze()

	for _, forward := range []bool{false, true} {
		c := s.Condense(forward, nil)
		seen := 0
		for ci := int32(0); ci < int32(c.NumComps); ci++ {
			seen += len(c.Members(ci))
			for _, t2 := range c.Succs(ci) {
				if t2 >= ci {
					t.Fatalf("forward=%v: edge %d→%d violates reverse topo order", forward, ci, t2)
				}
			}
		}
		if seen != s.NumNodes() {
			t.Fatalf("forward=%v: components cover %d nodes, want %d", forward, seen, s.NumNodes())
		}
		// The 4-cycle must collapse into one component.
		c0 := c.CompOf[0]
		for _, v := range []int32{1, 2, 3} {
			if c.CompOf[v] != c0 {
				t.Fatalf("forward=%v: cycle nodes split across components", forward)
			}
		}
	}
}

func TestCondenseBoundarySingleton(t *testing.T) {
	g, nodes := buildDiamond(t)
	g.AddDep(nodes[0], nodes[3]) // cycle 0,1,2,3
	s := g.Freeze()
	boundary := make([]bool, s.NumNodes())
	id3, _ := s.ID(nodes[3])
	boundary[id3] = true

	c := s.Condense(false, boundary)
	// With node 3's out-edges dropped, the cycle is broken: 3 must sit alone.
	if got := len(c.Members(c.CompOf[id3])); got != 1 {
		t.Fatalf("boundary node shares a component of size %d", got)
	}
	if got := len(c.Succs(c.CompOf[id3])); got != 0 {
		t.Fatalf("boundary component has %d out-edges, want 0", got)
	}
}

func TestSortedIterationHelpers(t *testing.T) {
	g, nodes := buildDiamond(t)
	loc := Loc{Alloc: nodes[0], Field: 2}

	collect := func() [][]int {
		var stores, loads, fields []int
		g.StoresOf(loc, func(n *Node) { stores = append(stores, n.In.ID) })
		g.LoadsOf(loc, func(n *Node) { loads = append(loads, n.In.ID) })
		g.FieldsOf(nodes[0], func(field int) { fields = append(fields, field) })
		var locs []Loc
		g.Locs(func(l Loc) { locs = append(locs, l) })
		return [][]int{stores, loads, fields, {len(locs)}}
	}

	// Identical output across repeated calls, and across frozen/unfrozen.
	before := collect()
	g.Freeze()
	after := collect()
	for k := range before {
		if len(before[k]) != len(after[k]) {
			t.Fatalf("helper %d: unfrozen %v vs frozen %v", k, before[k], after[k])
		}
		for i := range before[k] {
			if before[k][i] != after[k][i] {
				t.Fatalf("helper %d: unfrozen %v vs frozen %v", k, before[k], after[k])
			}
		}
	}
	if !sort.IntsAreSorted(before[0]) || !sort.IntsAreSorted(before[1]) {
		t.Fatalf("store/load iteration not sorted: %v / %v", before[0], before[1])
	}
}
