package clients

import (
	"fmt"
	"sort"
	"strings"

	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
)

// Origin identifies where a value was last loaded from: an (allocation site,
// field) pair, or Bottom for values produced by computation, constants, or
// fresh allocations.
type Origin struct {
	Site  int // allocation site; -1 for Bottom
	Field int // field ID; depgraph.ElemField for array elements
}

// Bottom is the ⊥ origin.
var Bottom = Origin{Site: -1}

// IsBottom reports whether o is ⊥.
func (o Origin) IsBottom() bool { return o.Site < 0 }

func (o Origin) String() string {
	if o.IsBottom() {
		return "⊥"
	}
	if o.Field == depgraph.ElemField {
		return fmt.Sprintf("O%d.ELM", o.Site)
	}
	return fmt.Sprintf("O%d.f%d", o.Site, o.Field)
}

// CopyProfiler implements the extended copy profiling client of Figure 2(c):
// abstract dynamic slicing with domain D = O × P ∪ {⊥}. Each stack and heap
// location carries the object field its value originated from; copy
// instructions become nodes annotated with that origin, and dependence edges
// link consecutive copies — so a backward walk from a field store recovers
// the whole copy chain including intermediate stack locations.
type CopyProfiler struct {
	G *depgraph.Graph

	prog     *ir.Program
	statics  []copyCell
	pendArgs []copyCell
	havePend bool
	pendRet  copyCell

	// chains aggregates completed heap-to-heap copies: source origin →
	// target origin → dynamic count.
	chains map[Origin]map[Origin]int64
	// TotalCopies counts executed copy instructions (Move + load/store).
	TotalCopies int64
}

// copyCell is the shadow of one location: the origin of its value and the
// node of the last copy instruction that moved it.
type copyCell struct {
	origin Origin
	node   *depgraph.Node
}

// NewCopyProfiler returns a copy profiler for prog.
func NewCopyProfiler(prog *ir.Program) *CopyProfiler {
	return &CopyProfiler{
		G:       depgraph.New(prog),
		prog:    prog,
		statics: make([]copyCell, len(prog.Statics)),
		chains:  make(map[Origin]map[Origin]int64),
	}
}

type copyFrameShadow struct{ cells []copyCell }
type copyObjShadow struct{ cells []copyCell }

func (cp *CopyProfiler) fshadow(fr *interp.Frame) *copyFrameShadow {
	if fs, ok := fr.Shadow.(*copyFrameShadow); ok {
		return fs
	}
	fs := &copyFrameShadow{cells: make([]copyCell, len(fr.Locals))}
	fr.Shadow = fs
	return fs
}

func (cp *CopyProfiler) oshadow(o *interp.Object) *copyObjShadow {
	if os, ok := o.Shadow.(*copyObjShadow); ok {
		return os
	}
	n := len(o.Fields)
	if o.IsArray() {
		n = len(o.Elems)
	}
	os := &copyObjShadow{cells: make([]copyCell, n)}
	o.Shadow = os
	return os
}

// encode maps an Origin to an abstract-domain integer. Field IDs are dense
// per program; ElemField (-1) gets its own slot per site.
func (cp *CopyProfiler) encode(o Origin) int {
	if o.IsBottom() {
		return 0
	}
	width := cp.prog.NumFields + 1 // +1 for ELM
	f := o.Field
	if f == depgraph.ElemField {
		f = cp.prog.NumFields
	}
	return 1 + o.Site*width + f
}

func (cp *CopyProfiler) recordChain(src, dst Origin) {
	if src.IsBottom() {
		return
	}
	m := cp.chains[src]
	if m == nil {
		m = make(map[Origin]int64, 2)
		cp.chains[src] = m
	}
	m[dst]++
}

// copyNode makes the node for a copy instruction instance with origin o and
// links it to the previous copy node.
func (cp *CopyProfiler) copyNode(in *ir.Instr, o Origin, prev *depgraph.Node) *depgraph.Node {
	n := cp.G.Touch(in, cp.encode(o))
	cp.G.AddDep(n, prev)
	return n
}

// Exec implements interp.Tracer.
func (cp *CopyProfiler) Exec(ev *interp.Event) {
	in := ev.In
	fs := cp.fshadow(ev.Frame)
	switch in.Op {
	case ir.OpConst, ir.OpBin, ir.OpNeg, ir.OpNot, ir.OpInstanceOf,
		ir.OpNew, ir.OpNewArray, ir.OpArrayLen:
		// Computation or fresh value: origin resets to ⊥.
		if in.Dst >= 0 {
			fs.cells[in.Dst] = copyCell{origin: Bottom}
		}
	case ir.OpMove:
		cp.TotalCopies++
		src := fs.cells[in.A]
		n := cp.copyNode(in, src.origin, src.node)
		fs.cells[in.Dst] = copyCell{origin: src.origin, node: n}
	case ir.OpLoadField:
		cp.TotalCopies++
		o := Origin{Site: ev.Base.Site, Field: in.Field.ID}
		n := cp.copyNode(in, o, nil)
		fs.cells[in.Dst] = copyCell{origin: o, node: n}
	case ir.OpStoreField:
		cp.TotalCopies++
		src := fs.cells[in.B]
		n := cp.copyNode(in, src.origin, src.node)
		dst := Origin{Site: ev.Base.Site, Field: in.Field.ID}
		cp.recordChain(src.origin, dst)
		os := cp.oshadow(ev.Base)
		if in.Field.Slot < len(os.cells) {
			os.cells[in.Field.Slot] = copyCell{origin: src.origin, node: n}
		}
	case ir.OpLoadStatic:
		cp.TotalCopies++
		o := Origin{Site: -2 - in.Static.Slot, Field: 0} // statics get pseudo-sites
		_ = o
		n := cp.copyNode(in, Bottom, nil)
		fs.cells[in.Dst] = copyCell{origin: Bottom, node: n}
	case ir.OpStoreStatic:
		cp.TotalCopies++
		src := fs.cells[in.A]
		n := cp.copyNode(in, src.origin, src.node)
		cp.statics[in.Static.Slot] = copyCell{origin: src.origin, node: n}
	case ir.OpALoad:
		cp.TotalCopies++
		o := Origin{Site: ev.Base.Site, Field: depgraph.ElemField}
		n := cp.copyNode(in, o, nil)
		fs.cells[in.Dst] = copyCell{origin: o, node: n}
	case ir.OpAStore:
		cp.TotalCopies++
		src := fs.cells[in.C2]
		n := cp.copyNode(in, src.origin, src.node)
		dst := Origin{Site: ev.Base.Site, Field: depgraph.ElemField}
		cp.recordChain(src.origin, dst)
		os := cp.oshadow(ev.Base)
		if int(ev.Index) < len(os.cells) {
			os.cells[ev.Index] = copyCell{origin: src.origin, node: n}
		}
	case ir.OpNative:
		if in.Dst >= 0 {
			fs.cells[in.Dst] = copyCell{origin: Bottom}
		}
	}
}

// BeforeCall implements interp.Tracer: argument passing is a stack copy.
func (cp *CopyProfiler) BeforeCall(in *ir.Instr, caller *interp.Frame, callee *ir.Method, recv *interp.Object) {
	fs := cp.fshadow(caller)
	cp.pendArgs = cp.pendArgs[:0]
	for _, a := range in.Args {
		cp.pendArgs = append(cp.pendArgs, fs.cells[a])
	}
	cp.havePend = true
}

// EnterMethod implements interp.Tracer.
func (cp *CopyProfiler) EnterMethod(fr *interp.Frame, recv *interp.Object) {
	fs := &copyFrameShadow{cells: make([]copyCell, fr.Method.NumLocals)}
	if cp.havePend {
		copy(fs.cells, cp.pendArgs)
		cp.havePend = false
	}
	fr.Shadow = fs
}

// BeforeReturn implements interp.Tracer.
func (cp *CopyProfiler) BeforeReturn(in *ir.Instr, fr *interp.Frame) {
	if in.HasA {
		cp.pendRet = cp.fshadow(fr).cells[in.A]
	} else {
		cp.pendRet = copyCell{origin: Bottom}
	}
}

// AfterCall implements interp.Tracer.
func (cp *CopyProfiler) AfterCall(in *ir.Instr, caller *interp.Frame, hasValue bool) {
	ret := cp.pendRet
	cp.pendRet = copyCell{origin: Bottom}
	if !hasValue || in == nil || in.Dst < 0 {
		return
	}
	cp.fshadow(caller).cells[in.Dst] = ret
}

// Chain summarizes one heap-to-heap copy relation.
type Chain struct {
	Src, Dst Origin
	Count    int64
	// StackHops is the number of distinct intermediate stack nodes on
	// recorded paths between Src loads and Dst stores.
	StackHops int
}

func (c Chain) String() string {
	return fmt.Sprintf("%s -> %s ×%d (%d stack hops)", c.Src, c.Dst, c.Count, c.StackHops)
}

// Chains returns all recorded heap-to-heap copy chains, by descending count.
func (cp *CopyProfiler) Chains() []Chain {
	var out []Chain
	for src, m := range cp.chains {
		for dst, cnt := range m {
			out = append(out, Chain{Src: src, Dst: dst, Count: cnt, StackHops: cp.stackHops(src, dst)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].String() < out[j].String()
	})
	return out
}

// stackHops walks backward from store nodes whose origin is src, counting
// the distinct intermediate copy nodes until the load that introduced the
// origin — the "intermediate stack locations" of the extended analysis.
func (cp *CopyProfiler) stackHops(src, dst Origin) int {
	d := cp.encode(src)
	count := 0
	seen := map[*depgraph.Node]bool{}
	cp.G.Nodes(func(n *depgraph.Node) {
		if n.D != d || !n.In.WritesHeap() {
			return
		}
		// Walk the same-origin chain backward.
		cur := n
		for cur != nil && !seen[cur] {
			seen[cur] = true
			if !cur.In.WritesHeap() && !cur.In.ReadsHeap() {
				count++
			}
			var prev *depgraph.Node
			cur.Deps(func(dep *depgraph.Node) {
				if prev == nil && dep.D == d {
					prev = dep
				}
			})
			cur = prev
		}
	})
	return count
}

// FormatChains renders the top k chains.
func FormatChains(chains []Chain, k int) string {
	var sb strings.Builder
	for i, c := range chains {
		if i >= k {
			break
		}
		fmt.Fprintf(&sb, "%s\n", c)
	}
	return sb.String()
}

var _ interp.Tracer = (*CopyProfiler)(nil)
