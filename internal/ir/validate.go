package ir

import "fmt"

// validate checks structural well-formedness of every method body: branch
// targets in range, operand slots in range, bodies terminated, calls
// argument-count-consistent. It does not type-check locals (the MJ front end
// does that before lowering; hand-built programs get dynamic checks from the
// interpreter).
func (p *Program) validate() error {
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			if err := validateMethod(m); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateMethod(m *Method) error {
	n := len(m.Code)
	if n == 0 {
		return fmt.Errorf("ir: %s: empty body", m.QualifiedName())
	}
	errf := func(pc int, format string, args ...any) error {
		return fmt.Errorf("ir: %s pc %d (%s): %s", m.QualifiedName(), pc, m.Code[pc].String(), fmt.Sprintf(format, args...))
	}
	checkSlot := func(pc, s int, what string) error {
		if s < 0 || s >= m.NumLocals {
			return errf(pc, "%s slot %d out of range [0,%d)", what, s, m.NumLocals)
		}
		return nil
	}
	for pc := range m.Code {
		in := &m.Code[pc]
		switch in.Op {
		case OpIf, OpGoto:
			if in.Target < 0 || in.Target >= n {
				return errf(pc, "branch target %d out of range [0,%d)", in.Target, n)
			}
		}
		if in.Dst >= 0 {
			if err := checkSlot(pc, in.Dst, "dst"); err != nil {
				return err
			}
		}
		// Operand presence per opcode.
		switch in.Op {
		case OpMove, OpNeg, OpNot, OpArrayLen, OpNewArray:
			if err := checkSlot(pc, in.A, "a"); err != nil {
				return err
			}
		case OpBin, OpALoad, OpIf:
			if err := checkSlot(pc, in.A, "a"); err != nil {
				return err
			}
			if err := checkSlot(pc, in.B, "b"); err != nil {
				return err
			}
		case OpLoadField:
			if err := checkSlot(pc, in.A, "base"); err != nil {
				return err
			}
			if in.Field == nil {
				return errf(pc, "nil field")
			}
		case OpStoreField:
			if err := checkSlot(pc, in.A, "base"); err != nil {
				return err
			}
			if err := checkSlot(pc, in.B, "src"); err != nil {
				return err
			}
			if in.Field == nil {
				return errf(pc, "nil field")
			}
		case OpLoadStatic:
			if in.Static == nil {
				return errf(pc, "nil static")
			}
		case OpStoreStatic:
			if in.Static == nil {
				return errf(pc, "nil static")
			}
			if err := checkSlot(pc, in.A, "src"); err != nil {
				return err
			}
		case OpAStore:
			for _, s := range [][2]any{{in.A, "arr"}, {in.B, "idx"}, {in.C2, "src"}} {
				if err := checkSlot(pc, s[0].(int), s[1].(string)); err != nil {
					return err
				}
			}
		case OpNew, OpInstanceOf:
			if in.Class == nil {
				return errf(pc, "nil class")
			}
		case OpCall:
			if in.Callee == nil {
				return errf(pc, "nil callee")
			}
			if len(in.Args) != in.Callee.Params {
				return errf(pc, "call passes %d args, callee %s takes %d",
					len(in.Args), in.Callee.QualifiedName(), in.Callee.Params)
			}
			if in.Dst >= 0 && in.Callee.Returns == nil {
				return errf(pc, "call stores result of void method %s", in.Callee.QualifiedName())
			}
			for _, a := range in.Args {
				if err := checkSlot(pc, a, "arg"); err != nil {
					return err
				}
			}
		case OpNative:
			for _, a := range in.Args {
				if err := checkSlot(pc, a, "arg"); err != nil {
					return err
				}
			}
		case OpReturn:
			if in.HasA {
				if m.Returns == nil {
					return errf(pc, "value return from void method")
				}
				if err := checkSlot(pc, in.A, "ret"); err != nil {
					return err
				}
			} else if m.Returns != nil {
				return errf(pc, "void return from value-returning method")
			}
		}
	}
	// Every path must end in a return: conservatively require the last
	// instruction to be a return or an unconditional jump backwards, and
	// check fall-off via a simple reachability walk.
	if err := checkTermination(m); err != nil {
		return err
	}
	return nil
}

// checkTermination verifies no reachable path falls off the end of the body.
func checkTermination(m *Method) error {
	n := len(m.Code)
	seen := make([]bool, n)
	stack := []int{0}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if pc >= n {
			return fmt.Errorf("ir: %s: control falls off the end of the body", m.QualifiedName())
		}
		if seen[pc] {
			continue
		}
		seen[pc] = true
		in := &m.Code[pc]
		switch in.Op {
		case OpReturn:
			// terminal
		case OpGoto:
			stack = append(stack, in.Target)
		case OpIf:
			stack = append(stack, in.Target, pc+1)
		default:
			stack = append(stack, pc+1)
		}
	}
	return nil
}
