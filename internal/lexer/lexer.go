// Package lexer tokenizes MJ source code.
//
// MJ is the mini-Java language the workloads and examples are written in: a
// Java subset with classes, single inheritance, int/boolean/array types,
// virtual and static methods, and a handful of native functions. The paper's
// analyses operate on Java bytecode; MJ programs lower (via
// internal/parser → internal/sem → internal/codegen) to the three-address IR
// that stands in for bytecode here.
package lexer

import (
	"fmt"
	"unicode"
)

// Kind enumerates token kinds.
type Kind uint8

const (
	EOF Kind = iota
	Ident
	IntLit
	CharLit

	// Keywords
	KwClass
	KwExtends
	KwStatic
	KwVoid
	KwInt
	KwBoolean
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwNew
	KwThis
	KwNull
	KwTrue
	KwFalse
	KwBreak
	KwContinue
	KwInstanceof

	// Punctuation and operators
	LBrace
	RBrace
	LParen
	RParen
	LBracket
	RBracket
	Semi
	Comma
	Dot
	Assign
	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	AmpAmp
	PipePipe
	Bang
	Shl
	Shr
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "int literal", CharLit: "char literal",
	KwClass: "class", KwExtends: "extends", KwStatic: "static", KwVoid: "void",
	KwInt: "int", KwBoolean: "boolean", KwIf: "if", KwElse: "else", KwWhile: "while",
	KwFor: "for", KwReturn: "return", KwNew: "new", KwThis: "this", KwNull: "null",
	KwTrue: "true", KwFalse: "false", KwBreak: "break", KwContinue: "continue",
	KwInstanceof: "instanceof",
	LBrace:       "{", RBrace: "}", LParen: "(", RParen: ")", LBracket: "[", RBracket: "]",
	Semi: ";", Comma: ",", Dot: ".", Assign: "=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", AmpAmp: "&&", PipePipe: "||", Bang: "!",
	Shl: "<<", Shr: ">>", Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

var keywords = map[string]Kind{
	"class": KwClass, "extends": KwExtends, "static": KwStatic, "void": KwVoid,
	"int": KwInt, "boolean": KwBoolean, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "return": KwReturn, "new": KwNew,
	"this": KwThis, "null": KwNull, "true": KwTrue, "false": KwFalse,
	"break": KwBreak, "continue": KwContinue, "instanceof": KwInstanceof,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Text string // identifier text
	Int  int64  // int/char literal value
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case Ident:
		return t.Text
	case IntLit, CharLit:
		return fmt.Sprintf("%d", t.Int)
	default:
		return t.Kind.String()
	}
}

// Error is a lexical error with position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MJ source.
type Lexer struct {
	src  []rune
	off  int
	line int
	col  int
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: []rune(src), line: 1, col: 1}
}

// Tokenize scans the entire input, returning all tokens (excluding EOF).
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var out []Token
	for {
		tok, err := lx.Next()
		if err != nil {
			return nil, err
		}
		if tok.Kind == EOF {
			return out, nil
		}
		out = append(out, tok)
	}
}

func (l *Lexer) peek() rune {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() rune {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() rune {
	r := l.src[l.off]
	l.off++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *Lexer) pos() Pos { return Pos{l.line, l.col} }

func (l *Lexer) errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// skipSpaceAndComments consumes whitespace, // line comments and /* block
// comments (non-nesting, like Java).
func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		r := l.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			l.advance()
		case r == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return l.errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	r := l.peek()

	switch {
	case unicode.IsLetter(r) || r == '_':
		start := l.off
		for l.off < len(l.src) && (unicode.IsLetter(l.peek()) || unicode.IsDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
		text := string(l.src[start:l.off])
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Pos: pos, Text: text}, nil
		}
		return Token{Kind: Ident, Text: text, Pos: pos}, nil

	case unicode.IsDigit(r):
		var v int64
		overflow := false
		for l.off < len(l.src) && unicode.IsDigit(l.peek()) {
			d := int64(l.advance() - '0')
			nv := v*10 + d
			if nv < v {
				overflow = true
			}
			v = nv
		}
		if overflow {
			return Token{}, l.errf(pos, "integer literal overflows int64")
		}
		return Token{Kind: IntLit, Int: v, Pos: pos}, nil

	case r == '\'':
		l.advance()
		if l.off >= len(l.src) {
			return Token{}, l.errf(pos, "unterminated char literal")
		}
		c := l.advance()
		if c == '\\' {
			if l.off >= len(l.src) {
				return Token{}, l.errf(pos, "unterminated char literal")
			}
			esc := l.advance()
			switch esc {
			case 'n':
				c = '\n'
			case 't':
				c = '\t'
			case '\\':
				c = '\\'
			case '\'':
				c = '\''
			case '0':
				c = 0
			default:
				return Token{}, l.errf(pos, "unknown escape \\%c", esc)
			}
		}
		if l.off >= len(l.src) || l.peek() != '\'' {
			return Token{}, l.errf(pos, "unterminated char literal")
		}
		l.advance()
		return Token{Kind: CharLit, Int: int64(c), Pos: pos}, nil
	}

	l.advance()
	two := func(next rune, ifTwo, ifOne Kind) (Token, error) {
		if l.off < len(l.src) && l.peek() == next {
			l.advance()
			return Token{Kind: ifTwo, Pos: pos}, nil
		}
		return Token{Kind: ifOne, Pos: pos}, nil
	}

	switch r {
	case '{':
		return Token{Kind: LBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: RBrace, Pos: pos}, nil
	case '(':
		return Token{Kind: LParen, Pos: pos}, nil
	case ')':
		return Token{Kind: RParen, Pos: pos}, nil
	case '[':
		return Token{Kind: LBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: RBracket, Pos: pos}, nil
	case ';':
		return Token{Kind: Semi, Pos: pos}, nil
	case ',':
		return Token{Kind: Comma, Pos: pos}, nil
	case '.':
		return Token{Kind: Dot, Pos: pos}, nil
	case '+':
		return Token{Kind: Plus, Pos: pos}, nil
	case '-':
		return Token{Kind: Minus, Pos: pos}, nil
	case '*':
		return Token{Kind: Star, Pos: pos}, nil
	case '/':
		return Token{Kind: Slash, Pos: pos}, nil
	case '%':
		return Token{Kind: Percent, Pos: pos}, nil
	case '^':
		return Token{Kind: Caret, Pos: pos}, nil
	case '&':
		return two('&', AmpAmp, Amp)
	case '|':
		return two('|', PipePipe, Pipe)
	case '!':
		return two('=', Ne, Bang)
	case '=':
		return two('=', Eq, Assign)
	case '<':
		if l.off < len(l.src) && l.peek() == '<' {
			l.advance()
			return Token{Kind: Shl, Pos: pos}, nil
		}
		return two('=', Le, Lt)
	case '>':
		if l.off < len(l.src) && l.peek() == '>' {
			l.advance()
			return Token{Kind: Shr, Pos: pos}, nil
		}
		return two('=', Ge, Gt)
	}
	return Token{}, l.errf(pos, "unexpected character %q", r)
}
