package ast_test

import (
	"testing"

	"lowutil/internal/ast"
	"lowutil/internal/interp"
	"lowutil/internal/mjc"
	"lowutil/internal/parser"
	"lowutil/internal/workloads"
)

// TestRoundTripAllWorkloads is the parser/printer round-trip property over
// every workload source: parse → print → parse → print reaches a fixpoint,
// and the reprinted program compiles and produces identical output to the
// original.
func TestRoundTripAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			src := w.Source(1)
			p1, err := parser.Parse(src)
			if err != nil {
				t.Fatalf("parse original: %v", err)
			}
			printed1 := ast.PrintSource(p1)
			p2, err := parser.Parse(printed1)
			if err != nil {
				t.Fatalf("parse printed: %v\n%s", err, printed1)
			}
			printed2 := ast.PrintSource(p2)
			if printed1 != printed2 {
				t.Errorf("printing is not a fixpoint after one round trip")
			}

			// Semantic preservation: both compile and behave identically.
			orig, err := mjc.Compile(src)
			if err != nil {
				t.Fatalf("compile original: %v", err)
			}
			rt, err := mjc.Compile(printed1)
			if err != nil {
				t.Fatalf("compile round-tripped: %v", err)
			}
			m1 := interp.New(orig)
			m2 := interp.New(rt)
			if err := m1.Run(); err != nil {
				t.Fatal(err)
			}
			if err := m2.Run(); err != nil {
				t.Fatal(err)
			}
			if len(m1.Output) != len(m2.Output) {
				t.Fatalf("output lengths differ: %d vs %d", len(m1.Output), len(m2.Output))
			}
			for i := range m1.Output {
				if m1.Output[i] != m2.Output[i] {
					t.Fatalf("output[%d] differs: %d vs %d", i, m1.Output[i], m2.Output[i])
				}
			}
		})
	}
}

func TestPrintCoversSyntax(t *testing.T) {
	src := `
class A extends B {
  int[] xs;
  boolean flag;
  static int f(int a, boolean b) {
    int x = -a;
    boolean c = !b && (a < 3 || a >= 7);
    if (c) { x = x + 1; } else { x = x - 1; }
    while (x > 0) { x = x / 2; if (x == 5) { break; } continue; }
    for (int i = 0; i < 4; i = i + 1) { x = x ^ i; }
    int[] ys = new int[3];
    ys[0] = ys.length;
    A obj = new A();
    obj.xs = ys;
    boolean inst = obj instanceof A;
    return x % 3;
  }
}
class B { }
class Main { static void main() { print(1); } }`
	p1, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := ast.PrintSource(p1)
	p2, err := parser.Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if ast.PrintSource(p2) != printed {
		t.Error("not a fixpoint")
	}
}
