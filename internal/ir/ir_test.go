package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildLinear(t *testing.T) (*Builder, *Class) {
	t.Helper()
	b := NewBuilder()
	cls := b.Class("Main", nil)
	return b, cls
}

func TestSealAssignsInstrAndSiteIDs(t *testing.T) {
	b, cls := buildLinear(t)
	other := b.Class("Other", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.New(0, other)
	mb.New(1, other)
	mb.Const(2, 5)
	mb.NewArray(3, IntType, 2)
	mb.ReturnVoid()

	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.NumInstrs(); got != 5 {
		t.Fatalf("NumInstrs = %d, want 5", got)
	}
	if got := prog.NumAllocSites(); got != 3 {
		t.Fatalf("NumAllocSites = %d, want 3", got)
	}
	for i, in := range prog.Instrs {
		if in.ID != i {
			t.Errorf("instr %d has ID %d", i, in.ID)
		}
		if in.Method != m {
			t.Errorf("instr %d not linked to method", i)
		}
	}
	for i, site := range prog.AllocSites {
		if site.AllocSite != i {
			t.Errorf("alloc site %d has index %d", i, site.AllocSite)
		}
	}
}

func TestFieldSlotsWithInheritance(t *testing.T) {
	b := NewBuilder()
	base := b.Class("Base", nil)
	b.Field(base, "x", IntType)
	b.Field(base, "y", IntType)
	derived := b.Class("Derived", base)
	fz := b.Field(derived, "z", IntType)

	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	b.Body(m).ReturnVoid()
	if _, err := b.Seal("Main", "main"); err != nil {
		t.Fatal(err)
	}
	if fz.Slot != 2 {
		t.Errorf("Derived.z slot = %d, want 2", fz.Slot)
	}
	if derived.NumFieldSlots() != 3 {
		t.Errorf("Derived slots = %d, want 3", derived.NumFieldSlots())
	}
	if got := derived.LookupField("x"); got == nil || got.Slot != 0 {
		t.Errorf("LookupField(x) = %v", got)
	}
	if !derived.IsSubclassOf(base) || base.IsSubclassOf(derived) {
		t.Error("IsSubclassOf misbehaves")
	}
}

func TestInheritanceCycleRejected(t *testing.T) {
	b := NewBuilder()
	a := b.Class("A", nil)
	c := b.Class("C", a)
	a.Super = c // create a cycle behind the builder's back
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	b.Body(m).ReturnVoid()
	if _, err := b.Seal("Main", "main"); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("want inheritance-cycle error, got %v", err)
	}
}

func TestVirtualLookupPrefersOverride(t *testing.T) {
	b := NewBuilder()
	base := b.Class("Base", nil)
	mBase := b.Method(base, "foo", false, 1, IntType)
	bb := b.Body(mBase)
	bb.Const(1, 1)
	bb.Return(1)
	derived := b.Class("Derived", base)
	mDer := b.Method(derived, "foo", false, 1, IntType)
	db := b.Body(mDer)
	db.Const(1, 2)
	db.Return(1)

	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	b.Body(m).ReturnVoid()
	if _, err := b.Seal("Main", "main"); err != nil {
		t.Fatal(err)
	}
	if derived.LookupMethod("foo") != mDer {
		t.Error("derived lookup should find override")
	}
	if base.LookupMethod("foo") != mBase {
		t.Error("base lookup should find base method")
	}
}

func TestValidateCatchesBadBranch(t *testing.T) {
	b, cls := buildLinear(t)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1)
	mb.Goto(99)
	mb.ReturnVoid()
	if _, err := b.Seal("Main", "main"); err == nil || !strings.Contains(err.Error(), "branch target") {
		t.Fatalf("want branch-target error, got %v", err)
	}
}

func TestValidateCatchesFallOff(t *testing.T) {
	b, cls := buildLinear(t)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1) // no return
	if _, err := b.Seal("Main", "main"); err == nil || !strings.Contains(err.Error(), "falls off") {
		t.Fatalf("want fall-off error, got %v", err)
	}
}

func TestValidateCatchesVoidMismatch(t *testing.T) {
	b, cls := buildLinear(t)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1)
	mb.m.Code = append(mb.m.Code, Instr{Op: OpReturn, A: 0, HasA: true, Dst: -1, B: -1, C2: -1})
	if _, err := b.Seal("Main", "main"); err == nil || !strings.Contains(err.Error(), "value return from void") {
		t.Fatalf("want void-mismatch error, got %v", err)
	}
}

func TestValidateCatchesArgCount(t *testing.T) {
	b, cls := buildLinear(t)
	callee := b.Method(cls, "two", true, 2, IntType)
	cb := b.Body(callee)
	cb.Const(2, 0)
	cb.Return(2)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1)
	mb.Call(1, callee, 0) // one arg for a two-arg method
	mb.ReturnVoid()
	if _, err := b.Seal("Main", "main"); err == nil || !strings.Contains(err.Error(), "args") {
		t.Fatalf("want arg-count error, got %v", err)
	}
}

func TestSealRejectsMissingMain(t *testing.T) {
	b, cls := buildLinear(t)
	m := b.Method(cls, "main", true, 0, nil)
	b.Body(m).ReturnVoid()
	if _, err := b.Seal("Nope", "main"); err == nil {
		t.Fatal("want missing-class error")
	}
	if _, err := b.Seal("Main", "nope"); err == nil {
		t.Fatal("want missing-method error")
	}
}

func TestSealRejectsNonStaticMain(t *testing.T) {
	b, cls := buildLinear(t)
	m := b.Method(cls, "main", false, 1, nil)
	b.Body(m).ReturnVoid()
	if _, err := b.Seal("Main", "main"); err == nil {
		t.Fatal("want non-static-main error")
	}
}

func TestDisassembleMentionsEverything(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("Main", nil)
	f := b.Field(cls, "x", IntType)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.New(0, cls)
	mb.Const(1, 42)
	mb.StoreField(0, f, 1)
	mb.LoadField(2, 0, f)
	mb.Native(-1, NativePrint, 2)
	mb.ReturnVoid()
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	dis := prog.Disassemble()
	for _, want := range []string{"class Main", "field int x", "new Main", "v0.x = v1", "v2 = v0.x", "native print", "42"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	b := NewBuilder()
	cls := b.Class("Foo", nil)
	rt := b.RefType(cls)
	at := b.ArrayType(rt)
	aat := b.ArrayType(at)
	cases := []struct {
		typ  *Type
		want string
	}{
		{IntType, "int"},
		{rt, "Foo"},
		{at, "Foo[]"},
		{aat, "Foo[][]"},
		{nil, "void"},
	}
	for _, c := range cases {
		if got := c.typ.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if b.RefType(cls) != rt {
		t.Error("RefType not interned")
	}
	if b.ArrayType(rt) != at {
		t.Error("ArrayType not interned")
	}
}

// Property: for any class shape (number of fields per class along a chain),
// field slots are dense, unique, and superclass-first.
func TestFieldSlotDensityProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		if len(counts) == 0 || len(counts) > 6 {
			return true // trivially pass out-of-shape inputs
		}
		b := NewBuilder()
		var prev *Class
		var all []*Field
		for ci, cnt := range counts {
			c := b.Class(string(rune('A'+ci)), prev)
			for fi := 0; fi < int(cnt%5); fi++ {
				all = append(all, b.Field(c, string(rune('a'+fi)), IntType))
			}
			prev = c
		}
		cls := b.Class("Main", nil)
		m := b.Method(cls, "main", true, 0, nil)
		b.Body(m).ReturnVoid()
		if _, err := b.Seal("Main", "main"); err != nil {
			return false
		}
		seen := make(map[int]bool)
		for i, f := range all {
			if f.Slot != i { // declaration order along the chain == slot order
				return false
			}
			if seen[f.Slot] {
				return false
			}
			seen[f.Slot] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalNameFallback(t *testing.T) {
	m := &Method{LocalNames: []string{"this", "x"}}
	if m.LocalName(0) != "this" || m.LocalName(1) != "x" || m.LocalName(5) != "v5" {
		t.Errorf("LocalName fallback broken: %q %q %q", m.LocalName(0), m.LocalName(1), m.LocalName(5))
	}
}
