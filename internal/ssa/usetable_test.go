package ssa

import (
	"testing"

	"lowutil/internal/ir"
)

// TestTrailingUnusedDef pins a construction corner: when the last value a
// method defines is never used (here the dead Add), the use table must
// still cover it — addUse pads lazily and used to leave uses short of
// Vals, so SCCP's worklist drain panicked on hand-built IR like this.
func TestTrailingUnusedDef(t *testing.T) {
	b := ir.NewBuilder()
	cls := b.Class("Main", nil)
	helper := b.Method(cls, "seven", true, 0, ir.IntType)
	hb := b.Body(helper)
	hb.Const(0, 7)
	hb.Return(0)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Call(0, helper)
	mb.Bin(1, ir.Add, 0, 0) // dead: defines the last value, no uses
	mb.ReturnVoid()
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range prog.Classes {
		for _, mm := range c.Methods {
			f := Build(mm, nil)
			if len(f.uses) != len(f.Vals) {
				t.Fatalf("%s: uses table %d entries, %d values", mm.QualifiedName(), len(f.uses), len(f.Vals))
			}
			for v := ValID(0); int(v) < f.NumVals(); v++ {
				_ = f.Uses(v) // must not panic
			}
			RunSCCP(f) // must not panic either
		}
	}
}
