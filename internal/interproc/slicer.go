package interproc

import (
	"context"
	"sort"

	"lowutil/internal/ir"
)

// StaticGraph is the static over-approximation of the dynamic Gcost
// dependence graph, projected onto static instructions: if any run of the
// program (under thin slicing) records a dependence, reference, or
// points-to-child edge between two dynamic nodes, the corresponding static
// instruction pair is an edge here. Edge membership is the containment
// invariant the differential soundness harness checks.
//
// The construction mirrors the profiler's Figure-4 semantics edge class by
// edge class:
//
//   - value operands depend on their reaching definitions; a definition that
//     is a formal parameter resolves, through the call graph, to the
//     caller-side producers of the actual (EnterMethod copies the actual's
//     node into the formal with no intermediate node);
//   - a call site with a destination depends on every resolved target's
//     return-value producers (the AfterCall node);
//   - a heap load depends on every store that may write an aliased abstract
//     location (points-to overlap on the base, same field); static loads
//     depend on same-slot static stores; an array-length read depends on the
//     aliased allocation sites (the length is written by the allocation);
//   - field and element stores hold reference edges to the base's allocation
//     sites, and child edges from the written location to the stored value's
//     allocation sites (static stores record children only — no ref edge).
//
// Base-pointer operands contribute nothing, exactly as in thin slicing.
type StaticGraph struct {
	Prog *ir.Program
	CG   *CallGraph
	PT   *PointsTo

	deps     map[uint64]bool
	refs     map[uint64]bool
	children map[childKey]bool

	// depsOf/usesOf are the dependence adjacency (and its reverse) per
	// instruction ID, sorted, for the slice-bound traversals.
	depsOf [][]int32
	usesOf [][]int32

	// locStores/locLoads index the may-alias store and load instructions of
	// every abstract heap location.
	locStores map[Loc][]*ir.Instr
	locLoads  map[Loc][]*ir.Instr

	// argProducers[methodID][slot] holds the instruction IDs that may produce
	// the node a formal receives; retProducers[methodID] likewise for the
	// return value.
	argProducers [][][]int
	retProducers [][]int
}

type childKey struct {
	// owner is the allocation-site instruction ID of the written object, or
	// -1 for a static field.
	owner int32
	field int32
	child int32
}

func depKey(use, def int) uint64 { return uint64(uint32(use))<<32 | uint64(uint32(def)) }

// newStaticGraph builds the static Gcost over-approximation, polling ctx
// between phases and once per producer-fixpoint iteration.
func newStaticGraph(ctx context.Context, cg *CallGraph, pt *PointsTo, flows map[int]*methodFlow) (*StaticGraph, error) {
	prog := cg.Prog
	sg := &StaticGraph{
		Prog:      prog,
		CG:        cg,
		PT:        pt,
		deps:      make(map[uint64]bool),
		refs:      make(map[uint64]bool),
		children:  make(map[childKey]bool),
		locStores: make(map[Loc][]*ir.Instr),
		locLoads:  make(map[Loc][]*ir.Instr),
	}
	if err := sg.computeProducers(ctx, flows); err != nil {
		return nil, err
	}
	sg.indexLocs()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sg.addEdges(flows)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sg.buildAdjacency()
	return sg, nil
}

// computeProducers runs the producer fixpoint: the set of instructions whose
// node a formal parameter (or a return value) may carry. A formal's
// producers are, over every reachable call site targeting the method, the
// reaching definitions of the actual — where a definition that is itself a
// formal of the caller recurses into the caller's producers.
func (sg *StaticGraph) computeProducers(ctx context.Context, flows map[int]*methodFlow) error {
	nm := countMethods(sg.Prog)
	args := make([]map[int]bool, 0)
	argIdx := make([][]int, nm) // methodID → slot → index into args, -1 unset
	rets := make([]map[int]bool, nm)
	for _, m := range sg.CG.Methods() {
		argIdx[m.ID] = make([]int, m.Params)
		for i := range argIdx[m.ID] {
			argIdx[m.ID][i] = len(args)
			args = append(args, make(map[int]bool))
		}
		rets[m.ID] = make(map[int]bool)
	}
	addDef := func(set map[int]bool, caller *ir.Method, d int) bool {
		if !isParamDef(caller, d) {
			id := caller.Code[d].ID
			if !set[id] {
				set[id] = true
				return true
			}
			return false
		}
		slot := paramOfDef(caller, d)
		changed := false
		for id := range args[argIdx[caller.ID][slot]] {
			if !set[id] {
				set[id] = true
				changed = true
			}
		}
		return changed
	}
	for changed := true; changed; {
		changed = false
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, m := range sg.CG.Methods() {
			// Formals: pull from every reachable call site targeting m.
			for _, c := range sg.CG.CallersOf(m) {
				caller := c.Method
				ops := flows[caller.ID].operands[c.PC]
				for i := 0; i < len(ops) && i < m.Params; i++ {
					set := args[argIdx[m.ID][i]]
					for _, d := range ops[i].Defs {
						if addDef(set, caller, d) {
							changed = true
						}
					}
				}
			}
			// Return values: defs reaching a return operand.
			mf := flows[m.ID]
			for pc := range m.Code {
				in := &m.Code[pc]
				if in.Op != ir.OpReturn || !in.HasA {
					continue
				}
				for _, op := range mf.operands[pc] {
					for _, d := range op.Defs {
						if addDef(rets[m.ID], m, d) {
							changed = true
						}
					}
				}
			}
		}
	}
	sg.argProducers = make([][][]int, nm)
	sg.retProducers = make([][]int, nm)
	for _, m := range sg.CG.Methods() {
		sg.argProducers[m.ID] = make([][]int, m.Params)
		for i := range sg.argProducers[m.ID] {
			sg.argProducers[m.ID][i] = sortedKeys(args[argIdx[m.ID][i]])
		}
		sg.retProducers[m.ID] = sortedKeys(rets[m.ID])
	}
	return nil
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// locOf maps a heap-access instruction and one abstract base object to its
// abstract location.
func locOf(in *ir.Instr, o ObjID) Loc {
	switch in.Op {
	case ir.OpLoadField, ir.OpStoreField:
		return Loc{Obj: o, Field: in.Field.ID}
	default: // array element access
		return Loc{Obj: o, Field: ElemField}
	}
}

// indexLocs builds the per-location store/load indices.
func (sg *StaticGraph) indexLocs() {
	for _, m := range sg.CG.Methods() {
		for pc := range m.Code {
			in := &m.Code[pc]
			switch in.Op {
			case ir.OpStoreField, ir.OpAStore:
				for _, o := range sg.PT.VarPT(m, in.A) {
					l := locOf(in, o)
					sg.locStores[l] = append(sg.locStores[l], in)
				}
			case ir.OpStoreStatic:
				l := Loc{Static: true, Field: in.Static.Slot}
				sg.locStores[l] = append(sg.locStores[l], in)
			case ir.OpLoadField, ir.OpALoad:
				for _, o := range sg.PT.VarPT(m, in.A) {
					l := locOf(in, o)
					sg.locLoads[l] = append(sg.locLoads[l], in)
				}
			case ir.OpLoadStatic:
				l := Loc{Static: true, Field: in.Static.Slot}
				sg.locLoads[l] = append(sg.locLoads[l], in)
			}
		}
	}
}

func (sg *StaticGraph) addDep(use, def int)  { sg.deps[depKey(use, def)] = true }
func (sg *StaticGraph) addRef(store, al int) { sg.refs[depKey(store, al)] = true }

func (sg *StaticGraph) addChildren(owner int, field int, m *ir.Method, valSlot int) {
	for _, v := range sg.PT.VarPT(m, valSlot) {
		sg.children[childKey{int32(owner), int32(field), int32(sg.PT.Objects[v].Site.ID)}] = true
	}
}

// addEdges installs every edge class.
func (sg *StaticGraph) addEdges(flows map[int]*methodFlow) {
	// Value-operand and producer edges.
	for _, m := range sg.CG.Methods() {
		mf := flows[m.ID]
		for pc := range m.Code {
			in := &m.Code[pc]
			for _, op := range mf.operands[pc] {
				if op.Base {
					continue
				}
				for _, d := range op.Defs {
					if isParamDef(m, d) {
						for _, p := range sg.argProducers[m.ID][paramOfDef(m, d)] {
							sg.addDep(in.ID, p)
						}
					} else {
						sg.addDep(in.ID, m.Code[d].ID)
					}
				}
			}
			switch in.Op {
			case ir.OpCall:
				if in.Dst >= 0 {
					for _, t := range sg.CG.Targets(in) {
						for _, r := range sg.retProducers[t.ID] {
							sg.addDep(in.ID, r)
						}
					}
				}
			case ir.OpArrayLen:
				// The length was written by the allocation itself.
				for _, o := range sg.PT.VarPT(m, in.A) {
					sg.addDep(in.ID, sg.PT.Objects[o].Site.ID)
				}
			case ir.OpStoreField:
				for _, o := range sg.PT.VarPT(m, in.A) {
					site := sg.PT.Objects[o].Site
					sg.addRef(in.ID, site.ID)
					sg.addChildren(site.ID, in.Field.ID, m, in.B)
				}
			case ir.OpAStore:
				for _, o := range sg.PT.VarPT(m, in.A) {
					site := sg.PT.Objects[o].Site
					sg.addRef(in.ID, site.ID)
					sg.addChildren(site.ID, ElemField, m, in.C2)
				}
			case ir.OpStoreStatic:
				sg.addChildren(-1, in.Static.Slot, m, in.A)
			}
		}
	}
	// Heap load → aliased store edges, per abstract location.
	for l, loads := range sg.locLoads {
		stores := sg.locStores[l]
		for _, ld := range loads {
			for _, st := range stores {
				sg.addDep(ld.ID, st.ID)
			}
		}
	}
}

// buildAdjacency materializes sorted dependence adjacency lists.
func (sg *StaticGraph) buildAdjacency() {
	n := len(sg.Prog.Instrs)
	sg.depsOf = make([][]int32, n)
	sg.usesOf = make([][]int32, n)
	for k := range sg.deps {
		use := int(k >> 32)
		def := int(uint32(k))
		sg.depsOf[use] = append(sg.depsOf[use], int32(def))
		sg.usesOf[def] = append(sg.usesOf[def], int32(use))
	}
	for i := 0; i < n; i++ {
		sort.Slice(sg.depsOf[i], func(a, b int) bool { return sg.depsOf[i][a] < sg.depsOf[i][b] })
		sort.Slice(sg.usesOf[i], func(a, b int) bool { return sg.usesOf[i][a] < sg.usesOf[i][b] })
	}
}

// HasDep reports a static dependence edge use → def.
func (sg *StaticGraph) HasDep(use, def int) bool { return sg.deps[depKey(use, def)] }

// HasRef reports a static reference edge store → allocation site.
func (sg *StaticGraph) HasRef(store, alloc int) bool { return sg.refs[depKey(store, alloc)] }

// HasChild reports a static points-to child edge from location
// (ownerAllocInstr, field) — ownerAllocInstr -1 for statics, field the
// static slot then — to a stored object's allocation-site instruction.
func (sg *StaticGraph) HasChild(ownerAllocInstr, field, childAllocInstr int) bool {
	return sg.children[childKey{int32(ownerAllocInstr), int32(field), int32(childAllocInstr)}]
}

// NumDeps, NumRefs and NumChildren size the edge classes.
func (sg *StaticGraph) NumDeps() int     { return len(sg.deps) }
func (sg *StaticGraph) NumRefs() int     { return len(sg.refs) }
func (sg *StaticGraph) NumChildren() int { return len(sg.children) }

// NumLocs returns the number of distinct abstract locations accessed.
func (sg *StaticGraph) NumLocs() int {
	seen := make(map[Loc]bool, len(sg.locStores)+len(sg.locLoads))
	for l := range sg.locStores {
		seen[l] = true
	}
	for l := range sg.locLoads {
		seen[l] = true
	}
	return len(seen)
}

// LocBound is the static cost/benefit bound of one abstract heap location.
type LocBound struct {
	Key    Loc
	Stores int // may-alias store instructions
	Loads  int // may-alias load instructions

	// CostBound bounds the location's RAC: the size of the backward thin
	// slice from its stores, stopping at (but counting) heap-reading
	// instructions, mirroring the dynamic HRAC traversal.
	CostBound int
	// BenefitBound bounds the forward value flow out of the location's
	// loads, stopping at (but counting) consumers and heap writers (HRAB).
	BenefitBound int
	// Consumed reports whether any forward path reaches a predicate or
	// native consumer — a statically non-zero benefit witness.
	Consumed bool

	// WCost and WBenefit are the frequency-weighted counterparts of
	// CostBound and BenefitBound: each sliced instruction contributes its
	// loop-nest execution-frequency estimate instead of 1. Under
	// BoundsWeighted(nil) every instruction weighs 1 and WCost == CostBound.
	WCost    float64
	WBenefit float64
}

// WriteOnly reports a location with stores but no may-alias load — the
// static shadow of a dynamically zero-benefit location.
func (b *LocBound) WriteOnly() bool { return b.Stores > 0 && b.Loads == 0 }

// Bounds computes the static cost/benefit bound of every stored-to abstract
// location, ranked: write-only locations first (by cost bound descending),
// then by cost-per-benefit descending, ties broken by location key so the
// order is deterministic. Every instruction weighs 1 — see BoundsWeighted.
func (sg *StaticGraph) Bounds() []LocBound { return sg.BoundsWeighted(nil) }

// BoundsWeighted is Bounds under a static execution-frequency estimate: freq
// maps every instruction ID to its loop-nest frequency weight (ssa.Weights).
// The weights tighten the bounds in two ways, both sound with respect to the
// dynamic-graph containment invariant:
//
//   - an instruction with weight 0 is statically proven never to execute
//     (CFG-unreachable, or dead under sparse conditional constant
//     propagation), so no dynamic node corresponds to it and the traversals
//     skip it outright — the counted bounds can only shrink;
//   - WCost/WBenefit accumulate each sliced instruction's frequency instead
//     of 1, so a store whose backward slice sits inside a hot loop nest
//     outranks an equal-sized slice of straight-line setup code, mirroring
//     the dynamic cost's per-execution accounting.
//
// A nil freq means every instruction weighs 1 (and nothing is skipped), which
// reproduces the unweighted Bounds exactly.
func (sg *StaticGraph) BoundsWeighted(freq []float64) []LocBound {
	locs := make([]Loc, 0, len(sg.locStores))
	for l := range sg.locStores {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool { return locLess(locs[i], locs[j]) })

	out := make([]LocBound, 0, len(locs))
	for _, l := range locs {
		b := LocBound{Key: l, Stores: len(sg.locStores[l]), Loads: len(sg.locLoads[l])}
		b.CostBound, b.WCost = sg.backwardBound(sg.locStores[l], freq)
		b.BenefitBound, b.WBenefit, b.Consumed = sg.forwardBound(sg.locLoads[l], freq)
		out = append(out, b)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.WriteOnly() != b.WriteOnly() {
			return a.WriteOnly()
		}
		ra := a.WCost / (1 + a.WBenefit)
		rb := b.WCost / (1 + b.WBenefit)
		if ra != rb {
			return ra > rb
		}
		return locLess(a.Key, b.Key)
	})
	return out
}

// weightOf resolves an instruction's frequency weight: 1 everywhere when no
// estimate was supplied.
func weightOf(freq []float64, id int32) float64 {
	if freq == nil {
		return 1
	}
	return freq[id]
}

// backwardBound counts the backward thin slice from the given stores,
// stopping at heap readers after counting them (the static HRAC), skipping
// weight-0 (proven-dead) instructions, and summing frequency weights.
func (sg *StaticGraph) backwardBound(stores []*ir.Instr, freq []float64) (int, float64) {
	seen := make(map[int32]bool)
	wsum := 0.0
	var work []int32
	push := func(id int32) {
		if !seen[id] && weightOf(freq, id) > 0 {
			seen[id] = true
			wsum += weightOf(freq, id)
			work = append(work, id)
		}
	}
	for _, st := range stores {
		push(int32(st.ID))
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		in := sg.Prog.Instrs[id]
		if in.ReadsHeap() && !in.WritesHeap() {
			continue // count the reader, do not cross it
		}
		for _, d := range sg.depsOf[id] {
			push(d)
		}
	}
	return len(seen), wsum
}

// forwardBound counts the forward value flow from the given loads, stopping
// at consumers and heap writers after counting them (the static HRAB),
// skipping weight-0 instructions and summing frequency weights; it also
// reports whether a consumer was reached.
func (sg *StaticGraph) forwardBound(loads []*ir.Instr, freq []float64) (int, float64, bool) {
	seen := make(map[int32]bool)
	wsum := 0.0
	consumed := false
	var work []int32
	push := func(id int32) {
		if !seen[id] && weightOf(freq, id) > 0 {
			seen[id] = true
			wsum += weightOf(freq, id)
			work = append(work, id)
		}
	}
	for _, ld := range loads {
		push(int32(ld.ID))
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		in := sg.Prog.Instrs[id]
		if in.IsConsumer() {
			consumed = true
			continue
		}
		if in.WritesHeap() && !in.ReadsHeap() {
			continue
		}
		for _, u := range sg.usesOf[id] {
			push(u)
		}
	}
	return len(seen), wsum, consumed
}
