package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"lowutil"
	"lowutil/internal/jobs"
)

// getBody GETs url and returns status + body.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// waitBatch polls GET /v2/jobs/{batch} until every job is terminal.
func waitBatch(t *testing.T, base, batch string) batchStatusResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := getBody(t, base+"/v2/jobs/"+batch)
		if code != http.StatusOK {
			t.Fatalf("batch status: %d: %s", code, body)
		}
		var bs batchStatusResponse
		if err := json.Unmarshal(body, &bs); err != nil {
			t.Fatal(err)
		}
		done := true
		for _, st := range bs.Jobs {
			if !st.State.Terminal() {
				done = false
			}
		}
		if done {
			return bs
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("batch never finished")
	return batchStatusResponse{}
}

// TestJobsBatchMatchesSynchronous submits a profile job batch and asserts
// each job's stored payload is byte-identical to the same request served
// synchronously by a fresh server — the async path changes scheduling,
// never results.
func TestJobsBatchMatchesSynchronous(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	code, body := postJSON(t, ts.URL+"/v2/jobs", jobsRequest{
		Key: "batch-sync-diff",
		Jobs: []jobSubmission{
			{Spec: jobs.Spec{Kind: jobs.KindProfile, Source: workSrc}},
			{Spec: jobs.Spec{Kind: jobs.KindReport, Source: workSrc, Top: 5}},
		},
	})
	if code != http.StatusOK {
		t.Fatalf("submit: %d: %s", code, body)
	}
	var jr jobsResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Jobs) != 2 || jr.Batch == "" {
		t.Fatalf("submit response: %+v", jr)
	}
	bs := waitBatch(t, ts.URL, jr.Batch)
	for _, st := range bs.Jobs {
		if st.State != jobs.StateDone {
			t.Fatalf("job %s: %s (%+v)", st.ID, st.State, st.Err)
		}
	}

	// Cold synchronous calls — one fresh server each, so neither sees a
	// memoized run: identical bytes.
	_, ts2 := newTestServer(t, Config{})
	id := compileSession(t, ts2.URL, workSrc)
	_, syncProfile := postJSON(t, ts2.URL+"/v2/profile", profileRequest{Session: id})
	_, ts3 := newTestServer(t, Config{})
	id3 := compileSession(t, ts3.URL, workSrc)
	_, syncReport := postJSON(t, ts3.URL+"/v2/report", profileRequest{Session: id3, Top: 5})
	if got, want := compact(t, bs.Jobs[0].Result.Payload), compact(t, syncProfile); got != want {
		t.Errorf("async profile diverges from synchronous:\n%s\nvs\n%s", got, want)
	}
	if got, want := compact(t, bs.Jobs[1].Result.Payload), compact(t, syncReport); got != want {
		t.Errorf("async report diverges from synchronous:\n%s\nvs\n%s", got, want)
	}
}

// compact canonicalizes JSON framing (whitespace, trailing newline) so
// payload comparisons are about content bytes, not transport framing.
func compact(t *testing.T, raw []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("invalid JSON %s: %v", raw, err)
	}
	return buf.String()
}

// TestJobsIdempotentSubmission: resubmitting a batch key returns the same
// IDs flagged duplicate; conflicting reuse maps to the 409 envelope.
func TestJobsIdempotentSubmission(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := jobsRequest{Key: "idem", Jobs: []jobSubmission{{Spec: jobs.Spec{Kind: jobs.KindRun, Source: workSrc}}}}
	_, body := postJSON(t, ts.URL+"/v2/jobs", req)
	var first jobsResponse
	json.Unmarshal(body, &first)
	_, body = postJSON(t, ts.URL+"/v2/jobs", req)
	var second jobsResponse
	json.Unmarshal(body, &second)
	if first.Batch != second.Batch || first.Jobs[0].ID != second.Jobs[0].ID {
		t.Errorf("resubmission changed IDs: %+v vs %+v", first, second)
	}
	if !second.Jobs[0].Duplicate {
		t.Error("resubmission not flagged duplicate")
	}

	req.Jobs[0].Spec.Source = workSrc + "\n"
	code, body := postJSON(t, ts.URL+"/v2/jobs", req)
	if code != http.StatusConflict {
		t.Fatalf("conflicting reuse: %d: %s", code, body)
	}
	if eb := decodeEnvelope(t, body); eb.Code != "conflict" {
		t.Errorf("409 envelope = %+v, want conflict", eb)
	}
}

// TestJobEventsNDJSON: the event stream is NDJSON, replays byte-identically,
// and resumes exactly from ?after=.
func TestJobEventsNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, body := postJSON(t, ts.URL+"/v2/jobs", jobsRequest{
		Key:  "events",
		Jobs: []jobSubmission{{Spec: jobs.Spec{Kind: jobs.KindRun, Source: workSrc}}},
	})
	var jr jobsResponse
	json.Unmarshal(body, &jr)
	waitBatch(t, ts.URL, jr.Batch)
	id := jr.Jobs[0].ID

	stream := func(query string) (string, []jobs.Event) {
		resp, err := http.Get(ts.URL + "/v2/jobs/" + id + "/events" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Fatalf("content type %q", ct)
		}
		raw, _ := io.ReadAll(resp.Body)
		var evs []jobs.Event
		sc := bufio.NewScanner(bytes.NewReader(raw))
		for sc.Scan() {
			var ev jobs.Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			evs = append(evs, ev)
		}
		return string(raw), evs
	}

	full1, evs := stream("")
	full2, _ := stream("")
	if full1 != full2 {
		t.Errorf("replays differ:\n%s\nvs\n%s", full1, full2)
	}
	if len(evs) < 3 || evs[0].Type != jobs.EventQueued || evs[len(evs)-1].Type != jobs.EventDone {
		t.Fatalf("unexpected event trail: %+v", evs)
	}
	for i, ev := range evs {
		if ev.Seq != i+1 {
			t.Errorf("event %d has seq %d, want dense from 1", i, ev.Seq)
		}
	}
	_, tail := stream("?after=1")
	if len(tail) != len(evs)-1 || tail[0].Seq != 2 {
		t.Errorf("resume from after=1: %+v", tail)
	}

	code, body := getBody(t, ts.URL+"/v2/jobs/jmissing/events")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job events: %d", code)
	}
	if eb := decodeEnvelope(t, body); eb.Code != "not_found" {
		t.Errorf("envelope = %+v", eb)
	}

	// A negative or malformed ?after= is a 400, not a handler panic.
	for _, q := range []string{"?after=-1", "?after=bogus"} {
		code, body := getBody(t, ts.URL+"/v2/jobs/"+id+"/events"+q)
		if code != http.StatusBadRequest {
			t.Fatalf("events %s: status %d, want 400", q, code)
		}
		if eb := decodeEnvelope(t, body); eb.Code != "bad_request" {
			t.Errorf("events %s envelope = %+v, want bad_request", q, eb)
		}
	}
}

// TestJobsFaultRecovery injects a transient failure on every first attempt
// while a one-slot session LRU forces the two programs to evict each
// other's compiled session between attempts; every job still completes
// with the correct result.
func TestJobsFaultRecovery(t *testing.T) {
	_, ts := newTestServer(t, Config{
		MaxSessions: 1,
		Jobs: jobs.Config{
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
			FaultHook: func(jobID string, attempt int) error {
				if attempt == 1 {
					return jobs.Transient(fmt.Errorf("%w: injected", lowutil.ErrCanceled))
				}
				return nil
			},
		},
	})
	_, body := postJSON(t, ts.URL+"/v2/jobs", jobsRequest{
		Key: "faults",
		Jobs: []jobSubmission{
			{Spec: jobs.Spec{Kind: jobs.KindProfile, Source: workSrc}},
			{Spec: jobs.Spec{Kind: jobs.KindAudit, Source: "// variant\n" + workSrc}},
		},
	})
	var jr jobsResponse
	if err := json.Unmarshal(body, &jr); err != nil || len(jr.Jobs) != 2 {
		t.Fatalf("submit: %s (%v)", body, err)
	}
	bs := waitBatch(t, ts.URL, jr.Batch)
	for _, st := range bs.Jobs {
		if st.State != jobs.StateDone {
			t.Fatalf("job %s: %s (%+v)", st.ID, st.State, st.Err)
		}
		if st.Attempts != 2 {
			t.Errorf("job %s ran %d attempts, want 2 (one injected failure)", st.ID, st.Attempts)
		}
	}
	if got := metricValue(t, ts.URL, "lowutil_jobs_retries_total"); got != 2 {
		t.Errorf("retries metric = %d, want 2", got)
	}
	if got := metricValue(t, ts.URL, "lowutil_jobs_completed_total"); got != 2 {
		t.Errorf("completed metric = %d, want 2", got)
	}
}

// TestJobsQueueFullEnvelope: a queue at depth rejects with the retryable
// at_capacity envelope and a Retry-After header.
func TestJobsQueueFullEnvelope(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, ts := newTestServer(t, Config{
		Jobs: jobs.Config{
			Depth: 1, Shards: 1, Workers: 1,
			FaultHook: func(string, int) error { <-block; return errors.New("never") },
		},
	})
	postJSON(t, ts.URL+"/v2/jobs", jobsRequest{Key: "fill", Jobs: []jobSubmission{{Spec: jobs.Spec{Kind: jobs.KindRun, Source: workSrc}}}})
	code, body := postJSON(t, ts.URL+"/v2/jobs", jobsRequest{Key: "over", Jobs: []jobSubmission{{Spec: jobs.Spec{Kind: jobs.KindCompile, Source: workSrc}}}})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-depth submit: %d: %s", code, body)
	}
	if eb := decodeEnvelope(t, body); eb.Code != "at_capacity" || !eb.Retryable {
		t.Errorf("429 envelope = %+v, want retryable at_capacity", eb)
	}
}
