package ir

import "fmt"

// Builder incrementally constructs a Program. Typical use:
//
//	b := ir.NewBuilder()
//	cls := b.Class("List", nil)
//	f := b.Field(cls, "head", b.RefType(nodeCls))
//	m := b.Method(cls, "add", false, 2, ir.IntType)
//	mb := b.Body(m)
//	mb.Move(2, 1)
//	...
//	prog, err := b.Seal("Main", "main")
//
// The Builder assigns instruction IDs, allocation-site IDs and field slots;
// Seal validates the result.
type Builder struct {
	classes     []*Class
	statics     []*StaticField
	classByName map[string]*Class
	refTypes    map[*Class]*Type
	arrTypes    map[*Type]*Type
	nextField   int
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		classByName: make(map[string]*Class),
		refTypes:    make(map[*Class]*Type),
		arrTypes:    make(map[*Type]*Type),
	}
}

// Class declares a new class with the given superclass (nil for none).
// Declaring two classes with the same name panics: builder misuse is a
// programming error, not an input error.
func (b *Builder) Class(name string, super *Class) *Class {
	if _, dup := b.classByName[name]; dup {
		panic(fmt.Sprintf("ir: duplicate class %q", name))
	}
	c := &Class{Name: name, Super: super, ID: len(b.classes), methods: make(map[string]*Method)}
	b.classes = append(b.classes, c)
	b.classByName[name] = c
	return c
}

// RefType returns the interned reference type for class c.
func (b *Builder) RefType(c *Class) *Type {
	if t, ok := b.refTypes[c]; ok {
		return t
	}
	t := &Type{Kind: KindRef, Class: c}
	b.refTypes[c] = t
	return t
}

// ArrayType returns the interned array type with the given element type.
func (b *Builder) ArrayType(elem *Type) *Type {
	if t, ok := b.arrTypes[elem]; ok {
		return t
	}
	t := &Type{Kind: KindRef, Elem: elem}
	b.arrTypes[elem] = t
	return t
}

// Field declares an instance field on c.
func (b *Builder) Field(c *Class, name string, typ *Type) *Field {
	f := &Field{Name: name, Type: typ, Class: c, ID: b.nextField}
	b.nextField++
	c.Fields = append(c.Fields, f)
	return f
}

// StaticField declares a static field on c.
func (b *Builder) StaticField(c *Class, name string, typ *Type) *StaticField {
	f := &StaticField{Name: name, Type: typ, Class: c, Slot: len(b.statics)}
	f.ID = f.Slot
	b.statics = append(b.statics, f)
	return f
}

// Method declares a method on c. params includes the receiver for instance
// methods (slot 0 = this). returns may be nil for void.
func (b *Builder) Method(c *Class, name string, static bool, params int, returns *Type) *Method {
	if _, dup := c.methods[name]; dup {
		panic(fmt.Sprintf("ir: duplicate method %s.%s", c.Name, name))
	}
	m := &Method{Name: name, Class: c, Static: static, Params: params, NumLocals: params, Returns: returns}
	c.Methods = append(c.Methods, m)
	c.methods[name] = m
	return m
}

// BodyBuilder emits instructions into a method. It also tracks the high-water
// mark of local slots so NumLocals is maintained automatically.
type BodyBuilder struct {
	m    *Method
	line int
}

// Body returns a BodyBuilder for m. A method may only be built once.
func (b *Builder) Body(m *Method) *BodyBuilder {
	if len(m.Code) != 0 {
		panic(fmt.Sprintf("ir: method %s already has a body", m.QualifiedName()))
	}
	return &BodyBuilder{m: m}
}

// Line sets the source line recorded on subsequently emitted instructions.
func (bb *BodyBuilder) Line(line int) *BodyBuilder { bb.line = line; return bb }

// PC returns the index the next emitted instruction will have.
func (bb *BodyBuilder) PC() int { return len(bb.m.Code) }

func (bb *BodyBuilder) touch(slots ...int) {
	for _, s := range slots {
		if s >= bb.m.NumLocals {
			bb.m.NumLocals = s + 1
		}
	}
}

func (bb *BodyBuilder) emit(in Instr) int {
	in.Line = bb.line
	in.PC = len(bb.m.Code)
	bb.m.Code = append(bb.m.Code, in)
	return in.PC
}

// Const emits dst = imm.
func (bb *BodyBuilder) Const(dst int, imm int64) int {
	bb.touch(dst)
	return bb.emit(Instr{Op: OpConst, Dst: dst, Imm: imm, A: -1, B: -1, C2: -1, AllocSite: -1})
}

// Null emits dst = null.
func (bb *BodyBuilder) Null(dst int) int {
	bb.touch(dst)
	return bb.emit(Instr{Op: OpConst, Dst: dst, IsNull: true, A: -1, B: -1, C2: -1, AllocSite: -1})
}

// Move emits dst = src.
func (bb *BodyBuilder) Move(dst, src int) int {
	bb.touch(dst, src)
	return bb.emit(Instr{Op: OpMove, Dst: dst, A: src, B: -1, C2: -1, AllocSite: -1})
}

// Bin emits dst = a op b2.
func (bb *BodyBuilder) Bin(dst int, op BinOp, a, b2 int) int {
	bb.touch(dst, a, b2)
	return bb.emit(Instr{Op: OpBin, Dst: dst, Bin: op, A: a, B: b2, C2: -1, AllocSite: -1})
}

// Neg emits dst = -a.
func (bb *BodyBuilder) Neg(dst, a int) int {
	bb.touch(dst, a)
	return bb.emit(Instr{Op: OpNeg, Dst: dst, A: a, B: -1, C2: -1, AllocSite: -1})
}

// Not emits dst = !a.
func (bb *BodyBuilder) Not(dst, a int) int {
	bb.touch(dst, a)
	return bb.emit(Instr{Op: OpNot, Dst: dst, A: a, B: -1, C2: -1, AllocSite: -1})
}

// New emits dst = new cls. The allocation-site index is assigned at Seal.
func (bb *BodyBuilder) New(dst int, cls *Class) int {
	bb.touch(dst)
	return bb.emit(Instr{Op: OpNew, Dst: dst, Class: cls, A: -1, B: -1, C2: -1, AllocSite: -1})
}

// NewArray emits dst = new elem[lenSlot].
func (bb *BodyBuilder) NewArray(dst int, elem *Type, lenSlot int) int {
	bb.touch(dst, lenSlot)
	return bb.emit(Instr{Op: OpNewArray, Dst: dst, Elem: elem, A: lenSlot, B: -1, C2: -1, AllocSite: -1})
}

// LoadField emits dst = obj.f.
func (bb *BodyBuilder) LoadField(dst, obj int, f *Field) int {
	bb.touch(dst, obj)
	return bb.emit(Instr{Op: OpLoadField, Dst: dst, A: obj, Field: f, B: -1, C2: -1, AllocSite: -1})
}

// StoreField emits obj.f = src.
func (bb *BodyBuilder) StoreField(obj int, f *Field, src int) int {
	bb.touch(obj, src)
	return bb.emit(Instr{Op: OpStoreField, A: obj, Field: f, B: src, Dst: -1, C2: -1, AllocSite: -1})
}

// LoadStatic emits dst = sf.
func (bb *BodyBuilder) LoadStatic(dst int, sf *StaticField) int {
	bb.touch(dst)
	return bb.emit(Instr{Op: OpLoadStatic, Dst: dst, Static: sf, A: -1, B: -1, C2: -1, AllocSite: -1})
}

// StoreStatic emits sf = src.
func (bb *BodyBuilder) StoreStatic(sf *StaticField, src int) int {
	bb.touch(src)
	return bb.emit(Instr{Op: OpStoreStatic, Static: sf, A: src, Dst: -1, B: -1, C2: -1, AllocSite: -1})
}

// ALoad emits dst = arr[idx].
func (bb *BodyBuilder) ALoad(dst, arr, idx int) int {
	bb.touch(dst, arr, idx)
	return bb.emit(Instr{Op: OpALoad, Dst: dst, A: arr, B: idx, C2: -1, AllocSite: -1})
}

// AStore emits arr[idx] = src.
func (bb *BodyBuilder) AStore(arr, idx, src int) int {
	bb.touch(arr, idx, src)
	return bb.emit(Instr{Op: OpAStore, A: arr, B: idx, C2: src, Dst: -1, AllocSite: -1})
}

// ArrayLen emits dst = len(arr).
func (bb *BodyBuilder) ArrayLen(dst, arr int) int {
	bb.touch(dst, arr)
	return bb.emit(Instr{Op: OpArrayLen, Dst: dst, A: arr, B: -1, C2: -1, AllocSite: -1})
}

// If emits "if a cmp b2 goto target". The target may be patched later with
// Patch.
func (bb *BodyBuilder) If(a int, cmp Cmp, b2, target int) int {
	bb.touch(a, b2)
	return bb.emit(Instr{Op: OpIf, A: a, Cmp: cmp, B: b2, Target: target, Dst: -1, C2: -1, AllocSite: -1})
}

// Goto emits an unconditional jump.
func (bb *BodyBuilder) Goto(target int) int {
	return bb.emit(Instr{Op: OpGoto, Target: target, Dst: -1, A: -1, B: -1, C2: -1, AllocSite: -1})
}

// Patch rewrites the jump target of the branch instruction at pc.
func (bb *BodyBuilder) Patch(pc, target int) {
	in := &bb.m.Code[pc]
	if in.Op != OpIf && in.Op != OpGoto {
		panic(fmt.Sprintf("ir: patching non-branch at pc %d in %s", pc, bb.m.QualifiedName()))
	}
	in.Target = target
}

// Call emits dst = callee(args...). dst may be -1 for void calls. For
// instance methods, args[0] is the receiver.
func (bb *BodyBuilder) Call(dst int, callee *Method, args ...int) int {
	bb.touch(args...)
	if dst >= 0 {
		bb.touch(dst)
	}
	as := make([]int, len(args))
	copy(as, args)
	return bb.emit(Instr{Op: OpCall, Dst: dst, Callee: callee, Args: as, A: -1, B: -1, C2: -1, AllocSite: -1})
}

// Native emits dst = native(args...). dst may be -1.
func (bb *BodyBuilder) Native(dst int, fn NativeFn, args ...int) int {
	bb.touch(args...)
	if dst >= 0 {
		bb.touch(dst)
	}
	as := make([]int, len(args))
	copy(as, args)
	return bb.emit(Instr{Op: OpNative, Dst: dst, Native: fn, Args: as, A: -1, B: -1, C2: -1, AllocSite: -1})
}

// Return emits return src.
func (bb *BodyBuilder) Return(src int) int {
	bb.touch(src)
	return bb.emit(Instr{Op: OpReturn, A: src, HasA: true, Dst: -1, B: -1, C2: -1, AllocSite: -1})
}

// ReturnVoid emits a void return.
func (bb *BodyBuilder) ReturnVoid() int {
	return bb.emit(Instr{Op: OpReturn, Dst: -1, A: -1, B: -1, C2: -1, AllocSite: -1})
}

// InstanceOf emits dst = a instanceof cls.
func (bb *BodyBuilder) InstanceOf(dst, a int, cls *Class) int {
	bb.touch(dst, a)
	return bb.emit(Instr{Op: OpInstanceOf, Dst: dst, A: a, Class: cls, B: -1, C2: -1, AllocSite: -1})
}

// Seal finalizes the program: assigns field slots (including inheritance),
// numbers instructions and allocation sites, resolves the entry point, and
// validates every method body.
func (b *Builder) Seal(mainClass, mainMethod string) (*Program, error) {
	p := &Program{
		Classes:     b.classes,
		Statics:     b.statics,
		classByName: b.classByName,
	}

	// Assign field slots in superclass-first order. Detect inheritance
	// cycles while we are at it.
	sealed := make(map[*Class]bool)
	var sealClass func(c *Class, trail map[*Class]bool) error
	sealClass = func(c *Class, trail map[*Class]bool) error {
		if sealed[c] {
			return nil
		}
		if trail[c] {
			return fmt.Errorf("ir: inheritance cycle through class %s", c.Name)
		}
		trail[c] = true
		base := 0
		if c.Super != nil {
			if err := sealClass(c.Super, trail); err != nil {
				return err
			}
			base = c.Super.fieldsN
		}
		for i, f := range c.Fields {
			f.Slot = base + i
		}
		c.fieldsN = base + len(c.Fields)
		c.refSlots = make([]bool, c.fieldsN)
		if c.Super != nil {
			copy(c.refSlots, c.Super.refSlots)
		}
		for _, f := range c.Fields {
			c.refSlots[f.Slot] = f.Type.IsRef()
		}
		sealed[c] = true
		delete(trail, c)
		return nil
	}
	for _, c := range b.classes {
		if err := sealClass(c, make(map[*Class]bool)); err != nil {
			return nil, err
		}
	}

	p.fieldsByID = make([]*Field, b.nextField)
	for _, c := range b.classes {
		for _, f := range c.Fields {
			p.fieldsByID[f.ID] = f
		}
	}
	p.NumFields = b.nextField

	// Number methods, instructions and allocation sites.
	nextMethod := 0
	for _, c := range b.classes {
		for _, m := range c.Methods {
			m.ID = nextMethod
			nextMethod++
			for i := range m.Code {
				in := &m.Code[i]
				in.ID = len(p.Instrs)
				in.Method = m
				if in.IsAlloc() {
					in.AllocSite = len(p.AllocSites)
					p.AllocSites = append(p.AllocSites, in)
				}
				p.Instrs = append(p.Instrs, in)
			}
		}
	}

	mc := b.classByName[mainClass]
	if mc == nil {
		return nil, fmt.Errorf("ir: main class %q not found", mainClass)
	}
	p.Main = mc.LookupMethod(mainMethod)
	if p.Main == nil {
		return nil, fmt.Errorf("ir: main method %s.%s not found", mainClass, mainMethod)
	}
	if !p.Main.Static || p.Main.Params != 0 {
		return nil, fmt.Errorf("ir: main method %s must be static with no parameters", p.Main.QualifiedName())
	}

	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}
