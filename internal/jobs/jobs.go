// Package jobs is the asynchronous batch-job subsystem behind POST
// /v2/jobs: a sharded priority queue of analysis specs executed by a
// bounded worker pool, with per-job deadlines, exponential-backoff retry
// with deterministic jitter for transient failures, a content-addressed
// result store, ordered per-job event logs for streaming progress, and a
// graceful drain that re-queues in-flight work.
//
// Architecture:
//
//   - Submission assigns each job to a shard by ID hash. Every shard owns
//     a priority heap (priority desc, submission order asc) and one
//     dispatch goroutine, so jobs of one shard start in deterministic
//     order.
//   - Shard dispatchers hand execution to a shared par.Pool, which bounds
//     how many jobs run concurrently across all shards — shards own
//     ordering, the pool owns parallelism.
//   - Results are stored content-addressed under Spec.Hash in an LRU;
//     a resubmitted identical spec completes from the store without
//     re-executing.
//   - A transient failure (a canceled run, an evicted cache entry — see
//     Transient) re-queues the job after base·2^(attempt-1) backoff,
//     capped and jittered deterministically from the job ID, until
//     MaxAttempts or the job's deadline.
//   - Drain cancels in-flight executions, re-queues them without
//     consuming an attempt, and stops the workers; Resume restarts them.
//     Nothing is lost across a drain/resume cycle.
package jobs

import (
	"container/heap"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"lowutil/internal/par"
)

// Executor runs one spec to completion under ctx. Implementations must be
// safe for concurrent use; the server's executor resolves specs through
// its session LRU and memoized profile runs.
type Executor interface {
	Execute(ctx context.Context, spec Spec) (*Result, error)
}

// ExecutorFunc adapts a function to the Executor interface.
type ExecutorFunc func(ctx context.Context, spec Spec) (*Result, error)

// Execute implements Executor.
func (f ExecutorFunc) Execute(ctx context.Context, spec Spec) (*Result, error) {
	return f(ctx, spec)
}

// Config tunes a Queue. The zero value of every field selects a sensible
// default; Executor is required.
type Config struct {
	// Shards is the number of ordering shards and dispatch goroutines
	// (0 = 4). Jobs within one shard start in priority-then-submission
	// order.
	Shards int
	// Workers bounds concurrently executing jobs across all shards
	// (0 = Shards).
	Workers int
	// Depth bounds the total number of queued-but-not-terminal jobs; a
	// submission that would exceed it fails with ErrQueueFull (0 = 1024).
	Depth int
	// MaxAttempts bounds execution attempts per job, the first included
	// (0 = 4).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; attempt k waits
	// Base·2^(k-1), capped at MaxBackoff, plus a deterministic jitter of
	// up to half the delay derived from the job ID (0 = 25ms base, 2s cap).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// MaxResults bounds the content-addressed result store (0 = 256).
	MaxResults int
	// MaxJobs bounds retained job records; submissions over the bound
	// evict the oldest terminal jobs first (0 = 4096).
	MaxJobs int
	// Executor runs the specs. Required.
	Executor Executor
	// Retryable optionally extends the transient classification: a
	// non-nil hook is consulted after IsTransient.
	Retryable func(error) bool
	// FaultHook, when non-nil, runs before every execution attempt and
	// its error (if any) replaces the attempt's outcome. Tests inject
	// cancels and evictions here; production configs leave it nil.
	FaultHook func(jobID string, attempt int) error
}

// ErrQueueFull rejects submissions over the Depth bound. Retryable: the
// queue drains as workers finish.
var ErrQueueFull = errors.New("jobs: queue full")

// ErrBatchConflict rejects a batch key reused with different contents.
var ErrBatchConflict = errors.New("jobs: batch key reused with different jobs")

// Stats is a snapshot of the queue's counters.
type Stats struct {
	Submitted    int64 // jobs accepted, deduplicated submissions excluded
	Deduped      int64 // jobs answered from an existing batch record
	Completed    int64 // jobs finished in StateDone
	Failed       int64 // jobs finished in StateFailed
	Retries      int64 // transient failures that scheduled a backoff retry
	Requeued     int64 // in-flight jobs re-queued by a drain
	ResultHits   int64 // executions satisfied by the content-addressed store
	ResultMisses int64 // executions that ran the executor
	Evictions    int64 // results dropped by the store LRU bound
	Queued       int64 // jobs currently waiting (incl. retry backoff)
	Running      int64 // jobs currently executing
	Results      int   // results currently resident in the store
}

// Queue is the job queue. Create with New; submit with Submit; observe
// with Status, Events, and Stats; stop with Drain.
type Queue struct {
	cfg    Config
	pool   *par.Pool
	shards []*shard
	store  *store

	mu       sync.Mutex
	jobs     map[string]*job
	order    []*job // submission order, for terminal-job eviction
	batches  map[string]*batchRecord
	seq      int64
	draining bool
	runCtx   context.Context
	cancel   context.CancelFunc
	wg       sync.WaitGroup

	submitted, deduped, completed, failed    atomic.Int64
	retries, requeued                        atomic.Int64
	resultHits, resultMisses, storeEvictions atomic.Int64
	queued, running                          atomic.Int64
}

// batchRecord pins an idempotency key to the jobs it created, so a
// retried submission returns the same IDs without enqueuing anything.
type batchRecord struct {
	id  string
	sig string
	ids []string
}

// shard is one ordering domain: a priority heap plus a wakeup channel for
// its dispatch goroutine.
type shard struct {
	mu     sync.Mutex
	heap   jobHeap
	notify chan struct{}
}

func (s *shard) push(j *job) {
	s.mu.Lock()
	heap.Push(&s.heap, j)
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// pop removes the best queued job, or returns nil when ctx ends. The
// ctx check comes first so a drain stops dispatch even while the heap is
// non-empty (drain re-queues in-flight jobs, which must not immediately
// re-dispatch).
func (s *shard) pop(ctx context.Context) *job {
	for {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		s.mu.Lock()
		if s.heap.Len() > 0 {
			j := heap.Pop(&s.heap).(*job)
			s.mu.Unlock()
			return j
		}
		s.mu.Unlock()
		select {
		case <-s.notify:
		case <-ctx.Done():
			return nil
		}
	}
}

// jobHeap orders by priority (higher first), then submission order.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h *jobHeap) Pop() (x any) { old := *h; n := len(old); x = old[n-1]; *h = old[:n-1]; return }

// New builds a queue from cfg and starts its workers. cfg.Executor must be
// non-nil.
func New(cfg Config) *Queue {
	if cfg.Executor == nil {
		panic("jobs: Config.Executor is required")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.Shards
	}
	if cfg.Depth <= 0 {
		cfg.Depth = 1024
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 25 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 4096
	}
	q := &Queue{
		cfg:     cfg,
		store:   newStore(cfg.MaxResults),
		jobs:    make(map[string]*job),
		batches: make(map[string]*batchRecord),
		shards:  make([]*shard, cfg.Shards),
	}
	for i := range q.shards {
		q.shards[i] = &shard{notify: make(chan struct{}, 1)}
	}
	q.start()
	return q
}

// start launches the pool and the shard dispatchers. The draining flag,
// run context, and pool are all replaced under one critical section so
// concurrent Resume calls cannot both observe the drained state and
// double-start the dispatchers.
func (q *Queue) start() {
	q.mu.Lock()
	q.startLocked()
	q.mu.Unlock()
}

// startLocked is start with q.mu held.
func (q *Queue) startLocked() {
	q.draining = false
	q.runCtx, q.cancel = context.WithCancel(context.Background())
	ctx := q.runCtx
	q.pool = par.NewPool(q.cfg.Workers)
	pool := q.pool
	for _, s := range q.shards {
		q.wg.Add(1)
		go func(s *shard) {
			defer q.wg.Done()
			for {
				j := s.pop(ctx)
				if j == nil {
					return
				}
				if !pool.Do(func() { q.runJob(ctx, j) }) {
					// Pool closed under us: hand the job back untouched.
					q.requeueDrained(j)
					return
				}
			}
		}(s)
	}
}

// Submitted describes one job accepted (or deduplicated) by Submit.
type Submitted struct {
	ID        string `json:"id"`
	Index     int    `json:"index"`
	Duplicate bool   `json:"duplicate"`
}

// Submit enqueues a batch of jobs under the caller-chosen idempotency
// key. Resubmitting the same key with the same requests returns the
// original batch ID and job IDs with Duplicate set and enqueues nothing —
// the contract that makes client retries of POST /v2/jobs safe. Reusing a
// key with different contents fails with ErrBatchConflict.
func (q *Queue) Submit(key string, reqs []Request) (string, []Submitted, error) {
	if key == "" {
		return "", nil, errors.New("jobs: empty idempotency key")
	}
	if len(reqs) == 0 {
		return "", nil, errors.New("jobs: empty batch")
	}
	for i, r := range reqs {
		if err := r.Spec.Validate(); err != nil {
			return "", nil, fmt.Errorf("job %d: %w", i, err)
		}
	}
	sig := batchSig(key, reqs)
	batchID := "b" + sig[:23]

	q.mu.Lock()
	if rec, ok := q.batches[key]; ok {
		defer q.mu.Unlock()
		if rec.sig != sig {
			return "", nil, ErrBatchConflict
		}
		subs := make([]Submitted, len(rec.ids))
		for i, id := range rec.ids {
			subs[i] = Submitted{ID: id, Index: i, Duplicate: true}
		}
		q.deduped.Add(int64(len(rec.ids)))
		return rec.id, subs, nil
	}
	if q.queued.Load()+q.running.Load()+int64(len(reqs)) > int64(q.cfg.Depth) {
		q.mu.Unlock()
		return "", nil, ErrQueueFull
	}
	now := time.Now()
	rec := &batchRecord{id: batchID, sig: sig, ids: make([]string, len(reqs))}
	created := make([]*job, len(reqs))
	subs := make([]Submitted, len(reqs))
	for i, r := range reqs {
		id := jobID(key, i, r.Spec)
		q.seq++
		j := newJob(id, batchID, i, r, q.seq, q.shardFor(id), now)
		q.jobs[id] = j
		rec.ids[i] = id
		created[i] = j
		subs[i] = Submitted{ID: id, Index: i}
	}
	q.order = append(q.order, created...)
	q.batches[key] = rec
	q.submitted.Add(int64(len(reqs)))
	q.queued.Add(int64(len(reqs)))
	q.gcLocked()
	q.mu.Unlock()

	for _, j := range created {
		q.shards[j.shard].push(j)
	}
	return batchID, subs, nil
}

// gcLocked evicts the oldest terminal job records over the MaxJobs bound
// (queued and running jobs are never dropped), then drops batch records
// whose jobs have all been evicted — otherwise q.batches grows one record
// per idempotency key forever. Called with q.mu held.
func (q *Queue) gcLocked() {
	over := len(q.jobs) - q.cfg.MaxJobs
	if over <= 0 {
		return
	}
	kept := q.order[:0]
	evicted := false
	for _, j := range q.order {
		j.mu.Lock()
		terminal := j.state.Terminal()
		j.mu.Unlock()
		if over > 0 && terminal {
			delete(q.jobs, j.id)
			evicted = true
			over--
			continue
		}
		kept = append(kept, j)
	}
	for i := len(kept); i < len(q.order); i++ {
		q.order[i] = nil
	}
	q.order = kept
	if !evicted {
		return
	}
	for key, rec := range q.batches {
		live := false
		for _, id := range rec.ids {
			if _, ok := q.jobs[id]; ok {
				live = true
				break
			}
		}
		if !live {
			delete(q.batches, key)
		}
	}
}

// jobID derives the stable job identifier: content-addressed over the
// batch key, position, and spec, so a retried identical submission maps
// onto the same IDs.
func jobID(key string, index int, spec Spec) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d\x00%s", key, index, spec.Hash())
	return "j" + hex.EncodeToString(h.Sum(nil))[:23]
}

func batchSig(key string, reqs []Request) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%d", key, len(reqs))
	for _, r := range reqs {
		fmt.Fprintf(h, "\x00%s\x00%d\x00%d", r.Spec.Hash(), r.Priority, r.Deadline)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (q *Queue) shardFor(id string) int {
	f := fnv.New32a()
	f.Write([]byte(id))
	return int(f.Sum32() % uint32(len(q.shards)))
}

// runJob executes one attempt of j and decides its fate: done, failed,
// retry after backoff, or drain re-queue.
func (q *Queue) runJob(ctx context.Context, j *job) {
	q.queued.Add(-1)
	q.running.Add(1)
	defer q.running.Add(-1)

	j.mu.Lock()
	j.attempt++
	attempt := j.attempt
	j.state = StateRunning
	j.append(Event{Type: EventStarted, Attempt: attempt})
	j.mu.Unlock()

	// The content-addressed store first: identical completed work is
	// reused, not recomputed.
	if res, ok := q.store.get(j.hash); ok {
		q.resultHits.Add(1)
		q.completed.Add(1)
		j.finish(res, nil, "cached")
		return
	}
	q.resultMisses.Add(1)

	var res *Result
	var err error
	if q.cfg.FaultHook != nil {
		err = q.cfg.FaultHook(j.id, attempt)
	}
	if err == nil {
		jctx := ctx
		if !j.deadline.IsZero() {
			var cancel context.CancelFunc
			jctx, cancel = context.WithDeadline(ctx, j.deadline)
			defer cancel()
		}
		res, err = q.cfg.Executor.Execute(jctx, j.spec)
	}
	if err == nil {
		q.storeEvictions.Add(int64(q.store.put(j.hash, res)))
		q.completed.Add(1)
		j.finish(res, nil, "")
		return
	}

	// A drain canceled the attempt: hand the job back to the queue with
	// the attempt refunded — drains must not eat retry budget.
	if ctx.Err() != nil && q.isDraining() {
		q.requeueDrained(j)
		return
	}

	deadlineExpired := !j.deadline.IsZero() && !time.Now().Before(j.deadline)
	retryable := IsTransient(err) || (q.cfg.Retryable != nil && q.cfg.Retryable(err))
	if retryable && !deadlineExpired && attempt < q.cfg.MaxAttempts {
		q.retries.Add(1)
		delay := q.backoff(j.id, attempt)
		j.transition(StateRetrying, Event{Type: EventRetrying, Attempt: attempt, Detail: delay.String()})
		q.queued.Add(1)
		time.AfterFunc(delay, func() {
			j.mu.Lock()
			j.state = StateQueued
			j.mu.Unlock()
			q.shards[j.shard].push(j)
		})
		return
	}

	code := errorCode(err)
	if deadlineExpired {
		code = "deadline"
	}
	q.failed.Add(1)
	j.finish(nil, &JobError{Code: code, Message: err.Error(), Retryable: retryable && code != "deadline"}, "")
}

// backoff computes attempt k's delay: Base·2^(k-1) capped at MaxBackoff,
// plus a deterministic jitter of up to half the delay derived from the job
// ID and attempt — deterministic so tests and event logs are stable, and
// spread across jobs so a burst of transient failures de-synchronizes.
func (q *Queue) backoff(id string, attempt int) time.Duration {
	d := q.cfg.BaseBackoff << (attempt - 1)
	if d > q.cfg.MaxBackoff || d <= 0 {
		d = q.cfg.MaxBackoff
	}
	f := fnv.New64a()
	fmt.Fprintf(f, "%s\x00%d", id, attempt)
	jitter := time.Duration(f.Sum64() % uint64(d/2+1))
	return d + jitter
}

// requeueDrained puts a job interrupted by a drain back into queued
// state. A job that was mid-execution gets its attempt refunded and moves
// from the running count back to queued; a job the dispatcher popped but
// never started is pushed back untouched.
func (q *Queue) requeueDrained(j *job) {
	j.mu.Lock()
	wasRunning := j.state == StateRunning
	if wasRunning && j.attempt > 0 {
		j.attempt--
	}
	j.state = StateQueued
	j.append(Event{Type: EventRequeued, Detail: "drain"})
	j.mu.Unlock()
	if wasRunning {
		q.queued.Add(1) // the matching running decrement is runJob's defer
	}
	q.requeued.Add(1)
	q.shards[j.shard].push(j)
}

func (q *Queue) isDraining() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.draining
}

// Drain stops the queue gracefully: in-flight executions are canceled and
// their jobs re-queued with the attempt refunded, dispatchers and workers
// exit, and every non-terminal job stays queued — Resume picks them all
// up. Drain blocks until the workers have exited and is idempotent.
func (q *Queue) Drain() {
	q.mu.Lock()
	if q.draining {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.draining = true
	cancel := q.cancel
	pool := q.pool
	q.mu.Unlock()
	cancel()
	q.wg.Wait()
	pool.Close()
}

// Resume restarts a drained queue's workers; queued jobs (including those
// re-queued by the drain) execute as if never interrupted. The drained
// check and the restart happen atomically, so concurrent Resume calls
// start exactly one set of dispatchers.
func (q *Queue) Resume() {
	q.mu.Lock()
	if !q.draining {
		q.mu.Unlock()
		return
	}
	q.startLocked()
	q.mu.Unlock()
	// Wake every shard in case jobs were pushed while no dispatcher ran.
	for _, s := range q.shards {
		select {
		case s.notify <- struct{}{}:
		default:
		}
	}
}

// Status snapshots one job.
func (q *Queue) Status(id string) (*Status, bool) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.status(), true
}

// BatchStatus snapshots every job of a batch, in submission order.
func (q *Queue) BatchStatus(batchID string) ([]*Status, bool) {
	q.mu.Lock()
	var rec *batchRecord
	for _, r := range q.batches {
		if r.id == batchID {
			rec = r
			break
		}
	}
	if rec == nil {
		q.mu.Unlock()
		return nil, false
	}
	js := make([]*job, 0, len(rec.ids))
	for _, id := range rec.ids {
		if j, ok := q.jobs[id]; ok { // terminal jobs may have been GC'd
			js = append(js, j)
		}
	}
	q.mu.Unlock()
	out := make([]*Status, len(js))
	for i, j := range js {
		out[i] = j.status()
	}
	return out, true
}

// Events replays job id's event log from seq after+1 onward, invoking fn
// for each event in order, then follows the live log until the job reaches
// a terminal state, ctx ends, or fn returns an error (which Events
// returns). The combination of dense per-job sequence numbers and
// timestamp-free events makes any two replays of the same job identical.
func (q *Queue) Events(ctx context.Context, id string, after int, fn func(Event) error) error {
	q.mu.Lock()
	j, ok := q.jobs[id]
	q.mu.Unlock()
	if !ok {
		return fmt.Errorf("jobs: unknown job %q", id)
	}
	next := max(after, 0) // a negative resume point means "from the start"
	for {
		j.mu.Lock()
		events := j.events[min(next, len(j.events)):]
		changed := j.changed
		terminal := j.state.Terminal()
		j.mu.Unlock()
		for _, ev := range events {
			if err := fn(ev); err != nil {
				return err
			}
			next = ev.Seq
		}
		if terminal && len(events) == 0 {
			return nil
		}
		if terminal {
			continue // drain any events appended after the terminal check
		}
		select {
		case <-changed:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// EvictResult drops the content-addressed result for spec, reporting
// whether one was resident. Tests use it to force the evicted-entry
// recovery path; operators can use it to invalidate a result.
func (q *Queue) EvictResult(spec Spec) bool { return q.store.evict(spec.Hash()) }

// Stats snapshots the queue's counters.
func (q *Queue) Stats() Stats {
	return Stats{
		Submitted:    q.submitted.Load(),
		Deduped:      q.deduped.Load(),
		Completed:    q.completed.Load(),
		Failed:       q.failed.Load(),
		Retries:      q.retries.Load(),
		Requeued:     q.requeued.Load(),
		ResultHits:   q.resultHits.Load(),
		ResultMisses: q.resultMisses.Load(),
		Evictions:    q.storeEvictions.Load(),
		Queued:       q.queued.Load(),
		Running:      q.running.Load(),
		Results:      q.store.len(),
	}
}
