package jobs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"
)

// Kinds of work a job can carry. Each kind maps onto one synchronous
// /v2/* analysis: the job queue is the asynchronous shell around the same
// execution paths.
const (
	KindCompile = "compile"
	KindRun     = "run"
	KindProfile = "profile"
	KindReport  = "report"
	KindSlice   = "slice"
	KindAudit   = "audit"
)

// Spec is one unit of batch work: a program plus the configuration of the
// analysis to run over it. The zero value of every optional field means
// the facade default, exactly as in the synchronous endpoints.
type Spec struct {
	Kind       string `json:"kind"`
	Source     string `json:"source"`
	MainClass  string `json:"main_class,omitempty"`
	MainMethod string `json:"main_method,omitempty"`

	// Profiling configuration (kinds profile and report).
	Slots        int  `json:"slots,omitempty"`
	TreeHeight   int  `json:"tree_height,omitempty"`
	Traditional  bool `json:"traditional,omitempty"`
	TrackControl bool `json:"track_control,omitempty"`
	Prune        bool `json:"prune,omitempty"`
	Legacy       bool `json:"legacy,omitempty"`

	// Static-analysis configuration (kinds slice and audit).
	Mode   string `json:"mode,omitempty"`
	ObjCtx bool   `json:"objctx,omitempty"`

	// Top bounds ranked lists in rendered results (0 = the default).
	Top int `json:"top,omitempty"`
}

// Validate rejects specs the executor could never run.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindCompile, KindRun, KindProfile, KindReport, KindSlice, KindAudit:
	default:
		return fmt.Errorf("jobs: unknown kind %q", s.Kind)
	}
	if s.Source == "" {
		return fmt.Errorf("jobs: %s spec has no source", s.Kind)
	}
	return nil
}

// Hash is the canonical content address of the spec. Two specs with equal
// hashes request identical work, so they share one entry in the result
// store. Every semantically meaningful field participates; encoding is
// length-prefix-free via NUL separators (no field may contain NUL — MJ
// source never does).
func (s Spec) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%s\x00%s\x00%d\x00%d\x00%t\x00%t\x00%t\x00%t\x00%s\x00%t\x00%d",
		s.Kind, s.Source, s.MainClass, s.MainMethod,
		s.Slots, s.TreeHeight, s.Traditional, s.TrackControl, s.Prune, s.Legacy,
		s.Mode, s.ObjCtx, s.Top)
	return hex.EncodeToString(h.Sum(nil))
}

// Request is one job submission: the spec plus its scheduling envelope.
type Request struct {
	Spec Spec `json:"spec"`
	// Priority orders jobs within the queue — higher runs earlier; equal
	// priorities run in submission order.
	Priority int `json:"priority,omitempty"`
	// Deadline bounds the job's total lifetime from submission, across all
	// retry attempts (0 = no per-job deadline).
	Deadline time.Duration `json:"deadline,omitempty"`
}
