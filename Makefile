.PHONY: check build test bench

check:
	sh scripts/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	sh scripts/bench.sh
