package deadness

import (
	"testing"

	"lowutil/internal/costben"
	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/mjc"
	"lowutil/internal/profiler"
	"lowutil/internal/testprogs"
)

func runProfiled(t *testing.T, prog *ir.Program) (*profiler.Profiler, *interp.Machine) {
	t.Helper()
	p := profiler.New(prog, profiler.Options{Slots: 16})
	m := interp.New(prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return p, m
}

func TestDeadValuesDetected(t *testing.T) {
	prog, err := mjc.Compile(`
class Main {
  static void main() {
    int dead = 0;
    int live = 0;
    for (int i = 0; i < 100; i = i + 1) {
      dead = dead + i * 3;   // never consumed anywhere
      live = live + i;
    }
    print(live);
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	p, m := runProfiled(t, prog)
	res := Analyze(p.G, m.Steps)
	if res.DeadFreq < 100 {
		t.Errorf("DeadFreq = %d, want >= 100 (the dead accumulator loop)", res.DeadFreq)
	}
	if res.IPD() <= 0 {
		t.Errorf("IPD = %v, want > 0", res.IPD())
	}
	if res.NLD() <= 0 {
		t.Errorf("NLD = %v, want > 0", res.NLD())
	}
	if res.IPD() > 100 || res.IPP() > 100 || res.NLD() > 100 {
		t.Errorf("percentages out of range: IPD=%v IPP=%v NLD=%v", res.IPD(), res.IPP(), res.NLD())
	}
}

func TestPredicateOnlyValues(t *testing.T) {
	prog, err := mjc.Compile(`
class Main {
  static void main() {
    int guard = 0;
    int printed = 0;
    for (int i = 0; i < 50; i = i + 1) {
      guard = guard + 1;              // used only in the predicate below
      if (guard > 1000) { printed = printed + 1; }
    }
    print(printed);
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	p, m := runProfiled(t, prog)
	res := Analyze(p.G, m.Steps)
	if res.PredFreq < 50 {
		t.Errorf("PredFreq = %d, want >= 50 (the guard accumulator)", res.PredFreq)
	}
	if res.IPP() <= 0 {
		t.Errorf("IPP = %v, want > 0", res.IPP())
	}
}

func TestFullyConsumedProgramHasLowIPD(t *testing.T) {
	prog, err := mjc.Compile(`
class Main {
  static void main() {
    int s = 0;
    for (int i = 0; i < 100; i = i + 1) { s = s + i; }
    print(s);
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	p, m := runProfiled(t, prog)
	res := Analyze(p.G, m.Steps)
	if res.DeadFreq != 0 {
		t.Errorf("DeadFreq = %d, want 0 (everything flows to print or predicates)", res.DeadFreq)
	}
}

func TestDeadCycleDetected(t *testing.T) {
	// Two mutually-dependent accumulators, both dead: the SCC condensation
	// must classify the whole cycle dead.
	prog, err := mjc.Compile(`
class Main {
  static void main() {
    int a = 1;
    int b = 2;
    for (int i = 0; i < 40; i = i + 1) {
      int tmp = a;
      a = b + 1;
      b = tmp + 1;
    }
    print(i0());
  }
  static int i0() { return 0; }
}`)
	if err != nil {
		t.Fatal(err)
	}
	p, m := runProfiled(t, prog)
	res := Analyze(p.G, m.Steps)
	if res.DeadFreq < 80 {
		t.Errorf("DeadFreq = %d, want >= 80 (the a/b cycle)", res.DeadFreq)
	}
}

func TestFigure3DeadElements(t *testing.T) {
	// In the Figure 3 program, array element stores are ultimately dead.
	fig := testprogs.Figure3(30, 10)
	p, m := runProfiled(t, fig.Prog)
	res := Analyze(p.G, m.Steps)
	if res.IPD() <= 0 {
		t.Errorf("IPD = %v, want > 0", res.IPD())
	}
	// Cross-check with costben: the unread array elements imply non-zero
	// dead mass at least as large as the element stores (30 instances).
	if res.DeadFreq < 30 {
		t.Errorf("DeadFreq = %d, want >= 30", res.DeadFreq)
	}
	_ = costben.NewAnalysis(p.G)
}

func TestOutcomesExposed(t *testing.T) {
	fig := testprogs.Figure3(5, 3)
	p, m := runProfiled(t, fig.Prog)
	res := Analyze(p.G, m.Steps)
	if len(res.Out) != res.Nodes {
		t.Errorf("Out has %d entries for %d nodes", len(res.Out), res.Nodes)
	}
	// Consumers never count in Instances.
	var consumerFreq int64
	p.G.Nodes(func(n *depgraph.Node) {
		if n.IsConsumer() {
			consumerFreq += n.Freq()
		}
	})
	if res.Instances+consumerFreq != p.G.TotalFreq() {
		t.Errorf("instance accounting off: %d + %d != %d",
			res.Instances, consumerFreq, p.G.TotalFreq())
	}
}

func TestZeroDenominator(t *testing.T) {
	prog := testprogs.Figure1()
	g := depgraph.New(prog.Prog)
	res := Analyze(g, 0)
	if res.IPD() != 0 || res.IPP() != 0 || res.NLD() != 0 {
		t.Error("empty graph must yield zero percentages")
	}
}
