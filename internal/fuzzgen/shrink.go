package fuzzgen

// Greedy test-case shrinking. Given a failing program and a predicate that
// reports whether a candidate source still reproduces the same failure, the
// shrinker repeatedly tries deletions at class, method, and statement
// granularity — plus unwrapping a block into its body and dropping else
// branches — keeping each mutation only when the predicate still holds.
// Pinned statements (final returns, while-loop decrements, recursion
// guards) are never deleted: removing them can only produce non-compiling
// or non-terminating candidates, which the predicate would reject anyway,
// so skipping them saves predicate evaluations. Passes repeat until a full
// pass makes no progress or the evaluation budget runs out.

// shrinkBudget caps predicate evaluations per shrink so a pathological
// failure cannot stall the fuzz run; deletions-only mutation means the
// result is never larger than the input regardless of where the budget
// lands.
const shrinkBudget = 2000

type shrinker struct {
	fails   func(src string) bool
	budget  int
	changed bool
}

// Shrink minimizes p while fails(render) stays true. The input program is
// not modified; the returned program is the smallest reproducer found.
func Shrink(p *Prog, fails func(src string) bool) *Prog {
	s := &shrinker{fails: fails, budget: shrinkBudget}
	cur := p.clone()
	for {
		s.changed = false
		s.pass(cur)
		if !s.changed || s.budget <= 0 {
			return cur
		}
	}
}

// try re-renders cur after an in-place mutation and reports whether the
// mutation should be kept.
func (s *shrinker) try(cur *Prog) bool {
	if s.budget <= 0 {
		return false
	}
	s.budget--
	if s.fails(cur.Render()) {
		s.changed = true
		return true
	}
	return false
}

func (s *shrinker) pass(cur *Prog) {
	// Whole classes first: one successful deletion removes the most text.
	for i := len(cur.Classes) - 1; i >= 0; i-- {
		if s.budget <= 0 {
			return
		}
		c := cur.Classes[i]
		if c == nil || c.Name == "Main" {
			continue
		}
		cur.Classes[i] = nil
		if !s.try(cur) {
			cur.Classes[i] = c
		}
	}
	// Then methods, keeping each class's entry point structure intact.
	for _, c := range cur.Classes {
		if c == nil {
			continue
		}
		for j := len(c.Methods) - 1; j >= 0; j-- {
			if s.budget <= 0 {
				return
			}
			m := c.Methods[j]
			if m == nil || (c.Name == "Main" && m.Name == "main") {
				continue
			}
			c.Methods[j] = nil
			if !s.try(cur) {
				c.Methods[j] = m
			}
		}
	}
	// Then fields that no surviving code may reference anymore.
	for _, c := range cur.Classes {
		if c == nil {
			continue
		}
		for j := len(c.Fields) - 1; j >= 0; j-- {
			if s.budget <= 0 {
				return
			}
			saved := c.Fields
			c.Fields = append(append([]Field(nil), saved[:j]...), saved[j+1:]...)
			if !s.try(cur) {
				c.Fields = saved
			}
		}
	}
	// Finally statements, innermost lists included.
	for _, c := range cur.Classes {
		if c == nil {
			continue
		}
		for _, m := range c.Methods {
			if m == nil {
				continue
			}
			s.shrinkStmts(cur, &m.Body)
		}
	}
}

// shrinkStmts tries, for each statement in the list: deleting it, replacing
// a block with its own body (unwrap), and dropping an else branch; then
// recurses into surviving blocks.
func (s *shrinker) shrinkStmts(cur *Prog, list *[]*Stmt) {
	for i := len(*list) - 1; i >= 0; i-- {
		if s.budget <= 0 {
			return
		}
		st := (*list)[i]
		if st == nil {
			continue
		}
		if !st.Pinned {
			saved := *list
			*list = spliceStmts(saved, i, nil)
			if s.try(cur) {
				continue
			}
			*list = saved
			if st.Head != "" && len(st.Body) > 0 && allUnpinnedCompatible(st) {
				*list = spliceStmts(saved, i, st.Body)
				if s.try(cur) {
					continue
				}
				*list = saved
			}
		}
		if st.Head != "" {
			if st.Else != nil {
				savedElse := st.Else
				st.Else = nil
				if !s.try(cur) {
					st.Else = savedElse
				}
			}
			s.shrinkStmts(cur, &st.Body)
			if st.Else != nil {
				s.shrinkStmts(cur, &st.Else)
			}
		}
	}
}

// spliceStmts returns list with element i replaced by repl (deleted when
// repl is nil), without mutating the input slice.
func spliceStmts(list []*Stmt, i int, repl []*Stmt) []*Stmt {
	out := make([]*Stmt, 0, len(list)+len(repl))
	out = append(out, list[:i]...)
	out = append(out, repl...)
	out = append(out, list[i+1:]...)
	return out
}

// allUnpinnedCompatible reports whether a block can be unwrapped into its
// parent: a body that contains a pinned statement (a while-counter
// decrement, say) belongs to its loop and must not leak into the enclosing
// scope.
func allUnpinnedCompatible(st *Stmt) bool {
	for _, b := range st.Body {
		if b != nil && b.Pinned {
			return false
		}
	}
	return true
}
