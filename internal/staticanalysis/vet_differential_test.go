package staticanalysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lowutil/internal/interproc"
	"lowutil/internal/workloads"
)

// Differential test between the dense (reaching-definitions) and SSA vet
// engines. The SSA engine is allowed to differ from the dense one only in
// directions that are precision improvements, pinned per kind:
//
//	dead-store          dense ⊆ ssa   (transitive dead chains only add)
//	unused-alloc        dense ⊆ ssa   (phi-aware closure only adds)
//	unreachable-code    dense ⊆ ssa   (extra reports are SCCP-proven blocks)
//	uninit-read         ssa ⊆ dense   (executable-edge taint only removes)
//	callee-clobbered    dense ⊆ ssa ∪ ssa-dead-stores
//	write-only-field    identical     (the check is engine-independent)
//	confined-alloc-in-loop, copy-chain
//	                    identical     (both engines call the shared escape
//	                                   analysis helper)
//
// The callee-clobbered relation is looser because the SSA engine classifies a
// store whose value transitively feeds only dead computations as a dead store
// even when its direct use is an ignored call argument sitting in dead code.
//
// The per-workload finding counts for both engines are golden-filed in
// testdata/vet/differential.golden so a precision regression in either
// engine — or an SSA "improvement" that silently explodes the report — shows
// up as a diff.

type findingKey struct {
	Class, Method string
	PC            int
}

func keySet(fs []Finding, kind Kind) map[findingKey]bool {
	out := make(map[findingKey]bool)
	for _, f := range fs {
		if f.Kind == kind {
			out[findingKey{f.Class, f.Method, f.PC}] = true
		}
	}
	return out
}

func checkSubset(t *testing.T, what string, sub, super map[findingKey]bool) {
	t.Helper()
	for k := range sub {
		if !super[k] {
			t.Errorf("%s: %s.%s:%d found by the smaller engine only", what, k.Class, k.Method, k.PC)
		}
	}
}

func TestVetDifferential(t *testing.T) {
	var report strings.Builder
	for _, w := range workloads.All() {
		w := w
		prog, err := w.Compile(1)
		if err != nil {
			t.Fatal(err)
		}
		an := interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA})
		dense := VetDenseWith(prog, an)
		sparse := VetWith(prog, an)

		t.Run(w.Name, func(t *testing.T) {
			checkSubset(t, "dead-store (dense ⊆ ssa)",
				keySet(dense, KindDeadStore), keySet(sparse, KindDeadStore))
			checkSubset(t, "unused-alloc (dense ⊆ ssa)",
				keySet(dense, KindUnusedAlloc), keySet(sparse, KindUnusedAlloc))
			checkSubset(t, "unreachable (dense ⊆ ssa)",
				keySet(dense, KindUnreachable), keySet(sparse, KindUnreachable))
			checkSubset(t, "uninit-read (ssa ⊆ dense)",
				keySet(sparse, KindUninitRead), keySet(dense, KindUninitRead))
			ccSuper := keySet(sparse, KindCalleeClobbered)
			for k := range keySet(sparse, KindDeadStore) {
				ccSuper[k] = true
			}
			checkSubset(t, "callee-clobbered (dense ⊆ ssa ∪ ssa-dead)",
				keySet(dense, KindCalleeClobbered), ccSuper)

			// The escape lints come from one shared helper: exact equality.
			for _, k := range []Kind{KindConfinedAllocInLoop, KindCopyChain} {
				checkSubset(t, k.String()+" (dense ⊆ ssa)", keySet(dense, k), keySet(sparse, k))
				checkSubset(t, k.String()+" (ssa ⊆ dense)", keySet(sparse, k), keySet(dense, k))
			}

			// Extra unreachable reports must carry the SCCP message.
			denseUnreach := keySet(dense, KindUnreachable)
			for _, f := range sparse {
				if f.Kind != KindUnreachable {
					continue
				}
				k := findingKey{f.Class, f.Method, f.PC}
				if !denseUnreach[k] && !strings.Contains(f.Detail, "constant propagation") {
					t.Errorf("extra unreachable report without SCCP attribution: %v", f)
				}
			}

			// Write-only fields are computed identically by both engines.
			var dWO, sWO []string
			for _, f := range dense {
				if f.Kind == KindWriteOnlyField {
					dWO = append(dWO, f.String())
				}
			}
			for _, f := range sparse {
				if f.Kind == KindWriteOnlyField {
					sWO = append(sWO, f.String())
				}
			}
			sort.Strings(dWO)
			sort.Strings(sWO)
			if strings.Join(dWO, "\n") != strings.Join(sWO, "\n") {
				t.Errorf("write-only-field reports differ:\ndense: %v\nssa:   %v", dWO, sWO)
			}
		})

		report.WriteString(w.Name)
		for _, k := range []Kind{KindDeadStore, KindWriteOnlyField, KindUnusedAlloc, KindUnreachable, KindUninitRead, KindCalleeClobbered, KindConfinedAllocInLoop, KindCopyChain} {
			nd, ns := 0, 0
			for _, f := range dense {
				if f.Kind == k {
					nd++
				}
			}
			for _, f := range sparse {
				if f.Kind == k {
					ns++
				}
			}
			fmt.Fprintf(&report, " %s=%d/%d", k, nd, ns)
		}
		report.WriteByte('\n')
	}

	path := filepath.Join("testdata", "vet", "differential.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(report.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if report.String() != string(want) {
		t.Errorf("dense/ssa finding counts diverge from %s (regenerate with -update if intended):\n--- got\n%s--- want\n%s",
			path, report.String(), want)
	}
}
