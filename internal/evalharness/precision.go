package evalharness

import (
	"fmt"
	"math"
	"sort"

	"lowutil/internal/costben"
	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/interproc"
	"lowutil/internal/profiler"
	"lowutil/internal/workloads"
)

// The static-precision harness: how well do the static cost/benefit bounds
// rank heap locations compared to the dynamic profile's ground truth? Both
// sides score a location as cost/(1+benefit); the harness aggregates scores
// per (allocation-site, field) key — the granularity the two sides share —
// and reports the Spearman rank correlation between the dynamic ranking and
// the static one, unweighted (PR 3 bounds) and frequency-weighted (loop
// forest + SCCP trip counts). The weighted column is the headline number the
// loop-aware cost model must move.

// siteKey identifies a heap location at the granularity both the dynamic and
// the static analysis can name: the allocation-site instruction (-1 for a
// static field) plus the field (interproc.ElemField for array elements).
type siteKey struct {
	Site  int
	Field int
}

// locScore accumulates cost and benefit sums for one key.
type locScore struct {
	cost, benefit float64
	consumed      bool
}

// score is the low-utility ranking score. A consumed location is, by
// Definition 6, never low-utility, so it scores an exact 0: every consumed
// location ties at the bottom of its ranking rather than injecting an
// arbitrary internal order into the correlation.
func (s locScore) score() float64 {
	if s.consumed {
		return 0
	}
	return s.cost / (1 + s.benefit)
}

// PrecisionRow is the harness result for one workload.
type PrecisionRow struct {
	Name    string
	Matched int     // keys present in both rankings
	RhoFlat float64 // Spearman(dynamic, unweighted static bounds)
	RhoFreq float64 // Spearman(dynamic, frequency-weighted static bounds)
}

// String renders the row in the fixed-width form the precision golden pins.
func (r *PrecisionRow) String() string {
	return fmt.Sprintf("%-12s matched=%-3d rhoFlat=%+.4f rhoFreq=%+.4f",
		r.Name, r.Matched, r.RhoFlat, r.RhoFreq)
}

// Precision runs the harness for one workload at the given scale.
func Precision(name string, scale int) (*PrecisionRow, error) {
	w := workloads.ByName(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	prog, err := w.Compile(scale)
	if err != nil {
		return nil, err
	}

	// Dynamic ground truth: profile the run, score every stored location.
	p := profiler.New(prog, profiler.Options{Slots: 16})
	m := interp.New(prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		return nil, err
	}
	ca := costben.NewAnalysis(p.G)
	dyn := make(map[siteKey]*locScore)
	p.G.Locs(func(l depgraph.Loc) {
		stores := 0
		p.G.StoresOf(l, func(*depgraph.Node) { stores++ })
		if stores == 0 {
			return
		}
		k := siteKey{Site: -1, Field: l.Field}
		if l.Alloc != nil {
			k.Site = l.Alloc.In.ID
		}
		s := dyn[k]
		if s == nil {
			s = &locScore{}
			dyn[k] = s
		}
		s.cost += ca.RAC(l)
		if rab := ca.RAB(l); rab == costben.InfiniteRAB {
			s.consumed = true
		} else {
			s.benefit += rab
		}
	})

	// Static bounds, unweighted and frequency-weighted, on the same program.
	an := interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA})
	collect := func(bounds []interproc.LocBound, weighted bool) map[siteKey]*locScore {
		out := make(map[siteKey]*locScore)
		for i := range bounds {
			b := &bounds[i]
			k := siteKey{Site: -1, Field: b.Key.Field}
			if !b.Key.Static {
				k.Site = an.PT.Objects[b.Key.Obj].Site.ID
			}
			s := out[k]
			if s == nil {
				s = &locScore{}
				out[k] = s
			}
			if weighted {
				s.cost += b.WCost
				s.benefit += b.WBenefit
			} else {
				s.cost += float64(b.CostBound)
				s.benefit += float64(b.BenefitBound)
			}
			if b.Consumed {
				s.consumed = true
			}
		}
		return out
	}
	flat := collect(an.Slice.Bounds(), false)
	freq := collect(an.Bounds(), true)

	// Rank the intersection.
	var keys []siteKey
	for k := range dyn {
		if flat[k] != nil && freq[k] != nil {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Site != keys[j].Site {
			return keys[i].Site < keys[j].Site
		}
		return keys[i].Field < keys[j].Field
	})
	dScores := make([]float64, len(keys))
	fScores := make([]float64, len(keys))
	wScores := make([]float64, len(keys))
	for i, k := range keys {
		dScores[i] = dyn[k].score()
		fScores[i] = flat[k].score()
		wScores[i] = freq[k].score()
	}
	return &PrecisionRow{
		Name:    name,
		Matched: len(keys),
		RhoFlat: spearman(dScores, fScores),
		RhoFreq: spearman(dScores, wScores),
	}, nil
}

// spearman computes the Spearman rank correlation with tie-averaged ranks.
// Degenerate inputs (fewer than two points, or a constant vector) return 0.
func spearman(x, y []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	rx, ry := ranks(x), ranks(y)
	mx, my := mean(rx), mean(ry)
	var sxy, sxx, syy float64
	for i := range rx {
		dx, dy := rx[i]-mx, ry[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// ranks assigns 1-based ranks, averaging ties.
func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j < len(idx) && v[idx[j]] == v[idx[i]] {
			j++
		}
		r := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			out[idx[k]] = r
		}
		i = j
	}
	return out
}

func mean(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
