package taint

import (
	"testing"

	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/testprogs"
)

// sample wraps a Tracker and captures the cost of one slot right after a
// given instruction executes.
type sample struct {
	*Tracker
	instr *ir.Instr
	slot  int
	got   uint64
}

func (s *sample) Exec(ev *interp.Event) {
	s.Tracker.Exec(ev)
	if ev.In == s.instr {
		s.got = s.Tracker.CostOf(ev.Frame, s.slot)
	}
}

// AfterCall also samples, since call instructions are reported through the
// call hooks rather than Exec.
func (s *sample) AfterCall(in *ir.Instr, caller *interp.Frame, hasValue bool) {
	s.Tracker.AfterCall(in, caller, hasValue)
	if in == s.instr {
		s.got = s.Tracker.CostOf(caller, s.slot)
	}
}

func TestFigure1TaintDoubleCounts(t *testing.T) {
	fig := testprogs.Figure1()
	tr := New(fig.Prog)
	s := &sample{Tracker: tr, instr: fig.BInstr, slot: fig.BSlot}
	m := interp.New(fig.Prog)
	m.Tracer = s
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if s.got <= uint64(fig.DistinctCost) {
		t.Errorf("taint cost = %d, want > %d: double counting is the point", s.got, fig.DistinctCost)
	}
}

func TestSaturationInsteadOfOverflow(t *testing.T) {
	// An accumulator squaring its own cost every iteration overflows any
	// counter quickly; the tracker must saturate, not wrap.
	b := ir.NewBuilder()
	cls := b.Class("Main", nil)
	m := b.Method(cls, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 1)   // x
	mb.Const(1, 0)   // i
	mb.Const(2, 200) // n
	mb.Const(3, 1)   // one
	head := mb.If(1, ir.Ge, 2, -1)
	mb.Bin(0, ir.Add, 0, 0) // cost(x) ≈ 2*cost(x)+1 each round
	mb.Bin(1, ir.Add, 1, 3)
	mb.Goto(head)
	mb.Patch(head, mb.PC())
	mb.ReturnVoid()
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	tr := New(prog)
	vm := interp.New(prog)
	vm.Tracer = tr
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if !tr.Overflowed {
		t.Error("expected saturation: the paper notes 64-bit overflow 'for even moderate-size applications'")
	}
}

func TestCostsFlowThroughHeapAndCalls(t *testing.T) {
	b := ir.NewBuilder()
	cls := b.Class("Box", nil)
	f := b.Field(cls, "v", ir.IntType)
	main := b.Class("Main", nil)
	id := b.Method(main, "id", true, 1, ir.IntType)
	ib := b.Body(id)
	ib.Return(0)
	m := b.Method(main, "main", true, 0, nil)
	mb := b.Body(m)
	mb.Const(0, 2)          // cost 1
	mb.Bin(1, ir.Add, 0, 0) // cost 3
	mb.New(2, cls)
	mb.StoreField(2, f, 1)        // heap cost 4
	mb.LoadField(3, 2, f)         // cost 5
	samplePC := mb.Call(4, id, 3) // call adds 1 → 7 (arg 5 + return copy +1... )
	mb.ReturnVoid()
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	tr := New(prog)
	s := &sample{Tracker: tr, instr: &m.Code[samplePC], slot: 4}
	vm := interp.New(prog)
	vm.Tracer = s
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if s.got < 5 {
		t.Errorf("cost through heap+call = %d, want >= 5", s.got)
	}
}
