package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Disassemble renders the whole program as text, one method at a time, in a
// stable order. It is used by tests and the CLI's -dump flag.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	classes := make([]*Class, len(p.Classes))
	copy(classes, p.Classes)
	sort.Slice(classes, func(i, j int) bool { return classes[i].Name < classes[j].Name })
	for _, c := range classes {
		fmt.Fprintf(&sb, "class %s", c.Name)
		if c.Super != nil {
			fmt.Fprintf(&sb, " extends %s", c.Super.Name)
		}
		sb.WriteString(" {\n")
		for _, f := range c.Fields {
			fmt.Fprintf(&sb, "  field %s %s [slot %d]\n", f.Type, f.Name, f.Slot)
		}
		for _, m := range c.Methods {
			sb.WriteString(m.Disassemble("  "))
		}
		sb.WriteString("}\n")
	}
	return sb.String()
}

// Disassemble renders a single method body with the given indentation.
func (m *Method) Disassemble(indent string) string {
	var sb strings.Builder
	kind := "method"
	if m.Static {
		kind = "static method"
	}
	ret := "void"
	if m.Returns != nil {
		ret = m.Returns.String()
	}
	fmt.Fprintf(&sb, "%s%s %s %s(params=%d, locals=%d) {\n",
		indent, kind, ret, m.Name, m.Params, m.NumLocals)
	for pc := range m.Code {
		fmt.Fprintf(&sb, "%s  %3d: %s\n", indent, pc, m.Code[pc].String())
	}
	fmt.Fprintf(&sb, "%s}\n", indent)
	return sb.String()
}
