// Package ir defines the three-address-code intermediate representation that
// the whole system is built on.
//
// The PLDI 2010 paper states its algorithms over "a three-address-code
// representation of the program. In this representation, each statement
// corresponds to a bytecode instruction (i.e., it is either a copy assignment
// a=b or a computation a=b+c that contains only one operator)." This package
// is that representation: a Program holds Classes, Classes hold Fields and
// Methods, and a Method body is a flat slice of Instrs, each carrying a
// globally unique ID and costing one unit when executed.
//
// Programs are constructed either by the MJ front end
// (internal/lexer → internal/parser → internal/sem → internal/codegen)
// or directly through the Builder in this package.
package ir

import (
	"fmt"
	"sync/atomic"
)

// Kind classifies the runtime type of a value, field, or local slot.
type Kind uint8

const (
	// KindInvalid is the zero Kind; it never appears in a validated Program.
	KindInvalid Kind = iota
	// KindInt is a 64-bit signed integer. MJ's int and boolean types both
	// lower to KindInt (booleans use 0 and 1), mirroring how the JVM treats
	// booleans as ints in bytecode.
	KindInt
	// KindRef is a reference to a heap object (class instance or array) or
	// the null reference.
	KindRef
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindRef:
		return "ref"
	default:
		return "invalid"
	}
}

// Type describes a static MJ type. Elem is only meaningful for arrays.
type Type struct {
	Kind  Kind
	Class *Class // non-nil for class types
	Elem  *Type  // non-nil for array types
}

// IsArray reports whether t denotes an array type.
func (t *Type) IsArray() bool { return t != nil && t.Elem != nil }

// IsRef reports whether t is a reference type (class or array).
func (t *Type) IsRef() bool { return t != nil && t.Kind == KindRef }

func (t *Type) String() string {
	switch {
	case t == nil:
		return "void"
	case t.IsArray():
		return t.Elem.String() + "[]"
	case t.Class != nil:
		return t.Class.Name
	default:
		return t.Kind.String()
	}
}

// IntType and BoolType are the canonical primitive types shared by all
// programs; reference types are interned per Program.
var (
	IntType  = &Type{Kind: KindInt}
	BoolType = &Type{Kind: KindInt}
)

// Field is a member field of a Class. Fields are addressed by slot index at
// run time; the index is assigned when the class is sealed and includes
// superclass fields, so a subclass object's field slice embeds its parents'.
type Field struct {
	Name  string
	Type  *Type
	Class *Class // declaring class
	Slot  int    // index into Object.Fields
	ID    int    // globally unique field identifier (for copy profiling)
}

// QualifiedName returns "Class.field".
func (f *Field) QualifiedName() string { return f.Class.Name + "." + f.Name }

// StaticField is a class-level (static) field. Static fields live in
// Program-wide storage indexed by Slot.
type StaticField struct {
	Name  string
	Type  *Type
	Class *Class
	Slot  int // index into Machine.Statics
	ID    int
}

// QualifiedName returns "Class.field".
func (f *StaticField) QualifiedName() string { return f.Class.Name + "." + f.Name }

// Class is an MJ class: a named collection of fields and methods with single
// inheritance. The zero Class is not usable; create classes through
// Builder.Class.
type Class struct {
	Name     string
	Super    *Class
	Fields   []*Field  // declared fields only (not inherited)
	Methods  []*Method // declared methods only
	ID       int       // dense class index within the Program
	fieldsN  int       // total field slots incl. inherited (after seal)
	refSlots []bool    // per-slot: is the field reference-typed? (after seal)
	methods  map[string]*Method
}

// RefSlots reports, per runtime field slot, whether the field holds a
// reference (and therefore must be initialized to null on allocation).
func (c *Class) RefSlots() []bool { return c.refSlots }

// NumFieldSlots returns the number of runtime field slots an instance of c
// carries, including inherited fields.
func (c *Class) NumFieldSlots() int { return c.fieldsN }

// LookupMethod resolves name against c and its superclasses, implementing
// virtual dispatch: the most-derived declaration wins.
func (c *Class) LookupMethod(name string) *Method {
	for cl := c; cl != nil; cl = cl.Super {
		if m, ok := cl.methods[name]; ok {
			return m
		}
	}
	return nil
}

// LookupField resolves a field name against c and its superclasses.
func (c *Class) LookupField(name string) *Field {
	for cl := c; cl != nil; cl = cl.Super {
		for _, f := range cl.Fields {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// IsSubclassOf reports whether c equals or derives from other.
func (c *Class) IsSubclassOf(other *Class) bool {
	for cl := c; cl != nil; cl = cl.Super {
		if cl == other {
			return true
		}
	}
	return false
}

func (c *Class) String() string { return c.Name }

// Method is a callable MJ method. Params counts formal parameters; for
// instance methods slot 0 is the receiver ("this") and is included in Params.
// NumLocals is the total number of local slots (params first).
type Method struct {
	Name      string
	Class     *Class
	Static    bool
	Params    int
	NumLocals int
	Returns   *Type // nil for void
	Code      []Instr
	ID        int // dense method index within the Program

	// LocalNames optionally names local slots for diagnostics; may be short.
	LocalNames []string
}

// QualifiedName returns "Class.method".
func (m *Method) QualifiedName() string { return m.Class.Name + "." + m.Name }

// LocalName returns a human-readable name for local slot i.
func (m *Method) LocalName(i int) string {
	if i < len(m.LocalNames) && m.LocalNames[i] != "" {
		return m.LocalNames[i]
	}
	return fmt.Sprintf("v%d", i)
}

// Program is a sealed, validated IR program ready for interpretation.
type Program struct {
	Classes    []*Class
	Statics    []*StaticField
	Main       *Method  // entry point: a static, zero-argument method
	Instrs     []*Instr // all instructions, indexed by Instr.ID
	AllocSites []*Instr // instructions with Op OpNew or OpNewArray, by AllocSite index

	classByName map[string]*Class
	fieldsByID  []*Field
	NumFields   int // total instance-field declarations (for field ID space)

	// TabCache holds the interpreter's pre-decoded dispatch tables, keyed to
	// this program's lifetime so they are shared across machines and freed
	// with the program. Owned by internal/interp; other packages must not
	// touch it.
	TabCache atomic.Value
}

// ClassByName returns the class with the given name, or nil.
func (p *Program) ClassByName(name string) *Class { return p.classByName[name] }

// NumInstrs returns the number of static instructions in the program — the
// size of domain I in the paper.
func (p *Program) NumInstrs() int { return len(p.Instrs) }

// NumAllocSites returns the number of allocation sites (domain O).
func (p *Program) NumAllocSites() int { return len(p.AllocSites) }

// NumMethods returns the number of declared methods — the size of the dense
// Method.ID space (interpreter dispatch tables are indexed by it).
func (p *Program) NumMethods() int {
	n := 0
	for _, c := range p.Classes {
		n += len(c.Methods)
	}
	return n
}

// FieldByID returns the instance field with the given dense ID.
func (p *Program) FieldByID(id int) *Field { return p.fieldsByID[id] }
