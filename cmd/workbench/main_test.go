package main

import (
	"strings"
	"testing"

	"lowutil"
)

func TestCompileAllWorkloadsViaWorkbench(t *testing.T) {
	for _, name := range []string{"chart", "bloat", "tradesoap"} {
		prog := compile(name, 1)
		res, err := prog.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Output) == 0 {
			t.Errorf("%s: no output", name)
		}
	}
}

// TestWorkbenchSlicePanel: the -slice path compiles a workload and renders
// the static report through the facade without executing the program.
func TestWorkbenchSlicePanel(t *testing.T) {
	prog := compile("chart", 1)
	for _, opts := range []lowutil.SliceOptions{
		{},
		{Mode: "cha", ObjCtx: true, Top: 5},
	} {
		rep, err := prog.StaticSlice(opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !strings.Contains(rep, "static slice (mode=") {
			t.Errorf("%+v: malformed report:\n%s", opts, rep)
		}
	}
}
