package interp

import (
	"errors"
	"strings"
	"testing"

	"lowutil/internal/ir"
)

func TestValueStrings(t *testing.T) {
	if Null.String() != "null" {
		t.Errorf("Null = %q", Null.String())
	}
	if IntVal(-7).String() != "-7" {
		t.Errorf("IntVal = %q", IntVal(-7).String())
	}
	o := &Object{Class: &ir.Class{Name: "Foo"}, Seq: 3}
	if got := RefVal(o).String(); !strings.Contains(got, "Foo") {
		t.Errorf("RefVal = %q", got)
	}
	arr := &Object{Elems: make([]Value, 2), ElemT: ir.IntType, Seq: 4}
	if got := arr.String(); !strings.Contains(got, "int[2]") {
		t.Errorf("array String = %q", got)
	}
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{IntVal(0), false},
		{IntVal(1), true},
		{IntVal(-1), true},
		{Null, false},
		{RefVal(&Object{}), true},
	}
	for _, c := range cases {
		if c.v.Truthy() != c.want {
			t.Errorf("Truthy(%v) = %v", c.v, !c.want)
		}
	}
}

func TestRefIntComparisonTolerated(t *testing.T) {
	// Hand-built IR comparing a ref against an int: Eq is false, Ne true.
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.New(0, cls)
	mb.Const(1, 0)
	br := mb.If(0, ir.Eq, 1, -1)
	mb.Native(-1, ir.NativePrint, 1) // prints 0: not taken path
	mb.Patch(br, mb.PC())
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if len(vm.Output) != 1 {
		t.Errorf("ref==int should be false (fall through): output %v", vm.Output)
	}
}

func TestOrderedRefComparisonRejected(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.New(0, cls)
	mb.New(1, cls)
	mb.If(0, ir.Lt, 1, 3)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	var vmErr *VMError
	if err := vm.Run(); !errors.As(err, &vmErr) || vmErr.Kind != ErrType {
		t.Fatalf("want type error, got %v", err)
	}
}

func TestArithmeticOnRefRejected(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.New(0, cls)
	mb.Const(1, 1)
	mb.Bin(2, ir.Add, 0, 1)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	var vmErr *VMError
	if err := vm.Run(); !errors.As(err, &vmErr) || vmErr.Kind != ErrType {
		t.Fatalf("want type error, got %v", err)
	}
}

func TestNegativeArrayLength(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, -3)
	mb.NewArray(1, ir.IntType, 0)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	var vmErr *VMError
	if err := vm.Run(); !errors.As(err, &vmErr) || vmErr.Kind != ErrBounds {
		t.Fatalf("want bounds error, got %v", err)
	}
}

func TestCallOnNullReceiverNamesMethod(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	foo := bd.Method(cls, "foo", false, 1, ir.IntType)
	fb := bd.Body(foo)
	fb.Const(1, 1)
	fb.Return(1)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Null(0)
	mb.Call(1, foo, 0)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	err = vm.Run()
	var vmErr *VMError
	if !errors.As(err, &vmErr) || vmErr.Kind != ErrNullDeref {
		t.Fatalf("want null deref, got %v", err)
	}
	if !strings.Contains(err.Error(), "Main.foo") {
		t.Errorf("error should name the callee: %v", err)
	}
}

func TestVMErrorFormat(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	fx := bd.Field(cls, "x", ir.IntType)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Null(0)
	mb.LoadField(1, 0, fx)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	err = vm.Run()
	msg := err.Error()
	for _, frag := range []string{"null dereference", "Main.main", "pc 1"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error %q missing %q", msg, frag)
		}
	}
}

func TestNopTracerDoesNotPerturb(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, 21)
	mb.Const(1, 2)
	mb.Bin(2, ir.Mul, 0, 1)
	mb.Native(-1, ir.NativePrint, 2)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	plain := New(prog)
	if err := plain.Run(); err != nil {
		t.Fatal(err)
	}
	traced := New(prog)
	traced.Tracer = NopTracer{}
	if err := traced.Run(); err != nil {
		t.Fatal(err)
	}
	if plain.Steps != traced.Steps || plain.Output[0] != traced.Output[0] {
		t.Error("NopTracer perturbed execution")
	}
}

func TestNativeTimeMonotonic(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Native(0, ir.NativeTime)
	mb.Native(1, ir.NativeTime)
	mb.Native(2, ir.NativeTime)
	mb.Native(-1, ir.NativePrint, 0)
	mb.Native(-1, ir.NativePrint, 1)
	mb.Native(-1, ir.NativePrint, 2)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if !(vm.Output[0] < vm.Output[1] && vm.Output[1] < vm.Output[2]) {
		t.Errorf("time not monotonic: %v", vm.Output)
	}
}

func TestCallMethodArgCount(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	id := bd.Method(cls, "id", true, 1, ir.IntType)
	ib := bd.Body(id)
	ib.Return(0)
	m := bd.Method(cls, "main", true, 0, nil)
	bd.Body(m).ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	if _, err := vm.CallMethod(id); err == nil {
		t.Error("want arg-count error")
	}
	got, err := vm.CallMethod(id, IntVal(5))
	if err != nil || got.I != 5 {
		t.Errorf("CallMethod = %v, %v", got, err)
	}
}

// depthTracer records the maximum observed call depth.
type depthTracer struct {
	NopTracer
	m   *Machine
	max int
}

func (d *depthTracer) EnterMethod(fr *Frame, recv *Object) {
	if depth := d.m.Depth(); depth > d.max {
		d.max = depth
	}
}

func TestDepthVisibleToTracers(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	rec := bd.Method(cls, "rec", true, 1, ir.IntType)
	rb := bd.Body(rec)
	rb.Const(1, 0)
	br := rb.If(0, ir.Gt, 1, -1)
	rb.Return(0)
	rb.Patch(br, rb.PC())
	rb.Const(2, 1)
	rb.Bin(3, ir.Sub, 0, 2)
	rb.Call(4, rec, 3)
	rb.Return(4)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, 5)
	mb.Call(1, rec, 0)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	vm := New(prog)
	dt := &depthTracer{m: vm}
	vm.Tracer = dt
	if err := vm.Run(); err != nil {
		t.Fatal(err)
	}
	if dt.max < 6 { // main + rec(5..0) shares at least 6 levels
		t.Errorf("max depth = %d, want >= 6", dt.max)
	}
}
