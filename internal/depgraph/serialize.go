package depgraph

// Serialization implements the deployment mode §3.2 describes: "these
// analyses … could be easily migrated to an offline heap analysis tool …
// the JVM only needs to write Gcost to external storage". Encode dumps a
// finished graph; Decode reconstructs it against the same program, after
// which every analysis (costben, deadness, clients) runs offline.
//
// The format is a versioned JSON envelope: nodes are serialized with dense
// indices, edges and location tables reference those indices, and a program
// fingerprint (instruction count + allocation-site count) guards against
// loading a graph into the wrong program.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"lowutil/internal/ir"
)

const serialVersion = 1

type serialGraph struct {
	Version   int             `json:"version"`
	NumInstrs int             `json:"numInstrs"`
	NumSites  int             `json:"numSites"`
	Nodes     []serialNode    `json:"nodes"`
	DepEdges  [][2]int        `json:"depEdges"`
	RefEdges  [][2]int        `json:"refEdges"`
	Children  []serialLocEdge `json:"children"`
	LocStores []serialLocEdge `json:"locStores"`
	LocLoads  []serialLocEdge `json:"locLoads"`
}

type serialNode struct {
	Instr int   `json:"i"`
	D     int   `json:"d"`
	Freq  int64 `json:"f"`
	Eff   uint8 `json:"e"`
	// EffAlloc is the node index of the effect location's allocation node
	// (-1 for statics / none); EffField the field.
	EffAlloc int `json:"ea"`
	EffField int `json:"ef"`
}

// serialLocEdge relates an abstract location (alloc node index or -1 for
// static, field) to a node index.
type serialLocEdge struct {
	Alloc int `json:"a"`
	Field int `json:"f"`
	Node  int `json:"n"`
}

// Encode serializes the graph. The output is deterministic: nodes are
// ordered by (instruction, d) and edge lists are sorted.
func (g *Graph) Encode(w io.Writer) error {
	nodes := make([]*Node, len(g.all))
	copy(nodes, g.all)
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].In.ID != nodes[j].In.ID {
			return nodes[i].In.ID < nodes[j].In.ID
		}
		return nodes[i].D < nodes[j].D
	})
	idx := make(map[*Node]int, len(nodes))
	for i, n := range nodes {
		idx[n] = i
	}
	nodeIdx := func(n *Node) int {
		if n == nil {
			return -1
		}
		return idx[n]
	}

	sg := serialGraph{
		Version:   serialVersion,
		NumInstrs: g.Prog.NumInstrs(),
		NumSites:  g.Prog.NumAllocSites(),
	}
	for _, n := range nodes {
		sg.Nodes = append(sg.Nodes, serialNode{
			Instr:    n.In.ID,
			D:        n.D,
			Freq:     n.Freq(),
			Eff:      uint8(n.Eff),
			EffAlloc: nodeIdx(n.EffLoc.Alloc),
			EffField: n.EffLoc.Field,
		})
		g.depSets[n.id].each(g.all, func(d *Node) {
			sg.DepEdges = append(sg.DepEdges, [2]int{idx[n], idx[d]})
		})
		g.refSets[n.id].each(g.all, func(r *Node) {
			sg.RefEdges = append(sg.RefEdges, [2]int{idx[n], idx[r]})
		})
	}
	sortPairs := func(ps [][2]int) {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i][0] != ps[j][0] {
				return ps[i][0] < ps[j][0]
			}
			return ps[i][1] < ps[j][1]
		})
	}
	sortPairs(sg.DepEdges)
	sortPairs(sg.RefEdges)

	sortLocEdges := func(out []serialLocEdge) []serialLocEdge {
		sort.Slice(out, func(i, j int) bool {
			if out[i].Alloc != out[j].Alloc {
				return out[i].Alloc < out[j].Alloc
			}
			if out[i].Field != out[j].Field {
				return out[i].Field < out[j].Field
			}
			return out[i].Node < out[j].Node
		})
		return out
	}
	if g.legacy {
		locEdges := func(m map[Loc]map[*Node]struct{}) []serialLocEdge {
			var out []serialLocEdge
			for loc, set := range m {
				for n := range set {
					out = append(out, serialLocEdge{Alloc: nodeIdx(loc.Alloc), Field: loc.Field, Node: idx[n]})
				}
			}
			return sortLocEdges(out)
		}
		sg.Children = locEdges(g.ptChildren)
		sg.LocStores = locEdges(g.locStores)
		sg.LocLoads = locEdges(g.locLoads)
	} else {
		var children, stores, loads []serialLocEdge
		for i := range g.locEntries {
			e := &g.locEntries[i]
			a, f := nodeIdx(e.loc.Alloc), e.loc.Field
			e.children.each(g.all, func(c *Node) {
				children = append(children, serialLocEdge{Alloc: a, Field: f, Node: idx[c]})
			})
			for _, id := range e.stores {
				stores = append(stores, serialLocEdge{Alloc: a, Field: f, Node: idx[g.all[id]]})
			}
			for _, id := range e.loads {
				loads = append(loads, serialLocEdge{Alloc: a, Field: f, Node: idx[g.all[id]]})
			}
		}
		sg.Children = sortLocEdges(children)
		sg.LocStores = sortLocEdges(stores)
		sg.LocLoads = sortLocEdges(loads)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&sg)
}

// Decode reconstructs a graph serialized by Encode against prog, which
// must be the same program (checked by fingerprint).
func Decode(r io.Reader, prog *ir.Program) (*Graph, error) {
	var sg serialGraph
	if err := json.NewDecoder(r).Decode(&sg); err != nil {
		return nil, fmt.Errorf("depgraph: decode: %w", err)
	}
	if sg.Version != serialVersion {
		return nil, fmt.Errorf("depgraph: unsupported version %d", sg.Version)
	}
	if sg.NumInstrs != prog.NumInstrs() || sg.NumSites != prog.NumAllocSites() {
		return nil, fmt.Errorf("depgraph: graph was recorded for a different program (%d/%d instrs, %d/%d sites)",
			sg.NumInstrs, prog.NumInstrs(), sg.NumSites, prog.NumAllocSites())
	}

	g := New(prog)
	nodes := make([]*Node, len(sg.Nodes))
	for i, sn := range sg.Nodes {
		if sn.Instr < 0 || sn.Instr >= prog.NumInstrs() {
			return nil, fmt.Errorf("depgraph: node %d references bad instruction %d", i, sn.Instr)
		}
		n := g.Node(prog.Instrs[sn.Instr], sn.D)
		n.SetFreq(sn.Freq)
		n.Eff = EffectKind(sn.Eff)
		nodes[i] = n
	}
	at := func(i int) (*Node, error) {
		if i == -1 {
			return nil, nil
		}
		if i < 0 || i >= len(nodes) {
			return nil, fmt.Errorf("depgraph: bad node index %d", i)
		}
		return nodes[i], nil
	}
	for i, sn := range sg.Nodes {
		alloc, err := at(sn.EffAlloc)
		if err != nil {
			return nil, err
		}
		nodes[i].EffLoc = Loc{Alloc: alloc, Field: sn.EffField}
	}
	for _, e := range sg.DepEdges {
		from, err := at(e[0])
		if err != nil {
			return nil, err
		}
		to, err := at(e[1])
		if err != nil {
			return nil, err
		}
		g.AddDep(from, to)
	}
	for _, e := range sg.RefEdges {
		from, err := at(e[0])
		if err != nil {
			return nil, err
		}
		to, err := at(e[1])
		if err != nil {
			return nil, err
		}
		g.AddRef(from, to)
	}
	for _, le := range sg.Children {
		alloc, err := at(le.Alloc)
		if err != nil {
			return nil, err
		}
		child, err := at(le.Node)
		if err != nil {
			return nil, err
		}
		g.AddChild(Loc{Alloc: alloc, Field: le.Field}, child)
	}
	for _, le := range sg.LocStores {
		alloc, err := at(le.Alloc)
		if err != nil {
			return nil, err
		}
		n, err := at(le.Node)
		if err != nil {
			return nil, err
		}
		g.AddLocStore(Loc{Alloc: alloc, Field: le.Field}, n)
	}
	for _, le := range sg.LocLoads {
		alloc, err := at(le.Alloc)
		if err != nil {
			return nil, err
		}
		n, err := at(le.Node)
		if err != nil {
			return nil, err
		}
		g.AddLocLoad(Loc{Alloc: alloc, Field: le.Field}, n)
	}
	return g, nil
}
