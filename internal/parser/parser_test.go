package parser

import (
	"strings"
	"testing"

	"lowutil/internal/ast"
	"lowutil/internal/lexer"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestClassShape(t *testing.T) {
	p := parse(t, `
class Point extends Shape {
  int x;
  int[] coords;
  Point next;
  static int make(int a, boolean b) { return a; }
  void reset() { }
}`)
	if len(p.Classes) != 1 {
		t.Fatalf("classes = %d", len(p.Classes))
	}
	c := p.Classes[0]
	if c.Name != "Point" || c.Extends != "Shape" {
		t.Errorf("class header wrong: %s extends %s", c.Name, c.Extends)
	}
	if len(c.Fields) != 3 || len(c.Methods) != 2 {
		t.Fatalf("members: %d fields %d methods", len(c.Fields), len(c.Methods))
	}
	if c.Fields[1].Type.String() != "int[]" {
		t.Errorf("coords type = %s", c.Fields[1].Type)
	}
	if !c.Methods[0].Static || c.Methods[0].Returns == nil {
		t.Error("make should be static int")
	}
	if c.Methods[1].Static || c.Methods[1].Returns != nil {
		t.Error("reset should be instance void")
	}
	dump := ast.Dump(p)
	for _, frag := range []string{"class Point extends Shape", "field int x", "static method int make(int a, boolean b)"} {
		if !strings.Contains(dump, frag) {
			t.Errorf("dump missing %q:\n%s", frag, dump)
		}
	}
}

func TestPrecedenceTree(t *testing.T) {
	p := parse(t, `class C { int f() { return 1 + 2 * 3; } }`)
	ret := p.Classes[0].Methods[0].Body.Stmts[0].(*ast.ReturnStmt)
	add, ok := ret.Value.(*ast.BinaryExpr)
	if !ok || add.Op != lexer.Plus {
		t.Fatalf("top = %T", ret.Value)
	}
	mul, ok := add.R.(*ast.BinaryExpr)
	if !ok || mul.Op != lexer.Star {
		t.Fatalf("rhs = %T", add.R)
	}
}

func TestShortCircuitBindsLooserThanCompare(t *testing.T) {
	p := parse(t, `class C { boolean f(int a, int b) { return a < 1 && b > 2 || a == b; } }`)
	ret := p.Classes[0].Methods[0].Body.Stmts[0].(*ast.ReturnStmt)
	or, ok := ret.Value.(*ast.BinaryExpr)
	if !ok || or.Op != lexer.PipePipe {
		t.Fatalf("top = %v", ret.Value)
	}
	and, ok := or.L.(*ast.BinaryExpr)
	if !ok || and.Op != lexer.AmpAmp {
		t.Fatalf("left = %v", or.L)
	}
}

func TestPostfixChains(t *testing.T) {
	p := parse(t, `class C { int f(C c) { return c.next.vals[3].length; } }`)
	ret := p.Classes[0].Methods[0].Body.Stmts[0].(*ast.ReturnStmt)
	ln, ok := ret.Value.(*ast.LenExpr)
	if !ok {
		t.Fatalf("top = %T", ret.Value)
	}
	idx, ok := ln.X.(*ast.IndexExpr)
	if !ok {
		t.Fatalf("inner = %T", ln.X)
	}
	fa, ok := idx.X.(*ast.FieldAccess)
	if !ok || fa.Field != "vals" {
		t.Fatalf("field = %v", idx.X)
	}
}

func TestDeclVsExprDisambiguation(t *testing.T) {
	p := parse(t, `class C { void f() {
	  Foo x = null;       // decl: Ident Ident
	  Foo[] y = null;     // decl: Ident [] Ident
	  x.go();             // expr stmt
	  int[][] z = null;   // decl with dims
	} }`)
	stmts := p.Classes[0].Methods[0].Body.Stmts
	if _, ok := stmts[0].(*ast.VarDecl); !ok {
		t.Errorf("stmt0 = %T", stmts[0])
	}
	if _, ok := stmts[1].(*ast.VarDecl); !ok {
		t.Errorf("stmt1 = %T", stmts[1])
	}
	if _, ok := stmts[2].(*ast.ExprStmt); !ok {
		t.Errorf("stmt2 = %T", stmts[2])
	}
	if d, ok := stmts[3].(*ast.VarDecl); !ok || d.Type.Dims != 2 {
		t.Errorf("stmt3 = %#v", stmts[3])
	}
}

func TestForHeaderVariants(t *testing.T) {
	parse(t, `class C { void f() {
	  for (;;) { break; }
	  for (int i = 0; ; i = i + 1) { break; }
	  for (; true ;) { break; }
	  for (i = 0; i < 3; ) { i = i + 1; }
	} }`)
}

func TestNewForms(t *testing.T) {
	p := parse(t, `class C { void f() {
	  C c = new C();
	  int[] a = new int[10];
	  int[][] b = new int[5][];
	} }`)
	stmts := p.Classes[0].Methods[0].Body.Stmts
	if d := stmts[1].(*ast.VarDecl); d.Init.(*ast.NewArrayExpr).Dims != 1 {
		t.Error("new int[10] dims")
	}
	if d := stmts[2].(*ast.VarDecl); d.Init.(*ast.NewArrayExpr).Dims != 2 {
		t.Error("new int[5][] dims")
	}
}

func TestInstanceofPrecedence(t *testing.T) {
	p := parse(t, `class C { boolean f(C x) { return x instanceof C && true; } }`)
	ret := p.Classes[0].Methods[0].Body.Stmts[0].(*ast.ReturnStmt)
	and, ok := ret.Value.(*ast.BinaryExpr)
	if !ok || and.Op != lexer.AmpAmp {
		t.Fatalf("top = %T", ret.Value)
	}
	if _, ok := and.L.(*ast.InstanceOfExpr); !ok {
		t.Fatalf("left = %T", and.L)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{`class`, "expected identifier"},
		{`class C`, "expected {"},
		{`class C { int }`, "expected identifier"},
		{`class C { void f() { if x { } } }`, "expected ("},
		{`class C { void f() { int 3 = 4; } }`, "expected identifier"},
		{`class C { void f() { x = ; } }`, "unexpected token"},
		{`class C { void f() { foo(1,; } }`, "unexpected token"},
		{`class C { void f() { 3 = 4; } }`, "invalid assignment target"},
		{`class C { void f() { new int(); } }`, "cannot instantiate primitive"},
		{`class C { static int x; }`, "static fields are not supported"},
		{`class C { void f() { x + 1; } }`, "must be a call"},
		{`class C { void f() { return 1 } }`, "expected ;"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%q: want %q, got %v", c.src, c.frag, err)
		}
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Parse("class C {\n  void f() {\n    int 3;\n  }\n}")
	if err == nil || !strings.Contains(err.Error(), "3:") {
		t.Errorf("want line-3 position, got %v", err)
	}
}
