// Package interproc is the whole-program static layer over the IR: a call
// graph with CHA and RTA resolution of virtual dispatch, an Andersen-style
// flow-insensitive, field-sensitive points-to analysis whose heap abstraction
// mirrors the paper's object-sensitive encoding (allocation sites optionally
// qualified by one level of receiver-object context), per-method mod/ref and
// taint summaries, and a static abstract thin slicer that over-approximates
// the dynamic Gcost with zero execution.
//
// The containment invariant the package maintains — checked on all workloads
// by the differential soundness harness — is that every dependence, reference
// and points-to-child edge the dynamic profiler ever records is covered by
// the static slice, under both CHA and RTA call graphs.
package interproc

import (
	"sort"

	"lowutil/internal/ir"
)

// Mode selects how virtual call sites are resolved when building the call
// graph.
type Mode uint8

const (
	// CHA (class hierarchy analysis) resolves a virtual call against every
	// subclass of the receiver's static class, instantiated or not.
	CHA Mode = iota
	// RTA (rapid type analysis) restricts CHA to classes with an allocation
	// site in a reachable method, iterating to a fixpoint.
	RTA
)

func (m Mode) String() string {
	if m == RTA {
		return "rta"
	}
	return "cha"
}

// CallGraph is the whole-program call graph rooted at Program.Main.
type CallGraph struct {
	Prog *ir.Program
	Mode Mode

	// targets[instrID] holds the resolved callees of an OpCall site, sorted
	// by method ID. Nil for non-call instructions and unreachable sites.
	targets [][]*ir.Method
	// reach[methodID] marks methods reachable from Main.
	reach []bool
	// methods lists the reachable methods sorted by ID.
	methods []*ir.Method
	// callersOf[methodID] lists the reachable call sites targeting a method,
	// sorted by instruction ID.
	callersOf map[int][]*ir.Instr

	numMethods int
	numEdges   int
	virtSites  int
	maxFanout  int
}

// numMethods counts every declared method so per-method tables can be dense.
func countMethods(prog *ir.Program) int {
	n := 0
	for _, c := range prog.Classes {
		n += len(c.Methods)
	}
	return n
}

// NewCallGraph builds the call graph for prog under the given resolution
// mode. Construction is a reachability fixpoint from Main; under RTA the
// instantiated-class set grows with reachability, so resolution and
// reachability iterate together.
func NewCallGraph(prog *ir.Program, mode Mode) *CallGraph {
	nm := countMethods(prog)
	cg := &CallGraph{
		Prog:       prog,
		Mode:       mode,
		targets:    make([][]*ir.Method, len(prog.Instrs)),
		reach:      make([]bool, nm),
		callersOf:  make(map[int][]*ir.Instr),
		numMethods: nm,
	}

	// Classes that may appear as a runtime receiver. CHA: every class. RTA:
	// classes with an OpNew in a reachable method (grown during the fixpoint).
	instantiated := make([]bool, len(prog.Classes))
	if mode == CHA {
		for i := range instantiated {
			instantiated[i] = true
		}
	}

	work := []*ir.Method{prog.Main}
	cg.reach[prog.Main.ID] = true
	// resolved remembers virtual sites already expanded so the RTA fixpoint
	// can revisit them when new classes are instantiated.
	for {
		for len(work) > 0 {
			m := work[len(work)-1]
			work = work[:len(work)-1]
			for pc := range m.Code {
				in := &m.Code[pc]
				if mode == RTA && in.Op == ir.OpNew {
					instantiated[in.Class.ID] = true
				}
				if in.Op != ir.OpCall {
					continue
				}
				for _, t := range cg.resolve(in, instantiated) {
					if !cg.reach[t.ID] {
						cg.reach[t.ID] = true
						work = append(work, t)
					}
				}
			}
		}
		// RTA: newly instantiated classes can widen earlier sites; re-resolve
		// every reachable call site until nothing new becomes reachable.
		grew := false
		for _, m := range cg.reachableByID() {
			for pc := range m.Code {
				in := &m.Code[pc]
				if in.Op != ir.OpCall {
					continue
				}
				for _, t := range cg.resolve(in, instantiated) {
					if !cg.reach[t.ID] {
						cg.reach[t.ID] = true
						work = append(work, t)
						grew = true
					}
				}
			}
		}
		if !grew {
			break
		}
	}

	// Finalize: record targets and callers for reachable sites only, in
	// deterministic order.
	for _, m := range cg.reachableByID() {
		cg.methods = append(cg.methods, m)
		for pc := range m.Code {
			in := &m.Code[pc]
			if in.Op != ir.OpCall {
				continue
			}
			ts := cg.resolve(in, instantiated)
			cg.targets[in.ID] = ts
			cg.numEdges += len(ts)
			if !in.Callee.Static && countOverrides(prog, in.Callee) > 1 {
				cg.virtSites++
			}
			if len(ts) > cg.maxFanout {
				cg.maxFanout = len(ts)
			}
			for _, t := range ts {
				cg.callersOf[t.ID] = append(cg.callersOf[t.ID], in)
			}
		}
	}
	for _, sites := range cg.callersOf {
		sort.Slice(sites, func(i, j int) bool { return sites[i].ID < sites[j].ID })
	}
	return cg
}

// resolve returns the possible callees of an OpCall site given the current
// instantiated-class set, sorted by method ID.
func (cg *CallGraph) resolve(in *ir.Instr, instantiated []bool) []*ir.Method {
	callee := in.Callee
	if callee.Static {
		return []*ir.Method{callee}
	}
	seen := make(map[*ir.Method]bool, 2)
	var out []*ir.Method
	for _, c := range cg.Prog.Classes {
		if !instantiated[c.ID] || !c.IsSubclassOf(callee.Class) {
			continue
		}
		t := c.LookupMethod(callee.Name)
		if t != nil && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// countOverrides counts the distinct implementations a virtual callee can
// dispatch to across the whole hierarchy (for call-graph statistics).
func countOverrides(prog *ir.Program, callee *ir.Method) int {
	seen := make(map[*ir.Method]bool)
	for _, c := range prog.Classes {
		if !c.IsSubclassOf(callee.Class) {
			continue
		}
		if t := c.LookupMethod(callee.Name); t != nil {
			seen[t] = true
		}
	}
	return len(seen)
}

// reachableByID returns the currently reachable methods sorted by ID.
func (cg *CallGraph) reachableByID() []*ir.Method {
	var out []*ir.Method
	for _, c := range cg.Prog.Classes {
		for _, m := range c.Methods {
			if cg.reach[m.ID] {
				out = append(out, m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Targets returns the resolved callees of a reachable OpCall site, sorted by
// method ID. Nil for anything else.
func (cg *CallGraph) Targets(in *ir.Instr) []*ir.Method { return cg.targets[in.ID] }

// Reachable reports whether m is reachable from Main.
func (cg *CallGraph) Reachable(m *ir.Method) bool { return cg.reach[m.ID] }

// Methods returns the reachable methods sorted by ID.
func (cg *CallGraph) Methods() []*ir.Method { return cg.methods }

// CallersOf returns the reachable call sites that may target m, sorted by
// instruction ID.
func (cg *CallGraph) CallersOf(m *ir.Method) []*ir.Instr { return cg.callersOf[m.ID] }

// NumMethods returns the number of reachable methods; NumEdges the number of
// call edges (site → target pairs); VirtualSites the number of reachable
// sites whose callee has more than one implementation; MaxFanout the largest
// per-site target count.
func (cg *CallGraph) NumMethods() int   { return len(cg.methods) }
func (cg *CallGraph) NumEdges() int     { return cg.numEdges }
func (cg *CallGraph) VirtualSites() int { return cg.virtSites }
func (cg *CallGraph) MaxFanout() int    { return cg.maxFanout }
