package interp

import (
	"context"
	"errors"
	"testing"
	"time"

	"lowutil/internal/ir"
)

// buildSpin builds a program that loops forever incrementing a counter.
func buildSpin(t *testing.T) *ir.Program {
	t.Helper()
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, 0)
	mb.Const(1, 1)
	top := mb.PC()
	mb.Bin(0, ir.Add, 0, 1)
	mb.Goto(top)
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestRunCanceledContext(t *testing.T) {
	prog := buildSpin(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := New(prog)
	m.Ctx = ctx
	err := m.Run()
	if err == nil {
		t.Fatal("run of infinite loop under canceled context returned nil")
	}
	var vm *VMError
	if !errors.As(err, &vm) || vm.Kind != ErrCanceled {
		t.Fatalf("want VMError kind ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	// The poll fires on the first masked step boundary.
	if m.Steps > cancelCheckMask+1 {
		t.Errorf("canceled run executed %d steps, want <= %d", m.Steps, cancelCheckMask+1)
	}
}

func TestRunDeadlineExceeded(t *testing.T) {
	prog := buildSpin(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	m := New(prog)
	m.Ctx = ctx
	start := time.Now()
	err := m.Run()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	// Cancellation must be prompt: well within an order of magnitude of
	// the deadline, not bounded only by MaxSteps.
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancellation took %v", d)
	}
}

func TestRunMidwayCancel(t *testing.T) {
	prog := buildSpin(t)
	ctx, cancel := context.WithCancel(context.Background())
	m := New(prog)
	m.Ctx = ctx
	done := make(chan error, 1)
	go func() { done <- m.Run() }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("machine did not stop after cancel")
	}
}

func TestRunNilContextUnchanged(t *testing.T) {
	prog := buildSpin(t)
	m := New(prog)
	m.MaxSteps = 10000
	err := m.Run()
	var vm *VMError
	if !errors.As(err, &vm) || vm.Kind != ErrStepLimit {
		t.Fatalf("want step-limit error, got %v", err)
	}
}
