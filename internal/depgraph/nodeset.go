package depgraph

// nodeSet is the edge-set representation behind Node.deps/uses/refs. Most
// nodes have a handful of edges, so the set starts as a small slice with
// linear-scan dedup and spills to a map only past setSpillThreshold. This
// keeps the profiler hot path (AddDep on every traced instruction) free of
// map allocation for the common case.
type nodeSet struct {
	small []*Node
	spill map[*Node]struct{}
}

// setSpillThreshold is the slice length past which a nodeSet converts to a
// map. Linear scans up to this length are cheaper than map probes.
const setSpillThreshold = 8

// add inserts n and reports whether it was not already present.
func (s *nodeSet) add(n *Node) bool {
	if s.spill != nil {
		if _, dup := s.spill[n]; dup {
			return false
		}
		s.spill[n] = struct{}{}
		return true
	}
	for _, m := range s.small {
		if m == n {
			return false
		}
	}
	if len(s.small) < setSpillThreshold {
		s.small = append(s.small, n)
		return true
	}
	s.spill = make(map[*Node]struct{}, 2*setSpillThreshold)
	for _, m := range s.small {
		s.spill[m] = struct{}{}
	}
	s.small = nil
	s.spill[n] = struct{}{}
	return true
}

// len returns the set size.
func (s *nodeSet) len() int {
	if s.spill != nil {
		return len(s.spill)
	}
	return len(s.small)
}

// each calls f for every member. Iteration order is the insertion order
// while small and map order after spilling; callers that need determinism
// go through the frozen CSR snapshot instead.
func (s *nodeSet) each(f func(*Node)) {
	if s.spill != nil {
		for n := range s.spill {
			f(n)
		}
		return
	}
	for _, n := range s.small {
		f(n)
	}
}
