package interproc

import (
	"testing"

	"lowutil/internal/ir"
	"lowutil/internal/workloads"
)

// sliceProgram builds a program exercising every static edge class across a
// call boundary:
//
//	Main.main:
//	  pc0  h   = new Holder
//	  pc1  c   = 7
//	  pc2  v   = id(c)          // static call
//	  pc3  h.x = v              // field store
//	  pc4  l   = h.x            // field load
//	  pc5  if l == l …          // consumer
//	  pc6  k   = new Holder
//	  pc7  h.ref = k            // reference-valued store (child edge)
//	  pc8  return
//	Helper.id(a): return a
func sliceProgram(t *testing.T) (*ir.Program, *ir.Method, *ir.Method) {
	t.Helper()
	b := ir.NewBuilder()
	holder := b.Class("Holder", nil)
	fx := b.Field(holder, "x", ir.IntType)
	fref := b.Field(holder, "ref", b.RefType(holder))
	helper := b.Class("Helper", nil)
	id := b.Method(helper, "id", true, 1, ir.IntType)
	body := b.Body(id)
	body.Return(0)
	main := b.Class("Main", nil)
	mm := b.Method(main, "main", true, 0, nil)
	body = b.Body(mm)
	body.New(0, holder)         // pc0
	body.Const(1, 7)            // pc1
	body.Call(2, id, 1)         // pc2
	body.StoreField(0, fx, 2)   // pc3
	body.LoadField(3, 0, fx)    // pc4
	body.If(3, ir.Eq, 3, 8)     // pc5
	body.New(4, holder)         // pc6
	body.StoreField(0, fref, 4) // pc7
	body.ReturnVoid()           // pc8
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	return prog, mm, id
}

func TestStaticSliceEdges(t *testing.T) {
	prog, mm, id := sliceProgram(t)
	an := Analyze(prog, Config{Mode: RTA})
	sg := an.Slice
	iid := func(m *ir.Method, pc int) int { return m.Code[pc].ID }

	fref := prog.ClassByName("Holder").LookupField("ref")

	checks := []struct {
		name string
		got  bool
		want bool
	}{
		// Formal a of id carries main's const node (EnterMethod copy).
		{"id.return -> main.const", sg.HasDep(iid(id, 0), iid(mm, 1)), true},
		// AfterCall node depends on the return producer, transitively the const.
		{"call -> const (ret producer)", sg.HasDep(iid(mm, 2), iid(mm, 1)), true},
		// Field store consumes the stored value.
		{"store -> call", sg.HasDep(iid(mm, 3), iid(mm, 2)), true},
		// Heap load depends on the aliased store.
		{"load -> store", sg.HasDep(iid(mm, 4), iid(mm, 3)), true},
		// Predicate consumes the loaded value.
		{"if -> load", sg.HasDep(iid(mm, 5), iid(mm, 4)), true},
		// Thin slicing: the load must NOT depend on the base-pointer producer.
		{"load -> new (base)", sg.HasDep(iid(mm, 4), iid(mm, 0)), false},
		// Ref edges: both stores reference the base allocation site.
		{"store.x ref new", sg.HasRef(iid(mm, 3), iid(mm, 0)), true},
		{"store.ref ref new", sg.HasRef(iid(mm, 7), iid(mm, 0)), true},
		// Child edge: (h's site, ref field) holds k's site.
		{"child", sg.HasChild(iid(mm, 0), fref.ID, iid(mm, 6)), true},
		{"no child on x", sg.HasChild(iid(mm, 0), fref.ID, iid(mm, 0)), false},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}

	bounds := sg.Bounds()
	if len(bounds) != 2 {
		t.Fatalf("bounds for %d locations, want 2 (x and ref)", len(bounds))
	}
	// Ranking: the write-only ref location must precede the consumed x.
	if !bounds[0].WriteOnly() || bounds[0].Key.Field != fref.ID {
		t.Errorf("top candidate = %+v, want the write-only ref location", bounds[0])
	}
	if bounds[1].WriteOnly() || !bounds[1].Consumed {
		t.Errorf("second candidate = %+v, want the consumed x location", bounds[1])
	}
	if bounds[1].CostBound < 3 {
		// store, call, const at least sit in x's backward slice.
		t.Errorf("x cost bound = %d, want >= 3", bounds[1].CostBound)
	}
}

// TestSliceReportDeterministic pins byte-stability: two full pipeline runs
// over freshly compiled programs must render identical reports, under both
// modes, for every workload.
func TestSliceReportDeterministic(t *testing.T) {
	ws := workloads.All()
	if testing.Short() {
		ws = ws[:4]
	}
	for _, w := range ws {
		for _, cfg := range []Config{{Mode: CHA}, {Mode: RTA, ObjCtx: true}} {
			render := func() string {
				prog, err := w.Compile(1)
				if err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				return Analyze(prog, cfg).Report(10)
			}
			r1, r2 := render(), render()
			if r1 != r2 {
				t.Errorf("%s (%s): report not byte-stable:\n--- run 1\n%s\n--- run 2\n%s",
					w.Name, cfg.Mode, r1, r2)
			}
		}
	}
}
