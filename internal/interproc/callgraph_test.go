package interproc

import (
	"testing"

	"lowutil/internal/ir"
	"lowutil/internal/workloads"
)

// hierProgram builds:
//
//	class A       { int get()  { return 1; } }
//	class B : A   { int get()  { return 2; } }
//	class C : A   { int get()  { return 3; } }
//	Main.main     { A r = new B(); print(r.get()); }
//
// C is never instantiated: CHA must keep C.get as a target, RTA must drop it.
func hierProgram(t *testing.T) (*ir.Program, map[string]*ir.Method) {
	t.Helper()
	b := ir.NewBuilder()
	a := b.Class("A", nil)
	bb := b.Class("B", a)
	cc := b.Class("C", a)
	main := b.Class("Main", nil)

	mk := func(c *ir.Class, v int64) *ir.Method {
		m := b.Method(c, "get", false, 1, ir.IntType)
		body := b.Body(m)
		body.Const(1, v)
		body.Return(1)
		return m
	}
	aget := mk(a, 1)
	bget := mk(bb, 2)
	cget := mk(cc, 3)

	mm := b.Method(main, "main", true, 0, nil)
	body := b.Body(mm)
	body.New(0, bb)
	body.Call(1, aget, 0)
	body.Native(-1, ir.NativePrint, 1)
	body.ReturnVoid()

	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}
	return prog, map[string]*ir.Method{
		"A.get": aget, "B.get": bget, "C.get": cget, "main": mm,
	}
}

func callSite(t *testing.T, m *ir.Method) *ir.Instr {
	t.Helper()
	for pc := range m.Code {
		if m.Code[pc].Op == ir.OpCall {
			return &m.Code[pc]
		}
	}
	t.Fatal("no call site")
	return nil
}

func TestCallGraphCHAvsRTA(t *testing.T) {
	prog, ms := hierProgram(t)
	site := callSite(t, ms["main"])

	cha := NewCallGraph(prog, CHA)
	rta := NewCallGraph(prog, RTA)

	names := func(ts []*ir.Method) []string {
		var out []string
		for _, m := range ts {
			out = append(out, m.QualifiedName())
		}
		return out
	}
	chaT := names(cha.Targets(site))
	rtaT := names(rta.Targets(site))
	if len(chaT) != 3 {
		t.Errorf("CHA targets = %v, want all three overrides", chaT)
	}
	if len(rtaT) != 1 || rtaT[0] != "B.get" {
		t.Errorf("RTA targets = %v, want only B.get", rtaT)
	}
	if !cha.Reachable(ms["C.get"]) {
		t.Error("CHA must reach C.get")
	}
	if rta.Reachable(ms["C.get"]) {
		t.Error("RTA must not reach C.get: C is never instantiated")
	}
	if !rta.Reachable(ms["B.get"]) || !rta.Reachable(ms["main"]) {
		t.Error("RTA must reach main and B.get")
	}
	if got := rta.CallersOf(ms["B.get"]); len(got) != 1 || got[0] != site {
		t.Errorf("CallersOf(B.get) = %v", got)
	}
}

// TestCallGraphRTASubsetOfCHA: on every workload, RTA's reachable set and
// per-site targets must be contained in CHA's.
func TestCallGraphRTASubsetOfCHA(t *testing.T) {
	for _, w := range workloads.All() {
		prog, err := w.Compile(1)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		cha := NewCallGraph(prog, CHA)
		rta := NewCallGraph(prog, RTA)
		for _, m := range rta.Methods() {
			if !cha.Reachable(m) {
				t.Errorf("%s: %s RTA-reachable but not CHA-reachable", w.Name, m.QualifiedName())
			}
		}
		for _, m := range rta.Methods() {
			for pc := range m.Code {
				in := &m.Code[pc]
				if in.Op != ir.OpCall {
					continue
				}
				chaSet := make(map[*ir.Method]bool)
				for _, t := range cha.Targets(in) {
					chaSet[t] = true
				}
				for _, tm := range rta.Targets(in) {
					if !chaSet[tm] {
						t.Errorf("%s: RTA target %s at %s:%d not in CHA set",
							w.Name, tm.QualifiedName(), m.QualifiedName(), pc)
					}
				}
			}
		}
		if rta.NumEdges() > cha.NumEdges() {
			t.Errorf("%s: RTA edges %d > CHA edges %d", w.Name, rta.NumEdges(), cha.NumEdges())
		}
	}
}
