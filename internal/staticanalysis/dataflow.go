// Package staticanalysis implements a static dataflow framework over the
// slot-based IR: per-method CFGs (built by internal/ir), dominators, and a
// generic worklist engine instantiated for liveness, reaching definitions and
// def-use chains. On top of the framework sit two products:
//
//   - Vet, a zero-execution diagnostics suite (dead stores, write-only
//     fields, unused allocations, unreachable code, possibly-uninitialized
//     reads) surfaced as `lowutil vet`;
//   - PruneSet, a static pre-analysis that proves instructions irrelevant to
//     any heap value flow under the paper's thin-slicing rules, so the
//     dynamic profiler can skip Gcost event emission for them entirely.
//
// The paper's pipeline is purely dynamic — every executed instruction is
// traced into Gcost. The framework here is the flow-insensitive/-sensitive
// static layer that both answers questions without running the program and
// makes the dynamic hot path cheaper.
package staticanalysis

import (
	"math/bits"

	"lowutil/internal/ir"
)

// BitSet is a fixed-capacity bit vector, the lattice element of every
// dataflow instance in this package.
type BitSet []uint64

// NewBitSet returns a BitSet able to hold n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set sets bit i.
func (b BitSet) Set(i int) { b[i/64] |= 1 << (i % 64) }

// Clear clears bit i.
func (b BitSet) Clear(i int) { b[i/64] &^= 1 << (i % 64) }

// Has reports bit i.
func (b BitSet) Has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// CopyFrom overwrites b with src.
func (b BitSet) CopyFrom(src BitSet) { copy(b, src) }

// UnionWith ors src into b.
func (b BitSet) UnionWith(src BitSet) {
	for w := range b {
		b[w] |= src[w]
	}
}

// IntersectWith ands src into b.
func (b BitSet) IntersectWith(src BitSet) {
	for w := range b {
		b[w] &= src[w]
	}
}

// AndNot removes src's bits from b.
func (b BitSet) AndNot(src BitSet) {
	for w := range b {
		b[w] &^= src[w]
	}
}

// Equal reports whether b and o hold the same bits.
func (b BitSet) Equal(o BitSet) bool {
	for w := range b {
		if b[w] != o[w] {
			return false
		}
	}
	return true
}

// Fill sets every bit in [0, n).
func (b BitSet) Fill(n int) {
	for i := 0; i < n/64; i++ {
		b[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 {
		b[n/64] |= (1 << r) - 1
	}
}

// Range calls f for every set bit, ascending.
func (b BitSet) Range(f func(i int)) {
	for w, word := range b {
		for word != 0 {
			f(w*64 + bits.TrailingZeros64(word))
			word &= word - 1
		}
	}
}

// Problem is a gen/kill dataflow problem over a CFG. The engine handles both
// directions and both meets; blocks unreachable from the entry are left at
// the bottom element (empty for union problems, full for intersection).
type Problem struct {
	CFG *ir.CFG
	// Bits is the size of the bit domain.
	Bits int
	// Backward selects backward flow (liveness-style); default is forward.
	Backward bool
	// Intersect selects intersection as the meet (must-style); default is
	// union (may-style).
	Intersect bool
	// Gen and Kill are per-block transfer sets: out = gen ∪ (in ∖ kill) for
	// forward problems, in = gen ∪ (out ∖ kill) for backward ones.
	Gen, Kill []BitSet
	// Boundary seeds the entry (forward) or every exit block (backward);
	// nil means empty.
	Boundary BitSet
}

// Solution holds the fixpoint: In[b] and Out[b] are the dataflow facts at
// block b's entry and exit in *execution* order (even for backward problems).
type Solution struct {
	In, Out []BitSet
}

// Solve runs the worklist iteration to a fixpoint. Iteration order is
// reverse postorder for forward problems and postorder for backward ones, so
// loop-free methods converge in one pass.
func Solve(p *Problem) *Solution {
	cfg := p.CFG
	nb := cfg.NumBlocks()
	sol := &Solution{In: make([]BitSet, nb), Out: make([]BitSet, nb)}
	for b := 0; b < nb; b++ {
		sol.In[b] = NewBitSet(p.Bits)
		sol.Out[b] = NewBitSet(p.Bits)
	}
	if nb == 0 {
		return sol
	}

	order := make([]int, len(cfg.RPO))
	copy(order, cfg.RPO)
	if p.Backward {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}

	if p.Intersect {
		// Start reachable blocks at top (full) so the meet can only shrink.
		for _, b := range order {
			sol.In[b].Fill(p.Bits)
			sol.Out[b].Fill(p.Bits)
		}
	}

	meetInto := func(dst BitSet, blocks []int, facts []BitSet) {
		first := true
		for _, nb := range blocks {
			if !cfg.Reachable(nb) {
				continue
			}
			if first {
				dst.CopyFrom(facts[nb])
				first = false
			} else if p.Intersect {
				dst.IntersectWith(facts[nb])
			} else {
				dst.UnionWith(facts[nb])
			}
		}
		if first {
			// No reachable neighbors: boundary block.
			for w := range dst {
				dst[w] = 0
			}
			if p.Boundary != nil {
				dst.UnionWith(p.Boundary)
			}
		}
	}

	tmp := NewBitSet(p.Bits)
	changed := true
	for changed {
		changed = false
		for _, b := range order {
			blk := &cfg.Blocks[b]
			if p.Backward {
				meetInto(sol.Out[b], blk.Succs, sol.In)
				tmp.CopyFrom(sol.Out[b])
				tmp.AndNot(p.Kill[b])
				tmp.UnionWith(p.Gen[b])
				if !tmp.Equal(sol.In[b]) {
					sol.In[b].CopyFrom(tmp)
					changed = true
				}
			} else {
				if b == 0 {
					// The entry meets its predecessors (loops back to the
					// entry) plus the boundary.
					meetInto(sol.In[b], blk.Preds, sol.Out)
					if p.Boundary != nil {
						sol.In[b].UnionWith(p.Boundary)
					}
				} else {
					meetInto(sol.In[b], blk.Preds, sol.Out)
				}
				tmp.CopyFrom(sol.In[b])
				tmp.AndNot(p.Kill[b])
				tmp.UnionWith(p.Gen[b])
				if !tmp.Equal(sol.Out[b]) {
					sol.Out[b].CopyFrom(tmp)
					changed = true
				}
			}
		}
	}
	return sol
}

// Dominators computes the immediate dominator of every reachable block.
// idom[entry] == entry; idom[b] == -1 for unreachable blocks. The
// implementation lives in internal/ir (the SSA layer shares it); this
// wrapper keeps the historical staticanalysis entry point.
func Dominators(cfg *ir.CFG) []int { return ir.Dominators(cfg) }

// Dominates reports whether block a dominates block b under idom (as
// returned by Dominators).
func Dominates(idom []int, a, b int) bool {
	if a == 0 {
		return idom[b] != -1
	}
	for b != -1 {
		if a == b {
			return true
		}
		if b == 0 {
			return false
		}
		b = idom[b]
	}
	return false
}
