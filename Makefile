.PHONY: check build test bench lint apisurface

check:
	sh scripts/check.sh

build:
	go build ./...

test:
	go test ./...

bench:
	sh scripts/bench.sh

# Full static lint: the vet suite over all 18 workloads, compared against
# the golden files in internal/staticanalysis/testdata/vet/. Regenerate the
# goldens after an intended diagnostics change with:
#   go test ./internal/staticanalysis -run TestVetGoldenWorkloads -update
lint:
	go test ./internal/staticanalysis -run TestVetGoldenWorkloads -count=1

# Public-API pin for the root package. Regenerate after an intended API
# change with: sh scripts/apisurface.sh -update
apisurface:
	sh scripts/apisurface.sh
