// Package taint implements the naive cumulative cost tracking that Figure 1
// of the paper uses as a negative baseline: each storage location carries a
// scalar "cost so far", and an instruction's destination cost is the sum of
// its operand costs plus one.
//
// This double-counts shared sub-computations (the paper's t_b = 8 for a
// five-instruction program) and can overflow 64-bit counters on real
// programs; the tests and benchmarks contrast it with slicing-based cost,
// which counts each contributing instruction once.
package taint

import (
	"lowutil/internal/interp"
	"lowutil/internal/ir"
)

// Tracker is an interp.Tracer that performs taint-like cumulative cost
// tracking. Costs saturate at MaxCost instead of overflowing.
type Tracker struct {
	// Overflowed reports whether any cost saturated.
	Overflowed bool

	statics []uint64
	pending []uint64
	haveP   bool
	pendRet uint64
}

// MaxCost is the saturation bound.
const MaxCost = ^uint64(0) >> 1

// New returns a Tracker for prog.
func New(prog *ir.Program) *Tracker {
	return &Tracker{statics: make([]uint64, len(prog.Statics))}
}

type frameCosts struct{ c []uint64 }
type objCosts struct{ c []uint64 }

func (t *Tracker) fcosts(fr *interp.Frame) *frameCosts {
	if fc, ok := fr.Shadow.(*frameCosts); ok {
		return fc
	}
	fc := &frameCosts{c: make([]uint64, len(fr.Locals))}
	fr.Shadow = fc
	return fc
}

func (t *Tracker) ocosts(o *interp.Object) *objCosts {
	if oc, ok := o.Shadow.(*objCosts); ok {
		return oc
	}
	n := len(o.Fields)
	if o.IsArray() {
		n = len(o.Elems)
	}
	oc := &objCosts{c: make([]uint64, n)}
	o.Shadow = oc
	return oc
}

func (t *Tracker) add(a, b uint64) uint64 {
	s := a + b
	if s < a || s > MaxCost {
		t.Overflowed = true
		return MaxCost
	}
	return s
}

// CostOf returns the tracked cumulative cost of local slot s in fr.
func (t *Tracker) CostOf(fr *interp.Frame, s int) uint64 { return t.fcosts(fr).c[s] }

// Exec implements interp.Tracer.
func (t *Tracker) Exec(ev *interp.Event) {
	in := ev.In
	fc := t.fcosts(ev.Frame)
	switch in.Op {
	case ir.OpConst:
		fc.c[in.Dst] = 1
	case ir.OpMove:
		fc.c[in.Dst] = t.add(fc.c[in.A], 1)
	case ir.OpBin:
		fc.c[in.Dst] = t.add(t.add(fc.c[in.A], fc.c[in.B]), 1)
	case ir.OpNeg, ir.OpNot, ir.OpInstanceOf:
		fc.c[in.Dst] = t.add(fc.c[in.A], 1)
	case ir.OpNew:
		fc.c[in.Dst] = 1
	case ir.OpNewArray:
		fc.c[in.Dst] = t.add(fc.c[in.A], 1)
	case ir.OpLoadField:
		oc := t.ocosts(ev.Base)
		fc.c[in.Dst] = t.add(oc.c[in.Field.Slot], 1)
	case ir.OpStoreField:
		oc := t.ocosts(ev.Base)
		oc.c[in.Field.Slot] = t.add(fc.c[in.B], 1)
	case ir.OpLoadStatic:
		fc.c[in.Dst] = t.add(t.statics[in.Static.Slot], 1)
	case ir.OpStoreStatic:
		t.statics[in.Static.Slot] = t.add(fc.c[in.A], 1)
	case ir.OpALoad:
		oc := t.ocosts(ev.Base)
		fc.c[in.Dst] = t.add(t.add(oc.c[ev.Index], fc.c[in.B]), 1)
	case ir.OpAStore:
		oc := t.ocosts(ev.Base)
		oc.c[ev.Index] = t.add(t.add(fc.c[in.C2], fc.c[in.B]), 1)
	case ir.OpArrayLen:
		fc.c[in.Dst] = 1
	case ir.OpNative:
		var sum uint64 = 1
		for _, a := range in.Args {
			sum = t.add(sum, fc.c[a])
		}
		if in.Dst >= 0 {
			fc.c[in.Dst] = sum
		}
	}
}

// BeforeCall implements interp.Tracer.
func (t *Tracker) BeforeCall(in *ir.Instr, caller *interp.Frame, callee *ir.Method, recv *interp.Object) {
	fc := t.fcosts(caller)
	t.pending = t.pending[:0]
	for _, a := range in.Args {
		t.pending = append(t.pending, fc.c[a])
	}
	t.haveP = true
}

// EnterMethod implements interp.Tracer.
func (t *Tracker) EnterMethod(fr *interp.Frame, recv *interp.Object) {
	fc := &frameCosts{c: make([]uint64, fr.Method.NumLocals)}
	if t.haveP {
		copy(fc.c, t.pending)
		t.haveP = false
	}
	fr.Shadow = fc
}

// BeforeReturn implements interp.Tracer.
func (t *Tracker) BeforeReturn(in *ir.Instr, fr *interp.Frame) {
	if in.HasA {
		t.pendRet = t.fcosts(fr).c[in.A]
	} else {
		t.pendRet = 0
	}
}

// AfterCall implements interp.Tracer.
func (t *Tracker) AfterCall(in *ir.Instr, caller *interp.Frame, hasValue bool) {
	if hasValue && in != nil && in.Dst >= 0 {
		t.fcosts(caller).c[in.Dst] = t.add(t.pendRet, 1)
	}
	t.pendRet = 0
}

var _ interp.Tracer = (*Tracker)(nil)
