package main

import "testing"

func TestCompileAllWorkloadsViaWorkbench(t *testing.T) {
	for _, name := range []string{"chart", "bloat", "tradesoap"} {
		prog := compile(name, 1)
		res, err := prog.Run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Output) == 0 {
			t.Errorf("%s: no output", name)
		}
	}
}
