package mjlib

import (
	"testing"

	"lowutil/internal/costben"
	"lowutil/internal/interp"
	"lowutil/internal/mjc"
	"lowutil/internal/profiler"
)

func run(t *testing.T, src string) []int64 {
	t.Helper()
	prog, err := mjc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := interp.New(prog)
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.Output
}

func TestArrayListSemantics(t *testing.T) {
	out := run(t, Concat(ArrayList, `
class Main {
  static void main() {
    ArrayList l = new ArrayList();
    l.init();
    for (int i = 0; i < 100; i = i + 1) { l.add(i * 3); }  // forces growth
    print(l.count());
    print(l.get(0));
    print(l.get(99));
    l.set(50, -1);
    print(l.get(50));
    print(l.indexOf(-1));
    print(l.contains(297));
    print(l.contains(5));
  }
}`))
	want := []int64{100, 0, 297, -1, 50, 1, 0}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestIntMapSemantics(t *testing.T) {
	out := run(t, Concat(IntMap, `
class Main {
  static void main() {
    IntMap m = new IntMap();
    m.init();
    for (int i = 0; i < 200; i = i + 1) { m.put(i * 7, i); }  // forces rehash
    print(m.count());
    print(m.get(0, -1));
    print(m.get(7 * 123, -1));
    print(m.get(5, -1));       // absent
    print(m.has(7 * 199));
    m.put(7, 999);             // overwrite
    print(m.get(7, -1));
    print(m.count());          // unchanged by overwrite
  }
}`))
	want := []int64{200, 0, 123, -1, 1, 999, 200}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestStrBufSemantics(t *testing.T) {
	out := run(t, Concat(StrBuf, `
class Main {
  static void main() {
    StrBuf b = new StrBuf();
    b.init();
    b.appendInt(0);
    b.appendInt(-45);
    b.appendInt(12345);
    print(b.length());   // "0" + "-45" + "12345" = 1 + 3 + 5 = 9
    // Digits appear most-significant first.
    StrBuf c = new StrBuf();
    c.init();
    c.appendInt(907);
    print(c.length());
    int h = c.digest();
    StrBuf d = new StrBuf();
    d.init();
    d.append(57); d.append(48); d.append(55);  // '9','0','7'
    print(h == d.digest());
  }
}`))
	want := []int64{9, 3, 1}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestQueueAndStackSemantics(t *testing.T) {
	out := run(t, Concat(IntQueue, IntStack, `
class Main {
  static void main() {
    IntQueue q = new IntQueue();
    q.init(3);
    print(q.offer(1));
    print(q.offer(2));
    print(q.offer(3));
    print(q.offer(4));      // full
    print(q.poll(-1));      // 1 (FIFO)
    print(q.offer(4));      // wraps
    print(q.poll(-1));
    print(q.poll(-1));
    print(q.poll(-1));
    print(q.poll(-1));      // empty

    IntStack s = new IntStack();
    s.init();
    for (int i = 0; i < 20; i = i + 1) { s.push(i); }  // forces growth
    print(s.pop(-1));       // 19 (LIFO)
    int last = 0;
    while (!s.empty()) { last = s.pop(-1); }
    print(last);
    print(s.pop(-7));       // empty default
  }
}`))
	want := []int64{1, 1, 1, 0, 1, 1, 2, 3, 4, -1, 19, 0, -7}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("out[%d] = %v, want %v (full: %v)", i, out[i], w, out)
		}
	}
}

// TestDeepTreeRanking: a write-only IntMap gives the cost-benefit analysis a
// genuine height-4 structure (map → buckets → entries → values); the tool
// must flag it while a read-heavy map survives.
func TestDeepTreeRanking(t *testing.T) {
	src := Concat(IntMap, `
class Main {
  static void main() {
    IntMap used = new IntMap();
    used.init();
    IntMap wasted = new IntMap();
    wasted.init();
    int acc = 0;
    for (int i = 0; i < 80; i = i + 1) {
      used.put(i, hash(i) % 100);
      acc = acc + used.get(i, 0);
      wasted.put(i, hash(i + 1) % 100);   // populated, never queried
    }
    print(acc);
  }
}`)
	prog, err := mjc.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p := profiler.New(prog, profiler.Options{Slots: 64})
	m := interp.New(prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	an := costben.NewAnalysis(p.G)
	ranked := an.RankStructures(costben.DefaultTreeHeight)

	// Find the two IntMap abstractions (same site cannot happen here: two
	// distinct sites in Main.main).
	var usedRate, wastedRate float64 = -1, -1
	seen := 0
	for _, r := range ranked {
		if r.Site.Op.String() == "new" && r.Site.Class != nil && r.Site.Class.Name == "IntMap" {
			if seen == 0 {
				// ranked is by rate desc; first IntMap hit is the worse one
			}
			seen++
		}
	}
	_ = usedRate
	_ = wastedRate
	// Identify sites in allocation order: used first, wasted second.
	var sites []int
	for _, in := range prog.Instrs {
		if in.Op.String() == "new" && in.Class != nil && in.Class.Name == "IntMap" {
			sites = append(sites, in.AllocSite)
		}
	}
	if len(sites) != 2 {
		t.Fatalf("IntMap sites = %d, want 2", len(sites))
	}
	rateOf := func(site int) float64 {
		for _, r := range an.RankBySite(costben.DefaultTreeHeight) {
			if r.Site.AllocSite == site {
				return r.Rate
			}
		}
		return -1
	}
	used, wasted := rateOf(sites[0]), rateOf(sites[1])
	if wasted <= used {
		t.Errorf("write-only map rate (%v) should exceed used map rate (%v)", wasted, used)
	}
	if wasted <= 0 {
		t.Errorf("write-only map should have positive rate, got %v", wasted)
	}
}

func TestAllConcatCompiles(t *testing.T) {
	src := Concat(All(), `class Main { static void main() { print(1); } }`)
	if _, err := mjc.Compile(src); err != nil {
		t.Fatalf("library does not compile: %v", err)
	}
}
