package lowutil

import (
	"testing"

	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/profiler"
	"lowutil/internal/workloads"
)

// cloneGraph rebuilds g through the public depgraph API: same nodes (with
// frequencies), dep/ref edges, location registrations, and points-to
// children. It is the measurement harness for TestApproxBytesVsMeasured —
// building the clone allocates exactly the graph's own structures, with
// none of the interpreter or workload allocations a profiled run mixes in.
func cloneGraph(g *depgraph.Graph) *depgraph.Graph {
	c := depgraph.New(g.Prog)
	g.Nodes(func(n *depgraph.Node) {
		cn := c.Node(n.In, n.D)
		cn.SetFreq(n.Freq())
		cn.Eff = n.Eff
	})
	remap := func(n *depgraph.Node) *depgraph.Node {
		if n == nil {
			return nil
		}
		return c.Node(n.In, n.D)
	}
	g.Nodes(func(n *depgraph.Node) {
		cn := remap(n)
		n.Deps(func(d *depgraph.Node) { c.AddDep(cn, remap(d)) })
		n.RefEdges(func(r *depgraph.Node) { c.AddRef(cn, remap(r)) })
	})
	g.Locs(func(loc depgraph.Loc) {
		cloc := depgraph.Loc{Alloc: remap(loc.Alloc), Field: loc.Field}
		g.StoresOf(loc, func(n *depgraph.Node) { c.AddLocStore(cloc, remap(n)) })
		g.LoadsOf(loc, func(n *depgraph.Node) { c.AddLocLoad(cloc, remap(n)) })
	})
	g.Nodes(func(n *depgraph.Node) {
		g.Children(n, func(field int, child *depgraph.Node) {
			c.AddChild(depgraph.Loc{Alloc: remap(n), Field: field}, remap(child))
		})
	})
	return c
}

// TestApproxBytesVsMeasured pins Graph.ApproxBytes against measured reality
// on one workload: the bytes actually allocated while rebuilding the
// profiled graph must agree with the model within 2× either way. The
// measurement uses the testing package's allocation accounting
// (testing.Benchmark's per-op allocated bytes, the byte-granular sibling of
// testing.AllocsPerRun) around cloneGraph, which allocates only graph
// structures.
func TestApproxBytesVsMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is not worth running under -short")
	}
	w := workloads.ByName("eclipse")
	prog, err := w.Compile(2)
	if err != nil {
		t.Fatal(err)
	}
	p := profiler.New(prog, profiler.Options{Slots: 16})
	m := interp.New(prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	g := p.G
	approx := g.ApproxBytes()

	var sink *depgraph.Graph
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink = cloneGraph(g)
		}
	})
	_ = sink
	measured := res.AllocedBytesPerOp()
	if measured == 0 {
		t.Fatal("allocation measurement returned 0 bytes")
	}

	t.Logf("nodes=%d deps=%d refs=%d approx=%d measured=%d ratio=%.2f",
		g.NumNodes(), g.NumDepEdges(), g.NumRefEdges(), approx, measured,
		float64(approx)/float64(measured))
	if approx > 2*measured || measured > 2*approx {
		t.Errorf("ApproxBytes()=%d not within 2x of measured %d allocated bytes", approx, measured)
	}
}
