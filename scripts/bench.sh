#!/bin/sh
# Runs the key analysis benchmarks and writes BENCH_<idx>.json (one object
# per benchmark: ns/op, B/op, allocs/op) so the perf trajectory is tracked
# across PRs. The index is the first argument (default 9); OUT overrides the
# path entirely. Each benchmark runs COUNT times (default 3) and the minimum
# ns/op is recorded — this VM's run-to-run noise is ±30-50%, and the minimum
# is the estimate least polluted by scheduler and GC interference. Override
# the selection or duration with:
#
#   sh scripts/bench.sh 9
#   BENCH='BenchmarkCostBenefitAnalysis' BENCHTIME=2s COUNT=5 sh scripts/bench.sh
set -e
cd "$(dirname "$0")/.."

IDX="${1:-9}"
BENCH="${BENCH:-BenchmarkCostBenefitAnalysis|BenchmarkDeadness|BenchmarkOverhead|BenchmarkInterpreterRaw|BenchmarkPointsTo|BenchmarkStaticSlice|BenchmarkInterprocPrune|BenchmarkCancelCheck|BenchmarkSSAConstruct|BenchmarkSCCP|BenchmarkLoopForest|BenchmarkVetEngines|BenchmarkNodeIntern|BenchmarkDispatch|BenchmarkEscapeAnalysis|BenchmarkStaticAudit|BenchmarkVetEscapeLints|BenchmarkJobThroughput}"
BENCHTIME="${BENCHTIME:-1s}"
COUNT="${COUNT:-3}"
OUT="${OUT:-BENCH_${IDX}.json}"

go test -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -count "$COUNT" -benchmem . ./internal/jobs \
    | tee /dev/stderr \
    | awk '
        /^Benchmark/ {
            name = $1
            ns = ""; bytes = ""; allocs = ""
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op")     ns = $i
                if ($(i+1) == "B/op")      bytes = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            if (ns == "") next
            # Keep the minimum ns/op seen for each benchmark name.
            if (!(name in best) || ns + 0 < best[name] + 0) {
                best[name] = ns
                bbytes[name] = bytes
                ballocs[name] = allocs
            }
            if (!(name in seen)) { order[n++] = name; seen[name] = 1 }
        }
        END {
            print "["
            for (i = 0; i < n; i++) {
                name = order[i]
                line = sprintf("  {\"name\": \"%s\", \"ns_per_op\": %s", name, best[name])
                if (bbytes[name] != "")  line = line sprintf(", \"bytes_per_op\": %s", bbytes[name])
                if (ballocs[name] != "") line = line sprintf(", \"allocs_per_op\": %s", ballocs[name])
                line = line "}"
                print line (i < n-1 ? "," : "")
            }
            print "]"
        }
    ' > "$OUT"

echo "bench: wrote $OUT" >&2
