// Package mjc compiles MJ source to the three-address IR: it resolves
// symbols, type-checks, and lowers ASTs through ir.Builder. The pipeline is
//
//	source → lexer → parser → (this package) → *ir.Program
//
// MJ semantics in brief: single inheritance, virtual dispatch by method
// name (no overloading), int/boolean/class/array types with Java-style
// assignability (subclass to superclass, null to any reference, arrays
// invariant), explicit `this` for member access, and native functions
// (print, rand, time, floatToIntBits, intBitsToFloat, assert, dbQuery,
// hash) standing in for the JVM's native boundary.
package mjc

import (
	"fmt"

	"lowutil/internal/ast"
	"lowutil/internal/ir"
	"lowutil/internal/lexer"
	"lowutil/internal/parser"
)

// Error is a compile-time (semantic) error with position.
type Error struct {
	Pos lexer.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos lexer.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Compile parses and compiles src, using Main.main as the entry point.
func Compile(src string) (*ir.Program, error) {
	return CompileAt(src, "Main", "main")
}

// CompileAt parses and compiles src with an explicit entry point.
func CompileAt(src, mainClass, mainMethod string) (*ir.Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(prog, mainClass, mainMethod)
}

// Lower compiles a parsed program.
func Lower(prog *ast.Program, mainClass, mainMethod string) (*ir.Program, error) {
	c := &compiler{
		b:       ir.NewBuilder(),
		classes: make(map[string]*classSym),
	}
	if err := c.declareClasses(prog); err != nil {
		return nil, err
	}
	if err := c.declareMembers(prog); err != nil {
		return nil, err
	}
	for _, cd := range prog.Classes {
		cs := c.classes[cd.Name]
		for _, md := range cd.Methods {
			if err := c.lowerMethod(cs, md); err != nil {
				return nil, err
			}
		}
	}
	irProg, err := c.b.Seal(mainClass, mainMethod)
	if err != nil {
		return nil, fmt.Errorf("mjc: %w", err)
	}
	return irProg, nil
}

// classSym associates an AST class with its IR class and member symbols.
type classSym struct {
	decl    *ast.ClassDecl
	cls     *ir.Class
	fields  map[string]*ir.Field // declared here (inherited via chain lookup)
	methods map[string]*methodSym
}

// methodSym is a method signature: the IR method plus MJ-level types.
type methodSym struct {
	decl    *ast.MethodDecl
	m       *ir.Method
	owner   *classSym
	params  []*ir.Type // excluding the receiver
	returns *ir.Type   // nil = void
}

type compiler struct {
	b       *ir.Builder
	classes map[string]*classSym
	// nullType is the type of the null literal, assignable to any
	// reference type.
	nullT ir.Type
}

func (c *compiler) nullType() *ir.Type {
	c.nullT = ir.Type{Kind: ir.KindRef}
	return &c.nullT
}

// declareClasses creates IR classes in an order that satisfies `extends`
// dependencies and rejects unknown or cyclic hierarchies.
func (c *compiler) declareClasses(prog *ast.Program) error {
	byName := make(map[string]*ast.ClassDecl, len(prog.Classes))
	for _, cd := range prog.Classes {
		if _, dup := byName[cd.Name]; dup {
			return errf(cd.Pos, "duplicate class %s", cd.Name)
		}
		byName[cd.Name] = cd
	}
	state := make(map[string]int) // 0 unseen, 1 visiting, 2 done
	var declare func(cd *ast.ClassDecl) error
	declare = func(cd *ast.ClassDecl) error {
		switch state[cd.Name] {
		case 2:
			return nil
		case 1:
			return errf(cd.Pos, "inheritance cycle through class %s", cd.Name)
		}
		state[cd.Name] = 1
		var super *ir.Class
		if cd.Extends != "" {
			sd, ok := byName[cd.Extends]
			if !ok {
				return errf(cd.Pos, "class %s extends unknown class %s", cd.Name, cd.Extends)
			}
			if err := declare(sd); err != nil {
				return err
			}
			super = c.classes[cd.Extends].cls
		}
		cs := &classSym{
			decl:    cd,
			cls:     c.b.Class(cd.Name, super),
			fields:  make(map[string]*ir.Field),
			methods: make(map[string]*methodSym),
		}
		c.classes[cd.Name] = cs
		state[cd.Name] = 2
		return nil
	}
	for _, cd := range prog.Classes {
		if err := declare(cd); err != nil {
			return err
		}
	}
	return nil
}

// resolveType converts a syntactic TypeRef into an IR type.
func (c *compiler) resolveType(tr *ast.TypeRef) (*ir.Type, error) {
	var base *ir.Type
	switch tr.Base {
	case "int":
		base = ir.IntType
	case "boolean":
		base = ir.BoolType
	default:
		cs, ok := c.classes[tr.Base]
		if !ok {
			return nil, errf(tr.Pos, "unknown type %s", tr.Base)
		}
		base = c.b.RefType(cs.cls)
	}
	for i := 0; i < tr.Dims; i++ {
		base = c.b.ArrayType(base)
	}
	return base, nil
}

// declareMembers declares all fields and method signatures.
func (c *compiler) declareMembers(prog *ast.Program) error {
	for _, cd := range prog.Classes {
		cs := c.classes[cd.Name]
		for _, fd := range cd.Fields {
			if _, dup := cs.fields[fd.Name]; dup {
				return errf(fd.Pos, "duplicate field %s.%s", cd.Name, fd.Name)
			}
			typ, err := c.resolveType(fd.Type)
			if err != nil {
				return err
			}
			cs.fields[fd.Name] = c.b.Field(cs.cls, fd.Name, typ)
		}
		for _, md := range cd.Methods {
			if _, dup := cs.methods[md.Name]; dup {
				return errf(md.Pos, "duplicate method %s.%s (no overloading in MJ)", cd.Name, md.Name)
			}
			ms := &methodSym{decl: md, owner: cs}
			for _, p := range md.Params {
				t, err := c.resolveType(p.Type)
				if err != nil {
					return err
				}
				ms.params = append(ms.params, t)
			}
			if md.Returns != nil {
				t, err := c.resolveType(md.Returns)
				if err != nil {
					return err
				}
				ms.returns = t
			}
			nparams := len(md.Params)
			if !md.Static {
				nparams++ // receiver
			}
			ms.m = c.b.Method(cs.cls, md.Name, md.Static, nparams, ms.returns)
			cs.methods[md.Name] = ms
		}
	}
	// Check override compatibility along the hierarchy.
	for _, cd := range prog.Classes {
		cs := c.classes[cd.Name]
		if cd.Extends == "" {
			continue
		}
		for name, ms := range cs.methods {
			base := c.lookupMethod(c.classes[cd.Extends], name)
			if base == nil {
				continue
			}
			if base.decl.Static != ms.decl.Static {
				return errf(ms.decl.Pos, "%s.%s changes staticness of inherited method", cd.Name, name)
			}
			if len(base.params) != len(ms.params) {
				return errf(ms.decl.Pos, "%s.%s overrides with different parameter count", cd.Name, name)
			}
			for i := range base.params {
				if base.params[i] != ms.params[i] {
					return errf(ms.decl.Pos, "%s.%s overrides with different parameter types", cd.Name, name)
				}
			}
			if base.returns != ms.returns {
				return errf(ms.decl.Pos, "%s.%s overrides with different return type", cd.Name, name)
			}
		}
	}
	return nil
}

// lookupMethod resolves a method name along the class chain.
func (c *compiler) lookupMethod(cs *classSym, name string) *methodSym {
	for s := cs; s != nil; {
		if m, ok := s.methods[name]; ok {
			return m
		}
		if s.decl.Extends == "" {
			return nil
		}
		s = c.classes[s.decl.Extends]
	}
	return nil
}

// lookupField resolves a field name along the class chain.
func (c *compiler) lookupField(cs *classSym, name string) *ir.Field {
	for s := cs; s != nil; {
		if f, ok := s.fields[name]; ok {
			return f
		}
		if s.decl.Extends == "" {
			return nil
		}
		s = c.classes[s.decl.Extends]
	}
	return nil
}

// classSymOf maps an ir.Class back to its symbol.
func (c *compiler) classSymOf(cls *ir.Class) *classSym { return c.classes[cls.Name] }

// assignable reports whether a value of type src may be stored into dst.
func (c *compiler) assignable(dst, src *ir.Type) bool {
	if dst == src {
		return true
	}
	if dst == nil || src == nil {
		return false
	}
	// Both int-kinded named types (int vs boolean) are distinct.
	if !dst.IsRef() || !src.IsRef() {
		return false
	}
	if src == &c.nullT {
		return true // null to any reference
	}
	if dst.Class != nil && src.Class != nil {
		return src.Class.IsSubclassOf(dst.Class)
	}
	return false // arrays are invariant; distinct array types never unify
}

// typeName renders t for error messages.
func typeName(t *ir.Type) string {
	if t == nil {
		return "void"
	}
	if t.Kind == ir.KindRef && t.Class == nil && t.Elem == nil {
		return "null"
	}
	if t == ir.BoolType {
		return "boolean"
	}
	return t.String()
}
