package main

import (
	"context"
	"strings"
	"testing"

	"lowutil"
)

func TestCompileAllWorkloadsViaWorkbench(t *testing.T) {
	for _, name := range []string{"chart", "bloat", "tradesoap"} {
		prog := compile(name, 1)
		res, err := prog.RunContext(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Output) == 0 {
			t.Errorf("%s: no output", name)
		}
	}
}

// TestWorkbenchSlicePanel: the -slice path compiles a workload and renders
// the static report through the facade without executing the program.
func TestWorkbenchSlicePanel(t *testing.T) {
	prog := compile("chart", 1)
	for _, opts := range [][]lowutil.AnalysisOption{
		nil,
		staticOptions("cha", true, 5),
	} {
		rep, err := prog.StaticSliceContext(context.Background(), opts...)
		if err != nil {
			t.Fatalf("%v", err)
		}
		if !strings.Contains(rep, "static slice (mode=") {
			t.Errorf("malformed report:\n%s", rep)
		}
	}
}
