// Package client is the Go SDK for the lowutil profiling service
// (`lowutil serve`). Every call is context-aware, retries transient
// failures (connection errors, 429 admission rejections, 5xx responses
// the server marks retryable) with exponential backoff honoring
// Retry-After, and surfaces the service's unified error envelope as typed
// errors mirroring the lowutil facade: ErrCanceled for canceled work,
// CompileError for source rejections, ProfileError for failed runs.
//
// Batch jobs are submitted under an idempotency key — generated per call
// when the caller passes none — so a retried submission never duplicates
// work. Event streams resume from the last seen sequence number across
// reconnects; per-job sequence numbers are dense and timestamp-free, so a
// resumed stream is byte-identical to an uninterrupted one.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to one lowutil profiling service.
type Client struct {
	base        string
	hc          *http.Client
	maxRetries  int
	baseBackoff time.Duration
	maxBackoff  time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying http.Client (default:
// http.DefaultClient).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithMaxRetries bounds retries per call after the first attempt
// (default 3; 0 disables retrying).
func WithMaxRetries(n int) Option { return func(c *Client) { c.maxRetries = n } }

// WithBackoff sets the retry backoff: attempt k waits base·2^(k-1) capped
// at max, or the server's Retry-After when that is larger (default
// 100ms/2s).
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.baseBackoff, c.maxBackoff = base, max }
}

// New builds a client for the service at baseURL (e.g.
// "http://localhost:8347").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimRight(baseURL, "/"),
		hc:          http.DefaultClient,
		maxRetries:  3,
		baseBackoff: 100 * time.Millisecond,
		maxBackoff:  2 * time.Second,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// doJSON performs one API call with the retry loop: marshal in (nil =
// no body), POST/GET path, decode into out (nil = discard). Transport
// errors and responses the envelope marks retryable are retried up to
// MaxRetries times with capped exponential backoff, honoring Retry-After.
func (c *Client) doJSON(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := c.sleep(ctx, c.backoff(attempt), retryAfterOf(lastErr)); err != nil {
				return err
			}
		}
		lastErr = c.once(ctx, method, path, body, out)
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil {
			return wrapCtxErr(ctx, lastErr)
		}
		if attempt >= c.maxRetries || !IsRetryable(lastErr) {
			return lastErr
		}
	}
}

// once performs a single HTTP exchange.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return &transportError{err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return &transportError{err}
	}
	if resp.StatusCode >= 300 {
		return decodeAPIError(resp.StatusCode, resp.Header, raw)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

// backoff computes attempt k's base delay.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.baseBackoff << (attempt - 1)
	if d > c.maxBackoff || d <= 0 {
		d = c.maxBackoff
	}
	return d
}

// sleep waits for max(delay, retryAfter) or until ctx ends.
func (c *Client) sleep(ctx context.Context, delay, retryAfter time.Duration) error {
	if retryAfter > delay {
		delay = retryAfter
	}
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// wrapCtxErr prefers the caller's context error over whatever the aborted
// exchange produced, mirroring the facade's cancellation contract.
func wrapCtxErr(ctx context.Context, err error) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", context.DeadlineExceeded, err)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, err)
}

// newIdempotencyKey generates a batch key for callers that pass none: one
// key per SubmitBatch call, shared by every retry of that call.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to a time-derived key; uniqueness, not secrecy, is the goal.
		return fmt.Sprintf("k%x", time.Now().UnixNano())
	}
	return "k" + hex.EncodeToString(b[:])
}

// retryAfterOf extracts a server-requested delay from an API error.
func retryAfterOf(err error) time.Duration {
	var ae *Error
	if errors.As(err, &ae) && ae.RetryAfter > 0 {
		return ae.RetryAfter
	}
	return 0
}

// parseRetryAfter reads a Retry-After header in either RFC 9110 form:
// delay-seconds, or an HTTP-date (the delay to it on the local clock;
// dates already past, like garbage, mean "no requested delay").
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second
		}
		return 0
	}
	if when, err := http.ParseTime(v); err == nil {
		if d := time.Until(when); d > 0 {
			return d
		}
	}
	return 0
}
