// Package mjlib is the MJ container library: collection classes written in
// MJ that play the role of the Java collection framework in the paper. The
// cost-benefit analysis aggregates per-field metrics over object reference
// trees of height 4 precisely because that is "the reference chain length
// for the most complex container classes in the Java collection framework";
// these containers (map → bucket array → entry chain → values) produce
// exactly such trees.
//
// Use Concat to prepend the needed classes to a program:
//
//	src := mjlib.Concat(mjlib.IntMap, mjlib.ArrayList, userSource)
package mjlib

import "strings"

// Concat joins library fragments and user source into one compilation unit.
func Concat(parts ...string) string { return strings.Join(parts, "\n") }

// All returns the whole library.
func All() string {
	return Concat(ArrayList, IntMap, StrBuf, IntQueue, IntStack)
}

// ArrayList is a growable int list: add, get, set, size, contains, and an
// index-of scan. Growth doubles the backing array.
const ArrayList = `
class ArrayList {
  int[] data;
  int size;
  void init() { this.data = new int[4]; this.size = 0; }
  void grow() {
    int[] neu = new int[this.data.length * 2];
    for (int i = 0; i < this.size; i = i + 1) { neu[i] = this.data[i]; }
    this.data = neu;
  }
  void add(int v) {
    if (this.size == this.data.length) { this.grow(); }
    this.data[this.size] = v;
    this.size = this.size + 1;
  }
  int get(int i) { return this.data[i]; }
  void set(int i, int v) { this.data[i] = v; }
  int count() { return this.size; }
  int indexOf(int v) {
    for (int i = 0; i < this.size; i = i + 1) {
      if (this.data[i] == v) { return i; }
    }
    return -1;
  }
  boolean contains(int v) { return this.indexOf(v) >= 0; }
}`

// IntMap is a chained hash map from int to int: MapEntry chains hang off a
// bucket array, giving the four-level reference structure (map → buckets →
// entry → next entry) the paper's tree height targets. Rehashing doubles
// the bucket count at load factor 1.
const IntMap = `
class MapEntry {
  int key;
  int val;
  MapEntry next;
}
class IntMap {
  MapEntry[] buckets;
  int size;
  void init() { this.buckets = new MapEntry[8]; this.size = 0; }
  int bucketOf(int key) {
    int h = hash(key);
    int b = h % this.buckets.length;
    if (b < 0) { b = -b; }
    return b;
  }
  void put(int key, int val) {
    if (this.size >= this.buckets.length) { this.rehash(); }
    int b = this.bucketOf(key);
    MapEntry e = this.buckets[b];
    while (e != null) {
      if (e.key == key) { e.val = val; return; }
      e = e.next;
    }
    MapEntry ne = new MapEntry();
    ne.key = key;
    ne.val = val;
    ne.next = this.buckets[b];
    this.buckets[b] = ne;
    this.size = this.size + 1;
  }
  boolean has(int key) {
    MapEntry e = this.buckets[this.bucketOf(key)];
    while (e != null) {
      if (e.key == key) { return true; }
      e = e.next;
    }
    return false;
  }
  int get(int key, int dflt) {
    MapEntry e = this.buckets[this.bucketOf(key)];
    while (e != null) {
      if (e.key == key) { return e.val; }
      e = e.next;
    }
    return dflt;
  }
  void rehash() {
    MapEntry[] old = this.buckets;
    this.buckets = new MapEntry[old.length * 2];
    this.size = 0;
    for (int i = 0; i < old.length; i = i + 1) {
      MapEntry e = old[i];
      while (e != null) {
        this.put(e.key, e.val);
        e = e.next;
      }
    }
  }
  int count() { return this.size; }
}`

// StrBuf is the StringBuilder analogue: a growable character buffer with
// append, appendInt, and a checksum-style digest (MJ has no strings, so the
// digest stands in for toString()).
const StrBuf = `
class StrBuf {
  int[] chars;
  int len;
  void init() { this.chars = new int[16]; this.len = 0; }
  void append(int c) {
    if (this.len == this.chars.length) {
      int[] neu = new int[this.chars.length * 2];
      for (int i = 0; i < this.len; i = i + 1) { neu[i] = this.chars[i]; }
      this.chars = neu;
    }
    this.chars[this.len] = c;
    this.len = this.len + 1;
  }
  void appendInt(int v) {
    if (v == 0) { this.append(48); return; }
    if (v < 0) { this.append(45); v = -v; }
    int digits = 0;
    int tmp = v;
    while (tmp > 0) { digits = digits + 1; tmp = tmp / 10; }
    int div = 1;
    for (int i = 1; i < digits; i = i + 1) { div = div * 10; }
    while (div > 0) {
      this.append(48 + (v / div) % 10);
      div = div / 10;
    }
  }
  int digest() {
    int h = 17;
    for (int i = 0; i < this.len; i = i + 1) { h = h * 31 + this.chars[i]; }
    return h;
  }
  int length() { return this.len; }
}`

// IntQueue is a ring-buffer FIFO queue.
const IntQueue = `
class IntQueue {
  int[] ring;
  int head;
  int tail;
  int size;
  void init(int cap) { this.ring = new int[cap]; this.head = 0; this.tail = 0; this.size = 0; }
  boolean offer(int v) {
    if (this.size == this.ring.length) { return false; }
    this.ring[this.tail] = v;
    this.tail = (this.tail + 1) % this.ring.length;
    this.size = this.size + 1;
    return true;
  }
  int poll(int dflt) {
    if (this.size == 0) { return dflt; }
    int v = this.ring[this.head];
    this.head = (this.head + 1) % this.ring.length;
    this.size = this.size - 1;
    return v;
  }
  int count() { return this.size; }
}`

// IntStack is a growable LIFO stack.
const IntStack = `
class IntStack {
  int[] data;
  int sp;
  void init() { this.data = new int[8]; this.sp = 0; }
  void push(int v) {
    if (this.sp == this.data.length) {
      int[] neu = new int[this.data.length * 2];
      for (int i = 0; i < this.sp; i = i + 1) { neu[i] = this.data[i]; }
      this.data = neu;
    }
    this.data[this.sp] = v;
    this.sp = this.sp + 1;
  }
  int pop(int dflt) {
    if (this.sp == 0) { return dflt; }
    this.sp = this.sp - 1;
    return this.data[this.sp];
  }
  boolean empty() { return this.sp == 0; }
}`
