// Package par provides the bounded worker pool used by the analysis
// pipeline. Callers parallelize an index space and keep determinism by
// writing only to their own slot, then merging in index order.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach invokes fn(i) for every i in [0, n), spread over the given number
// of workers. workers <= 0 selects GOMAXPROCS; the pool is clamped to n.
// With one worker the calls run inline on the caller's goroutine, in order.
// ForEach returns after every call has finished.
func ForEach(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}
