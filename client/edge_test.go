package client_test

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lowutil/client"
	"lowutil/internal/jobs"
	"lowutil/internal/server"
)

// TestRetryAfterHTTPDate: proxies and caches speak the HTTP-date form of
// Retry-After, not delay-seconds; the typed error must carry the decoded
// delay either way.
func TestRetryAfterHTTPDate(t *testing.T) {
	base, _ := newService(t, server.Config{})
	inner := forwardTo(base)
	var injected atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v2/compile" && injected.CompareAndSwap(false, true) {
			w.Header().Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			io.WriteString(w, `{"error":{"code":"at_capacity","message":"busy","retryable":true}}`)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	c := fastClient(ts.URL, client.WithMaxRetries(0))
	_, err := c.Compile(context.Background(), workSrc)
	var ae *client.Error
	if !errors.As(err, &ae) || ae.Code != "at_capacity" {
		t.Fatalf("err = %v, want at_capacity *client.Error", err)
	}
	// The decoded delay is the distance to the date on the local clock:
	// positive, and no more than the 30s the header promised.
	if ae.RetryAfter <= 0 || ae.RetryAfter > 30*time.Second {
		t.Errorf("RetryAfter = %v, want within (0, 30s]", ae.RetryAfter)
	}
}

// forwardTo adapts a service base URL into a forwarding handler, so tests
// can put header-editing shims in front of a real service.
func forwardTo(base string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	})
}

// seqRecorder fronts a service, logging every events connection's ?after=
// alongside the last sequence number the client's callback had seen when
// that connection arrived, and aborting streams after a fixed number of
// lines to force reconnects.
type seqRecorder struct {
	h          http.Handler
	lastSeq    *atomic.Int64
	abortAfter int

	mu     sync.Mutex
	afters []int
	snaps  []int
}

func (p *seqRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasSuffix(r.URL.Path, "/events") {
		after, _ := strconv.Atoi(r.URL.Query().Get("after"))
		p.mu.Lock()
		p.afters = append(p.afters, after)
		p.snaps = append(p.snaps, int(p.lastSeq.Load()))
		p.mu.Unlock()
		if p.abortAfter > 0 {
			w = &abortWriter{ResponseWriter: w, max: p.abortAfter}
		}
	}
	p.h.ServeHTTP(w, r)
}

// TestEventsReconnectAtExactSequence pins the resume contract down to the
// query parameter: every reconnect must ask for ?after=<last sequence
// number the callback saw>, not one before (duplicates) or one after
// (holes). The existing reconnect test checks the reassembled stream;
// this one checks the wire.
func TestEventsReconnectAtExactSequence(t *testing.T) {
	var lastSeq atomic.Int64
	rec := &seqRecorder{lastSeq: &lastSeq, abortAfter: 2}
	s := server.New(server.Config{
		Logger: slog.New(slog.NewJSONHandler(io.Discard, nil)),
		Jobs: jobs.Config{
			BaseBackoff: time.Millisecond,
			MaxBackoff:  4 * time.Millisecond,
			FaultHook: func(jobID string, attempt int) error {
				if attempt == 1 { // lengthen the event log with one retry
					return jobs.Transient(errors.New("injected"))
				}
				return nil
			},
		},
	})
	rec.h = s.Handler()
	ts := httptest.NewServer(rec)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	c := fastClient(ts.URL)

	batch, err := c.SubmitBatch(context.Background(), "exact-seq", []client.Job{
		{Spec: client.Spec{Kind: client.KindRun, Source: workSrc}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	if err := c.Events(context.Background(), batch.Jobs[0].ID, 0, func(ev client.Event) error {
		seen = append(seen, ev.Seq)
		lastSeq.Store(int64(ev.Seq))
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	for i, seq := range seen {
		if seq != i+1 {
			t.Fatalf("delivered seqs not dense/exactly-once: %v", seen)
		}
	}
	rec.mu.Lock()
	afters, snaps := rec.afters, rec.snaps
	rec.mu.Unlock()
	if len(afters) < 2 {
		t.Fatalf("stream survived in %d connection(s); the recorder should have broken it", len(afters))
	}
	if afters[0] != 0 {
		t.Errorf("first connection asked for after=%d, want 0", afters[0])
	}
	// The client is strictly sequential — a reconnect happens only once the
	// prior connection's tail is fully delivered — so each connection's
	// after must equal the callback's high-water mark at that instant.
	for i, after := range afters {
		if after != snaps[i] {
			t.Errorf("connection %d asked for after=%d, but the callback had seen up to %d (afters %v, snaps %v)",
				i, after, snaps[i], afters, snaps)
		}
	}
}

// blankLineWriter injects an empty NDJSON line before every real one —
// some proxies and keep-alive middleboxes do this as a heartbeat, and the
// stream decoder must skip them rather than dying on a zero-length line.
type blankLineWriter struct {
	http.ResponseWriter
	injected *atomic.Int64
}

func (w *blankLineWriter) Write(b []byte) (int, error) {
	if _, err := w.ResponseWriter.Write([]byte("\n")); err != nil {
		return 0, err
	}
	w.injected.Add(1)
	return w.ResponseWriter.Write(b)
}

func (w *blankLineWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func TestEventsSkipBlankLines(t *testing.T) {
	var injected atomic.Int64
	s := server.New(server.Config{Logger: slog.New(slog.NewJSONHandler(io.Discard, nil))})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/events") {
			w = &blankLineWriter{ResponseWriter: w, injected: &injected}
		}
		s.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	c := fastClient(ts.URL)

	batch, err := c.SubmitBatch(context.Background(), "blank-lines", []client.Job{
		{Spec: client.Spec{Kind: client.KindRun, Source: workSrc}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var seen []client.Event
	if err := c.Events(context.Background(), batch.Jobs[0].ID, 0, func(ev client.Event) error {
		seen = append(seen, ev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if injected.Load() == 0 {
		t.Fatal("the shim injected no blank lines; the test exercised nothing")
	}
	for i, ev := range seen {
		if ev.Seq != i+1 {
			t.Fatalf("blank lines corrupted the stream: %+v", seen)
		}
	}
	if len(seen) == 0 || seen[len(seen)-1].Type != "done" {
		t.Fatalf("stream did not reach a terminal event: %+v", seen)
	}
}
