package par

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateBounds(t *testing.T) {
	g := NewGate(2)
	if g.Cap() != 2 {
		t.Fatalf("cap = %d, want 2", g.Cap())
	}
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("fresh gate refused slots")
	}
	if g.TryAcquire() {
		t.Fatal("full gate handed out a third slot")
	}
	if g.InFlight() != 2 {
		t.Fatalf("inflight = %d, want 2", g.InFlight())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("released slot not reusable")
	}
	g.Release()
	g.Release()
}

func TestGateAcquireCancel(t *testing.T) {
	g := NewGate(1)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked acquire: want DeadlineExceeded, got %v", err)
	}
	g.Release()
}

func TestGateConcurrent(t *testing.T) {
	g := NewGate(3)
	var mu sync.Mutex
	peak, cur := 0, 0
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(context.Background()); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			time.Sleep(time.Millisecond)
			mu.Lock()
			cur--
			mu.Unlock()
			g.Release()
		}()
	}
	wg.Wait()
	if peak > 3 {
		t.Errorf("peak concurrency %d exceeds gate capacity 3", peak)
	}
	if g.InFlight() != 0 {
		t.Errorf("inflight = %d after drain", g.InFlight())
	}
}
