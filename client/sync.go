package client

import (
	"context"
	"errors"
	"net/http"
)

// Synchronous endpoints: the same retry/backoff/typed-error treatment,
// applied to the service's direct /v2/* calls. Compile is idempotent on
// the server (sessions are content-addressed), so retrying a compile
// never duplicates state; profile runs are memoized per session and
// configuration, so a retried profile joins the original run.

type compilePayload struct {
	Source     string `json:"source"`
	MainClass  string `json:"main_class,omitempty"`
	MainMethod string `json:"main_method,omitempty"`
}

// Compile compiles source on the service and returns its session — the
// handle every other call takes. Sessions are content-addressed:
// compiling the same source again returns the same session.
func (c *Client) Compile(ctx context.Context, source string) (*CompileResult, error) {
	return c.CompileAt(ctx, source, "", "")
}

// CompileAt compiles source with an explicit entry point (empty strings
// mean Main.main).
func (c *Client) CompileAt(ctx context.Context, source, mainClass, mainMethod string) (*CompileResult, error) {
	if source == "" {
		return nil, errors.New("client: empty source")
	}
	var out CompileResult
	err := c.doJSON(ctx, http.MethodPost, "/v2/compile",
		compilePayload{Source: source, MainClass: mainClass, MainMethod: mainMethod}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Profile runs (or joins the memoized) profiling configuration and
// returns the ranked low-utility structures.
func (c *Client) Profile(ctx context.Context, req ProfileRequest) (*ProfileResult, error) {
	var out ProfileResult
	if err := c.doJSON(ctx, http.MethodPost, "/v2/profile", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Report renders the full text report for a profiling configuration.
func (c *Client) Report(ctx context.Context, req ProfileRequest) (*ReportResult, error) {
	var out ReportResult
	if err := c.doJSON(ctx, http.MethodPost, "/v2/report", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz reports whether the service answers its liveness probe.
func (c *Client) Healthz(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/healthz", nil, nil)
}
