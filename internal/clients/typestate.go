package clients

import (
	"fmt"
	"strings"

	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
)

// State is a typestate in a Protocol.
type State int

// Protocol is a typestate specification in the QVM style: objects from the
// tracked allocation sites start in Init, and each tracked method name moves
// the object between states. A call with no transition from the current
// state is a violation.
type Protocol struct {
	// NumStates bounds the state space (domain S).
	NumStates int
	// Init is the initial state of freshly allocated tracked objects.
	Init State
	// Transitions maps (state, method name) to the successor state.
	Transitions map[StateMethod]State
	// StateNames optionally names states for reports.
	StateNames []string
}

// StateMethod keys a transition.
type StateMethod struct {
	From   State
	Method string
}

// Tracked reports whether method participates in the protocol at all.
func (p *Protocol) tracked(method string) bool {
	for k := range p.Transitions {
		if k.Method == method {
			return true
		}
	}
	return false
}

func (p *Protocol) stateName(s State) string {
	if int(s) < len(p.StateNames) {
		return p.StateNames[s]
	}
	return fmt.Sprintf("s%d", s)
}

// Violation is a typestate protocol violation: a tracked method invoked in a
// state with no transition.
type Violation struct {
	Object   *interp.Object
	Site     int    // allocation site of the object
	Method   string // offending method
	In       *ir.Instr
	State    State
	StateStr string
	// History is the recorded event history for the object's abstraction
	// (instructions annotated with (site, state-before)).
	History []*depgraph.Node
}

func (v *Violation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "typestate violation: %s called in state %s on object from site %d\n",
		v.Method, v.StateStr, v.Site)
	for _, n := range v.History {
		fmt.Fprintf(&sb, "  %s pc %d (%s)\n", n.In.Method.QualifiedName(), n.In.PC, n.In)
	}
	return sb.String()
}

// TypestateTracker implements the typestate-history client of Figure 2(b):
// abstract dynamic slicing with domain D = O × S. Nodes are call
// instructions annotated with (allocation site, state before the call);
// next-event edges (stored as dependence edges, as the paper suggests —
// "def-use edges between nodes that write and read the object state tag")
// summarize per-object event histories into a DFA-like graph.
type TypestateTracker struct {
	G          *depgraph.Graph
	Proto      *Protocol
	Sites      map[int]bool // tracked allocation sites
	Violations []*Violation

	prog *ir.Program
}

// NewTypestateTracker tracks objects allocated at the given sites.
func NewTypestateTracker(prog *ir.Program, proto *Protocol, sites ...int) *TypestateTracker {
	ts := &TypestateTracker{
		G:     depgraph.New(prog),
		Proto: proto,
		Sites: make(map[int]bool, len(sites)),
		prog:  prog,
	}
	for _, s := range sites {
		ts.Sites[s] = true
	}
	return ts
}

// tsShadow is the per-object tag: current state plus the last event node
// (for next-event edges).
type tsShadow struct {
	state State
	last  *depgraph.Node
	dead  bool // violation already reported
}

func (ts *TypestateTracker) encode(site int, s State) int {
	return site*ts.Proto.NumStates + int(s)
}

// Exec implements interp.Tracer. Typestate only cares about calls, which
// arrive via BeforeCall.
func (ts *TypestateTracker) Exec(ev *interp.Event) {
	if ev.In.Op == ir.OpNew && ts.Sites[ev.In.AllocSite] {
		ev.New.Shadow = &tsShadow{state: ts.Proto.Init}
	}
}

// BeforeCall implements interp.Tracer: the abstraction function is defined
// only for invocations on tracked objects whose method can change state.
func (ts *TypestateTracker) BeforeCall(in *ir.Instr, caller *interp.Frame, callee *ir.Method, recv *interp.Object) {
	if recv == nil {
		return
	}
	sh, ok := recv.Shadow.(*tsShadow)
	if !ok || sh.dead || !ts.Proto.tracked(callee.Name) {
		return
	}
	n := ts.G.Touch(in, ts.encode(recv.Site, sh.state))
	if sh.last != nil {
		// Next-event edge: conceptually a def-use edge on the state tag.
		ts.G.AddDep(n, sh.last)
	}
	next, ok := ts.Proto.Transitions[StateMethod{sh.state, callee.Name}]
	if !ok {
		ts.Violations = append(ts.Violations, &Violation{
			Object:   recv,
			Site:     recv.Site,
			Method:   callee.Name,
			In:       in,
			State:    sh.state,
			StateStr: ts.Proto.stateName(sh.state),
			History:  ts.history(n),
		})
		sh.dead = true
		sh.last = n
		return
	}
	sh.state = next
	sh.last = n
}

// history walks the next-event chain backward from n.
func (ts *TypestateTracker) history(n *depgraph.Node) []*depgraph.Node {
	var out []*depgraph.Node
	seen := map[*depgraph.Node]bool{}
	cur := n
	for cur != nil && !seen[cur] {
		seen[cur] = true
		out = append(out, cur)
		var prev *depgraph.Node
		cur.Deps(func(d *depgraph.Node) {
			if prev == nil {
				prev = d
			}
		})
		cur = prev
	}
	// Reverse into chronological order.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// EnterMethod implements interp.Tracer.
func (ts *TypestateTracker) EnterMethod(fr *interp.Frame, recv *interp.Object) {}

// BeforeReturn implements interp.Tracer.
func (ts *TypestateTracker) BeforeReturn(in *ir.Instr, fr *interp.Frame) {}

// AfterCall implements interp.Tracer.
func (ts *TypestateTracker) AfterCall(in *ir.Instr, caller *interp.Frame, hasValue bool) {}

var _ interp.Tracer = (*TypestateTracker)(nil)
