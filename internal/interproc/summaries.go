package interproc

import (
	"context"
	"sort"

	"lowutil/internal/ir"
)

// Loc is an abstract heap location: a static field slot, or an (abstract
// object, field) pair. Field holds the static slot when Static is set, the
// dense field ID otherwise (ElemField for array elements).
type Loc struct {
	Static bool
	Obj    ObjID
	Field  int
}

func locLess(a, b Loc) bool {
	if a.Static != b.Static {
		return b.Static // object locs first, static locs last
	}
	if a.Obj != b.Obj {
		return a.Obj < b.Obj
	}
	return a.Field < b.Field
}

// Summaries holds the per-method interprocedural summaries: transitive
// mod/ref location sets and the load-taint facts the instrumentation pruner
// consumes. All tables are indexed by ir.Method.ID and populated only for
// call-graph-reachable methods.
type Summaries struct {
	CG *CallGraph
	PT *PointsTo

	// retTainted[m] reports whether m's return value may derive from a heap
	// read anywhere in the program (the interprocedural refinement of
	// "call results are always tainted").
	retTainted []bool
	// paramTainted[m][i] reports whether any reachable call site may pass a
	// heap-derived value as parameter i of m.
	paramTainted [][]bool
	// deadParam[m][i] reports that m never reads formal parameter i at all
	// (no use, base or value, of its entry definition).
	deadParam [][]bool

	// mod/ref[m] are the abstract locations m may write/read, transitively
	// through callees.
	mod []map[Loc]bool
	ref []map[Loc]bool
}

// newSummaries computes the summaries to a global fixpoint over cg, polling
// ctx once per outer fixpoint iteration.
func newSummaries(ctx context.Context, cg *CallGraph, pt *PointsTo, flows map[int]*methodFlow) (*Summaries, error) {
	nm := countMethods(cg.Prog)
	s := &Summaries{
		CG:           cg,
		PT:           pt,
		retTainted:   make([]bool, nm),
		paramTainted: make([][]bool, nm),
		deadParam:    make([][]bool, nm),
		mod:          make([]map[Loc]bool, nm),
		ref:          make([]map[Loc]bool, nm),
	}
	for _, m := range cg.Methods() {
		s.paramTainted[m.ID] = make([]bool, m.Params)
		s.deadParam[m.ID] = make([]bool, m.Params)
	}
	s.computeDeadParams(flows)
	if err := s.computeTaint(ctx, flows); err != nil {
		return nil, err
	}
	if err := s.computeModRef(ctx); err != nil {
		return nil, err
	}
	return s, nil
}

// computeDeadParams marks formals whose entry definition reaches no operand.
func (s *Summaries) computeDeadParams(flows map[int]*methodFlow) {
	for _, m := range s.CG.Methods() {
		read := make([]bool, m.Params)
		mf := flows[m.ID]
		for pc := range mf.operands {
			for _, op := range mf.operands[pc] {
				for _, d := range op.Defs {
					if isParamDef(m, d) {
						read[paramOfDef(m, d)] = true
					}
				}
			}
		}
		for i := range read {
			s.deadParam[m.ID][i] = !read[i]
		}
	}
}

// computeTaint runs the interprocedural load-taint fixpoint: a definition is
// tainted when its value may derive from a heap read, transitively through
// copies, arithmetic, parameter passing, and returns. The local transfer
// function mirrors staticanalysis.PruneSet exactly, with the two
// interprocedural refinements: a call result is tainted only when some
// resolved target's return is, and a formal is tainted only when some
// reachable call site passes a tainted actual.
func (s *Summaries) computeTaint(ctx context.Context, flows map[int]*methodFlow) error {
	for changed := true; changed; {
		changed = false
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, m := range s.CG.Methods() {
			mf := flows[m.ID]
			taint := s.localTaint(m, mf)
			// Return taint: any tainted def reaching a return operand.
			if !s.retTainted[m.ID] {
				for pc := range m.Code {
					in := &m.Code[pc]
					if in.Op != ir.OpReturn || !in.HasA {
						continue
					}
					for _, op := range mf.operands[pc] {
						for _, d := range op.Defs {
							if taint[d] {
								s.retTainted[m.ID] = true
								changed = true
							}
						}
					}
				}
			}
			// Parameter taint: push tainted actuals into targets.
			for pc := range m.Code {
				in := &m.Code[pc]
				if in.Op != ir.OpCall {
					continue
				}
				for ai, op := range mf.operands[pc] {
					argTainted := false
					for _, d := range op.Defs {
						if taint[d] {
							argTainted = true
							break
						}
					}
					if !argTainted {
						continue
					}
					for _, t := range s.CG.Targets(in) {
						if ai < len(s.paramTainted[t.ID]) && !s.paramTainted[t.ID][ai] {
							s.paramTainted[t.ID][ai] = true
							changed = true
						}
					}
				}
			}
		}
	}
	return nil
}

// localTaint computes per-definition taint for m under the current global
// assumptions. Indexes: pcs, then len(code)+slot parameter pseudo-defs.
func (s *Summaries) localTaint(m *ir.Method, mf *methodFlow) []bool {
	n := len(m.Code)
	taint := make([]bool, n+m.Params)
	for i := 0; i < m.Params; i++ {
		taint[n+i] = s.paramTainted[m.ID][i]
	}
	for pc := range m.Code {
		in := &m.Code[pc]
		if in.Def() < 0 {
			continue
		}
		switch in.Op {
		case ir.OpLoadField, ir.OpLoadStatic, ir.OpALoad, ir.OpArrayLen:
			taint[pc] = true
		case ir.OpCall:
			for _, t := range s.CG.Targets(in) {
				if s.retTainted[t.ID] {
					taint[pc] = true
					break
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for pc := range m.Code {
			if taint[pc] || m.Code[pc].Def() < 0 {
				continue
			}
			for _, op := range mf.operands[pc] {
				if op.Base {
					continue
				}
				for _, d := range op.Defs {
					if taint[d] {
						taint[pc] = true
						changed = true
					}
				}
			}
		}
	}
	return taint
}

// computeModRef collects direct heap effects per method via the points-to
// relation, then closes them transitively over the call graph.
func (s *Summaries) computeModRef(ctx context.Context) error {
	for _, m := range s.CG.Methods() {
		mod := make(map[Loc]bool)
		ref := make(map[Loc]bool)
		for pc := range m.Code {
			in := &m.Code[pc]
			switch in.Op {
			case ir.OpStoreField:
				for _, o := range s.PT.VarPT(m, in.A) {
					mod[Loc{Obj: o, Field: in.Field.ID}] = true
				}
			case ir.OpAStore:
				for _, o := range s.PT.VarPT(m, in.A) {
					mod[Loc{Obj: o, Field: ElemField}] = true
				}
			case ir.OpStoreStatic:
				mod[Loc{Static: true, Field: in.Static.Slot}] = true
			case ir.OpLoadField:
				for _, o := range s.PT.VarPT(m, in.A) {
					ref[Loc{Obj: o, Field: in.Field.ID}] = true
				}
			case ir.OpALoad, ir.OpArrayLen:
				for _, o := range s.PT.VarPT(m, in.A) {
					ref[Loc{Obj: o, Field: ElemField}] = true
				}
			case ir.OpLoadStatic:
				ref[Loc{Static: true, Field: in.Static.Slot}] = true
			}
		}
		s.mod[m.ID] = mod
		s.ref[m.ID] = ref
	}
	for changed := true; changed; {
		changed = false
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, m := range s.CG.Methods() {
			for pc := range m.Code {
				in := &m.Code[pc]
				if in.Op != ir.OpCall {
					continue
				}
				for _, t := range s.CG.Targets(in) {
					for l := range s.mod[t.ID] {
						if !s.mod[m.ID][l] {
							s.mod[m.ID][l] = true
							changed = true
						}
					}
					for l := range s.ref[t.ID] {
						if !s.ref[m.ID][l] {
							s.ref[m.ID][l] = true
							changed = true
						}
					}
				}
			}
		}
	}
	return nil
}

// Covers reports whether the summaries carry refined facts for m (i.e. m is
// reachable in the call graph). Callers must fall back to conservative
// assumptions for uncovered methods.
func (s *Summaries) Covers(m *ir.Method) bool { return s.CG.Reachable(m) }

// RetTainted reports whether m's return value may derive from a heap read.
func (s *Summaries) RetTainted(m *ir.Method) bool { return s.retTainted[m.ID] }

// CallResultTainted reports whether the result of OpCall site in may derive
// from a heap read — true iff some resolved target has a tainted return.
func (s *Summaries) CallResultTainted(in *ir.Instr) bool {
	for _, t := range s.CG.Targets(in) {
		if s.retTainted[t.ID] {
			return true
		}
	}
	return false
}

// ParamTainted reports whether parameter slot of m may receive a
// heap-derived value from any reachable call site.
func (s *Summaries) ParamTainted(m *ir.Method, slot int) bool {
	if slot >= len(s.paramTainted[m.ID]) {
		return false
	}
	return s.paramTainted[m.ID][slot]
}

// DeadParam reports whether m never reads formal parameter slot.
func (s *Summaries) DeadParam(m *ir.Method, slot int) bool {
	if slot >= len(s.deadParam[m.ID]) {
		return false
	}
	return s.deadParam[m.ID][slot]
}

// ArgIgnoredByAllTargets reports whether argument position ai of call site
// in is dead in every resolved target — the value is computed by the caller
// and then read by no callee. False when the site resolves to no target.
func (s *Summaries) ArgIgnoredByAllTargets(in *ir.Instr, ai int) bool {
	ts := s.CG.Targets(in)
	if len(ts) == 0 {
		return false
	}
	for _, t := range ts {
		if !s.DeadParam(t, ai) {
			return false
		}
	}
	return true
}

// Mod returns the abstract locations m may write, transitively, sorted.
func (s *Summaries) Mod(m *ir.Method) []Loc { return sortedLocs(s.mod[m.ID]) }

// Ref returns the abstract locations m may read, transitively, sorted.
func (s *Summaries) Ref(m *ir.Method) []Loc { return sortedLocs(s.ref[m.ID]) }

func sortedLocs(set map[Loc]bool) []Loc {
	out := make([]Loc, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return locLess(out[i], out[j]) })
	return out
}
