// Package casestudies reproduces the six case studies of §4.2 of the paper:
// sunflow, eclipse, bloat, derby, tomcat, and tradebeans. Each study is a
// pair of MJ programs — a bloated variant exhibiting exactly the
// high-cost-low-benefit pattern the paper describes, and an optimized
// variant applying the paper's fix — plus the metadata needed to check that
// the cost-benefit tool actually flags the planted structure.
//
// Both variants compute identical observable output (the harness verifies
// this), so the work reduction is a pure measure of removed bloat. The
// paper reports wall-clock improvements of 2%–37%; we report reductions in
// executed instructions plus synthetic native work, which is the analogous
// quantity on this substrate.
package casestudies

import (
	"fmt"
	"sort"

	"lowutil/internal/costben"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/mjc"
	"lowutil/internal/profiler"
)

// CaseStudy is one paired experiment.
type CaseStudy struct {
	Name string
	// Pattern describes the planted bloat; Fix describes the optimization.
	Pattern string
	Fix     string
	// PaperResult quotes the paper's measured improvement.
	PaperResult string

	// Bloated and Optimized render the two variants at a scale factor.
	Bloated   func(scale int) string
	Optimized func(scale int) string

	// SuspectClasses / SuspectMethods identify the planted allocation
	// sites: a site matches if its class name is listed, or if it occurs
	// inside a listed method (qualified name), covering array sites.
	SuspectClasses []string
	SuspectMethods []string
}

// Result is the outcome of running one case study.
type Result struct {
	Name string

	// Work is executed instructions + synthetic native work.
	BloatedWork, OptimizedWork     int64
	BloatedAllocs, OptimizedAllocs int64

	// WorkReduction and AllocReduction are fractions in [0, 1].
	WorkReduction, AllocReduction float64

	// SuspectRank is the 1-based rank of the best-matching planted site in
	// the cost-benefit report for the bloated variant (0 if not found).
	SuspectRank int
	// TopReport is the rendered top of the ranking, for human inspection.
	TopReport string
}

func (r *Result) String() string {
	return fmt.Sprintf("%-11s work %9d → %9d (-%5.1f%%)  allocs %7d → %7d (-%5.1f%%)  suspect rank %d",
		r.Name, r.BloatedWork, r.OptimizedWork, 100*r.WorkReduction,
		r.BloatedAllocs, r.OptimizedAllocs, 100*r.AllocReduction, r.SuspectRank)
}

// Run executes both variants, verifies output equivalence, profiles the
// bloated variant, and assembles the Result.
func (cs *CaseStudy) Run(scale int, slots int) (*Result, error) {
	bloated, err := mjc.Compile(cs.Bloated(scale))
	if err != nil {
		return nil, fmt.Errorf("%s bloated: %w", cs.Name, err)
	}
	optimized, err := mjc.Compile(cs.Optimized(scale))
	if err != nil {
		return nil, fmt.Errorf("%s optimized: %w", cs.Name, err)
	}

	mb := interp.New(bloated)
	if err := mb.Run(); err != nil {
		return nil, fmt.Errorf("%s bloated run: %w", cs.Name, err)
	}
	mo := interp.New(optimized)
	if err := mo.Run(); err != nil {
		return nil, fmt.Errorf("%s optimized run: %w", cs.Name, err)
	}
	if len(mb.Output) != len(mo.Output) {
		return nil, fmt.Errorf("%s: output lengths differ (%d vs %d) — the optimization changed behaviour",
			cs.Name, len(mb.Output), len(mo.Output))
	}
	for i := range mb.Output {
		if mb.Output[i] != mo.Output[i] {
			return nil, fmt.Errorf("%s: output[%d] differs (%d vs %d) — the optimization changed behaviour",
				cs.Name, i, mb.Output[i], mo.Output[i])
		}
	}

	res := &Result{
		Name:            cs.Name,
		BloatedWork:     mb.Steps + mb.NativeWork,
		OptimizedWork:   mo.Steps + mo.NativeWork,
		BloatedAllocs:   mb.Allocs,
		OptimizedAllocs: mo.Allocs,
	}
	if res.BloatedWork > 0 {
		res.WorkReduction = float64(res.BloatedWork-res.OptimizedWork) / float64(res.BloatedWork)
	}
	if res.BloatedAllocs > 0 {
		res.AllocReduction = float64(res.BloatedAllocs-res.OptimizedAllocs) / float64(res.BloatedAllocs)
	}

	// Detection: profile the bloated variant and locate the planted sites.
	p := profiler.New(bloated, profiler.Options{Slots: slots})
	mp := interp.New(bloated)
	mp.Tracer = p
	if err := mp.Run(); err != nil {
		return nil, fmt.Errorf("%s profiled run: %w", cs.Name, err)
	}
	a := costben.NewAnalysis(p.G)
	ranking := a.RankBySite(costben.DefaultTreeHeight)
	res.TopReport = costben.FormatTop(ranking, 8)
	for i, r := range ranking {
		if cs.matches(r.Site) {
			res.SuspectRank = i + 1
			break
		}
	}
	return res, nil
}

func (cs *CaseStudy) matches(site *ir.Instr) bool {
	if site.Op == ir.OpNew {
		for _, name := range cs.SuspectClasses {
			if site.Class.Name == name {
				return true
			}
		}
	}
	qn := site.Method.QualifiedName()
	for _, m := range cs.SuspectMethods {
		if qn == m {
			return true
		}
	}
	return false
}

var studies []*CaseStudy

func registerStudy(cs *CaseStudy) { studies = append(studies, cs) }

// All returns the six case studies in the paper's order.
func All() []*CaseStudy {
	out := make([]*CaseStudy, len(studies))
	copy(out, studies)
	sort.Slice(out, func(i, j int) bool { return studyOrder(out[i].Name) < studyOrder(out[j].Name) })
	return out
}

func studyOrder(name string) int {
	order := map[string]int{"sunflow": 0, "eclipse": 1, "bloat": 2, "derby": 3, "tomcat": 4, "tradebeans": 5}
	if i, ok := order[name]; ok {
		return i
	}
	return 99
}

// ByName returns a case study or nil.
func ByName(name string) *CaseStudy {
	for _, cs := range studies {
		if cs.Name == name {
			return cs
		}
	}
	return nil
}
