package clients

import (
	"fmt"
	"sort"
	"strings"

	"lowutil/internal/costben"
	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/profiler"
)

// ---- Method-level relative cost ----

// MethodCostTracker wraps the cost-benefit profiler and additionally records
// the dependence node of every returned value, keyed by the returning
// method. MethodCosts then answers "how much stack work does this method do
// to produce its return value, relative to its inputs (heap reads, values
// from callees, and parameters)?" — one of the §3.2 client analyses.
type MethodCostTracker struct {
	*profiler.Profiler
	retNodes map[*ir.Method]map[*depgraph.Node]struct{}
}

// NewMethodCostTracker wraps p.
func NewMethodCostTracker(p *profiler.Profiler) *MethodCostTracker {
	return &MethodCostTracker{
		Profiler: p,
		retNodes: make(map[*ir.Method]map[*depgraph.Node]struct{}),
	}
}

// BeforeReturn implements interp.Tracer, recording return-value nodes.
func (mc *MethodCostTracker) BeforeReturn(in *ir.Instr, fr *interp.Frame) {
	mc.Profiler.BeforeReturn(in, fr)
	if !in.HasA {
		return
	}
	// The profiler just staged the return value's node for the caller to
	// pop; read it there instead of re-deriving the popped frame's shadow.
	if n := mc.Profiler.StagedReturn(); n != nil {
		set := mc.retNodes[in.Method]
		if set == nil {
			set = make(map[*depgraph.Node]struct{}, 4)
			mc.retNodes[in.Method] = set
		}
		set[n] = struct{}{}
	}
}

// MethodCost is the report entry for one method.
type MethodCost struct {
	Method *ir.Method
	// RelCost is the mean, over returned values, of the frequency-weighted
	// work done by the method's own instructions to produce the value
	// (stopping at heap reads, parameters, and callee-produced values).
	RelCost float64
	// Returns is how many distinct return-value abstractions were seen.
	Returns int
}

// MethodCosts computes the method-level relative cost report, most
// expensive first.
func (mc *MethodCostTracker) MethodCosts() []MethodCost {
	var out []MethodCost
	for m, set := range mc.retNodes {
		var total int64
		for n := range set {
			total += relCostWithin(n, m)
		}
		out = append(out, MethodCost{
			Method:  m,
			RelCost: float64(total) / float64(len(set)),
			Returns: len(set),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RelCost != out[j].RelCost {
			return out[i].RelCost > out[j].RelCost
		}
		return out[i].Method.QualifiedName() < out[j].Method.QualifiedName()
	})
	return out
}

// relCostWithin is an HRAC-style backward sum restricted to nodes of method
// m: heap reads and nodes of other methods terminate the walk uncounted.
func relCostWithin(seed *depgraph.Node, m *ir.Method) int64 {
	if seed == nil {
		return 0
	}
	sum := seed.Freq()
	visited := map[*depgraph.Node]struct{}{seed: {}}
	stack := []*depgraph.Node{seed}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		cur.Deps(func(d *depgraph.Node) {
			if _, ok := visited[d]; ok {
				return
			}
			visited[d] = struct{}{}
			if d.ReadsHeap() || d.In.Method != m {
				return
			}
			sum += d.Freq()
			stack = append(stack, d)
		})
	}
	return sum
}

// ---- Rewritten-before-read detection ----

// RewriteTracker finds heap locations that are written again before the
// previous value is ever read — the derby FileContainer symptom ("it is
// written much more frequently (with the same data) than being read").
// Aggregation is per (allocation site, field).
type RewriteTracker struct {
	interp.NopTracer
	// counts[key] = {writes, silentOverwrites, reads}
	counts map[rwKey]*rwCounts
}

type rwKey struct {
	site  int // -1 for statics
	field int
}

type rwCounts struct {
	Writes     int64
	Overwrites int64 // writes whose previous value was never read
	Reads      int64
}

type rwObjShadow struct {
	unread []bool // per slot: was the last write never read?
}

// NewRewriteTracker returns a tracker.
func NewRewriteTracker(prog *ir.Program) *RewriteTracker {
	return &RewriteTracker{counts: make(map[rwKey]*rwCounts)}
}

func (rw *RewriteTracker) cnt(key rwKey) *rwCounts {
	c := rw.counts[key]
	if c == nil {
		c = &rwCounts{}
		rw.counts[key] = c
	}
	return c
}

func (rw *RewriteTracker) oshadow(o *interp.Object) *rwObjShadow {
	if os, ok := o.Shadow.(*rwObjShadow); ok {
		return os
	}
	n := len(o.Fields)
	if o.IsArray() {
		n = len(o.Elems)
	}
	os := &rwObjShadow{unread: make([]bool, n)}
	o.Shadow = os
	return os
}

// Exec implements interp.Tracer.
func (rw *RewriteTracker) Exec(ev *interp.Event) {
	in := ev.In
	switch in.Op {
	case ir.OpStoreField:
		os := rw.oshadow(ev.Base)
		c := rw.cnt(rwKey{ev.Base.Site, in.Field.ID})
		c.Writes++
		if os.unread[in.Field.Slot] {
			c.Overwrites++
		}
		os.unread[in.Field.Slot] = true
	case ir.OpLoadField:
		os := rw.oshadow(ev.Base)
		rw.cnt(rwKey{ev.Base.Site, in.Field.ID}).Reads++
		os.unread[in.Field.Slot] = false
	case ir.OpAStore:
		os := rw.oshadow(ev.Base)
		c := rw.cnt(rwKey{ev.Base.Site, depgraph.ElemField})
		c.Writes++
		if os.unread[ev.Index] {
			c.Overwrites++
		}
		os.unread[ev.Index] = true
	case ir.OpALoad:
		os := rw.oshadow(ev.Base)
		rw.cnt(rwKey{ev.Base.Site, depgraph.ElemField}).Reads++
		os.unread[ev.Index] = false
	}
}

// RewriteReport is one suspicious location.
type RewriteReport struct {
	Site       int
	Field      int
	Writes     int64
	Overwrites int64
	Reads      int64
}

// OverwriteRatio is the fraction of writes that were never read.
func (r RewriteReport) OverwriteRatio() float64 {
	if r.Writes == 0 {
		return 0
	}
	return float64(r.Overwrites) / float64(r.Writes)
}

func (r RewriteReport) String() string {
	f := fmt.Sprintf("f%d", r.Field)
	if r.Field == depgraph.ElemField {
		f = "ELM"
	}
	return fmt.Sprintf("O%d.%s: %d writes, %d silent overwrites (%.0f%%), %d reads",
		r.Site, f, r.Writes, r.Overwrites, 100*r.OverwriteRatio(), r.Reads)
}

// Report returns locations ordered by silent-overwrite count.
func (rw *RewriteTracker) Report(minWrites int64) []RewriteReport {
	var out []RewriteReport
	for k, c := range rw.counts {
		if c.Writes < minWrites {
			continue
		}
		out = append(out, RewriteReport{Site: k.site, Field: k.field,
			Writes: c.Writes, Overwrites: c.Overwrites, Reads: c.Reads})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Overwrites != out[j].Overwrites {
			return out[i].Overwrites > out[j].Overwrites
		}
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		// Without the field tiebreak, two fields of the same site with equal
		// overwrite counts land in map-iteration order.
		return out[i].Field < out[j].Field
	})
	return out
}

// ---- Always-true / always-false predicates ----

// PredicateTracker counts branch outcomes per if instruction and reports
// predicates that always evaluate the same way — the bloat Assert.isTrue
// symptom ("such conditions can rarely evaluate to true, and there is no
// benefit in constructing these objects").
type PredicateTracker struct {
	interp.NopTracer
	taken    []int64
	notTaken []int64
	prog     *ir.Program
}

// NewPredicateTracker returns a tracker for prog.
func NewPredicateTracker(prog *ir.Program) *PredicateTracker {
	n := prog.NumInstrs()
	return &PredicateTracker{taken: make([]int64, n), notTaken: make([]int64, n), prog: prog}
}

// Exec implements interp.Tracer.
func (pt *PredicateTracker) Exec(ev *interp.Event) {
	if ev.In.Op != ir.OpIf {
		return
	}
	if ev.Taken {
		pt.taken[ev.In.ID]++
	} else {
		pt.notTaken[ev.In.ID]++
	}
}

// ConstantPredicate is a predicate with a single observed outcome.
type ConstantPredicate struct {
	In    *ir.Instr
	Taken bool // the constant outcome
	Count int64
}

func (c ConstantPredicate) String() string {
	return fmt.Sprintf("%s pc %d (%s): always %v ×%d",
		c.In.Method.QualifiedName(), c.In.PC, c.In, c.Taken, c.Count)
}

// Constants returns predicates executed at least minExec times with a single
// outcome, by descending execution count.
func (pt *PredicateTracker) Constants(minExec int64) []ConstantPredicate {
	var out []ConstantPredicate
	for _, in := range pt.prog.Instrs {
		if in.Op != ir.OpIf {
			continue
		}
		t, n := pt.taken[in.ID], pt.notTaken[in.ID]
		switch {
		case t >= minExec && n == 0:
			out = append(out, ConstantPredicate{In: in, Taken: true, Count: t})
		case n >= minExec && t == 0:
			out = append(out, ConstantPredicate{In: in, Taken: false, Count: n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].In.ID < out[j].In.ID
	})
	return out
}

// ---- Collection ranking ----

// IsContainerClass is the default predicate for collection ranking: a class
// with an array-typed field, or whose name suggests a container.
func IsContainerClass(c *ir.Class) bool {
	for cl := c; cl != nil; cl = cl.Super {
		for _, f := range cl.Fields {
			if f.Type.IsArray() {
				return true
			}
		}
	}
	name := c.Name
	for _, frag := range []string{"List", "Map", "Set", "Table", "Vector", "Queue", "Stack", "Buffer"} {
		if strings.Contains(name, frag) {
			return true
		}
	}
	return false
}

// RankCollections ranks container allocation sites by cost-benefit rate —
// the §3.2 client that "searches for problematic collections by ranking
// collection objects based on their RAC/RAB rates".
func RankCollections(a *costben.Analysis, height int, isContainer func(*ir.Class) bool) []*costben.SiteReport {
	if isContainer == nil {
		isContainer = IsContainerClass
	}
	all := a.RankBySite(height)
	var out []*costben.SiteReport
	for _, r := range all {
		if r.Site.Op == ir.OpNew && isContainer(r.Site.Class) {
			out = append(out, r)
		}
	}
	return out
}
