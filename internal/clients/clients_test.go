package clients

import (
	"strings"
	"testing"

	"lowutil/internal/costben"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/mjc"
	"lowutil/internal/profiler"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := mjc.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return prog
}

// TestNullPropagationFigure2a reproduces Figure 2(a): a null created in one
// place flows through field copies and is dereferenced far away; the client
// must name the creation site and the flow.
func TestNullPropagationFigure2a(t *testing.T) {
	prog := compile(t, `
class A { A f; int g; }
class Main {
  static void main() {
    A a1 = new A();      // a1.f left null by the constructor
    A b = a1.f;          // b = null        (line 6)
    A c = b;             // c = null        (line 7)
    A a2 = new A();
    a2.f = c;            // a2.f = null
    A e = a2.f;          // e = null
    int h = e.g + 1;     // NPE: e is null  (deref at line 11)
  }
}`)
	nt := NewNullTracker(prog)
	m := interp.New(prog)
	m.Tracer = nt
	err := m.Run()
	if err == nil {
		t.Fatal("expected an NPE")
	}
	rep, ok := nt.Diagnose(err)
	if !ok {
		t.Fatalf("Diagnose failed for %v", err)
	}
	// The origin must be the load of a1.f (the first instruction that
	// produced the null into the flow) — a getfield in Main.main.
	if rep.Origin.Op != ir.OpLoadField {
		t.Errorf("origin = %v, want the a1.f load", rep.Origin)
	}
	if len(rep.Flow) < 3 {
		t.Errorf("flow too short: %d nodes\n%s", len(rep.Flow), rep)
	}
	if rep.Deref.Method.QualifiedName() != "Main.main" {
		t.Errorf("deref in %s", rep.Deref.Method.QualifiedName())
	}
	s := rep.String()
	if !strings.Contains(s, "null created at") || !strings.Contains(s, "dereferenced at") {
		t.Errorf("report misses sections:\n%s", s)
	}
}

func TestNullDiagnoseOnCallReceiver(t *testing.T) {
	prog := compile(t, `
class A { int run() { return 1; } }
class Main {
  static void main() {
    A a = null;
    int x = a.run();
  }
}`)
	nt := NewNullTracker(prog)
	m := interp.New(prog)
	m.Tracer = nt
	err := m.Run()
	rep, ok := nt.Diagnose(err)
	if !ok {
		t.Fatalf("Diagnose failed: %v", err)
	}
	if rep.Origin.Op != ir.OpConst || !rep.Origin.IsNull {
		t.Errorf("origin = %v, want the null constant", rep.Origin)
	}
}

// TestTypestateFigure2b reproduces Figure 2(b): a File protocol
// (uninitialized → open → closed) violated by reading after close.
func TestTypestateFigure2b(t *testing.T) {
	prog := compile(t, `
class File {
  int state;
  void create() { this.state = 1; }
  void put(int b) { this.state = this.state; }
  void close() { this.state = 2; }
  int get() { return 7; }
}
class Main {
  static void main() {
    File f = new File();
    f.create();
    f.put(1);
    f.put(2);
    f.close();
    int b = f.get();   // protocol violation: read after close
    print(b);
  }
}`)
	const (
		sUninit State = iota
		sOpenEmpty
		sOpenNonEmpty
		sClosed
	)
	proto := &Protocol{
		NumStates:  4,
		Init:       sUninit,
		StateNames: []string{"uninitialized", "open-empty", "open-nonempty", "closed"},
		Transitions: map[StateMethod]State{
			{sUninit, "create"}:      sOpenEmpty,
			{sOpenEmpty, "put"}:      sOpenNonEmpty,
			{sOpenNonEmpty, "put"}:   sOpenNonEmpty,
			{sOpenEmpty, "get"}:      sOpenEmpty,
			{sOpenNonEmpty, "get"}:   sOpenNonEmpty,
			{sOpenEmpty, "close"}:    sClosed,
			{sOpenNonEmpty, "close"}: sClosed,
		},
	}
	// The File allocation is the only OpNew in Main.main.
	site := -1
	for _, in := range prog.Instrs {
		if in.Op == ir.OpNew && in.Class.Name == "File" {
			site = in.AllocSite
		}
	}
	if site < 0 {
		t.Fatal("no File allocation site")
	}
	ts := NewTypestateTracker(prog, proto, site)
	m := interp.New(prog)
	m.Tracer = ts
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ts.Violations) != 1 {
		t.Fatalf("violations = %d, want 1", len(ts.Violations))
	}
	v := ts.Violations[0]
	if v.Method != "get" || v.StateStr != "closed" {
		t.Errorf("violation = %s in %s, want get in closed", v.Method, v.StateStr)
	}
	// History: create, put, put(merged), close, get. Under abstraction the
	// two puts in the same state merge; expect at least 4 events.
	if len(v.History) < 4 {
		t.Errorf("history too short: %d\n%s", len(v.History), v)
	}
	// Graph stays bounded: nodes ≤ tracked call sites × states.
	if ts.G.NumNodes() > 5*proto.NumStates {
		t.Errorf("typestate graph too large: %d nodes", ts.G.NumNodes())
	}
}

// TestCopyProfilingFigure2c reproduces Figure 2(c): a value loaded from
// O1.f travels through stack copies b, c into O3.f; the chain must be
// recoverable with its intermediate stack hops.
func TestCopyProfilingFigure2c(t *testing.T) {
	prog := compile(t, `
class A { int f; }
class Main {
  static void main() {
    A a1 = new A();       // O1
    a1.f = 41;
    int b = a1.f;         // load
    int c = b;            // stack copy
    A a3 = new A();       // O3
    a3.f = c;             // store: completes the chain O1.f -> O3.f
    print(a3.f);
  }
}`)
	cp := NewCopyProfiler(prog)
	m := interp.New(prog)
	m.Tracer = cp
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	chains := cp.Chains()
	var found *Chain
	for i := range chains {
		c := &chains[i]
		if !c.Src.IsBottom() && c.Src.Field >= 0 && !c.Dst.IsBottom() && c.Src.Site != c.Dst.Site {
			found = c
			break
		}
	}
	if found == nil {
		t.Fatalf("no cross-object copy chain found:\n%s", FormatChains(chains, 10))
	}
	if found.Count != 1 {
		t.Errorf("chain count = %d, want 1", found.Count)
	}
	if found.StackHops < 1 {
		t.Errorf("chain lost its intermediate stack copies: %v", found)
	}
}

func TestCopyProfilerCountsCopies(t *testing.T) {
	prog := compile(t, `
class Box { int v; }
class Main {
  static void main() {
    Box b = new Box();
    b.v = 1;
    int s = 0;
    for (int i = 0; i < 50; i = i + 1) {
      int x = b.v;   // load copy
      int y = x;     // stack copy
      s = s + y;
    }
    print(s);
  }
}`)
	cp := NewCopyProfiler(prog)
	m := interp.New(prog)
	m.Tracer = cp
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if cp.TotalCopies < 150 {
		t.Errorf("TotalCopies = %d, want >= 150", cp.TotalCopies)
	}
	// Abstraction keeps the graph bounded by |I| × |D| in principle and tiny
	// in practice.
	if cp.G.NumNodes() > prog.NumInstrs()*4 {
		t.Errorf("copy graph too large: %d nodes for %d instrs", cp.G.NumNodes(), prog.NumInstrs())
	}
}

// TestMethodCosts: an expensive pure computation method must out-rank a
// cheap accessor.
func TestMethodCosts(t *testing.T) {
	prog := compile(t, `
class Calc {
  int cheap(int x) { return x + 1; }
  int pricey(int x) {
    int s = 0;
    for (int i = 0; i < 200; i = i + 1) { s = s + i * x; }
    return s;
  }
}
class Main {
  static void main() {
    Calc c = new Calc();
    int a = c.cheap(1);
    int b = c.pricey(2);
    print(a + b);
  }
}`)
	p := profiler.New(prog, profiler.Options{Slots: 16})
	mct := NewMethodCostTracker(p)
	m := interp.New(prog)
	m.Tracer = mct
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	costs := mct.MethodCosts()
	idx := map[string]int{}
	val := map[string]float64{}
	for i, c := range costs {
		idx[c.Method.Name] = i
		val[c.Method.Name] = c.RelCost
	}
	if _, ok := idx["pricey"]; !ok {
		t.Fatalf("pricey missing from report: %+v", costs)
	}
	if idx["pricey"] > idx["cheap"] {
		t.Errorf("pricey (%.0f) should rank above cheap (%.0f)", val["pricey"], val["cheap"])
	}
	if val["pricey"] < 100 {
		t.Errorf("pricey RelCost = %.0f, want >= 100", val["pricey"])
	}
}

// TestRewriteTracker: the derby pattern — an array updated on every
// operation but read rarely.
func TestRewriteTracker(t *testing.T) {
	prog := compile(t, `
class Container {
  int[] info;
  void update(int v) {
    this.info[0] = v;
    this.info[1] = v + 1;
  }
}
class Main {
  static void main() {
    Container c = new Container();
    c.info = new int[2];
    for (int i = 0; i < 100; i = i + 1) { c.update(i); }
    print(c.info[0]);   // single read at the end
  }
}`)
	rw := NewRewriteTracker(prog)
	m := interp.New(prog)
	m.Tracer = rw
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	reps := rw.Report(10)
	if len(reps) == 0 {
		t.Fatal("no rewrite reports")
	}
	top := reps[0]
	if top.Overwrites < 150 { // ~199 of 200 element writes are silent
		t.Errorf("top overwrites = %d, want >= 150\n%v", top.Overwrites, top)
	}
	if top.OverwriteRatio() < 0.7 {
		t.Errorf("overwrite ratio = %.2f, want >= 0.7", top.OverwriteRatio())
	}
}

// TestPredicateTracker: the bloat pattern — debug predicates that never
// fire.
func TestPredicateTracker(t *testing.T) {
	prog := compile(t, `
class Main {
  static void main() {
    int debug = 0;
    int work = 0;
    for (int i = 0; i < 500; i = i + 1) {
      if (debug == 1) { print(i); }       // always false
      if (i % 2 == 0) { work = work + 1; } // mixed
    }
    print(work);
  }
}`)
	pt := NewPredicateTracker(prog)
	m := interp.New(prog)
	m.Tracer = pt
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	consts := pt.Constants(100)
	// Exactly two constant predicates: the debug check and the loop bound's
	// exit check never... the loop check is mixed (true at exit), so expect
	// the debug check plus none else with 100+ single-outcome executions.
	foundDebug := false
	for _, c := range consts {
		if c.Count >= 490 && c.Count <= 510 {
			foundDebug = true
		}
	}
	if !foundDebug {
		t.Errorf("debug predicate not flagged: %+v", consts)
	}
}

// TestRankCollections: containers rank by cost-benefit; a write-only list
// must beat a well-used one.
func TestRankCollections(t *testing.T) {
	prog := compile(t, `
class IntList {
  int[] data;
  int size;
  void add(int v) { this.data[this.size] = v; this.size = this.size + 1; }
  int get(int i) { return this.data[i]; }
}
class Main {
  static void main() {
    IntList used = new IntList();
    used.data = new int[100];
    IntList wasted = new IntList();
    wasted.data = new int[100];
    int s = 0;
    for (int i = 0; i < 100; i = i + 1) {
      used.add(i * 3 + 1);
      wasted.add(i * 7 + 2);
      s = s + used.get(i);
    }
    print(s);
  }
}`)
	p := profiler.New(prog, profiler.Options{Slots: 64})
	m := interp.New(prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	a := costben.NewAnalysis(p.G)
	ranked := RankCollections(a, costben.DefaultTreeHeight, nil)
	if len(ranked) < 2 {
		t.Fatalf("expected >= 2 container sites, got %d", len(ranked))
	}
	// Identify the wasted list's site: it is the IntList allocated second.
	var usedSite, wastedSite = -1, -1
	seen := 0
	for _, in := range prog.Instrs {
		if in.Op == ir.OpNew && in.Class.Name == "IntList" {
			if seen == 0 {
				usedSite = in.AllocSite
			} else {
				wastedSite = in.AllocSite
			}
			seen++
		}
	}
	pos := map[int]int{}
	for i, r := range ranked {
		pos[r.Site.AllocSite] = i
	}
	if pos[wastedSite] > pos[usedSite] {
		t.Errorf("wasted list (pos %d) should out-rank used list (pos %d)",
			pos[wastedSite], pos[usedSite])
	}
}
