package evalharness

import (
	"fmt"
	"sort"

	"lowutil/internal/costben"
	"lowutil/internal/depgraph"
	"lowutil/internal/escape"
	"lowutil/internal/interp"
	"lowutil/internal/interproc"
	"lowutil/internal/profiler"
	"lowutil/internal/workloads"
)

// The audit-precision harness: how well does the fully static audit rank
// allocation sites compared to the dynamic profile's ground truth? Both
// sides score a site as the sum of per-field cost/(1+benefit) ratios over
// every field the site owns — the granularity `lowutil audit` ranks at —
// with consumed fields contributing an exact 0. The harness
// reports the Spearman rank correlation between the two orderings. This is
// the static analogue of the per-location precision harness, one level
// coarser: an audit user never sees fields, only sites.

// AuditPrecisionRow is the audit-precision result for one workload.
type AuditPrecisionRow struct {
	Name    string
	Matched int     // allocation sites present in both rankings
	Rho     float64 // Spearman(dynamic site scores, static audit scores)
}

// String renders the row in the fixed-width form the audit golden pins.
func (r *AuditPrecisionRow) String() string {
	return fmt.Sprintf("%-12s matched=%-3d rho=%+.4f", r.Name, r.Matched, r.Rho)
}

// AuditPrecision runs the harness for one workload at the given scale.
func AuditPrecision(name string, scale int) (*AuditPrecisionRow, error) {
	w := workloads.ByName(name)
	if w == nil {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	prog, err := w.Compile(scale)
	if err != nil {
		return nil, err
	}

	// Dynamic ground truth: profile the run, score every stored
	// (site, field) key exactly as the per-location harness does, and sum
	// the per-field scores onto the owning allocation site — mirroring how
	// the audit folds per-field bound aggregates into SiteInfo.
	p := profiler.New(prog, profiler.Options{Slots: 16})
	m := interp.New(prog)
	m.Tracer = p
	if err := m.Run(); err != nil {
		return nil, err
	}
	ca := costben.NewAnalysis(p.G)
	perField := make(map[siteKey]*locScore)
	p.G.Locs(func(l depgraph.Loc) {
		if l.Alloc == nil {
			return // static fields belong to no allocation site
		}
		stores := 0
		p.G.StoresOf(l, func(*depgraph.Node) { stores++ })
		if stores == 0 {
			return
		}
		k := siteKey{Site: l.Alloc.In.AllocSite, Field: l.Field}
		s := perField[k]
		if s == nil {
			s = &locScore{}
			perField[k] = s
		}
		s.cost += ca.RAC(l)
		if rab := ca.RAB(l); rab == costben.InfiniteRAB {
			s.consumed = true
		} else {
			s.benefit += rab
		}
	})
	dyn := make(map[int]float64)
	for k, s := range perField {
		dyn[k.Site] += s.score()
	}

	// The fully static side: escape/lifetime audit over the
	// frequency-weighted interprocedural bounds, no execution.
	res := escape.Analyze(interproc.Analyze(prog, interproc.Config{Mode: interproc.RTA}))

	// Rank the intersection of sites both sides scored.
	var sites []int
	for i := range res.Sites {
		if site := res.Sites[i].Site.AllocSite; site >= 0 {
			if _, ok := dyn[site]; ok {
				sites = append(sites, site)
			}
		}
	}
	sort.Ints(sites)
	dScores := make([]float64, len(sites))
	sScores := make([]float64, len(sites))
	for i, site := range sites {
		dScores[i] = dyn[site]
		sScores[i] = res.Site(site).Score()
	}
	return &AuditPrecisionRow{Name: name, Matched: len(sites), Rho: spearman(dScores, sScores)}, nil
}
