package ast

import (
	"fmt"
	"strings"

	"lowutil/internal/lexer"
)

// PrintSource renders the program back to compilable MJ source. Expressions
// are fully parenthesized, so the output is not byte-identical to the input,
// but re-parsing it yields a structurally identical AST (printing is a
// fixpoint after one round trip) — the property the parser tests rely on.
func PrintSource(p *Program) string {
	var pr printer
	for i, c := range p.Classes {
		if i > 0 {
			pr.nl()
		}
		pr.class(c)
	}
	return pr.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.sb.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteString("\n")
}

func (p *printer) nl() { p.sb.WriteString("\n") }

func (p *printer) class(c *ClassDecl) {
	head := "class " + c.Name
	if c.Extends != "" {
		head += " extends " + c.Extends
	}
	p.line("%s {", head)
	p.indent++
	for _, f := range c.Fields {
		p.line("%s %s;", f.Type, f.Name)
	}
	for _, m := range c.Methods {
		p.method(m)
	}
	p.indent--
	p.line("}")
}

func (p *printer) method(m *MethodDecl) {
	mods := ""
	if m.Static {
		mods = "static "
	}
	ret := "void"
	if m.Returns != nil {
		ret = m.Returns.String()
	}
	var params []string
	for _, prm := range m.Params {
		params = append(params, prm.Type.String()+" "+prm.Name)
	}
	p.line("%s%s %s(%s) {", mods, ret, m.Name, strings.Join(params, ", "))
	p.indent++
	for _, s := range m.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		p.line("{")
		p.indent++
		for _, inner := range st.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *VarDecl:
		if st.Init != nil {
			p.line("%s %s = %s;", st.Type, st.Name, expr(st.Init))
		} else {
			p.line("%s %s;", st.Type, st.Name)
		}
	case *AssignStmt:
		p.line("%s = %s;", expr(st.LHS), expr(st.RHS))
	case *IfStmt:
		p.line("if (%s) {", expr(st.Cond))
		p.indent++
		p.stmtFlat(st.Then)
		p.indent--
		if st.Else != nil {
			p.line("} else {")
			p.indent++
			p.stmtFlat(st.Else)
			p.indent--
		}
		p.line("}")
	case *WhileStmt:
		p.line("while (%s) {", expr(st.Cond))
		p.indent++
		p.stmtFlat(st.Body)
		p.indent--
		p.line("}")
	case *ForStmt:
		init, cond, post := "", "", ""
		if st.Init != nil {
			init = strings.TrimSuffix(p.inlineStmt(st.Init), ";")
		}
		if st.Cond != nil {
			cond = expr(st.Cond)
		}
		if st.Post != nil {
			post = strings.TrimSuffix(p.inlineStmt(st.Post), ";")
		}
		p.line("for (%s; %s; %s) {", init, cond, post)
		p.indent++
		p.stmtFlat(st.Body)
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if st.Value != nil {
			p.line("return %s;", expr(st.Value))
		} else {
			p.line("return;")
		}
	case *ExprStmt:
		p.line("%s;", expr(st.X))
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	}
}

// stmtFlat prints a statement, unwrapping a block so that `if (c) { ... }`
// does not nest an extra brace level when the body was already a block.
func (p *printer) stmtFlat(s Stmt) {
	if b, ok := s.(*Block); ok {
		for _, inner := range b.Stmts {
			p.stmt(inner)
		}
		return
	}
	p.stmt(s)
}

// inlineStmt renders a simple statement without indentation or newline,
// for for-headers.
func (p *printer) inlineStmt(s Stmt) string {
	switch st := s.(type) {
	case *VarDecl:
		if st.Init != nil {
			return fmt.Sprintf("%s %s = %s;", st.Type, st.Name, expr(st.Init))
		}
		return fmt.Sprintf("%s %s;", st.Type, st.Name)
	case *AssignStmt:
		return fmt.Sprintf("%s = %s;", expr(st.LHS), expr(st.RHS))
	case *ExprStmt:
		return expr(st.X) + ";"
	}
	return ";"
}

var opText = map[lexer.Kind]string{
	lexer.Plus: "+", lexer.Minus: "-", lexer.Star: "*", lexer.Slash: "/",
	lexer.Percent: "%", lexer.Amp: "&", lexer.Pipe: "|", lexer.Caret: "^",
	lexer.AmpAmp: "&&", lexer.PipePipe: "||", lexer.Shl: "<<", lexer.Shr: ">>",
	lexer.Eq: "==", lexer.Ne: "!=", lexer.Lt: "<", lexer.Le: "<=",
	lexer.Gt: ">", lexer.Ge: ">=", lexer.Bang: "!",
}

func expr(e Expr) string {
	switch ex := e.(type) {
	case *IntLit:
		if ex.Value < 0 {
			return fmt.Sprintf("(0 - %d)", -ex.Value)
		}
		return fmt.Sprintf("%d", ex.Value)
	case *BoolLit:
		if ex.Value {
			return "true"
		}
		return "false"
	case *NullLit:
		return "null"
	case *ThisExpr:
		return "this"
	case *Name:
		return ex.Ident
	case *BinaryExpr:
		return "(" + expr(ex.L) + " " + opText[ex.Op] + " " + expr(ex.R) + ")"
	case *UnaryExpr:
		return "(" + opText[ex.Op] + expr(ex.X) + ")"
	case *FieldAccess:
		return expr(ex.X) + "." + ex.Field
	case *IndexExpr:
		return expr(ex.X) + "[" + expr(ex.Index) + "]"
	case *LenExpr:
		return expr(ex.X) + ".length"
	case *CallExpr:
		var args []string
		for _, a := range ex.Args {
			args = append(args, expr(a))
		}
		recv := ""
		if ex.X != nil {
			recv = expr(ex.X) + "."
		}
		return recv + ex.Method + "(" + strings.Join(args, ", ") + ")"
	case *NewExpr:
		return "new " + ex.Class + "()"
	case *NewArrayExpr:
		return "new " + ex.Base + "[" + expr(ex.Len) + "]" + strings.Repeat("[]", ex.Dims-1)
	case *InstanceOfExpr:
		return "(" + expr(ex.X) + " instanceof " + ex.Class + ")"
	}
	return "?"
}
