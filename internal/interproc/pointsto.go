package interproc

import (
	"context"
	"sort"

	"lowutil/internal/ir"
)

// NoCtx is the heap context of objects allocated outside any receiver
// context (static methods, or object sensitivity disabled).
const NoCtx = -1

// ElemField is the pseudo field for array elements, matching
// depgraph.ElemField.
const ElemField = -1

// ObjID indexes an abstract object in PointsTo.Objects.
type ObjID int32

// Object is one abstract heap object: an allocation site, optionally
// qualified by one level of receiver-object context (the allocation-site
// index of the receiver of the allocating method instance) — the static
// mirror of the profiler's object-sensitive context encoding.
type Object struct {
	// Site is the OpNew/OpNewArray instruction.
	Site *ir.Instr
	// Ctx is the receiver's allocation-site index, or NoCtx.
	Ctx int
}

// Config selects the call-graph mode and the heap abstraction.
type Config struct {
	Mode Mode
	// ObjCtx qualifies each allocation site with one level of
	// receiver-object context.
	ObjCtx bool
}

// PointsTo is the solved Andersen-style points-to relation: flow-insensitive
// over the call graph's reachable methods, field-sensitive over abstract
// objects.
type PointsTo struct {
	Prog *ir.Program
	CG   *CallGraph
	Cfg  Config

	// Objects lists the abstract objects, ID order = creation order (which
	// is deterministic).
	Objects []Object

	nvars     int
	varBase   []int // per method ID: first var of its local slots (-1 if unreachable)
	retBase   []int // per method ID: return var (-1 if none/unreachable)
	staticVar []int // per static slot

	pts []objSet // per var
	// fieldVars assigns a var to each touched (object, field) location.
	fieldVars map[fieldKey]int
	// fieldVarList records the locations in creation order for iteration.
	fieldVarList []fieldKey
}

type fieldKey struct {
	Obj   ObjID
	Field int // ir field ID, or ElemField
}

// objSet is a small deterministic set of ObjIDs (sorted slice).
type objSet struct{ ids []ObjID }

func (s *objSet) has(o ObjID) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= o })
	return i < len(s.ids) && s.ids[i] == o
}

func (s *objSet) add(o ObjID) bool {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= o })
	if i < len(s.ids) && s.ids[i] == o {
		return false
	}
	s.ids = append(s.ids, 0)
	copy(s.ids[i+1:], s.ids[i:])
	s.ids[i] = o
	return true
}

// solver state used only during Analyze.
type ptSolver struct {
	pt *PointsTo

	// copyOut[v] lists vars w with pt(w) ⊇ pt(v).
	copyOut [][]int
	// loadsOf[v] lists pending field loads with base v; storesOf likewise.
	loadsOf  [][]fieldAccess
	storesOf [][]fieldAccess
	// dispatchOf[v] lists virtual call sites whose receiver is v.
	dispatchOf [][]*ir.Instr
	// allocsOf[v] lists allocation sites contextualized by receiver var v
	// (object sensitivity: v is the allocating method's this).
	allocsOf [][]allocC

	// boundCalls remembers (site, target) pairs already wired.
	boundCalls map[callTarget]bool

	objIDs map[Object]ObjID

	work []int // var worklist (FIFO)
	inWL []bool
	// pending[v] holds objects added to pt(v) since v was last processed.
	pending []objSet
}

type fieldAccess struct {
	field int
	other int // dst var for loads, src var for stores
}

type allocC struct {
	in  *ir.Instr
	dst int
}

type callTarget struct {
	site   int // instr ID
	target int // method ID
}

// NewPointsTo runs the analysis to fixpoint over cg's reachable methods.
func NewPointsTo(prog *ir.Program, cg *CallGraph, cfg Config) *PointsTo {
	pt, err := newPointsTo(context.Background(), prog, cg, cfg)
	if err != nil {
		panic(err) // unreachable: the background context never cancels
	}
	return pt
}

// newPointsTo is NewPointsTo with a context checked periodically inside the
// propagation worklist; on cancellation the partial relation is discarded.
func newPointsTo(ctx context.Context, prog *ir.Program, cg *CallGraph, cfg Config) (*PointsTo, error) {
	nm := countMethods(prog)
	pt := &PointsTo{
		Prog:      prog,
		CG:        cg,
		Cfg:       cfg,
		varBase:   make([]int, nm),
		retBase:   make([]int, nm),
		staticVar: make([]int, len(prog.Statics)),
		fieldVars: make(map[fieldKey]int),
	}
	for i := range pt.varBase {
		pt.varBase[i] = -1
		pt.retBase[i] = -1
	}
	next := 0
	for _, m := range cg.Methods() {
		pt.varBase[m.ID] = next
		next += m.NumLocals
		if m.Returns != nil {
			pt.retBase[m.ID] = next
			next++
		}
	}
	for i := range pt.staticVar {
		pt.staticVar[i] = next
		next++
	}
	pt.nvars = next
	pt.pts = make([]objSet, next)

	s := &ptSolver{
		pt:         pt,
		copyOut:    make([][]int, next),
		loadsOf:    make([][]fieldAccess, next),
		storesOf:   make([][]fieldAccess, next),
		dispatchOf: make([][]*ir.Instr, next),
		allocsOf:   make([][]allocC, next),
		boundCalls: make(map[callTarget]bool),
		objIDs:     make(map[Object]ObjID),
		inWL:       make([]bool, next),
		pending:    make([]objSet, next),
	}
	s.build()
	if err := s.solve(ctx); err != nil {
		return nil, err
	}
	// Grow field vars discovered during solving into pts (they are appended
	// as ordinary vars, so nothing to do here — pts was grown in fieldVar).
	return pt, nil
}

// grow appends a fresh var (used for lazily created field vars).
func (s *ptSolver) grow() int {
	v := s.pt.nvars
	s.pt.nvars++
	s.pt.pts = append(s.pt.pts, objSet{})
	s.copyOut = append(s.copyOut, nil)
	s.loadsOf = append(s.loadsOf, nil)
	s.storesOf = append(s.storesOf, nil)
	s.dispatchOf = append(s.dispatchOf, nil)
	s.allocsOf = append(s.allocsOf, nil)
	s.inWL = append(s.inWL, false)
	s.pending = append(s.pending, objSet{})
	return v
}

// fieldVar returns the var holding the contents of (obj, field), creating it
// on first touch.
func (s *ptSolver) fieldVar(o ObjID, field int) int {
	k := fieldKey{o, field}
	if v, ok := s.pt.fieldVars[k]; ok {
		return v
	}
	v := s.grow()
	s.pt.fieldVars[k] = v
	s.pt.fieldVarList = append(s.pt.fieldVarList, k)
	return v
}

func (s *ptSolver) localVar(m *ir.Method, slot int) int { return s.pt.varBase[m.ID] + slot }

// obj interns an abstract object and returns its ID.
func (s *ptSolver) obj(site *ir.Instr, ctx int) ObjID {
	k := Object{Site: site, Ctx: ctx}
	if id, ok := s.objIDs[k]; ok {
		return id
	}
	id := ObjID(len(s.pt.Objects))
	s.objIDs[k] = id
	s.pt.Objects = append(s.pt.Objects, k)
	return id
}

// addObj inserts o into pt(v) and schedules propagation.
func (s *ptSolver) addObj(v int, o ObjID) {
	if !s.pt.pts[v].add(o) {
		return
	}
	s.pending[v].add(o)
	if !s.inWL[v] {
		s.inWL[v] = true
		s.work = append(s.work, v)
	}
}

// copyEdge adds pt(dst) ⊇ pt(src) and replays src's current set.
func (s *ptSolver) copyEdge(src, dst int) {
	if src == dst {
		return
	}
	s.copyOut[src] = append(s.copyOut[src], dst)
	for _, o := range s.pt.pts[src].ids {
		s.addObj(dst, o)
	}
}

// build walks every reachable method once and installs the base constraints.
func (s *ptSolver) build() {
	pt := s.pt
	for _, m := range pt.CG.Methods() {
		for pc := range m.Code {
			in := &m.Code[pc]
			switch in.Op {
			case ir.OpNew, ir.OpNewArray:
				dst := s.localVar(m, in.Dst)
				if pt.Cfg.ObjCtx && !m.Static {
					// Contextualized by the receiver: one abstract object per
					// receiver allocation site that reaches this.
					this := s.localVar(m, 0)
					s.allocsOf[this] = append(s.allocsOf[this], allocC{in: in, dst: dst})
					for _, o := range pt.pts[this].ids {
						s.addObj(dst, s.obj(in, pt.Objects[o].Site.AllocSite))
					}
				} else {
					s.addObj(dst, s.obj(in, NoCtx))
				}
			case ir.OpMove:
				s.copyEdge(s.localVar(m, in.A), s.localVar(m, in.Dst))
			case ir.OpLoadField:
				base := s.localVar(m, in.A)
				dst := s.localVar(m, in.Dst)
				s.addLoad(base, in.Field.ID, dst)
			case ir.OpStoreField:
				base := s.localVar(m, in.A)
				src := s.localVar(m, in.B)
				s.addStore(base, in.Field.ID, src)
			case ir.OpALoad:
				s.addLoad(s.localVar(m, in.A), ElemField, s.localVar(m, in.Dst))
			case ir.OpAStore:
				s.addStore(s.localVar(m, in.A), ElemField, s.localVar(m, in.C2))
			case ir.OpLoadStatic:
				s.copyEdge(pt.staticVar[in.Static.Slot], s.localVar(m, in.Dst))
			case ir.OpStoreStatic:
				s.copyEdge(s.localVar(m, in.A), pt.staticVar[in.Static.Slot])
			case ir.OpCall:
				if in.Callee.Static {
					for _, t := range pt.CG.Targets(in) {
						s.bindCall(m, in, t, false)
					}
				} else {
					recv := s.localVar(m, in.Args[0])
					s.dispatchOf[recv] = append(s.dispatchOf[recv], in)
					for _, o := range pt.pts[recv].ids {
						s.dispatch(m, in, o)
					}
				}
			case ir.OpReturn:
				if in.HasA && pt.retBase[m.ID] >= 0 {
					s.copyEdge(s.localVar(m, in.A), pt.retBase[m.ID])
				}
			}
		}
	}
}

func (s *ptSolver) addLoad(base, field, dst int) {
	s.loadsOf[base] = append(s.loadsOf[base], fieldAccess{field: field, other: dst})
	for _, o := range s.pt.pts[base].ids {
		s.copyEdge(s.fieldVar(o, field), dst)
	}
}

func (s *ptSolver) addStore(base, field, src int) {
	s.storesOf[base] = append(s.storesOf[base], fieldAccess{field: field, other: src})
	for _, o := range s.pt.pts[base].ids {
		s.copyEdge(src, s.fieldVar(o, field))
	}
}

// bindCall wires argument, receiver, and return flow for one (site, target)
// pair. Non-receiver argument edges are installed once; the receiver flows
// object-by-object through dispatch, keeping unrelated receiver classes out
// of this.
func (s *ptSolver) bindCall(caller *ir.Method, in *ir.Instr, t *ir.Method, virtual bool) {
	key := callTarget{in.ID, t.ID}
	if s.boundCalls[key] {
		return
	}
	s.boundCalls[key] = true
	if s.pt.varBase[t.ID] < 0 {
		return // target not reachable under this CG (cannot happen: CG added it)
	}
	start := 0
	if virtual {
		start = 1 // the receiver is bound per-object in dispatch
	}
	for i := start; i < len(in.Args) && i < t.Params; i++ {
		s.copyEdge(s.localVar(caller, in.Args[i]), s.pt.varBase[t.ID]+i)
	}
	if in.Dst >= 0 && s.pt.retBase[t.ID] >= 0 {
		s.copyEdge(s.pt.retBase[t.ID], s.localVar(caller, in.Dst))
	}
}

// dispatch routes receiver object o arriving at virtual site in.
func (s *ptSolver) dispatch(caller *ir.Method, in *ir.Instr, o ObjID) {
	site := s.pt.Objects[o].Site
	if site.Op != ir.OpNew {
		return // arrays have no methods
	}
	t := site.Class.LookupMethod(in.Callee.Name)
	if t == nil {
		return
	}
	// Only follow edges the call graph admits (RTA can be narrower than the
	// points-to flow when a class is instantiated only in unreachable code).
	admitted := false
	for _, ct := range s.pt.CG.Targets(in) {
		if ct == t {
			admitted = true
			break
		}
	}
	if !admitted {
		return
	}
	s.bindCall(caller, in, t, true)
	if s.pt.varBase[t.ID] >= 0 && t.Params > 0 {
		s.addObj(s.pt.varBase[t.ID]+0, o)
	}
}

// solve runs the propagation worklist to fixpoint, polling ctx every few
// thousand pops so a canceled request abandons the fixpoint promptly.
func (s *ptSolver) solve(ctx context.Context) error {
	pops := 0
	for len(s.work) > 0 {
		if pops++; pops&4095 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		v := s.work[0]
		s.work = s.work[1:]
		s.inWL[v] = false
		delta := s.pending[v].ids
		s.pending[v] = objSet{}
		if len(delta) == 0 {
			continue
		}
		// Resolve complex constraints for the new objects first (they may
		// add copy edges, which replay full sets themselves).
		for _, fa := range s.loadsOf[v] {
			for _, o := range delta {
				s.copyEdge(s.fieldVar(o, fa.field), fa.other)
			}
		}
		for _, fa := range s.storesOf[v] {
			for _, o := range delta {
				s.copyEdge(fa.other, s.fieldVar(o, fa.field))
			}
		}
		for _, in := range s.dispatchOf[v] {
			for _, o := range delta {
				s.dispatch(in.Method, in, o)
			}
		}
		for _, ac := range s.allocsOf[v] {
			for _, o := range delta {
				s.addObj(ac.dst, s.obj(ac.in, s.pt.Objects[o].Site.AllocSite))
			}
		}
		for _, dst := range s.copyOut[v] {
			for _, o := range delta {
				s.addObj(dst, o)
			}
		}
	}
	return nil
}

// VarPT returns the points-to set of local slot s of m (sorted ObjIDs).
// Empty for unreachable methods and non-reference slots.
func (pt *PointsTo) VarPT(m *ir.Method, slot int) []ObjID {
	if pt.varBase[m.ID] < 0 {
		return nil
	}
	return pt.pts[pt.varBase[m.ID]+slot].ids
}

// StaticPT returns the points-to set of a static slot.
func (pt *PointsTo) StaticPT(slot int) []ObjID { return pt.pts[pt.staticVar[slot]].ids }

// LocPT returns the points-to set of location (o, field).
func (pt *PointsTo) LocPT(o ObjID, field int) []ObjID {
	if v, ok := pt.fieldVars[fieldKey{o, field}]; ok {
		return pt.pts[v].ids
	}
	return nil
}

// NumObjects returns the number of abstract objects.
func (pt *PointsTo) NumObjects() int { return len(pt.Objects) }

// NumLocs returns the number of touched abstract heap locations (object ×
// field pairs that were ever loaded or stored).
func (pt *PointsTo) NumLocs() int { return len(pt.fieldVarList) }

// AvgPTSize returns the mean points-to set size over reference vars with a
// non-empty set.
func (pt *PointsTo) AvgPTSize() float64 {
	sum, n := 0, 0
	for i := range pt.pts {
		if len(pt.pts[i].ids) > 0 {
			sum += len(pt.pts[i].ids)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
