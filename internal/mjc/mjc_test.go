package mjc

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lowutil/internal/interp"
)

// compileRun compiles src and runs it, returning printed output.
func compileRun(t *testing.T, src string) []int64 {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := interp.New(prog)
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, prog.Disassemble())
	}
	return m.Output
}

func wantOutput(t *testing.T, src string, want ...int64) {
	t.Helper()
	got := compileRun(t, src)
	if len(got) != len(want) {
		t.Fatalf("output = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output = %v, want %v", got, want)
		}
	}
}

func TestHelloArithmetic(t *testing.T) {
	wantOutput(t, `
class Main {
  static void main() {
    int x = 2 + 3 * 4;
    print(x);
    print(x % 5);
    print(-x);
    print(1 << 10);
    print(1024 >> 3);
    print(7 & 5);
    print(7 | 8);
    print(7 ^ 5);
  }
}`, 14, 4, -14, 1024, 128, 5, 15, 2)
}

func TestPrecedenceAndParens(t *testing.T) {
	wantOutput(t, `
class Main {
  static void main() {
    print(2 + 3 * 4 - 1);
    print((2 + 3) * (4 - 1));
    print(10 - 4 - 3);
    print(2 * 3 % 4);
    print(1 + 2 << 1);
  }
}`, 13, 15, 3, 2, 6)
}

func TestBooleansAndShortCircuit(t *testing.T) {
	wantOutput(t, `
class Counter { int n;
  boolean bump() { this.n = this.n + 1; return true; }
}
class Main {
  static void main() {
    Counter c = new Counter();
    boolean a = false && c.bump();
    boolean b = true || c.bump();
    print(c.n);           // short circuit: no bumps
    boolean d = true && c.bump();
    boolean e = false || c.bump();
    print(c.n);           // both evaluated
    if (a || b) { print(1); } else { print(0); }
    if (!a && b) { print(1); } else { print(0); }
  }
}`, 0, 2, 1, 1)
}

func TestWhileForBreakContinue(t *testing.T) {
	wantOutput(t, `
class Main {
  static void main() {
    int s = 0;
    for (int i = 0; i < 10; i = i + 1) {
      if (i % 2 == 0) { continue; }
      if (i > 7) { break; }
      s = s + i;
    }
    print(s); // 1+3+5+7 = 16
    int j = 0;
    while (true) {
      j = j + 1;
      if (j == 5) { break; }
    }
    print(j);
  }
}`, 16, 5)
}

func TestClassesFieldsInheritanceDispatch(t *testing.T) {
	wantOutput(t, `
class Shape {
  int tag;
  int area() { return 0; }
  int describe() { return this.tag * 100 + this.area(); }
}
class Square extends Shape {
  int side;
  int area() { return this.side * this.side; }
}
class Main {
  static void main() {
    Square sq = new Square();
    sq.tag = 7;
    sq.side = 6;
    Shape s = sq;
    print(s.area());      // dispatches to Square.area
    print(s.describe());  // 7*100 + 36
    print(s instanceof Square);
    Shape plain = new Shape();
    print(plain instanceof Square);
  }
}`, 36, 736, 1, 0)
}

func TestArraysAndLength(t *testing.T) {
	wantOutput(t, `
class Main {
  static void main() {
    int[] a = new int[5];
    for (int i = 0; i < a.length; i = i + 1) { a[i] = i * i; }
    int s = 0;
    for (int i = 0; i < a.length; i = i + 1) { s = s + a[i]; }
    print(s);
    int[][] m = new int[3][];
    for (int i = 0; i < m.length; i = i + 1) { m[i] = new int[4]; }
    m[2][3] = 42;
    print(m[2][3]);
    print(m.length);
    print(m[0].length);
  }
}`, 30, 42, 3, 4)
}

func TestRecursionAndStatics(t *testing.T) {
	wantOutput(t, `
class Math2 {
  static int fact(int n) {
    if (n <= 1) { return 1; }
    return n * Math2.fact2(n - 1);
  }
  static int fact2(int n) { return fact(n) ; }
}
class Main {
  static void main() { print(Math2.fact(6)); }
}`, 720)
}

func TestQualifiedStaticCallThroughClassName(t *testing.T) {
	// MJ has no class-name expressions; static calls are unqualified within
	// the declaring class. Cross-class static calls go through an instance
	// helper or are rejected — verify the rejection is clean.
	src := `
class Util { static int id(int x) { return x; } }
class Main {
  static void main() {
    Util u = new Util();
    print(u.id(3));
  }
}`
	_, err := Compile(src)
	if err == nil || !strings.Contains(err.Error(), "static method") {
		t.Fatalf("want static-through-instance error, got %v", err)
	}
}

func TestNullAndReferenceEquality(t *testing.T) {
	wantOutput(t, `
class Node { Node next; }
class Main {
  static void main() {
    Node a = new Node();
    Node b = new Node();
    print(a == b);
    print(a == a);
    print(a.next == null);
    a.next = b;
    print(a.next == b);
    a.next = null;
    print(a.next != null);
  }
}`, 0, 1, 1, 1, 0)
}

func TestLinkedListProgram(t *testing.T) {
	wantOutput(t, `
class Node { int val; Node next; }
class List {
  Node head;
  int size;
  void push(int v) {
    Node n = new Node();
    n.val = v;
    n.next = this.head;
    this.head = n;
    this.size = this.size + 1;
  }
  int sum() {
    int s = 0;
    Node cur = this.head;
    while (cur != null) { s = s + cur.val; cur = cur.next; }
    return s;
  }
}
class Main {
  static void main() {
    List l = new List();
    for (int i = 1; i <= 10; i = i + 1) { l.push(i); }
    print(l.sum());
    print(l.size);
  }
}`, 55, 10)
}

func TestNativesCompile(t *testing.T) {
	out := compileRun(t, `
class Main {
  static void main() {
    int r = rand(10);
    print(r);
    int bits = floatToIntBits(1234);
    print(intBitsToFloat(bits));
    assert(true);
    int h = hash(5);
    int q = dbQuery(1, 2, 3);
    print(h - h);
    print(q - q);
    printChar('A');
  }
}`)
	if out[0] < 0 || out[0] >= 10 {
		t.Errorf("rand out of range: %d", out[0])
	}
	if out[1] != 1234 {
		t.Errorf("floatBits roundtrip = %d, want 1234", out[1])
	}
	if out[2] != 0 || out[3] != 0 {
		t.Errorf("hash/dbQuery sanity failed: %v", out)
	}
	if out[4] != 'A' {
		t.Errorf("printChar = %d, want %d", out[4], 'A')
	}
}

func TestCharLiteralsAndComments(t *testing.T) {
	wantOutput(t, `
// line comment
class Main {
  /* block
     comment */
  static void main() {
    print('a');        // 97
    print('\n');
    print('\\');
    print('\'');
  }
}`, 97, 10, 92, 39)
}

func TestScopingAndShadowing(t *testing.T) {
	wantOutput(t, `
class Main {
  static void main() {
    int x = 1;
    {
      int y = 2;
      print(x + y);
    }
    {
      int y = 30;
      print(x + y);
    }
    for (int i = 0; i < 2; i = i + 1) { int z = i * 10; print(z); }
  }
}`, 3, 31, 0, 10)
}

// ---- error cases ----

func wantCompileError(t *testing.T, src, frag string) {
	t.Helper()
	_, err := Compile(src)
	if err == nil {
		t.Fatalf("want error containing %q, got success", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("want error containing %q, got %v", frag, err)
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct{ name, src, frag string }{
		{"int plus bool", `class Main { static void main() { int x = 1 + true; } }`, "needs int"},
		{"cond not bool", `class Main { static void main() { if (1) { print(1); } } }`, "boolean"},
		{"plain int cond", `class Main { static void main() { while (2 + 2) { } } }`, "boolean"},
		{"undefined var", `class Main { static void main() { print(x); } }`, "undefined variable"},
		{"unknown class", `class Main { static void main() { Foo f = null; } }`, "unknown type"},
		{"unknown method", `class A {} class Main { static void main() { A a = new A(); a.run(); } }`, "no method"},
		{"unknown field", `class A {} class Main { static void main() { A a = new A(); a.x = 1; } }`, "no field"},
		{"arg count", `class A { int id(int x) { return x; } } class Main { static void main() { A a = new A(); print(a.id()); } }`, "argument"},
		{"arg type", `class A { int id(int x) { return x; } } class Main { static void main() { A a = new A(); print(a.id(true)); } }`, "cannot pass"},
		{"return type", `class Main { static int f() { return true; } static void main() { print(f()); } }`, "cannot return"},
		{"void returns value", `class Main { static void main() { return 1; } }`, "void method"},
		{"missing return", `class Main { static int f() { int x = 1; } static void main() { print(f()); } }`, "without returning"},
		{"this in static", `class Main { int x; static void main() { print(this.x); } }`, "static method"},
		{"break outside loop", `class Main { static void main() { break; } }`, "break outside"},
		{"continue outside loop", `class Main { static void main() { continue; } }`, "continue outside"},
		{"dup class", `class A {} class A {} class Main { static void main() { } }`, "duplicate class"},
		{"dup field", `class A { int x; int x; } class Main { static void main() { } }`, "duplicate field"},
		{"dup method", `class A { int f() { return 1; } int f() { return 2; } } class Main { static void main() { } }`, "duplicate method"},
		{"dup local", `class Main { static void main() { int x = 1; int x = 2; } }`, "duplicate variable"},
		{"extends unknown", `class A extends B {} class Main { static void main() { } }`, "unknown class"},
		{"extends cycle", `class A extends B {} class B extends A {} class Main { static void main() { } }`, "cycle"},
		{"assign subtype violation", `class A {} class B extends A {} class Main { static void main() { B b = new A(); } }`, "cannot initialize"},
		{"array invariance", `class Main { static void main() { int[] a = new boolean[3]; } }`, "cannot initialize"},
		{"index non-array", `class Main { static void main() { int x = 3; print(x[0]); } }`, "non-array"},
		{"bad override", `class A { int f() { return 1; } } class B extends A { boolean f() { return true; } } class Main { static void main() { } }`, "different return type"},
		{"incomparable refs", `class A {} class B {} class Main { static void main() { A a = new A(); B b = new B(); print(a == b); } }`, "incomparable"},
		{"assign to call", `class Main { static int f() { return 1; } static void main() { f() = 2; } }`, "assignment target"},
		{"bare expression stmt", `class Main { static void main() { 1 + 2; } }`, "must be a call"},
		{"unterminated comment", "class Main { static void main() { } } /* oops", "unterminated"},
		{"native arg type", `class Main { static void main() { assert(1); } }`, "must be boolean"},
		{"unknown function", `class Main { static void main() { frobnicate(1); } }`, "unknown function"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { wantCompileError(t, c.src, c.frag) })
	}
}

func TestSubtypeAssignmentOK(t *testing.T) {
	wantOutput(t, `
class A { int f() { return 1; } }
class B extends A { int f() { return 2; } }
class Main {
  static void main() {
    A a = new B();
    print(a.f());
    a = new A();
    print(a.f());
  }
}`, 2, 1)
}

// Property-style test: random arithmetic expression trees evaluate the same
// in MJ and in Go.
func TestRandomExpressionsAgainstGo(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	type node struct {
		src  string
		eval int64
	}
	var gen func(depth int) node
	gen = func(depth int) node {
		if depth == 0 || rng.Intn(3) == 0 {
			v := int64(rng.Intn(200) - 100)
			if v < 0 {
				return node{fmt.Sprintf("(0 - %d)", -v), v}
			}
			return node{fmt.Sprintf("%d", v), v}
		}
		l := gen(depth - 1)
		r := gen(depth - 1)
		switch rng.Intn(4) {
		case 0:
			return node{"(" + l.src + " + " + r.src + ")", l.eval + r.eval}
		case 1:
			return node{"(" + l.src + " - " + r.src + ")", l.eval - r.eval}
		case 2:
			return node{"(" + l.src + " * " + r.src + ")", l.eval * r.eval}
		default:
			return node{"(" + l.src + " ^ " + r.src + ")", l.eval ^ r.eval}
		}
	}
	for i := 0; i < 25; i++ {
		n := gen(4)
		src := fmt.Sprintf(`class Main { static void main() { print(%s); } }`, n.src)
		out := compileRun(t, src)
		if len(out) != 1 || out[0] != n.eval {
			t.Fatalf("expr %s = %v, want %d", n.src, out, n.eval)
		}
	}
}

// Property-style test: random comparison chains agree with Go.
func TestRandomComparisonsAgainstGo(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	ops := []struct {
		src string
		f   func(a, b int64) bool
	}{
		{"==", func(a, b int64) bool { return a == b }},
		{"!=", func(a, b int64) bool { return a != b }},
		{"<", func(a, b int64) bool { return a < b }},
		{"<=", func(a, b int64) bool { return a <= b }},
		{">", func(a, b int64) bool { return a > b }},
		{">=", func(a, b int64) bool { return a >= b }},
	}
	for i := 0; i < 40; i++ {
		a := int64(rng.Intn(7) - 3)
		b := int64(rng.Intn(7) - 3)
		op := ops[rng.Intn(len(ops))]
		want := int64(0)
		if op.f(a, b) {
			want = 1
		}
		src := fmt.Sprintf(`class Main { static void main() {
			boolean r = %d %s %d;
			if (r) { print(1); } else { print(0); }
		} }`, a, op.src, b)
		out := compileRun(t, src)
		if out[0] != want {
			t.Fatalf("%d %s %d = %d, want %d", a, op.src, b, out[0], want)
		}
	}
}

func TestDeepExpressionTempReuse(t *testing.T) {
	// Temp slots must reset between statements: a method with many
	// statements should not grow locals without bound.
	var sb strings.Builder
	sb.WriteString("class Main { static void main() { int a = 0;\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "a = a + %d * 2 - 1;\n", i)
	}
	sb.WriteString("print(a); } }")
	prog, err := Compile(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Main
	if main.NumLocals > 16 {
		t.Errorf("temp slots leak: NumLocals = %d", main.NumLocals)
	}
	m := interp.New(prog)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for i := 0; i < 200; i++ {
		want += int64(i)*2 - 1
	}
	if m.Output[0] != want {
		t.Errorf("sum = %d, want %d", m.Output[0], want)
	}
}
