#!/bin/sh
# Public-API pin: diffs the rendered documentation of the public packages —
# the root lowutil facade and the client SDK — against the checked-in
# golden, so accidental additions, removals, or signature changes to the
# exported surface fail `make check`.
#
# After an intended API change, regenerate with:
#   sh scripts/apisurface.sh -update
set -e
cd "$(dirname "$0")/.."

GOLDEN=scripts/apisurface.golden
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

{
    go doc -all .
    echo
    echo "===== package lowutil/client ====="
    echo
    go doc -all ./client
} > "$TMP"

if [ "$1" = "-update" ]; then
    cp "$TMP" "$GOLDEN"
    echo "apisurface: golden updated ($(wc -l < "$GOLDEN") lines)"
    exit 0
fi

if [ ! -f "$GOLDEN" ]; then
    echo "apisurface: missing $GOLDEN; run: sh scripts/apisurface.sh -update" >&2
    exit 1
fi

if ! diff -u "$GOLDEN" "$TMP"; then
    echo "apisurface: public API surface changed." >&2
    echo "If intended, regenerate with: sh scripts/apisurface.sh -update" >&2
    exit 1
fi
echo "apisurface: OK"
