package server

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"lowutil/internal/jobs"
)

// endpoints is the fixed label set for per-endpoint counters; building the
// maps once at construction keeps the hot path lock-free (atomics only).
var endpoints = []string{"compile", "profile", "report", "slice", "audit", "vet", "run", "save", "load", "jobs", "job", "events"}

// metrics holds the server's counters. Everything is atomic; the rendered
// /metrics page uses the Prometheus text exposition format so standard
// scrapers work, with no dependency on a client library.
type metrics struct {
	requests map[string]*atomic.Int64
	failures map[string]*atomic.Int64

	sessionsCreated  atomic.Int64
	sessionHits      atomic.Int64
	sessionMisses    atomic.Int64
	sessionEvictions atomic.Int64

	profileHits   atomic.Int64
	profileMisses atomic.Int64

	auditHits   atomic.Int64
	auditMisses atomic.Int64

	profiledSteps atomic.Int64
	rejected      atomic.Int64
}

func newMetrics() *metrics {
	m := &metrics{
		requests: make(map[string]*atomic.Int64, len(endpoints)),
		failures: make(map[string]*atomic.Int64, len(endpoints)),
	}
	for _, e := range endpoints {
		m.requests[e] = new(atomic.Int64)
		m.failures[e] = new(atomic.Int64)
	}
	return m
}

func (m *metrics) request(endpoint string) {
	if c := m.requests[endpoint]; c != nil {
		c.Add(1)
	}
}

func (m *metrics) failure(endpoint string) {
	if c := m.failures[endpoint]; c != nil {
		c.Add(1)
	}
}

// render writes the exposition page. live/inFlight/capacity and js are
// sampled gauges and counters supplied by the server.
func (m *metrics) render(w io.Writer, live, inFlight, capacity int, js jobs.Stats) {
	writeCounterVec(w, "lowutil_requests_total", "Requests served, by endpoint.", m.requests)
	writeCounterVec(w, "lowutil_request_failures_total", "Requests that ended in an error response, by endpoint.", m.failures)
	writeCounter(w, "lowutil_sessions_created_total", "Sessions compiled and inserted into the cache.", m.sessionsCreated.Load())
	writeCounter(w, "lowutil_session_cache_hits_total", "Requests satisfied by an existing session.", m.sessionHits.Load())
	writeCounter(w, "lowutil_session_cache_misses_total", "Requests that referenced no live session.", m.sessionMisses.Load())
	writeCounter(w, "lowutil_session_evictions_total", "Sessions evicted by the LRU bound.", m.sessionEvictions.Load())
	writeCounter(w, "lowutil_profile_cache_hits_total", "Profile queries satisfied by a memoized run.", m.profileHits.Load())
	writeCounter(w, "lowutil_profile_cache_misses_total", "Profile queries that ran the profiler.", m.profileMisses.Load())
	writeCounter(w, "lowutil_audit_cache_hits_total", "Audit queries satisfied by a memoized analysis.", m.auditHits.Load())
	writeCounter(w, "lowutil_audit_cache_misses_total", "Audit queries that ran the static analysis.", m.auditMisses.Load())
	writeCounter(w, "lowutil_profiled_steps_total", "Instruction instances executed by profiling runs.", m.profiledSteps.Load())
	writeCounter(w, "lowutil_rejected_total", "Requests rejected by admission control.", m.rejected.Load())
	writeCounter(w, "lowutil_jobs_submitted_total", "Batch jobs accepted by the queue.", js.Submitted)
	writeCounter(w, "lowutil_jobs_deduped_total", "Batch jobs answered from an existing idempotent submission.", js.Deduped)
	writeCounter(w, "lowutil_jobs_completed_total", "Batch jobs finished successfully.", js.Completed)
	writeCounter(w, "lowutil_jobs_failed_total", "Batch jobs finished in failure.", js.Failed)
	writeCounter(w, "lowutil_jobs_retries_total", "Transient job failures that scheduled a backoff retry.", js.Retries)
	writeCounter(w, "lowutil_jobs_requeued_total", "In-flight jobs re-queued by a drain.", js.Requeued)
	writeCounter(w, "lowutil_job_result_hits_total", "Job executions satisfied by the content-addressed result store.", js.ResultHits)
	writeCounter(w, "lowutil_job_result_misses_total", "Job executions that ran the executor.", js.ResultMisses)
	writeCounter(w, "lowutil_job_result_evictions_total", "Job results dropped by the store LRU bound.", js.Evictions)
	writeGauge(w, "lowutil_jobs_queued", "Jobs currently waiting in the queue (incl. retry backoff).", int(js.Queued))
	writeGauge(w, "lowutil_jobs_running", "Jobs currently executing.", int(js.Running))
	writeGauge(w, "lowutil_job_results_live", "Job results currently resident in the store.", js.Results)
	writeGauge(w, "lowutil_sessions_live", "Sessions currently resident in the cache.", live)
	writeGauge(w, "lowutil_inflight_requests", "Heavy requests currently holding an admission slot.", inFlight)
	writeGauge(w, "lowutil_inflight_capacity", "Admission slots available in total.", capacity)
}

func writeCounter(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(w io.Writer, name, help string, v int) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

func writeCounterVec(w io.Writer, name, help string, vec map[string]*atomic.Int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	keys := make([]string, 0, len(vec))
	for k := range vec {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{endpoint=%q} %d\n", name, k, vec[k].Load())
	}
}
