package interproc

import (
	"testing"

	"lowutil/internal/ir"
)

// boxProgram builds two Box objects whose "val" fields hold distinct Payload
// objects, exercising field sensitivity:
//
//	b1 = new Box; p1 = new Payload; b1.val = p1
//	b2 = new Box; p2 = new Payload; b2.val = p2
//	x  = b1.val
//
// Field sensitivity is per abstract object: b1 and b2 are distinct
// allocation sites, so pt(x) = {p1} — a field-based analysis would merge in
// p2.
func TestPointsToFieldSensitivity(t *testing.T) {
	b := ir.NewBuilder()
	box := b.Class("Box", nil)
	payload := b.Class("Payload", nil)
	val := b.Field(box, "val", b.RefType(payload))
	main := b.Class("Main", nil)
	mm := b.Method(main, "main", true, 0, nil)
	body := b.Body(mm)
	body.New(0, box)     // pc0: b1
	body.New(1, payload) // pc1: p1
	body.StoreField(0, val, 1)
	body.New(2, box)     // pc3: b2
	body.New(3, payload) // pc4: p2
	body.StoreField(2, val, 3)
	body.LoadField(4, 0, val) // x = b1.val
	body.ReturnVoid()
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}

	cg := NewCallGraph(prog, RTA)
	pt := NewPointsTo(prog, cg, Config{Mode: RTA})
	got := pt.VarPT(mm, 4)
	if len(got) != 1 {
		t.Fatalf("pt(x) = %v, want exactly one object", got)
	}
	o := pt.Objects[got[0]]
	if o.Site.PC != 1 {
		t.Errorf("pt(x) holds site at pc %d, want the first Payload (pc 1)", o.Site.PC)
	}
	if len(pt.VarPT(mm, 0)) != 1 || len(pt.VarPT(mm, 2)) != 1 {
		t.Errorf("box vars should each point to one site")
	}
}

// TestPointsToDispatchFilter: the receiver flowing into a virtual target must
// be filtered per override — B's this never sees the C object.
func TestPointsToDispatchFilter(t *testing.T) {
	b := ir.NewBuilder()
	a := b.Class("A", nil)
	bb := b.Class("B", a)
	cc := b.Class("C", a)
	mk := func(c *ir.Class) *ir.Method {
		m := b.Method(c, "id", false, 1, b.RefType(a))
		body := b.Body(m)
		body.Return(0) // return this
		return m
	}
	aid := mk(a)
	mk(bb)
	mk(cc)
	main := b.Class("Main", nil)
	mm := b.Method(main, "main", true, 0, nil)
	body := b.Body(mm)
	body.New(0, bb)
	body.New(1, cc)
	body.Call(2, aid, 0) // rB = b.id()
	body.Call(3, aid, 1) // rC = c.id()
	body.ReturnVoid()
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}

	cg := NewCallGraph(prog, RTA)
	pt := NewPointsTo(prog, cg, Config{Mode: RTA})
	single := func(slot, wantPC int) {
		t.Helper()
		got := pt.VarPT(mm, slot)
		if len(got) != 1 || pt.Objects[got[0]].Site.PC != wantPC {
			var pcs []int
			for _, o := range got {
				pcs = append(pcs, pt.Objects[o].Site.PC)
			}
			t.Errorf("pt(v%d) sites at pcs %v, want exactly pc %d", slot, pcs, wantPC)
		}
	}
	single(2, 0) // b.id() returns only the B object
	single(3, 1) // c.id() returns only the C object
	bid := bb.LookupMethod("id")
	if got := pt.VarPT(bid, 0); len(got) != 1 || pt.Objects[got[0]].Site.PC != 0 {
		t.Errorf("pt(B.id this) = %v, want only the B object", got)
	}
}

// TestPointsToObjCtx: with one level of receiver context, an allocation
// inside a method called on two distinct receivers yields two abstract
// objects; without it, one.
func TestPointsToObjCtx(t *testing.T) {
	b := ir.NewBuilder()
	item := b.Class("Item", nil)
	maker := b.Class("Maker", nil)
	mk := b.Method(maker, "make", false, 1, b.RefType(item))
	body := b.Body(mk)
	body.New(1, item)
	body.Return(1)
	main := b.Class("Main", nil)
	mm := b.Method(main, "main", true, 0, nil)
	body = b.Body(mm)
	body.New(0, maker) // maker #1
	body.New(1, maker) // maker #2
	body.Call(2, mk, 0)
	body.Call(3, mk, 1)
	body.ReturnVoid()
	prog, err := b.Seal("Main", "main")
	if err != nil {
		t.Fatal(err)
	}

	cg := NewCallGraph(prog, RTA)
	plain := NewPointsTo(prog, cg, Config{Mode: RTA})
	if got := plain.VarPT(mm, 2); len(got) != 1 {
		t.Errorf("context-insensitive pt(v2) = %v, want one object", got)
	}

	ctx := NewPointsTo(prog, cg, Config{Mode: RTA, ObjCtx: true})
	g2, g3 := ctx.VarPT(mm, 2), ctx.VarPT(mm, 3)
	if len(g2) != 2 || len(g3) != 2 {
		// The Item allocation is qualified by its receiver, but the return
		// var merges both contexts — both flow to both call results.
		t.Fatalf("obj-ctx pt sizes %d/%d, want 2/2 (merged at the return var)", len(g2), len(g3))
	}
	ctxs := map[int]bool{}
	for _, o := range g2 {
		ctxs[ctx.Objects[o].Ctx] = true
	}
	if len(ctxs) != 2 {
		t.Errorf("obj-ctx objects share a context: %v", ctxs)
	}
	if ctx.NumObjects() <= plain.NumObjects() {
		t.Errorf("obj-ctx created %d objects, plain %d; want strictly more",
			ctx.NumObjects(), plain.NumObjects())
	}
}
