package client

import (
	"net/http"
	"testing"
	"time"
)

// TestParseRetryAfter covers both RFC 9110 forms of the header. The
// HTTP-date rows use wide windows around the local clock so a slow test
// runner cannot flake them.
func TestParseRetryAfter(t *testing.T) {
	mk := func(v string) http.Header {
		h := http.Header{}
		h.Set("Retry-After", v)
		return h
	}
	if d := parseRetryAfter(http.Header{}); d != 0 {
		t.Errorf("absent header → %v, want 0", d)
	}
	if d := parseRetryAfter(mk("2")); d != 2*time.Second {
		t.Errorf("delay-seconds 2 → %v, want 2s", d)
	}
	if d := parseRetryAfter(mk("0")); d != 0 {
		t.Errorf("delay-seconds 0 → %v, want 0", d)
	}
	if d := parseRetryAfter(mk("-3")); d != 0 {
		t.Errorf("negative delay-seconds → %v, want 0", d)
	}
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(mk(future)); d <= 60*time.Second || d > 90*time.Second {
		t.Errorf("HTTP-date 90s ahead → %v, want within (60s, 90s]", d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(mk(past)); d != 0 {
		t.Errorf("HTTP-date in the past → %v, want 0", d)
	}
	if d := parseRetryAfter(mk("next tuesday")); d != 0 {
		t.Errorf("unparseable header → %v, want 0", d)
	}
}
