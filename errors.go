package lowutil

import (
	"context"
	"errors"
	"fmt"

	"lowutil/internal/interp"
	"lowutil/internal/lexer"
	"lowutil/internal/mjc"
	"lowutil/internal/parser"
)

// ErrCanceled is the sentinel wrapped into every error the facade returns
// for a run or analysis stopped by its context. errors.Is(err, ErrCanceled)
// detects cancellation regardless of which layer noticed it; the underlying
// context.Canceled / context.DeadlineExceeded stays visible through the
// chain too.
var ErrCanceled = errors.New("lowutil: canceled")

// CompileError is a compilation failure with source position. It wraps the
// front end's lexical, parse, or semantic error; Line/Col are 0 when the
// failure carries no position (e.g. an entry-point error at lowering).
type CompileError struct {
	Line, Col int
	Msg       string
	err       error
}

func (e *CompileError) Error() string { return e.err.Error() }

// Unwrap exposes the front-end error to errors.Is/As.
func (e *CompileError) Unwrap() error { return e.err }

// wrapCompileErr converts a front-end error into a *CompileError,
// extracting the source position when one of the known positioned error
// types is in the chain.
func wrapCompileErr(err error) error {
	if err == nil {
		return nil
	}
	ce := &CompileError{err: err}
	var (
		me *mjc.Error
		pe *parser.Error
		le *lexer.Error
	)
	switch {
	case errors.As(err, &me):
		ce.Line, ce.Col, ce.Msg = me.Pos.Line, me.Pos.Col, me.Msg
	case errors.As(err, &pe):
		ce.Line, ce.Col, ce.Msg = pe.Pos.Line, pe.Pos.Col, pe.Msg
	case errors.As(err, &le):
		ce.Line, ce.Col, ce.Msg = le.Pos.Line, le.Pos.Col, le.Msg
	default:
		ce.Msg = err.Error()
	}
	return ce
}

// ProfileError is a failure inside a profiling or plain run: Stage names
// the phase ("run", "prune", "analysis") and Err carries the cause —
// typically a *interp.VMError.
type ProfileError struct {
	Stage string
	Err   error
}

func (e *ProfileError) Error() string { return fmt.Sprintf("lowutil: %s: %v", e.Stage, e.Err) }

// Unwrap exposes the cause to errors.Is/As.
func (e *ProfileError) Unwrap() error { return e.Err }

// wrapRunErr classifies an error from the interpreter or an analysis
// phase: cancellation becomes an ErrCanceled-wrapped error (with the
// context error still in the chain), everything else a *ProfileError.
func wrapRunErr(stage string, err error) error {
	if err == nil {
		return nil
	}
	var vm *interp.VMError
	if errors.As(err, &vm) && vm.Kind == interp.ErrCanceled {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return &ProfileError{Stage: stage, Err: err}
}
