// Package deadness implements the ultimately-dead value measurement of
// §4.1 of the paper (Table 1, part (c)):
//
//   - D: non-consumer nodes with no outgoing def-use edges — nothing ever
//     depends on the values they produce.
//   - D*: nodes that can lead only to nodes in D. IPD is the fraction of
//     instruction instances represented by D* nodes; NLD is the fraction of
//     graph nodes in D*.
//   - P*: nodes that can lead only to predicate consumer nodes. IPP is the
//     fraction of instruction instances represented by P* nodes.
//
// The propagation runs over the SCC condensation of the def→use direction,
// so cycles of mutually-dependent dead values are classified correctly.
package deadness

import (
	"lowutil/internal/depgraph"
)

// Outcome is a bitmask of where a node's values can ultimately end up.
type Outcome uint8

const (
	// OutDead marks flow into a use-free non-consumer node.
	OutDead Outcome = 1 << iota
	// OutPredicate marks flow into an if predicate.
	OutPredicate
	// OutNative marks flow into a native consumer (program output / JVM).
	OutNative
)

// Result summarizes a deadness analysis.
type Result struct {
	// Instances is the total frequency over all non-consumer nodes — the
	// denominator restricted to value-producing work tracked in the graph.
	Instances int64
	// TotalInstances is the denominator actually used for IPD/IPP: the
	// machine's executed-instruction count when provided, else Instances.
	TotalInstances int64

	// DeadFreq is the frequency mass of D* (values that are ultimately
	// dead); PredFreq the mass of P* (values that end up only in
	// predicates).
	DeadFreq int64
	PredFreq int64

	// DeadNodes is |D*|; Nodes is |V|.
	DeadNodes int
	Nodes     int

	// Out maps every node to its outcome mask.
	Out map[*depgraph.Node]Outcome
}

// IPD returns the percentage of instruction instances producing ultimately
// dead values.
func (r *Result) IPD() float64 { return pct(r.DeadFreq, r.TotalInstances) }

// IPP returns the percentage of instruction instances whose values end up
// only in predicates.
func (r *Result) IPP() float64 { return pct(r.PredFreq, r.TotalInstances) }

// NLD returns the percentage of graph nodes that are ultimately dead.
func (r *Result) NLD() float64 { return pct(int64(r.DeadNodes), int64(r.Nodes)) }

func pct(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// Analyze computes the deadness result for g. totalInstances is the
// machine's executed-instruction count (#I); pass 0 to use the graph's own
// frequency mass as the denominator.
//
// The analysis runs over the frozen CSR snapshot: one condensation of the
// def→use direction, then outcome propagation in component index order
// (components come out in reverse topological order, so successors are
// always resolved first). analyzeLegacy keeps the map-based path for the
// differential test.
func Analyze(g *depgraph.Graph, totalInstances int64) *Result {
	s := g.Freeze()
	c := s.Condense(true, nil)

	outOf := make([]Outcome, c.NumComps)
	for ci := 0; ci < c.NumComps; ci++ {
		var out Outcome
		hasExternalSucc := false
		consumerOnly := true
		for _, v := range c.Members(int32(ci)) {
			if s.Consumer[v] {
				if s.Predicate[v] {
					out |= OutPredicate
				} else {
					out |= OutNative
				}
				continue // consumer out-edges do not propagate outcomes
			}
			consumerOnly = false
			for _, t := range s.Use[s.UseStart[v]:s.UseStart[v+1]] {
				tc := c.CompOf[t]
				if int(tc) == ci {
					continue // intra-component edge
				}
				hasExternalSucc = true
				out |= outOf[tc]
			}
		}
		if !consumerOnly && !hasExternalSucc && out == 0 {
			// A use-free (or internally cyclic) non-consumer component: D.
			out = OutDead
		}
		outOf[ci] = out
	}

	res := &Result{Out: make(map[*depgraph.Node]Outcome, s.NumNodes())}
	for i, n := range s.Nodes {
		res.Nodes++
		out := outOf[c.CompOf[i]]
		res.Out[n] = out
		if s.Consumer[i] {
			continue
		}
		res.Instances += s.Freq[i]
		switch out {
		case OutDead:
			res.DeadFreq += s.Freq[i]
			res.DeadNodes++
		case OutPredicate:
			res.PredFreq += s.Freq[i]
		}
	}
	res.TotalInstances = totalInstances
	if res.TotalInstances == 0 {
		res.TotalInstances = res.Instances
	}
	return res
}

// analyzeLegacy is the original map-based propagation, retained to prove the
// frozen path equivalent.
func analyzeLegacy(g *depgraph.Graph, totalInstances int64) *Result {
	comps, compOf := g.SCC()

	// comps is in reverse topological order: every def→use edge goes from a
	// component with a smaller index (the use side was emitted first by
	// Tarjan)… Tarjan emits a component only after all components reachable
	// from it, so successors have smaller indices. Process components in
	// index order: successors are already resolved.
	outOf := make([]Outcome, len(comps))
	for ci, comp := range comps {
		var out Outcome
		hasExternalSucc := false
		consumerOnly := true
		for _, n := range comp {
			if n.IsConsumer() {
				if n.IsPredicate() {
					out |= OutPredicate
				} else {
					out |= OutNative
				}
				continue
			}
			consumerOnly = false
			n.Uses(func(u *depgraph.Node) {
				uc := compOf[u]
				if uc == ci {
					return // intra-component edge
				}
				hasExternalSucc = true
				out |= outOf[uc]
			})
		}
		if !consumerOnly && !hasExternalSucc && out == 0 {
			// A use-free (or internally cyclic) non-consumer component: D.
			out = OutDead
		}
		outOf[ci] = out
	}

	res := &Result{Out: make(map[*depgraph.Node]Outcome, g.NumNodes())}
	g.Nodes(func(n *depgraph.Node) {
		res.Nodes++
		out := outOf[compOf[n]]
		res.Out[n] = out
		if n.IsConsumer() {
			return
		}
		res.Instances += n.Freq()
		switch out {
		case OutDead:
			res.DeadFreq += n.Freq()
			res.DeadNodes++
		case OutPredicate:
			res.PredFreq += n.Freq()
		}
	})
	res.TotalInstances = totalInstances
	if res.TotalInstances == 0 {
		res.TotalInstances = res.Instances
	}
	return res
}
