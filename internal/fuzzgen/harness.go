package fuzzgen

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"strings"

	"lowutil"
	"lowutil/internal/costben"
	"lowutil/internal/depgraph"
	"lowutil/internal/escape"
	"lowutil/internal/interp"
	"lowutil/internal/interproc"
	"lowutil/internal/ir"
	"lowutil/internal/mjc"
	"lowutil/internal/profiler"
	"lowutil/internal/staticanalysis"
)

// maxFuzzSteps bounds every interpreter run in the harness. Generated
// programs peak well under a million steps (see gen.go's termination
// guarantees), so hitting this budget is itself a generator-contract
// violation rather than a long-running program.
const maxFuzzSteps = 50_000_000

// Violation is one failed invariant on one generated program.
type Violation struct {
	Invariant string
	Detail    string
}

// Invariant is one named differential check. Checks share a caseRun so
// expensive artifacts (compiled program, dynamic Gcost, interprocedural
// analyses) are computed once per generated program.
type Invariant struct {
	Name  string
	check func(c *caseRun) error
}

// Invariants returns the full differential suite in its stable run order.
// Each entry mirrors an invariant the fixed-workload test suites prove:
//
//	compiles               the generator's contract: output is well-formed MJ
//	interp-parity          dense vs legacy dispatch: output/steps/allocs/native
//	profile-parity         dense vs legacy profiler engine: byte-identical
//	                       report, saved profile, multi-hop slice, stats
//	slice-containment-cha  dynamic Gcost ⊆ static slice under CHA
//	slice-containment-rta  dynamic Gcost ⊆ static slice under RTA+ObjCtx
//	prune-ranking          static prune preserves the per-site ranking
//	vet-agreement          SSA vs dense vet subset/equality relations
//	escape-soundness       dynamic escapes ⊆ static non-NoEscape (CHA and RTA)
//	report-stability       profile/slice/audit reports are byte-stable across
//	                       repeated emission
func Invariants() []Invariant {
	base := []Invariant{
		{"compiles", checkCompiles},
		{"interp-parity", checkInterpParity},
		{"profile-parity", checkProfileParity},
		{"slice-containment-cha", checkContainmentCHA},
		{"slice-containment-rta", checkContainmentRTA},
		{"prune-ranking", checkPruneRanking},
		{"vet-agreement", checkVetAgreement},
		{"escape-soundness", checkEscapeSoundness},
		{"report-stability", checkReportStability},
	}
	return append(base, extraInvariants...)
}

// extraInvariants is a test-only hook: the broken-invariant regression test
// appends a deliberately failing check here to prove the driver catches it
// and shrinks the reproducer. Always empty in production use.
var extraInvariants []Invariant

// invariantNames returns the suite's names in run order.
func invariantNames() []string {
	var names []string
	for _, inv := range Invariants() {
		names = append(names, inv.Name)
	}
	return names
}

// caseRun memoizes the per-program artifacts the invariants share.
type caseRun struct {
	src string

	compiled   bool
	prog       *ir.Program
	compileErr error

	fac *lowutil.Program

	dyn    *depgraph.Graph
	dynErr error

	anCHA    *interproc.Analysis
	anRTAObj *interproc.Analysis
	anRTA    *interproc.Analysis
}

func newCaseRun(src string) *caseRun { return &caseRun{src: src} }

func (c *caseRun) irProg() (*ir.Program, error) {
	if !c.compiled {
		c.compiled = true
		c.prog, c.compileErr = mjc.Compile(c.src)
	}
	return c.prog, c.compileErr
}

func (c *caseRun) facade() (*lowutil.Program, error) {
	if c.fac == nil {
		p, err := lowutil.Compile(c.src)
		if err != nil {
			return nil, err
		}
		c.fac = p
	}
	return c.fac, nil
}

// dynGraph profiles the program once (thin slicing, 16 context slots) and
// caches the dynamic Gcost for the containment invariants.
func (c *caseRun) dynGraph() (*depgraph.Graph, error) {
	if c.dyn == nil && c.dynErr == nil {
		prog, err := c.irProg()
		if err != nil {
			return nil, err
		}
		p := profiler.New(prog, profiler.Options{Slots: 16})
		m := interp.New(prog)
		m.Tracer = p
		m.MaxSteps = maxFuzzSteps
		if err := m.Run(); err != nil {
			c.dynErr = fmt.Errorf("profiled run failed: %w", err)
		} else {
			c.dyn = p.G
		}
	}
	return c.dyn, c.dynErr
}

func (c *caseRun) analysis(which *interproc.Analysis, cfg interproc.Config) (*interproc.Analysis, error) {
	if which != nil {
		return which, nil
	}
	prog, err := c.irProg()
	if err != nil {
		return nil, err
	}
	return interproc.Analyze(prog, cfg), nil
}

func (c *caseRun) cha() (*interproc.Analysis, error) {
	an, err := c.analysis(c.anCHA, interproc.Config{Mode: interproc.CHA})
	c.anCHA = an
	return an, err
}

func (c *caseRun) rtaObj() (*interproc.Analysis, error) {
	an, err := c.analysis(c.anRTAObj, interproc.Config{Mode: interproc.RTA, ObjCtx: true})
	c.anRTAObj = an
	return an, err
}

// rta is the plain RTA analysis (no object context) — the configuration the
// facade's -prune path and the vet engines use.
func (c *caseRun) rta() (*interproc.Analysis, error) {
	an, err := c.analysis(c.anRTA, interproc.Config{Mode: interproc.RTA})
	c.anRTA = an
	return an, err
}

// errSkip marks an invariant that cannot be evaluated on this source (it
// does not compile). Only the "compiles" invariant treats that as a failure;
// the shrinker treats errSkip candidates as not reproducing.
var errSkip = fmt.Errorf("not applicable: source does not compile")

func checkCompiles(c *caseRun) error {
	if _, err := c.irProg(); err != nil {
		return fmt.Errorf("generated program does not compile: %v", err)
	}
	return nil
}

func checkInterpParity(c *caseRun) error {
	prog, err := c.irProg()
	if err != nil {
		return errSkip
	}
	run := func(legacy bool) (*interp.Machine, error) {
		m := interp.New(prog)
		m.LegacyDispatch = legacy
		m.MaxSteps = maxFuzzSteps
		if err := m.Run(); err != nil {
			return nil, err
		}
		return m, nil
	}
	dense, err := run(false)
	if err != nil {
		return fmt.Errorf("dense run failed: %v", err)
	}
	legacy, err := run(true)
	if err != nil {
		return fmt.Errorf("legacy run failed: %v", err)
	}
	if fmt.Sprint(dense.Output) != fmt.Sprint(legacy.Output) {
		return fmt.Errorf("output differs: dense %v vs legacy %v", dense.Output, legacy.Output)
	}
	if dense.Steps != legacy.Steps || dense.Allocs != legacy.Allocs || dense.NativeWork != legacy.NativeWork {
		return fmt.Errorf("counters differ: steps %d/%d allocs %d/%d native %d/%d",
			dense.Steps, legacy.Steps, dense.Allocs, legacy.Allocs, dense.NativeWork, legacy.NativeWork)
	}
	return nil
}

// profileBundle captures every engine-sensitive profile output, mirroring
// the CLI surface: ranked report, serialized profile, multi-hop slice, and
// graph/deadness stats.
type profileBundle struct {
	report, saved, multihop, stats string
}

func (c *caseRun) profileWith(legacy bool) (*profileBundle, error) {
	fac, err := c.facade()
	if err != nil {
		return nil, err
	}
	var opts []lowutil.ProfileOption
	if legacy {
		opts = append(opts, lowutil.WithLegacyEngine())
	}
	profile, err := fac.ProfileContext(context.Background(), opts...)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := profile.Save(&buf); err != nil {
		return nil, err
	}
	var mh strings.Builder
	for i, f := range profile.TopStructuresMultiHop(10, 2) {
		fmt.Fprintf(&mh, "%3d. %s\n", i+1, f)
	}
	return &profileBundle{
		report:   profile.Report(lowutil.DefaultTop),
		saved:    buf.String(),
		multihop: mh.String(),
		stats:    fmt.Sprintf("%+v %+v steps=%d", profile.GraphStats(), profile.Deadness(), profile.Steps()),
	}, nil
}

func checkProfileParity(c *caseRun) error {
	if _, err := c.irProg(); err != nil {
		return errSkip
	}
	dense, err := c.profileWith(false)
	if err != nil {
		return fmt.Errorf("dense profile failed: %v", err)
	}
	legacy, err := c.profileWith(true)
	if err != nil {
		return fmt.Errorf("legacy profile failed: %v", err)
	}
	switch {
	case dense.report != legacy.report:
		return fmt.Errorf("report differs:\n--- dense ---\n%s--- legacy ---\n%s", dense.report, legacy.report)
	case dense.saved != legacy.saved:
		return fmt.Errorf("serialized profile differs (%d vs %d bytes)", len(dense.saved), len(legacy.saved))
	case dense.multihop != legacy.multihop:
		return fmt.Errorf("multi-hop slice differs:\n--- dense ---\n%s--- legacy ---\n%s", dense.multihop, legacy.multihop)
	case dense.stats != legacy.stats:
		return fmt.Errorf("stats differ: dense %q vs legacy %q", dense.stats, legacy.stats)
	}
	return nil
}

// containment checks dynamic ⊆ static: every dependence, reference and
// ownership-child edge of the dynamic Gcost must appear in the static slice.
func containment(g *depgraph.Graph, an *interproc.Analysis) error {
	missing := 0
	var first string
	note := func(format string, args ...any) {
		if missing == 0 {
			first = fmt.Sprintf(format, args...)
		}
		missing++
	}
	g.Nodes(func(n *depgraph.Node) {
		n.Deps(func(d *depgraph.Node) {
			if !an.Slice.HasDep(n.In.ID, d.In.ID) {
				note("dynamic dep i%d -> i%d (%s -> %s) not in static slice",
					n.In.ID, d.In.ID, n.In, d.In)
			}
		})
		n.RefEdges(func(al *depgraph.Node) {
			if !an.Slice.HasRef(n.In.ID, al.In.ID) {
				note("dynamic ref i%d -> i%d not in static slice", n.In.ID, al.In.ID)
			}
		})
	})
	owners := []*depgraph.Node{nil}
	g.Nodes(func(n *depgraph.Node) {
		if n.Eff == depgraph.EffAlloc {
			owners = append(owners, n)
		}
	})
	for _, o := range owners {
		ownerID := -1
		if o != nil {
			ownerID = o.In.ID
		}
		g.Children(o, func(field int, child *depgraph.Node) {
			if !an.Slice.HasChild(ownerID, field, child.In.ID) {
				note("dynamic child (%d,%d) -> i%d not in static slice", ownerID, field, child.In.ID)
			}
		})
	}
	if missing > 0 {
		return fmt.Errorf("%s/%d dynamic edges missing under %s; first: %s",
			an.CG.Mode.String(), missing, an.CG.Mode.String(), first)
	}
	return nil
}

func checkContainmentCHA(c *caseRun) error {
	if _, err := c.irProg(); err != nil {
		return errSkip
	}
	g, err := c.dynGraph()
	if err != nil {
		return err
	}
	an, err := c.cha()
	if err != nil {
		return err
	}
	return containment(g, an)
}

func checkContainmentRTA(c *caseRun) error {
	if _, err := c.irProg(); err != nil {
		return errSkip
	}
	g, err := c.dynGraph()
	if err != nil {
		return err
	}
	an, err := c.rtaObj()
	if err != nil {
		return err
	}
	return containment(g, an)
}

func checkPruneRanking(c *caseRun) error {
	prog, err := c.irProg()
	if err != nil {
		return errSkip
	}
	run := func(prune []bool) (*depgraph.Graph, int64, error) {
		p := profiler.New(prog, profiler.Options{Slots: 16, Prune: prune})
		m := interp.New(prog)
		m.Tracer = p
		m.Prune = prune
		m.MaxSteps = maxFuzzSteps
		if err := m.Run(); err != nil {
			return nil, 0, err
		}
		return p.G, m.PrunedEvents, nil
	}
	gFull, zero, err := run(nil)
	if err != nil {
		return fmt.Errorf("unpruned run failed: %v", err)
	}
	if zero != 0 {
		return fmt.Errorf("unpruned run counted %d pruned events", zero)
	}
	an, err := c.rta()
	if err != nil {
		return err
	}
	prune, _ := staticanalysis.PruneSetWith(prog, an.Sum)
	gPruned, _, err := run(prune)
	if err != nil {
		return fmt.Errorf("pruned run failed: %v", err)
	}
	full := costben.NewAnalysis(gFull).RankBySite(4)
	pruned := costben.NewAnalysis(gPruned).RankBySite(4)
	if len(full) != len(pruned) {
		return fmt.Errorf("site count %d vs %d under prune", len(full), len(pruned))
	}
	for i := range full {
		f, p := full[i], pruned[i]
		if f.Site != p.Site || f.NRAC != p.NRAC || f.NRAB != p.NRAB || f.Consumed != p.Consumed {
			return fmt.Errorf("rank %d diverges under prune: %v vs %v", i, f, p)
		}
	}
	return nil
}

type findingKey struct {
	class, method string
	pc            int
}

func keySet(fs []staticanalysis.Finding, kind staticanalysis.Kind) map[findingKey]bool {
	out := make(map[findingKey]bool)
	for _, f := range fs {
		if f.Kind == kind {
			out[findingKey{f.Class, f.Method, f.PC}] = true
		}
	}
	return out
}

func subsetErr(what string, sub, super map[findingKey]bool) error {
	for k := range sub {
		if !super[k] {
			return fmt.Errorf("%s violated: %s.%s:%d found by the smaller engine only",
				what, k.class, k.method, k.pc)
		}
	}
	return nil
}

// checkVetAgreement pins the SSA-vs-dense vet relations proven on the fixed
// workloads: the SSA engine may differ from the dense engine only in
// directions that are precision improvements.
func checkVetAgreement(c *caseRun) error {
	prog, err := c.irProg()
	if err != nil {
		return errSkip
	}
	an, err := c.rta()
	if err != nil {
		return err
	}
	dense := staticanalysis.VetDenseWith(prog, an)
	sparse := staticanalysis.VetWith(prog, an)

	if err := subsetErr("dead-store (dense ⊆ ssa)",
		keySet(dense, staticanalysis.KindDeadStore), keySet(sparse, staticanalysis.KindDeadStore)); err != nil {
		return err
	}
	if err := subsetErr("unused-alloc (dense ⊆ ssa)",
		keySet(dense, staticanalysis.KindUnusedAlloc), keySet(sparse, staticanalysis.KindUnusedAlloc)); err != nil {
		return err
	}
	denseUnreach := keySet(dense, staticanalysis.KindUnreachable)
	if err := subsetErr("unreachable (dense ⊆ ssa)",
		denseUnreach, keySet(sparse, staticanalysis.KindUnreachable)); err != nil {
		return err
	}
	if err := subsetErr("uninit-read (ssa ⊆ dense)",
		keySet(sparse, staticanalysis.KindUninitRead), keySet(dense, staticanalysis.KindUninitRead)); err != nil {
		return err
	}
	ccSuper := keySet(sparse, staticanalysis.KindCalleeClobbered)
	for k := range keySet(sparse, staticanalysis.KindDeadStore) {
		ccSuper[k] = true
	}
	if err := subsetErr("callee-clobbered (dense ⊆ ssa ∪ ssa-dead)",
		keySet(dense, staticanalysis.KindCalleeClobbered), ccSuper); err != nil {
		return err
	}
	// The escape lints come from one shared helper: exact equality.
	for _, k := range []staticanalysis.Kind{staticanalysis.KindConfinedAllocInLoop, staticanalysis.KindCopyChain} {
		if err := subsetErr(k.String()+" (dense ⊆ ssa)", keySet(dense, k), keySet(sparse, k)); err != nil {
			return err
		}
		if err := subsetErr(k.String()+" (ssa ⊆ dense)", keySet(sparse, k), keySet(dense, k)); err != nil {
			return err
		}
	}
	// Extra SSA unreachable reports must carry the SCCP attribution.
	for _, f := range sparse {
		if f.Kind != staticanalysis.KindUnreachable {
			continue
		}
		k := findingKey{f.Class, f.Method, f.PC}
		if !denseUnreach[k] && !strings.Contains(f.Detail, "constant propagation") {
			return fmt.Errorf("extra unreachable report without SCCP attribution: %v", f)
		}
	}
	// Write-only fields are computed identically by both engines.
	var dWO, sWO []string
	for _, f := range dense {
		if f.Kind == staticanalysis.KindWriteOnlyField {
			dWO = append(dWO, f.String())
		}
	}
	for _, f := range sparse {
		if f.Kind == staticanalysis.KindWriteOnlyField {
			sWO = append(sWO, f.String())
		}
	}
	sort.Strings(dWO)
	sort.Strings(sWO)
	if strings.Join(dWO, "\n") != strings.Join(sWO, "\n") {
		return fmt.Errorf("write-only-field reports differ:\ndense: %v\nssa:   %v", dWO, sWO)
	}
	return nil
}

func checkEscapeSoundness(c *caseRun) error {
	prog, err := c.irProg()
	if err != nil {
		return errSkip
	}
	obs := escape.NewObserver()
	m := interp.New(prog)
	m.Tracer = obs
	m.MaxSteps = maxFuzzSteps
	if err := m.Run(); err != nil {
		return fmt.Errorf("observed run failed: %v", err)
	}
	escaped := obs.EscapedSites()
	for _, which := range []func() (*interproc.Analysis, error){c.cha, c.rtaObj} {
		an, err := which()
		if err != nil {
			return err
		}
		r := escape.Analyze(an)
		for _, s := range escaped {
			si := r.Site(s)
			if si == nil {
				return fmt.Errorf("%s: dynamically escaped site %d is not statically reachable",
					an.CG.Mode.String(), s)
			}
			if si.State == escape.NoEscape {
				return fmt.Errorf("%s: dynamically escaped site %d (%s) classified no-escape",
					an.CG.Mode.String(), s, r.SiteName(si))
			}
		}
	}
	return nil
}

// checkReportStability re-emits every textual report twice and requires the
// bytes to match: profile report + serialized profile, static slice, and
// static audit must all be deterministic for a fixed input.
func checkReportStability(c *caseRun) error {
	if _, err := c.irProg(); err != nil {
		return errSkip
	}
	fac, err := c.facade()
	if err != nil {
		return err
	}
	ctx := context.Background()
	a, err := c.profileWith(false)
	if err != nil {
		return fmt.Errorf("profile failed: %v", err)
	}
	b, err := c.profileWith(false)
	if err != nil {
		return fmt.Errorf("profile re-run failed: %v", err)
	}
	if a.report != b.report || a.saved != b.saved || a.multihop != b.multihop || a.stats != b.stats {
		return fmt.Errorf("profile outputs not byte-stable across re-emission")
	}
	s1, err := fac.StaticSliceContext(ctx)
	if err != nil {
		return fmt.Errorf("slice failed: %v", err)
	}
	s2, err := fac.StaticSliceContext(ctx)
	if err != nil {
		return fmt.Errorf("slice re-run failed: %v", err)
	}
	if s1 != s2 {
		return fmt.Errorf("static slice report not byte-stable across re-emission")
	}
	a1, err := fac.StaticAudit(ctx)
	if err != nil {
		return fmt.Errorf("audit failed: %v", err)
	}
	a2, err := fac.StaticAudit(ctx)
	if err != nil {
		return fmt.Errorf("audit re-run failed: %v", err)
	}
	if a1 != a2 {
		return fmt.Errorf("static audit report not byte-stable across re-emission")
	}
	return nil
}

// CheckAll runs the full suite on one source and returns every violation.
// A source that fails to compile yields exactly the "compiles" violation;
// the remaining invariants are not applicable to it.
func CheckAll(src string) []Violation {
	c := newCaseRun(src)
	var out []Violation
	for _, inv := range Invariants() {
		if err := inv.check(c); err != nil && err != errSkip {
			out = append(out, Violation{Invariant: inv.Name, Detail: err.Error()})
		}
	}
	return out
}

// FailureClass canonicalizes a failure detail into a coarse signature:
// digits are dropped (costs, PCs, and counts change as a program shrinks)
// and the remainder is truncated. The shrinker requires candidates to keep
// the original failure's class so a deletion cannot morph, say, a ranking
// divergence into an unrelated null dereference that happens to fail the
// same invariant.
func FailureClass(detail string) string {
	var b strings.Builder
	for i := 0; i < len(detail); i++ {
		if c := detail[i]; c < '0' || c > '9' {
			b.WriteByte(c)
		}
	}
	s := b.String()
	if len(s) > 48 {
		s = s[:48]
	}
	return s
}

// CheckNamed runs a single invariant on one source. It reports whether that
// invariant fails and, if so, the failure detail. A non-compiling source
// fails only the "compiles" invariant — for every other name it reports
// false, which is what lets the shrinker reject candidates that break
// compilation instead of chasing a different bug.
func CheckNamed(name, src string) (bool, string) {
	for _, inv := range Invariants() {
		if inv.Name != name {
			continue
		}
		c := newCaseRun(src)
		if err := inv.check(c); err != nil && err != errSkip {
			return true, err.Error()
		}
		return false, ""
	}
	return false, ""
}
