package deadness

// Differential proof that the frozen-snapshot propagation matches the
// original map-based SCC path on every workload: same per-node outcomes and
// same aggregate IPD/IPP/NLD inputs.

import (
	"testing"

	"lowutil/internal/interp"
	"lowutil/internal/profiler"
	"lowutil/internal/workloads"
)

func TestFrozenMatchesLegacyAllWorkloads(t *testing.T) {
	names := make([]string, 0, len(workloads.All()))
	for _, w := range workloads.All() {
		names = append(names, w.Name)
	}
	if testing.Short() {
		names = []string{"bloat", "eclipse", "xalan"}
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			w := workloads.ByName(name)
			prog, err := w.Compile(1)
			if err != nil {
				t.Fatal(err)
			}
			p := profiler.New(prog, profiler.Options{Slots: 16})
			m := interp.New(prog)
			m.Tracer = p
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}

			frozen := Analyze(p.G, m.Steps)
			legacy := analyzeLegacy(p.G, m.Steps)

			if frozen.Instances != legacy.Instances ||
				frozen.TotalInstances != legacy.TotalInstances ||
				frozen.DeadFreq != legacy.DeadFreq ||
				frozen.PredFreq != legacy.PredFreq ||
				frozen.DeadNodes != legacy.DeadNodes ||
				frozen.Nodes != legacy.Nodes {
				t.Fatalf("aggregates differ:\n frozen %+v\n legacy %+v", frozen, legacy)
			}
			if len(frozen.Out) != len(legacy.Out) {
				t.Fatalf("Out: %d vs %d nodes", len(frozen.Out), len(legacy.Out))
			}
			for n, out := range legacy.Out {
				if frozen.Out[n] != out {
					t.Fatalf("outcome of %v: frozen %b, legacy %b", n, frozen.Out[n], out)
				}
			}
		})
	}
}
