// Nullorigin demonstrates the null-propagation client (Figure 2(a) of the
// paper): when a program dies with a NullPointerException, the analysis
// reports where the null was created and the copy chain it travelled —
// not just the crash site.
//
// Run with: go run ./examples/nullorigin
package main

import (
	"fmt"
	"log"

	"lowutil"
)

const src = `
class Config { Config fallback; int timeout; }
class Registry {
  Config lookup(Config base) {
    // Returns the fallback chain entry — which was never initialized.
    return base.fallback;
  }
}
class Server {
  int start(Config c) {
    return c.timeout + 1;      // NPE here, far from the null's origin
  }
}
class Main {
  static void main() {
    Config base = new Config();
    base.timeout = 30;
    Registry reg = new Registry();
    Config resolved = reg.lookup(base);   // null enters the flow here
    Config active = resolved;             // ...and is copied around
    Server srv = new Server();
    print(srv.start(active));
  }
}`

func main() {
	prog, err := lowutil.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	diag, err := prog.DiagnoseNull()
	if err != nil {
		log.Fatal(err)
	}
	if diag == nil {
		fmt.Println("no null dereference")
		return
	}
	fmt.Println("NullPointerException diagnosed:")
	fmt.Println(diag.Report)
	fmt.Printf("\norigin: %s (the uninitialized fallback field load)\n", diag.OriginWhere)
}
