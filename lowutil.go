// Package lowutil is a from-scratch reproduction of "Finding Low-Utility
// Data Structures" (Xu, Mitchell, Arnold, Rountev, Schonberg, Sevitsky —
// PLDI 2010) as a Go library.
//
// The paper finds runtime bloat by profiling the cost of producing heap
// values (how many instructions were transitively required, computed with
// *abstract dynamic thin slicing*) against the benefit of consuming them,
// and flags data structures whose relative cost far exceeds their relative
// benefit. The original system instruments the IBM J9 JVM; this library
// substitutes a complete stack built from scratch:
//
//   - MJ, a mini-Java source language with a full compiler front end
//   - a three-address-code VM (the instrumentation substrate)
//   - the cost-benefit profiler (Figure 4 of the paper), Gcost, and the
//     relative cost-benefit analysis (RAC/RAB, n-RAC/n-RAB)
//   - the client analyses: null-propagation, typestate history, extended
//     copy profiling, dead-value measurement, predicate and rewrite
//     detectors, collection ranking
//
// This package is the high-level facade. Typical use:
//
//	prog, err := lowutil.Compile(src)
//	profile, err := prog.ProfileContext(ctx, lowutil.WithSlots(16), lowutil.WithPrune())
//	fmt.Println(profile.Report(10))
//
// The context-free Profile/Run/StaticSlice methods remain as deprecated
// wrappers. `lowutil serve` (internal/server) exposes this facade as a
// concurrent HTTP JSON API with session and profile caching.
//
// The experiment harnesses behind Table 1 and the six case studies live in
// internal/evalharness and internal/casestudies and are driven by the
// cmd/table1 and cmd/casestudies binaries.
package lowutil

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"lowutil/internal/casestudies"
	"lowutil/internal/clients"
	"lowutil/internal/costben"
	"lowutil/internal/deadness"
	"lowutil/internal/depgraph"
	"lowutil/internal/escape"
	"lowutil/internal/interp"
	"lowutil/internal/interproc"
	"lowutil/internal/ir"
	"lowutil/internal/mjc"
	"lowutil/internal/profiler"
	"lowutil/internal/ssa"
	"lowutil/internal/staticanalysis"
)

// Program is a compiled MJ program.
type Program struct {
	prog *ir.Program
}

// Compile compiles MJ source with entry point Main.main. On failure the
// error chain contains a *CompileError carrying the source position.
func Compile(src string) (*Program, error) {
	p, err := mjc.Compile(src)
	if err != nil {
		return nil, wrapCompileErr(err)
	}
	return &Program{prog: p}, nil
}

// CompileAt compiles MJ source with an explicit entry point. On failure the
// error chain contains a *CompileError carrying the source position.
func CompileAt(src, mainClass, mainMethod string) (*Program, error) {
	p, err := mjc.CompileAt(src, mainClass, mainMethod)
	if err != nil {
		return nil, wrapCompileErr(err)
	}
	return &Program{prog: p}, nil
}

// Disassemble renders the program's three-address code.
func (p *Program) Disassemble() string { return p.prog.Disassemble() }

// NumInstructions returns the static instruction count (domain I).
func (p *Program) NumInstructions() int { return p.prog.NumInstrs() }

// VetFinding is one diagnostic from the static vet suite.
type VetFinding struct {
	// Kind is the finding class: "dead-store", "write-only-field",
	// "unused-alloc", "unreachable-code", "uninit-read",
	// "callee-clobbered-store", "confined-alloc-in-loop" or "copy-chain".
	Kind string
	// Class, Method and PC anchor the finding ("" / -1 for program-level
	// field findings); Line is the MJ source line when known.
	Class, Method string
	PC, Line      int
	// Message is the rendered diagnostic.
	Message string
}

// Vet runs the static diagnostics suite — no execution involved — and
// returns the findings sorted by (class, method, pc) so output is stable
// across runs. Zero findings means the program is clean under all five
// checks. Vet uses the SSA-based engine; VetEngine selects explicitly.
func (p *Program) Vet() []VetFinding {
	return convertFindings(staticanalysis.Vet(p.prog))
}

// VetEngine runs the vet suite with an explicit engine: "ssa" (the default —
// sparse analyses over SSA form, with transitive dead-store chains and
// SCCP-proven unreachable code) or "dense" (the classic bit-vector
// reaching-definitions engine, kept as the differential-testing reference).
func (p *Program) VetEngine(engine string) ([]VetFinding, error) {
	switch engine {
	case "", "ssa":
		return convertFindings(staticanalysis.Vet(p.prog)), nil
	case "dense":
		return convertFindings(staticanalysis.VetDense(p.prog)), nil
	default:
		return nil, fmt.Errorf("lowutil: unknown vet engine %q (want ssa or dense)", engine)
	}
}

func convertFindings(fs []staticanalysis.Finding) []VetFinding {
	out := make([]VetFinding, 0, len(fs))
	for _, f := range fs {
		out = append(out, VetFinding{
			Kind:    f.Kind.String(),
			Class:   f.Class,
			Method:  f.Method,
			PC:      f.PC,
			Line:    f.Line,
			Message: f.String(),
		})
	}
	return out
}

// SSADump renders the SSA-form analysis of one method ("Class.method"), or
// of every method when method is empty: blocks with phis and SSA names,
// SCCP verdicts (constants, dead blocks), value-numbering redundancies, and
// the loop forest with inferred trip counts and frequency weights.
func (p *Program) SSADump(method string) (string, error) {
	var b strings.Builder
	found := false
	for _, c := range p.prog.Classes {
		for _, m := range c.Methods {
			if method != "" && m.QualifiedName() != method {
				continue
			}
			if found {
				b.WriteByte('\n')
			}
			ssa.AnalyzeMethod(m).Dump(&b)
			found = true
		}
	}
	if !found {
		return "", fmt.Errorf("lowutil: no method %q", method)
	}
	return b.String(), nil
}

// AnalysisOptions configures the static analyses — the interprocedural
// slice and the low-utility audit share one vocabulary, because both run
// over the same call graph and points-to heap abstraction.
type AnalysisOptions struct {
	// Mode selects call-graph construction: "cha" (class hierarchy) or
	// "rta" (rapid type analysis, the default).
	Mode string
	// ObjCtx qualifies allocation sites by one level of receiver-object
	// context — the static mirror of the dynamic profiler's
	// receiver-object-sensitive slots.
	ObjCtx bool
	// Top bounds the candidate list in the rendered report (0 = DefaultTop).
	Top int
}

// SliceOptions is the static slice's view of the shared analysis
// configuration.
type SliceOptions = AnalysisOptions

// AuditOptions is the static audit's view of the shared analysis
// configuration.
type AuditOptions = AnalysisOptions

// StaticSlice builds the whole-program static thin slice — call graph,
// points-to relation, and the static over-approximation of Gcost — and
// renders its report: graph sizes, the statically write-only stored
// locations, and the top cost/benefit-bounded candidates. No execution is
// involved, and every dependence, reference, and ownership edge any run
// could produce is contained in the static edge sets (the soundness
// invariant cross-validated by the differential harness). Output is
// byte-stable across runs.
// StaticSlice is the v1 entry point for the static slice.
//
// Deprecated: use StaticSliceContext, which adds cancellation and
// functional options. This wrapper remains so existing callers compile.
func (p *Program) StaticSlice(opts SliceOptions) (string, error) {
	return p.staticSlice(context.Background(), opts)
}

// StaticSliceContext builds the whole-program static thin slice under ctx
// — fixpoint loops poll the context, so deadlines and cancellation abort
// the analysis promptly with an ErrCanceled-wrapped error. Options fold
// over the defaults (mode rta, top DefaultTop).
func (p *Program) StaticSliceContext(ctx context.Context, opts ...SliceOption) (string, error) {
	return p.staticSlice(ctx, applyAnalysisOptions(opts))
}

func (p *Program) staticSlice(ctx context.Context, opts AnalysisOptions) (string, error) {
	cfg := interproc.Config{Mode: interproc.RTA, ObjCtx: opts.ObjCtx}
	switch opts.Mode {
	case "", "rta":
	case "cha":
		cfg.Mode = interproc.CHA
	default:
		return "", fmt.Errorf("lowutil: unknown call-graph mode %q (want cha or rta)", opts.Mode)
	}
	top := opts.Top
	if top <= 0 {
		top = DefaultTop
	}
	an, err := interproc.AnalyzeContext(ctx, p.prog, cfg)
	if err != nil {
		return "", wrapRunErr("slice", err)
	}
	return an.Report(top), nil
}

// StaticAudit runs the fully static low-utility audit — the SSA-based
// interprocedural escape and lifetime analysis over the points-to heap
// abstraction — and renders its report: the escape-state and lifetime
// histograms, copy-chain and loop-confinement shape counts, and the
// allocation sites ranked by the frequency-weighted static cost/benefit
// bounds (the static analogue of the dynamic Gcost ranking). No execution
// is involved; every dynamically observable escape is covered by the
// static classification (the dynamic ⊆ static invariant cross-validated by
// the soundness harness), and output is byte-stable across runs. The
// analysis fixpoints poll ctx, so deadlines and cancellation abort promptly
// with an ErrCanceled-wrapped error. Options fold over the defaults (mode
// rta, top DefaultTop).
func (p *Program) StaticAudit(ctx context.Context, opts ...AuditOption) (string, error) {
	return p.staticAudit(ctx, applyAnalysisOptions(opts))
}

func (p *Program) staticAudit(ctx context.Context, opts AnalysisOptions) (string, error) {
	cfg := interproc.Config{Mode: interproc.RTA, ObjCtx: opts.ObjCtx}
	switch opts.Mode {
	case "", "rta":
	case "cha":
		cfg.Mode = interproc.CHA
	default:
		return "", fmt.Errorf("lowutil: unknown call-graph mode %q (want cha or rta)", opts.Mode)
	}
	top := opts.Top
	if top <= 0 {
		top = DefaultTop
	}
	an, err := interproc.AnalyzeContext(ctx, p.prog, cfg)
	if err != nil {
		return "", wrapRunErr("audit", err)
	}
	r, err := escape.AnalyzeContext(ctx, an)
	if err != nil {
		return "", wrapRunErr("audit", err)
	}
	return r.Report(top), nil
}

// RunResult summarizes an uninstrumented execution.
type RunResult struct {
	// Output holds the values printed by the program.
	Output []int64
	// Steps is the number of executed instruction instances.
	Steps int64
	// Allocs is the number of allocated objects and arrays.
	Allocs int64
	// NativeWork is synthetic native cost (database round-trips).
	NativeWork int64
}

// Run executes the program without instrumentation.
//
// Deprecated: use RunContext, which adds cancellation. This wrapper
// remains so existing callers compile.
func (p *Program) Run() (*RunResult, error) {
	return p.RunContext(context.Background())
}

// RunContext executes the program without instrumentation under ctx; the
// interpreter main loop polls the context periodically, so cancellation
// stops the run promptly with an ErrCanceled-wrapped error.
func (p *Program) RunContext(ctx context.Context) (*RunResult, error) {
	m := interp.New(p.prog)
	m.Ctx = ctx
	if err := m.Run(); err != nil {
		return nil, wrapRunErr("run", err)
	}
	return &RunResult{Output: m.Output, Steps: m.Steps, Allocs: m.Allocs, NativeWork: m.NativeWork}, nil
}

// ProfileOptions configures cost-benefit profiling.
type ProfileOptions struct {
	// Slots is the number of context slots per instruction (the paper's s;
	// 0 means 16).
	Slots int
	// Traditional switches from thin to traditional dynamic slicing
	// (base-pointer dependences included) — mainly for ablations.
	Traditional bool
	// TreeHeight is the reference-tree height n for n-RAC/n-RAB (0 = 4,
	// the paper's choice).
	TreeHeight int
	// TrackControl includes the cost of the closest enclosing control
	// decision in each value's cost (§3.2's "considering vs ignoring
	// control decision making" alternative).
	TrackControl bool
	// StaticPrune runs the static pre-analysis first and skips Gcost event
	// emission for instructions it proves irrelevant to heap value flow
	// (dead stores and pure base-pointer arithmetic — see
	// staticanalysis.PruneSet). The proof uses whole-program call-graph and
	// points-to summaries (staticanalysis.PruneSetWith), which prune a
	// superset of the per-method analysis. Sound only for thin slicing, so
	// it is ignored when Traditional is set. Rankings are unchanged; the
	// trace just gets cheaper.
	StaticPrune bool
	// LegacyAnalysis selects the per-query traversal path of the
	// cost-benefit analysis instead of the frozen-snapshot DP. The results
	// are identical; this exists for comparison and as an escape hatch.
	LegacyAnalysis bool
	// AnalysisWorkers bounds the ranking worker pool (0 = all CPUs).
	AnalysisWorkers int
	// MaxSteps bounds the profiled execution to this many instruction
	// instances (0 = unlimited); exceeding it fails the run.
	MaxSteps int64
	// LegacyEngine runs the profiled execution on the reference engine: the
	// interpreter's switch dispatch and the map-backed Gcost representation,
	// instead of the handler-table interpreter over the dense interned graph.
	// Results are identical (the differential tests pin profile, report, and
	// slice bytes); this exists for comparison and as an escape hatch.
	LegacyEngine bool
}

// Profile runs the program under the cost-benefit profiler.
//
// Deprecated: use ProfileContext, which adds cancellation and functional
// options. This wrapper remains so existing callers compile.
func (p *Program) Profile(opts ProfileOptions) (*Profile, error) {
	return p.profile(context.Background(), opts)
}

// ProfileContext runs the program under the cost-benefit profiler with
// options folded over DefaultOptions:
//
//	profile, err := prog.ProfileContext(ctx, lowutil.WithSlots(16), lowutil.WithPrune())
//
// The interpreter main loop and the pre-analysis fixpoints poll ctx, so a
// canceled or expired context aborts the run promptly with an error that
// satisfies errors.Is(err, ErrCanceled) — and errors.Is(err,
// context.Canceled) or context.DeadlineExceeded as appropriate.
func (p *Program) ProfileContext(ctx context.Context, opts ...ProfileOption) (*Profile, error) {
	return p.profile(ctx, applyProfileOptions(opts))
}

func (p *Program) profile(ctx context.Context, opts ProfileOptions) (*Profile, error) {
	prof := profiler.New(p.prog, profiler.Options{
		Slots:        opts.Slots,
		Traditional:  opts.Traditional,
		TrackControl: opts.TrackControl,
		TrackCR:      true,
		LegacyGraph:  opts.LegacyEngine,
	})
	m := interp.New(p.prog)
	m.LegacyDispatch = opts.LegacyEngine
	m.Tracer = prof
	m.Ctx = ctx
	m.MaxSteps = opts.MaxSteps
	if opts.StaticPrune && !opts.Traditional {
		an, err := interproc.AnalyzeContext(ctx, p.prog, interproc.Config{Mode: interproc.RTA})
		if err != nil {
			return nil, wrapRunErr("prune", err)
		}
		m.Prune, _ = staticanalysis.PruneSetWith(p.prog, an.Sum)
	}
	if err := m.Run(); err != nil {
		return nil, wrapRunErr("run", err)
	}
	height := opts.TreeHeight
	if height <= 0 {
		height = costben.DefaultTreeHeight
	}
	return &Profile{
		prog:   p.prog,
		prof:   prof,
		steps:  m.Steps,
		pruned: m.PrunedEvents,
		an:     costben.NewAnalysisWith(prof.G, costben.Config{Legacy: opts.LegacyAnalysis, Workers: opts.AnalysisWorkers}),
		height: height,
	}, nil
}

// Profile is a completed cost-benefit profiling run (or one reloaded from
// storage with LoadProfile).
type Profile struct {
	prog   *ir.Program
	prof   *profiler.Profiler
	steps  int64
	pruned int64
	an     *costben.Analysis
	height int
}

// PrunedEvents reports how many tracer events the static prune set
// suppressed during the profiled run (0 unless StaticPrune was set).
func (pr *Profile) PrunedEvents() int64 { return pr.pruned }

// Finding is one ranked low-utility data structure.
type Finding struct {
	// Site is the allocation-site index; Where locates it in the source
	// ("Class.method:pc", with the source line when available).
	Site  int
	Where string
	// Cost and Benefit are the aggregated n-RAC and n-RAB; Rate is their
	// ratio. Fields whose values reach program output or control decisions
	// contribute a large finite benefit weight.
	Cost, Benefit, Rate float64
	// ReachesConsumer marks structures with at least one field whose values
	// reach program output or control decisions.
	ReachesConsumer bool
	// Allocs is how many objects the site allocated.
	Allocs int64
}

func (f Finding) String() string {
	marker := ""
	if f.ReachesConsumer {
		marker = " (reaches output/control)"
	}
	return fmt.Sprintf("site %d (%s): cost=%.1f benefit=%.1f rate=%.4f allocs=%d%s",
		f.Site, f.Where, f.Cost, f.Benefit, f.Rate, f.Allocs, marker)
}

// TopStructures returns the k most suspicious data structures.
func (pr *Profile) TopStructures(k int) []Finding {
	ranked := pr.an.RankBySite(pr.height)
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]Finding, 0, k)
	for _, r := range ranked[:k] {
		out = append(out, Finding{
			Site:            r.Site.AllocSite,
			Where:           siteWhere(r.Site),
			Cost:            r.NRAC,
			Benefit:         r.NRAB,
			Rate:            r.Rate,
			ReachesConsumer: r.Consumed,
			Allocs:          r.AllocFreq,
		})
	}
	return out
}

func siteWhere(site *ir.Instr) string {
	w := fmt.Sprintf("%s:%d", site.Method.QualifiedName(), site.PC)
	if site.Line > 0 {
		w += fmt.Sprintf(" line %d", site.Line)
	}
	if site.Op == ir.OpNew {
		w += " new " + site.Class.Name
	}
	return w
}

// Report renders the top k findings plus summary statistics.
func (pr *Profile) Report(k int) string {
	var sb strings.Builder
	gs := pr.GraphStats()
	ds := pr.Deadness()
	fmt.Fprintf(&sb, "Gcost: %d nodes, %d dep edges, %d ref edges (~%d KB), avg CR %.3f\n",
		gs.Nodes, gs.DepEdges, gs.RefEdges, gs.Bytes/1024, gs.AvgCR)
	fmt.Fprintf(&sb, "instances: %d; IPD %.1f%%  IPP %.1f%%  NLD %.1f%%\n",
		ds.Instances, ds.IPD, ds.IPP, ds.NLD)
	fmt.Fprintf(&sb, "top low-utility structures (n=%d):\n", pr.height)
	for i, f := range pr.TopStructures(k) {
		fmt.Fprintf(&sb, "%3d. %s\n", i+1, f)
	}
	if checks := pr.StaticCrossCheck(); len(checks) > 0 {
		sb.WriteString("static cross-check (zero-benefit fields):\n")
		for _, c := range checks {
			fmt.Fprintf(&sb, "     %s\n", c)
		}
	}
	return sb.String()
}

// FieldCrossCheck compares the static write-only verdict for one instance
// field with the dynamic benefit the profiled run observed for it.
type FieldCrossCheck struct {
	// Field is the qualified field name.
	Field string
	// StaticWriteOnly reports that no load of the field exists anywhere in
	// the program text.
	StaticWriteOnly bool
	// Stores and Loads count the run's dynamic accesses across all
	// instances of the field.
	Stores, Loads int64
}

func (c FieldCrossCheck) String() string {
	verdict := "statically loaded, dynamically dead only"
	if c.StaticWriteOnly {
		verdict = "static write-only, dynamics agree"
	}
	return fmt.Sprintf("%s: %d stores, %d loads — %s", c.Field, c.Stores, c.Loads, verdict)
}

// StaticCrossCheck lists every instance field that yielded zero dynamic
// benefit (stored during the run, never loaded), split by whether the static
// analysis already proves it write-only. A statically write-only field can
// never be loaded at run time, so those rows must agree by construction;
// the remaining rows are fields the program does load somewhere but this
// run never did — flaggable only dynamically.
func (pr *Profile) StaticCrossCheck() []FieldCrossCheck {
	writeOnly := staticanalysis.WriteOnlyFieldIDs(pr.prog)
	type acc struct{ stores, loads int64 }
	perField := make(map[int]*acc)
	pr.prof.G.Locs(func(loc depgraph.Loc) {
		if loc.Alloc == nil || loc.Field == depgraph.ElemField {
			return
		}
		rep := pr.an.CacheAnalysis(loc)
		a := perField[loc.Field]
		if a == nil {
			a = &acc{}
			perField[loc.Field] = a
		}
		a.stores += rep.Stores
		a.loads += rep.Loads
	})
	var out []FieldCrossCheck
	for id, a := range perField {
		if a.loads > 0 || a.stores == 0 {
			continue
		}
		out = append(out, FieldCrossCheck{
			Field:           pr.prog.FieldByID(id).QualifiedName(),
			StaticWriteOnly: writeOnly[id],
			Stores:          a.stores,
			Loads:           a.loads,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Field < out[j].Field })
	return out
}

// GraphStats describes the dependence graph.
type GraphStats struct {
	Nodes    int
	DepEdges int
	RefEdges int
	Bytes    int64
	AvgCR    float64
}

// GraphStats returns size statistics for Gcost.
func (pr *Profile) GraphStats() GraphStats {
	return GraphStats{
		Nodes:    pr.prof.G.NumNodes(),
		DepEdges: pr.prof.G.NumDepEdges(),
		RefEdges: pr.prof.G.NumRefEdges(),
		Bytes:    pr.prof.G.ApproxBytes(),
		AvgCR:    pr.prof.CR().AverageCR(),
	}
}

// DeadnessStats carries the Table 1(c) metrics.
type DeadnessStats struct {
	// Instances is #I, the executed instruction instances.
	Instances int64
	// IPD is the percentage of instances producing ultimately-dead values;
	// IPP the percentage ending up only in predicates; NLD the percentage
	// of graph nodes that are ultimately dead.
	IPD, IPP, NLD float64
}

// Deadness computes the ultimately-dead value measurement.
func (pr *Profile) Deadness() DeadnessStats {
	res := deadness.Analyze(pr.prof.G, pr.steps)
	return DeadnessStats{Instances: pr.steps, IPD: res.IPD(), IPP: res.IPP(), NLD: res.NLD()}
}

// Steps returns the executed instruction instances of the profiled run.
func (pr *Profile) Steps() int64 { return pr.steps }

// profileEnvelope is the on-disk format of a saved profile: the executed
// instruction count plus the serialized Gcost.
type profileEnvelope struct {
	Steps int64           `json:"steps"`
	Graph json.RawMessage `json:"graph"`
}

// Save writes the profile (Gcost plus run metadata) for offline analysis —
// the §3.2 deployment mode where "the JVM only needs to write Gcost to
// external storage".
func (pr *Profile) Save(w io.Writer) error {
	var buf bytes.Buffer
	if err := pr.prof.G.Encode(&buf); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(profileEnvelope{Steps: pr.steps, Graph: buf.Bytes()})
}

// LoadProfile reloads a profile saved with Save against the same program.
// All analyses (Report, TopStructures, Deadness, CacheReports, …) then run
// offline; CR statistics are not preserved.
func (p *Program) LoadProfile(r io.Reader) (*Profile, error) {
	var env profileEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("lowutil: load profile: %w", err)
	}
	g, err := depgraph.Decode(bytes.NewReader(env.Graph), p.prog)
	if err != nil {
		return nil, err
	}
	prof := profiler.NewFromGraph(p.prog, g)
	return &Profile{
		prog:   p.prog,
		prof:   prof,
		steps:  env.Steps,
		an:     costben.NewAnalysis(g),
		height: costben.DefaultTreeHeight,
	}, nil
}

// TopStructuresMultiHop ranks data structures using k-hop relative costs and
// benefits instead of the default single hop (§3.2's multi-hop design
// alternative): a structure whose expensive producer hides behind one heap
// indirection is exposed at hops = 2.
func (pr *Profile) TopStructuresMultiHop(k, hops int) []Finding {
	type entry struct {
		site     *ir.Instr
		alloc    int
		cost     float64
		ben      float64
		consumed bool
		freq     int64
	}
	perSite := make(map[int]*entry)
	pr.prof.G.Nodes(func(n *depgraph.Node) {
		if n.Eff != depgraph.EffAlloc {
			return
		}
		cost := pr.an.NRACK(n, pr.height, hops)
		ben, consumed := pr.an.NRABK(n, pr.height, hops)
		e := perSite[n.In.AllocSite]
		if e == nil {
			e = &entry{site: n.In, alloc: n.In.AllocSite}
			perSite[n.In.AllocSite] = e
		}
		e.cost += cost
		e.ben += ben
		e.consumed = e.consumed || consumed
		e.freq += n.Freq()
	})
	out := make([]Finding, 0, len(perSite))
	for _, e := range perSite {
		out = append(out, Finding{
			Site:            e.alloc,
			Where:           siteWhere(e.site),
			Cost:            e.cost,
			Benefit:         e.ben,
			Rate:            costben.Rate(e.cost, e.ben),
			ReachesConsumer: e.consumed,
			Allocs:          e.freq,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rate != out[j].Rate {
			return out[i].Rate > out[j].Rate
		}
		if out[i].Cost != out[j].Cost {
			return out[i].Cost > out[j].Cost
		}
		return out[i].Site < out[j].Site
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// CacheReport assesses one heap location as a cache (§3.2's
// cache-effectiveness redefinition of cost and benefit).
type CacheReport struct {
	Loc           string
	Stores, Loads int64
	CachedWork    float64
	AvoidedWork   float64
	Effectiveness float64
}

// CacheReports assesses every location with at least minAccesses total
// accesses as a cache, least effective first — poor caches are structures
// whose maintenance outweighs the recomputation they avoid.
func (pr *Profile) CacheReports(minAccesses int64) []CacheReport {
	var out []CacheReport
	pr.prof.G.Locs(func(loc depgraph.Loc) {
		rep := pr.an.CacheAnalysis(loc)
		if rep.Stores+rep.Loads < minAccesses || rep.Stores == 0 {
			return
		}
		out = append(out, CacheReport{
			Loc:           loc.String(),
			Stores:        rep.Stores,
			Loads:         rep.Loads,
			CachedWork:    rep.CachedWork,
			AvoidedWork:   rep.AvoidedWork(),
			Effectiveness: rep.Effectiveness(),
		})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Effectiveness != out[j].Effectiveness {
			return out[i].Effectiveness < out[j].Effectiveness
		}
		return out[i].Loc < out[j].Loc
	})
	return out
}

// ---- Client analyses ----

// NullDiagnosis explains a NullPointerException.
type NullDiagnosis struct {
	// Report is the rendered origin-and-flow explanation.
	Report string
	// OriginWhere locates the instruction that created the null.
	OriginWhere string
}

// DiagnoseNull runs the program under the null-propagation client. If the
// run fails with a null dereference it returns the diagnosis; if the run
// succeeds it returns (nil, nil).
func (p *Program) DiagnoseNull() (*NullDiagnosis, error) {
	nt := clients.NewNullTracker(p.prog)
	m := interp.New(p.prog)
	m.Tracer = nt
	err := m.Run()
	if err == nil {
		return nil, nil
	}
	rep, ok := nt.Diagnose(err)
	if !ok {
		return nil, err // not a (diagnosable) NPE: surface the VM error
	}
	return &NullDiagnosis{
		Report:      rep.String(),
		OriginWhere: fmt.Sprintf("%s:%d", rep.Origin.Method.QualifiedName(), rep.Origin.PC),
	}, nil
}

// TypestateProtocol declares a typestate specification over class method
// names. States are indices into StateNames; a missing transition is a
// violation.
type TypestateProtocol struct {
	StateNames  []string
	Initial     int
	Transitions []TypestateTransition
}

// TypestateTransition is one edge of the protocol DFA.
type TypestateTransition struct {
	From   int
	Method string
	To     int
}

// Typestate runs the typestate-history client, tracking every allocation
// site of the named classes, and returns rendered violations.
func (p *Program) Typestate(proto *TypestateProtocol, classes ...string) ([]string, error) {
	cp := &clients.Protocol{
		NumStates:   len(proto.StateNames),
		Init:        clients.State(proto.Initial),
		StateNames:  proto.StateNames,
		Transitions: make(map[clients.StateMethod]clients.State),
	}
	for _, tr := range proto.Transitions {
		cp.Transitions[clients.StateMethod{From: clients.State(tr.From), Method: tr.Method}] = clients.State(tr.To)
	}
	want := make(map[string]bool, len(classes))
	for _, c := range classes {
		want[c] = true
	}
	var sites []int
	for _, in := range p.prog.Instrs {
		if in.Op == ir.OpNew && want[in.Class.Name] {
			sites = append(sites, in.AllocSite)
		}
	}
	ts := clients.NewTypestateTracker(p.prog, cp, sites...)
	m := interp.New(p.prog)
	m.Tracer = ts
	if err := m.Run(); err != nil {
		return nil, err
	}
	out := make([]string, 0, len(ts.Violations))
	for _, v := range ts.Violations {
		out = append(out, v.String())
	}
	return out, nil
}

// CopyChain is one heap-to-heap copy relation found by the extended copy
// profiling client.
type CopyChain struct {
	Src, Dst  string
	Count     int64
	StackHops int
}

// CopyChains runs the copy-profiling client and returns the top k chains by
// dynamic count, plus the total number of executed copies.
func (p *Program) CopyChains(k int) ([]CopyChain, int64, error) {
	cp := clients.NewCopyProfiler(p.prog)
	m := interp.New(p.prog)
	m.Tracer = cp
	if err := m.Run(); err != nil {
		return nil, 0, err
	}
	chains := cp.Chains()
	if k > len(chains) {
		k = len(chains)
	}
	out := make([]CopyChain, 0, k)
	for _, c := range chains[:k] {
		out = append(out, CopyChain{
			Src: c.Src.String(), Dst: c.Dst.String(),
			Count: c.Count, StackHops: c.StackHops,
		})
	}
	return out, cp.TotalCopies, nil
}

// ConstantPredicates runs the predicate client and reports branches executed
// at least minExec times with a single outcome.
func (p *Program) ConstantPredicates(minExec int64) ([]string, error) {
	pt := clients.NewPredicateTracker(p.prog)
	m := interp.New(p.prog)
	m.Tracer = pt
	if err := m.Run(); err != nil {
		return nil, err
	}
	var out []string
	for _, c := range pt.Constants(minExec) {
		out = append(out, c.String())
	}
	return out, nil
}

// SilentOverwrites runs the rewrite client and reports heap locations whose
// writes are mostly never read before the next write.
func (p *Program) SilentOverwrites(minWrites int64) ([]string, error) {
	rw := clients.NewRewriteTracker(p.prog)
	m := interp.New(p.prog)
	m.Tracer = rw
	if err := m.Run(); err != nil {
		return nil, err
	}
	var out []string
	for _, r := range rw.Report(minWrites) {
		out = append(out, r.String())
	}
	return out, nil
}

// Collections ranks container allocation sites by cost-benefit rate — the
// §3.2 client that "searches for problematic collections by ranking
// collection objects based on their RAC/RAB rates". A container is a class
// with an array-typed field or a collection-like name.
func (pr *Profile) Collections(k int) []Finding {
	ranked := clients.RankCollections(pr.an, pr.height, nil)
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]Finding, 0, k)
	for _, r := range ranked[:k] {
		out = append(out, Finding{
			Site:            r.Site.AllocSite,
			Where:           siteWhere(r.Site),
			Cost:            r.NRAC,
			Benefit:         r.NRAB,
			Rate:            r.Rate,
			ReachesConsumer: r.Consumed,
			Allocs:          r.AllocFreq,
		})
	}
	return out
}

// CaseStudyResult re-exports the case-study harness result for the CLI and
// examples.
type CaseStudyResult = casestudies.Result

// RunCaseStudy executes one of the six §4.2 case studies by name.
func RunCaseStudy(name string, scale, slots int) (*CaseStudyResult, error) {
	cs := casestudies.ByName(name)
	if cs == nil {
		return nil, fmt.Errorf("lowutil: unknown case study %q", name)
	}
	return cs.Run(scale, slots)
}
