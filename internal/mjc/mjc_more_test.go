package mjc

import (
	"strings"
	"testing"
)

func TestThreeLevelOverride(t *testing.T) {
	wantOutput(t, `
class A { int f() { return 1; } int g() { return 10; } }
class B extends A { int f() { return 2; } }
class C extends B { int g() { return 30; } }
class Main {
  static void main() {
    A x = new C();
    print(x.f());   // B's override via C
    print(x.g());   // C's override
    A y = new B();
    print(y.g());   // A's inherited g
  }
}`, 2, 30, 10)
}

func TestPolymorphicArrayDispatch(t *testing.T) {
	wantOutput(t, `
class Shape { int area() { return 0; } }
class Square extends Shape {
  int side;
  int area() { return this.side * this.side; }
}
class Circle extends Shape {
  int r;
  int area() { return 3 * this.r * this.r; }
}
class Main {
  static void main() {
    Shape[] shapes = new Shape[3];
    Square sq = new Square();
    sq.side = 4;
    shapes[0] = sq;
    Circle c = new Circle();
    c.r = 2;
    shapes[1] = c;
    shapes[2] = new Shape();
    int total = 0;
    for (int i = 0; i < shapes.length; i = i + 1) {
      total = total + shapes[i].area();
    }
    print(total); // 16 + 12 + 0
  }
}`, 28)
}

func TestArgumentSubtyping(t *testing.T) {
	wantOutput(t, `
class A { int tag() { return 1; } }
class B extends A { int tag() { return 2; } }
class User {
  int use(A a) { return a.tag(); }
}
class Main {
  static void main() {
    User u = new User();
    print(u.use(new B()));
    print(u.use(new A()));
  }
}`, 2, 1)
}

func TestMethodChaining(t *testing.T) {
	wantOutput(t, `
class Builder {
  int total;
  Builder add(int v) { this.total = this.total + v; return this; }
  int build() { return this.total; }
}
class Main {
  static void main() {
    Builder b = new Builder();
    print(b.add(1).add(2).add(3).build());
  }
}`, 6)
}

func TestNestedLoopBreakContinueTargetInner(t *testing.T) {
	wantOutput(t, `
class Main {
  static void main() {
    int hits = 0;
    for (int i = 0; i < 4; i = i + 1) {
      for (int j = 0; j < 10; j = j + 1) {
        if (j == 2) { continue; }  // inner continue
        if (j > 4) { break; }      // inner break
        hits = hits + 1;
      }
    }
    print(hits); // 4 outer × (j=0,1,3,4) = 16
  }
}`, 16)
}

func TestCrossClassStaticCall(t *testing.T) {
	wantOutput(t, `
class MathUtil {
  static int sq(int x) { return x * x; }
  static int cube(int x) { return x * MathUtil.sq(x); }
}
class Main {
  static void main() {
    print(MathUtil.sq(5));
    print(MathUtil.cube(3));
  }
}`, 25, 27)
}

func TestLongShortCircuitChains(t *testing.T) {
	wantOutput(t, `
class Main {
  static boolean die() { print(999); return true; }
  static void main() {
    boolean a = true || Main.die() || Main.die();
    boolean b = false && Main.die() && Main.die();
    boolean c = (1 < 2) && (2 < 3) && (3 < 4) && (4 < 5);
    if (a && !b && c) { print(1); } else { print(0); }
  }
}`, 1)
}

func TestRefFieldsDefaultNull(t *testing.T) {
	wantOutput(t, `
class Node { Node next; int v; }
class Main {
  static void main() {
    Node n = new Node();
    print(n.next == null);
    print(n.v);
    Node[] arr = new Node[2];
    print(arr[0] == null);
  }
}`, 1, 0, 1)
}

func TestReturnInsideLoop(t *testing.T) {
	wantOutput(t, `
class Finder {
  int firstOver(int[] xs, int limit) {
    for (int i = 0; i < xs.length; i = i + 1) {
      if (xs[i] > limit) { return xs[i]; }
    }
    return -1;
  }
}
class Main {
  static void main() {
    int[] xs = new int[4];
    xs[0] = 3; xs[1] = 9; xs[2] = 5; xs[3] = 20;
    Finder f = new Finder();
    print(f.firstOver(xs, 4));
    print(f.firstOver(xs, 100));
  }
}`, 9, -1)
}

func TestSemicolonsAndSameLineStatements(t *testing.T) {
	wantOutput(t, `
class Main { static void main() { int a = 1; int b = 2; print(a + b); } }`, 3)
}

func TestLineInfoOnInstructions(t *testing.T) {
	prog, err := Compile(`class Main {
  static void main() {
    int x = 1;
    print(x);
  }
}`)
	if err != nil {
		t.Fatal(err)
	}
	sawLine3, sawLine4 := false, false
	for _, in := range prog.Instrs {
		switch in.Line {
		case 3:
			sawLine3 = true
		case 4:
			sawLine4 = true
		}
	}
	if !sawLine3 || !sawLine4 {
		t.Errorf("line info missing: line3=%v line4=%v", sawLine3, sawLine4)
	}
}

func TestWhileConditionWithCall(t *testing.T) {
	wantOutput(t, `
class Gate {
  int left;
  boolean open() {
    if (this.left > 0) { this.left = this.left - 1; return true; }
    return false;
  }
}
class Main {
  static void main() {
    Gate g = new Gate();
    g.left = 3;
    int n = 0;
    while (g.open()) { n = n + 1; }
    print(n);
  }
}`, 3)
}

func TestDeepNestingCompiles(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("class Main { static void main() { int x = 0;\n")
	for i := 0; i < 30; i++ {
		sb.WriteString("if (x >= 0) {\n")
	}
	sb.WriteString("x = x + 1;\n")
	for i := 0; i < 30; i++ {
		sb.WriteString("}\n")
	}
	sb.WriteString("print(x); } }")
	wantOutput(t, sb.String(), 1)
}

func TestVoidMethodAsStatement(t *testing.T) {
	wantOutput(t, `
class Logger {
  int count;
  void log(int v) { this.count = this.count + 1; }
}
class Main {
  static void main() {
    Logger l = new Logger();
    l.log(1);
    l.log(2);
    print(l.count);
  }
}`, 2)
}
