package profiler_test

import (
	"testing"

	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/mjc"
	"lowutil/internal/profiler"
)

// freqParitySrc is a fuzzer-found reproducer (fuzzgen seed
// 7665958480717146759) for a lost-update bug in the dense fast path: the
// profiler caches the graph's dense frequency table, and AfterCall's
// call-assignment node could grow (reallocate) that table without the cache
// being re-fetched, so the next method body's fast-path increments landed in
// the orphaned array. The two .step calls below straddle exactly such a
// growth boundary: the second call's body counted for nothing, halving the
// callee's recorded frequencies.
const freqParitySrc = `
class Base {
  int fa;
  int fb;
  Base link;
  int step(int x) {
    this.fb = x;
    int v1 = ((this.fb & this.fb) ^ (x % 2));
    return v1;
  }
  int tag() {
    return 7;
  }
}
class SubA extends Base {
  int ga;
  int step(int x) {
    this.ga = 558;
    this.fb = 709;
    return x;
  }
  int tag() {
    return 17;
  }
}
class SubB extends Base {
  int gb;
  int step(int x) {
    this.fa = hash(hash(266));
    return (this.fa + this.fb);
  }
  int tag() {
    return 24;
  }
}
class Scratch {
  int sa;
  int sb;
  int sc;
}
class W1 {
  int acc1;
  int m0(int d, int a) {
    if (d <= 0) {
      return (a % 97);
    }
    print(this.acc1);
    if ((hash(d) < (-20 & this.acc1))) {
      a = ((this.acc1 + this.acc1) / 6);
    }
    if (0 < 1) {
      int w3 = 5;
      while (w3 > 0) {
        w3 = w3 - 1;
        int v4 = (this.acc1 & d);
        Base r5 = new Base();
      }
    }
    Base r6 = new SubA();
    r6.link = r6;
    return (r6.fb + this.m0((d - 1), d));
  }
}
class Main {
  static void main() {
    int total = 0;
    Base[] pool11 = new Base[4];
    for (int i12 = 0; i12 < pool11.length; i12 = i12 + 1) {
      if ((i12 % 2) == 0) {
        pool11[i12] = new SubA();
      } else {
        pool11[i12] = new SubA();
      }
    }
    Scratch s13 = new Scratch();
    s13.sa = 692;
    s13.sb = pool11[1].step(pool11[3].step(total));
    W1 r14 = new W1();
    total = (total + r14.m0(2, (total & r14.acc1)));
    print(total);
  }
}
`

// freqMap flattens a graph to node-identity -> frequency.
func freqMap(g *depgraph.Graph) map[string]int64 {
	m := make(map[string]int64)
	g.Nodes(func(n *depgraph.Node) {
		m[n.String()] = n.Freq()
	})
	return m
}

// TestDenseFreqMatchesLegacyGraph pins node-frequency parity between the
// dense fast path and the map-backed legacy graph, which interns through the
// slow path on every event and therefore cannot lose increments to a stale
// table view.
func TestDenseFreqMatchesLegacyGraph(t *testing.T) {
	prog, err := mjc.Compile(freqParitySrc)
	if err != nil {
		t.Fatal(err)
	}
	profile := func(legacy bool) *depgraph.Graph {
		p := profiler.New(prog, profiler.Options{Slots: 16, LegacyGraph: legacy})
		m := interp.New(prog)
		m.Tracer = p
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return p.G
	}
	dense := freqMap(profile(false))
	legacy := freqMap(profile(true))
	if len(dense) != len(legacy) {
		t.Fatalf("node count: dense %d, legacy %d", len(dense), len(legacy))
	}
	for k, lf := range legacy {
		if df, ok := dense[k]; !ok {
			t.Errorf("node %s missing from dense graph", k)
		} else if df != lf {
			t.Errorf("node %s: dense freq %d, legacy freq %d", k, df, lf)
		}
	}
}
