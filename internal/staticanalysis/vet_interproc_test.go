package staticanalysis

import (
	"strings"
	"testing"

	"lowutil/internal/interproc"
)

// clobberSrc seeds a callee-clobbered store: every use of x hands it to the
// second parameter of S.sink, which no override reads. y is the control — it
// also flows only into sink, but at a position the callee does read.
const clobberSrc = `
class S {
  int keep;
  void sink(int a, int b) { this.keep = a; }
}
class Main {
  static void main() {
    S s = new S();
    int x = 41;
    int y = 9;
    s.sink(y, x);
    print(s.keep);
  }
}`

func TestVetCalleeClobberedStore(t *testing.T) {
	prog := compileMJ(t, clobberSrc)
	fs := Vet(prog)
	var hits []Finding
	for _, f := range fs {
		if f.Kind == KindCalleeClobbered {
			hits = append(hits, f)
		}
	}
	// The SSA engine walks through the move, so both the store of x and the
	// constant feeding it are flagged (the dense engine finds only the store
	// of x — see the differential test).
	if len(hits) != 2 {
		t.Fatalf("want two callee-clobbered findings, got %v", fs)
	}
	if hits[1].Method != "main" || !strings.Contains(hits[1].Detail, "x") {
		t.Errorf("finding anchored wrong: %v", hits[1])
	}
	var denseHits []Finding
	for _, f := range VetDense(prog) {
		if f.Kind == KindCalleeClobbered {
			denseHits = append(denseHits, f)
		}
	}
	if len(denseHits) != 1 || !strings.Contains(denseHits[0].Detail, "x") {
		t.Errorf("dense engine should flag exactly the store of x, got %v", denseHits)
	}
	// Without whole-program summaries the check must stay silent.
	for _, f := range VetWith(prog, nil) {
		if f.Kind == KindCalleeClobbered {
			t.Errorf("nil analysis must disable the check, got %v", f)
		}
	}
}

// escapeSrc seeds an allocation the per-method check cannot condemn: the Box
// escapes through a return and a field store, yet no reachable instruction
// ever reads through any alias of it. (No native call in main: the front end
// reuses temp slots, and the flow-insensitive points-to would conservatively
// count a print argument sharing the call-result temp as a read.)
const escapeSrc = `
class Box { int v; }
class Keep { Box slot; }
class Main {
  static Box make() {
    Box b = new Box();
    b.v = 1;
    return b;
  }
  static void main() {
    Keep k = new Keep();
    Box r = make();
    k.slot = r;
  }
}`

func TestVetInterprocUnusedAlloc(t *testing.T) {
	prog := compileMJ(t, escapeSrc)
	fs := Vet(prog)
	found := false
	for _, f := range fs {
		if f.Kind == KindUnusedAlloc && f.Method == "make" &&
			strings.Contains(f.Detail, "never read through any alias") {
			found = true
		}
	}
	if !found {
		t.Errorf("missing interprocedural unused-alloc on make's Box in %v", fs)
	}
	// The per-method rule alone must not flag it — the Box escapes.
	for _, f := range VetWith(prog, nil) {
		if f.Kind == KindUnusedAlloc && f.Method == "make" {
			t.Errorf("nil analysis flagged the escaping Box: %v", f)
		}
	}
}

// ghostSrc seeds a field whose only load sits in a method no call path
// reaches; the reachability-aware write-only check must report it with the
// distinguishing message, and the nil-analysis fallback must stay silent.
const ghostSrc = `
class T { int f; }
class Main {
  static int ghost(T t) { return t.f; }
  static void main() {
    T t = new T();
    t.f = 5;
    print(1);
  }
}`

func TestVetWriteOnlyUnreachableLoad(t *testing.T) {
	prog := compileMJ(t, ghostSrc)
	found := false
	for _, f := range Vet(prog) {
		if f.Kind == KindWriteOnlyField &&
			strings.Contains(f.Detail, "loaded only in unreachable code") {
			found = true
		}
	}
	if !found {
		t.Error("missing write-only finding for field loaded only in dead code")
	}
	for _, f := range VetWith(prog, nil) {
		if f.Kind == KindWriteOnlyField {
			t.Errorf("nil analysis counts ghost's load, got %v", f)
		}
	}
}

// TestVetCleanUnderInterproc: the clean program must stay clean with the full
// interprocedural pipeline in both call-graph modes.
func TestVetCleanUnderInterproc(t *testing.T) {
	prog := compileMJ(t, cleanSrc)
	for _, cfg := range []interproc.Config{{Mode: interproc.CHA}, {Mode: interproc.RTA, ObjCtx: true}} {
		an := interproc.Analyze(prog, cfg)
		if fs := VetWith(prog, an); len(fs) != 0 {
			t.Errorf("mode %s: clean program produced findings: %v", cfg.Mode, fs)
		}
	}
}
