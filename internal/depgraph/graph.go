// Package depgraph implements the abstract thin data dependence graph of the
// paper (Definition 2) and the traversals the cost-benefit analyses and
// client analyses run over it.
//
// A node is a static instruction annotated with an element d of a bounded
// abstract domain D; for the cost-benefit client, d is the encoded
// object-context slot h(c) ∈ [0, s). Other clients reuse the same graph
// structure with their own domains (null/not-null, typestate, copy origins),
// and the unabstracted baseline uses the occurrence index itself — which is
// exactly what makes it unbounded.
//
// Edges are stored in the def-use orientation used by the inference rules of
// Figure 4: an edge a → b ("a depends on b") means an instance of a read a
// location whose last writer was an instance of b. Both directions are kept
// so that cost (backward) and benefit (forward) traversals are linear.
package depgraph

import (
	"fmt"
	"sort"

	"lowutil/internal/ir"
)

// NoContext is the D value of consumer (predicate/native) nodes, which the
// paper leaves context-free.
const NoContext = -1

// ElemField is the pseudo field ID for array element locations (the paper's
// O.ELM).
const ElemField = -1

// EffectKind classifies a node's heap effect.
type EffectKind uint8

const (
	// EffNone: the node touches no heap location.
	EffNone EffectKind = iota
	// EffAlloc: the node allocates an object ("underlined", type U).
	EffAlloc
	// EffLoad: the node reads a heap location ("circled", type C).
	EffLoad
	// EffStore: the node writes a heap location ("boxed", type B).
	EffStore
)

func (e EffectKind) String() string {
	switch e {
	case EffAlloc:
		return "U"
	case EffLoad:
		return "C"
	case EffStore:
		return "B"
	default:
		return "-"
	}
}

// Loc identifies an abstract heap location O^d.f: the allocation node of the
// base object plus a field. Alloc == nil means a static field, with Field
// holding the static slot. Field == ElemField means the array-element
// pseudo-field.
type Loc struct {
	Alloc *Node
	Field int
}

func (l Loc) String() string {
	switch {
	case l.Alloc == nil:
		return fmt.Sprintf("static#%d", l.Field)
	case l.Field == ElemField:
		return l.Alloc.String() + ".ELM"
	default:
		return fmt.Sprintf("%s.f%d", l.Alloc, l.Field)
	}
}

// Node is an abstract instruction instance: a static instruction annotated
// with an abstract-domain element.
type Node struct {
	In *ir.Instr
	// D is the abstract-domain element (context slot for Gcost).
	D int
	// Freq is the number of concrete instruction instances mapped here.
	Freq int64

	// Eff describes the node's heap effect; EffLoc is the location touched
	// (meaningful for EffLoad/EffStore; for EffAlloc, EffLoc.Alloc is the
	// node itself).
	Eff    EffectKind
	EffLoc Loc

	deps nodeSet // this node uses values defined by these
	uses nodeSet // these nodes use values defined by this
	refs nodeSet // reference edges: store node → base alloc node
}

// IsConsumer reports whether the node is a predicate or native consumer.
func (n *Node) IsConsumer() bool { return n.In.IsConsumer() }

// IsPredicate reports whether the node is a predicate consumer.
func (n *Node) IsPredicate() bool { return n.In.IsPredicate() }

// ReadsHeap reports whether the node reads a static or object field or
// array element.
func (n *Node) ReadsHeap() bool { return n.Eff == EffLoad }

// WritesHeap reports whether the node writes one.
func (n *Node) WritesHeap() bool { return n.Eff == EffStore }

// NumDeps returns the backward (use→def) degree.
func (n *Node) NumDeps() int { return n.deps.len() }

// NumUses returns the forward (def→use) degree.
func (n *Node) NumUses() int { return n.uses.len() }

// Deps calls f for every node this node depends on.
func (n *Node) Deps(f func(*Node)) { n.deps.each(f) }

// Uses calls f for every node that uses this node's values.
func (n *Node) Uses(f func(*Node)) { n.uses.each(f) }

// RefEdges calls f for every reference edge out of this (store) node.
func (n *Node) RefEdges(f func(*Node)) { n.refs.each(f) }

func (n *Node) String() string {
	if n.D == NoContext {
		return fmt.Sprintf("i%d°", n.In.ID)
	}
	return fmt.Sprintf("i%d^%d", n.In.ID, n.D)
}

type nodeKey struct {
	instr int
	d     int
}

// Graph is a dependence graph under construction or analysis.
type Graph struct {
	Prog  *ir.Program
	nodes map[nodeKey]*Node
	// edge counters (deduplicated)
	numDep int
	numRef int

	// ptChildren records points-to structure for reference trees: for a
	// location (owner alloc node, field) holding references, the set of
	// allocation nodes of objects stored there.
	ptChildren map[Loc]map[*Node]struct{}

	// locStores and locLoads invert the heap-effect environment H: for each
	// abstract location, the store nodes that wrote it and the load nodes
	// that read it. RAC/RAB aggregation runs over these.
	locStores map[Loc]map[*Node]struct{}
	locLoads  map[Loc]map[*Node]struct{}
	// locsByOwner indexes locations by their owning allocation node so
	// object-level aggregation does not scan every location.
	locsByOwner map[*Node]map[int]struct{}

	// frozen caches the CSR snapshot of the graph; any mutation through the
	// Graph API invalidates it. See Freeze.
	frozen *Snapshot
}

// New returns an empty graph over prog.
func New(prog *ir.Program) *Graph {
	return &Graph{
		Prog:        prog,
		nodes:       make(map[nodeKey]*Node),
		ptChildren:  make(map[Loc]map[*Node]struct{}),
		locStores:   make(map[Loc]map[*Node]struct{}),
		locLoads:    make(map[Loc]map[*Node]struct{}),
		locsByOwner: make(map[*Node]map[int]struct{}),
	}
}

// NumNodes returns the number of nodes (|V| of Table 1's #N column).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumDepEdges returns the number of distinct def-use edges (#E).
func (g *Graph) NumDepEdges() int { return g.numDep }

// NumRefEdges returns the number of distinct reference edges.
func (g *Graph) NumRefEdges() int { return g.numRef }

// Node returns the node for (in, d), creating it if needed. It does not
// touch Freq; call Touch for that.
func (g *Graph) Node(in *ir.Instr, d int) *Node {
	k := nodeKey{in.ID, d}
	if n, ok := g.nodes[k]; ok {
		return n
	}
	n := &Node{In: in, D: d}
	g.nodes[k] = n
	g.frozen = nil
	return n
}

// Lookup returns the node for (in, d) or nil.
func (g *Graph) Lookup(in *ir.Instr, d int) *Node {
	return g.nodes[nodeKey{in.ID, d}]
}

// Touch increments the node's frequency and returns it.
func (g *Graph) Touch(in *ir.Instr, d int) *Node {
	n := g.Node(in, d)
	n.Freq++
	g.frozen = nil
	return n
}

// AddDep records that 'from' used a value defined by 'to'. Self-loops
// (an instruction instance reading its own previous output) are kept: they
// occur naturally for accumulators under abstraction.
func (g *Graph) AddDep(from, to *Node) {
	if from == nil || to == nil {
		return
	}
	if !from.deps.add(to) {
		return
	}
	to.uses.add(from)
	g.numDep++
	g.frozen = nil
}

// AddRef records a reference edge from a field-store node to the allocation
// node of the base object.
func (g *Graph) AddRef(store, alloc *Node) {
	if store == nil || alloc == nil {
		return
	}
	if !store.refs.add(alloc) {
		return
	}
	g.numRef++
	g.frozen = nil
}

// AddLocStore records that node n wrote abstract location loc.
func (g *Graph) AddLocStore(loc Loc, n *Node) {
	addToLocSet(g.locStores, loc, n)
	g.indexLoc(loc)
	g.frozen = nil
}

// AddLocLoad records that node n read abstract location loc.
func (g *Graph) AddLocLoad(loc Loc, n *Node) {
	addToLocSet(g.locLoads, loc, n)
	g.indexLoc(loc)
	g.frozen = nil
}

func addToLocSet(m map[Loc]map[*Node]struct{}, loc Loc, n *Node) {
	set := m[loc]
	if set == nil {
		set = make(map[*Node]struct{}, 2)
		m[loc] = set
	}
	set[n] = struct{}{}
}

func (g *Graph) indexLoc(loc Loc) {
	if loc.Alloc == nil {
		return
	}
	fields := g.locsByOwner[loc.Alloc]
	if fields == nil {
		fields = make(map[int]struct{}, 4)
		g.locsByOwner[loc.Alloc] = fields
	}
	fields[loc.Field] = struct{}{}
}

// nodeLess is the canonical node order: (instruction ID, context slot). The
// frozen snapshot assigns dense IDs in this order, so sorted-by-ID and
// sorted-by-nodeLess iterations agree.
func nodeLess(a, b *Node) bool {
	if a.In.ID != b.In.ID {
		return a.In.ID < b.In.ID
	}
	return a.D < b.D
}

// sortedSetNodes flattens a node set into a slice sorted by nodeLess.
func sortedSetNodes(set map[*Node]struct{}) []*Node {
	out := make([]*Node, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return nodeLess(out[i], out[j]) })
	return out
}

// locLess orders abstract locations: statics first (by field), then by the
// owning allocation node (nodeLess) and field.
func locLess(a, b Loc) bool {
	switch {
	case a.Alloc == nil && b.Alloc == nil:
		return a.Field < b.Field
	case a.Alloc == nil:
		return true
	case b.Alloc == nil:
		return false
	case a.Alloc != b.Alloc:
		return nodeLess(a.Alloc, b.Alloc)
	default:
		return a.Field < b.Field
	}
}

// StoresOf calls f for every store node recorded for loc, in canonical node
// order.
func (g *Graph) StoresOf(loc Loc, f func(*Node)) {
	if s := g.frozen; s != nil {
		s.storesOf(loc, f)
		return
	}
	for _, n := range sortedSetNodes(g.locStores[loc]) {
		f(n)
	}
}

// LoadsOf calls f for every load node recorded for loc, in canonical node
// order.
func (g *Graph) LoadsOf(loc Loc, f func(*Node)) {
	if s := g.frozen; s != nil {
		s.loadsOf(loc, f)
		return
	}
	for _, n := range sortedSetNodes(g.locLoads[loc]) {
		f(n)
	}
}

// FieldsOf calls f for every field (including ElemField) of objects
// allocated at owner that was ever loaded or stored, in ascending field
// order.
func (g *Graph) FieldsOf(owner *Node, f func(field int)) {
	if s := g.frozen; s != nil {
		s.fieldsOf(owner, f)
		return
	}
	set := g.locsByOwner[owner]
	fields := make([]int, 0, len(set))
	for field := range set {
		fields = append(fields, field)
	}
	sort.Ints(fields)
	for _, field := range fields {
		f(field)
	}
}

// Locs calls f for every abstract location that was ever loaded or stored,
// in locLess order.
func (g *Graph) Locs(f func(Loc)) {
	if s := g.frozen; s != nil {
		for _, loc := range s.Locs {
			f(loc)
		}
		return
	}
	seen := make(map[Loc]struct{}, len(g.locStores)+len(g.locLoads))
	locs := make([]Loc, 0, len(seen))
	for loc := range g.locStores {
		seen[loc] = struct{}{}
		locs = append(locs, loc)
	}
	for loc := range g.locLoads {
		if _, dup := seen[loc]; !dup {
			locs = append(locs, loc)
		}
	}
	sort.Slice(locs, func(i, j int) bool { return locLess(locs[i], locs[j]) })
	for _, loc := range locs {
		f(loc)
	}
}

// AddChild records that location loc held a reference to an object allocated
// at child (a points-to edge used to build object reference trees).
func (g *Graph) AddChild(loc Loc, child *Node) {
	if child == nil {
		return
	}
	set := g.ptChildren[loc]
	if set == nil {
		set = make(map[*Node]struct{}, 2)
		g.ptChildren[loc] = set
	}
	set[child] = struct{}{}
	g.frozen = nil
}

// Children calls f for every (field, child allocation node) pair recorded
// for objects allocated at owner, ordered by (field, child).
func (g *Graph) Children(owner *Node, f func(field int, child *Node)) {
	if s := g.frozen; s != nil {
		s.childrenOf(owner, f)
		return
	}
	type pair struct {
		field int
		child *Node
	}
	var pairs []pair
	for loc, set := range g.ptChildren {
		if loc.Alloc != owner {
			continue
		}
		for c := range set {
			pairs = append(pairs, pair{loc.Field, c})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].field != pairs[j].field {
			return pairs[i].field < pairs[j].field
		}
		return nodeLess(pairs[i].child, pairs[j].child)
	})
	for _, p := range pairs {
		f(p.field, p.child)
	}
}

// Nodes calls f for every node in the graph, ordered by (instruction ID,
// context slot). Deterministic order matters: callers fold node metrics into
// floating-point sums, and float addition is not associative.
func (g *Graph) Nodes(f func(*Node)) {
	if s := g.frozen; s != nil {
		for _, n := range s.Nodes {
			f(n)
		}
		return
	}
	keys := make([]nodeKey, 0, len(g.nodes))
	for k := range g.nodes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].instr != keys[j].instr {
			return keys[i].instr < keys[j].instr
		}
		return keys[i].d < keys[j].d
	})
	for _, k := range keys {
		f(g.nodes[k])
	}
}

// NodesOf returns all nodes of a given static instruction, ordered by
// context slot.
func (g *Graph) NodesOf(in *ir.Instr) []*Node {
	var keys []nodeKey
	for k := range g.nodes {
		if k.instr == in.ID {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].d < keys[j].d })
	out := make([]*Node, 0, len(keys))
	for _, k := range keys {
		out = append(out, g.nodes[k])
	}
	return out
}

// TotalFreq sums node frequencies — the number of concrete instruction
// instances that created dependence-graph activity.
func (g *Graph) TotalFreq() int64 {
	var t int64
	for _, n := range g.nodes {
		t += n.Freq
	}
	return t
}

// ApproxBytes estimates the memory footprint of the graph in bytes, the
// analogue of Table 1's M(Mb) column: node records plus deduplicated edge
// entries (dep edges are stored in both directions).
func (g *Graph) ApproxBytes() int64 {
	const nodeBytes = 96 // Node struct + map headers, amortized
	const edgeBytes = 16 // one map entry per direction ≈ 2×8
	return int64(len(g.nodes))*nodeBytes + int64(g.numDep)*2*edgeBytes + int64(g.numRef)*edgeBytes
}
