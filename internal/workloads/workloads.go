// Package workloads provides the 18 synthetic benchmark programs that stand
// in for the DaCapo suite in Table 1 of the paper. Each workload is an MJ
// program named after its DaCapo counterpart and engineered to exhibit the
// bloat profile the paper reports for that program: chart populates
// containers only to take their sizes, bloat builds debug strings guarded by
// never-true predicates, eclipse drives visitor objects and rehashing
// hashtables, sunflow clones vectors per operation and round-trips floats
// through bit packing, and so on.
//
// Programs are parameterized by a scale factor so tests can run small and
// the Table 1 harness can run large. The absolute numbers differ from the
// paper's JVM measurements (our substrate is an interpreter, not a 1.99 GHz
// testbed); the shapes — which workloads have high IPD, how graph size
// relates to trace length — are what the reproduction preserves.
package workloads

import (
	"fmt"
	"sort"

	"lowutil/internal/ir"
	"lowutil/internal/mjc"
)

// Workload is one synthetic benchmark.
type Workload struct {
	// Name matches the DaCapo program it models.
	Name string
	// Profile is a one-line description of the planted bloat profile.
	Profile string
	// Source renders the MJ program at the given scale (≥ 1).
	Source func(scale int) string
}

// registry holds all workloads, keyed by name.
var registry = map[string]*Workload{}

func register(w *Workload) { registry[w.Name] = w }

// All returns every workload in a stable order (the paper's Table 1 order).
func All() []*Workload {
	order := []string{
		"antlr", "bloat", "chart", "fop", "pmd", "jython", "xalan", "hsqldb",
		"luindex", "lusearch", "eclipse", "avrora", "batik", "derby",
		"sunflow", "tomcat", "tradebeans", "tradesoap",
	}
	out := make([]*Workload, 0, len(order))
	for _, name := range order {
		if w, ok := registry[name]; ok {
			out = append(out, w)
		}
	}
	// Catch stragglers registered outside the canonical order.
	if len(out) != len(registry) {
		seen := map[string]bool{}
		for _, w := range out {
			seen[w.Name] = true
		}
		var extra []*Workload
		for name, w := range registry {
			if !seen[name] {
				extra = append(extra, w)
			}
		}
		sort.Slice(extra, func(i, j int) bool { return extra[i].Name < extra[j].Name })
		out = append(out, extra...)
	}
	return out
}

// ByName returns a workload or nil.
func ByName(name string) *Workload { return registry[name] }

// Compile compiles the workload at the given scale.
func (w *Workload) Compile(scale int) (*ir.Program, error) {
	if scale < 1 {
		scale = 1
	}
	prog, err := mjc.Compile(w.Source(scale))
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return prog, nil
}

func init() {
	register(&Workload{
		Name:    "antlr",
		Profile: "recursive-descent parsing over generated token streams; token objects are consumed",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// antlr-alike: tokenize synthetic arithmetic sentences and evaluate them
// with a recursive-descent parser. Tokens and parse frames are short-lived
// but their values feed the final sums, so utility is mostly high.
class TokenStream {
  int[] kinds;   // 0 num, 1 plus, 2 star, 3 lparen, 4 rparen, 5 eof
  int[] vals;
  int pos;
  int n;
  void fill(int seed, int len) {
    this.kinds = new int[len + 1];
    this.vals = new int[len + 1];
    int i = 0;
    int s = seed;
    while (i < len) {
      s = hash(s + i);
      int r = s %% 5;
      if (r < 0) { r = -r; }
      if (i %% 2 == 0) {
        this.kinds[i] = 0;
        this.vals[i] = r + 1;
      } else {
        if (r %% 2 == 0) { this.kinds[i] = 1; } else { this.kinds[i] = 2; }
      }
      i = i + 1;
    }
    this.kinds[len] = 5;
    this.n = len + 1;
    this.pos = 0;
  }
  int peek() { return this.kinds[this.pos]; }
  int val() { return this.vals[this.pos]; }
  void advance() { this.pos = this.pos + 1; }
}
class Parser {
  TokenStream ts;
  int parseExpr() {
    int left = this.parseTerm();
    while (this.ts.peek() == 1) {
      this.ts.advance();
      int right = this.parseTerm();
      left = left + right;
    }
    return left;
  }
  int parseTerm() {
    int left = this.parseAtom();
    while (this.ts.peek() == 2) {
      this.ts.advance();
      int right = this.parseAtom();
      left = left * right;
    }
    return left;
  }
  int parseAtom() {
    int v = 0;
    if (this.ts.peek() == 0) { v = this.ts.val(); this.ts.advance(); }
    return v;
  }
}
class Main {
  static void main() {
    int sentences = %d;
    int total = 0;
    TokenStream ts = new TokenStream();
    Parser p = new Parser();
    p.ts = ts;
    for (int i = 0; i < sentences; i = i + 1) {
      ts.fill(i * 7 + 3, 41);
      total = total + p.parseExpr();
    }
    print(total);
  }
}`, 60*scale)
		},
	})

	register(&Workload{
		Name:    "bloat",
		Profile: "debug strings built for never-true asserts; comparator objects per node pair (high IPD)",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// bloat-alike: every AST node operation builds a toString-style char buffer
// that only flows into a debug check that never fires, and tree comparisons
// allocate a fresh NodeComparator per node pair.
class CharBuf {
  int[] chars;
  int len;
  void init(int cap) { this.chars = new int[cap]; this.len = 0; }
  void append(int c) {
    if (this.len < this.chars.length) {
      this.chars[this.len] = c;
      this.len = this.len + 1;
    }
  }
  void appendInt(int v) {
    if (v == 0) { this.append(48); return; }
    if (v < 0) { this.append(45); v = -v; }
    int rev = 0;
    while (v > 0) { rev = rev * 10 + v %% 10; v = v / 10; }
    while (rev > 0) { this.append(48 + rev %% 10); rev = rev / 10; }
  }
}
class Node {
  int kind;
  int value;
  Node left;
  Node right;
  CharBuf describe() {           // the bloat: built on every visit
    CharBuf sb = new CharBuf();
    sb.init(32);
    sb.append(110); sb.append(111); sb.append(100); sb.append(101);
    sb.appendInt(this.kind);
    sb.append(58);
    sb.appendInt(this.value);
    return sb;
  }
}
class NodeComparator {          // allocated per pair, holds no data
  int compare(Node a, Node b) {
    if (a == null && b == null) { return 0; }
    if (a == null) { return -1; }
    if (b == null) { return 1; }
    if (a.value != b.value) { return a.value - b.value; }
    NodeComparator lc = new NodeComparator();
    int l = lc.compare(a.left, b.left);
    if (l != 0) { return l; }
    NodeComparator rc = new NodeComparator();
    return rc.compare(a.right, b.right);
  }
}
class Builder {
  Node build(int depth, int seed) {
    if (depth == 0) { return null; }
    Node n = new Node();
    n.kind = seed %% 7;
    n.value = hash(seed) %% 1000;
    n.left = this.build(depth - 1, seed * 2 + 1);
    n.right = this.build(depth - 1, seed * 2 + 2);
    return n;
  }
}
class Main {
  static void main() {
    boolean debugging = false;
    int rounds = %d;
    Builder bld = new Builder();
    int acc = 0;
    for (int r = 0; r < rounds; r = r + 1) {
      int traceSeq = r * 8191 + 17;            // trace id for disabled logging
      traceSeq = (traceSeq ^ (r * 31)) %% 65536;
      Node t1 = bld.build(5, r + 1);
      Node t2 = bld.build(5, r + 2);
      NodeComparator cmp = new NodeComparator();
      int c = cmp.compare(t1, t2);
      acc = acc + c;
      CharBuf msg = t1.describe();          // dead unless debugging
      if (debugging) { print(msg.len); }    // never true in production
    }
    print(acc);
  }
}`, 12*scale)
		},
	})

	register(&Workload{
		Name:    "chart",
		Profile: "lists populated with point structures only to read their sizes (the paper's motivating example)",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// chart-alike: datasets are assembled from expensively computed points, but
// the renderer only ever asks each series for its size to lay out axes.
class Point {
  int x;
  int y;
  int style;
}
class Series {
  Point[] items;
  int size;
  void init(int cap) { this.items = new Point[cap]; this.size = 0; }
  void add(Point p) {
    this.items[this.size] = p;
    this.size = this.size + 1;
  }
  int count() { return this.size; }
}
class Main {
  static void main() {
    int nSeries = %d;
    int perSeries = 80;
    int axisUnits = 0;
    for (int s = 0; s < nSeries; s = s + 1) {
      Series ser = new Series();
      ser.init(perSeries);
      for (int i = 0; i < perSeries; i = i + 1) {
        Point p = new Point();
        p.x = hash(s * 1000 + i) %% 640;       // "expensive" coordinate math
        p.y = hash(s * 2000 + i * 3) %% 480;
        p.style = (p.x ^ p.y) & 15;
        ser.add(p);
      }
      axisUnits = axisUnits + ser.count();     // only the size is used
    }
    print(axisUnits);
  }
}`, 10*scale)
		},
	})

	register(&Workload{
		Name:    "fop",
		Profile: "layout tree with fully consumed box metrics (low IPD)",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// fop-alike: a block/inline layout tree where every computed width and
// height feeds the parent's layout — high-utility data structures.
class Box {
  int width;
  int height;
  Box firstChild;
  Box nextSibling;
  void layout(int avail) {
    int w = 0;
    int h = 0;
    Box c = this.firstChild;
    while (c != null) {
      c.layout(avail - 2);
      if (c.width > w) { w = c.width; }
      h = h + c.height;
      c = c.nextSibling;
    }
    this.width = w + 2;
    this.height = h + 1;
  }
}
class TreeGen {
  Box gen(int depth, int fanout, int seed) {
    Box b = new Box();
    if (depth == 0) {
      b.width = hash(seed) %% 40 + 1;
      b.height = hash(seed + 1) %% 12 + 1;
      return b;
    }
    Box prev = null;
    for (int i = 0; i < fanout; i = i + 1) {
      Box c = this.gen(depth - 1, fanout, seed * fanout + i);
      c.nextSibling = prev;
      prev = c;
    }
    b.firstChild = prev;
    return b;
  }
}
class Main {
  static void main() {
    int pages = %d;
    TreeGen g = new TreeGen();
    int totalHeight = 0;
    for (int p = 0; p < pages; p = p + 1) {
      Box root = g.gen(4, 3, p + 17);
      root.layout(600);
      totalHeight = totalHeight + root.height;
      print(root.width);
    }
    print(totalHeight);
  }
}`, 12*scale)
		},
	})

	register(&Workload{
		Name:    "pmd",
		Profile: "rule predicates dominate: most computed values end in control decisions (high IPP)",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// pmd-alike: static-analysis rules walk synthetic ASTs; nearly all node
// metrics are computed to be compared against rule thresholds.
class AstNode {
  int kind;
  int complexity;
  int lineCount;
  AstNode[] children;
  int nChildren;
}
class RuleEngine {
  int violations;
  void check(AstNode n) {
    int score = n.complexity * 3 + n.lineCount;
    int depthPenalty = n.nChildren * 2;
    int cyclo = score + depthPenalty;
    if (cyclo > 2000) { this.violations = this.violations + 1; }
    int nameLen = hash(n.kind) %% 40;
    if (nameLen > 38) { this.violations = this.violations + 1; }
    int braces = n.lineCount - n.nChildren;
    if (braces < -500) { this.violations = this.violations + 1; }
    for (int i = 0; i < n.nChildren; i = i + 1) {
      this.check(n.children[i]);
    }
  }
}
class AstGen {
  AstNode gen(int depth, int seed) {
    AstNode n = new AstNode();
    n.kind = seed %% 30;
    n.complexity = hash(seed) %% 20;
    n.lineCount = hash(seed + 7) %% 100;
    int fan = 0;
    if (depth > 0) { fan = 3; }
    n.children = new AstNode[fan];
    n.nChildren = fan;
    for (int i = 0; i < fan; i = i + 1) {
      n.children[i] = this.gen(depth - 1, seed * 5 + i);
    }
    return n;
  }
}
class Main {
  static void main() {
    int files = %d;
    AstGen g = new AstGen();
    RuleEngine re = new RuleEngine();
    for (int f = 0; f < files; f = f + 1) {
      int progressPct = f * 100 / files;       // progress meter, reporting off
      AstNode root = g.gen(4, f + 23);
      re.check(root);
    }
    print(re.violations);
  }
}`, 8*scale)
		},
	})

	register(&Workload{
		Name:    "jython",
		Profile: "bytecode-interpreter loop; stack values are consumed by subsequent ops",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// jython-alike: a tiny stack VM interpreting generated programs. Every
// pushed value is popped and used, so utility is high.
class Frame {
  int[] stack;
  int sp;
  int[] locals;
  void init(int depth, int nlocals) {
    this.stack = new int[depth];
    this.sp = 0;
    this.locals = new int[nlocals];
  }
  void push(int v) { this.stack[this.sp] = v; this.sp = this.sp + 1; }
  int pop() { this.sp = this.sp - 1; return this.stack[this.sp]; }
}
class Interp {
  int run(int[] code, Frame f) {
    int pc = 0;
    while (pc < code.length) {
      int op = code[pc] & 7;
      if (op == 0) { f.push(code[pc] >> 3); }
      else if (op == 1) { int b = f.pop(); int a = f.pop(); f.push(a + b); }
      else if (op == 2) { int b = f.pop(); int a = f.pop(); f.push(a * b); }
      else if (op == 3) { int v = f.pop(); f.locals[(code[pc] >> 3) %% f.locals.length] = v; }
      else if (op == 4) { f.push(f.locals[(code[pc] >> 3) %% f.locals.length]); }
      else { f.push(f.pop() ^ (code[pc] >> 3)); }
      pc = pc + 1;
    }
    if (f.sp > 0) { return f.pop(); }
    return 0;
  }
}
class CodeGen {
  int[] gen(int len, int seed) {
    int[] code = new int[len];
    // Guarantee stack discipline: alternate pushes and combining ops.
    for (int i = 0; i < len; i = i + 1) {
      int h = hash(seed + i);
      if (h < 0) { h = -h; }
      if (i %% 3 == 2) { code[i] = (h & (255 << 3)) | 1; }  // add
      else { code[i] = (h & (255 << 3)) | 0;  }             // push
    }
    return code;
  }
}
class Main {
  static void main() {
    int programs = %d;
    CodeGen cg = new CodeGen();
    Interp vm = new Interp();
    int acc = 0;
    for (int i = 0; i < programs; i = i + 1) {
      int[] code = cg.gen(90, i * 31 + 5);
      Frame f = new Frame();
      f.init(128, 8);
      acc = acc + vm.run(code, f);
    }
    print(acc);
  }
}`, 12*scale)
		},
	})

	register(&Workload{
		Name:    "xalan",
		Profile: "document transformation copying values between node representations (copy-heavy)",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// xalan-alike: each transform stage copies node payloads into a new
// representation, doing little computation per hop — classic copy bloat.
class SrcNode { int tag; int text; SrcNode next; }
class DomNode { int tag; int text; DomNode next; }
class OutNode { int tag; int text; OutNode next; }
class Pipeline {
  DomNode toDom(SrcNode s) {
    DomNode head = null;
    while (s != null) {
      DomNode d = new DomNode();
      d.tag = s.tag;        // pure copies
      d.text = s.text;
      d.next = head;
      head = d;
      s = s.next;
    }
    return head;
  }
  OutNode toOut(DomNode d) {
    OutNode head = null;
    while (d != null) {
      OutNode o = new OutNode();
      o.tag = d.tag;
      o.text = d.text;
      o.next = head;
      head = o;
      d = d.next;
    }
    return head;
  }
  int serialize(OutNode o) {
    int bytes = 0;
    while (o != null) {
      bytes = bytes + (o.tag & 7) + (o.text & 63);
      o = o.next;
    }
    return bytes;
  }
}
class DocGen {
  SrcNode gen(int len, int seed) {
    SrcNode head = null;
    for (int i = 0; i < len; i = i + 1) {
      SrcNode s = new SrcNode();
      s.tag = hash(seed + i) %% 12;
      s.text = hash(seed + i * 3) %% 1000;
      s.next = head;
      head = s;
    }
    return head;
  }
}
class Main {
  static void main() {
    int docs = %d;
    DocGen g = new DocGen();
    Pipeline p = new Pipeline();
    int total = 0;
    for (int i = 0; i < docs; i = i + 1) {
      int stageTicks = i * 3 + 11;             // stage timing, never reported
      stageTicks = stageTicks * stageTicks %% 8191;
      SrcNode src = g.gen(70, i * 13 + 1);
      DomNode dom = p.toDom(src);
      OutNode out = p.toOut(dom);
      total = total + p.serialize(out);
    }
    print(total);
  }
}`, 10*scale)
		},
	})

	register(&Workload{
		Name:    "hsqldb",
		Profile: "in-memory table with some dead (never-queried) columns",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// hsqldb-alike: rows carry several columns; queries touch the key and one
// payload column, leaving audit columns dead.
class Row {
  int key;
  int balance;
  int auditA;    // maintained but never queried
  int auditB;
  Row next;
}
class Table {
  Row[] buckets;
  int size;
  void init(int n) { this.buckets = new Row[n]; this.size = 0; }
  void insert(int key, int balance, int seed) {
    Row r = new Row();
    r.key = key;
    r.balance = balance;
    r.auditA = hash(seed) %% 100000;        // dead column work
    r.auditB = hash(seed * 3 + 1) %% 100000;
    int b = key %% this.buckets.length;
    if (b < 0) { b = -b; }
    r.next = this.buckets[b];
    this.buckets[b] = r;
    this.size = this.size + 1;
  }
  int lookup(int key) {
    int b = key %% this.buckets.length;
    if (b < 0) { b = -b; }
    Row r = this.buckets[b];
    while (r != null) {
      if (r.key == key) { return r.balance; }
      r = r.next;
    }
    return 0;
  }
}
class Main {
  static void main() {
    int txns = %d;
    Table t = new Table();
    t.init(64);
    int total = 0;
    for (int i = 0; i < txns; i = i + 1) {
      int txnTag = (i * 48271) %% 1000000;     // txn tag for an audit log that is off
      t.insert(i, i * 17 %% 991, i + 41);
      total = total + t.lookup(i / 2);
    }
    print(total);
    print(t.size);
  }
}`, 120*scale)
		},
	})

	register(&Workload{
		Name:    "luindex",
		Profile: "inverted-index construction; postings are later read by lusearch-style scans",
		Source: func(scale int) string {
			return fmt.Sprintf(`
// luindex-alike: documents are tokenized into term IDs and posting lists
// are built, then compacted — most stored data is revisited.
class Posting { int doc; int freq; Posting next; }
class Index {
  Posting[] terms;
  int[] counts;
  void init(int vocab) {
    this.terms = new Posting[vocab];
    this.counts = new int[vocab];
  }
  void add(int term, int doc) {
    Posting p = this.terms[term];
    if (p != null && p.doc == doc) {
      p.freq = p.freq + 1;
      return;
    }
    Posting np = new Posting();
    np.doc = doc;
    np.freq = 1;
    np.next = this.terms[term];
    this.terms[term] = np;
    this.counts[term] = this.counts[term] + 1;
  }
  int totalPostings() {
    int t = 0;
    for (int i = 0; i < this.counts.length; i = i + 1) { t = t + this.counts[i]; }
    return t;
  }
}
class Main {
  static void main() {
    int docs = %d;
    int vocab = 97;
    int tokensPerDoc = 60;
    Index idx = new Index();
    idx.init(vocab);
    for (int d = 0; d < docs; d = d + 1) {
      for (int t = 0; t < tokensPerDoc; t = t + 1) {
        int tokenSeq = t * 7 + 3;              // per-token seq for a disabled trace
        int h = hash(d * 1000 + t);
        if (h < 0) { h = -h; }
        idx.add(h %% vocab, d);
      }
    }
    print(idx.totalPostings());
  }
}`, 15*scale)
		},
	})
}
