// Package evalharness regenerates the paper's evaluation artifacts: Table 1
// (graph characteristics, tool overhead, context conflict ratios, and the
// dead-value measurements IPD/IPP/NLD over the 18 DaCapo-alike workloads),
// the phase-restricted-tracking overhead-reduction experiment, and the §3.2
// design-choice ablations (thin vs. traditional slicing, abstract vs.
// unabstracted graphs).
package evalharness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"lowutil/internal/deadness"
	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/par"
	"lowutil/internal/profiler"
	"lowutil/internal/workloads"
)

// SlotResult holds the Table 1 columns for one (workload, s) pair.
type SlotResult struct {
	S        int
	Nodes    int
	DepEdges int
	RefEdges int
	MemBytes int64
	Overhead float64 // profiled wall-clock / baseline wall-clock
	CR       float64
}

// Row is one Table 1 row.
type Row struct {
	Name  string
	Scale int

	// Steps is #I — executed instruction instances in the baseline run.
	Steps    int64
	Allocs   int64
	BaseTime time.Duration
	BySlots  []SlotResult

	// Part (c), computed on the largest-s graph.
	IPD float64
	IPP float64
	NLD float64
}

// Options configures the harness.
type Options struct {
	// Scale is the workload scale factor (1 for tests, larger for reports).
	Scale int
	// Slots lists the context-slot settings to measure (paper: 8 and 16).
	Slots []int
	// Only restricts to the named workloads (nil = all 18).
	Only []string
	// Progress, if non-nil, receives a line per workload.
	Progress io.Writer
	// Workers bounds the workload-sweep worker pool; 0 means GOMAXPROCS,
	// 1 runs serially. Note that the overhead column is wall-clock based,
	// so overhead measurements are only meaningful with Workers set to 1.
	Workers int
}

func (o *Options) defaults() {
	if o.Scale < 1 {
		o.Scale = 1
	}
	if len(o.Slots) == 0 {
		o.Slots = []int{8, 16}
	}
}

// Table1 runs the full experiment and returns one row per workload.
func Table1(opts Options) ([]*Row, error) {
	opts.defaults()
	var list []*workloads.Workload
	if len(opts.Only) == 0 {
		list = workloads.All()
	} else {
		for _, name := range opts.Only {
			w := workloads.ByName(name)
			if w == nil {
				return nil, fmt.Errorf("evalharness: unknown workload %q", name)
			}
			list = append(list, w)
		}
	}

	// Workloads are independent, so the sweep fans out over the pool; each
	// worker writes only its own row slot and rows keep Table 1 order. The
	// first error by workload index wins, matching the serial behavior.
	rows := make([]*Row, len(list))
	errs := make([]error, len(list))
	var progressMu sync.Mutex
	par.ForEach(len(list), opts.Workers, func(i int) {
		row, err := runOne(list[i], opts)
		if err != nil {
			errs[i] = err
			return
		}
		rows[i] = row
		if opts.Progress != nil {
			progressMu.Lock()
			fmt.Fprintf(opts.Progress, "%-11s I=%-10d N=%-7d E=%-8d O=%.1fx IPD=%.1f%% IPP=%.1f%% NLD=%.1f%%\n",
				row.Name, row.Steps, row.BySlots[len(row.BySlots)-1].Nodes,
				row.BySlots[len(row.BySlots)-1].DepEdges,
				row.BySlots[len(row.BySlots)-1].Overhead, row.IPD, row.IPP, row.NLD)
			progressMu.Unlock()
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func runOne(w *workloads.Workload, opts Options) (*Row, error) {
	prog, err := w.Compile(opts.Scale)
	if err != nil {
		return nil, err
	}

	// Baseline (uninstrumented), best of 3 to stabilize the overhead ratio.
	var base time.Duration
	var steps, allocs int64
	for i := 0; i < 3; i++ {
		m := interp.New(prog)
		start := time.Now()
		if err := m.Run(); err != nil {
			return nil, fmt.Errorf("%s baseline: %w", w.Name, err)
		}
		d := time.Since(start)
		if i == 0 || d < base {
			base = d
		}
		steps, allocs = m.Steps, m.Allocs
	}
	if base <= 0 {
		base = time.Nanosecond
	}

	row := &Row{Name: w.Name, Scale: opts.Scale, Steps: steps, Allocs: allocs, BaseTime: base}

	var lastGraph *depgraph.Graph
	var lastSteps int64
	for _, s := range opts.Slots {
		p := profiler.New(prog, profiler.Options{Slots: s, TrackCR: true})
		m := interp.New(prog)
		m.Tracer = p
		start := time.Now()
		if err := m.Run(); err != nil {
			return nil, fmt.Errorf("%s profiled s=%d: %w", w.Name, s, err)
		}
		elapsed := time.Since(start)
		row.BySlots = append(row.BySlots, SlotResult{
			S:        s,
			Nodes:    p.G.NumNodes(),
			DepEdges: p.G.NumDepEdges(),
			RefEdges: p.G.NumRefEdges(),
			MemBytes: p.G.ApproxBytes(),
			Overhead: float64(elapsed) / float64(base),
			CR:       p.CR().AverageCR(),
		})
		lastGraph = p.G
		lastSteps = m.Steps
	}

	dead := deadness.Analyze(lastGraph, lastSteps)
	row.IPD = dead.IPD()
	row.IPP = dead.IPP()
	row.NLD = dead.NLD()
	return row, nil
}

// Format renders rows in the paper's Table 1 layout.
func Format(rows []*Row, out io.Writer) {
	if len(rows) == 0 {
		return
	}
	for _, sr := range rows[0].BySlots {
		fmt.Fprintf(out, "---- s = %d ----\n", sr.S)
		fmt.Fprintf(out, "%-11s %9s %9s %8s %7s %7s\n", "Program", "#N", "#E", "M(KB)", "O(x)", "CR")
		for _, r := range rows {
			var this *SlotResult
			for i := range r.BySlots {
				if r.BySlots[i].S == sr.S {
					this = &r.BySlots[i]
				}
			}
			if this == nil {
				continue
			}
			fmt.Fprintf(out, "%-11s %9d %9d %8.1f %7.1f %7.3f\n",
				r.Name, this.Nodes, this.DepEdges, float64(this.MemBytes)/1024, this.Overhead, this.CR)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "---- part (c): instruction instances and deadness ----\n")
	fmt.Fprintf(out, "%-11s %12s %8s %8s %8s\n", "Program", "#I", "IPD(%)", "IPP(%)", "NLD(%)")
	for _, r := range rows {
		fmt.Fprintf(out, "%-11s %12d %8.1f %8.1f %8.1f\n", r.Name, r.Steps, r.IPD, r.IPP, r.NLD)
	}
}

// ---- Phase-restricted tracking (§4.1 overhead discussion) ----

// phaseGate wraps the profiler and enables it only for a fraction of the
// run, approximating "tracking only the steady-state portion of a server's
// run" with an instruction-count window.
type phaseGate struct {
	*profiler.Profiler
	n      int64
	lo, hi int64
}

// Exec implements interp.Tracer.
func (g *phaseGate) Exec(ev *interp.Event) {
	g.n++
	if g.n == g.lo {
		g.Profiler.SetEnabled(true)
	}
	if g.n == g.hi {
		g.Profiler.SetEnabled(false)
	}
	g.Profiler.Exec(ev)
}

// PhaseResult reports the phase-restriction experiment for one workload.
type PhaseResult struct {
	Name          string
	FullOverhead  float64
	PhaseOverhead float64
	// Reduction is FullOverhead / PhaseOverhead (paper: up to 10×).
	Reduction  float64
	FullNodes  int
	PhaseNodes int
}

// PhaseExperiment profiles the workload twice — whole-program and restricted
// to the middle fraction of the run — and reports the overhead reduction.
func PhaseExperiment(name string, scale int, fraction float64) (*PhaseResult, error) {
	w := workloads.ByName(name)
	if w == nil {
		return nil, fmt.Errorf("evalharness: unknown workload %q", name)
	}
	prog, err := w.Compile(scale)
	if err != nil {
		return nil, err
	}

	var base time.Duration
	var steps int64
	for i := 0; i < 3; i++ {
		m := interp.New(prog)
		start := time.Now()
		if err := m.Run(); err != nil {
			return nil, err
		}
		if d := time.Since(start); i == 0 || d < base {
			base = d
		}
		steps = m.Steps
	}
	if base <= 0 {
		base = time.Nanosecond
	}

	// Best-of-3, like the baseline above: a single scheduler hiccup on
	// either run would otherwise swamp the overhead ratio.
	runProfiled := func(mk func() (interp.Tracer, *profiler.Profiler)) (time.Duration, *profiler.Profiler, error) {
		var best time.Duration
		var p *profiler.Profiler
		for i := 0; i < 3; i++ {
			tracer, prof := mk()
			m := interp.New(prog)
			m.Tracer = tracer
			start := time.Now()
			if err := m.Run(); err != nil {
				return 0, nil, err
			}
			if d := time.Since(start); i == 0 || d < best {
				best = d
			}
			p = prof
		}
		return best, p, nil
	}

	fullTime, full, err := runProfiled(func() (interp.Tracer, *profiler.Profiler) {
		p := profiler.New(prog, profiler.Options{Slots: 16})
		return p, p
	})
	if err != nil {
		return nil, err
	}

	window := int64(float64(steps) * fraction)
	lo := (steps - window) / 2
	gatedTime, gatedP, err := runProfiled(func() (interp.Tracer, *profiler.Profiler) {
		p := profiler.New(prog, profiler.Options{Slots: 16})
		p.SetEnabled(false)
		return &phaseGate{Profiler: p, lo: lo, hi: lo + window}, p
	})
	if err != nil {
		return nil, err
	}

	res := &PhaseResult{
		Name:          name,
		FullOverhead:  float64(fullTime) / float64(base),
		PhaseOverhead: float64(gatedTime) / float64(base),
		FullNodes:     full.G.NumNodes(),
		PhaseNodes:    gatedP.G.NumNodes(),
	}
	if res.PhaseOverhead > 0 {
		res.Reduction = res.FullOverhead / res.PhaseOverhead
	}
	return res, nil
}

// ---- §3.2 ablations ----

// SlicingAblation compares thin and traditional slicing on one workload:
// edge counts and total backward-slice weight from every heap-store node.
type SlicingAblation struct {
	Name             string
	ThinEdges        int
	TraditionalEdges int
	ThinSliceNodes   int
	TradSliceNodes   int
}

// ThinVsTraditional runs the ablation.
func ThinVsTraditional(name string, scale int) (*SlicingAblation, error) {
	w := workloads.ByName(name)
	if w == nil {
		return nil, fmt.Errorf("evalharness: unknown workload %q", name)
	}
	prog, err := w.Compile(scale)
	if err != nil {
		return nil, err
	}
	res := &SlicingAblation{Name: name}
	for _, traditional := range []bool{false, true} {
		p := profiler.New(prog, profiler.Options{Slots: 16, Traditional: traditional})
		m := interp.New(prog)
		m.Tracer = p
		if err := m.Run(); err != nil {
			return nil, err
		}
		total := 0
		p.G.Nodes(func(n *depgraph.Node) {
			if n.WritesHeap() {
				total += len(depgraph.BackwardSlice(n))
			}
		})
		if traditional {
			res.TraditionalEdges = p.G.NumDepEdges()
			res.TradSliceNodes = total
		} else {
			res.ThinEdges = p.G.NumDepEdges()
			res.ThinSliceNodes = total
		}
	}
	return res, nil
}

// AbstractionAblation compares the bounded abstract graph against the
// unabstracted (per-instance) graph.
type AbstractionAblation struct {
	Name              string
	Steps             int64
	AbstractNodes     int
	UnabstractedNodes int
	AbstractBytes     int64
	UnabstractedBytes int64
}

// AbstractVsConcrete runs the ablation. The unabstracted graph is capped to
// keep the experiment tractable; the cap is reported through the node count
// plateauing rather than by silent truncation of the workload.
func AbstractVsConcrete(name string, scale int, capN int) (*AbstractionAblation, error) {
	w := workloads.ByName(name)
	if w == nil {
		return nil, fmt.Errorf("evalharness: unknown workload %q", name)
	}
	prog, err := w.Compile(scale)
	if err != nil {
		return nil, err
	}
	res := &AbstractionAblation{Name: name}

	pa := profiler.New(prog, profiler.Options{Slots: 16})
	ma := interp.New(prog)
	ma.Tracer = pa
	if err := ma.Run(); err != nil {
		return nil, err
	}
	res.Steps = ma.Steps
	res.AbstractNodes = pa.G.NumNodes()
	res.AbstractBytes = pa.G.ApproxBytes()

	pu := profiler.New(prog, profiler.Options{Unabstracted: true, UnabstractedCap: capN})
	mu := interp.New(prog)
	mu.Tracer = pu
	if err := mu.Run(); err != nil {
		return nil, err
	}
	res.UnabstractedNodes = pu.G.NumNodes()
	res.UnabstractedBytes = pu.G.ApproxBytes()
	return res, nil
}

var _ interp.Tracer = (*phaseGate)(nil)
