package ssa

import (
	"math/rand"
	"reflect"
	"testing"

	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/workloads"
)

// The destruction property: construct SSA, destruct it back to flat IR, and
// the program still validates and computes the same outputs. Exercised on
// hand-built corner-case CFGs, on every workload, and on randomized
// structured programs (also wired up as a fuzz target).

// shortWorkloads mirrors the soundness tests' -short subset.
var shortWorkloads = map[string]bool{"chart": true, "avrora": true, "hsqldb": true, "luindex": true}

func forEachWorkload(t *testing.T, fn func(t *testing.T, prog *ir.Program)) {
	t.Helper()
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if testing.Short() && !shortWorkloads[w.Name] {
				t.Skip("-short: subset only")
			}
			prog, err := w.Compile(1)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			fn(t, prog)
		})
	}
}

func run(prog *ir.Program) ([]int64, error) {
	m := interp.New(prog)
	err := m.Run()
	return m.Output, err
}

// checkRoundTrip runs prog, destructs every method through SSA, revalidates,
// reruns, and compares outputs (and error presence: a program that faults
// must still fault, with identical output up to the fault).
func checkRoundTrip(t *testing.T, prog *ir.Program) {
	t.Helper()
	before, errBefore := run(prog)
	if err := DestructProgram(prog); err != nil {
		t.Fatalf("destructed program fails validation: %v", err)
	}
	after, errAfter := run(prog)
	if (errBefore == nil) != (errAfter == nil) {
		t.Fatalf("error behavior changed: before=%v after=%v", errBefore, errAfter)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("output changed after SSA round-trip:\nbefore: %v\nafter:  %v", before, after)
	}
}

func TestRoundTripWorkloads(t *testing.T) {
	forEachWorkload(t, func(t *testing.T, prog *ir.Program) { checkRoundTrip(t, prog) })
}

// TestRoundTripSwap forces a phi cycle that needs the scratch slot: two
// header phis exchanging values every iteration.
func TestRoundTripSwap(t *testing.T) {
	prog, _ := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(0, 1) // a = 1
		bb.Const(1, 2) // b = 2
		bb.Const(2, 0) // i = 0
		bb.Const(3, 3) // n = 3
		bb.Const(4, 1) // one = 1
		head := bb.PC()
		exit := bb.If(2, ir.Ge, 3, 0)
		bb.Move(5, 0) // t = a
		bb.Move(0, 1) // a = b
		bb.Move(1, 5) // b = t
		bb.Bin(2, ir.Add, 2, 4)
		bb.Goto(head)
		bb.Patch(exit, bb.PC())
		bb.Native(-1, ir.NativePrint, 0)
		bb.Native(-1, ir.NativePrint, 1)
		bb.ReturnVoid()
	})
	checkRoundTrip(t, prog)
}

// TestRoundTripEntryLoop exercises entry-phi virtual-edge copies.
func TestRoundTripEntryLoop(t *testing.T) {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	count := bd.Method(cls, "count", true, 1, ir.IntType)
	cb := bd.Body(count)
	// while v0 > 0 { v0 = v0 - 1 }  — the entry block is the loop header.
	cb.Const(1, 0)
	exit := cb.If(0, ir.Le, 1, 0)
	cb.Const(2, 1)
	cb.Bin(0, ir.Sub, 0, 2)
	cb.Goto(0)
	cb.Patch(exit, cb.PC())
	cb.Return(0)
	m := bd.Method(cls, "main", true, 0, nil)
	mb := bd.Body(m)
	mb.Const(0, 5)
	mb.Call(1, count, 0)
	mb.Native(-1, ir.NativePrint, 1)
	mb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		t.Fatalf("seal: %v", err)
	}
	checkRoundTrip(t, prog)
}

// TestRoundTripMaybeUninit: a slot that is read only on iterations after it
// was written, with a statically-undef path into the phi.
func TestRoundTripMaybeUninit(t *testing.T) {
	prog, _ := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(0, 0) // i = 0
		bb.Const(1, 3) // n = 3
		bb.Const(2, 1) // one
		bb.Const(4, 0) // zero
		head := bb.PC()
		exit := bb.If(0, ir.Ge, 1, 0)
		skip := bb.If(0, ir.Le, 4, 0) // first iteration (i==0): skip the read of v3
		bb.Native(-1, ir.NativePrint, 3)
		bb.Patch(skip, bb.PC())
		bb.Bin(3, ir.Mul, 0, 0) // v3 = i*i (written every iteration)
		bb.Bin(0, ir.Add, 0, 2)
		bb.Goto(head)
		bb.Patch(exit, bb.PC())
		bb.ReturnVoid()
	})
	checkRoundTrip(t, prog)
}

// TestRoundTripDeadBranch: a constant-false branch guarding unreachable-ish
// code (reachable in the CFG, dead under SCCP) must survive destruction.
func TestRoundTripDeadBranch(t *testing.T) {
	prog, _ := buildMain(t, 0, func(_ *ir.Builder, bb *ir.BodyBuilder) {
		bb.Const(0, 0)
		bb.Const(1, 7)
		j := bb.If(0, ir.Ne, 0, 0) // never taken
		g := bb.Goto(0)
		bb.Patch(j, bb.PC())
		bb.Const(1, 99) // dead
		bb.Patch(g, bb.PC())
		bb.Native(-1, ir.NativePrint, 1)
		bb.ReturnVoid()
	})
	checkRoundTrip(t, prog)
}

// genProgram builds a random structured program from rng: straight-line
// arithmetic, nested if/else, and counted while loops with reserved
// induction slots (so random assignments cannot break termination).
func genProgram(rng *rand.Rand) *ir.Program {
	bd := ir.NewBuilder()
	cls := bd.Class("Main", nil)
	m := bd.Method(cls, "main", true, 0, nil)
	bb := bd.Body(m)

	const nVars = 6 // slots 0..5 are general variables
	nextLoopSlot := nVars
	for s := 0; s < nVars; s++ {
		bb.Const(s, int64(rng.Intn(21)-10))
	}
	v := func() int { return rng.Intn(nVars) }
	ops := []ir.BinOp{ir.Add, ir.Sub, ir.Mul, ir.And, ir.Or, ir.Xor, ir.Shl, ir.Shr, ir.Div, ir.Rem}
	cmps := []ir.Cmp{ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge}

	var genBlock func(depth, nStmts int)
	genStmt := func(depth int) {
		switch k := rng.Intn(10); {
		case k < 4: // arithmetic
			bb.Bin(v(), ops[rng.Intn(len(ops))], v(), v())
		case k < 5:
			bb.Const(v(), int64(rng.Intn(41)-20))
		case k < 6:
			bb.Move(v(), v())
		case k < 7:
			bb.Native(-1, ir.NativePrint, v())
		case k < 9 && depth > 0: // if / if-else
			j := bb.If(v(), cmps[rng.Intn(len(cmps))], v(), 0)
			genBlock(depth-1, 1+rng.Intn(3))
			if rng.Intn(2) == 0 { // with else
				g := bb.Goto(0)
				bb.Patch(j, bb.PC())
				genBlock(depth-1, 1+rng.Intn(3))
				bb.Patch(g, bb.PC())
			} else {
				bb.Patch(j, bb.PC())
			}
		case depth > 0: // counted while loop over a reserved slot
			li := nextLoopSlot
			nextLoopSlot++
			lim := nextLoopSlot
			nextLoopSlot++
			one := nextLoopSlot
			nextLoopSlot++
			bb.Const(li, 0)
			bb.Const(lim, int64(1+rng.Intn(4)))
			bb.Const(one, 1)
			head := bb.PC()
			exit := bb.If(li, ir.Ge, lim, 0)
			genBlock(depth-1, 1+rng.Intn(3))
			bb.Bin(li, ir.Add, li, one)
			bb.Goto(head)
			bb.Patch(exit, bb.PC())
		default:
			bb.Bin(v(), ir.Add, v(), v())
		}
	}
	genBlock = func(depth, nStmts int) {
		for i := 0; i < nStmts; i++ {
			genStmt(depth)
		}
	}
	genBlock(3, 4+rng.Intn(5))
	for s := 0; s < nVars; s++ {
		bb.Native(-1, ir.NativePrint, s)
	}
	bb.ReturnVoid()
	prog, err := bd.Seal("Main", "main")
	if err != nil {
		panic(err) // generator bug, not an input property
	}
	return prog
}

// TestRoundTripRandom drives the property over many random programs.
func TestRoundTripRandom(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	for i := 0; i < n; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		prog := genProgram(rng)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("seed %d: panic: %v", i, r)
				}
			}()
			checkRoundTrip(t, prog)
		}()
	}
}

// FuzzRoundTrip fuzzes the same property by seed.
func FuzzRoundTrip(f *testing.F) {
	for s := int64(0); s < 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		prog := genProgram(rand.New(rand.NewSource(seed)))
		checkRoundTrip(t, prog)
	})
}
