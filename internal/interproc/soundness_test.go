package interproc

import (
	"testing"

	"lowutil/internal/depgraph"
	"lowutil/internal/interp"
	"lowutil/internal/ir"
	"lowutil/internal/profiler"
	"lowutil/internal/workloads"
)

// profileDynamic runs prog under the thin profiler and returns its Gcost.
func profileDynamic(t *testing.T, name string, prog *ir.Program) *depgraph.Graph {
	t.Helper()
	p := profiler.New(prog, profiler.Options{Slots: 16})
	m := interp.New(prog)
	m.Tracer = p
	m.MaxSteps = 200_000_000
	if err := m.Run(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return p.G
}

// checkContainment asserts the containment invariant: every dependence,
// reference and points-to-child edge of the dynamic Gcost, projected to
// static instructions, is an edge of the static slice.
func checkContainment(t *testing.T, name string, g *depgraph.Graph, an *Analysis) {
	t.Helper()
	label := name + "/" + an.CG.Mode.String()
	missing := 0
	report := func(format string, args ...any) {
		missing++
		if missing <= 10 {
			t.Errorf(format, args...)
		}
	}
	g.Nodes(func(n *depgraph.Node) {
		n.Deps(func(d *depgraph.Node) {
			if !an.Slice.HasDep(n.In.ID, d.In.ID) {
				report("%s: dynamic dep %v -> %v (i%d -> i%d: %s -> %s) not in static slice",
					label, n, d, n.In.ID, d.In.ID, n.In, d.In)
			}
		})
		n.RefEdges(func(al *depgraph.Node) {
			if !an.Slice.HasRef(n.In.ID, al.In.ID) {
				report("%s: dynamic ref %v -> %v not in static slice", label, n, al)
			}
		})
	})
	owners := []*depgraph.Node{nil}
	g.Nodes(func(n *depgraph.Node) {
		if n.Eff == depgraph.EffAlloc {
			owners = append(owners, n)
		}
	})
	for _, o := range owners {
		ownerID := -1
		if o != nil {
			ownerID = o.In.ID
		}
		g.Children(o, func(field int, child *depgraph.Node) {
			if !an.Slice.HasChild(ownerID, field, child.In.ID) {
				report("%s: dynamic child (%d,%d) -> i%d not in static slice",
					label, ownerID, field, child.In.ID)
			}
		})
	}
	if missing > 10 {
		t.Errorf("%s: %d dynamic edges missing from the static slice in total", label, missing)
	}
}

// TestSoundnessAllWorkloads is the differential soundness harness: on every
// workload, the dynamic Gcost must be contained in the static slice under
// both the CHA and the RTA call graph (the RTA variant additionally enables
// the object-sensitive heap abstraction, exercising the finer objects).
func TestSoundnessAllWorkloads(t *testing.T) {
	shortSet := map[string]bool{"chart": true, "avrora": true, "hsqldb": true, "luindex": true}
	for _, w := range workloads.All() {
		if testing.Short() && !shortSet[w.Name] {
			continue
		}
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, err := w.Compile(1)
			if err != nil {
				t.Fatal(err)
			}
			g := profileDynamic(t, w.Name, prog)
			if g.NumDepEdges() == 0 {
				t.Fatalf("%s: dynamic graph has no dep edges; harness would be vacuous", w.Name)
			}
			checkContainment(t, w.Name, g, Analyze(prog, Config{Mode: CHA}))
			checkContainment(t, w.Name, g, Analyze(prog, Config{Mode: RTA, ObjCtx: true}))
		})
	}
}
